#include "moas/chaos/registry_outage.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "moas/util/assert.h"
#include "moas/util/rng.h"

namespace moas::chaos {

namespace {

/// Exponential draw with the given mean, floored away from zero so a window
/// always has an observable extent (same idiom as compile_schedule).
sim::Time exponential(util::Rng& rng, sim::Time mean) {
  const double u = rng.uniform01();
  return std::max<sim::Time>(1e-3, -mean * std::log1p(-u));
}

std::vector<RegistryOutageSchedule::Window> sample_windows(
    util::Rng& rng, unsigned count, const RegistryOutageConfig& config,
    sim::Time mean_duration, int source, double factor) {
  std::vector<RegistryOutageSchedule::Window> windows;
  windows.reserve(count);
  const sim::Time end = config.start + config.horizon;
  for (unsigned i = 0; i < count; ++i) {
    // Leave headroom so the recovery fits strictly inside the horizon: a
    // completed schedule always ends with every source back up, which lets
    // the harness demand explicit settlement of every alarm at quiescence.
    const sim::Time down = config.start + rng.uniform01() * config.horizon * 0.9;
    sim::Time up = down + exponential(rng, mean_duration);
    if (up >= end) up = end - 1e-3;
    if (up <= down) continue;  // degenerate; drop it
    windows.push_back({down, up, source, factor});
  }
  std::sort(windows.begin(), windows.end());
  // Merge overlapping same-source windows into a clean train.
  std::vector<RegistryOutageSchedule::Window> merged;
  for (const auto& w : windows) {
    if (!merged.empty() && merged.back().source == w.source &&
        w.start <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, w.end);
      merged.back().factor = std::max(merged.back().factor, w.factor);
    } else {
      merged.push_back(w);
    }
  }
  return merged;
}

std::string window_line(const char* kind, const RegistryOutageSchedule::Window& w) {
  char buf[128];
  if (w.factor != 1.0) {
    std::snprintf(buf, sizeof(buf), "t=%.6f..%.6f %s %s x%.3f", w.start, w.end, kind,
                  w.source < 0 ? "all" : ("src" + std::to_string(w.source)).c_str(),
                  w.factor);
  } else {
    std::snprintf(buf, sizeof(buf), "t=%.6f..%.6f %s %s", w.start, w.end, kind,
                  w.source < 0 ? "all" : ("src" + std::to_string(w.source)).c_str());
  }
  return buf;
}

}  // namespace

bool RegistryOutageSchedule::down(std::size_t source, sim::Time t) const {
  for (const Window& w : outages) {
    if (t < w.start) break;  // sorted by start; nothing later can cover t
    if (t < w.end && (w.source < 0 || static_cast<std::size_t>(w.source) == source)) {
      return true;
    }
  }
  return false;
}

double RegistryOutageSchedule::latency_factor(sim::Time t) const {
  double factor = 1.0;
  for (const Window& w : spikes) {
    if (t < w.start) break;
    if (t < w.end) factor *= w.factor;
  }
  return factor;
}

std::string RegistryOutageSchedule::to_string() const {
  std::string out;
  for (const Window& w : outages) {
    out += window_line("registry-outage", w);
    out += '\n';
  }
  for (const Window& w : spikes) {
    out += window_line("registry-latency-spike", w);
    out += '\n';
  }
  return out;
}

RegistryOutageSchedule compile_registry_outages(const RegistryOutageConfig& config,
                                                std::size_t num_sources) {
  MOAS_REQUIRE(config.horizon > 0.0, "registry outage horizon must be positive");
  MOAS_REQUIRE(config.outage_mean > 0.0 && config.spike_mean > 0.0,
               "registry outage/spike durations must be positive");
  MOAS_REQUIRE(config.spike_factor >= 1.0, "a latency spike cannot speed lookups up");
  MOAS_REQUIRE(config.scope != RegistryOutageConfig::Scope::PrimaryOnly || num_sources >= 1,
               "primary-only scope needs at least one source");

  RegistryOutageSchedule schedule;
  schedule.config = config;
  util::Rng rng(config.seed);
  if (config.outages > 0.0) {
    const int source =
        config.scope == RegistryOutageConfig::Scope::PrimaryOnly ? 0 : -1;
    schedule.outages = sample_windows(rng, rng.poisson(config.outages), config,
                                      config.outage_mean, source, 1.0);
  }
  if (config.spikes > 0.0) {
    schedule.spikes = sample_windows(rng, rng.poisson(config.spikes), config,
                                     config.spike_mean, -1, config.spike_factor);
  }
  return schedule;
}

}  // namespace moas::chaos
