#include "moas/chaos/engine.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "moas/bgp/wire.h"

namespace moas::chaos {

namespace {

using bgp::Asn;
using bgp::Update;

std::string msg_log_line(sim::Time at, const char* what, Asn from, Asn to) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "t=%.6f %s %u->%u", at, what, from, to);
  return buf;
}

bool same_update(const Update& a, const Update& b) {
  return a.kind == b.kind && a.prefix == b.prefix && a.route == b.route;
}

}  // namespace

ChaosEngine::ChaosEngine(bgp::Network& network, FaultSchedule schedule)
    : network_(network),
      schedule_(std::move(schedule)),
      tap_rng_(schedule_.config.seed ^ 0x7a9f00dULL) {}

ChaosEngine::~ChaosEngine() { remove_tap(); }

void ChaosEngine::arm() {
  const sim::Time now = network_.clock().now();
  for (const FaultEvent& event : schedule_.events) {
    network_.clock().schedule_at(std::max(event.at, now), [this, event] { apply(event); });
  }
  next_event_ = schedule_.events.size();  // consumed; batch mode would double-apply
  if (schedule_.config.has_message_faults()) install_tap();
}

std::size_t ChaosEngine::apply_batch(std::size_t max_events) {
  std::size_t applied = 0;
  while (applied < max_events && next_event_ < schedule_.events.size()) {
    apply(schedule_.events[next_event_++]);
    ++applied;
  }
  return applied;
}

void ChaosEngine::install_tap() {
  if (tap_installed_) return;
  network_.set_message_tap(
      [this](Asn from, Asn to, const Update& update) { return tap(from, to, update); });
  tap_installed_ = true;
}

void ChaosEngine::remove_tap() {
  if (!tap_installed_) return;
  network_.set_message_tap(nullptr);
  tap_installed_ = false;
}

std::string ChaosEngine::log_text() const {
  std::string out;
  for (const std::string& line : log_) {
    out += line;
    out += '\n';
  }
  return out;
}

void ChaosEngine::clean_direction_pair(Asn a, Asn b) {
  dirty_.erase({a, b});
  dirty_.erase({b, a});
}

void ChaosEngine::clean_router(Asn asn) {
  for (auto it = dirty_.begin(); it != dirty_.end();) {
    if (it->first == asn || it->second == asn) {
      it = dirty_.erase(it);
    } else {
      ++it;
    }
  }
}

void ChaosEngine::apply(const FaultEvent& event) {
  log_.push_back(event.to_string());
  switch (event.kind) {
    case FaultKind::LinkDown:
      // peer_down flushes both receivers, so any dirt on the link is gone.
      network_.set_link_up(event.a, event.b, false);
      clean_direction_pair(event.a, event.b);
      ++stats_.link_downs;
      break;
    case FaultKind::LinkUp:
      network_.set_link_up(event.a, event.b, true);
      clean_direction_pair(event.a, event.b);
      ++stats_.link_ups;
      break;
    case FaultKind::SessionReset:
      network_.reset_session(event.a, event.b);
      clean_direction_pair(event.a, event.b);
      ++stats_.session_resets;
      break;
    case FaultKind::RouterCrash:
      network_.crash_router(event.a);
      clean_router(event.a);
      ++stats_.crashes;
      break;
    case FaultKind::RouterRestart:
      network_.restart_router(event.a);
      clean_router(event.a);
      ++stats_.restarts;
      break;
  }
}

bgp::Network::TapVerdict ChaosEngine::tap(Asn from, Asn to, const Update& update) {
  using Verdict = bgp::Network::TapVerdict;
  const ScheduleConfig& cfg = schedule_.config;
  const sim::Time now = network_.clock().now();
  ++stats_.msgs_seen;

  Verdict verdict;

  if (cfg.msg_drop > 0.0 && tap_rng_.chance(cfg.msg_drop)) {
    // The receiver's view of `from` may now be stale until a reset replays
    // the table — mark the direction dirty for the invariant checker.
    ++stats_.msgs_dropped;
    dirty_.insert({from, to});
    log_.push_back(msg_log_line(now, "msg-drop", from, to));
    verdict.action = Verdict::Action::Drop;
    return verdict;
  }

  bool corrupted = false;
  if (cfg.msg_corrupt > 0.0 && tap_rng_.chance(cfg.msg_corrupt)) {
    // Damage the real RFC 4271 encoding and let the receiver's decoder
    // judge it, exactly as a corrupted TCP payload would be handled.
    std::vector<std::uint8_t> bytes;
    bool encodable = true;
    try {
      bytes = bgp::wire::encode_sim_update(update);
    } catch (const std::invalid_argument&) {
      encodable = false;  // e.g. 4-octet ASN topology; skip corruption
    }
    if (encodable) {
      corrupted = true;
      if (tap_rng_.chance(0.5) && bytes.size() > 1) {
        bytes.resize(tap_rng_.uniform(1, bytes.size() - 1));  // truncate
      } else {
        const int flips = 1 + static_cast<int>(tap_rng_.uniform(
                                  0, cfg.max_corrupt_flips > 0 ? cfg.max_corrupt_flips - 1 : 0));
        for (int i = 0; i < flips; ++i) {
          const std::size_t bit = tap_rng_.uniform(0, bytes.size() * 8 - 1);
          bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        }
      }
      try {
        const bgp::wire::UpdateMessage decoded = bgp::wire::decode_update(bytes);
        std::vector<Update> updates = bgp::wire::to_sim_updates(decoded);
        if (updates.size() == 1 && same_update(updates.front(), update)) {
          ++stats_.corruptions_harmless;  // damage hit padding-equivalent bits
        } else if (updates.size() == 1 &&
                   updates.front().kind == Update::Kind::EndOfRib &&
                   update.kind != Update::Kind::EndOfRib) {
          // Decoded to an empty UPDATE (the End-of-RIB wire form): the
          // content is gone, same as a drop. Delivering it would forge a
          // graceful-restart End-of-RIB the sender never emitted.
          ++stats_.corruptions_undetected;
          dirty_.insert({from, to});
          log_.push_back(msg_log_line(now, "msg-corrupt-empty", from, to));
          verdict.action = Verdict::Action::Drop;
          return verdict;
        } else {
          // The checksum-free nightmare: valid wire form, different routes.
          ++stats_.corruptions_undetected;
          dirty_.insert({from, to});
          log_.push_back(msg_log_line(now, "msg-corrupt-undetected", from, to));
          verdict.deliveries = std::move(updates);
        }
      } catch (const bgp::wire::WireError&) {
        // Receiver sends a NOTIFICATION and resets the session; the flush +
        // replay restores consistency, so the link is not dirty.
        ++stats_.corruptions_detected;
        clean_direction_pair(from, to);
        log_.push_back(msg_log_line(now, "msg-corrupt-reset", from, to));
        verdict.action = Verdict::Action::ResetSession;
        return verdict;
      }
    }
  }

  if (!corrupted && cfg.msg_duplicate > 0.0 && tap_rng_.chance(cfg.msg_duplicate)) {
    // Duplicate delivery is idempotent at the receiver (same route replaces
    // itself), so no dirt.
    ++stats_.msgs_duplicated;
    log_.push_back(msg_log_line(now, "msg-duplicate", from, to));
    verdict.deliveries = {update, update};
  }

  if (cfg.msg_reorder > 0.0 && tap_rng_.chance(cfg.msg_reorder)) {
    // Let this message fall behind later traffic: an overtaken stale
    // announcement can clobber a newer one, so the direction is dirty.
    ++stats_.msgs_reordered;
    dirty_.insert({from, to});
    log_.push_back(msg_log_line(now, "msg-reorder", from, to));
    verdict.extra_delay = tap_rng_.uniform01() * cfg.reorder_jitter;
    verdict.allow_reorder = true;
  }

  return verdict;
}

}  // namespace moas::chaos
