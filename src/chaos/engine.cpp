#include "moas/chaos/engine.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "moas/bgp/wire.h"
#include "moas/chaos/invariants.h"
#include "moas/obs/metrics.h"
#include "moas/obs/trace.h"

namespace moas::chaos {

namespace {

using bgp::Asn;
using bgp::Update;

std::string msg_log_line(sim::Time at, const char* what, Asn from, Asn to) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "t=%.6f %s %u->%u", at, what, from, to);
  return buf;
}

bool same_update(const Update& a, const Update& b) {
  return a.kind == b.kind && a.prefix == b.prefix && a.route == b.route;
}

}  // namespace

ChaosEngine::ChaosEngine(bgp::Network& network, FaultSchedule schedule)
    : network_(network),
      schedule_(std::move(schedule)),
      tap_rng_(schedule_.config.seed ^ 0x7a9f00dULL) {}

ChaosEngine::~ChaosEngine() { remove_tap(); }

void ChaosEngine::arm() {
  const sim::Time now = network_.clock().now();
  for (const FaultEvent& event : schedule_.events) {
    network_.clock().schedule_at(std::max(event.at, now), [this, event] { apply(event); });
  }
  next_event_ = schedule_.events.size();  // consumed; batch mode would double-apply
  if (schedule_.config.has_message_faults()) install_tap();
}

std::size_t ChaosEngine::apply_batch(std::size_t max_events) {
  std::size_t applied = 0;
  while (applied < max_events && next_event_ < schedule_.events.size()) {
    apply(schedule_.events[next_event_++]);
    ++applied;
  }
  return applied;
}

void ChaosEngine::install_tap() {
  if (tap_installed_) return;
  network_.set_message_tap(
      [this](Asn from, Asn to, const Update& update) { return tap(from, to, update); });
  tap_installed_ = true;
}

void ChaosEngine::remove_tap() {
  if (!tap_installed_) return;
  network_.set_message_tap(nullptr);
  tap_installed_ = false;
}

std::string ChaosEngine::log_text() const {
  std::string out;
  for (const std::string& line : log_) {
    out += line;
    out += '\n';
  }
  return out;
}

void ChaosEngine::clean_direction_pair(Asn a, Asn b) {
  dirty_.erase({a, b});
  dirty_.erase({b, a});
}

void ChaosEngine::clean_router(Asn asn) {
  for (auto it = dirty_.begin(); it != dirty_.end();) {
    if (it->first == asn || it->second == asn) {
      it = dirty_.erase(it);
    } else {
      ++it;
    }
  }
}

void ChaosEngine::trace_fault(const char* note, Asn from, Asn to, bool degraded) {
  obs::TraceBus* bus = network_.trace();
  if (!obs::trace_wants(bus, obs::TraceLevel::Summary)) return;
  bus->emit(obs::TraceEvent(
                degraded ? obs::EventKind::ErrorDegraded : obs::EventKind::MessageFault,
                from, to)
                .with_note(note));
}

void ChaosEngine::collect_metrics(obs::MetricsRegistry& registry) const {
  registry.count("chaos.link_downs", stats_.link_downs);
  registry.count("chaos.link_ups", stats_.link_ups);
  registry.count("chaos.session_resets", stats_.session_resets);
  registry.count("chaos.crashes", stats_.crashes);
  registry.count("chaos.restarts", stats_.restarts);
  registry.count("chaos.msgs_seen", stats_.msgs_seen);
  registry.count("chaos.msgs_dropped", stats_.msgs_dropped);
  registry.count("chaos.msgs_duplicated", stats_.msgs_duplicated);
  registry.count("chaos.msgs_reordered", stats_.msgs_reordered);
  registry.count("chaos.corruptions_detected", stats_.corruptions_detected);
  registry.count("chaos.corruptions_undetected", stats_.corruptions_undetected);
  registry.count("chaos.corruptions_harmless", stats_.corruptions_harmless);
  registry.count("chaos.attr_corruptions_applied", stats_.attr_corruptions_applied);
  registry.count("chaos.corrupt_session_resets", stats_.corrupt_session_resets);
  registry.count("chaos.treat_as_withdraws", stats_.treat_as_withdraws);
  registry.count("chaos.attr_discards", stats_.attr_discards);
  registry.count("chaos.poisoned_blocked", stats_.poisoned_blocked);
  registry.count("chaos.route_refreshes_requested", stats_.route_refreshes_requested);
}

void ChaosEngine::apply(const FaultEvent& event) {
  log_.push_back(event.to_string());
  if (obs::TraceBus* bus = network_.trace();
      obs::trace_wants(bus, obs::TraceLevel::Summary)) {
    bus->emit(obs::TraceEvent(obs::EventKind::FaultInjected, event.a, event.b)
                  .with_note(event.to_string()));
  }
  switch (event.kind) {
    case FaultKind::LinkDown:
      // peer_down flushes both receivers, so any dirt on the link is gone.
      network_.set_link_up(event.a, event.b, false);
      clean_direction_pair(event.a, event.b);
      ++stats_.link_downs;
      break;
    case FaultKind::LinkUp:
      network_.set_link_up(event.a, event.b, true);
      clean_direction_pair(event.a, event.b);
      ++stats_.link_ups;
      break;
    case FaultKind::SessionReset:
      network_.reset_session(event.a, event.b);
      clean_direction_pair(event.a, event.b);
      ++stats_.session_resets;
      break;
    case FaultKind::RouterCrash:
      network_.crash_router(event.a);
      clean_router(event.a);
      ++stats_.crashes;
      break;
    case FaultKind::RouterRestart:
      network_.restart_router(event.a);
      clean_router(event.a);
      ++stats_.restarts;
      break;
    case FaultKind::AttrCorrupt:
      // Arm one corruption for this direction; the tap damages the next
      // announcement crossing it. Nothing else is logged for this event —
      // the outcome's timing depends on traffic, and the replay log must
      // stay byte-identical across 4271/7606 ablation arms.
      ++pending_corruptions_[{event.a, event.b}];
      break;
  }
}

bgp::Network::TapVerdict ChaosEngine::tap(Asn from, Asn to, const Update& update) {
  using Verdict = bgp::Network::TapVerdict;
  const ScheduleConfig& cfg = schedule_.config;
  const sim::Time now = network_.clock().now();
  ++stats_.msgs_seen;

  Verdict verdict;

  // Scheduled attribute corruption outranks the sampled faults: with a
  // corruption-only schedule no sampled rate is set, so the tap consumes
  // RNG draws only inside apply_attr_corruption and the two ablation arms
  // see identical fault sequences.
  if (!pending_corruptions_.empty() && update.kind == Update::Kind::Announce) {
    auto pending = pending_corruptions_.find({from, to});
    if (pending != pending_corruptions_.end()) {
      if (--pending->second == 0) pending_corruptions_.erase(pending);
      return apply_attr_corruption(from, to, update);
    }
  }

  if (cfg.msg_drop > 0.0 && tap_rng_.chance(cfg.msg_drop)) {
    // The receiver's view of `from` may now be stale until a reset replays
    // the table — mark the direction dirty for the invariant checker.
    ++stats_.msgs_dropped;
    dirty_.insert({from, to});
    log_.push_back(msg_log_line(now, "msg-drop", from, to));
    trace_fault("msg-drop", from, to);
    verdict.action = Verdict::Action::Drop;
    return verdict;
  }

  bool corrupted = false;
  if (cfg.msg_corrupt > 0.0 && tap_rng_.chance(cfg.msg_corrupt)) {
    // Damage the real RFC 4271 encoding and let the receiver's decoder
    // judge it, exactly as a corrupted TCP payload would be handled.
    std::vector<std::uint8_t> bytes;
    bool encodable = true;
    try {
      bytes = bgp::wire::encode_sim_update(update);
    } catch (const std::invalid_argument&) {
      encodable = false;  // e.g. 4-octet ASN topology; skip corruption
    }
    if (encodable) {
      corrupted = true;
      if (tap_rng_.chance(0.5) && bytes.size() > 1) {
        bytes.resize(tap_rng_.uniform(1, bytes.size() - 1));  // truncate
      } else {
        const int flips = 1 + static_cast<int>(tap_rng_.uniform(
                                  0, cfg.max_corrupt_flips > 0 ? cfg.max_corrupt_flips - 1 : 0));
        for (int i = 0; i < flips; ++i) {
          const std::size_t bit = tap_rng_.uniform(0, bytes.size() * 8 - 1);
          bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        }
      }
      try {
        const bgp::wire::UpdateMessage decoded = bgp::wire::decode_update(bytes);
        std::vector<Update> updates = bgp::wire::to_sim_updates(decoded);
        if (updates.size() == 1 && same_update(updates.front(), update)) {
          ++stats_.corruptions_harmless;  // damage hit padding-equivalent bits
        } else if (updates.size() == 1 &&
                   updates.front().kind == Update::Kind::EndOfRib &&
                   update.kind != Update::Kind::EndOfRib) {
          // Decoded to an empty UPDATE (the End-of-RIB wire form): the
          // content is gone, same as a drop. Delivering it would forge a
          // graceful-restart End-of-RIB the sender never emitted.
          ++stats_.corruptions_undetected;
          dirty_.insert({from, to});
          log_.push_back(msg_log_line(now, "msg-corrupt-empty", from, to));
          trace_fault("msg-corrupt-empty", from, to);
          verdict.action = Verdict::Action::Drop;
          return verdict;
        } else {
          // The checksum-free nightmare: valid wire form, different routes.
          ++stats_.corruptions_undetected;
          dirty_.insert({from, to});
          log_.push_back(msg_log_line(now, "msg-corrupt-undetected", from, to));
          trace_fault("msg-corrupt-undetected", from, to);
          verdict.deliveries = std::move(updates);
        }
      } catch (const bgp::wire::WireError&) {
        // Receiver sends a NOTIFICATION and resets the session; the flush +
        // replay restores consistency, so the link is not dirty.
        ++stats_.corruptions_detected;
        clean_direction_pair(from, to);
        log_.push_back(msg_log_line(now, "msg-corrupt-reset", from, to));
        trace_fault("msg-corrupt-reset", from, to);
        verdict.action = Verdict::Action::ResetSession;
        return verdict;
      }
    }
  }

  if (!corrupted && cfg.msg_duplicate > 0.0 && tap_rng_.chance(cfg.msg_duplicate)) {
    // Duplicate delivery is idempotent at the receiver (same route replaces
    // itself), so no dirt.
    ++stats_.msgs_duplicated;
    log_.push_back(msg_log_line(now, "msg-duplicate", from, to));
    trace_fault("msg-duplicate", from, to);
    verdict.deliveries = {update, update};
  }

  if (cfg.msg_reorder > 0.0 && tap_rng_.chance(cfg.msg_reorder)) {
    // Let this message fall behind later traffic: an overtaken stale
    // announcement can clobber a newer one, so the direction is dirty.
    ++stats_.msgs_reordered;
    dirty_.insert({from, to});
    log_.push_back(msg_log_line(now, "msg-reorder", from, to));
    trace_fault("msg-reorder", from, to);
    verdict.extra_delay = tap_rng_.uniform01() * cfg.reorder_jitter;
    verdict.allow_reorder = true;
  }

  return verdict;
}

bgp::Network::TapVerdict ChaosEngine::apply_attr_corruption(Asn from, Asn to,
                                                            const Update& update) {
  using Verdict = bgp::Network::TapVerdict;
  const ScheduleConfig& cfg = schedule_.config;
  Verdict verdict;

  std::vector<std::uint8_t> original;
  try {
    original = bgp::wire::encode_sim_update(update);
  } catch (const std::invalid_argument&) {
    return verdict;  // unencodable (e.g. 4-octet ASN); the fault fizzles
  }

  // Locate the path-attribute section so only it is damaged: the NLRI stays
  // parseable, which is what pins the severity below SessionReset under
  // RFC 7606 while strict RFC 4271 still has to reset.
  const std::size_t withdrawn_len =
      (static_cast<std::size_t>(original[bgp::wire::kHeaderSize]) << 8) |
      original[bgp::wire::kHeaderSize + 1];
  const std::size_t attrs_len_pos = bgp::wire::kHeaderSize + 2 + withdrawn_len;
  const std::size_t attrs_len =
      (static_cast<std::size_t>(original[attrs_len_pos]) << 8) | original[attrs_len_pos + 1];
  if (attrs_len == 0) return verdict;  // nothing to damage
  const std::size_t attrs_begin = attrs_len_pos + 2;

  // Re-roll the damage until the strict decoder rejects the message — a
  // fizzled flip (harmless or still-valid) would make the 4271 arm's fate
  // depend on luck instead of on the error-handling mode under test.
  std::vector<std::uint8_t> bytes;
  bool rejected = false;
  for (int attempt = 0; attempt < 32 && !rejected; ++attempt) {
    bytes = original;
    const int max_flips = cfg.max_corrupt_flips > 0 ? cfg.max_corrupt_flips : 1;
    const int flips = 1 + static_cast<int>(tap_rng_.uniform(0, max_flips - 1));
    for (int i = 0; i < flips; ++i) {
      const std::size_t bit =
          tap_rng_.uniform(attrs_begin * 8, (attrs_begin + attrs_len) * 8 - 1);
      bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    try {
      (void)bgp::wire::decode_update(bytes);
    } catch (const bgp::wire::WireError&) {
      rejected = true;
    }
  }
  if (!rejected) return verdict;  // could not manufacture damage; deliver intact
  ++stats_.attr_corruptions_applied;

  if (!network_.revised_error_handling()) {
    // RFC 4271 arm: the receiver NOTIFYs and resets; flush + replay restore
    // consistency, so the direction is not dirty.
    ++stats_.corrupt_session_resets;
    trace_fault("session-reset", from, to, /*degraded=*/true);
    clean_direction_pair(from, to);
    verdict.action = Verdict::Action::ResetSession;
    return verdict;
  }

  // RFC 7606 arm: classify and survive.
  bgp::wire::DecodeResult result;
  try {
    result = bgp::wire::decode_update_revised(bytes);
  } catch (const bgp::wire::WireError&) {
    // Attribute-confined damage must never be SessionReset class; if it
    // somehow is, count it so the no-reset invariant flags the run.
    ++stats_.corrupt_session_resets;
    trace_fault("session-reset", from, to, /*degraded=*/true);
    clean_direction_pair(from, to);
    verdict.action = Verdict::Action::ResetSession;
    return verdict;
  }

  if (result.severity() >= bgp::wire::ErrorAction::TreatAsWithdraw) {
    ++stats_.treat_as_withdraws;
    trace_fault("treat-as-withdraw", from, to, /*degraded=*/true);
    // Record what the damaged attributes would have injected — the RIB
    // audit can then assert none of it was accepted anywhere.
    if (update.route && result.message.attrs &&
        !result.message.attrs->communities.empty() &&
        !(result.message.attrs->communities == update.route->attrs.communities)) {
      poisoned_communities_.insert(result.message.attrs->communities);
    }
    verdict.deliveries = bgp::wire::to_sim_updates(result.to_deliverable());
    // RFC 7606 §6: recover the treat-as-withdrawn route via route refresh
    // (RFC 2918). The sender's bookkeeping still says the route is out
    // there, so without this the hole would cascade downstream as withdraw
    // churn until the next organic change. One link delay for the
    // error-withdraw to land plus one for the REFRESH to travel back; the
    // re-announcement then crosses the tap like any other message.
    {
      const double rtt = 2.0 * network_.config().link_delay;
      const bgp::Asn sender = from;
      const bgp::Asn receiver = to;
      const net::Prefix prefix = update.prefix;
      network_.clock().schedule_after(rtt, [this, sender, receiver, prefix] {
        ++stats_.route_refreshes_requested;
        network_.router(sender).refresh_route(receiver, prefix);
      });
    }
    return verdict;
  }

  // AttributeDiscard: the routes survive minus a non-essential attribute —
  // unless the salvage touched the communities (the MOAS list), in which
  // case delivering it would hand the detector a corrupted list; demote
  // those prefixes to error-withdraw instead.
  ++stats_.attr_discards;
  trace_fault("attribute-discard", from, to, /*degraded=*/true);
  std::vector<Update> deliveries = bgp::wire::to_sim_updates(result.to_deliverable());
  bool differs = deliveries.size() != 1;
  for (Update& delivery : deliveries) {
    if (delivery.kind == Update::Kind::Announce && update.route &&
        !(delivery.route->attrs.communities == update.route->attrs.communities)) {
      if (!delivery.route->attrs.communities.empty()) {
        poisoned_communities_.insert(delivery.route->attrs.communities);
      }
      ++stats_.poisoned_blocked;
      trace_fault("poisoned-blocked", from, to, /*degraded=*/true);
      delivery = Update::make_error_withdraw(delivery.prefix);
    }
    if (!same_update(delivery, update)) differs = true;
  }
  // A delivery that differs from what the sender booked leaves the
  // receiver's view out of sync until something replays it — dirty.
  if (differs) dirty_.insert({from, to});
  verdict.deliveries = std::move(deliveries);
  return verdict;
}

void register_corruption_invariants(NetworkInvariantChecker& checker,
                                    const ChaosEngine& engine) {
  checker.add_custom([&engine](const bgp::Network& network,
                               std::vector<NetworkInvariantChecker::Violation>& violations) {
    if (network.revised_error_handling() && engine.stats().corrupt_session_resets > 0) {
      violations.push_back(
          {"revised-no-reset",
           "RFC 7606 enabled but " + std::to_string(engine.stats().corrupt_session_resets) +
               " scheduled corruption(s) reset a session"});
    }
  });
  checker.add_custom([&engine](const bgp::Network& network,
                               std::vector<NetworkInvariantChecker::Violation>& violations) {
    const auto& poisoned = engine.poisoned_communities();
    if (poisoned.empty()) return;
    for (Asn asn : network.asns()) {
      if (network.router_crashed(asn)) continue;
      const bgp::Router& router = network.router(asn);
      for (const net::Prefix& prefix : router.adj_rib_in().prefixes()) {
        for (const bgp::RibEntry* entry : router.adj_rib_in().candidates(prefix)) {
          if (poisoned.contains(entry->route.attrs.communities)) {
            violations.push_back({"corrupted-moas-in-rib",
                                  std::to_string(asn) + " accepted corrupted communities on " +
                                      entry->route.to_string()});
          }
        }
      }
      for (const net::Prefix& prefix : router.loc_rib().prefixes()) {
        const bgp::RibEntry* best = router.loc_rib().best(prefix);
        if (best && poisoned.contains(best->route.attrs.communities)) {
          violations.push_back({"corrupted-moas-selected",
                                std::to_string(asn) + " selected corrupted communities on " +
                                    best->route.to_string()});
        }
      }
    }
  });
}

}  // namespace moas::chaos
