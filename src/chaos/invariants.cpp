#include "moas/chaos/invariants.h"

#include <stdexcept>

namespace moas::chaos {

namespace {

using bgp::Asn;
using bgp::Network;
using bgp::Route;
using bgp::Router;

/// Equality of the wire-visible part of a route: LOCAL_PREF is rewritten by
/// the receiver's import policy, so the mirror comparison must ignore it.
bool same_on_wire(const Route& a, const Route& b) {
  return a.prefix == b.prefix && a.attrs.path == b.attrs.path &&
         a.attrs.origin_code == b.attrs.origin_code && a.attrs.med == b.attrs.med &&
         a.attrs.communities == b.attrs.communities;
}

std::string link_name(Asn from, Asn to) {
  return std::to_string(from) + "->" + std::to_string(to);
}

}  // namespace

NetworkInvariantChecker::NetworkInvariantChecker() : NetworkInvariantChecker(Options()) {}

NetworkInvariantChecker::NetworkInvariantChecker(Options options) : options_(options) {}

void NetworkInvariantChecker::add_custom(CustomCheck check) {
  custom_.push_back(std::move(check));
}

void NetworkInvariantChecker::exclude_direction(Asn from, Asn to) {
  excluded_.insert({from, to});
}

void NetworkInvariantChecker::clear_exclusions() { excluded_.clear(); }

std::vector<NetworkInvariantChecker::Violation> NetworkInvariantChecker::check(
    const Network& network) const {
  std::vector<Violation> violations;

  for (Asn asn : network.asns()) {
    const Router& router = network.router(asn);
    if (network.router_crashed(asn)) continue;  // no state to audit

    if (options_.check_loc_rib_liveness) {
      // Every selected route must be reachable: learned locally, or from a
      // live peer over a live link. A best route pointing across a failed
      // link means a session-down flush was missed somewhere.
      for (const net::Prefix& prefix : router.loc_rib().prefixes()) {
        const bgp::RibEntry* entry = router.loc_rib().best(prefix);
        if (entry->learned_from == asn) continue;  // local origination
        const Asn via = entry->learned_from;
        if (!network.link_up(asn, via)) {
          violations.push_back({"loc-rib-live-link",
                                std::to_string(asn) + " selects " + entry->route.to_string() +
                                    " learned over failed link " + link_name(via, asn)});
        } else if (network.router_crashed(via)) {
          violations.push_back({"loc-rib-live-peer",
                                std::to_string(asn) + " selects " + entry->route.to_string() +
                                    " from crashed router " + std::to_string(via)});
        } else if (!router.peer_session_up(via)) {
          violations.push_back({"loc-rib-live-session",
                                std::to_string(asn) + " selects " + entry->route.to_string() +
                                    " from " + std::to_string(via) +
                                    " whose session is down"});
        }
      }
    }

    if (options_.check_adj_rib_mirror) {
      // This router is the *receiver*; audit its view of each sender.
      for (Asn sender : router.peers()) {
        for (const net::Prefix& prefix : router.adj_rib_in().prefixes()) {
          const bgp::RibEntry* held = router.adj_rib_in().from_peer(prefix, sender);
          if (!held) continue;
          if (!router.peer_session_up(sender)) {
            violations.push_back({"adj-rib-dead-session",
                                  std::to_string(asn) + " still holds " +
                                      held->route.to_string() + " from " +
                                      std::to_string(sender) +
                                      " although that session is down"});
            continue;
          }
          if (excluded_.contains({sender, asn})) continue;  // lossy link: view unreliable
          if (network.router_crashed(sender)) continue;     // flush arrives via peer_down
          const Route* advertised = network.router(sender).advertised_to(asn, prefix);
          if (!advertised) {
            violations.push_back({"adj-rib-stale",
                                  std::to_string(asn) + " holds " + held->route.to_string() +
                                      " but " + std::to_string(sender) +
                                      " has no outstanding advertisement for it"});
          } else if (!same_on_wire(held->route, *advertised)) {
            violations.push_back({"adj-rib-mismatch",
                                  std::to_string(asn) + " holds " + held->route.to_string() +
                                      " but " + std::to_string(sender) + " last sent " +
                                      advertised->to_string()});
          }
          // The converse — sender advertised, receiver holds nothing — is
          // legal: the receiver's validator may have vetoed the route or
          // discarded it for an AS-path loop.
        }
      }
    }

    if (options_.check_stale_hygiene) {
      // Stale-route hygiene (RFC 4724): quiescence means every restart
      // timer fired and every re-established peer delivered its End-of-RIB,
      // so any surviving stale mark escaped both sweep paths. The sender's
      // session state tells us which path lost it.
      for (const auto& [prefix, sender] : router.adj_rib_in().stale_entries()) {
        const char* name = router.peer_session_up(sender) ? "stale-route-after-eor"
                                                          : "stale-route-past-timer";
        violations.push_back({name,
                              std::to_string(asn) + " still marks " + prefix.to_string() +
                                  " from " + std::to_string(sender) +
                                  " stale at quiescence"});
      }
    }

    if (options_.check_advertised_consistency && !router.has_export_filter()) {
      // Sender-side audit: bookkeeping vs. what export policy would emit.
      for (Asn peer : router.peers()) {
        if (!router.peer_session_up(peer)) continue;
        for (const net::Prefix& prefix : router.advertised_prefixes(peer)) {
          const Route* advertised = router.advertised_to(peer, prefix);
          auto rebuilt = router.rebuild_export(peer, prefix);
          if (!rebuilt) {
            violations.push_back(
                {"advertised-should-withdraw",
                 std::to_string(asn) + " booked " + advertised->to_string() + " toward " +
                     std::to_string(peer) + " but export policy yields nothing"});
          } else if (*rebuilt != *advertised) {
            violations.push_back({"advertised-mismatch",
                                  std::to_string(asn) + " booked " + advertised->to_string() +
                                      " toward " + std::to_string(peer) +
                                      " but would now send " + rebuilt->to_string()});
          }
        }
        for (const net::Prefix& prefix : router.loc_rib().prefixes()) {
          if (router.advertised_to(peer, prefix)) continue;  // audited above
          if (auto rebuilt = router.rebuild_export(peer, prefix)) {
            violations.push_back({"advertised-missing",
                                  std::to_string(asn) + " should be advertising " +
                                      rebuilt->to_string() + " toward " +
                                      std::to_string(peer) + " but booked nothing"});
          }
        }
      }
    }
  }

  for (const CustomCheck& custom : custom_) custom(network, violations);
  return violations;
}

void NetworkInvariantChecker::require_clean(const Network& network) const {
  const std::vector<Violation> violations = check(network);
  if (violations.empty()) return;
  std::string message = "network invariants violated (" +
                        std::to_string(violations.size()) + "):";
  for (const Violation& violation : violations) {
    message += "\n  ";
    message += violation.to_string();
  }
  throw std::runtime_error(message);
}

}  // namespace moas::chaos
