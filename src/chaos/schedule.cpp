#include "moas/chaos/schedule.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "moas/util/assert.h"
#include "moas/util/rng.h"

namespace moas::chaos {

namespace {

/// Exponential draw with the given mean, floored away from zero so a fault
/// always has an observable extent.
sim::Time exponential(util::Rng& rng, sim::Time mean) {
  const double u = rng.uniform01();
  return std::max<sim::Time>(1e-3, -mean * std::log1p(-u));
}

struct Interval {
  sim::Time down;
  sim::Time up;
};

/// Sample `count` down/up intervals inside [start, start+horizon), merging
/// overlaps so the result is a clean alternating down/up train.
std::vector<Interval> sample_intervals(util::Rng& rng, unsigned count, sim::Time start,
                                       sim::Time horizon, sim::Time mean_downtime) {
  std::vector<Interval> intervals;
  intervals.reserve(count);
  const sim::Time end = start + horizon;
  for (unsigned i = 0; i < count; ++i) {
    // Leave headroom so the recovery fits strictly inside the horizon.
    const sim::Time down = start + rng.uniform01() * horizon * 0.9;
    sim::Time up = down + exponential(rng, mean_downtime);
    if (up >= end) up = end - 1e-3;
    if (up <= down) continue;  // degenerate; drop it
    intervals.push_back({down, up});
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& x, const Interval& y) { return x.down < y.down; });
  std::vector<Interval> merged;
  for (const Interval& iv : intervals) {
    if (!merged.empty() && iv.down <= merged.back().up) {
      merged.back().up = std::max(merged.back().up, iv.up);
    } else {
      merged.push_back(iv);
    }
  }
  return merged;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::LinkDown: return "link-down";
    case FaultKind::LinkUp: return "link-up";
    case FaultKind::SessionReset: return "session-reset";
    case FaultKind::RouterCrash: return "router-crash";
    case FaultKind::RouterRestart: return "router-restart";
    case FaultKind::AttrCorrupt: return "attr-corrupt";
  }
  return "?";
}

std::string FaultEvent::to_string() const {
  char buf[96];
  if (kind == FaultKind::RouterCrash || kind == FaultKind::RouterRestart) {
    std::snprintf(buf, sizeof(buf), "t=%.6f %s %u", at, chaos::to_string(kind), a);
  } else if (kind == FaultKind::AttrCorrupt) {
    std::snprintf(buf, sizeof(buf), "t=%.6f %s %u->%u", at, chaos::to_string(kind), a, b);
  } else {
    std::snprintf(buf, sizeof(buf), "t=%.6f %s %u--%u", at, chaos::to_string(kind), a, b);
  }
  return buf;
}

std::string FaultSchedule::to_string() const {
  std::string out;
  for (const FaultEvent& event : events) {
    out += event.to_string();
    out += '\n';
  }
  return out;
}

FaultSchedule compile_schedule(const ScheduleConfig& config,
                               const std::vector<std::pair<bgp::Asn, bgp::Asn>>& links,
                               const std::vector<bgp::Asn>& asns) {
  MOAS_REQUIRE(config.horizon > 0.0, "schedule horizon must be positive");
  MOAS_REQUIRE(config.flaps_per_link >= 0.0 && config.session_resets_per_link >= 0.0 &&
                   config.crashes_per_router >= 0.0 && config.attr_corruptions_per_link >= 0.0,
               "fault rates must be non-negative");
  MOAS_REQUIRE(config.msg_drop >= 0.0 && config.msg_drop <= 1.0 &&
                   config.msg_duplicate >= 0.0 && config.msg_duplicate <= 1.0 &&
                   config.msg_reorder >= 0.0 && config.msg_reorder <= 1.0 &&
                   config.msg_corrupt >= 0.0 && config.msg_corrupt <= 1.0,
               "message fault probabilities must lie in [0, 1]");

  FaultSchedule schedule;
  schedule.config = config;
  util::Rng rng(config.seed ^ 0xc4a05ULL);

  // Links and routers are visited in their (sorted) input order, and every
  // draw comes from the single sequential generator — the schedule is a pure
  // function of (config, links, asns).
  for (const auto& [a, b] : links) {
    if (config.flaps_per_link > 0.0) {
      for (const Interval& iv :
           sample_intervals(rng, rng.poisson(config.flaps_per_link), config.start,
                            config.horizon, config.downtime_mean)) {
        schedule.events.push_back({iv.down, FaultKind::LinkDown, a, b});
        schedule.events.push_back({iv.up, FaultKind::LinkUp, a, b});
      }
    }
    if (config.session_resets_per_link > 0.0) {
      const unsigned resets = rng.poisson(config.session_resets_per_link);
      for (unsigned i = 0; i < resets; ++i) {
        const sim::Time at = config.start + rng.uniform01() * config.horizon * 0.9;
        schedule.events.push_back({at, FaultKind::SessionReset, a, b});
      }
    }
    if (config.attr_corruptions_per_link > 0.0) {
      const unsigned corruptions = rng.poisson(config.attr_corruptions_per_link);
      for (unsigned i = 0; i < corruptions; ++i) {
        const sim::Time at = config.start + rng.uniform01() * config.horizon * 0.9;
        // Directed: pick which side's announcements get damaged.
        const bool a_sends = rng.chance(0.5);
        schedule.events.push_back(
            {at, FaultKind::AttrCorrupt, a_sends ? a : b, a_sends ? b : a});
      }
    }
  }

  if (config.crashes_per_router > 0.0) {
    for (bgp::Asn asn : asns) {
      for (const Interval& iv :
           sample_intervals(rng, rng.poisson(config.crashes_per_router), config.start,
                            config.horizon, config.restart_delay_mean)) {
        schedule.events.push_back({iv.down, FaultKind::RouterCrash, asn, 0});
        schedule.events.push_back({iv.up, FaultKind::RouterRestart, asn, 0});
      }
    }
  }

  std::sort(schedule.events.begin(), schedule.events.end());
  return schedule;
}

}  // namespace moas::chaos
