// Network-wide consistency audit, run at quiescence.
//
// After the event queue drains, the distributed state of the network must
// be self-consistent: nothing routes over a dead link, every Adj-RIB-In
// mirrors what its peer actually advertised, and each router's
// advertised-state bookkeeping matches what its current Loc-RIB and export
// policy say it should have on the wire. The checker walks the whole
// network and reports every violation with enough context to debug it;
// require_clean() turns any violation into a fatal error.
//
// The checks only hold at quiescence — while messages are in flight the
// RIBs legitimately disagree — so callers must run_to_quiescence() first.
// Directed links marked dirty (a lossy message fault touched them and no
// session reset has cleaned up since) are excluded from the mirror checks.
#pragma once

#include <functional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "moas/bgp/network.h"

namespace moas::chaos {

class NetworkInvariantChecker {
 public:
  struct Violation {
    std::string invariant;  // short name, e.g. "loc-rib-live-link"
    std::string detail;     // full diagnostic
    std::string to_string() const { return invariant + ": " + detail; }
  };

  struct Options {
    /// Every Loc-RIB best route must have been learned over a link that is
    /// currently up from a peer whose session is up (or be local).
    bool check_loc_rib_liveness = true;
    /// Each Adj-RIB-In entry must match the sender's outstanding
    /// advertisement; entries the sender never advertised are stale.
    bool check_adj_rib_mirror = true;
    /// A router's advertised-state bookkeeping must equal what its Loc-RIB
    /// + export policy would put on the wire right now (skipped for routers
    /// with an export filter — deliberately lying routers exist in the
    /// threat model).
    bool check_advertised_consistency = true;
    /// Graceful-restart stale-route hygiene (RFC 4724): at quiescence no
    /// Adj-RIB-In entry may still carry a stale mark. The restart timer has
    /// drained, so a leftover mark means the End-of-RIB sweep or the timer
    /// flush lost a route.
    bool check_stale_hygiene = true;
  };

  NetworkInvariantChecker();
  explicit NetworkInvariantChecker(Options options);

  /// Extra, caller-supplied checks (the core layer registers its MOAS/alarm
  /// invariants here — the chaos library cannot see those types).
  using CustomCheck = std::function<void(const bgp::Network&, std::vector<Violation>&)>;
  void add_custom(CustomCheck check);

  /// Exclude the directed link from mirror checks: a lossy fault made the
  /// receiver's view of `from` unreliable until the next session reset.
  void exclude_direction(bgp::Asn from, bgp::Asn to);
  void clear_exclusions();
  const std::set<std::pair<bgp::Asn, bgp::Asn>>& exclusions() const { return excluded_; }

  /// Run every enabled check; returns all violations found (empty = clean).
  std::vector<Violation> check(const bgp::Network& network) const;

  /// Fatal variant: throws std::runtime_error listing every violation.
  void require_clean(const bgp::Network& network) const;

 private:
  Options options_;
  std::vector<CustomCheck> custom_;
  std::set<std::pair<bgp::Asn, bgp::Asn>> excluded_;  // directed (from, to)
};

}  // namespace moas::chaos
