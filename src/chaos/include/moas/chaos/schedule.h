// Seeded fault-schedule compiler.
//
// compile_schedule() turns a ScheduleConfig plus the network's link and
// router lists into a deterministic, time-sorted FaultSchedule: flap trains
// per link (down/up pairs, overlapping intervals merged), session resets,
// and crash/restart pairs per router. Every recovery lands inside the
// horizon, so a completed schedule always leaves the network all-up — the
// invariant checker can then demand full consistency at final quiescence.
//
// Determinism contract: the same (config, links, asns) triple compiles to an
// identical schedule, and the engine's replay log of it is byte-identical.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "moas/chaos/fault.h"

namespace moas::chaos {

struct ScheduleConfig {
  std::uint64_t seed = 1;

  /// Faults are placed in [start, start + horizon).
  sim::Time start = 0.0;
  sim::Time horizon = 600.0;

  // --- link flaps ----------------------------------------------------------
  /// Mean number of failure intervals per link over the horizon (Poisson).
  double flaps_per_link = 0.0;
  /// Mean downtime per failure (exponential, clamped into the horizon).
  sim::Time downtime_mean = 5.0;

  // --- session resets ------------------------------------------------------
  /// Mean number of BGP session resets per link over the horizon.
  double session_resets_per_link = 0.0;

  // --- router crashes ------------------------------------------------------
  /// Mean number of crash/restart cycles per router over the horizon.
  double crashes_per_router = 0.0;
  /// Mean time a crashed router stays down (exponential, clamped).
  sim::Time restart_delay_mean = 10.0;

  // --- message-level faults (sampled per update by the engine tap) ---------
  double msg_drop = 0.0;       // lose the message silently
  double msg_duplicate = 0.0;  // deliver it twice
  double msg_reorder = 0.0;    // delay it and let later traffic overtake
  sim::Time reorder_jitter = 0.5;
  /// Probability an announcement's encoded wire form is damaged (truncation
  /// or bit flips) before the receiver decodes it.
  double msg_corrupt = 0.0;
  int max_corrupt_flips = 3;

  // --- scheduled attribute corruption (discrete AttrCorrupt events) --------
  /// Mean number of attribute-corruption events per link over the horizon
  /// (Poisson). Unlike msg_corrupt this compiles into discrete, directed
  /// AttrCorrupt events: each arms one corruption that hits the next
  /// announcement crossing its direction, and only the attribute section is
  /// damaged (the NLRI stays parseable). Because the events — not the
  /// per-message outcomes — are what the replay log records, the log is
  /// byte-identical whether the receivers run RFC 4271 or RFC 7606
  /// handling, which is what lets the ablation compare the two arms under
  /// literally the same fault schedule.
  double attr_corruptions_per_link = 0.0;

  bool has_message_faults() const {
    return msg_drop > 0.0 || msg_duplicate > 0.0 || msg_reorder > 0.0 || msg_corrupt > 0.0 ||
           attr_corruptions_per_link > 0.0;
  }
};

struct FaultSchedule {
  ScheduleConfig config;
  std::vector<FaultEvent> events;  // sorted by (at, kind, a, b)

  bool empty() const { return events.empty() && !config.has_message_faults(); }

  /// One line per event — the canonical replay-log form.
  std::string to_string() const;
};

/// Compile the schedule for a concrete network shape. `links` must be the
/// network's sorted unordered-pair link list (bgp::Network::links()) and
/// `asns` its sorted router list; both orderings are part of the
/// determinism contract.
FaultSchedule compile_schedule(const ScheduleConfig& config,
                               const std::vector<std::pair<bgp::Asn, bgp::Asn>>& links,
                               const std::vector<bgp::Asn>& asns);

}  // namespace moas::chaos
