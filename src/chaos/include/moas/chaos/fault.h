// The fault vocabulary of the chaos harness.
//
// A fault schedule is a flat, time-sorted list of these events, compiled
// ahead of a run from a seed (see schedule.h) and replayed through the
// simulation clock by the ChaosEngine. Message-level faults (drop,
// duplicate, reorder, corrupt) are not discrete events — they are sampled
// per message by the engine's tap — so they do not appear here.
#pragma once

#include <string>
#include <vector>

#include "moas/bgp/asn.h"
#include "moas/sim/event_queue.h"

namespace moas::chaos {

enum class FaultKind : std::uint8_t {
  LinkDown,       // physical link fails (sessions on it drop)
  LinkUp,         // physical link recovers (sessions re-establish)
  SessionReset,   // BGP session torn down + re-established; link stays up
  RouterCrash,    // router loses all protocol state, sessions drop
  RouterRestart,  // crashed router cold-starts and re-announces
  AttrCorrupt,    // next announcement a->b gets its attribute bytes damaged
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  sim::Time at = 0.0;
  FaultKind kind = FaultKind::LinkDown;
  /// Link faults use (a, b) with a < b; router faults use a and leave b 0.
  /// AttrCorrupt is directed: a is the sender, b the receiver.
  bgp::Asn a = 0;
  bgp::Asn b = 0;

  /// Stable textual form, e.g. "t=12.500000 link-down 3--7". The replay log
  /// is these lines joined by newlines; the reproducibility guarantee is
  /// that equal seeds produce byte-identical logs.
  std::string to_string() const;

  friend auto operator<=>(const FaultEvent&, const FaultEvent&) = default;
};

}  // namespace moas::chaos
