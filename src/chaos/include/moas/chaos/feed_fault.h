// Seeded feed-fault schedule for the streaming detection pipeline.
//
// A long-lived detector consumes a collector feed that fails in mundane
// ways: the collector goes dark for whole days (gap windows), the transport
// delivers an update twice or out of order within a bounded skew, and table
// lines arrive truncated or garbled. compile_feed_faults() turns a config
// into a deterministic schedule: explicit day-granular gap windows plus a
// pure per-sequence-number fault decision, so the same seed produces the
// same faulted feed no matter how the consumer is threaded or resumed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace moas::chaos {

struct FeedFaultConfig {
  std::uint64_t seed = 1;

  /// Gap windows are placed inside [0, horizon_days). Required > 0 when
  /// `gaps` > 0.
  int horizon_days = 0;
  /// Mean number of whole-day feed outages over the horizon (Poisson).
  double gaps = 0.0;
  /// Mean outage length in days (exponential, at least 1, clamped to the
  /// horizon).
  double gap_mean_days = 2.0;

  /// Probability an update is delivered twice (the copy lands in the next
  /// delivery slot, so duplicates arrive adjacent unless also reordered).
  double duplicate_prob = 0.0;
  /// Probability an update is delayed and overtaken by later traffic.
  double reorder_prob = 0.0;
  /// Maximum delay in delivery slots for a reordered update (bounded skew).
  int reorder_max_skew = 8;
  /// Probability an update's payload is truncated/garbled in flight: the
  /// line still arrives (and consumes a sequence number) but carries no
  /// parseable observation.
  double garble_prob = 0.0;

  bool has_update_faults() const {
    return duplicate_prob > 0.0 || reorder_prob > 0.0 || garble_prob > 0.0;
  }
};

/// Whole days [first_day, last_day] (inclusive) with no feed at all.
struct GapWindow {
  int first_day = 0;
  int last_day = 0;

  bool operator==(const GapWindow&) const = default;
};

struct FeedFaultSchedule {
  FeedFaultConfig config;
  std::vector<GapWindow> gaps;  // sorted, non-overlapping, merged

  /// True if the feed is dark on `day`.
  bool gapped(int day) const;

  /// Total number of dark days.
  int gap_days() const;

  /// Per-update fault decision, a pure function of (seed, seq): the same
  /// update draws the same fate regardless of consumption order, restarts,
  /// or thread count.
  struct Decision {
    bool duplicate = false;
    int reorder_skew = 0;  // 0 = in order; else delay in delivery slots
    bool garble = false;
  };
  Decision decide(std::uint64_t seq) const;

  /// Canonical replay log: config knobs plus one line per gap window.
  /// Byte-identical across runs of the same config.
  std::string to_string() const;
};

/// Compile the schedule. Throws std::invalid_argument on a config that asks
/// for gaps without a horizon or has probabilities outside [0, 1].
FeedFaultSchedule compile_feed_faults(const FeedFaultConfig& config);

}  // namespace moas::chaos
