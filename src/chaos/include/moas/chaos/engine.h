// Deterministic fault-schedule replay.
//
// The ChaosEngine owns a compiled FaultSchedule and drives it into a
// bgp::Network. Two modes:
//
//  * arm(): every fault is scheduled on the network's event queue at its
//    compiled time, interleaved with whatever workload the experiment
//    produces. One run_to_quiescence() then plays workload and faults
//    together. This is how Experiment uses it.
//
//  * apply_batch(): tests pull the next few faults and apply them at the
//    current virtual time, then run to quiescence and audit invariants
//    between batches (the queue may have drained arbitrarily far past the
//    compiled timestamps, so batch mode deliberately ignores them).
//
// Message-level faults are sampled per update by a tap installed on the
// network; the tap's generator is seeded from the schedule, so the full
// fault log — discrete events and message faults alike — is byte-identical
// across runs with equal seeds.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "moas/bgp/network.h"
#include "moas/chaos/schedule.h"
#include "moas/util/rng.h"

namespace moas::obs {
class MetricsRegistry;
}  // namespace moas::obs

namespace moas::chaos {

class NetworkInvariantChecker;

class ChaosEngine {
 public:
  struct Stats {
    std::uint64_t link_downs = 0;
    std::uint64_t link_ups = 0;
    std::uint64_t session_resets = 0;
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t msgs_seen = 0;
    std::uint64_t msgs_dropped = 0;
    std::uint64_t msgs_duplicated = 0;
    std::uint64_t msgs_reordered = 0;
    /// Corruptions the receiver's wire decoder rejected (NOTIFICATION +
    /// session reset — the fault was detected and contained).
    std::uint64_t corruptions_detected = 0;
    /// Corruptions that decoded into *different* routes — the dangerous
    /// case; the touched link is marked dirty for the invariant checker.
    std::uint64_t corruptions_undetected = 0;
    /// Damaged bytes that still decoded to the original message.
    std::uint64_t corruptions_harmless = 0;
    // Scheduled AttrCorrupt events (directed, attribute-section-only damage).
    /// Corruption events that found an announcement to damage. The fate of
    /// each splits by the network's error-handling mode:
    std::uint64_t attr_corruptions_applied = 0;
    /// RFC 4271 fate — NOTIFICATION + session reset. Must be zero when
    /// revised_error_handling is on (the no-reset invariant).
    std::uint64_t corrupt_session_resets = 0;
    /// RFC 7606 fates: the message degraded to withdrawals / lost an attr.
    std::uint64_t treat_as_withdraws = 0;
    std::uint64_t attr_discards = 0;
    /// Deliveries whose salvaged communities differed from the sender's —
    /// demoted to error-withdraw so no corrupted MOAS list reaches a RIB.
    std::uint64_t poisoned_blocked = 0;
    /// RFC 2918 route-refresh requests issued after treat-as-withdraw so
    /// the sender re-advertises the error-withdrawn route.
    std::uint64_t route_refreshes_requested = 0;
  };

  /// The engine must not outlive `network`; it clears its tap on
  /// destruction, so declare it after the Network.
  ChaosEngine(bgp::Network& network, FaultSchedule schedule);
  ~ChaosEngine();

  ChaosEngine(const ChaosEngine&) = delete;
  ChaosEngine& operator=(const ChaosEngine&) = delete;

  /// Schedule every fault at its compiled time and install the message tap.
  void arm();

  /// Batch mode: immediately apply up to `max_events` pending faults at the
  /// current virtual time (ignoring compiled timestamps). Returns how many
  /// were applied; 0 means the schedule is exhausted.
  std::size_t apply_batch(std::size_t max_events);
  bool exhausted() const { return next_event_ >= schedule_.events.size(); }

  /// Install / remove the message tap independently of arm() (batch-mode
  /// tests that want message faults call install_tap themselves).
  void install_tap();
  void remove_tap();

  const FaultSchedule& schedule() const { return schedule_; }
  const Stats& stats() const { return stats_; }

  /// Snapshot every Stats counter into `registry` under "chaos.*" names.
  /// The engine also emits FaultInjected / MessageFault / ErrorDegraded
  /// events onto the network's trace bus (network.trace()) as faults land.
  void collect_metrics(obs::MetricsRegistry& registry) const;

  /// Directed links whose receiver-side view is unreliable because a lossy
  /// message fault hit them and no reset has cleaned up since. Feed these
  /// into NetworkInvariantChecker::exclude_direction before checking.
  const std::set<std::pair<bgp::Asn, bgp::Asn>>& dirty_links() const { return dirty_; }

  /// The replay log: one line per applied fault (discrete and per-message),
  /// in application order. Byte-identical for equal seeds. Scheduled
  /// AttrCorrupt events log only their compiled line — never their
  /// per-message outcome, whose timing depends on traffic — so the log
  /// stays byte-identical between the RFC 4271 and RFC 7606 arms of an
  /// ablation run under the same schedule.
  const std::vector<std::string>& log_lines() const { return log_; }
  std::string log_text() const;

  /// Communities sets that corruption manufactured and the engine refused
  /// to deliver. No RIB anywhere may ever hold one of them (see
  /// register_corruption_invariants).
  const std::set<bgp::CommunitySet>& poisoned_communities() const {
    return poisoned_communities_;
  }

 private:
  void apply(const FaultEvent& event);
  bgp::Network::TapVerdict tap(bgp::Asn from, bgp::Asn to, const bgp::Update& update);
  bgp::Network::TapVerdict apply_attr_corruption(bgp::Asn from, bgp::Asn to,
                                                 const bgp::Update& update);
  void clean_direction_pair(bgp::Asn a, bgp::Asn b);
  void clean_router(bgp::Asn asn);
  /// Emit a MessageFault (or, for the RFC fates, ErrorDegraded) trace event
  /// onto the network's bus, if one is attached and recording.
  void trace_fault(const char* note, bgp::Asn from, bgp::Asn to, bool degraded = false);

  bgp::Network& network_;
  FaultSchedule schedule_;
  util::Rng tap_rng_;
  std::size_t next_event_ = 0;  // batch-mode cursor
  bool tap_installed_ = false;
  std::set<std::pair<bgp::Asn, bgp::Asn>> dirty_;
  /// Armed AttrCorrupt events per directed link, consumed by the next
  /// announcement crossing that direction.
  std::map<std::pair<bgp::Asn, bgp::Asn>, unsigned> pending_corruptions_;
  std::set<bgp::CommunitySet> poisoned_communities_;
  std::vector<std::string> log_;
  Stats stats_;
};

/// The RFC 7606 corruption invariant family. Registers custom checks on the
/// checker: (1) with revised error handling on, no scheduled attribute
/// corruption may have reset a session; (2) no RIB entry — Adj-RIB-In or
/// Loc-RIB, any router — may carry a communities set the engine recorded as
/// corruption-manufactured (a poisoned MOAS list must never be accepted).
/// The engine must outlive the checker's last check() call.
void register_corruption_invariants(NetworkInvariantChecker& checker, const ChaosEngine& engine);

}  // namespace moas::chaos
