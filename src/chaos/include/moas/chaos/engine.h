// Deterministic fault-schedule replay.
//
// The ChaosEngine owns a compiled FaultSchedule and drives it into a
// bgp::Network. Two modes:
//
//  * arm(): every fault is scheduled on the network's event queue at its
//    compiled time, interleaved with whatever workload the experiment
//    produces. One run_to_quiescence() then plays workload and faults
//    together. This is how Experiment uses it.
//
//  * apply_batch(): tests pull the next few faults and apply them at the
//    current virtual time, then run to quiescence and audit invariants
//    between batches (the queue may have drained arbitrarily far past the
//    compiled timestamps, so batch mode deliberately ignores them).
//
// Message-level faults are sampled per update by a tap installed on the
// network; the tap's generator is seeded from the schedule, so the full
// fault log — discrete events and message faults alike — is byte-identical
// across runs with equal seeds.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "moas/bgp/network.h"
#include "moas/chaos/schedule.h"
#include "moas/util/rng.h"

namespace moas::chaos {

class ChaosEngine {
 public:
  struct Stats {
    std::uint64_t link_downs = 0;
    std::uint64_t link_ups = 0;
    std::uint64_t session_resets = 0;
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t msgs_seen = 0;
    std::uint64_t msgs_dropped = 0;
    std::uint64_t msgs_duplicated = 0;
    std::uint64_t msgs_reordered = 0;
    /// Corruptions the receiver's wire decoder rejected (NOTIFICATION +
    /// session reset — the fault was detected and contained).
    std::uint64_t corruptions_detected = 0;
    /// Corruptions that decoded into *different* routes — the dangerous
    /// case; the touched link is marked dirty for the invariant checker.
    std::uint64_t corruptions_undetected = 0;
    /// Damaged bytes that still decoded to the original message.
    std::uint64_t corruptions_harmless = 0;
  };

  /// The engine must not outlive `network`; it clears its tap on
  /// destruction, so declare it after the Network.
  ChaosEngine(bgp::Network& network, FaultSchedule schedule);
  ~ChaosEngine();

  ChaosEngine(const ChaosEngine&) = delete;
  ChaosEngine& operator=(const ChaosEngine&) = delete;

  /// Schedule every fault at its compiled time and install the message tap.
  void arm();

  /// Batch mode: immediately apply up to `max_events` pending faults at the
  /// current virtual time (ignoring compiled timestamps). Returns how many
  /// were applied; 0 means the schedule is exhausted.
  std::size_t apply_batch(std::size_t max_events);
  bool exhausted() const { return next_event_ >= schedule_.events.size(); }

  /// Install / remove the message tap independently of arm() (batch-mode
  /// tests that want message faults call install_tap themselves).
  void install_tap();
  void remove_tap();

  const FaultSchedule& schedule() const { return schedule_; }
  const Stats& stats() const { return stats_; }

  /// Directed links whose receiver-side view is unreliable because a lossy
  /// message fault hit them and no reset has cleaned up since. Feed these
  /// into NetworkInvariantChecker::exclude_direction before checking.
  const std::set<std::pair<bgp::Asn, bgp::Asn>>& dirty_links() const { return dirty_; }

  /// The replay log: one line per applied fault (discrete and per-message),
  /// in application order. Byte-identical for equal seeds.
  const std::vector<std::string>& log_lines() const { return log_; }
  std::string log_text() const;

 private:
  void apply(const FaultEvent& event);
  bgp::Network::TapVerdict tap(bgp::Asn from, bgp::Asn to, const bgp::Update& update);
  void clean_direction_pair(bgp::Asn a, bgp::Asn b);
  void clean_router(bgp::Asn asn);

  bgp::Network& network_;
  FaultSchedule schedule_;
  util::Rng tap_rng_;
  std::size_t next_event_ = 0;  // batch-mode cursor
  bool tap_installed_ = false;
  std::set<std::pair<bgp::Asn, bgp::Asn>> dirty_;
  std::vector<std::string> log_;
  Stats stats_;
};

}  // namespace moas::chaos
