// Seeded registry-outage fault family.
//
// The §4.4 resolution step leans on exactly the infrastructure the paper
// flags as circularly dependent on routing: DNS lookups need routes, IRR
// mirrors sit behind the same transit the hijack is disturbing. This family
// models that dependency failing: seeded outage windows during which a
// registry source answers nothing (requests run to their timeout), plus
// latency-spike windows that multiply every sampled lookup latency.
//
// Like chaos::compile_schedule, compilation is pure: the same
// (config, num_sources) pair compiles to an identical schedule, and
// to_string() renders a byte-identical replay log for equal seeds — which is
// what lets ablation_resolvers compare resolver hardening arms under
// literally the same fault schedule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "moas/sim/event_queue.h"

namespace moas::chaos {

struct RegistryOutageConfig {
  std::uint64_t seed = 1;

  /// Windows are placed in [start, start + horizon).
  sim::Time start = 0.0;
  sim::Time horizon = 600.0;

  /// Which sources an outage window takes down.
  enum class Scope : std::uint8_t {
    AllSources,   // the registry infrastructure itself is unreachable
    PrimaryOnly,  // only the first (e.g. DNS) source; mirrors stay up
  };
  Scope scope = Scope::AllSources;

  /// Mean number of outage windows over the horizon (Poisson; 0 = none).
  double outages = 0.0;
  /// Mean outage duration (exponential, clamped into the horizon).
  sim::Time outage_mean = 10.0;

  /// Mean number of latency-spike windows over the horizon (Poisson).
  double spikes = 0.0;
  /// Mean spike duration (exponential, clamped).
  sim::Time spike_mean = 10.0;
  /// Sampled lookup latencies are multiplied by this inside a spike window.
  double spike_factor = 10.0;

  bool empty() const { return outages <= 0.0 && spikes <= 0.0; }
};

struct RegistryOutageSchedule {
  /// A half-open [start, end) window. Outage windows use `source` = -1 for
  /// all-sources scope or the affected source index; spike windows carry the
  /// latency multiplier in `factor`.
  struct Window {
    sim::Time start = 0.0;
    sim::Time end = 0.0;
    int source = -1;      // -1 = every source
    double factor = 1.0;  // latency multiplier (spike windows only)

    friend auto operator<=>(const Window&, const Window&) = default;
  };

  RegistryOutageConfig config;
  std::vector<Window> outages;  // sorted by (start, end, source)
  std::vector<Window> spikes;   // sorted likewise

  bool empty() const { return outages.empty() && spikes.empty(); }

  /// Is source `source` unreachable at time `t`?
  bool down(std::size_t source, sim::Time t) const;

  /// Latency multiplier at time `t` (product of active spike windows; 1.0
  /// outside every window).
  double latency_factor(sim::Time t) const;

  /// One line per window — the canonical replay-log form, e.g.
  /// "t=12.500000..17.250000 registry-outage all". Byte-identical for equal
  /// (config, num_sources) inputs.
  std::string to_string() const;
};

/// Compile the outage schedule for a resolver chain of `num_sources`
/// backends. PrimaryOnly scope requires num_sources >= 1 and pins every
/// outage window to source 0.
RegistryOutageSchedule compile_registry_outages(const RegistryOutageConfig& config,
                                                std::size_t num_sources);

}  // namespace moas::chaos
