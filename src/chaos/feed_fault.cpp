#include "moas/chaos/feed_fault.h"

#include <algorithm>
#include <cmath>

#include "moas/util/assert.h"
#include "moas/util/rng.h"
#include "moas/util/strings.h"

namespace moas::chaos {

namespace {

/// splitmix64 finalizer — the per-seq decision hash. Independent of util::Rng
/// state so decisions are order-free.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void check_prob(double p, const char* name) {
  MOAS_REQUIRE(p >= 0.0 && p <= 1.0, std::string(name) + " must be in [0, 1]");
}

}  // namespace

bool FeedFaultSchedule::gapped(int day) const {
  for (const GapWindow& g : gaps) {
    if (day < g.first_day) return false;
    if (day <= g.last_day) return true;
  }
  return false;
}

int FeedFaultSchedule::gap_days() const {
  int total = 0;
  for (const GapWindow& g : gaps) total += g.last_day - g.first_day + 1;
  return total;
}

FeedFaultSchedule::Decision FeedFaultSchedule::decide(std::uint64_t seq) const {
  Decision d;
  if (!config.has_update_faults()) return d;
  const std::uint64_t h = mix(config.seed ^ (seq * 0xd1b54a32d192ed03ULL));
  // Three independent draws carved from one hash: low bits for garble,
  // middle for duplicate, a re-mix for the reorder roll + skew.
  if (config.garble_prob > 0.0 && unit(h) < config.garble_prob) d.garble = true;
  const std::uint64_t h2 = mix(h);
  if (config.duplicate_prob > 0.0 && unit(h2) < config.duplicate_prob) d.duplicate = true;
  const std::uint64_t h3 = mix(h2);
  if (config.reorder_prob > 0.0 && config.reorder_max_skew > 0 &&
      unit(h3) < config.reorder_prob) {
    d.reorder_skew = 1 + static_cast<int>(mix(h3) %
                                          static_cast<std::uint64_t>(config.reorder_max_skew));
  }
  return d;
}

std::string FeedFaultSchedule::to_string() const {
  std::string out = "feed-faults seed=" + std::to_string(config.seed) +
                    " horizon=" + std::to_string(config.horizon_days) +
                    " dup=" + util::fmt_double(config.duplicate_prob, 4) +
                    " reorder=" + util::fmt_double(config.reorder_prob, 4) +
                    " skew<=" + std::to_string(config.reorder_max_skew) +
                    " garble=" + util::fmt_double(config.garble_prob, 4) + "\n";
  for (const GapWindow& g : gaps) {
    out += "gap days " + std::to_string(g.first_day) + ".." + std::to_string(g.last_day) + "\n";
  }
  return out;
}

FeedFaultSchedule compile_feed_faults(const FeedFaultConfig& config) {
  check_prob(config.duplicate_prob, "duplicate_prob");
  check_prob(config.reorder_prob, "reorder_prob");
  check_prob(config.garble_prob, "garble_prob");
  MOAS_REQUIRE(config.reorder_max_skew >= 0, "reorder_max_skew must be >= 0");
  MOAS_REQUIRE(config.gaps == 0.0 || config.horizon_days > 0,
               "gap windows need a positive horizon");
  MOAS_REQUIRE(config.gaps >= 0.0 && config.gap_mean_days >= 0.0,
               "gap knobs must be non-negative");

  FeedFaultSchedule schedule;
  schedule.config = config;
  if (config.gaps > 0.0) {
    util::Rng rng(config.seed ^ 0xfeedfa017a11ULL);
    const unsigned n = rng.poisson(config.gaps);
    std::vector<GapWindow> raw;
    for (unsigned i = 0; i < n; ++i) {
      const int first = static_cast<int>(rng.uniform(0, static_cast<std::uint64_t>(config.horizon_days - 1)));
      double u;
      do {
        u = rng.uniform01();
      } while (u <= 0.0);
      const int extra = static_cast<int>(std::floor(-std::max(0.0, config.gap_mean_days - 1.0) *
                                                    std::log(u)));
      const int last = std::min(first + extra, config.horizon_days - 1);
      raw.push_back({first, last});
    }
    std::sort(raw.begin(), raw.end(), [](const GapWindow& a, const GapWindow& b) {
      return a.first_day < b.first_day || (a.first_day == b.first_day && a.last_day < b.last_day);
    });
    for (const GapWindow& g : raw) {
      if (!schedule.gaps.empty() && g.first_day <= schedule.gaps.back().last_day + 1) {
        schedule.gaps.back().last_day = std::max(schedule.gaps.back().last_day, g.last_day);
      } else {
        schedule.gaps.push_back(g);
      }
    }
  }
  return schedule;
}

}  // namespace moas::chaos
