#include "moas/measure/report.h"

#include <map>

#include "moas/measure/dates.h"
#include "moas/util/strings.h"

namespace moas::measure {

std::vector<Fig4Row> build_fig4_series(const MoasObserver& observer) {
  // Bucket by (year, month).
  std::map<std::pair<int, unsigned>, std::pair<double, std::size_t>> buckets;  // sum, n
  std::map<std::pair<int, unsigned>, std::size_t> maxima;
  const auto& daily = observer.daily_counts();
  for (std::size_t day = 0; day < daily.size(); ++day) {
    const CivilDate date = trace_date(static_cast<int>(day));
    const auto key = std::make_pair(date.year, date.month);
    auto& [sum, n] = buckets[key];
    sum += static_cast<double>(daily[day]);
    ++n;
    auto& mx = maxima[key];
    mx = std::max(mx, daily[day]);
  }
  std::vector<Fig4Row> rows;
  rows.reserve(buckets.size());
  for (const auto& [key, sum_n] : buckets) {
    Fig4Row row;
    row.month = mm_yy(CivilDate{key.first, key.second, 1});
    row.mean_daily = sum_n.first / static_cast<double>(sum_n.second);
    row.max_daily = maxima[key];
    rows.push_back(std::move(row));
  }
  return rows;
}

util::TablePrinter fig4_table(const std::vector<Fig4Row>& rows) {
  util::TablePrinter table({"month", "mean_daily_moas", "max_daily_moas"});
  for (const auto& row : rows) {
    table.add_row({row.month, util::fmt_double(row.mean_daily, 1),
                   std::to_string(row.max_daily)});
  }
  return table;
}

std::vector<Fig5Row> build_fig5_histogram(const MoasObserver& observer) {
  const util::Histogram hist = observer.duration_histogram();
  std::vector<Fig5Row> rows;
  if (hist.empty()) return rows;
  // Exponential buckets: [1,1], [2,2], [3,4], [5,8], [9,16], ...
  int lo = 1;
  int width = 1;
  const int max_duration = static_cast<int>(hist.max_key());
  while (lo <= max_duration) {
    const int hi = (lo <= 2) ? lo : lo + width - 1;
    Fig5Row row;
    row.bucket_lo = lo;
    row.bucket_hi = hi;
    for (int d = lo; d <= hi; ++d) row.cases += hist.count(d);
    row.fraction = hist.total() == 0
                       ? 0.0
                       : static_cast<double>(row.cases) / static_cast<double>(hist.total());
    rows.push_back(row);
    if (lo <= 2) {
      lo = hi + 1;
      width = lo == 3 ? 2 : 1;
    } else {
      lo = hi + 1;
      width *= 2;
    }
  }
  return rows;
}

util::TablePrinter fig5_table(const std::vector<Fig5Row>& rows) {
  util::TablePrinter table({"duration_days", "cases", "fraction"});
  for (const auto& row : rows) {
    const std::string bucket = row.bucket_lo == row.bucket_hi
                                   ? std::to_string(row.bucket_lo)
                                   : std::to_string(row.bucket_lo) + "-" +
                                         std::to_string(row.bucket_hi);
    table.add_row(
        {bucket, std::to_string(row.cases), util::fmt_double(row.fraction * 100.0, 2) + "%"});
  }
  return table;
}

util::TablePrinter sec3_table(const TraceSummary& summary) {
  util::TablePrinter table({"statistic", "paper", "measured"});
  table.add_row({"total MOAS cases", "~38245", std::to_string(summary.total_cases)});
  table.add_row({"one-day cases", "13730 (35.9%)",
                 std::to_string(summary.one_day_cases) + " (" +
                     util::fmt_double(summary.one_day_fraction * 100.0, 1) + "%)"});
  table.add_row({"one-day cases from 4/7/1998", "82.7%",
                 util::fmt_double(summary.one_day_spike_share * 100.0, 1) + "%"});
  table.add_row({"median daily count 1998", "683",
                 util::fmt_double(summary.median_daily_1998, 0)});
  table.add_row({"median daily count 2001", "1294",
                 util::fmt_double(summary.median_daily_2001, 0)});
  table.add_row({"cases with 2 origins", "96.14%",
                 util::fmt_double(summary.two_origin_fraction * 100.0, 2) + "%"});
  table.add_row({"cases with 3 origins", "2.7%",
                 util::fmt_double(summary.three_origin_fraction * 100.0, 2) + "%"});
  table.add_row({"max daily count day", "4/7/1998",
                 mm_yy(trace_date(summary.max_daily_count_day)) + " (day " +
                     std::to_string(summary.max_daily_count_day) + ", " +
                     std::to_string(summary.max_daily_count) + " cases)"});
  return table;
}

}  // namespace moas::measure
