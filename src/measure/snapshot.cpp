#include "moas/measure/snapshot.h"

#include "moas/util/assert.h"

namespace moas::measure {

DailyDump snapshot_network(const bgp::Network& network,
                           const std::vector<bgp::Asn>& vantages, int day) {
  MOAS_REQUIRE(!vantages.empty(), "need at least one vantage");
  DailyDump dump;
  dump.day = day;
  for (bgp::Asn vantage : vantages) {
    const bgp::Router& router = network.router(vantage);
    for (const net::Prefix& prefix : router.loc_rib().prefixes()) {
      const bgp::RibEntry* best = router.loc_rib().best(prefix);
      MOAS_ENSURE(best != nullptr, "loc-rib listed a prefix without a best route");
      for (bgp::Asn origin : best->route.origin_candidates()) {
        dump.origins[prefix].insert(origin);
      }
    }
  }
  return dump;
}

}  // namespace moas::measure
