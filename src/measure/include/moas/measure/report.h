// Report builders shared by the measurement benches and tests: they turn
// observer output into the series/tables the paper's Figures 4 and 5 plot.
#pragma once

#include <string>
#include <vector>

#include "moas/measure/observer.h"
#include "moas/util/table.h"

namespace moas::measure {

/// Figure 4 series: daily counts bucketed by calendar month (mean within the
/// month) plus the exact values of the spike days.
struct Fig4Row {
  std::string month;       // "MM/YY"
  double mean_daily = 0.0;
  std::size_t max_daily = 0;
};

std::vector<Fig4Row> build_fig4_series(const MoasObserver& observer);

util::TablePrinter fig4_table(const std::vector<Fig4Row>& rows);

/// Figure 5 rows: duration histogram bucketed into exponentially growing
/// bins (1, 2, 3-4, 5-8, ... days).
struct Fig5Row {
  int bucket_lo = 0;
  int bucket_hi = 0;  // inclusive
  std::uint64_t cases = 0;
  double fraction = 0.0;
};

std::vector<Fig5Row> build_fig5_histogram(const MoasObserver& observer);

util::TablePrinter fig5_table(const std::vector<Fig5Row>& rows);

/// The Section 3 headline statistics next to the paper's values.
util::TablePrinter sec3_table(const TraceSummary& summary);

}  // namespace moas::measure
