// Synthetic RouteViews trace, calibrated to the paper's Section 3 numbers.
//
// The real input (daily Oregon RouteViews table dumps, 11/8/1997–7/18/2001)
// is not available offline, so we synthesize a trace whose *ground truth*
// matches every summary statistic the paper reports, and let the observer
// (observer.h) re-derive Figures 4 and 5 from the daily dumps exactly the
// way the paper's measurement does. Calibration targets (see DESIGN.md for
// the OCR reconstruction):
//   - ~38,000 distinct MOAS cases over 1349 days;
//   - baseline daily count ramping so the 1998 median is ~683 and the 2001
//     median is ~1294, dominated by long-lived valid multi-homing cases;
//   - 4/7/1998: the AS8584-style event — ~11,400 one-day cases, i.e. 82.7%
//     of all one-day cases (which are 35.9% of everything);
//   - 4/6/2001: the AS15412-style event — ~6,627 cases that day, 5,532 of
//     them involving the (3561, 15412) pair, lasting a few days;
//   - origin-set mix across cases: ~96.14% two origins, ~2.7% three.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "moas/bgp/asn.h"
#include "moas/net/prefix.h"
#include "moas/util/rng.h"

namespace moas::measure {

/// Why a synthetic case exists (ground truth; the observer never sees this).
enum class CaseKind : std::uint8_t {
  ValidMultihoming,    // static-config multi-homing (long-lived)
  ValidAse,            // private-AS substitution on egress (long-lived)
  ValidExchangePoint,  // exchange-point prefix (small population)
  Fault,               // ordinary misconfiguration (short-lived)
  Spike1998,           // the 4/7/1998 mass fault (one day)
  Spike2001,           // the 4/6/2001 de-aggregation fault (a few days)
};

const char* to_string(CaseKind kind);

struct SyntheticCase {
  net::Prefix prefix;
  bgp::AsnSet origins;            // the origin set announced on active days
  std::vector<int> active_days;   // sorted day indices with >1 origin
  CaseKind kind = CaseKind::Fault;

  bool valid() const {
    return kind == CaseKind::ValidMultihoming || kind == CaseKind::ValidAse ||
           kind == CaseKind::ValidExchangePoint;
  }
};

/// One day's view of the table: the prefixes announced with more than one
/// origin and the origin set seen for each. (Single-origin prefixes carry no
/// MOAS information and are omitted from the dump.)
struct DailyDump {
  int day = 0;
  std::map<net::Prefix, bgp::AsnSet> origins;
};

struct TraceConfig {
  int days = 0;  // 0: use the paper's full window (trace_length_days())

  // Baseline of concurrently active (mostly valid) cases.
  double active_start = 500.0;  // target active valid cases on day 0
  double active_end = 1290.0;   // target active valid cases on the last day
  double permanent_share = 0.25;       // valid cases that never end
  double valid_mean_duration = 300.0;  // mean days for the others

  // Ordinary fault churn.
  double faults_per_day = 12.0;
  double fault_one_day_share = 0.126;  // rest last 2+ days
  double fault_mean_extra_days = 3.0;

  // The two headline events.
  bool include_spike_1998 = true;
  std::size_t spike_1998_cases = 11355;  // 82.7% of all one-day cases
  bool include_spike_2001 = true;
  std::size_t spike_2001_pair_cases = 5532;   // involving (3561, 15412)
  std::size_t spike_2001_other_cases = 1095;  // the rest of that day's 6627

  // Origin-set sizes. Faults are two-origin by nature (victim + faulty AS)
  // unless they overlay an existing MOAS.
  double valid_three_origin_share = 0.08;
  double valid_four_origin_share = 0.004;
  double fault_three_origin_share = 0.045;

  std::uint64_t seed = 42;
};

struct SyntheticTrace {
  int days = 0;
  std::vector<SyntheticCase> cases;

  /// Materialize one day's dump (cases active that day).
  DailyDump day_dump(int day) const;

  /// Ground-truth daily counts (number of cases active per day).
  std::vector<std::size_t> daily_case_counts() const;

 private:
  friend SyntheticTrace generate_trace(const TraceConfig&, util::Rng&);
  std::vector<std::vector<std::size_t>> by_day_;  // day -> case indices
};

SyntheticTrace generate_trace(const TraceConfig& config, util::Rng& rng);

}  // namespace moas::measure
