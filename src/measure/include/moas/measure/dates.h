// Calendar helpers for the measurement window (11/8/1997 – 7/18/2001).
#pragma once

#include <string>

namespace moas::measure {

struct CivilDate {
  int year = 1970;
  unsigned month = 1;  // 1..12
  unsigned day = 1;    // 1..31
};

/// Days since 1970-01-01 (proleptic Gregorian; Howard Hinnant's algorithm).
long to_serial(const CivilDate& date);

/// Inverse of to_serial.
CivilDate from_serial(long serial);

/// "MM/YY" — the tick format of the paper's Figure 4.
std::string mm_yy(const CivilDate& date);

/// Trace epoch: day 0 of every synthetic trace is 1997-11-08 (the first day
/// of the paper's measurement).
inline constexpr CivilDate kTraceEpoch{1997, 11, 8};

/// Last day of the measurement: 2001-07-18.
inline constexpr CivilDate kTraceEnd{2001, 7, 18};

/// Convert a trace day index to a calendar date.
CivilDate trace_date(int day_index);

/// Day index of a calendar date within the trace.
int trace_day(const CivilDate& date);

/// Number of days in the paper's window, inclusive of both endpoints.
int trace_length_days();

}  // namespace moas::measure
