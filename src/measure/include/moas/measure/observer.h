// The measurement pipeline over daily table dumps (the paper's Section 3).
//
// A MOAS case is a prefix observed with more than one origin AS. Its
// duration is "the total number of days when the routes to an address prefix
// were announced by more than one origin, regardless of whether the days
// were continuous and regardless of whether the same set of origins was
// involved."
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "moas/measure/trace_gen.h"
#include "moas/util/stats.h"

namespace moas::measure {

/// Per-prefix accumulated observation.
struct ObservedCase {
  net::Prefix prefix;
  int first_day = 0;
  int last_day = 0;
  int duration_days = 0;          // # days with >1 origin (possibly gappy)
  std::size_t max_origins = 0;    // largest origin set seen on any day
  bgp::AsnSet all_origins;        // union over all days
};

struct TraceSummary {
  std::size_t total_cases = 0;
  std::size_t one_day_cases = 0;
  double one_day_fraction = 0.0;
  /// Of the one-day cases, the share whose single active day is `spike_day`
  /// (the paper's "82.7% ... attributed to ... April 7th, 1998").
  double one_day_spike_share = 0.0;
  int spike_day = -1;

  double two_origin_fraction = 0.0;    // cases whose max origin count is 2
  double three_origin_fraction = 0.0;  // ... is 3
  std::size_t max_daily_count = 0;
  int max_daily_count_day = -1;
  double median_daily_1998 = 0.0;  // medians of the calendar-year slices
  double median_daily_2001 = 0.0;
};

class MoasObserver {
 public:
  /// Feed one day's dump; days must arrive in increasing order.
  void ingest(const DailyDump& dump);

  /// Declare feed-gap days: days on which the collector was down. A dump
  /// "observed" on a gap day is a stale table replay (RouteViews republishes
  /// the last table it has), not an observation — the paper's duration is
  /// "the total number of days when the routes ... were announced by more
  /// than one origin", and an unobserved prefix must not accrue MOAS
  /// duration. Gap-day dumps are recorded as zero-count days and their
  /// contents ignored. Call before ingesting the affected days.
  void set_gap_days(const std::vector<int>& days);

  /// Number of dumps that were ignored because they fell on a gap day.
  std::size_t gap_dumps_ignored() const { return gap_dumps_ignored_; }

  /// Convenience: ingest every day of a synthetic trace.
  void ingest_all(const SyntheticTrace& trace);

  /// Figure 4: number of MOAS cases seen per day.
  const std::vector<std::size_t>& daily_counts() const { return daily_counts_; }

  /// Figure 5: histogram of case durations (days -> #cases).
  util::Histogram duration_histogram() const;

  /// All per-prefix observations.
  std::vector<ObservedCase> cases() const;
  std::size_t case_count() const { return cases_.size(); }

  /// The Section 3 headline statistics. `spike_day` defaults to 4/7/1998.
  TraceSummary summarize(int spike_day = -1) const;

 private:
  std::map<net::Prefix, ObservedCase> cases_;
  std::vector<std::size_t> daily_counts_;
  std::vector<int> gap_days_;  // sorted
  std::size_t gap_dumps_ignored_ = 0;
  int last_day_ = -1;
};

}  // namespace moas::measure
