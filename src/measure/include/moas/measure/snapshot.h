// Bridge from the live simulator to the measurement pipeline: snapshot the
// routing tables of a set of vantage ASes into the same DailyDump shape the
// observer consumes. This is literally what the Oregon RouteViews collector
// does — peer with many ASes and record, per prefix, the origin each peer's
// best path reports.
#pragma once

#include <vector>

#include "moas/bgp/network.h"
#include "moas/measure/trace_gen.h"

namespace moas::measure {

/// Snapshot the given vantages' Loc-RIBs: for every prefix any vantage can
/// reach, the set of origin ASes seen across the vantages' best routes.
/// Routes whose path ends in an AS_SET contribute all member candidates.
DailyDump snapshot_network(const bgp::Network& network,
                           const std::vector<bgp::Asn>& vantages, int day);

}  // namespace moas::measure
