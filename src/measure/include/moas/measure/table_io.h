// Textual interchange format for daily table dumps.
//
// The observer consumes DailyDump objects; this module round-trips them
// through a line format so traces can be archived and re-analyzed the way
// the paper processed stored RouteViews dumps:
//
//   # moasguard table dump
//   day 42
//   10.1.2.0/24 701 7018
//   10.9.0.0/16 3561 15412 1239
//
// Each prefix line lists the origin ASes observed for that prefix that day.
#pragma once

#include <iosfwd>
#include <string>

#include "moas/measure/trace_gen.h"

namespace moas::measure {

void save_dump(const DailyDump& dump, std::ostream& os);

/// Throws std::invalid_argument on malformed input.
DailyDump load_dump(std::istream& is);

/// Whole-trace archive: dumps for every day back to back.
void save_trace(const SyntheticTrace& trace, std::ostream& os);

/// Load an archive and return the dumps in day order.
std::vector<DailyDump> load_trace(std::istream& is);

}  // namespace moas::measure
