// Textual interchange format for daily table dumps.
//
// The observer consumes DailyDump objects; this module round-trips them
// through a line format so traces can be archived and re-analyzed the way
// the paper processed stored RouteViews dumps:
//
//   # moasguard table dump
//   day 42
//   10.1.2.0/24 701 7018
//   10.9.0.0/16 3561 15412 1239
//
// Each prefix line lists the origin ASes observed for that prefix that day.
#pragma once

#include <iosfwd>
#include <string>

#include "moas/measure/trace_gen.h"

namespace moas::measure {

void save_dump(const DailyDump& dump, std::ostream& os);

/// Throws std::invalid_argument on malformed input.
DailyDump load_dump(std::istream& is);

/// Whole-trace archive: dumps for every day back to back.
void save_trace(const SyntheticTrace& trace, std::ostream& os);

/// Load an archive and return the dumps in day order.
std::vector<DailyDump> load_trace(std::istream& is);

/// What the tolerant loader skipped. A production feed ingester must never
/// crash on a truncated or garbled archive line; it drops exactly the
/// damaged data, keeps everything parseable, and accounts for every loss
/// (surfaced as the `measure.rejected_lines` / `measure.rejected_dumps`
/// counters by callers).
struct LoadStats {
  std::size_t lines = 0;           // non-blank, non-comment lines examined
  std::size_t dumps = 0;           // dumps returned
  std::size_t rejected_lines = 0;  // malformed lines skipped (headers included)
  std::size_t rejected_dumps = 0;  // whole dumps dropped (bad or out-of-order day)
};

/// Like load_trace(), but malformed input is skipped and counted instead of
/// throwing: truncated/garbled table lines are dropped line-by-line; a
/// malformed or non-monotonic "day" header drops that whole dump (its body
/// lines are unattributable and counted as rejected too).
std::vector<DailyDump> load_trace_tolerant(std::istream& is, LoadStats& stats);

}  // namespace moas::measure
