#include "moas/measure/table_io.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "moas/util/assert.h"
#include "moas/util/strings.h"

namespace moas::measure {

namespace {

void write_one(const DailyDump& dump, std::ostream& os) {
  os << "day " << dump.day << '\n';
  for (const auto& [prefix, origins] : dump.origins) {
    os << prefix.to_string();
    for (bgp::Asn asn : origins) os << ' ' << asn;
    os << '\n';
  }
}

/// Reads one dump starting after its "day" line has been consumed into
/// `day`. Stops before the next "day" line or at EOF.
DailyDump read_body(int day, std::istream& is) {
  DailyDump dump;
  dump.day = day;
  while (true) {
    const auto pos = is.tellg();
    std::string line;
    if (!std::getline(is, line)) break;
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    if (trimmed.rfind("day ", 0) == 0) {
      is.seekg(pos);  // belongs to the next dump
      break;
    }
    std::istringstream ls{std::string(trimmed)};
    std::string prefix_text;
    ls >> prefix_text;
    const auto prefix = net::Prefix::parse(prefix_text);
    MOAS_REQUIRE(prefix.has_value(), "malformed prefix '" + prefix_text + "'");
    bgp::AsnSet origins;
    std::uint64_t asn = 0;
    while (ls >> asn) {
      MOAS_REQUIRE(asn != 0 && asn <= ~bgp::Asn{0}, "ASN out of range");
      origins.insert(static_cast<bgp::Asn>(asn));
    }
    MOAS_REQUIRE(ls.eof(), "trailing garbage on table line");
    MOAS_REQUIRE(!origins.empty(), "table line without origins");
    dump.origins[*prefix] = std::move(origins);
  }
  return dump;
}

std::optional<int> read_day_header(std::istream& is) {
  std::string line;
  while (std::getline(is, line)) {
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    MOAS_REQUIRE(trimmed.rfind("day ", 0) == 0, "expected a 'day <n>' header");
    std::uint64_t day = 0;
    MOAS_REQUIRE(util::parse_u64(util::trim(trimmed.substr(4)), day) && day <= 1u << 30,
                 "malformed day number");
    return static_cast<int>(day);
  }
  return std::nullopt;
}

}  // namespace

void save_dump(const DailyDump& dump, std::ostream& os) {
  os << "# moasguard table dump\n";
  write_one(dump, os);
}

DailyDump load_dump(std::istream& is) {
  const auto day = read_day_header(is);
  MOAS_REQUIRE(day.has_value(), "no dump in input");
  return read_body(*day, is);
}

void save_trace(const SyntheticTrace& trace, std::ostream& os) {
  os << "# moasguard trace archive, " << trace.days << " days\n";
  for (int day = 0; day < trace.days; ++day) write_one(trace.day_dump(day), os);
}

std::vector<DailyDump> load_trace(std::istream& is) {
  std::vector<DailyDump> out;
  while (auto day = read_day_header(is)) {
    out.push_back(read_body(*day, is));
  }
  return out;
}

}  // namespace moas::measure
