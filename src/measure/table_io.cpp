#include "moas/measure/table_io.h"

#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <utility>

#include "moas/util/assert.h"
#include "moas/util/strings.h"

namespace moas::measure {

namespace {

void write_one(const DailyDump& dump, std::ostream& os) {
  os << "day " << dump.day << '\n';
  for (const auto& [prefix, origins] : dump.origins) {
    os << prefix.to_string();
    for (bgp::Asn asn : origins) os << ' ' << asn;
    os << '\n';
  }
}

/// Parse one "<prefix> <asn> <asn>..." table line. nullopt on any damage:
/// unparseable prefix, non-numeric or out-of-range ASN, trailing garbage,
/// or a line with no origins at all.
std::optional<std::pair<net::Prefix, bgp::AsnSet>> parse_table_line(std::string_view trimmed) {
  std::istringstream ls{std::string(trimmed)};
  std::string prefix_text;
  ls >> prefix_text;
  const auto prefix = net::Prefix::parse(prefix_text);
  if (!prefix.has_value()) return std::nullopt;
  bgp::AsnSet origins;
  std::uint64_t asn = 0;
  while (ls >> asn) {
    if (asn == 0 || asn > ~bgp::Asn{0}) return std::nullopt;
    origins.insert(static_cast<bgp::Asn>(asn));
  }
  if (!ls.eof()) return std::nullopt;  // a field failed to parse as a number
  if (origins.empty()) return std::nullopt;
  return std::make_pair(*prefix, std::move(origins));
}

/// Parse a "day <n>" header line. nullopt when malformed or out of range.
std::optional<int> parse_day_header(std::string_view trimmed) {
  if (trimmed.rfind("day ", 0) != 0) return std::nullopt;
  std::uint64_t day = 0;
  if (!util::parse_u64(util::trim(trimmed.substr(4)), day) || day > 1u << 30) {
    return std::nullopt;
  }
  return static_cast<int>(day);
}

/// Reads one dump starting after its "day" line has been consumed into
/// `day`. Stops before the next "day" line or at EOF.
DailyDump read_body(int day, std::istream& is) {
  DailyDump dump;
  dump.day = day;
  while (true) {
    const auto pos = is.tellg();
    std::string line;
    if (!std::getline(is, line)) break;
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    if (trimmed.rfind("day ", 0) == 0) {
      is.seekg(pos);  // belongs to the next dump
      break;
    }
    auto parsed = parse_table_line(trimmed);
    MOAS_REQUIRE(parsed.has_value(), "malformed table line '" + std::string(trimmed) + "'");
    dump.origins[parsed->first] = std::move(parsed->second);
  }
  return dump;
}

std::optional<int> read_day_header(std::istream& is) {
  std::string line;
  while (std::getline(is, line)) {
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto day = parse_day_header(trimmed);
    MOAS_REQUIRE(day.has_value(), "expected a 'day <n>' header");
    return day;
  }
  return std::nullopt;
}

}  // namespace

void save_dump(const DailyDump& dump, std::ostream& os) {
  os << "# moasguard table dump\n";
  write_one(dump, os);
}

DailyDump load_dump(std::istream& is) {
  const auto day = read_day_header(is);
  MOAS_REQUIRE(day.has_value(), "no dump in input");
  return read_body(*day, is);
}

void save_trace(const SyntheticTrace& trace, std::ostream& os) {
  os << "# moasguard trace archive, " << trace.days << " days\n";
  for (int day = 0; day < trace.days; ++day) write_one(trace.day_dump(day), os);
}

std::vector<DailyDump> load_trace(std::istream& is) {
  std::vector<DailyDump> out;
  while (auto day = read_day_header(is)) {
    out.push_back(read_body(*day, is));
  }
  return out;
}

std::vector<DailyDump> load_trace_tolerant(std::istream& is, LoadStats& stats) {
  std::vector<DailyDump> out;
  // Current dump under construction; nullopt while skipping the body of a
  // rejected dump (or before the first valid header).
  std::optional<DailyDump> current;
  int last_day = -1;
  auto flush = [&] {
    if (current.has_value()) {
      last_day = current->day;
      out.push_back(std::move(*current));
      ++stats.dumps;
      current.reset();
    }
  };

  std::string line;
  while (std::getline(is, line)) {
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    ++stats.lines;

    if (trimmed.rfind("day", 0) == 0 && (trimmed.size() == 3 || trimmed[3] == ' ')) {
      // A header (possibly damaged). Close the previous dump either way.
      // Note the limit of tolerance: the header is the only dump boundary
      // marker, so one destroyed beyond its "day" token reads as a body
      // line and the rows after it attribute to the previous dump.
      flush();
      const auto day = parse_day_header(trimmed);
      if (!day.has_value() || *day <= last_day) {
        // Bad day number, or a day that runs backwards: the whole dump is
        // unattributable. Its body lines are rejected as they stream past.
        ++stats.rejected_lines;
        ++stats.rejected_dumps;
        current.reset();
      } else {
        current.emplace();
        current->day = *day;
      }
      continue;
    }

    auto parsed = parse_table_line(trimmed);
    if (!parsed.has_value() || !current.has_value()) {
      // Truncated/garbled line, or an intact line inside a rejected dump
      // (no day to attribute it to) — skip it, count it.
      ++stats.rejected_lines;
      continue;
    }
    current->origins[parsed->first] = std::move(parsed->second);
  }
  flush();
  return out;
}

}  // namespace moas::measure
