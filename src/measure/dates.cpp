#include "moas/measure/dates.h"

#include "moas/util/assert.h"

namespace moas::measure {

long to_serial(const CivilDate& date) {
  MOAS_REQUIRE(date.month >= 1 && date.month <= 12, "month out of range");
  MOAS_REQUIRE(date.day >= 1 && date.day <= 31, "day out of range");
  // days_from_civil (Hinnant).
  const int y = date.year - (date.month <= 2 ? 1 : 0);
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);              // [0, 399]
  const unsigned doy = (153 * (date.month + (date.month > 2 ? -3 : 9)) + 2) / 5 +
                       date.day - 1;                                      // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;             // [0, 146096]
  return era * 146097L + static_cast<long>(doe) - 719468L;
}

CivilDate from_serial(long serial) {
  // civil_from_days (Hinnant).
  serial += 719468L;
  const long era = (serial >= 0 ? serial : serial - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(serial - era * 146097);           // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const int y = static_cast<int>(yoe) + static_cast<int>(era) * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;               // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : static_cast<unsigned>(-9));  // [1, 12]
  return CivilDate{y + (m <= 2 ? 1 : 0), m, d};
}

std::string mm_yy(const CivilDate& date) {
  const int yy = date.year % 100;
  auto two = [](int v) {
    std::string s = std::to_string(v);
    return s.size() == 1 ? "0" + s : s;
  };
  return two(static_cast<int>(date.month)) + "/" + two(yy);
}

CivilDate trace_date(int day_index) { return from_serial(to_serial(kTraceEpoch) + day_index); }

int trace_day(const CivilDate& date) {
  return static_cast<int>(to_serial(date) - to_serial(kTraceEpoch));
}

int trace_length_days() { return trace_day(kTraceEnd) + 1; }

}  // namespace moas::measure
