#include "moas/measure/observer.h"

#include <algorithm>

#include "moas/measure/dates.h"
#include "moas/util/assert.h"

namespace moas::measure {

void MoasObserver::set_gap_days(const std::vector<int>& days) {
  gap_days_ = days;
  std::sort(gap_days_.begin(), gap_days_.end());
}

void MoasObserver::ingest(const DailyDump& dump) {
  MOAS_REQUIRE(dump.day > last_day_, "dumps must arrive in increasing day order");
  // Record empty days between dumps as zero-count days.
  while (static_cast<int>(daily_counts_.size()) < dump.day) daily_counts_.push_back(0);
  last_day_ = dump.day;

  if (std::binary_search(gap_days_.begin(), gap_days_.end(), dump.day)) {
    // Collector outage: whatever arrived under this day's header is a stale
    // table replay. Nothing was observed, so nothing accrues duration.
    ++gap_dumps_ignored_;
    daily_counts_.push_back(0);
    return;
  }

  std::size_t count = 0;
  for (const auto& [prefix, origins] : dump.origins) {
    if (origins.size() < 2) continue;  // not a MOAS observation
    ++count;
    auto [it, fresh] = cases_.try_emplace(prefix);
    ObservedCase& c = it->second;
    if (fresh) {
      c.prefix = prefix;
      c.first_day = dump.day;
    }
    c.last_day = dump.day;
    ++c.duration_days;
    c.max_origins = std::max(c.max_origins, origins.size());
    for (bgp::Asn asn : origins) c.all_origins.insert(asn);
  }
  daily_counts_.push_back(count);
}

void MoasObserver::ingest_all(const SyntheticTrace& trace) {
  for (int day = 0; day < trace.days; ++day) ingest(trace.day_dump(day));
}

util::Histogram MoasObserver::duration_histogram() const {
  util::Histogram hist;
  for (const auto& [prefix, c] : cases_) hist.add(c.duration_days);
  return hist;
}

std::vector<ObservedCase> MoasObserver::cases() const {
  std::vector<ObservedCase> out;
  out.reserve(cases_.size());
  for (const auto& [prefix, c] : cases_) out.push_back(c);
  return out;
}

TraceSummary MoasObserver::summarize(int spike_day) const {
  if (spike_day < 0) spike_day = trace_day(CivilDate{1998, 4, 7});

  TraceSummary s;
  s.spike_day = spike_day;
  s.total_cases = cases_.size();

  std::size_t one_day_on_spike = 0;
  std::size_t two_origin = 0;
  std::size_t three_origin = 0;
  for (const auto& [prefix, c] : cases_) {
    if (c.duration_days == 1) {
      ++s.one_day_cases;
      if (c.first_day == spike_day) ++one_day_on_spike;
    }
    if (c.max_origins == 2) ++two_origin;
    if (c.max_origins == 3) ++three_origin;
  }
  if (s.total_cases > 0) {
    s.one_day_fraction =
        static_cast<double>(s.one_day_cases) / static_cast<double>(s.total_cases);
    s.two_origin_fraction = static_cast<double>(two_origin) / static_cast<double>(s.total_cases);
    s.three_origin_fraction =
        static_cast<double>(three_origin) / static_cast<double>(s.total_cases);
  }
  if (s.one_day_cases > 0) {
    s.one_day_spike_share =
        static_cast<double>(one_day_on_spike) / static_cast<double>(s.one_day_cases);
  }

  std::vector<double> y1998;
  std::vector<double> y2001;
  for (std::size_t day = 0; day < daily_counts_.size(); ++day) {
    const std::size_t count = daily_counts_[day];
    if (count > s.max_daily_count) {
      s.max_daily_count = count;
      s.max_daily_count_day = static_cast<int>(day);
    }
    const int year = trace_date(static_cast<int>(day)).year;
    if (year == 1998) y1998.push_back(static_cast<double>(count));
    if (year == 2001) y2001.push_back(static_cast<double>(count));
  }
  if (!y1998.empty()) s.median_daily_1998 = util::median(std::move(y1998));
  if (!y2001.empty()) s.median_daily_2001 = util::median(std::move(y2001));
  return s;
}

}  // namespace moas::measure
