#include "moas/measure/trace_gen.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "moas/measure/dates.h"
#include "moas/util/assert.h"

namespace moas::measure {

namespace {

/// The ASNs the paper names.
constexpr bgp::Asn kAs8584 = 8584;    // the 4/7/1998 event
constexpr bgp::Asn kAs15412 = 15412;  // the 4/6/2001 event
constexpr bgp::Asn kAs3561 = 3561;    // its upstream in the observed pair

/// Distinct prefixes for synthetic cases: /24s carved sequentially out of
/// 24.0.0.0/6 (plenty for ~250k cases).
net::Prefix case_prefix(std::size_t index) {
  MOAS_REQUIRE(index < (1u << 18), "too many synthetic cases for the prefix pool");
  const std::uint32_t base = 24u << 24;
  return net::Prefix(net::Ipv4Addr(base + (static_cast<std::uint32_t>(index) << 8)), 24);
}

/// Random registered-range ASN (2-octet world, away from the reserved ones).
bgp::Asn random_asn(util::Rng& rng) {
  return static_cast<bgp::Asn>(rng.uniform(1, 30000));
}

bgp::AsnSet random_origin_set(std::size_t n, util::Rng& rng) {
  bgp::AsnSet out;
  while (out.size() < n) out.insert(random_asn(rng));
  return out;
}

/// Exponential with the given mean, at least `floor_days`.
int exp_duration(double mean, int floor_days, util::Rng& rng) {
  double u;
  do {
    u = rng.uniform01();
  } while (u <= 0.0);
  const int d = static_cast<int>(std::ceil(-mean * std::log(u)));
  return std::max(floor_days, d);
}

std::vector<int> contiguous_days(int first, int duration, int last_day) {
  std::vector<int> out;
  for (int d = first; d < first + duration && d <= last_day; ++d) out.push_back(d);
  return out;
}

}  // namespace

const char* to_string(CaseKind kind) {
  switch (kind) {
    case CaseKind::ValidMultihoming: return "valid-multihoming";
    case CaseKind::ValidAse: return "valid-ase";
    case CaseKind::ValidExchangePoint: return "valid-exchange-point";
    case CaseKind::Fault: return "fault";
    case CaseKind::Spike1998: return "spike-1998";
    case CaseKind::Spike2001: return "spike-2001";
  }
  return "?";
}

DailyDump SyntheticTrace::day_dump(int day) const {
  MOAS_REQUIRE(day >= 0 && day < days, "day out of range");
  DailyDump dump;
  dump.day = day;
  for (std::size_t idx : by_day_[static_cast<std::size_t>(day)]) {
    const SyntheticCase& c = cases[idx];
    dump.origins[c.prefix] = c.origins;
  }
  return dump;
}

std::vector<std::size_t> SyntheticTrace::daily_case_counts() const {
  std::vector<std::size_t> out(static_cast<std::size_t>(days));
  for (int d = 0; d < days; ++d) out[static_cast<std::size_t>(d)] = by_day_[static_cast<std::size_t>(d)].size();
  return out;
}

SyntheticTrace generate_trace(const TraceConfig& config, util::Rng& rng) {
  SyntheticTrace trace;
  trace.days = config.days > 0 ? config.days : trace_length_days();
  const int last_day = trace.days - 1;

  std::size_t next_prefix = 0;
  auto add_case = [&](bgp::AsnSet origins, std::vector<int> active, CaseKind kind) {
    MOAS_ENSURE(origins.size() >= 2, "a MOAS case needs at least two origins");
    MOAS_ENSURE(!active.empty(), "a MOAS case needs at least one active day");
    SyntheticCase c;
    c.prefix = case_prefix(next_prefix++);
    c.origins = std::move(origins);
    c.active_days = std::move(active);
    c.kind = kind;
    trace.cases.push_back(std::move(c));
  };

  // --- long-lived (mostly valid) baseline, ramped to the paper's medians ---
  // Maintain the active-valid population against a linearly growing target;
  // expiries are tracked with a min-heap of end days.
  std::priority_queue<int, std::vector<int>, std::greater<>> expiries;
  std::size_t active_valid = 0;
  for (int day = 0; day <= last_day; ++day) {
    while (!expiries.empty() && expiries.top() < day) {
      expiries.pop();
      --active_valid;
    }
    const double t = last_day == 0 ? 0.0 : static_cast<double>(day) / last_day;
    const auto target = static_cast<std::size_t>(
        std::lround(config.active_start + t * (config.active_end - config.active_start)));
    while (active_valid < target) {
      const bool permanent = rng.chance(config.permanent_share);
      const int duration =
          permanent ? (last_day - day + 1) : exp_duration(config.valid_mean_duration, 2, rng);
      const int end = std::min(day + duration - 1, last_day);

      std::size_t n_origins = 2;
      const double roll = rng.uniform01();
      if (roll < config.valid_four_origin_share) {
        n_origins = 4;
      } else if (roll < config.valid_four_origin_share + config.valid_three_origin_share) {
        n_origins = 3;
      }
      // Kind mix: mostly static-config multi-homing, some ASE, a sliver of
      // exchange-point prefixes (the paper: "only a very small percentage").
      CaseKind kind = CaseKind::ValidMultihoming;
      const double kind_roll = rng.uniform01();
      if (kind_roll < 0.02) {
        kind = CaseKind::ValidExchangePoint;
      } else if (kind_roll < 0.30) {
        kind = CaseKind::ValidAse;
      }
      add_case(random_origin_set(n_origins, rng), contiguous_days(day, end - day + 1, last_day),
               kind);
      expiries.push(end);
      ++active_valid;
    }
  }

  // --- ordinary fault churn --------------------------------------------------
  for (int day = 0; day <= last_day; ++day) {
    const unsigned n = rng.poisson(config.faults_per_day);
    for (unsigned i = 0; i < n; ++i) {
      int duration = 1;
      if (!rng.chance(config.fault_one_day_share)) {
        duration = 2 + static_cast<int>(rng.poisson(config.fault_mean_extra_days));
      }
      const std::size_t n_origins = rng.chance(config.fault_three_origin_share) ? 3 : 2;
      add_case(random_origin_set(n_origins, rng),
               contiguous_days(day, duration, last_day), CaseKind::Fault);
    }
  }

  // --- 4/7/1998: AS8584 announces thousands of prefixes it does not own ----
  if (config.include_spike_1998) {
    const int day = trace_day(CivilDate{1998, 4, 7});
    if (day >= 0 && day <= last_day) {
      for (std::size_t i = 0; i < config.spike_1998_cases; ++i) {
        bgp::AsnSet origins{kAs8584, random_asn(rng)};
        while (origins.size() < 2) origins.insert(random_asn(rng));
        add_case(std::move(origins), {day}, CaseKind::Spike1998);
      }
    }
  }

  // --- 4/6/2001: the AS15412 de-aggregation fault (lasts a few days) -------
  if (config.include_spike_2001) {
    const int day = trace_day(CivilDate{2001, 4, 6});
    if (day >= 0 && day <= last_day) {
      for (std::size_t i = 0; i < config.spike_2001_pair_cases; ++i) {
        bgp::AsnSet origins{kAs15412, random_asn(rng)};
        while (origins.size() < 2) origins.insert(random_asn(rng));
        const int duration = 2 + static_cast<int>(rng.uniform(0, 2));  // 2-4 days
        add_case(std::move(origins), contiguous_days(day, duration, last_day),
                 CaseKind::Spike2001);
      }
      for (std::size_t i = 0; i < config.spike_2001_other_cases; ++i) {
        const int duration = rng.chance(0.3) ? 1 : 2 + static_cast<int>(rng.uniform(0, 1));
        add_case(random_origin_set(2, rng), contiguous_days(day, duration, last_day),
                 CaseKind::Spike2001);
      }
    }
  }

  // Index cases by day.
  trace.by_day_.assign(static_cast<std::size_t>(trace.days), {});
  for (std::size_t idx = 0; idx < trace.cases.size(); ++idx) {
    for (int day : trace.cases[idx].active_days) {
      trace.by_day_[static_cast<std::size_t>(day)].push_back(idx);
    }
  }
  (void)kAs3561;  // named for documentation; the pair is visible in AS paths
  return trace;
}

}  // namespace moas::measure
