#include "moas/obs/event.h"

#include <cstdio>
#include <ostream>

namespace moas::obs {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::SessionTransition: return "session-transition";
    case EventKind::UpdateSent: return "update-sent";
    case EventKind::UpdateReceived: return "update-received";
    case EventKind::WithdrawReceived: return "withdraw-received";
    case EventKind::RoutePreferred: return "route-preferred";
    case EventKind::RouteDepreferred: return "route-depreferred";
    case EventKind::AlarmRaised: return "alarm-raised";
    case EventKind::AlarmResolved: return "alarm-resolved";
    case EventKind::AlarmDropped: return "alarm-dropped";
    case EventKind::FaultInjected: return "fault-injected";
    case EventKind::MessageFault: return "message-fault";
    case EventKind::ErrorDegraded: return "error-degraded";
    case EventKind::ErrorWithdraw: return "error-withdraw";
    case EventKind::AttackInjected: return "attack-injected";
    case EventKind::ResolverRequest: return "resolver-request";
    case EventKind::ResolverTimeout: return "resolver-timeout";
    case EventKind::ResolverRetry: return "resolver-retry";
    case EventKind::ResolverBreaker: return "resolver-breaker";
    case EventKind::ResolverFallback: return "resolver-fallback";
    case EventKind::FeedGap: return "feed-gap";
    case EventKind::UpdatesShed: return "updates-shed";
    case EventKind::StateEvicted: return "state-evicted";
  }
  return "?";
}

namespace {

void append_json_string(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string TraceEvent::to_json() const {
  // Fixed-precision time: equal doubles print equal bytes, and 9 decimals
  // comfortably resolve the nanosecond FIFO nudges the network applies.
  char head[64];
  std::snprintf(head, sizeof(head), "{\"t\":%.9f,", at);
  std::string out = head;
  out += "\"kind\":\"";
  out += to_string(kind);
  out += "\",\"actor\":";
  out += std::to_string(actor);
  if (peer != 0) {
    out += ",\"peer\":";
    out += std::to_string(peer);
  }
  if (has_prefix) {
    out += ",\"prefix\":\"";
    out += prefix.to_string();
    out += '"';
  }
  if (value != 0) {
    out += ",\"v\":";
    out += std::to_string(value);
  }
  if (value2 != 0) {
    out += ",\"v2\":";
    out += std::to_string(value2);
  }
  if (!note.empty()) {
    out += ",\"note\":";
    append_json_string(out, note);
  }
  out += '}';
  return out;
}

void write_trace_jsonl(std::ostream& os, const std::vector<TraceEvent>& events) {
  for (const TraceEvent& event : events) os << event.to_json() << '\n';
}

}  // namespace moas::obs
