// Typed trace events for the observability bus.
//
// One TraceEvent records one protocol- or harness-level occurrence with its
// simulated-time timestamp: a session FSM transition, an UPDATE crossing a
// link, a best-route change, a detector alarm, a chaos fault, an RFC 7606
// degradation. Events are plain data — actor/peer are raw AS numbers
// (std::uint32_t, the same representation as bgp::Asn) so this layer sits
// *below* bgp and everything above can emit onto one bus.
//
// The JSONL export is deterministic: field order is fixed, optional fields
// are emitted only when set, and doubles are printed with a fixed format —
// equal event streams serialize to byte-identical output.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "moas/net/prefix.h"
#include "moas/sim/event_queue.h"

namespace moas::obs {

enum class EventKind : std::uint8_t {
  SessionTransition,  // FSM state change; note = "OpenSent->Established"
  UpdateSent,         // router handed an UPDATE to the transport
  UpdateReceived,     // announcement processed at the receiver
  WithdrawReceived,   // withdrawal processed (note = "error-withdraw" if RFC 7606)
  RoutePreferred,     // best route (re)selected; value = old origin, value2 = new
  RouteDepreferred,   // best route lost; value = old origin
  AlarmRaised,        // detector alarm; note = cause
  AlarmResolved,      // conflict resolved; value = origins banned
  AlarmDropped,       // resolution failed; the conflict stays open
  FaultInjected,      // chaos discrete fault; note = the schedule's log line
  MessageFault,       // chaos per-message fault; note = fault kind
  ErrorDegraded,      // RFC 7606 action; note = treat-as-withdraw / attribute-discard / ...
  ErrorWithdraw,      // router processed a treat-as-withdraw revocation
  AttackInjected,     // harness launched a false origination; actor = attacker
  ResolverRequest,    // async resolution attempt dispatched; note = source name
  ResolverTimeout,    // attempt exceeded its per-request timeout; note = source
  ResolverRetry,      // attempt re-dispatched after backoff; value = attempt #
  ResolverBreaker,    // circuit-breaker transition; note = open/half-open/closed
  ResolverFallback,   // chain advanced to the next source; note = new source
  FeedGap,            // stream ingest detected missing feed days; value = first, value2 = last
  UpdatesShed,        // shard degraded to summary-only; value = shed count, value2 = shard
  StateEvicted,       // shard compacted cold prefix state; value = evicted count, value2 = shard
};

/// Stable kebab-case name (the JSONL "kind" field).
const char* to_string(EventKind kind);

struct TraceEvent {
  sim::Time at = 0.0;
  EventKind kind = EventKind::SessionTransition;
  std::uint32_t actor = 0;  // the AS where the event happened
  std::uint32_t peer = 0;   // the other side, when there is one (0 = none)
  bool has_prefix = false;
  net::Prefix prefix;
  /// Kind-specific small payloads (origins, counts); 0 = unset, -1 = "none".
  std::int64_t value = 0;
  std::int64_t value2 = 0;
  std::string note;

  TraceEvent() = default;
  TraceEvent(EventKind kind, std::uint32_t actor, std::uint32_t peer = 0)
      : kind(kind), actor(actor), peer(peer) {}

  TraceEvent& with_prefix(const net::Prefix& p) {
    has_prefix = true;
    prefix = p;
    return *this;
  }
  TraceEvent& with_values(std::int64_t v, std::int64_t v2 = 0) {
    value = v;
    value2 = v2;
    return *this;
  }
  TraceEvent& with_note(std::string n) {
    note = std::move(n);
    return *this;
  }

  /// One JSON object (no trailing newline). Deterministic for equal events.
  std::string to_json() const;

  bool operator==(const TraceEvent&) const = default;
};

/// Write one event per line (the JSONL trace dump).
void write_trace_jsonl(std::ostream& os, const std::vector<TraceEvent>& events);

}  // namespace moas::obs
