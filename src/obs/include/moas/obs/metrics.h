// Named-metric registry: counters, gauges, fixed-bucket histograms.
//
// The registry unifies the scattered per-component Stats structs behind
// dotted metric names ("router.updates_sent", "chaos.treat_as_withdraws",
// "detector.alarm_latency_first"). Components *snapshot into* a registry —
// they keep their cheap local counters on the hot path and dump them when a
// run finishes — so the registry itself is never on a per-message path.
//
// Merge semantics (used when reducing per-run registries in plan order):
//   counters    sum
//   gauges      last writer wins
//   histograms  bucket-wise sum; specs must match exactly (throws otherwise)
//
// All maps are std::map (sorted), so the JSON manifest is deterministic and
// two equal registries serialize to byte-identical output.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace moas::obs {

/// `buckets` equal-width bins covering [lo, lo + width * buckets), plus
/// explicit underflow/overflow counts outside that range.
struct HistogramSpec {
  double lo = 0.0;
  double width = 1.0;
  std::size_t buckets = 0;

  double hi() const { return lo + width * static_cast<double>(buckets); }
  bool operator==(const HistogramSpec&) const = default;
};

class FixedHistogram {
 public:
  FixedHistogram() = default;
  explicit FixedHistogram(HistogramSpec spec);

  void add(double value);
  /// Bucket-wise sum. Throws std::invalid_argument on spec mismatch.
  void merge(const FixedHistogram& other);

  const HistogramSpec& spec() const { return spec_; }
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }  // +inf when empty
  double max() const { return max_; }  // -inf when empty
  double mean() const;                 // 0.0 when empty
  bool empty() const { return count_ == 0; }

  /// Linear interpolation within the bucket containing quantile `q` in
  /// [0, 1]; underflow counts at `lo`, overflow at `hi`. 0.0 when empty.
  double quantile(double q) const;

  /// Rebuild a histogram from persisted state (the stream checkpoint
  /// format). `counts` must match the spec's bucket count and `count` the
  /// total including under/overflow; min/max/sum are restored bit-exact so
  /// a restored histogram compares equal to the one that was saved.
  static FixedHistogram restore(const HistogramSpec& spec,
                                std::vector<std::uint64_t> counts, std::uint64_t underflow,
                                std::uint64_t overflow, std::uint64_t count, double sum,
                                double min, double max);

  bool operator==(const FixedHistogram&) const = default;

 private:
  HistogramSpec spec_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Add `delta` to counter `name` (created at zero on first touch).
  void count(const std::string& name, std::uint64_t delta = 1);
  std::uint64_t counter(const std::string& name) const;  // 0 when absent

  void set_gauge(const std::string& name, double value);
  double gauge(const std::string& name) const;  // 0.0 when absent

  /// Get-or-create. Throws std::invalid_argument if `name` exists with a
  /// different spec.
  FixedHistogram& histogram(const std::string& name, const HistogramSpec& spec);
  const FixedHistogram* find_histogram(const std::string& name) const;

  /// counters sum, gauges last-writer-wins, histograms merge.
  void merge(const MetricsRegistry& other);

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, FixedHistogram>& histograms() const {
    return histograms_;
  }
  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Deterministic manifest: sorted names, fixed double formatting.
  std::string to_json() const;
  void write_json(std::ostream& os) const;

  bool operator==(const MetricsRegistry&) const = default;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, FixedHistogram> histograms_;
};

}  // namespace moas::obs
