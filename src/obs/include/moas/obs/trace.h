// The deterministic event trace bus.
//
// One TraceBus belongs to one simulation run. Runs are single-threaded (the
// sweep parallelism of PR 4 is *across* runs, never within one), so the bus
// is a plain per-run buffer — the "per-thread buffer" of the determinism
// contract — and needs no locks on the emission path. The harness that
// executed a plan merges the per-run buses in plan order, which makes the
// combined stream bit-identical for any --jobs value, exactly like the
// SweepPoint reduction.
//
// Overhead model, in increasing cost:
//   * compile-time off (cmake -DMOAS_OBS_TRACE=OFF defines MOAS_OBS_NO_TRACE):
//     trace_wants() is constexpr-false and every emission site folds away —
//     zero instructions on the hot path.
//   * runtime Off (the default level): emission sites pay one null/level
//     check and skip building the event.
//   * Summary: low-volume events only — route (de)preference, alarms,
//     faults, FSM transitions, RFC 7606 degradations. What the latency
//     instrumentation needs; cheap enough for every bench run.
//   * Full: adds per-UPDATE send/receive — the debugging firehose.
#pragma once

#include <cstdint>
#include <vector>

#include "moas/obs/event.h"
#include "moas/sim/event_queue.h"

namespace moas::obs {

enum class TraceLevel : std::uint8_t { Off = 0, Summary = 1, Full = 2 };

const char* to_string(TraceLevel level);

#ifdef MOAS_OBS_NO_TRACE
inline constexpr bool kTraceCompiledIn = false;
#else
inline constexpr bool kTraceCompiledIn = true;
#endif

class TraceBus {
 public:
  /// `clock` (may be null) stamps every emitted event with the simulated
  /// time; it must outlive the bus.
  explicit TraceBus(TraceLevel level, const sim::EventQueue* clock = nullptr)
      : level_(level), clock_(clock) {}

  TraceLevel level() const { return level_; }

  /// Would an event at `at_least` be recorded? Callers pass Summary or Full.
  bool wants(TraceLevel at_least) const {
    return level_ != TraceLevel::Off && level_ >= at_least;
  }

  /// Record `event`, stamping `event.at` from the clock when one is
  /// attached. Emission sites gate on trace_wants() *before* building the
  /// event so a disabled bus costs no allocation.
  void emit(TraceEvent event) {
    if (clock_ != nullptr) event.at = clock_->now();
    events_.push_back(std::move(event));
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Move the buffer out (the harness collects per-run streams this way).
  std::vector<TraceEvent> take() { return std::move(events_); }
  void clear() { events_.clear(); }

 private:
  TraceLevel level_;
  const sim::EventQueue* clock_;
  std::vector<TraceEvent> events_;
};

/// The one gate every instrumentation site uses:
///
///   if (obs::trace_wants(trace_, obs::TraceLevel::Summary)) {
///     trace_->emit(...);
///   }
///
/// Compile-time no-op when the sink is compiled out; otherwise one null
/// check plus one level compare.
inline bool trace_wants(const TraceBus* bus, TraceLevel at_least) {
  if constexpr (!kTraceCompiledIn) {
    (void)bus;
    (void)at_least;
    return false;
  } else {
    return bus != nullptr && bus->wants(at_least);
  }
}

}  // namespace moas::obs
