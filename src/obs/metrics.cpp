#include "moas/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace moas::obs {

namespace {

std::string format_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

FixedHistogram::FixedHistogram(HistogramSpec spec)
    : spec_(spec),
      counts_(spec.buckets, 0),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  if (spec.buckets == 0) throw std::invalid_argument("histogram needs buckets");
  if (!(spec.width > 0.0)) throw std::invalid_argument("histogram width <= 0");
}

void FixedHistogram::add(double value) {
  if (value < spec_.lo) {
    ++underflow_;
  } else {
    const auto idx =
        static_cast<std::size_t>((value - spec_.lo) / spec_.width);
    if (idx >= spec_.buckets) {
      ++overflow_;
    } else {
      ++counts_[idx];
    }
  }
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void FixedHistogram::merge(const FixedHistogram& other) {
  if (!(spec_ == other.spec_)) {
    throw std::invalid_argument("histogram spec mismatch on merge");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

FixedHistogram FixedHistogram::restore(const HistogramSpec& spec,
                                       std::vector<std::uint64_t> counts, std::uint64_t underflow,
                                       std::uint64_t overflow, std::uint64_t count, double sum,
                                       double min, double max) {
  FixedHistogram hist(spec);
  if (counts.size() != spec.buckets) {
    throw std::invalid_argument("histogram restore: bucket count mismatch");
  }
  std::uint64_t in_buckets = underflow + overflow;
  for (std::uint64_t c : counts) in_buckets += c;
  if (in_buckets != count) {
    throw std::invalid_argument("histogram restore: counts do not add up");
  }
  hist.counts_ = std::move(counts);
  hist.underflow_ = underflow;
  hist.overflow_ = overflow;
  hist.count_ = count;
  hist.sum_ = sum;
  hist.min_ = min;
  hist.max_ = max;
  return hist;
}

double FixedHistogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double FixedHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count_);
  double seen = static_cast<double>(underflow_);
  if (rank <= seen) return spec_.lo;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double in_bucket = static_cast<double>(counts_[i]);
    if (rank <= seen + in_bucket) {
      const double frac = in_bucket == 0.0 ? 0.0 : (rank - seen) / in_bucket;
      return spec_.lo + spec_.width * (static_cast<double>(i) + frac);
    }
    seen += in_bucket;
  }
  return spec_.hi();
}

void MetricsRegistry::count(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  gauges_[name] = value;
}

double MetricsRegistry::gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

FixedHistogram& MetricsRegistry::histogram(const std::string& name,
                                           const HistogramSpec& spec) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, FixedHistogram(spec)).first;
  } else if (!(it->second.spec() == spec)) {
    throw std::invalid_argument("histogram '" + name +
                                "' already registered with different spec");
  }
  return it->second;
}

const FixedHistogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, value] : other.gauges_) gauges_[name] = value;
  for (const auto& [name, hist] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, hist);
    } else {
      it->second.merge(hist);
    }
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  os << (first ? "},\n" : "\n  },\n");
  os << "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    os << (first ? "\n" : ",\n")
       << "    \"" << name << "\": " << format_double(value);
    first = false;
  }
  os << (first ? "},\n" : "\n  },\n");
  os << "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": {\"lo\": "
       << format_double(hist.spec().lo)
       << ", \"width\": " << format_double(hist.spec().width)
       << ", \"count\": " << hist.count()
       << ", \"sum\": " << format_double(hist.sum())
       << ", \"underflow\": " << hist.underflow()
       << ", \"overflow\": " << hist.overflow() << ", \"buckets\": [";
    for (std::size_t i = 0; i < hist.bucket_counts().size(); ++i) {
      if (i != 0) os << ", ";
      os << hist.bucket_counts()[i];
    }
    os << "]}";
    first = false;
  }
  os << (first ? "}\n" : "\n  }\n") << "}\n";
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

}  // namespace moas::obs
