#include "moas/obs/trace.h"

namespace moas::obs {

const char* to_string(TraceLevel level) {
  switch (level) {
    case TraceLevel::Off: return "off";
    case TraceLevel::Summary: return "summary";
    case TraceLevel::Full: return "full";
  }
  return "?";
}

}  // namespace moas::obs
