#include "moas/core/alarm.h"

#include <algorithm>

#include "moas/core/moas_list.h"
#include "moas/util/assert.h"

namespace moas::core {

const char* to_string(MoasAlarm::Cause cause) {
  switch (cause) {
    case MoasAlarm::Cause::ListMismatch: return "list-mismatch";
    case MoasAlarm::Cause::OriginNotInList: return "origin-not-in-list";
    case MoasAlarm::Cause::BannedOriginSeen: return "banned-origin-seen";
  }
  return "?";
}

const char* to_string(MoasAlarm::State state) {
  switch (state) {
    case MoasAlarm::State::Raised: return "raised";
    case MoasAlarm::State::Pending: return "pending";
    case MoasAlarm::State::Resolved: return "resolved";
    case MoasAlarm::State::Expired: return "expired";
  }
  return "?";
}

void AlarmLog::settle(std::size_t id, MoasAlarm::State state, sim::Time at) {
  MOAS_REQUIRE(id >= base_, "settling an alarm that was already compacted");
  MOAS_REQUIRE(id - base_ < alarms_.size(), "settling an alarm that was never recorded");
  MOAS_REQUIRE(state != MoasAlarm::State::Raised, "cannot settle back to Raised");
  MoasAlarm& alarm = alarms_[id - base_];
  MOAS_REQUIRE(alarm.state == MoasAlarm::State::Raised ||
                   alarm.state == MoasAlarm::State::Pending,
               "alarm already reached a terminal state");
  alarm.state = state;
  if (state != MoasAlarm::State::Pending) alarm.settled_at = at;
}

void AlarmLog::clear() {
  alarms_.clear();
  base_ = 0;
  compacted_states_.fill(0);
  compacted_causes_.fill(0);
}

void AlarmLog::set_retention(std::size_t cap) {
  retention_ = cap;
  maybe_compact();
}

void AlarmLog::restore_compacted(std::size_t base, const std::array<std::uint64_t, 4>& by_state,
                                 const std::array<std::uint64_t, 3>& by_cause) {
  MOAS_REQUIRE(alarms_.empty() && base_ == 0, "restore_compacted needs a fresh log");
  base_ = base;
  compacted_states_ = by_state;
  compacted_causes_ = by_cause;
}

void AlarmLog::maybe_compact() {
  if (retention_ == 0 || alarms_.size() <= retention_) return;
  // Fold the longest settled prefix of the window, oldest first; stop at
  // the first still-open alarm (ids must stay dense) or once back at cap.
  std::size_t fold = 0;
  while (alarms_.size() - fold > retention_ &&
         (alarms_[fold].state == MoasAlarm::State::Resolved ||
          alarms_[fold].state == MoasAlarm::State::Expired)) {
    ++compacted_states_[static_cast<std::size_t>(alarms_[fold].state)];
    ++compacted_causes_[static_cast<std::size_t>(alarms_[fold].cause)];
    ++fold;
  }
  if (fold == 0) return;
  alarms_.erase(alarms_.begin(), alarms_.begin() + static_cast<std::ptrdiff_t>(fold));
  base_ += fold;
}

std::string MoasAlarm::to_string() const {
  std::string out = "MOAS alarm at AS" + std::to_string(observer) + " for " +
                    prefix.to_string() + " (" + core::to_string(cause) + "): reference " +
                    list_to_string(reference_list) + " vs observed " +
                    list_to_string(observed_list);
  if (!offending_origins.empty()) {
    out += ", offending origins " + list_to_string(offending_origins);
  }
  return out;
}

std::size_t AlarmLog::count(MoasAlarm::Cause cause) const {
  return static_cast<std::size_t>(
             std::count_if(alarms_.begin(), alarms_.end(),
                           [cause](const MoasAlarm& a) { return a.cause == cause; })) +
         compacted_causes_[static_cast<std::size_t>(cause)];
}

std::size_t AlarmLog::count_state(MoasAlarm::State state) const {
  return static_cast<std::size_t>(
             std::count_if(alarms_.begin(), alarms_.end(),
                           [state](const MoasAlarm& a) { return a.state == state; })) +
         compacted_states_[static_cast<std::size_t>(state)];
}

}  // namespace moas::core
