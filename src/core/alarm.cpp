#include "moas/core/alarm.h"

#include <algorithm>

#include "moas/core/moas_list.h"
#include "moas/util/assert.h"

namespace moas::core {

const char* to_string(MoasAlarm::Cause cause) {
  switch (cause) {
    case MoasAlarm::Cause::ListMismatch: return "list-mismatch";
    case MoasAlarm::Cause::OriginNotInList: return "origin-not-in-list";
    case MoasAlarm::Cause::BannedOriginSeen: return "banned-origin-seen";
  }
  return "?";
}

const char* to_string(MoasAlarm::State state) {
  switch (state) {
    case MoasAlarm::State::Raised: return "raised";
    case MoasAlarm::State::Pending: return "pending";
    case MoasAlarm::State::Resolved: return "resolved";
    case MoasAlarm::State::Expired: return "expired";
  }
  return "?";
}

void AlarmLog::settle(std::size_t id, MoasAlarm::State state, sim::Time at) {
  MOAS_REQUIRE(id < alarms_.size(), "settling an alarm that was never recorded");
  MOAS_REQUIRE(state != MoasAlarm::State::Raised, "cannot settle back to Raised");
  MoasAlarm& alarm = alarms_[id];
  MOAS_REQUIRE(alarm.state == MoasAlarm::State::Raised ||
                   alarm.state == MoasAlarm::State::Pending,
               "alarm already reached a terminal state");
  alarm.state = state;
  if (state != MoasAlarm::State::Pending) alarm.settled_at = at;
}

std::string MoasAlarm::to_string() const {
  std::string out = "MOAS alarm at AS" + std::to_string(observer) + " for " +
                    prefix.to_string() + " (" + core::to_string(cause) + "): reference " +
                    list_to_string(reference_list) + " vs observed " +
                    list_to_string(observed_list);
  if (!offending_origins.empty()) {
    out += ", offending origins " + list_to_string(offending_origins);
  }
  return out;
}

std::size_t AlarmLog::count(MoasAlarm::Cause cause) const {
  return static_cast<std::size_t>(
      std::count_if(alarms_.begin(), alarms_.end(),
                    [cause](const MoasAlarm& a) { return a.cause == cause; }));
}

std::size_t AlarmLog::count_state(MoasAlarm::State state) const {
  return static_cast<std::size_t>(
      std::count_if(alarms_.begin(), alarms_.end(),
                    [state](const MoasAlarm& a) { return a.state == state; }));
}

}  // namespace moas::core
