#include "moas/core/alarm.h"

#include <algorithm>

#include "moas/core/moas_list.h"

namespace moas::core {

const char* to_string(MoasAlarm::Cause cause) {
  switch (cause) {
    case MoasAlarm::Cause::ListMismatch: return "list-mismatch";
    case MoasAlarm::Cause::OriginNotInList: return "origin-not-in-list";
    case MoasAlarm::Cause::BannedOriginSeen: return "banned-origin-seen";
  }
  return "?";
}

std::string MoasAlarm::to_string() const {
  std::string out = "MOAS alarm at AS" + std::to_string(observer) + " for " +
                    prefix.to_string() + " (" + core::to_string(cause) + "): reference " +
                    list_to_string(reference_list) + " vs observed " +
                    list_to_string(observed_list);
  if (!offending_origins.empty()) {
    out += ", offending origins " + list_to_string(offending_origins);
  }
  return out;
}

std::size_t AlarmLog::count(MoasAlarm::Cause cause) const {
  return static_cast<std::size_t>(
      std::count_if(alarms_.begin(), alarms_.end(),
                    [cause](const MoasAlarm& a) { return a.cause == cause; }));
}

}  // namespace moas::core
