#include "moas/core/multi_prefix.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <vector>

#include "moas/core/alarm.h"
#include "moas/core/detector.h"
#include "moas/core/moas_list.h"
#include "moas/core/resolver.h"
#include "moas/sim/wave_engine.h"
#include "moas/util/assert.h"
#include "moas/util/rng.h"

namespace moas::core {

net::Prefix multi_prefix_victim(std::size_t index) {
  MOAS_REQUIRE(index < 65536, "victim prefix index out of the 10.0.0.0/8 /24 space");
  return net::Prefix(net::Ipv4Addr(10, static_cast<std::uint8_t>(index / 256),
                                   static_cast<std::uint8_t>(index % 256), 0),
                     24);
}

namespace {

struct PrefixPlan {
  net::Prefix victim;
  AsnSet origins;
  bgp::Asn attacker = bgp::kNoAs;  // kNoAs: this prefix is not attacked
};

// Pre-interning layout model (see MultiPrefixResult::baseline_rib_bytes).
// Red-black node header: color + three pointers, the libstdc++ layout.
constexpr std::size_t kMapNodeOverhead = 32;
// Handle -> inline growth: AsPath, CommunitySet and LargeCommunitySet were
// each a 24-byte std::vector header before interning; each is an 8-byte
// pointer now.
constexpr std::size_t kInlineGrowth = 3 * 16;

// Heap bytes a private (un-shared) copy of this route's attributes would
// own: the segment vectors behind the path plus both community-value
// vectors.
std::size_t deep_attr_bytes(const bgp::Route& route) {
  std::size_t bytes = 0;
  for (const bgp::PathSegment& segment : route.attrs.path.segments()) {
    bytes += sizeof(bgp::PathSegment) + segment.asns.size() * sizeof(bgp::Asn);
  }
  bytes += route.attrs.communities.size() * sizeof(bgp::Community);
  bytes += route.attrs.large_communities.size() * sizeof(bgp::LargeCommunity);
  return bytes;
}

std::size_t baseline_entry_bytes(const bgp::Route& route) {
  return sizeof(bgp::RibEntry) + kInlineGrowth + kMapNodeOverhead + deep_attr_bytes(route);
}

}  // namespace

MultiPrefixResult run_multi_prefix(const topo::AsGraph& graph,
                                   const MultiPrefixConfig& config) {
  MOAS_REQUIRE(config.num_prefixes >= 1, "workload needs at least one prefix");
  MOAS_REQUIRE(config.block_size >= 1, "block size must be >= 1");
  MOAS_REQUIRE(config.origins_per_prefix >= 1, "each prefix needs an origin");
  MOAS_REQUIRE(config.attacked_fraction >= 0.0 && config.attacked_fraction <= 1.0,
               "attacked fraction must be in [0, 1]");

  const std::vector<bgp::Asn> all_ases = graph.nodes();
  const std::vector<bgp::Asn> stubs = graph.stubs();
  MOAS_REQUIRE(stubs.size() >= config.origins_per_prefix,
               "not enough stubs to place the per-prefix origins");

  const auto attacked = static_cast<std::size_t>(std::lround(
      config.attacked_fraction * static_cast<double>(config.num_prefixes)));
  // Attackers are distinct across prefixes (one export filter per router);
  // keep the rejection-sampling draw below bounded.
  MOAS_REQUIRE(attacked * 2 <= all_ases.size(),
               "attacked prefixes must not exceed half the AS population");

  util::Rng rng(config.seed);

  // Plan every prefix up front (prefix-major draw order, reproducible from
  // the seed alone), and record the ground truth the oracle registry serves.
  auto truth = std::make_shared<PrefixOriginDb>();
  std::vector<PrefixPlan> plans;
  plans.reserve(config.num_prefixes);
  AsnSet all_attackers;
  for (std::size_t i = 0; i < config.num_prefixes; ++i) {
    PrefixPlan plan;
    plan.victim = multi_prefix_victim(i);
    for (std::size_t j : rng.sample_indices(stubs.size(), config.origins_per_prefix)) {
      plan.origins.insert(stubs[j]);
    }
    if (i < attacked) {
      for (;;) {
        const bgp::Asn candidate = all_ases[rng.index(all_ases.size())];
        if (all_attackers.contains(candidate) || plan.origins.contains(candidate)) continue;
        plan.attacker = candidate;
        all_attackers.insert(candidate);
        break;
      }
    }
    truth->set(plan.victim, plan.origins);
    plans.push_back(std::move(plan));
  }

  sim::WaveEngine::Config wave_config;
  wave_config.mode = config.policy;
  sim::WaveEngine wave(graph, wave_config);

  // Detector deployment — the single-prefix wave-run wiring: capable ASes
  // get an import validator against the oracle, attackers never do.
  auto alarms = std::make_shared<AlarmLog>();
  auto resolver = std::make_shared<OracleResolver>(truth);
  std::vector<std::shared_ptr<MoasDetector>> detectors;
  AsnSet capable;
  if (config.deployment == Deployment::Full) {
    for (bgp::Asn asn : all_ases) capable.insert(asn);
  } else if (config.deployment == Deployment::Partial) {
    const auto want = static_cast<std::size_t>(std::lround(
        config.deployment_fraction * static_cast<double>(all_ases.size())));
    for (std::size_t i : rng.sample_indices(all_ases.size(), want)) {
      capable.insert(all_ases[i]);
    }
  }
  for (bgp::Asn asn : capable) {
    if (all_attackers.contains(asn)) continue;
    auto detector = std::make_shared<MoasDetector>(alarms, resolver);
    wave.router(asn).set_validator(detector);
    detectors.push_back(std::move(detector));
  }

  // Block-iterated origination: seed one block's valid routes and attacks,
  // run to the fixpoint, move on. The converged tables are block-size
  // independent; the in-flight update set is not — that is the memory knob.
  MultiPrefixResult result;
  result.prefixes = config.num_prefixes;
  result.attacked = attacked;
  for (std::size_t start = 0; start < plans.size(); start += config.block_size) {
    const std::size_t end = std::min(start + config.block_size, plans.size());
    for (std::size_t i = start; i < end; ++i) {
      const PrefixPlan& plan = plans[i];
      bgp::PathAttributes origin_attrs;
      if (plan.origins.size() > 1) attach_moas_list(origin_attrs, plan.origins);
      for (bgp::Asn origin : plan.origins) {
        wave.router(origin).originate(plan.victim, origin_attrs.communities,
                                      origin_attrs.large_communities);
      }
      if (plan.attacker != bgp::kNoAs) {
        AttackPlan attack;
        attack.attacker = plan.attacker;
        attack.target = plan.victim;
        attack.valid_origins = plan.origins;
        attack.strategy = config.strategy;
        launch_attack(wave.router(plan.attacker), attack);
      }
    }
    const auto block_start = std::chrono::steady_clock::now();
    wave.propagate();
    result.propagation_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - block_start)
            .count();
    ++result.blocks;
  }

  // Scoring: the fig9/10 outcome tally per attacked prefix, summed.
  for (const PrefixPlan& plan : plans) {
    if (plan.attacker == bgp::kNoAs) continue;
    net::Prefix scored_prefix = plan.victim;
    if (config.strategy == AttackerStrategy::SubPrefixHijack) {
      scored_prefix = plan.victim.children().first;
    }
    for (bgp::Asn asn : all_ases) {
      if (asn == plan.attacker) continue;
      const bgp::Router& router = wave.router(asn);
      const auto hijacked_origin = router.best_origin(scored_prefix);
      if (hijacked_origin == std::optional<bgp::Asn>(plan.attacker)) {
        ++result.adopted_false;
        continue;
      }
      const auto valid_origin = router.best_origin(plan.victim);
      if (!valid_origin) {
        ++result.no_route;
      } else if (plan.origins.contains(*valid_origin)) {
        ++result.adopted_valid;
      } else if (*valid_origin == plan.attacker) {
        ++result.adopted_false;
      }
    }
  }

  result.alarms = alarms->size();
  for (const MoasAlarm& alarm : alarms->alarms()) {
    const bool implicates_attacker =
        std::any_of(all_attackers.begin(), all_attackers.end(), [&](bgp::Asn a) {
          return alarm.offending_origins.contains(a) || alarm.observed_list.contains(a) ||
                 alarm.reference_list.contains(a);
        });
    if (!implicates_attacker) ++result.false_alarms;
  }

  for (bgp::Asn asn : all_ases) {
    const bgp::Router& router = wave.router(asn);
    const bgp::AdjRibIn& adj = router.adj_rib_in();
    const bgp::LocRib& loc = router.loc_rib();
    result.routes_installed += loc.size();
    result.rib_bytes += adj.container_bytes() + loc.container_bytes();
    for (const net::Prefix& prefix : adj.prefixes()) {
      result.baseline_rib_bytes += kMapNodeOverhead;  // outer map node per row
      for (const bgp::RibEntry* entry : adj.candidates(prefix)) {
        ++result.rib_entries;
        result.baseline_rib_bytes += baseline_entry_bytes(entry->route);
      }
    }
    for (const net::Prefix& prefix : loc.prefixes()) {
      ++result.rib_entries;
      result.baseline_rib_bytes += baseline_entry_bytes(loc.best(prefix)->route);
    }
  }
  return result;
}

}  // namespace moas::core
