#include "moas/core/attacker.h"

#include "moas/util/assert.h"

namespace moas::core {

const char* to_string(AttackerStrategy strategy) {
  switch (strategy) {
    case AttackerStrategy::NoList: return "no-list";
    case AttackerStrategy::OwnList: return "own-list";
    case AttackerStrategy::AugmentedList: return "augmented-list";
    case AttackerStrategy::ValidListForgedOrigin: return "valid-list-forged-origin";
    case AttackerStrategy::SubPrefixHijack: return "sub-prefix-hijack";
  }
  return "?";
}

net::Prefix attack_prefix(const AttackPlan& plan) {
  if (plan.strategy == AttackerStrategy::SubPrefixHijack) {
    MOAS_REQUIRE(plan.target.length() < 32, "victim prefix too long to de-aggregate");
    return plan.target.children().first;
  }
  return plan.target;
}

std::optional<AsnSet> attack_moas_list(const AttackPlan& plan) {
  switch (plan.strategy) {
    case AttackerStrategy::NoList:
    case AttackerStrategy::SubPrefixHijack:
      return std::nullopt;
    case AttackerStrategy::OwnList:
      return AsnSet{plan.attacker};
    case AttackerStrategy::AugmentedList: {
      AsnSet list = plan.valid_origins;
      list.insert(plan.attacker);
      return list;
    }
    case AttackerStrategy::ValidListForgedOrigin:
      return plan.valid_origins;
  }
  return std::nullopt;
}

bgp::CommunitySet attack_communities(const AttackPlan& plan) {
  std::optional<AsnSet> list = attack_moas_list(plan);
  return list ? encode_moas_list(*list) : bgp::CommunitySet{};
}

void launch_attack(bgp::Network& network, const AttackPlan& plan) {
  MOAS_REQUIRE(network.has_router(plan.attacker), "attacker AS not in network");
  launch_attack(network.router(plan.attacker), plan);
}

void install_suppression(bgp::Router& router, const AttackPlan& plan) {
  MOAS_REQUIRE(router.asn() == plan.attacker, "plan is for a different attacker AS");

  // A compromised router blocks the valid route from flowing through it:
  // for the victim block it only ever exports its own false origination.
  const net::Prefix victim = plan.target;
  const bgp::Asn self = plan.attacker;
  router.set_export_filter([victim, self](const bgp::Update& update, bgp::Asn /*to*/) {
    if (!victim.overlaps(update.prefix)) return true;  // unrelated prefixes flow
    if (update.kind != bgp::Update::Kind::Announce) return false;
    return update.route->origin_as() == std::optional<bgp::Asn>(self);
  });
}

void launch_attack(bgp::Router& router, const AttackPlan& plan) {
  install_suppression(router, plan);
  // Split the forged list by ASN width so wide-ASN attackers (and wide
  // members of a forged valid list) encode without hitting the 2-octet
  // classic-community ceiling.
  bgp::PathAttributes attrs;
  if (std::optional<AsnSet> list = attack_moas_list(plan)) {
    attach_moas_list(attrs, *list);
  }
  router.originate(attack_prefix(plan), attrs.communities, attrs.large_communities);
}

}  // namespace moas::core
