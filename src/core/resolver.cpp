#include "moas/core/resolver.h"

#include <algorithm>

#include "moas/obs/metrics.h"
#include "moas/util/assert.h"

namespace moas::core {

void PrefixOriginDb::set(const net::Prefix& prefix, bgp::AsnSet origins) {
  MOAS_REQUIRE(!origins.empty(), "origin set must be non-empty");
  db_[prefix] = std::move(origins);
}

std::optional<bgp::AsnSet> PrefixOriginDb::lookup(const net::Prefix& prefix) const {
  auto it = db_.find(prefix);
  if (it == db_.end()) return std::nullopt;
  return it->second;
}

void OriginResolver::collect_metrics(obs::MetricsRegistry& registry) const {
  registry.count("resolver.queries", counters_.queries);
  registry.count("resolver.failures", counters_.failures);
  registry.count("resolver.corrupted", counters_.corrupted);
}

OracleResolver::OracleResolver(std::shared_ptr<const PrefixOriginDb> truth)
    : truth_(std::move(truth)) {
  MOAS_REQUIRE(truth_ != nullptr, "oracle needs a truth database");
}

std::optional<bgp::AsnSet> OracleResolver::resolve(const net::Prefix& prefix) {
  ++counters_.queries;
  auto answer = truth_->lookup(prefix);
  if (!answer) ++counters_.failures;
  return answer;
}

DnsResolver::DnsResolver(std::shared_ptr<const PrefixOriginDb> db, Config config)
    : db_(std::move(db)), config_(config), rng_(config.seed) {
  MOAS_REQUIRE(db_ != nullptr, "DNS resolver needs a database");
  MOAS_REQUIRE(config_.unavailability >= 0.0 && config_.unavailability <= 1.0,
               "unavailability must be a probability");
  MOAS_REQUIRE(config_.forgery >= 0.0 && config_.forgery <= 1.0,
               "forgery must be a probability");
}

std::optional<bgp::AsnSet> DnsResolver::resolve(const net::Prefix& prefix) {
  ++counters_.queries;
  if (rng_.chance(config_.unavailability)) {
    ++counters_.failures;
    return std::nullopt;
  }
  if (!config_.forged_answer.empty() && rng_.chance(config_.forgery)) {
    ++counters_.corrupted;
    return config_.forged_answer;
  }
  auto answer = db_->lookup(prefix);
  if (!answer) ++counters_.failures;
  return answer;
}

IrrResolver::IrrResolver(std::shared_ptr<const PrefixOriginDb> current,
                         std::shared_ptr<const PrefixOriginDb> stale_snapshot, Config config)
    : current_(std::move(current)),
      stale_(std::move(stale_snapshot)),
      config_(config),
      rng_(config.seed) {
  MOAS_REQUIRE(current_ != nullptr && stale_ != nullptr, "IRR needs both databases");
  MOAS_REQUIRE(config_.staleness >= 0.0 && config_.staleness <= 1.0,
               "staleness must be a probability");
}

std::optional<bgp::AsnSet> IrrResolver::resolve(const net::Prefix& prefix) {
  ++counters_.queries;
  auto [it, inserted] = record_is_stale_.try_emplace(prefix, false);
  if (inserted) {
    it->second = rng_.chance(config_.staleness);
    record_order_.push_back(prefix);
    // Bounded memory: drop the oldest-inserted sticky decision. A re-query
    // of an evicted prefix re-draws its staleness — acceptable drift, and
    // deterministic because insertion order is deterministic.
    if (config_.max_records > 0 && record_is_stale_.size() > config_.max_records) {
      record_is_stale_.erase(record_order_.front());
      record_order_.pop_front();
    }
  }
  if (it->second) {
    auto old = stale_->lookup(prefix);
    if (old) {
      // Only a stale record that actually *disagrees* with the current
      // registry is corrupted data; an unchanged record answers correctly
      // no matter how old it is.
      if (current_->lookup(prefix) != old) ++counters_.corrupted;
      return old;
    }
    ++counters_.failures;
    return std::nullopt;  // record simply missing from the registry
  }
  auto answer = current_->lookup(prefix);
  if (!answer) ++counters_.failures;
  return answer;
}

CachingResolver::CachingResolver(std::shared_ptr<OriginResolver> inner, TimeFn now,
                                 Config config)
    : inner_(std::move(inner)), now_(std::move(now)), config_(config) {
  MOAS_REQUIRE(inner_ != nullptr, "cache needs a resolver to wrap");
  MOAS_REQUIRE(now_ != nullptr, "cache needs a time source");
  MOAS_REQUIRE(config_.ttl >= 0.0, "ttl must be non-negative");
  MOAS_REQUIRE(config_.negative_ttl >= 0.0, "negative ttl must be non-negative");
}

double CachingResolver::negative_lifetime(std::uint32_t streak) const {
  double lifetime = config_.negative_ttl;
  if (lifetime <= 0.0) return 0.0;
  // Double per prior consecutive failure, saturating at the cap. The loop
  // stops as soon as the cap is reached, so a long streak cannot overflow.
  for (std::uint32_t i = 1; i < streak && lifetime < config_.negative_ttl_cap; ++i) {
    lifetime *= 2.0;
  }
  return std::min(lifetime, std::max(config_.negative_ttl, config_.negative_ttl_cap));
}

double CachingResolver::next_negative_ttl(const net::Prefix& prefix) const {
  auto it = cache_.find(prefix);
  const std::uint32_t streak = it == cache_.end() ? 0 : it->second.failure_streak;
  return negative_lifetime(streak + 1);
}

void CachingResolver::evict_oldest_expiry(const net::Prefix& keep) {
  // Deterministic victim: smallest expiry among entries other than `keep`
  // (the just-inserted one — evicting it would make short-lived negative
  // entries evict themselves at the cap while long positives survive); the
  // map's prefix order breaks ties (strict < keeps the lowest prefix).
  auto victim = cache_.end();
  for (auto it = cache_.begin(); it != cache_.end(); ++it) {
    if (it->first == keep) continue;
    if (victim == cache_.end() || it->second.expires < victim->second.expires) {
      victim = it;
    }
  }
  if (victim == cache_.end()) return;
  cache_.erase(victim);
  ++cache_counters_.evictions;
}

std::optional<bgp::AsnSet> CachingResolver::resolve(const net::Prefix& prefix) {
  ++cache_counters_.lookups;
  const double now = now_();
  auto it = cache_.find(prefix);
  if (it != cache_.end() && now < it->second.expires) {
    if (it->second.answer) {
      ++cache_counters_.hits;
    } else {
      ++cache_counters_.negative_hits;
    }
    return it->second.answer;
  }
  ++cache_counters_.misses;
  auto answer = inner_->resolve(prefix);
  const std::uint32_t streak =
      answer ? 0 : (it != cache_.end() ? it->second.failure_streak : 0) + 1;
  const double lifetime = answer ? config_.ttl : negative_lifetime(streak);
  if (lifetime > 0.0) {
    cache_.insert_or_assign(prefix, Entry{answer, now + lifetime, streak});
    if (config_.max_entries > 0 && cache_.size() > config_.max_entries) {
      evict_oldest_expiry(prefix);
    }
  } else if (it != cache_.end()) {
    cache_.erase(it);  // expired and not re-cacheable
  }
  return answer;
}

void CachingResolver::collect_metrics(obs::MetricsRegistry& registry) const {
  inner_->collect_metrics(registry);
  registry.count("resolver.cache_lookups", cache_counters_.lookups);
  registry.count("resolver.cache_hits", cache_counters_.hits);
  registry.count("resolver.cache_negative_hits", cache_counters_.negative_hits);
  registry.count("resolver.cache_misses", cache_counters_.misses);
  registry.count("resolver.cache_evictions", cache_counters_.evictions);
}

}  // namespace moas::core
