#include "moas/core/resolver.h"

#include "moas/util/assert.h"

namespace moas::core {

void PrefixOriginDb::set(const net::Prefix& prefix, bgp::AsnSet origins) {
  MOAS_REQUIRE(!origins.empty(), "origin set must be non-empty");
  db_[prefix] = std::move(origins);
}

std::optional<bgp::AsnSet> PrefixOriginDb::lookup(const net::Prefix& prefix) const {
  auto it = db_.find(prefix);
  if (it == db_.end()) return std::nullopt;
  return it->second;
}

OracleResolver::OracleResolver(std::shared_ptr<const PrefixOriginDb> truth)
    : truth_(std::move(truth)) {
  MOAS_REQUIRE(truth_ != nullptr, "oracle needs a truth database");
}

std::optional<bgp::AsnSet> OracleResolver::resolve(const net::Prefix& prefix) {
  ++stats_.queries;
  auto answer = truth_->lookup(prefix);
  if (!answer) ++stats_.failures;
  return answer;
}

DnsResolver::DnsResolver(std::shared_ptr<const PrefixOriginDb> db, Config config)
    : db_(std::move(db)), config_(config), rng_(config.seed) {
  MOAS_REQUIRE(db_ != nullptr, "DNS resolver needs a database");
  MOAS_REQUIRE(config_.unavailability >= 0.0 && config_.unavailability <= 1.0,
               "unavailability must be a probability");
  MOAS_REQUIRE(config_.forgery >= 0.0 && config_.forgery <= 1.0,
               "forgery must be a probability");
}

std::optional<bgp::AsnSet> DnsResolver::resolve(const net::Prefix& prefix) {
  ++stats_.queries;
  if (rng_.chance(config_.unavailability)) {
    ++stats_.failures;
    return std::nullopt;
  }
  if (!config_.forged_answer.empty() && rng_.chance(config_.forgery)) {
    ++stats_.corrupted;
    return config_.forged_answer;
  }
  auto answer = db_->lookup(prefix);
  if (!answer) ++stats_.failures;
  return answer;
}

IrrResolver::IrrResolver(std::shared_ptr<const PrefixOriginDb> current,
                         std::shared_ptr<const PrefixOriginDb> stale_snapshot, Config config)
    : current_(std::move(current)),
      stale_(std::move(stale_snapshot)),
      config_(config),
      rng_(config.seed) {
  MOAS_REQUIRE(current_ != nullptr && stale_ != nullptr, "IRR needs both databases");
  MOAS_REQUIRE(config_.staleness >= 0.0 && config_.staleness <= 1.0,
               "staleness must be a probability");
}

std::optional<bgp::AsnSet> IrrResolver::resolve(const net::Prefix& prefix) {
  ++stats_.queries;
  auto [it, inserted] = record_is_stale_.try_emplace(prefix, false);
  if (inserted) it->second = rng_.chance(config_.staleness);
  if (it->second) {
    auto old = stale_->lookup(prefix);
    if (old) {
      // Only a stale record that actually *disagrees* with the current
      // registry is corrupted data; an unchanged record answers correctly
      // no matter how old it is.
      if (current_->lookup(prefix) != old) ++stats_.corrupted;
      return old;
    }
    ++stats_.failures;
    return std::nullopt;  // record simply missing from the registry
  }
  auto answer = current_->lookup(prefix);
  if (!answer) ++stats_.failures;
  return answer;
}

CachingResolver::CachingResolver(std::shared_ptr<OriginResolver> inner, TimeFn now,
                                 Config config)
    : inner_(std::move(inner)), now_(std::move(now)), config_(config) {
  MOAS_REQUIRE(inner_ != nullptr, "cache needs a resolver to wrap");
  MOAS_REQUIRE(now_ != nullptr, "cache needs a time source");
  MOAS_REQUIRE(config_.ttl >= 0.0, "ttl must be non-negative");
  MOAS_REQUIRE(config_.negative_ttl >= 0.0, "negative ttl must be non-negative");
}

std::optional<bgp::AsnSet> CachingResolver::resolve(const net::Prefix& prefix) {
  ++stats_.queries;
  const double now = now_();
  auto it = cache_.find(prefix);
  if (it != cache_.end() && now < it->second.expires) {
    if (it->second.answer) {
      ++cache_stats_.hits;
    } else {
      ++cache_stats_.negative_hits;
      ++stats_.failures;  // the caller still observes a failed lookup
    }
    return it->second.answer;
  }
  ++cache_stats_.misses;
  auto answer = inner_->resolve(prefix);
  if (!answer) ++stats_.failures;
  const double lifetime = answer ? config_.ttl : config_.negative_ttl;
  if (lifetime > 0.0) {
    cache_.insert_or_assign(prefix, Entry{answer, now + lifetime});
  } else if (it != cache_.end()) {
    cache_.erase(it);  // expired and not re-cacheable
  }
  return answer;
}

}  // namespace moas::core
