#include "moas/core/monitor.h"

#include <map>
#include <sstream>

#include "moas/core/moas_list.h"
#include "moas/util/assert.h"
#include "moas/util/table.h"

namespace moas::core {

ErrorHandlingSummary collect_error_handling(const bgp::Network& network,
                                            const chaos::ChaosEngine* engine) {
  ErrorHandlingSummary summary;
  for (bgp::Asn asn : network.asns()) {
    summary.error_withdraws += network.router(asn).stats().error_withdraws;
  }
  if (engine) {
    const chaos::ChaosEngine::Stats& stats = engine->stats();
    summary.attr_corruptions = stats.attr_corruptions_applied;
    summary.treat_as_withdraws = stats.treat_as_withdraws;
    summary.attr_discards = stats.attr_discards;
    summary.corrupt_session_resets = stats.corrupt_session_resets;
    summary.poisoned_blocked = stats.poisoned_blocked;
  }
  return summary;
}

std::string error_handling_table(
    const std::vector<std::pair<std::string, ErrorHandlingSummary>>& rows) {
  util::TablePrinter table({"arm", "corruptions", "treat-as-withdraw", "attr-discard",
                            "resets-avoided", "session-resets", "error-withdraws",
                            "poisoned-blocked"});
  for (const auto& [label, s] : rows) {
    table.add_row({label, std::to_string(s.attr_corruptions),
                   std::to_string(s.treat_as_withdraws), std::to_string(s.attr_discards),
                   std::to_string(s.resets_avoided()),
                   std::to_string(s.corrupt_session_resets),
                   std::to_string(s.error_withdraws), std::to_string(s.poisoned_blocked)});
  }
  std::ostringstream os;
  table.print(os);
  return os.str();
}

MoasMonitor::MoasMonitor(std::vector<bgp::Asn> vantages) : vantages_(std::move(vantages)) {
  MOAS_REQUIRE(!vantages_.empty(), "monitor needs at least one vantage");
}

std::vector<MoasAlarm> MoasMonitor::scan(const bgp::Network& network) const {
  // prefix -> (first list seen, vantage that reported it)
  std::map<net::Prefix, std::pair<AsnSet, bgp::Asn>> reference;
  std::vector<MoasAlarm> out;
  std::map<net::Prefix, bool> already_alarmed;

  for (bgp::Asn vantage : vantages_) {
    const bgp::Router& router = network.router(vantage);
    for (const net::Prefix& prefix : router.loc_rib().prefixes()) {
      const bgp::RibEntry* entry = router.loc_rib().best(prefix);
      MOAS_ENSURE(entry != nullptr, "loc-rib listed a prefix without a best route");
      const AsnSet list = effective_moas_list(entry->route);
      auto [it, fresh] = reference.try_emplace(prefix, list, vantage);
      if (fresh || lists_consistent(it->second.first, list)) continue;
      if (already_alarmed[prefix]) continue;
      already_alarmed[prefix] = true;

      MoasAlarm alarm;
      alarm.at = network.clock().now();
      alarm.observer = vantage;
      alarm.prefix = prefix;
      alarm.reference_list = it->second.first;
      alarm.observed_list = list;
      alarm.offending_origins = entry->route.origin_candidates();
      alarm.cause = MoasAlarm::Cause::ListMismatch;
      out.push_back(std::move(alarm));
    }
  }
  return out;
}

}  // namespace moas::core
