#include "moas/core/monitor.h"

#include <map>
#include <sstream>

#include "moas/core/moas_list.h"
#include "moas/util/assert.h"
#include "moas/util/table.h"

namespace moas::core {

ErrorHandlingSummary ErrorHandlingSummary::from_metrics(
    const obs::MetricsRegistry& registry) {
  ErrorHandlingSummary summary;
  summary.error_withdraws = registry.counter("router.error_withdraws");
  summary.attr_corruptions = registry.counter("chaos.attr_corruptions_applied");
  summary.treat_as_withdraws = registry.counter("chaos.treat_as_withdraws");
  summary.attr_discards = registry.counter("chaos.attr_discards");
  summary.corrupt_session_resets = registry.counter("chaos.corrupt_session_resets");
  summary.poisoned_blocked = registry.counter("chaos.poisoned_blocked");
  return summary;
}

void ErrorHandlingSummary::to_metrics(obs::MetricsRegistry& registry) const {
  registry.count("router.error_withdraws", error_withdraws);
  registry.count("chaos.attr_corruptions_applied", attr_corruptions);
  registry.count("chaos.treat_as_withdraws", treat_as_withdraws);
  registry.count("chaos.attr_discards", attr_discards);
  registry.count("chaos.corrupt_session_resets", corrupt_session_resets);
  registry.count("chaos.poisoned_blocked", poisoned_blocked);
}

ErrorHandlingSummary collect_error_handling(const bgp::Network& network,
                                            const chaos::ChaosEngine* engine) {
  obs::MetricsRegistry registry = network.collect_metrics();
  if (engine) engine->collect_metrics(registry);
  return ErrorHandlingSummary::from_metrics(registry);
}

std::string error_handling_table_from_metrics(
    const std::vector<std::pair<std::string, obs::MetricsRegistry>>& rows) {
  util::TablePrinter table({"arm", "corruptions", "treat-as-withdraw", "attr-discard",
                            "resets-avoided", "session-resets", "error-withdraws",
                            "poisoned-blocked"});
  for (const auto& [label, registry] : rows) {
    const ErrorHandlingSummary s = ErrorHandlingSummary::from_metrics(registry);
    table.add_row({label, std::to_string(s.attr_corruptions),
                   std::to_string(s.treat_as_withdraws), std::to_string(s.attr_discards),
                   std::to_string(s.resets_avoided()),
                   std::to_string(s.corrupt_session_resets),
                   std::to_string(s.error_withdraws), std::to_string(s.poisoned_blocked)});
  }
  std::ostringstream os;
  table.print(os);
  return os.str();
}

std::string error_handling_table(
    const std::vector<std::pair<std::string, ErrorHandlingSummary>>& rows) {
  std::vector<std::pair<std::string, obs::MetricsRegistry>> snapshots;
  snapshots.reserve(rows.size());
  for (const auto& [label, summary] : rows) {
    obs::MetricsRegistry registry;
    summary.to_metrics(registry);
    snapshots.emplace_back(label, std::move(registry));
  }
  return error_handling_table_from_metrics(snapshots);
}

MoasMonitor::MoasMonitor(std::vector<bgp::Asn> vantages) : vantages_(std::move(vantages)) {
  MOAS_REQUIRE(!vantages_.empty(), "monitor needs at least one vantage");
}

std::string MoasMonitor::summary(const bgp::Network& network) const {
  const obs::MetricsRegistry registry = network.collect_metrics();
  std::ostringstream os;
  os << "network: " << static_cast<std::uint64_t>(registry.gauge("network.routers"))
     << " routers, " << static_cast<std::uint64_t>(registry.gauge("network.links"))
     << " links, " << registry.counter("network.messages_sent") << " messages ("
     << registry.counter("network.messages_dropped") << " dropped)\n";
  os << "updates: " << registry.counter("router.updates_sent") << " sent / "
     << registry.counter("router.updates_received") << " received ("
     << registry.counter("router.announcements_sent") << " announce, "
     << registry.counter("router.withdrawals_sent") << " withdraw)\n";
  os << "decisions: " << registry.counter("router.decisions") << " ("
     << registry.counter("router.best_changes") << " best changes, "
     << registry.counter("router.loops_detected") << " loops, "
     << registry.counter("router.announcements_rejected") << " rejected)\n";
  os << "error handling: " << registry.counter("router.error_withdraws")
     << " error-withdraws, " << registry.counter("router.route_refreshes")
     << " refreshes, " << registry.counter("router.routes_withdrawn")
     << " routes withdrawn\n";
  os << "graceful restart: " << registry.counter("router.stale_retained")
     << " stale retained, " << registry.counter("router.stale_swept")
     << " swept, " << registry.counter("router.eor_sent") << " EoR sent\n";
  return os.str();
}

std::vector<MoasAlarm> MoasMonitor::scan(const bgp::Network& network) const {
  // prefix -> (first list seen, vantage that reported it)
  std::map<net::Prefix, std::pair<AsnSet, bgp::Asn>> reference;
  std::vector<MoasAlarm> out;
  std::map<net::Prefix, bool> already_alarmed;

  for (bgp::Asn vantage : vantages_) {
    const bgp::Router& router = network.router(vantage);
    for (const net::Prefix& prefix : router.loc_rib().prefixes()) {
      const bgp::RibEntry* entry = router.loc_rib().best(prefix);
      MOAS_ENSURE(entry != nullptr, "loc-rib listed a prefix without a best route");
      const AsnSet list = effective_moas_list(entry->route);
      auto [it, fresh] = reference.try_emplace(prefix, list, vantage);
      if (fresh || lists_consistent(it->second.first, list)) continue;
      if (already_alarmed[prefix]) continue;
      already_alarmed[prefix] = true;

      MoasAlarm alarm;
      alarm.at = network.clock().now();
      alarm.observer = vantage;
      alarm.prefix = prefix;
      alarm.reference_list = it->second.first;
      alarm.observed_list = list;
      alarm.offending_origins = entry->route.origin_candidates();
      alarm.cause = MoasAlarm::Cause::ListMismatch;
      out.push_back(std::move(alarm));
    }
  }
  return out;
}

}  // namespace moas::core
