#include "moas/core/monitor.h"

#include <map>

#include "moas/core/moas_list.h"
#include "moas/util/assert.h"

namespace moas::core {

MoasMonitor::MoasMonitor(std::vector<bgp::Asn> vantages) : vantages_(std::move(vantages)) {
  MOAS_REQUIRE(!vantages_.empty(), "monitor needs at least one vantage");
}

std::vector<MoasAlarm> MoasMonitor::scan(const bgp::Network& network) const {
  // prefix -> (first list seen, vantage that reported it)
  std::map<net::Prefix, std::pair<AsnSet, bgp::Asn>> reference;
  std::vector<MoasAlarm> out;
  std::map<net::Prefix, bool> already_alarmed;

  for (bgp::Asn vantage : vantages_) {
    const bgp::Router& router = network.router(vantage);
    for (const net::Prefix& prefix : router.loc_rib().prefixes()) {
      const bgp::RibEntry* entry = router.loc_rib().best(prefix);
      MOAS_ENSURE(entry != nullptr, "loc-rib listed a prefix without a best route");
      const AsnSet list = effective_moas_list(entry->route);
      auto [it, fresh] = reference.try_emplace(prefix, list, vantage);
      if (fresh || lists_consistent(it->second.first, list)) continue;
      if (already_alarmed[prefix]) continue;
      already_alarmed[prefix] = true;

      MoasAlarm alarm;
      alarm.at = network.clock().now();
      alarm.observer = vantage;
      alarm.prefix = prefix;
      alarm.reference_list = it->second.first;
      alarm.observed_list = list;
      alarm.offending_origins = entry->route.origin_candidates();
      alarm.cause = MoasAlarm::Cause::ListMismatch;
      out.push_back(std::move(alarm));
    }
  }
  return out;
}

}  // namespace moas::core
