#include "moas/core/experiment.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>

#include "moas/chaos/engine.h"
#include "moas/chaos/invariants.h"
#include "moas/core/moas_invariants.h"
#include "moas/sim/wave_engine.h"
#include "moas/topo/metrics.h"
#include "moas/topo/route_views.h"
#include "moas/util/assert.h"
#include "moas/util/stats.h"
#include "moas/util/thread_pool.h"

namespace moas::core {

const char* to_string(Deployment deployment) {
  switch (deployment) {
    case Deployment::None: return "normal-bgp";
    case Deployment::Partial: return "partial-moas";
    case Deployment::Full: return "full-moas";
  }
  return "?";
}

const char* to_string(Engine engine) {
  switch (engine) {
    case Engine::Event: return "event";
    case Engine::Wave: return "wave";
  }
  return "?";
}

Experiment::Experiment(const topo::AsGraph& graph, ExperimentConfig config)
    : graph_(&graph), config_(config) {
  MOAS_REQUIRE(graph.node_count() >= 3, "topology too small");
  MOAS_REQUIRE(graph.is_connected(), "experiment topology must be connected");
  MOAS_REQUIRE(!graph.stubs().empty(), "topology has no stub ASes to victimize");
  MOAS_REQUIRE(config.num_origins >= 1 && config.num_origins <= 3,
               "paper evaluates 1-2 origins; 3 supported for ablations");
  MOAS_REQUIRE(config.deployment_fraction >= 0.0 && config.deployment_fraction <= 1.0,
               "deployment fraction must be a probability");
  MOAS_REQUIRE(config.strip_fraction >= 0.0 && config.strip_fraction <= 1.0,
               "strip fraction must be a probability");
  MOAS_REQUIRE(config.resolver_cache_ttl >= 0.0, "resolver cache TTL must be non-negative");
  MOAS_REQUIRE(!config.graceful_restart || config.gr_restart_time > 0.0,
               "graceful restart needs a positive restart time");
  MOAS_REQUIRE(!config.async_fallback_irr || config.async_resolution.has_value(),
               "the IRR fallback source needs async_resolution");
  MOAS_REQUIRE(!config.registry_outage.has_value() || config.async_resolution.has_value(),
               "registry outages act on the async resolution path");
  MOAS_REQUIRE(!config.async_resolution.has_value() || config.resolver != ResolverKind::None,
               "async resolution needs a backend resolver");
  if (config.engine == Engine::Wave) {
    // The wave engine has no clock: every event-time knob must be loudly
    // absent rather than silently ignored.
    MOAS_REQUIRE(config.mrai == 0.0,
                 "wave engine: MRAI pacing is an event-time concept — set mrai = 0");
    MOAS_REQUIRE(!config.prefer_established,
                 "wave engine: route-age preference needs arrival times — set "
                 "prefer_established = false (ties break by lowest neighbor ASN)");
    MOAS_REQUIRE(!config.churn.has_value(),
                 "wave engine: background churn schedules replay on the event clock");
    MOAS_REQUIRE(!config.async_resolution.has_value(),
                 "wave engine: asynchronous resolution is clock-driven — use a "
                 "synchronous resolver");
    MOAS_REQUIRE(!config.graceful_restart,
                 "wave engine: graceful restart needs restart timers");
    MOAS_REQUIRE(!config.revised_error_handling,
                 "wave engine: error handling acts on wire-level faults the wave "
                 "model does not carry");
    MOAS_REQUIRE(config.trace_level == obs::TraceLevel::Off && !config.keep_trace,
                 "wave engine: trace events are timestamped — latency metrics are "
                 "meaningless without a clock");
    MOAS_REQUIRE(!config.check_invariants,
                 "wave engine: the invariant checker audits a bgp::Network");
  }
}

bgp::AsnSet Experiment::draw_origins(util::Rng& rng) const {
  const std::vector<bgp::Asn> stubs = graph_->stubs();
  MOAS_REQUIRE(stubs.size() >= config_.num_origins, "not enough stubs for origins");
  bgp::AsnSet origins;
  for (std::size_t i : rng.sample_indices(stubs.size(), config_.num_origins)) {
    origins.insert(stubs[i]);
  }
  return origins;
}

bgp::AsnSet Experiment::draw_attackers(std::size_t count, const bgp::AsnSet& origins,
                                       util::Rng& rng) const {
  std::vector<bgp::Asn> pool;
  switch (config_.placement) {
    case AttackerPlacement::Anywhere: pool = graph_->nodes(); break;
    case AttackerPlacement::StubsOnly: pool = graph_->stubs(); break;
    case AttackerPlacement::TransitOnly: pool = graph_->transits(); break;
  }
  std::erase_if(pool, [&](bgp::Asn asn) { return origins.contains(asn); });
  MOAS_REQUIRE(count <= pool.size(), "not enough candidate attackers");
  bgp::AsnSet attackers;
  for (std::size_t i : rng.sample_indices(pool.size(), count)) attackers.insert(pool[i]);
  return attackers;
}

RunResult Experiment::run_once(std::size_t num_attackers, util::Rng& rng) const {
  const bgp::AsnSet origins = draw_origins(rng);
  const bgp::AsnSet attackers = draw_attackers(num_attackers, origins, rng);
  return run_with(origins, attackers, rng.next());
}

RunResult Experiment::run_with(const bgp::AsnSet& origins, const bgp::AsnSet& attackers,
                               std::uint64_t seed) const {
  MOAS_REQUIRE(!origins.empty(), "need at least one valid origin");
  for (bgp::Asn o : origins) {
    MOAS_REQUIRE(graph_->has_node(o), "origin not in topology");
    MOAS_REQUIRE(!attackers.contains(o), "an origin cannot also be an attacker");
  }
  if (config_.engine == Engine::Wave) return run_wave(origins, attackers, seed);
  return run_event(origins, attackers, seed);
}

RunResult Experiment::run_event(const bgp::AsnSet& origins, const bgp::AsnSet& attackers,
                                std::uint64_t seed) const {
  util::Rng rng(seed);

  const net::Prefix victim = topo::prefix_for_asn(*origins.begin());

  // Ground truth / registry databases.
  auto truth = std::make_shared<PrefixOriginDb>();
  truth->set(victim, origins);
  std::shared_ptr<OriginResolver> resolver;
  switch (config_.resolver) {
    case ResolverKind::Oracle:
      resolver = std::make_shared<OracleResolver>(truth);
      break;
    case ResolverKind::Dns: {
      DnsResolver::Config dns;
      dns.unavailability = config_.dns_unavailability;
      dns.forgery = config_.dns_forgery;
      if (!attackers.empty()) dns.forged_answer = attackers;
      dns.seed = rng.next();
      resolver = std::make_shared<DnsResolver>(truth, dns);
      break;
    }
    case ResolverKind::Irr: {
      auto stale = std::make_shared<PrefixOriginDb>();
      if (!config_.irr_stale_origins.empty()) stale->set(victim, config_.irr_stale_origins);
      IrrResolver::Config irr;
      irr.staleness = config_.irr_staleness;
      irr.seed = rng.next();
      resolver = std::make_shared<IrrResolver>(truth, stale, irr);
      break;
    }
    case ResolverKind::None:
      resolver = nullptr;  // alarm-only detectors
      break;
  }

  // Build the network.
  bgp::Network::Config net_config;
  net_config.mode = config_.policy;
  net_config.link_delay = config_.link_delay;
  net_config.jitter = config_.jitter;
  net_config.graceful_restart = config_.graceful_restart;
  net_config.gr_restart_time = config_.gr_restart_time;
  net_config.revised_error_handling = config_.revised_error_handling;
  net_config.seed = rng.next();
  bgp::Network network(net_config);

  // Per-run trace bus, stamped from the run's own clock. Runs are
  // self-contained and single-threaded (the PR 4 contract), so one bus per
  // run is the "per-thread buffer": the sweep harness serializes buses in
  // plan order and the merged stream is bit-identical for any --jobs.
  obs::TraceBus bus(config_.trace_level, &network.clock());
  if (config_.trace_level != obs::TraceLevel::Off) network.set_trace(&bus);

  const std::vector<bgp::Asn> all_ases = graph_->nodes();
  for (bgp::Asn asn : all_ases) network.add_router(asn);
  for (const auto& edge : graph_->edges()) {
    network.connect(edge.a, edge.b, edge.rel_of_b);
  }

  // Churn-aware resolver cache: under session churn the same prefix alarms
  // repeatedly, and without a cache every alarm is a fresh registry lookup.
  // `backend` keeps a handle on the real resolver so the run can report the
  // registry load the cache absorbed.
  std::shared_ptr<OriginResolver> backend = resolver;
  std::shared_ptr<CachingResolver> cache;
  if (resolver && config_.resolver_cache_ttl > 0.0) {
    CachingResolver::Config cache_config;
    cache_config.ttl = config_.resolver_cache_ttl;
    cache_config.negative_ttl = std::min(config_.resolver_cache_ttl, 5.0);
    cache = std::make_shared<CachingResolver>(
        backend, [&network] { return network.clock().now(); }, cache_config);
    resolver = cache;
  }

  // Asynchronous fault-tolerant resolution: the (possibly cached) primary
  // becomes source 0 of the fallback chain, optionally backed by an IRR
  // mirror, with a seeded registry-outage schedule replayed against both.
  // Declared after `network` so in-flight requests die before the clock.
  std::shared_ptr<AsyncResolver> async;
  std::shared_ptr<chaos::RegistryOutageSchedule> outage_schedule;
  if (config_.async_resolution && resolver) {
    AsyncResolver::Config async_config = *config_.async_resolution;
    async_config.seed ^= rng.next();  // one run seed reproduces latency draws
    async = std::make_shared<AsyncResolver>(network.clock(), async_config);
    async->add_source(resolver);
    if (config_.async_fallback_irr) {
      auto stale = std::make_shared<PrefixOriginDb>();
      if (!config_.irr_stale_origins.empty()) stale->set(victim, config_.irr_stale_origins);
      IrrResolver::Config irr;
      irr.staleness = config_.irr_staleness;
      irr.seed = rng.next();
      async->add_source(std::make_shared<IrrResolver>(truth, stale, irr));
    }
    if (config_.registry_outage) {
      chaos::RegistryOutageConfig outage = *config_.registry_outage;
      outage.seed ^= seed;  // same mixing rule as churn
      outage_schedule = std::make_shared<chaos::RegistryOutageSchedule>(
          chaos::compile_registry_outages(outage, async->source_count()));
      async->set_outage_schedule(outage_schedule);
    }
    if (config_.trace_level != obs::TraceLevel::Off) async->set_trace(&bus);
  }

  // Detector deployment. The paper's partial deployment picks the capable
  // half among *all* nodes; capability on a compromised node is moot, so we
  // simply never give attackers a detector.
  auto alarms = std::make_shared<AlarmLog>();
  if (config_.trace_level != obs::TraceLevel::Off) alarms->set_trace(&bus);
  std::vector<std::shared_ptr<MoasDetector>> detectors;
  bgp::AsnSet capable;
  if (config_.deployment == Deployment::Full) {
    for (bgp::Asn asn : all_ases) capable.insert(asn);
  } else if (config_.deployment == Deployment::Partial) {
    const auto want = static_cast<std::size_t>(
        std::lround(config_.deployment_fraction * static_cast<double>(all_ases.size())));
    for (std::size_t i : rng.sample_indices(all_ases.size(), want)) {
      capable.insert(all_ases[i]);
    }
  }
  for (bgp::Asn asn : capable) {
    if (attackers.contains(asn)) continue;
    auto detector = std::make_shared<MoasDetector>(alarms, resolver);
    if (async) detector->set_async_resolver(async);
    if (config_.trace_level != obs::TraceLevel::Off) detector->set_trace(&bus);
    network.router(asn).set_validator(detector);
    detectors.push_back(std::move(detector));
  }

  // Community-stripping routers (Section 4.3): random non-origin routers
  // drop the optional transitive attribute on re-advertisement.
  if (config_.strip_fraction > 0.0) {
    std::vector<bgp::Asn> pool = all_ases;
    std::erase_if(pool, [&](bgp::Asn asn) { return origins.contains(asn); });
    const auto want = static_cast<std::size_t>(
        std::lround(config_.strip_fraction * static_cast<double>(pool.size())));
    for (std::size_t i : rng.sample_indices(pool.size(), want)) {
      network.router(pool[i]).set_strip_communities(true);
    }
  }

  if (config_.mrai > 0.0) {
    for (bgp::Asn asn : all_ases) network.router(asn).set_mrai(config_.mrai);
  }
  if (!config_.prefer_established) {
    // Equal-key tie contests then resolve by lowest neighbor ASN instead of
    // route age — the timing-independent mode the wave engine matches.
    for (bgp::Asn asn : all_ases) network.router(asn).set_prefer_established(false);
  }

  // Background churn: compile the seeded fault schedule for this topology
  // and arm it on the shared clock, so faults interleave with the workload.
  // The engine clears its message tap on destruction — it must die before
  // `network`, hence the declaration after it.
  std::unique_ptr<chaos::ChaosEngine> engine;
  if (config_.churn) {
    chaos::ScheduleConfig churn = *config_.churn;
    churn.seed ^= seed;  // one run seed reproduces workload and faults alike
    engine = std::make_unique<chaos::ChaosEngine>(
        network, chaos::compile_schedule(churn, network.links(), network.asns()));
    engine->arm();
  }

  // Origination. Valid origins attach the MOAS list when the prefix really
  // is multi-origin; a single-origin prefix carries no list (the paper:
  // "Routes that originate from a single AS need not attach a MOAS list").
  bgp::PathAttributes origin_attrs;  // width-split MOAS list carrier
  if (origins.size() > 1) attach_moas_list(origin_attrs, origins);
  for (bgp::Asn origin : origins) {
    const double at = rng.uniform01() * 0.5;
    network.clock().schedule_after(at, [&network, origin, victim, origin_attrs] {
      network.router(origin).originate(victim, origin_attrs.communities,
                                       origin_attrs.large_communities);
    });
  }

  RunResult result;
  if (config_.converge_before_attack) {
    // Phase 1: the legitimate announcements converge (steady state).
    const auto phase_start = std::chrono::steady_clock::now();
    result.quiesced = network.run_to_quiescence(config_.max_events);
    result.propagation_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - phase_start)
            .count();
    MOAS_ENSURE(result.quiesced, "valid-route convergence failed within the event cap");
  }

  // Phase 2 (or a single racing phase): the fault/attack is injected. In
  // the racing model the attacker is compromised from t = 0 — its
  // suppression filter is armed before any valid announcement can transit
  // it (see install_suppression) — and only the false origination races the
  // valid ones. Under converge_before_attack the attacker instead behaves
  // honestly through phase 1 (the steady state includes it) and turns at
  // injection time.
  for (bgp::Asn attacker : attackers) {
    AttackPlan plan;
    plan.attacker = attacker;
    plan.target = victim;
    plan.valid_origins = origins;
    plan.strategy = config_.strategy;
    if (!config_.converge_before_attack) {
      install_suppression(network.router(attacker), plan);
    }
    const double at = rng.uniform01() * 0.5;
    // Injection time = earliest false origination on the run's clock; the
    // latency metrics below measure from here.
    const sim::Time inject_at = network.clock().now() + at;
    if (result.attack_injected_at < 0.0 || inject_at < result.attack_injected_at) {
      result.attack_injected_at = inject_at;
    }
    network.clock().schedule_after(at, [&network, plan] {
      if (obs::trace_wants(network.trace(), obs::TraceLevel::Summary)) {
        network.trace()->emit(
            obs::TraceEvent(obs::EventKind::AttackInjected, plan.attacker)
                .with_prefix(plan.target));
      }
      launch_attack(network, plan);
    });
  }
  const auto drain_start = std::chrono::steady_clock::now();
  result.quiesced = network.run_to_quiescence(config_.max_events);
  result.propagation_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - drain_start)
          .count();
  MOAS_ENSURE(result.quiesced, "simulation failed to quiesce within the event cap");

  // Scoring. Under SubPrefixHijack the attacker wins a node whenever the
  // more-specific route is present (longest-prefix match beats the valid
  // covering route).
  net::Prefix scored_prefix = victim;
  if (config_.strategy == AttackerStrategy::SubPrefixHijack && !attackers.empty()) {
    scored_prefix = victim.children().first;
  }

  result.total_ases = all_ases.size();
  result.attackers = attackers.size();
  result.origin_set = origins;
  result.attacker_set = attackers;
  for (bgp::Asn asn : all_ases) {
    if (attackers.contains(asn)) continue;
    ++result.population;
    const bgp::Router& router = network.router(asn);
    const auto hijacked_origin = router.best_origin(scored_prefix);
    if (hijacked_origin && attackers.contains(*hijacked_origin)) {
      ++result.adopted_false;
      continue;
    }
    const auto valid_origin = router.best_origin(victim);
    if (!valid_origin) {
      ++result.no_route;
    } else if (origins.contains(*valid_origin)) {
      ++result.adopted_valid;
    } else if (attackers.contains(*valid_origin)) {
      ++result.adopted_false;
    }
  }

  // Metrics snapshot. The registry is the source of truth: every scalar
  // counter RunResult reports below is read back out of it, so a drifting
  // name or a missed collect shows up in the run results, not just in an
  // exporter nobody looks at.
  result.metrics = network.collect_metrics();
  if (engine) engine->collect_metrics(result.metrics);
  for (const auto& detector : detectors) detector->collect_metrics(result.metrics);
  // Resolver counters ("resolver.*") come straight from the components: the
  // async resolver collects its whole fallback chain (each source's backend
  // included); otherwise the possibly-cached synchronous resolver reports.
  if (async) {
    async->collect_metrics(result.metrics);
    result.outage_log = outage_schedule ? outage_schedule->to_string() : std::string();
  } else if (resolver) {
    resolver->collect_metrics(result.metrics);
  }

  if (engine) {
    result.fault_events = engine->schedule().events.size();
    const obs::MetricsRegistry& m = result.metrics;
    result.message_faults =
        m.counter("chaos.msgs_dropped") + m.counter("chaos.msgs_duplicated") +
        m.counter("chaos.msgs_reordered") + m.counter("chaos.corruptions_detected") +
        m.counter("chaos.corruptions_undetected") + m.counter("chaos.corruptions_harmless") +
        m.counter("chaos.attr_corruptions_applied");
    result.attr_corruptions = m.counter("chaos.attr_corruptions_applied");
    result.corrupt_session_resets = m.counter("chaos.corrupt_session_resets");
    result.treat_as_withdraws = m.counter("chaos.treat_as_withdraws");
    result.attr_discards = m.counter("chaos.attr_discards");
    result.poisoned_blocked = m.counter("chaos.poisoned_blocked");
    result.fault_log = engine->log_text();
  }
  if (config_.check_invariants) {
    chaos::NetworkInvariantChecker checker;
    register_moas_invariants(checker, alarms);
    if (engine) {
      chaos::register_corruption_invariants(checker, *engine);
      for (const auto& [from, to] : engine->dirty_links()) {
        checker.exclude_direction(from, to);
      }
    }
    for (const auto& violation : checker.check(network)) {
      result.invariant_report.push_back(violation.to_string());
    }
  }

  const double first_alarm_at = account_alarms(result, *alarms, attackers);
  if (first_alarm_at >= 0.0 && result.attack_injected_at >= 0.0) {
    result.first_alarm_latency = std::max(0.0, first_alarm_at - result.attack_injected_at);
  }

  // Eviction latency: replay the route-change stream and track the set of
  // non-attacker routers whose best route for the scored prefix points at an
  // attacker (RoutePreferred carries the new best origin in value2; any
  // other change at the prefix clears the router from the set). The latency
  // is from injection to the moment that set last became empty.
  if (obs::kTraceCompiledIn && result.attack_injected_at >= 0.0 &&
      bus.wants(obs::TraceLevel::Summary)) {
    bgp::AsnSet on_false_route;
    double last_cleared = -1.0;
    bool ever_adopted = false;
    for (const obs::TraceEvent& event : bus.events()) {
      if (event.kind != obs::EventKind::RoutePreferred &&
          event.kind != obs::EventKind::RouteDepreferred) {
        continue;
      }
      if (!event.has_prefix || !(event.prefix == scored_prefix)) continue;
      if (attackers.contains(event.actor)) continue;
      const bool now_false = event.kind == obs::EventKind::RoutePreferred &&
                             event.value2 > 0 &&
                             attackers.contains(static_cast<bgp::Asn>(event.value2));
      if (now_false) {
        ever_adopted = true;
        on_false_route.insert(event.actor);
      } else if (on_false_route.erase(event.actor) > 0 && on_false_route.empty()) {
        last_cleared = event.at;
      }
    }
    if (!ever_adopted) {
      result.eviction_latency = 0.0;  // the false route never took hold
    } else if (!on_false_route.empty()) {
      result.false_route_stuck = true;  // still installed at quiescence
    } else {
      result.eviction_latency = std::max(0.0, last_cleared - result.attack_injected_at);
    }
  }

  result.rejections = static_cast<std::size_t>(result.metrics.counter("detector.rejections"));
  result.messages = result.metrics.counter("network.messages_sent");
  result.withdrawals = result.metrics.counter("router.withdrawals_sent");
  result.announcements = result.metrics.counter("router.announcements_sent");
  result.stale_retained = result.metrics.counter("router.stale_retained");
  result.stale_swept = result.metrics.counter("router.stale_swept");
  result.routes_withdrawn = result.metrics.counter("router.routes_withdrawn");
  result.error_withdraws = result.metrics.counter("router.error_withdraws");
  // The registry is the source of truth for resolver load too: the scalars
  // are read back out of it (and the names exist even for resolver-less
  // runs, so manifest consumers can rely on them unconditionally).
  result.metrics.count("resolver.queries", 0);
  result.metrics.count("resolver.cache_hits", 0);
  result.resolver_queries = result.metrics.counter("resolver.queries");
  result.resolver_cache_hits = result.metrics.counter("resolver.cache_hits") +
                               result.metrics.counter("resolver.cache_negative_hits");
  if (!attackers.empty()) {
    result.structural_cutoff = topo::fraction_cut_off(*graph_, origins, attackers);
  }
  if (config_.keep_final_ribs) {
    for (bgp::Asn asn : all_ases) {
      const bgp::LocRib& rib = network.router(asn).loc_rib();
      for (const net::Prefix& prefix : rib.prefixes()) {
        result.final_ribs.push_back({asn, *rib.best(prefix)});
      }
    }
  }
  if (config_.keep_trace) result.trace = bus.take();
  return result;
}

double Experiment::account_alarms(RunResult& result, const AlarmLog& alarms,
                                  const bgp::AsnSet& attackers) const {
  result.alarms = alarms.size();
  result.alarms_pending = alarms.count_state(MoasAlarm::State::Pending);
  result.alarms_resolved = alarms.count_state(MoasAlarm::State::Resolved);
  result.alarms_expired = alarms.count_state(MoasAlarm::State::Expired);
  // Settle latency (alarm raised -> terminal state): instantaneous on the
  // synchronous path, and exactly the resolution latency the degraded mode
  // added on the async path — the bounded-inflation gate reads this.
  {
    auto& settle =
        result.metrics.histogram("detector.alarm_settle_latency", kAlarmLatencySpec);
    for (const MoasAlarm& alarm : alarms.alarms()) {
      if (alarm.settled_at >= 0.0) settle.add(alarm.settled_at - alarm.at);
    }
  }
  double first_alarm_at = -1.0;
  for (const MoasAlarm& alarm : alarms.alarms()) {
    const bool implicates_attacker =
        std::any_of(attackers.begin(), attackers.end(), [&](bgp::Asn a) {
          return alarm.offending_origins.contains(a) || alarm.observed_list.contains(a) ||
                 alarm.reference_list.contains(a);
        });
    if (!implicates_attacker) {
      ++result.false_alarms;
    } else if (first_alarm_at < 0.0 || alarm.at < first_alarm_at) {
      first_alarm_at = alarm.at;
    }
  }
  return first_alarm_at;
}

RunResult Experiment::run_wave(const bgp::AsnSet& origins, const bgp::AsnSet& attackers,
                               std::uint64_t seed) const {
  util::Rng rng(seed);

  const net::Prefix victim = topo::prefix_for_asn(*origins.begin());

  // Ground truth / registry databases — the same construction (and the same
  // rng draws) as run_event, so one PlannedRun seed resolves to the same
  // resolver behavior under either engine.
  auto truth = std::make_shared<PrefixOriginDb>();
  truth->set(victim, origins);
  std::shared_ptr<OriginResolver> resolver;
  switch (config_.resolver) {
    case ResolverKind::Oracle:
      resolver = std::make_shared<OracleResolver>(truth);
      break;
    case ResolverKind::Dns: {
      DnsResolver::Config dns;
      dns.unavailability = config_.dns_unavailability;
      dns.forgery = config_.dns_forgery;
      if (!attackers.empty()) dns.forged_answer = attackers;
      dns.seed = rng.next();
      resolver = std::make_shared<DnsResolver>(truth, dns);
      break;
    }
    case ResolverKind::Irr: {
      auto stale = std::make_shared<PrefixOriginDb>();
      if (!config_.irr_stale_origins.empty()) stale->set(victim, config_.irr_stale_origins);
      IrrResolver::Config irr;
      irr.staleness = config_.irr_staleness;
      irr.seed = rng.next();
      resolver = std::make_shared<IrrResolver>(truth, stale, irr);
      break;
    }
    case ResolverKind::None:
      resolver = nullptr;  // alarm-only detectors
      break;
  }

  // run_event draws the network seed here; burn the same draw so the
  // deployment and stripping samples below land on the same stream offsets
  // — the differential gate compares the two engines run-for-run, and that
  // only means anything if a run's capable set matches across engines.
  (void)rng.next();

  sim::WaveEngine::Config wave_config;
  wave_config.mode = config_.policy;
  sim::WaveEngine wave(*graph_, wave_config);

  // Resolver cache on a frozen clock: entries never expire, which is the
  // right model for a timeless run — within one run the registry answer for
  // a prefix is fixed anyway.
  std::shared_ptr<OriginResolver> backend = resolver;
  std::shared_ptr<CachingResolver> cache;
  if (resolver && config_.resolver_cache_ttl > 0.0) {
    CachingResolver::Config cache_config;
    cache_config.ttl = config_.resolver_cache_ttl;
    cache_config.negative_ttl = std::min(config_.resolver_cache_ttl, 5.0);
    cache = std::make_shared<CachingResolver>(backend, [] { return 0.0; }, cache_config);
    resolver = cache;
  }

  const std::vector<bgp::Asn> all_ases = graph_->nodes();

  // Detector deployment — identical sampling (and rng draws) to run_event.
  auto alarms = std::make_shared<AlarmLog>();
  std::vector<std::shared_ptr<MoasDetector>> detectors;
  bgp::AsnSet capable;
  if (config_.deployment == Deployment::Full) {
    for (bgp::Asn asn : all_ases) capable.insert(asn);
  } else if (config_.deployment == Deployment::Partial) {
    const auto want = static_cast<std::size_t>(
        std::lround(config_.deployment_fraction * static_cast<double>(all_ases.size())));
    for (std::size_t i : rng.sample_indices(all_ases.size(), want)) {
      capable.insert(all_ases[i]);
    }
  }
  for (bgp::Asn asn : capable) {
    if (attackers.contains(asn)) continue;
    auto detector = std::make_shared<MoasDetector>(alarms, resolver);
    wave.router(asn).set_validator(detector);
    detectors.push_back(std::move(detector));
  }

  if (config_.strip_fraction > 0.0) {
    std::vector<bgp::Asn> pool = all_ases;
    std::erase_if(pool, [&](bgp::Asn asn) { return origins.contains(asn); });
    const auto want = static_cast<std::size_t>(
        std::lround(config_.strip_fraction * static_cast<double>(pool.size())));
    for (std::size_t i : rng.sample_indices(pool.size(), want)) {
      wave.router(pool[i]).set_strip_communities(true);
    }
  }

  // Origination. No clock, so no scheduling jitter: valid originations are
  // seeded, then (racing mode) the attacks, and the sweeps run everything
  // to the fixpoint together. Under converge_before_attack the valid
  // routes reach their fixpoint first and the attack hits the converged
  // state incrementally — the wave analog of the two-phase event run.
  bgp::PathAttributes origin_attrs;  // width-split MOAS list carrier
  if (origins.size() > 1) attach_moas_list(origin_attrs, origins);
  for (bgp::Asn origin : origins) {
    wave.router(origin).originate(victim, origin_attrs.communities,
                                  origin_attrs.large_communities);
  }

  RunResult result;
  if (config_.converge_before_attack) {
    const auto phase_start = std::chrono::steady_clock::now();
    wave.propagate();
    result.propagation_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - phase_start)
            .count();
  }

  for (bgp::Asn attacker : attackers) {
    AttackPlan plan;
    plan.attacker = attacker;
    plan.target = victim;
    plan.valid_origins = origins;
    plan.strategy = config_.strategy;
    launch_attack(wave.router(attacker), plan);
  }
  const auto sweep_start = std::chrono::steady_clock::now();
  wave.propagate();
  result.propagation_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_start)
          .count();
  result.quiesced = true;  // propagate() returns only at the fixpoint

  // Scoring — identical to run_event.
  net::Prefix scored_prefix = victim;
  if (config_.strategy == AttackerStrategy::SubPrefixHijack && !attackers.empty()) {
    scored_prefix = victim.children().first;
  }
  result.total_ases = all_ases.size();
  result.attackers = attackers.size();
  result.origin_set = origins;
  result.attacker_set = attackers;
  for (bgp::Asn asn : all_ases) {
    if (attackers.contains(asn)) continue;
    ++result.population;
    const bgp::Router& router = wave.router(asn);
    const auto hijacked_origin = router.best_origin(scored_prefix);
    if (hijacked_origin && attackers.contains(*hijacked_origin)) {
      ++result.adopted_false;
      continue;
    }
    const auto valid_origin = router.best_origin(victim);
    if (!valid_origin) {
      ++result.no_route;
    } else if (origins.contains(*valid_origin)) {
      ++result.adopted_valid;
    } else if (attackers.contains(*valid_origin)) {
      ++result.adopted_false;
    }
  }

  wave.collect_metrics(result.metrics);
  for (const auto& detector : detectors) detector->collect_metrics(result.metrics);
  if (resolver) resolver->collect_metrics(result.metrics);

  account_alarms(result, *alarms, attackers);
  // attack_injected_at / first_alarm_latency / eviction_latency stay -1:
  // a timeless engine has no latencies to report.

  result.rejections = static_cast<std::size_t>(result.metrics.counter("detector.rejections"));
  result.messages = result.metrics.counter("network.messages_sent");
  result.withdrawals = result.metrics.counter("router.withdrawals_sent");
  result.announcements = result.metrics.counter("router.announcements_sent");
  result.stale_retained = result.metrics.counter("router.stale_retained");
  result.stale_swept = result.metrics.counter("router.stale_swept");
  result.routes_withdrawn = result.metrics.counter("router.routes_withdrawn");
  result.error_withdraws = result.metrics.counter("router.error_withdraws");
  result.metrics.count("resolver.queries", 0);
  result.metrics.count("resolver.cache_hits", 0);
  result.resolver_queries = result.metrics.counter("resolver.queries");
  result.resolver_cache_hits = result.metrics.counter("resolver.cache_hits") +
                               result.metrics.counter("resolver.cache_negative_hits");
  if (!attackers.empty()) {
    result.structural_cutoff = topo::fraction_cut_off(*graph_, origins, attackers);
  }
  if (config_.keep_final_ribs) {
    for (bgp::Asn asn : all_ases) {
      const bgp::LocRib& rib = wave.router(asn).loc_rib();
      for (const net::Prefix& prefix : rib.prefixes()) {
        result.final_ribs.push_back({asn, *rib.best(prefix)});
      }
    }
  }
  return result;
}

SweepPlan Experiment::plan_sweep(const std::vector<double>& attacker_fractions,
                                 std::size_t origin_sets, std::size_t attacker_sets,
                                 util::Rng& rng) const {
  MOAS_REQUIRE(origin_sets > 0 && attacker_sets > 0,
               "empty run budget: origin_sets and attacker_sets must both be >= 1");
  SweepPlan plan;
  plan.attacker_fractions = attacker_fractions;
  plan.origin_sets = origin_sets;
  plan.attacker_sets = attacker_sets;
  plan.runs.reserve(attacker_fractions.size() * origin_sets * attacker_sets);
  for (std::size_t p = 0; p < attacker_fractions.size(); ++p) {
    const double fraction = attacker_fractions[p];
    MOAS_REQUIRE(fraction >= 0.0 && fraction < 1.0, "attacker fraction must be in [0, 1)");
    std::size_t num_attackers = static_cast<std::size_t>(
        std::lround(fraction * static_cast<double>(graph_->node_count())));
    if (fraction > 0.0 && num_attackers == 0) num_attackers = 1;
    for (std::size_t i = 0; i < origin_sets; ++i) {
      const bgp::AsnSet origins = draw_origins(rng);
      for (std::size_t j = 0; j < attacker_sets; ++j) {
        PlannedRun run;
        run.point = p;
        run.origins = origins;
        run.attackers = draw_attackers(num_attackers, origins, rng);
        run.seed = rng.next();
        plan.runs.push_back(std::move(run));
      }
    }
  }
  return plan;
}

std::vector<RunResult> Experiment::execute_plan(const SweepPlan& plan,
                                                util::ThreadPool& pool) const {
  std::vector<RunResult> results(plan.runs.size());
  pool.parallel_for(plan.runs.size(), [&](std::size_t i) {
    const PlannedRun& run = plan.runs[i];
    results[i] = run_with(run.origins, run.attackers, run.seed);
  });
  return results;
}

std::vector<SweepPoint> Experiment::reduce_plan(const SweepPlan& plan,
                                                const std::vector<RunResult>& results) const {
  MOAS_REQUIRE(results.size() == plan.runs.size(),
               "result count does not match the plan's run count");
  struct PointAccumulators {
    util::Accumulator adopted;
    util::Accumulator affected;
    util::Accumulator no_route;
    util::Accumulator alarms;
    util::Accumulator false_alarms;
    util::Accumulator cutoff;
    obs::MetricsRegistry metrics;
    std::size_t stuck = 0;
  };
  std::vector<PointAccumulators> accumulators(plan.attacker_fractions.size());
  // merge() of a single-sample accumulator takes the exact add() path, so
  // this plan-order reduction is bit-identical to the historical serial
  // loop no matter what order the runs completed in.
  const auto take = [](util::Accumulator& into, double x) {
    util::Accumulator sample;
    sample.add(x);
    into.merge(sample);
  };
  for (std::size_t i = 0; i < plan.runs.size(); ++i) {
    PointAccumulators& acc = accumulators[plan.runs[i].point];
    const RunResult& run = results[i];
    take(acc.adopted, run.adopted_false_fraction());
    take(acc.affected, run.affected_fraction());
    take(acc.no_route, run.no_route_fraction());
    take(acc.alarms, static_cast<double>(run.alarms));
    take(acc.false_alarms, static_cast<double>(run.false_alarms));
    take(acc.cutoff, run.structural_cutoff);
    // Counters sum, histograms merge bucket-wise — both order-independent,
    // but this loop walks plan order anyway so gauges (last-writer-wins)
    // stay deterministic across --jobs too.
    acc.metrics.merge(run.metrics);
    if (run.first_alarm_latency >= 0.0) {
      acc.metrics.histogram("detector.first_alarm_latency", kAlarmLatencySpec)
          .add(run.first_alarm_latency);
    }
    if (run.eviction_latency >= 0.0) {
      acc.metrics.histogram("detector.eviction_latency", kAlarmLatencySpec)
          .add(run.eviction_latency);
    }
    if (run.false_route_stuck) ++acc.stuck;
  }
  std::vector<SweepPoint> points;
  points.reserve(plan.attacker_fractions.size());
  for (std::size_t p = 0; p < plan.attacker_fractions.size(); ++p) {
    PointAccumulators& acc = accumulators[p];
    SweepPoint point;
    point.attacker_fraction = plan.attacker_fractions[p];
    point.runs = acc.adopted.count();
    point.mean_adopted_false = acc.adopted.mean();
    point.stddev_adopted_false = acc.adopted.stddev();
    point.mean_affected = acc.affected.mean();
    point.mean_no_route = acc.no_route.mean();
    point.mean_alarms = acc.alarms.mean();
    point.mean_false_alarms = acc.false_alarms.mean();
    point.mean_structural_cutoff = acc.cutoff.mean();
    point.runs_false_route_stuck = acc.stuck;
    // Make sure both latency histograms exist even when no run produced a
    // sample — consumers can then rely on the names unconditionally.
    acc.metrics.histogram("detector.first_alarm_latency", kAlarmLatencySpec);
    acc.metrics.histogram("detector.eviction_latency", kAlarmLatencySpec);
    point.metrics = std::move(acc.metrics);
    points.push_back(std::move(point));
  }
  return points;
}

SweepPoint Experiment::run_point(double attacker_fraction, std::size_t origin_sets,
                                 std::size_t attacker_sets, util::Rng& rng,
                                 std::size_t jobs) const {
  return sweep({attacker_fraction}, origin_sets, attacker_sets, rng, jobs).front();
}

std::vector<SweepPoint> Experiment::sweep(const std::vector<double>& attacker_fractions,
                                          std::size_t origin_sets, std::size_t attacker_sets,
                                          util::Rng& rng, std::size_t jobs) const {
  const SweepPlan plan = plan_sweep(attacker_fractions, origin_sets, attacker_sets, rng);
  util::ThreadPool pool(jobs);
  const std::vector<RunResult> results = execute_plan(plan, pool);
  return reduce_plan(plan, results);
}

}  // namespace moas::core
