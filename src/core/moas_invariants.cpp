#include "moas/core/moas_invariants.h"

#include <algorithm>

#include "moas/core/moas_list.h"

namespace moas::core {

void register_moas_invariants(chaos::NetworkInvariantChecker& checker,
                              std::shared_ptr<const AlarmLog> alarms) {
  using Violation = chaos::NetworkInvariantChecker::Violation;

  if (alarms) {
    checker.add_custom([alarms](const bgp::Network&, std::vector<Violation>& out) {
      const auto& log = alarms->alarms();
      for (std::size_t i = 1; i < log.size(); ++i) {
        if (log[i].at < log[i - 1].at) {
          out.push_back({"alarm-log-monotone",
                         "alarm " + std::to_string(i) + " at t=" +
                             std::to_string(log[i].at) + " precedes its predecessor at t=" +
                             std::to_string(log[i - 1].at)});
        }
      }
      // Zero lost alarms: at quiescence (which is when the checker runs)
      // every investigation has completed, so nothing may still be Pending —
      // a Pending alarm here was silently dropped by the resolution path.
      for (std::size_t i = 0; i < log.size(); ++i) {
        if (log[i].state == MoasAlarm::State::Pending) {
          out.push_back({"no-pending-alarms",
                         "alarm " + std::to_string(i) + " for " +
                             log[i].prefix.to_string() +
                             " is still pending at quiescence"});
        }
      }
    });
  }

  checker.add_custom([](const bgp::Network& network, std::vector<Violation>& out) {
    for (bgp::Asn asn : network.asns()) {
      const bgp::Router& router = network.router(asn);
      for (const net::Prefix& prefix : router.loc_rib().prefixes()) {
        const bgp::RibEntry* entry = router.loc_rib().best(prefix);
        const bgp::Route& route = entry->route;
        if (!has_explicit_moas_list(route)) continue;
        const bgp::AsnSet list = effective_moas_list(route);
        const bgp::AsnSet origins = route.origin_candidates();
        const bool consistent = std::all_of(origins.begin(), origins.end(),
                                            [&](bgp::Asn o) { return list.contains(o); });
        if (!consistent) {
          out.push_back({"moas-list-self-consistent",
                         std::to_string(asn) + " installed " + route.to_string() +
                             " whose explicit MOAS list omits its own origin"});
        }
      }
    }
  });
}

}  // namespace moas::core
