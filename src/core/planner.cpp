#include "moas/core/planner.h"

#include <algorithm>

#include "moas/util/assert.h"

namespace moas::core {

const char* to_string(DeploymentStrategy strategy) {
  switch (strategy) {
    case DeploymentStrategy::Random: return "random";
    case DeploymentStrategy::DegreeRanked: return "degree-ranked";
    case DeploymentStrategy::GreedyCoverage: return "greedy-coverage";
  }
  return "?";
}

bgp::AsnSet plan_deployment(const topo::AsGraph& graph, std::size_t count,
                            DeploymentStrategy strategy, util::Rng& rng) {
  const std::vector<bgp::Asn> nodes = graph.nodes();
  MOAS_REQUIRE(count <= nodes.size(), "cannot deploy at more ASes than exist");
  bgp::AsnSet deployed;

  switch (strategy) {
    case DeploymentStrategy::Random: {
      for (std::size_t i : rng.sample_indices(nodes.size(), count)) {
        deployed.insert(nodes[i]);
      }
      break;
    }
    case DeploymentStrategy::DegreeRanked: {
      std::vector<bgp::Asn> ranked = nodes;
      std::sort(ranked.begin(), ranked.end(), [&](bgp::Asn a, bgp::Asn b) {
        const auto da = graph.degree(a);
        const auto db = graph.degree(b);
        if (da != db) return da > db;
        return a < b;  // deterministic tie-break
      });
      deployed.insert(ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(count));
      break;
    }
    case DeploymentStrategy::GreedyCoverage: {
      // Greedy max-coverage over edges: each step takes the node covering
      // the most yet-uncovered adjacencies.
      std::map<bgp::Asn, std::size_t> uncovered_degree;
      for (bgp::Asn asn : nodes) uncovered_degree[asn] = graph.degree(asn);
      while (deployed.size() < count) {
        bgp::Asn best = bgp::kNoAs;
        std::size_t best_gain = 0;
        for (bgp::Asn asn : nodes) {
          if (deployed.contains(asn)) continue;
          const std::size_t gain = uncovered_degree[asn];
          if (best == bgp::kNoAs || gain > best_gain || (gain == best_gain && asn < best)) {
            best = asn;
            best_gain = gain;
          }
        }
        deployed.insert(best);
        // Edges incident to `best` are now covered.
        uncovered_degree[best] = 0;
        for (bgp::Asn nbr : graph.neighbors(best)) {
          if (!deployed.contains(nbr) && uncovered_degree[nbr] > 0) {
            --uncovered_degree[nbr];
          }
        }
      }
      break;
    }
  }
  MOAS_ENSURE(deployed.size() == count, "planner produced the wrong deployment size");
  return deployed;
}

double edge_coverage(const topo::AsGraph& graph, const bgp::AsnSet& deployed) {
  const auto edges = graph.edges();
  if (edges.empty()) return 0.0;
  std::size_t covered = 0;
  for (const auto& edge : edges) {
    if (deployed.contains(edge.a) || deployed.contains(edge.b)) ++covered;
  }
  return static_cast<double>(covered) / static_cast<double>(edges.size());
}

}  // namespace moas::core
