// Attacker models.
//
// An attacker (a faulty or compromised AS) falsely originates a route to a
// victim prefix it cannot reach, and — being compromised — suppresses the
// valid announcements that would otherwise flow through it ("an attacker
// must block all the potential paths through which the valid route can
// reach the router"). Strategies differ in what MOAS list the false
// announcement carries.
#pragma once

#include <cstdint>
#include <string>

#include "moas/bgp/network.h"
#include "moas/core/moas_list.h"

namespace moas::core {

enum class AttackerStrategy : std::uint8_t {
  /// Originate with no MOAS list at all (a plain misconfiguration, like the
  /// AS8584 / AS15412 events): effective list is {attacker}.
  NoList,
  /// Attach a list containing only the attacker.
  OwnList,
  /// Forge the valid list augmented with the attacker ("Although AS 3 could
  /// attach its own MOAS list that includes AS 1, AS 2, and AS 3...").
  AugmentedList,
  /// Forge exactly the valid list while originating from the attacker: the
  /// route's own origin is then missing from its list — caught by the
  /// origin-in-list check.
  ValidListForgedOrigin,
  /// Announce a more-specific sub-prefix of the victim instead (the
  /// limitation in Section 4.3 — MOAS checking does not catch this).
  SubPrefixHijack,
};

const char* to_string(AttackerStrategy strategy);

struct AttackPlan {
  bgp::Asn attacker = bgp::kNoAs;
  net::Prefix target;          // the victim prefix
  AsnSet valid_origins;        // who really owns it (for list forging)
  AttackerStrategy strategy = AttackerStrategy::OwnList;
};

/// The prefix the attacker actually announces (the lower half of the victim
/// block for SubPrefixHijack, the victim prefix otherwise).
net::Prefix attack_prefix(const AttackPlan& plan);

/// The MOAS list the false announcement advertises under `plan.strategy`
/// (nullopt when the strategy attaches no list at all). Width-agnostic —
/// launch_attack splits it across classic and large communities.
std::optional<AsnSet> attack_moas_list(const AttackPlan& plan);

/// The classic communities the false announcement carries under
/// `plan.strategy`. Requires every list member <= 0xffff; wide-ASN plans go
/// through attack_moas_list + the width-splitting attach.
bgp::CommunitySet attack_communities(const AttackPlan& plan);

/// Install only the suppression export filter, without originating. The
/// attacker is compromised for the whole run: in the racing convergence
/// model the filter must be armed *before* any valid announcement could
/// transit the attacker — otherwise the valid route leaks through and
/// downstream ASes the attacker cuts off end up banning the false origin
/// (no_route) instead of adopting it, contradicting the paper's "an
/// attacker must block all the potential paths" model. The false
/// origination itself may then fire on any schedule.
void install_suppression(bgp::Router& router, const AttackPlan& plan);

/// Configure the attacker's router: install the suppression export filter
/// for the victim block and originate the false route.
void launch_attack(bgp::Network& network, const AttackPlan& plan);

/// Same, on a bare router — the engine-agnostic core both the event
/// Network and the sim::WaveEngine attackers go through. `router` must be
/// the attacker's.
void launch_attack(bgp::Router& router, const AttackPlan& plan);

}  // namespace moas::core
