// Origin resolution (the paper's Section 4.4).
//
// Once a MOAS alarm fires, something must decide which origin is the valid
// one. The paper sketches a DNS-based lookup (MOASRR records); its
// simulation assumes resolution succeeds ("they stop the further propagation
// of a false route, e.g. by checking with DNS"). We model that assumption
// with OracleResolver and provide knobbed DNS/IRR resolvers for the
// limitation ablations. The synchronous resolvers here are the *backends*;
// the clock-driven, fault-tolerant request path around them lives in
// async_resolver.h.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "moas/bgp/asn.h"
#include "moas/net/prefix.h"
#include "moas/util/rng.h"

namespace moas::obs {
class MetricsRegistry;
}  // namespace moas::obs

namespace moas::core {

/// Ground-truth registry of who may originate what. Shared by resolvers and
/// by the experiment harness (for scoring).
class PrefixOriginDb {
 public:
  void set(const net::Prefix& prefix, bgp::AsnSet origins);
  /// nullopt if the prefix is unregistered.
  std::optional<bgp::AsnSet> lookup(const net::Prefix& prefix) const;
  std::size_t size() const { return db_.size(); }

 private:
  std::map<net::Prefix, bgp::AsnSet> db_;
};

/// Resolves the set of valid origins for a prefix; nullopt means resolution
/// failed (no record / infrastructure unavailable).
///
/// Counters live in the obs::MetricsRegistry ("resolver.*" names, written by
/// collect_metrics) — the registry is the source of truth; the hot path only
/// bumps cheap local fields.
class OriginResolver {
 public:
  virtual ~OriginResolver() = default;
  virtual std::optional<bgp::AsnSet> resolve(const net::Prefix& prefix) = 0;
  virtual std::string name() const = 0;

  /// Snapshot the backend counters into `registry`:
  ///   resolver.queries   — lookups that reached this backend
  ///   resolver.failures  — lookups answered with nothing
  ///   resolver.corrupted — lookups answered with wrong data
  /// Counters sum on repeated calls / registry merge, so collecting every
  /// source of a fallback chain yields the chain-wide aggregate.
  virtual void collect_metrics(obs::MetricsRegistry& registry) const;

 protected:
  struct Counters {
    std::uint64_t queries = 0;
    std::uint64_t failures = 0;   // no answer
    std::uint64_t corrupted = 0;  // answered with wrong data
  };
  Counters counters_;
};

/// Always answers with the truth — the simulation-section assumption.
class OracleResolver final : public OriginResolver {
 public:
  explicit OracleResolver(std::shared_ptr<const PrefixOriginDb> truth);
  std::optional<bgp::AsnSet> resolve(const net::Prefix& prefix) override;
  std::string name() const override { return "oracle"; }

 private:
  std::shared_ptr<const PrefixOriginDb> truth_;
};

/// DNS MOASRR model: queries fail with probability `unavailability` (DNS
/// needs routing to work — the circular dependency [3] is criticized for),
/// and with probability `forgery` return an attacker-chosen answer (the
/// forgeable-DNS threat of [1]).
class DnsResolver final : public OriginResolver {
 public:
  struct Config {
    double unavailability = 0.0;
    double forgery = 0.0;
    bgp::AsnSet forged_answer;  // what a forged lookup returns
    std::uint64_t seed = 7;
  };

  DnsResolver(std::shared_ptr<const PrefixOriginDb> db, Config config);
  std::optional<bgp::AsnSet> resolve(const net::Prefix& prefix) override;
  std::string name() const override { return "dns-moasrr"; }

 private:
  std::shared_ptr<const PrefixOriginDb> db_;
  Config config_;
  util::Rng rng_;
};

/// IRR model (the route-filtering baseline [21]): records exist but a
/// fraction are stale — they answer with an outdated origin set.
class IrrResolver final : public OriginResolver {
 public:
  struct Config {
    double staleness = 0.0;  // probability a record is outdated
    std::uint64_t seed = 11;
    /// Cap on the sticky per-prefix staleness map; the oldest-inserted
    /// decision is evicted (deterministically) when the cap is exceeded.
    /// 0 = unbounded.
    std::size_t max_records = 1 << 16;
  };

  IrrResolver(std::shared_ptr<const PrefixOriginDb> current,
              std::shared_ptr<const PrefixOriginDb> stale_snapshot, Config config);
  std::optional<bgp::AsnSet> resolve(const net::Prefix& prefix) override;
  std::string name() const override { return "irr"; }

  std::size_t record_count() const { return record_is_stale_.size(); }

 private:
  std::shared_ptr<const PrefixOriginDb> current_;
  std::shared_ptr<const PrefixOriginDb> stale_;
  Config config_;
  util::Rng rng_;
  std::map<net::Prefix, bool> record_is_stale_;  // sticky per-prefix decision
  std::deque<net::Prefix> record_order_;         // insertion order, for eviction
};

/// Churn-aware cache wrapping any resolver. Session flaps re-trigger MOAS
/// alarms for the same prefixes, and naively each alarm costs a fresh
/// lookup; a short TTL absorbs that burst without changing outcomes (the
/// registry does not churn at flap timescales). Failed lookups are cached
/// too (negative cache), and the negative TTL backs off exponentially on
/// repeated failures for the same prefix so a long registry outage is not
/// probed at a fixed cadence.
class CachingResolver final : public OriginResolver {
 public:
  struct Config {
    double ttl = 30.0;          // positive-answer lifetime (seconds); 0 = no caching
    double negative_ttl = 5.0;  // first failed-lookup lifetime; 0 = don't cache failures
    /// Repeated failures for the same prefix double the negative lifetime
    /// (negative_ttl, 2x, 4x, ...) up to this cap; a success resets the
    /// streak. <= negative_ttl disables the backoff.
    double negative_ttl_cap = 60.0;
    /// Cap on cached entries; the entry with the oldest expiry — never the
    /// one just inserted — is evicted (deterministically — ties break toward
    /// the smallest prefix) when the cap is exceeded. 0 = unbounded.
    std::size_t max_entries = 1 << 16;
  };
  /// Current simulation time, supplied by the owner (e.g. the network clock).
  using TimeFn = std::function<double()>;

  CachingResolver(std::shared_ptr<OriginResolver> inner, TimeFn now, Config config);
  std::optional<bgp::AsnSet> resolve(const net::Prefix& prefix) override;
  std::string name() const override { return inner_->name() + "+cache"; }

  /// Adds on top of the inner backend's counters:
  ///   resolver.cache_lookups       — caller queries seen by the cache
  ///   resolver.cache_hits          — served from a live positive entry
  ///   resolver.cache_negative_hits — served from a live negative entry
  ///   resolver.cache_misses        — forwarded to the inner resolver
  ///   resolver.cache_evictions     — entries evicted by the max_entries cap
  void collect_metrics(obs::MetricsRegistry& registry) const override;

  const OriginResolver& inner() const { return *inner_; }
  std::size_t entry_count() const { return cache_.size(); }

  /// The negative lifetime the next failure for `prefix` would be cached
  /// with (exposes the backoff state; tests use this).
  double next_negative_ttl(const net::Prefix& prefix) const;

 private:
  struct Entry {
    std::optional<bgp::AsnSet> answer;
    double expires = 0.0;
    /// Consecutive failed refreshes for this prefix (drives the negative-TTL
    /// backoff); survives expiry, reset by the first success.
    std::uint32_t failure_streak = 0;
  };

  double negative_lifetime(std::uint32_t streak) const;
  void evict_oldest_expiry(const net::Prefix& keep);

  std::shared_ptr<OriginResolver> inner_;
  TimeFn now_;
  Config config_;
  std::map<net::Prefix, Entry> cache_;

  struct CacheCounters {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t negative_hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };
  CacheCounters cache_counters_;
};

}  // namespace moas::core
