// Origin resolution (the paper's Section 4.4).
//
// Once a MOAS alarm fires, something must decide which origin is the valid
// one. The paper sketches a DNS-based lookup (MOASRR records); its
// simulation assumes resolution succeeds ("they stop the further propagation
// of a false route, e.g. by checking with DNS"). We model that assumption
// with OracleResolver and provide knobbed DNS/IRR resolvers for the
// limitation ablations.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "moas/bgp/asn.h"
#include "moas/net/prefix.h"
#include "moas/util/rng.h"

namespace moas::core {

/// Ground-truth registry of who may originate what. Shared by resolvers and
/// by the experiment harness (for scoring).
class PrefixOriginDb {
 public:
  void set(const net::Prefix& prefix, bgp::AsnSet origins);
  /// nullopt if the prefix is unregistered.
  std::optional<bgp::AsnSet> lookup(const net::Prefix& prefix) const;
  std::size_t size() const { return db_.size(); }

 private:
  std::map<net::Prefix, bgp::AsnSet> db_;
};

/// Resolves the set of valid origins for a prefix; nullopt means resolution
/// failed (no record / infrastructure unavailable).
class OriginResolver {
 public:
  virtual ~OriginResolver() = default;
  virtual std::optional<bgp::AsnSet> resolve(const net::Prefix& prefix) = 0;
  virtual std::string name() const = 0;

  struct Stats {
    std::uint64_t queries = 0;
    std::uint64_t failures = 0;   // no answer
    std::uint64_t corrupted = 0;  // answered with wrong data
  };
  const Stats& stats() const { return stats_; }

 protected:
  Stats stats_;
};

/// Always answers with the truth — the simulation-section assumption.
class OracleResolver final : public OriginResolver {
 public:
  explicit OracleResolver(std::shared_ptr<const PrefixOriginDb> truth);
  std::optional<bgp::AsnSet> resolve(const net::Prefix& prefix) override;
  std::string name() const override { return "oracle"; }

 private:
  std::shared_ptr<const PrefixOriginDb> truth_;
};

/// DNS MOASRR model: queries fail with probability `unavailability` (DNS
/// needs routing to work — the circular dependency [3] is criticized for),
/// and with probability `forgery` return an attacker-chosen answer (the
/// forgeable-DNS threat of [1]).
class DnsResolver final : public OriginResolver {
 public:
  struct Config {
    double unavailability = 0.0;
    double forgery = 0.0;
    bgp::AsnSet forged_answer;  // what a forged lookup returns
    std::uint64_t seed = 7;
  };

  DnsResolver(std::shared_ptr<const PrefixOriginDb> db, Config config);
  std::optional<bgp::AsnSet> resolve(const net::Prefix& prefix) override;
  std::string name() const override { return "dns-moasrr"; }

 private:
  std::shared_ptr<const PrefixOriginDb> db_;
  Config config_;
  util::Rng rng_;
};

/// IRR model (the route-filtering baseline [21]): records exist but a
/// fraction are stale — they answer with an outdated origin set.
class IrrResolver final : public OriginResolver {
 public:
  struct Config {
    double staleness = 0.0;  // probability a record is outdated
    std::uint64_t seed = 11;
  };

  IrrResolver(std::shared_ptr<const PrefixOriginDb> current,
              std::shared_ptr<const PrefixOriginDb> stale_snapshot, Config config);
  std::optional<bgp::AsnSet> resolve(const net::Prefix& prefix) override;
  std::string name() const override { return "irr"; }

 private:
  std::shared_ptr<const PrefixOriginDb> current_;
  std::shared_ptr<const PrefixOriginDb> stale_;
  Config config_;
  util::Rng rng_;
  std::map<net::Prefix, bool> record_is_stale_;  // sticky per-prefix decision
};

/// Churn-aware cache wrapping any resolver. Session flaps re-trigger MOAS
/// alarms for the same prefixes, and naively each alarm costs a fresh
/// lookup; a short TTL absorbs that burst without changing outcomes (the
/// registry does not churn at flap timescales). Failed lookups are cached
/// too (negative cache) so an unreachable registry is not hammered.
class CachingResolver final : public OriginResolver {
 public:
  struct Config {
    double ttl = 30.0;          // positive-answer lifetime (seconds); 0 = no caching
    double negative_ttl = 5.0;  // failed-lookup lifetime; 0 = don't cache failures
  };
  /// Current simulation time, supplied by the owner (e.g. the network clock).
  using TimeFn = std::function<double()>;

  CachingResolver(std::shared_ptr<OriginResolver> inner, TimeFn now, Config config);
  std::optional<bgp::AsnSet> resolve(const net::Prefix& prefix) override;
  std::string name() const override { return inner_->name() + "+cache"; }

  struct CacheStats {
    std::uint64_t hits = 0;           // served from a live positive entry
    std::uint64_t negative_hits = 0;  // served from a live negative entry
    std::uint64_t misses = 0;         // forwarded to the inner resolver
  };
  const CacheStats& cache_stats() const { return cache_stats_; }
  const OriginResolver& inner() const { return *inner_; }

 private:
  struct Entry {
    std::optional<bgp::AsnSet> answer;
    double expires = 0.0;
  };

  std::shared_ptr<OriginResolver> inner_;
  TimeFn now_;
  Config config_;
  std::map<net::Prefix, Entry> cache_;
  CacheStats cache_stats_;
};

}  // namespace moas::core
