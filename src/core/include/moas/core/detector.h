// The MOAS-list consistency checker — the paper's detection mechanism,
// packaged as a bgp::ImportValidator that plugs into a Router.
//
// Per prefix, the detector remembers the reference MOAS list it currently
// believes, plus the set of origins it has identified as false ("banned").
// Every arriving announcement is reduced to its effective MOAS list
// (explicit list, else {origin} — footnote 3) and compared by set equality.
// A mismatch raises an alarm; if a resolver is attached and answers, the
// routes whose origins are not in the resolved set are rejected and any
// already-installed ones are purged, which stops the false route from
// propagating any further — exactly the behavior the paper's simulation
// assumes. If resolution fails (or the detector runs alarm-only), the
// announcement is accepted like plain BGP so that availability never
// regresses below the baseline.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "moas/bgp/validator.h"
#include "moas/core/alarm.h"
#include "moas/core/async_resolver.h"
#include "moas/core/moas_list.h"
#include "moas/core/resolver.h"

namespace moas::obs {
class MetricsRegistry;
}  // namespace moas::obs

namespace moas::core {

class MoasDetector final : public bgp::ImportValidator {
 public:
  struct Config {
    /// Check that a route carrying an explicit list includes its own origin
    /// (a self-inconsistent announcement is rejected on sight).
    bool check_origin_in_list = true;
    /// Re-raise an alarm when a banned origin shows up again (noisy; off by
    /// default — the first detection already flagged it).
    bool alarm_on_banned_repeat = false;
  };

  /// `alarms` collects alarms across routers (shared per experiment);
  /// `resolver` may be null — then the detector only raises alarms and never
  /// filters (the "off-line monitoring only" deployment).
  MoasDetector(std::shared_ptr<AlarmLog> alarms, std::shared_ptr<OriginResolver> resolver);
  MoasDetector(std::shared_ptr<AlarmLog> alarms, std::shared_ptr<OriginResolver> resolver,
               Config config);

  /// Switch conflict investigation to the clock-driven fault-tolerant path:
  /// list mismatches raise a Pending alarm and enter degraded mode instead
  /// of blocking on the synchronous resolver (which is then unused for
  /// conflicts). The resolver must outlive the detector's last in-flight
  /// request — in practice both live for the whole run.
  void set_async_resolver(std::shared_ptr<AsyncResolver> resolver) {
    async_ = std::move(resolver);
  }

  /// Degraded mode: at least one conflict is awaiting resolution. While
  /// degraded the detector contains conservatively — conflicting routes are
  /// accepted (availability never regresses), nothing is evicted, and the
  /// reference list is left untouched until an answer arrives.
  bool degraded() const { return !pending_.empty(); }
  std::size_t pending_conflicts() const { return pending_.size(); }

  bool accept(const bgp::Route& route, bgp::Asn from_peer,
              bgp::RouterContext& ctx) override;

  /// Session loss drops the evidence tied to that peer: it no longer
  /// supports the reference list, and banned origins nobody else asserted
  /// are unbanned (the peer will cold-announce when it returns, and the
  /// conflict — if still real — re-resolves from fresh announcements).
  void on_peer_down(bgp::Asn peer, bgp::RouterContext& ctx) override;

  /// RFC 7606 treat-as-withdraw revoked this peer's route: the announcement
  /// arrived damaged, so whatever list it carried is not evidence. The peer
  /// stops supporting the reference for `prefix`; if it was the last
  /// supporter the reference is rebuilt from the origins still standing in
  /// the Adj-RIB-In (never from the damaged announcement). Bans stay — the
  /// peer's earlier, intact assertions are unaffected by one corrupt UPDATE.
  void on_error_withdraw(const net::Prefix& prefix, bgp::Asn from_peer,
                         bgp::RouterContext& ctx) override;

  /// A crashed router loses detector memory wholesale.
  void on_reset(bgp::RouterContext& ctx) override;

  struct Stats {
    std::uint64_t routes_checked = 0;
    std::uint64_t alarms_raised = 0;
    std::uint64_t rejections = 0;          // announcements vetoed
    std::uint64_t purges = 0;              // installed routes invalidated
    std::uint64_t resolutions_failed = 0;  // conflict stayed unresolved
    std::uint64_t degraded_accepts = 0;    // routes accepted while a conflict was pending
  };
  const Stats& stats() const { return stats_; }

  /// Attach (or detach, with nullptr) the trace bus: conflict resolutions
  /// emit AlarmResolved / AlarmDropped events (AlarmRaised comes from the
  /// shared AlarmLog). The bus must outlive the detector.
  void set_trace(obs::TraceBus* bus) { trace_ = bus; }

  /// Snapshot every Stats counter into `registry` under "detector.*" names.
  void collect_metrics(obs::MetricsRegistry& registry) const;

  /// The reference list currently held for `prefix` (empty if none yet).
  AsnSet reference_list(const net::Prefix& prefix) const;

  /// Origins this detector has identified as false for `prefix`.
  AsnSet banned_origins(const net::Prefix& prefix) const;

 private:
  struct PrefixState {
    AsnSet reference;    // the MOAS list we currently believe
    AsnSet banned;       // origins resolved to be false
    AsnSet supporters;   // peers whose accepted announcements back `reference`
    /// banned origin -> peers that asserted it; a ban evaporates once every
    /// asserting peer's session has gone down.
    std::map<bgp::Asn, AsnSet> banned_support;
  };

  /// A conflict whose resolution is in flight. The RouterContext pointer is
  /// safe to keep: the Router outlives the run, and every completion is
  /// delivered through the run's own event queue.
  struct PendingConflict {
    bgp::RouterContext* ctx = nullptr;
    std::vector<std::size_t> alarm_ids;  // every alarm folded into this conflict
    /// origin -> peers that asserted it while the conflict was pending;
    /// feeds ban attribution when the answer arrives.
    std::map<bgp::Asn, AsnSet> asserted;
    /// Guards against callbacks from a pre-reset incarnation of the conflict.
    std::uint64_t generation = 0;
  };

  /// Records the alarm and returns its AlarmLog id.
  std::size_t raise(bgp::RouterContext& ctx, const net::Prefix& prefix,
                    const AsnSet& reference, const AsnSet& observed,
                    const AsnSet& offending, MoasAlarm::Cause cause);

  /// Handle a list conflict; returns whether the incoming route is accepted.
  bool resolve_conflict(const bgp::Route& route, bgp::Asn from_peer,
                        bgp::RouterContext& ctx, PrefixState& state,
                        const AsnSet& incoming_list);

  /// Apply a resolved truth: ban and purge false origins, adopt the
  /// reference, settle `alarm_ids`.
  void apply_truth(const net::Prefix& prefix, bgp::RouterContext& ctx, PrefixState& state,
                   const AsnSet& truth, const std::map<bgp::Asn, AsnSet>& asserted,
                   const std::vector<std::size_t>& alarm_ids);

  /// Completion of an async resolution for `prefix` (generation-guarded).
  void on_resolution(const net::Prefix& prefix, std::uint64_t generation,
                     const AsyncResolver::Outcome& outcome);

  std::shared_ptr<AlarmLog> alarms_;
  std::shared_ptr<OriginResolver> resolver_;
  std::shared_ptr<AsyncResolver> async_;
  Config config_;
  std::map<net::Prefix, PrefixState> state_;
  std::map<net::Prefix, PendingConflict> pending_;
  std::uint64_t next_generation_ = 1;
  obs::TraceBus* trace_ = nullptr;
  Stats stats_;
};

}  // namespace moas::core
