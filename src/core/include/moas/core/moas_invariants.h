// Core-level invariants for the chaos harness.
//
// The chaos library audits the BGP substrate but cannot see core types, so
// the detection-layer invariants — the alarm log stays append-only and
// time-monotone, and every installed route's MOAS list is self-consistent —
// are registered into a NetworkInvariantChecker from here as custom checks.
#pragma once

#include <memory>

#include "moas/chaos/invariants.h"
#include "moas/core/alarm.h"

namespace moas::core {

/// Register the MOAS-layer checks on `checker`:
///  * alarm-log monotonicity: alarm timestamps never decrease (the log is
///    append-only and simulation time never runs backwards);
///  * no pending alarms: at quiescence every alarm has reached a terminal
///    state (Resolved/Expired) — a still-Pending alarm was lost by the
///    asynchronous resolution path;
///  * MOAS self-consistency: a route installed in any Loc-RIB that carries
///    an explicit MOAS list must contain its own origin — an installed
///    violation means a detector-bypassing import path exists.
/// `alarms` may be null (plain-BGP runs); the alarm check is then skipped.
void register_moas_invariants(chaos::NetworkInvariantChecker& checker,
                              std::shared_ptr<const AlarmLog> alarms);

}  // namespace moas::core
