// Fault-tolerant asynchronous origin resolution (hardening the paper's §4.4
// "check with DNS/IRR which origin is valid" step).
//
// The synchronous OriginResolver backends model *what* a registry answers;
// this layer models *how long and how reliably* the answer arrives. Every
// lookup becomes a clock-driven request with
//
//   * a seeded latency distribution per source (exponential, scaled by any
//     active chaos::RegistryOutageSchedule latency spike),
//   * a per-attempt timeout and a per-request absolute deadline,
//   * bounded retries with exponential backoff + seeded jitter,
//   * a per-source circuit breaker (trips after N consecutive failures,
//     half-opens on a cooldown timer for a single canary probe — concurrent
//     requests fail fast past it — and closes on probe success),
//   * an ordered fallback chain across independent sources
//     (e.g. DNS-MOASRR -> IRR -> cached-stale) with a quorum rule for
//     conflicting answers, and
//   * a cached-stale answer store of last resort.
//
// Completions are always dispatched through the simulation clock (never
// synchronously from request()), so callers — the detector's degraded mode —
// see one consistent re-entrancy-free model. All randomness comes from one
// seeded Rng and all timers from the run's own EventQueue, which keeps
// whole-run results bit-identical for any sweep job count.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "moas/core/resolver.h"
#include "moas/obs/metrics.h"
#include "moas/obs/trace.h"
#include "moas/sim/event_queue.h"
#include "moas/util/rng.h"

namespace moas::chaos {
struct RegistryOutageSchedule;
}  // namespace moas::chaos

namespace moas::core {

/// Bucket layout of the "resolver.latency" histogram: 0.25 s buckets over
/// [0, 30) s — wide enough for a request that rides out a registry outage.
inline constexpr obs::HistogramSpec kResolverLatencySpec{0.0, 0.25, 120};

class AsyncResolver {
 public:
  /// Per-source knobs. The defaults model a healthy anycast registry:
  /// ~150 ms lookups, 1 s timeout, three attempts with 0.5/1/2 s backoff.
  struct SourceConfig {
    double latency_mean = 0.15;  // exponential lookup latency (seconds)
    double timeout = 1.0;        // per-attempt deadline
    std::size_t max_attempts = 3;  // attempts per source; 1 = no retry
    double backoff_base = 0.5;     // delay before the first retry
    double backoff_factor = 2.0;   // multiplier per further retry
    double backoff_cap = 8.0;      // retry delay ceiling
    double backoff_jitter = 0.1;   // + uniform[0, jitter) de-synchronization
    /// Circuit breaker: consecutive failures that trip it (0 disables), and
    /// how long it stays open before half-opening for one probe.
    std::size_t breaker_threshold = 4;
    double breaker_cooldown = 5.0;
  };

  struct Config {
    SourceConfig source;  // defaults for add_source() without explicit knobs
    /// Absolute per-request budget: a request that has not resolved within
    /// this many seconds of its creation expires (fate Expired).
    double request_deadline = 20.0;
    /// Distinct sources that must agree on an answer before it is accepted.
    /// 1 = first successful source wins (the plain fallback chain).
    std::size_t quorum = 1;
    /// Keep the last resolved answer per prefix and serve it — explicitly
    /// marked stale — when no live source produced any answer at all.
    /// Conflicting live answers still surface as QuorumConflict; the stale
    /// store never outvotes live disagreement.
    bool stale_cache = true;
    std::size_t stale_cache_max = 1 << 12;  // bounded, FIFO eviction
    std::uint64_t seed = 17;
  };

  enum class Fate : std::uint8_t {
    Resolved,          // answer met the quorum rule (or came from stale cache)
    Expired,           // request_deadline elapsed first
    SourcesExhausted,  // every source failed / breaker-skipped, no stale answer
    QuorumConflict,    // sources answered but no answer reached the quorum
  };

  struct Outcome {
    std::optional<bgp::AsnSet> answer;  // set only when fate == Resolved
    Fate fate = Fate::SourcesExhausted;
    std::string source;     // the source whose answer won ("stale-cache" incl.)
    double latency = 0.0;   // request creation -> completion (seconds)
    bool stale = false;     // answer served from the cached-stale store
  };

  using Callback = std::function<void(const Outcome&)>;

  enum class BreakerState : std::uint8_t { Closed, Open, HalfOpen };

  /// `clock` drives every timer and completion; it must outlive the
  /// resolver (the network's event queue does).
  AsyncResolver(sim::EventQueue& clock, Config config);

  /// Append a backend to the fallback chain (first added = first tried).
  /// Returns the source index.
  std::size_t add_source(std::shared_ptr<OriginResolver> backend);
  std::size_t add_source(std::shared_ptr<OriginResolver> backend, SourceConfig config);
  std::size_t source_count() const { return sources_.size(); }

  /// Attach the seeded outage/latency-spike schedule (may be null). The
  /// schedule must outlive the resolver.
  void set_outage_schedule(std::shared_ptr<const chaos::RegistryOutageSchedule> schedule) {
    outage_ = std::move(schedule);
  }

  /// Attach (or detach, with nullptr) the trace bus: requests, timeouts,
  /// retries, breaker transitions, and fallbacks emit Resolver* events.
  void set_trace(obs::TraceBus* bus) { trace_ = bus; }

  /// Start a resolution. The callback fires exactly once, on the clock, at
  /// the request's completion (possibly at the current time but never
  /// re-entrantly inside this call). Returns the request id.
  std::uint64_t request(const net::Prefix& prefix, Callback callback);

  std::size_t in_flight() const { return requests_.size(); }
  BreakerState breaker_state(std::size_t source) const;

  /// Snapshot every counter into `registry` under "resolver.*" names, plus
  /// the kResolverLatencySpec "resolver.latency" histogram (the registry is
  /// the source of truth; there is no public ad-hoc stats struct). Includes
  /// each backend's own collect_metrics.
  void collect_metrics(obs::MetricsRegistry& registry) const;

 private:
  struct Source {
    std::shared_ptr<OriginResolver> backend;
    SourceConfig config;
    std::string name;
    std::size_t consecutive_failures = 0;
    BreakerState breaker = BreakerState::Closed;
    double open_until = 0.0;  // when an Open breaker may half-open
    /// Request currently holding the single half-open canary probe (0 =
    /// none); other requests fail fast past the source while it is set.
    std::uint64_t probing_request = 0;
  };

  struct Request {
    net::Prefix prefix;
    Callback callback;
    double started = 0.0;
    double deadline = 0.0;
    std::size_t source = 0;   // chain cursor
    std::size_t attempt = 0;  // attempt within the current source
    /// Bumped on every state transition; timer events captured with an older
    /// epoch no-op (cheaper than cancelling heap entries).
    std::uint64_t epoch = 0;
    /// (source name, answer) pairs collected for the quorum rule.
    std::vector<std::pair<std::string, bgp::AsnSet>> answers;
  };

  void start_attempt(std::uint64_t id);
  void attempt_failed(std::uint64_t id, Request& request);
  void attempt_succeeded(std::uint64_t id, Request& request, bgp::AsnSet answer);
  void advance_source(std::uint64_t id, Request& request);
  void exhausted(std::uint64_t id, Request& request);
  void complete(std::uint64_t id, Outcome outcome);
  void trip_breaker(Source& source);
  void note_success(Source& source);
  double backoff_delay(const SourceConfig& config, std::size_t attempt);
  void trace_event(obs::EventKind kind, const Request& request, const std::string& note,
                   std::int64_t value = 0);

  sim::EventQueue& clock_;
  Config config_;
  util::Rng rng_;
  std::vector<Source> sources_;
  std::shared_ptr<const chaos::RegistryOutageSchedule> outage_;
  obs::TraceBus* trace_ = nullptr;
  std::map<std::uint64_t, Request> requests_;
  std::uint64_t next_id_ = 1;

  /// Cached-stale store: last resolved answer per prefix, FIFO-bounded.
  std::map<net::Prefix, bgp::AsnSet> stale_cache_;
  std::vector<net::Prefix> stale_order_;

  struct Counters {
    std::uint64_t requests = 0;
    std::uint64_t attempts = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t retries = 0;
    std::uint64_t fallbacks = 0;
    std::uint64_t breaker_trips = 0;
    std::uint64_t breaker_fast_fails = 0;
    std::uint64_t breaker_half_opens = 0;
    std::uint64_t breaker_closes = 0;
    std::uint64_t outage_drops = 0;  // attempts that failed inside an outage window
    std::uint64_t resolved = 0;
    std::uint64_t expired = 0;
    std::uint64_t exhausted = 0;
    std::uint64_t quorum_conflicts = 0;
    std::uint64_t stale_served = 0;
  };
  Counters counters_;
  obs::FixedHistogram latency_{kResolverLatencySpec};
};

const char* to_string(AsyncResolver::Fate fate);
const char* to_string(AsyncResolver::BreakerState state);

}  // namespace moas::core
