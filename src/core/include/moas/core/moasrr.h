// DNS MOASRR records (the paper's Section 4.4, after Bates et al. [3]).
//
// "whenever a MOAS conflict for prefix p [occurs], the router performs a
//  DNS lookup to verify the origin AS of p by specifying the DNS Resource
//  Record type as MOASRR."
//
// We model the record and its zone addressing: a prefix maps to a name in
// the in-addr.arpa reverse tree (one label per network octet), the record
// body lists the entitled origin ASes, and a zone file serializes records
// one per line. A DnssecState flag stands in for the DNSSEC signing that
// [16]/[6] would provide.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "moas/bgp/asn.h"
#include "moas/net/prefix.h"

namespace moas::core {

enum class DnssecState : std::uint8_t { Unsigned, Signed, BadSignature };

const char* to_string(DnssecState state);

struct MoasRr {
  net::Prefix prefix;
  bgp::AsnSet origins;
  std::uint32_t ttl = 86400;
  DnssecState dnssec = DnssecState::Unsigned;
};

/// The reverse-tree owner name for a prefix, e.g. 135.38.0.0/16 ->
/// "38.135.in-addr.arpa" (whole-octet boundaries; non-octet lengths get an
/// RFC 2317-style "<net>-<len>" final label).
std::string moasrr_owner_name(const net::Prefix& prefix);

/// One zone-file line: "<owner> <ttl> IN MOASRR <prefix> <as1> <as2> ..."
/// with ";dnssec=<state>" appended for non-default states.
std::string format_moasrr(const MoasRr& record);

/// Parse a zone-file line (whitespace-tolerant); nullopt on malformed
/// input.
std::optional<MoasRr> parse_moasrr(const std::string& line);

/// A zone: ordered records with lookup by prefix (exact match, as the
/// paper's per-prefix check requires).
class MoasrrZone {
 public:
  /// Add or replace the record for its prefix.
  void add(MoasRr record);
  const MoasRr* lookup(const net::Prefix& prefix) const;
  std::size_t size() const { return records_.size(); }

  /// Serialize / load a whole zone file. Lines starting with ';' are
  /// comments. Throws std::invalid_argument on malformed records.
  void save(std::ostream& os) const;
  static MoasrrZone load(std::istream& is);

 private:
  std::vector<MoasRr> records_;
};

}  // namespace moas::core
