// MOAS alarms.
//
// "Whenever a BGP router notices any inconsistency in the MOAS Lists
//  received, it should generate an alarm signal; further investigation
//  should be conducted to identify the cause of the inconsistency."
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "moas/bgp/asn.h"
#include "moas/net/prefix.h"
#include "moas/obs/trace.h"
#include "moas/sim/event_queue.h"

namespace moas::core {

struct MoasAlarm {
  enum class Cause : std::uint8_t {
    ListMismatch,      // two announcements carry different MOAS lists
    OriginNotInList,   // a route's own origin is missing from its list
    BannedOriginSeen,  // a route from an origin already identified as false
  };

  /// Alarm lifecycle. Every alarm must reach a terminal state: Resolved
  /// (investigation identified the false origins) or Expired (resolution
  /// failed or ran out of budget — the conflict stays open, explicitly).
  /// Pending marks an alarm whose resolution is still in flight (degraded
  /// detector mode); a run that quiesces with Pending alarms lost them.
  enum class State : std::uint8_t { Raised, Pending, Resolved, Expired };

  sim::Time at = 0.0;
  bgp::Asn observer = bgp::kNoAs;  // the AS that raised the alarm
  net::Prefix prefix;
  bgp::AsnSet reference_list;  // the list the observer held
  bgp::AsnSet observed_list;   // the list on the offending announcement
  bgp::AsnSet offending_origins;  // origin candidates of that announcement
  Cause cause = Cause::ListMismatch;
  State state = State::Raised;
  sim::Time settled_at = -1.0;  // when a terminal state was reached (-1 = not yet)

  std::string to_string() const;

  bool operator==(const MoasAlarm&) const = default;
};

const char* to_string(MoasAlarm::Cause cause);
const char* to_string(MoasAlarm::State state);

/// Append-only alarm sink shared by all detectors in one experiment.
///
/// Long-lived (streaming) deployments cap the log with set_retention():
/// once more than `cap` alarms are retained, the oldest *settled* alarms
/// are folded into per-state/per-cause tallies and dropped. Ids stay
/// stable across compaction (they are absolute record indices), open
/// alarms are never compacted, and count()/count_state()/size() keep
/// reporting totals over everything ever recorded. The default (cap 0,
/// unlimited) preserves the historical append-only behaviour exactly.
class AlarmLog {
 public:
  /// Records the alarm and returns its id so the raiser can settle it
  /// later. Ids are absolute: they survive compaction.
  std::size_t record(MoasAlarm alarm) {
    if (obs::trace_wants(trace_, obs::TraceLevel::Summary)) {
      trace_->emit(obs::TraceEvent(obs::EventKind::AlarmRaised, alarm.observer)
                       .with_prefix(alarm.prefix)
                       .with_note(to_string(alarm.cause)));
    }
    alarms_.push_back(std::move(alarm));
    maybe_compact();
    return base_ + alarms_.size() - 1;
  }

  /// Transition alarm `id` to `state` at time `at`. Only forward moves are
  /// legal: Raised -> Pending, and Raised/Pending -> Resolved/Expired; a
  /// settled alarm never changes again. Settling an already-compacted id
  /// is a precondition violation (only settled alarms are ever compacted).
  void settle(std::size_t id, MoasAlarm::State state, sim::Time at);

  /// The retained window (everything, when no retention cap is set).
  const std::vector<MoasAlarm>& alarms() const { return alarms_; }
  /// Total alarms ever recorded, compacted ones included.
  std::size_t size() const { return base_ + alarms_.size(); }
  bool empty() const { return size() == 0; }
  void clear();

  /// Number of alarms with the given cause (compacted ones included).
  std::size_t count(MoasAlarm::Cause cause) const;

  /// Number of alarms currently in the given lifecycle state (compacted
  /// ones included; they are all terminal by construction).
  std::size_t count_state(MoasAlarm::State state) const;

  /// Cap the retained window at `cap` alarms (0 = unlimited). Compaction
  /// only ever folds the oldest settled alarms; an old alarm that is still
  /// open blocks compaction behind it, so the window can exceed the cap by
  /// the number of open alarms preceding it.
  void set_retention(std::size_t cap);
  std::size_t retention() const { return retention_; }

  /// Id of the oldest retained alarm (== number of compacted alarms).
  std::size_t first_retained() const { return base_; }
  std::size_t compacted() const { return base_; }
  const std::array<std::uint64_t, 4>& compacted_by_state() const { return compacted_states_; }
  const std::array<std::uint64_t, 3>& compacted_by_cause() const { return compacted_causes_; }

  /// Checkpoint restore: seed the compaction tallies of an empty log.
  void restore_compacted(std::size_t base, const std::array<std::uint64_t, 4>& by_state,
                         const std::array<std::uint64_t, 3>& by_cause);

  /// Attach (or detach, with nullptr) the trace bus; every recorded alarm
  /// is mirrored as an AlarmRaised event. The bus must outlive the log.
  void set_trace(obs::TraceBus* bus) { trace_ = bus; }

  /// Content equality (the attached trace bus is not part of the content).
  bool operator==(const AlarmLog& other) const {
    return alarms_ == other.alarms_ && base_ == other.base_ &&
           retention_ == other.retention_ && compacted_states_ == other.compacted_states_ &&
           compacted_causes_ == other.compacted_causes_;
  }

 private:
  void maybe_compact();

  std::vector<MoasAlarm> alarms_;
  std::size_t base_ = 0;  // ids < base_ have been compacted away
  std::size_t retention_ = 0;
  std::array<std::uint64_t, 4> compacted_states_{};  // indexed by State
  std::array<std::uint64_t, 3> compacted_causes_{};  // indexed by Cause
  obs::TraceBus* trace_ = nullptr;
};

}  // namespace moas::core
