// MOAS alarms.
//
// "Whenever a BGP router notices any inconsistency in the MOAS Lists
//  received, it should generate an alarm signal; further investigation
//  should be conducted to identify the cause of the inconsistency."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "moas/bgp/asn.h"
#include "moas/net/prefix.h"
#include "moas/obs/trace.h"
#include "moas/sim/event_queue.h"

namespace moas::core {

struct MoasAlarm {
  enum class Cause : std::uint8_t {
    ListMismatch,      // two announcements carry different MOAS lists
    OriginNotInList,   // a route's own origin is missing from its list
    BannedOriginSeen,  // a route from an origin already identified as false
  };

  /// Alarm lifecycle. Every alarm must reach a terminal state: Resolved
  /// (investigation identified the false origins) or Expired (resolution
  /// failed or ran out of budget — the conflict stays open, explicitly).
  /// Pending marks an alarm whose resolution is still in flight (degraded
  /// detector mode); a run that quiesces with Pending alarms lost them.
  enum class State : std::uint8_t { Raised, Pending, Resolved, Expired };

  sim::Time at = 0.0;
  bgp::Asn observer = bgp::kNoAs;  // the AS that raised the alarm
  net::Prefix prefix;
  bgp::AsnSet reference_list;  // the list the observer held
  bgp::AsnSet observed_list;   // the list on the offending announcement
  bgp::AsnSet offending_origins;  // origin candidates of that announcement
  Cause cause = Cause::ListMismatch;
  State state = State::Raised;
  sim::Time settled_at = -1.0;  // when a terminal state was reached (-1 = not yet)

  std::string to_string() const;
};

const char* to_string(MoasAlarm::Cause cause);
const char* to_string(MoasAlarm::State state);

/// Append-only alarm sink shared by all detectors in one experiment.
class AlarmLog {
 public:
  /// Records the alarm and returns its id (index) so the raiser can settle
  /// it later.
  std::size_t record(MoasAlarm alarm) {
    if (obs::trace_wants(trace_, obs::TraceLevel::Summary)) {
      trace_->emit(obs::TraceEvent(obs::EventKind::AlarmRaised, alarm.observer)
                       .with_prefix(alarm.prefix)
                       .with_note(to_string(alarm.cause)));
    }
    alarms_.push_back(std::move(alarm));
    return alarms_.size() - 1;
  }

  /// Transition alarm `id` to `state` at time `at`. Only forward moves are
  /// legal: Raised -> Pending, and Raised/Pending -> Resolved/Expired; a
  /// settled alarm never changes again.
  void settle(std::size_t id, MoasAlarm::State state, sim::Time at);

  const std::vector<MoasAlarm>& alarms() const { return alarms_; }
  std::size_t size() const { return alarms_.size(); }
  bool empty() const { return alarms_.empty(); }
  void clear() { alarms_.clear(); }

  /// Number of alarms with the given cause.
  std::size_t count(MoasAlarm::Cause cause) const;

  /// Number of alarms currently in the given lifecycle state.
  std::size_t count_state(MoasAlarm::State state) const;

  /// Attach (or detach, with nullptr) the trace bus; every recorded alarm
  /// is mirrored as an AlarmRaised event. The bus must outlive the log.
  void set_trace(obs::TraceBus* bus) { trace_ = bus; }

 private:
  std::vector<MoasAlarm> alarms_;
  obs::TraceBus* trace_ = nullptr;
};

}  // namespace moas::core
