// Incremental-deployment planning — an extension of the paper's
// Experiment 3. The paper deploys checking at a *random* half of the ASes;
// an operator rolling the mechanism out can do better by choosing *which*
// ASes deploy first. Strategies:
//
//  - Random: the paper's baseline.
//  - DegreeRanked: largest-degree ASes first (the transit core sees the
//    most conflicting announcements and blocks the most propagation).
//  - GreedyCoverage: pick nodes one at a time to maximize the number of
//    adjacencies whose traffic passes a checking AS (a cheap submodular
//    coverage proxy for "false routes must cross a checker").
#pragma once

#include <cstdint>
#include <vector>

#include "moas/topo/graph.h"
#include "moas/util/rng.h"

namespace moas::core {

enum class DeploymentStrategy : std::uint8_t { Random, DegreeRanked, GreedyCoverage };

const char* to_string(DeploymentStrategy strategy);

/// Pick `count` ASes to deploy MOAS checking at, by strategy. Deterministic
/// for a given rng state (Random consumes the rng; the others do not).
bgp::AsnSet plan_deployment(const topo::AsGraph& graph, std::size_t count,
                            DeploymentStrategy strategy, util::Rng& rng);

/// Coverage score used by GreedyCoverage: the fraction of edges with at
/// least one endpoint in `deployed` (every hop a false route takes across
/// such an edge meets a checker).
double edge_coverage(const topo::AsGraph& graph, const bgp::AsnSet& deployed);

}  // namespace moas::core
