// The paper's simulation harness (Section 5).
//
// One *run* places 1–2 valid origin ASes (random stubs) and M attacker ASes
// (random over all ASes) on a sampled topology, lets everyone announce, runs
// the network to quiescence and measures the fraction of non-attacker ASes
// whose best route for the victim prefix points at an attacker. A *point*
// averages several runs (the paper uses 15: 3 origin sets x 5 attacker
// sets); a *sweep* walks the attacker fraction across the x-axis of
// Figures 9–11.
//
// Sweeps are structured plan → execute → reduce. A serial planning pass
// (plan_sweep) draws every run's origins, attackers, and per-run seed,
// consuming the shared Rng stream in exactly the order the historical
// serial loop did. The independent runs then execute across a
// util::ThreadPool in any order (execute_plan), each seeded run fully
// self-contained. Finally reduce_plan merges per-run results into
// SweepPoints in plan order via util::Accumulator::merge.
//
// Determinism contract: for a fixed topology, config, and seed, sweep()
// output is bit-identical for ANY job count — including jobs=1 versus the
// historical single-threaded loop — because all randomness is drawn
// serially up front and the floating-point reduction replays plan order.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "moas/bgp/network.h"
#include "moas/chaos/registry_outage.h"
#include "moas/chaos/schedule.h"
#include "moas/core/async_resolver.h"
#include "moas/core/attacker.h"
#include "moas/core/detector.h"
#include "moas/core/resolver.h"
#include "moas/obs/metrics.h"
#include "moas/obs/trace.h"
#include "moas/topo/graph.h"
#include "moas/util/rng.h"

namespace moas::util {
class ThreadPool;
}

namespace moas::core {

enum class Deployment : std::uint8_t { None, Partial, Full };

const char* to_string(Deployment deployment);

enum class ResolverKind : std::uint8_t { Oracle, Dns, Irr, None };

/// Which propagation backend executes a run.
///
/// Event: the SSFnet-style timed simulation (bgp::Network over the event
/// queue) — message delays, MRAI pacing, churn, latency metrics.
/// Wave: the rank-ordered three-sweep engine (sim::WaveEngine) — the same
/// converged Loc-RIBs at O(edges) per prefix, no clock. Wave runs reject
/// every event-time knob loudly (see the Experiment constructor): MRAI must
/// be 0, prefer_established false, and churn / async resolution / graceful
/// restart / revised error handling / tracing / invariant audits off.
enum class Engine : std::uint8_t { Event, Wave };

const char* to_string(Engine engine);

/// Where attackers may be placed.
enum class AttackerPlacement : std::uint8_t { Anywhere, StubsOnly, TransitOnly };

struct ExperimentConfig {
  /// Propagation backend (see Engine). The default is the paper-faithful
  /// event simulation; Wave trades event-time fidelity for O(edges) runs.
  Engine engine = Engine::Event;

  Deployment deployment = Deployment::Full;
  double deployment_fraction = 0.5;  // MOAS-capable share under Partial

  std::size_t num_origins = 1;  // 1 or 2 valid origin ASes
  AttackerStrategy strategy = AttackerStrategy::OwnList;
  AttackerPlacement placement = AttackerPlacement::Anywhere;

  bgp::PolicyMode policy = bgp::PolicyMode::ShortestPath;
  /// Per-router MRAI (seconds); 0 disables. Defaults to the BGP-4 standard
  /// 30s, which (as in real BGP) suppresses the path-exploration storm on
  /// dense topologies without changing the converged outcome.
  double mrai = 30.0;
  double strip_fraction = 0.0;  // routers that drop communities on export

  /// Route-age preference (keep the established best on attribute-key
  /// ties). On by default — the stability step real BGP implementations
  /// apply — but it makes the event engine's converged tie winners depend
  /// on message timing. The wave engine is timeless and REQUIREs this off;
  /// turn it off on the event engine too when differentially comparing the
  /// two (DESIGN.md §10).
  bool prefer_established = true;

  ResolverKind resolver = ResolverKind::Oracle;
  double dns_unavailability = 0.0;  // when resolver == Dns
  double dns_forgery = 0.0;
  double irr_staleness = 0.0;  // when resolver == Irr
  bgp::AsnSet irr_stale_origins;  // what a stale IRR record answers

  /// Wrap the resolver in a CachingResolver with this TTL (seconds); 0
  /// disables. Under churn the same prefix alarms repeatedly, and without a
  /// cache every alarm is a fresh registry lookup.
  double resolver_cache_ttl = 0.0;

  /// Asynchronous fault-tolerant resolution. When set, conflict
  /// investigation goes through a clock-driven AsyncResolver (timeouts,
  /// retry/backoff, circuit breaker, fallback chain, stale-cache) built
  /// around the configured backend, and detectors run the degraded-mode
  /// alarm lifecycle (Pending alarms that later Resolve or Expire) instead
  /// of blocking on the synchronous resolver. The async seed is mixed with
  /// the run seed, so one run seed reproduces the latency draws too.
  std::optional<AsyncResolver::Config> async_resolution;
  /// Add an IRR source (knobbed by irr_staleness / irr_stale_origins) behind
  /// the primary backend in the fallback chain. Only with async_resolution.
  bool async_fallback_irr = false;
  /// Seeded registry outage windows and latency spikes replayed against the
  /// async sources. The seed is XOR-mixed with the run seed, like churn.
  /// Only meaningful with async_resolution.
  std::optional<chaos::RegistryOutageConfig> registry_outage;

  /// RFC 4724 graceful restart, negotiated network-wide. Router crashes
  /// then leave peers' learned routes in use (marked stale) until the
  /// restart timer or the restarted router's End-of-RIB — instead of the
  /// cold flush + withdraw cascade that makes a crash look like churn.
  bool graceful_restart = false;
  double gr_restart_time = 60.0;

  /// RFC 7606 revised UPDATE error handling, network-wide. Attribute-level
  /// damage degrades to treat-as-withdraw or attribute-discard instead of a
  /// NOTIFICATION + session reset, so one corrupt UPDATE costs at most the
  /// routes it carried — not the whole session's worth of detector evidence.
  bool revised_error_handling = false;

  /// Off (default): valid and false announcements race from a cold start —
  /// one SSFnet scenario per run, which is what reproduces the paper's
  /// numbers (cut-off ASes never hear the valid route and adopt the false
  /// one). On: the valid routes converge first and the attack hits a
  /// steady-state network — an ablation showing that pre-seeded reference
  /// lists make full deployment essentially immune.
  bool converge_before_attack = false;

  double link_delay = 0.05;
  double jitter = 0.02;
  std::size_t max_events = 50'000'000;

  /// Background churn: a seeded fault schedule (link flaps, session resets,
  /// router crashes, message-level faults) replayed while the run's
  /// announcements and attacks play out. The schedule seed is XOR-mixed
  /// with the run seed, so one run seed reproduces workload and faults
  /// alike. nullopt = the classic fault-free run.
  std::optional<chaos::ScheduleConfig> churn;

  /// Audit the NetworkInvariantChecker (plus the MOAS-layer custom checks)
  /// at final quiescence; violations are reported in RunResult.
  bool check_invariants = false;

  /// Observability: attach a per-run trace bus recording at this level.
  /// Summary is enough for the alarm-latency metrics (route changes, alarms,
  /// faults); Full adds per-UPDATE send/receive. Off attaches nothing.
  obs::TraceLevel trace_level = obs::TraceLevel::Off;
  /// Keep the raw event stream in RunResult::trace after the run's own
  /// latency computation. Off by default — a Full-level stream is large.
  bool keep_trace = false;

  /// Snapshot every router's final Loc-RIB into RunResult::final_ribs.
  /// Off by default (it is O(ASes) memory per run); the event-vs-wave
  /// differential gate turns it on to compare converged routing tables
  /// entry for entry.
  bool keep_final_ribs = false;
};

/// Bucket layout of the per-point alarm-latency histograms: 0.5 s buckets
/// up to 30 s (one MRAI interval), explicit overflow beyond. Shared by
/// every producer so point registries merge without spec conflicts.
inline constexpr obs::HistogramSpec kAlarmLatencySpec{0.0, 0.5, 60};

/// One converged Loc-RIB entry, labeled with the AS holding it (only with
/// ExperimentConfig::keep_final_ribs). Full-route equality — path, origin
/// code, LOCAL_PREF, MED, communities, learned-from neighbor.
struct FinalRoute {
  bgp::Asn asn = bgp::kNoAs;
  bgp::RibEntry entry;

  friend bool operator==(const FinalRoute&, const FinalRoute&) = default;
};

struct RunResult {
  std::size_t total_ases = 0;
  std::size_t attackers = 0;
  std::size_t population = 0;  // non-attacker ASes (the paper's "remaining")

  std::size_t adopted_false = 0;  // best route origin is an attacker
  std::size_t adopted_valid = 0;  // best route origin is a valid origin
  std::size_t no_route = 0;       // no route for the victim prefix at all

  std::size_t alarms = 0;
  std::size_t false_alarms = 0;  // alarms not implicating any attacker
  /// Alarm lifecycle at quiescence (zero-lost-alarms contract: pending must
  /// be 0 — every alarm either resolved or expired explicitly). Alarms that
  /// needed no investigation settle as resolved on the spot.
  std::size_t alarms_pending = 0;
  std::size_t alarms_resolved = 0;
  std::size_t alarms_expired = 0;
  std::size_t rejections = 0;    // detector vetoes across all routers
  std::uint64_t messages = 0;
  bool quiesced = true;

  /// Network-wide update-kind totals (summed Router stats): how much churn
  /// the run actually put on the wire. Graceful restart shows up here as
  /// strictly fewer withdrawals/announcements than a cold-restart run.
  std::uint64_t withdrawals = 0;
  std::uint64_t announcements = 0;
  std::uint64_t stale_retained = 0;  // routes parked as stale at crashes
  std::uint64_t stale_swept = 0;     // flushed by End-of-RIB or restart timer
  /// Adj-RIB-In entries removed by explicit/error withdrawals, session
  /// flushes, and stale sweeps — the receiver-side route loss `withdrawals`
  /// (messages on the wire) cannot see when sessions are down.
  std::uint64_t routes_withdrawn = 0;

  /// RFC 7606 error-handling bookkeeping. `error_withdraws` counts routes
  /// revoked by treat-as-withdraw across all routers; the rest come from the
  /// chaos engine's scheduled attribute corruptions (zero without churn).
  std::uint64_t error_withdraws = 0;
  std::uint64_t attr_corruptions = 0;       // scheduled corruptions that landed
  std::uint64_t corrupt_session_resets = 0; // RFC 4271 fate (reset)
  std::uint64_t treat_as_withdraws = 0;     // RFC 7606 fate (degrade)
  std::uint64_t attr_discards = 0;          // RFC 7606 fate (salvage)
  std::uint64_t poisoned_blocked = 0;       // corrupted MOAS lists intercepted

  /// Registry load: queries that actually reached the backend resolver
  /// (behind the cache when resolver_cache_ttl > 0) and hits the cache
  /// absorbed (0 without a cache).
  std::uint64_t resolver_queries = 0;
  std::uint64_t resolver_cache_hits = 0;

  /// Graph-theoretic lower bound on residual damage under full detection:
  /// the fraction of non-attackers the attacker set cuts off from every
  /// valid origin.
  double structural_cutoff = 0.0;

  bgp::AsnSet origin_set;
  bgp::AsnSet attacker_set;

  /// Churn bookkeeping (zero / empty without ExperimentConfig::churn).
  std::size_t fault_events = 0;      // discrete faults replayed
  std::uint64_t message_faults = 0;  // drops/dups/reorders/corruptions sampled
  std::string fault_log;             // byte-identical for equal seeds
  /// Compiled registry-outage windows (empty without registry_outage);
  /// byte-identical for equal seeds — bench arms compare these to prove two
  /// configurations saw the same fault schedule.
  std::string outage_log;
  /// Violations found when ExperimentConfig::check_invariants is set.
  std::vector<std::string> invariant_report;

  /// Alarm-latency instrumentation (simulated seconds; -1 = not applicable).
  /// `attack_injected_at` is the earliest scheduled false origination on the
  /// run's clock; `first_alarm_latency` measures from there to the first
  /// alarm implicating an attacker; `eviction_latency` to the moment the
  /// last non-attacker router dropped its attacker-origin best route (0 when
  /// no non-attacker ever adopted one; -1 with `false_route_stuck` set when
  /// one still held it at quiescence). Eviction needs trace_level >= Summary
  /// — it is computed from the RoutePreferred/RouteDepreferred stream.
  double attack_injected_at = -1.0;
  double first_alarm_latency = -1.0;
  double eviction_latency = -1.0;
  bool false_route_stuck = false;

  /// Wall-clock seconds spent inside the engine's propagation phase alone —
  /// the event-queue drains (run_event) or the wave sweeps (run_wave) —
  /// excluding scenario setup and scoring. Real time, not simulated: it is
  /// NOT in the metrics registry and never enters a determinism comparison;
  /// micro_wave_vs_event reads it for the per-prefix speedup gate.
  double propagation_seconds = 0.0;

  /// Per-run metrics snapshot: router.*/network.*/sim.* (always), chaos.*
  /// (with churn), detector.*/resolver.* (with deployment). The scalar
  /// counters above are read back out of this registry — it is the source
  /// of truth, not a parallel bookkeeping path.
  obs::MetricsRegistry metrics;
  /// The raw event stream (only with ExperimentConfig::keep_trace).
  std::vector<obs::TraceEvent> trace;
  /// Every router's converged Loc-RIB, sorted by (asn, prefix) — only with
  /// ExperimentConfig::keep_final_ribs. Both engines populate it the same
  /// way, so the differential gate compares the vectors with ==.
  std::vector<FinalRoute> final_ribs;

  double adopted_false_fraction() const {
    return population == 0 ? 0.0
                           : static_cast<double>(adopted_false) /
                                 static_cast<double>(population);
  }
  double no_route_fraction() const {
    return population == 0 ? 0.0
                           : static_cast<double>(no_route) / static_cast<double>(population);
  }
  /// The paper's "affected" ASes: traffic for the victim prefix is either
  /// hijacked (false best route) or lost (no route at all — a capable AS
  /// that banned the false origin but was cut off from the valid one).
  double affected_fraction() const {
    return adopted_false_fraction() + no_route_fraction();
  }
};

struct SweepPoint {
  double attacker_fraction = 0.0;  // requested share of ASes
  std::size_t runs = 0;
  double mean_adopted_false = 0.0;  // fraction of non-attacker ASes, averaged
  double stddev_adopted_false = 0.0;
  double mean_affected = 0.0;  // adopted-false + no-route (the paper's metric)
  double mean_no_route = 0.0;
  double mean_alarms = 0.0;
  double mean_false_alarms = 0.0;
  double mean_structural_cutoff = 0.0;
  /// Runs whose false route was still installed somewhere at quiescence
  /// (excluded from the eviction-latency histogram).
  std::size_t runs_false_route_stuck = 0;
  /// Per-run registries merged in plan order, plus the point's latency
  /// histograms: "detector.first_alarm_latency" (injection → first
  /// attacker-implicating alarm) and "detector.eviction_latency"
  /// (injection → network-wide false-route eviction), both kAlarmLatencySpec.
  obs::MetricsRegistry metrics;
};

/// One planned simulation: placements and seed drawn up front by the
/// serial planning pass, so the run itself touches no shared Rng state.
struct PlannedRun {
  std::size_t point = 0;  // index into SweepPlan::attacker_fractions
  bgp::AsnSet origins;
  bgp::AsnSet attackers;
  std::uint64_t seed = 0;
};

/// A fully-drawn sweep. `runs` is in plan order — point-major, then
/// origin-set, then attacker-set — which is both the order the shared Rng
/// stream was consumed in and the order the reduction replays.
struct SweepPlan {
  std::vector<double> attacker_fractions;
  std::size_t origin_sets = 0;
  std::size_t attacker_sets = 0;
  std::vector<PlannedRun> runs;

  std::size_t runs_per_point() const { return origin_sets * attacker_sets; }
};

class Experiment {
 public:
  /// `graph` must stay alive as long as the experiment. It must be
  /// connected and contain at least one stub.
  Experiment(const topo::AsGraph& graph, ExperimentConfig config);

  const ExperimentConfig& config() const { return config_; }

  /// Draw random origins/attackers and run one simulation.
  RunResult run_once(std::size_t num_attackers, util::Rng& rng) const;

  /// Run with explicit placements (tests / demos).
  RunResult run_with(const bgp::AsnSet& origins, const bgp::AsnSet& attackers,
                     std::uint64_t seed) const;

  /// One figure data point: `origin_sets` origin draws x `attacker_sets`
  /// attacker draws (the paper's 3 x 5 = 15 runs). Both budgets must be
  /// >= 1. `jobs` workers execute the runs (0 resolves via
  /// util::ThreadPool::default_jobs()); output is identical for any value.
  SweepPoint run_point(double attacker_fraction, std::size_t origin_sets,
                       std::size_t attacker_sets, util::Rng& rng,
                       std::size_t jobs = 1) const;

  /// A full curve: plan_sweep → execute_plan → reduce_plan. Bit-identical
  /// output for any `jobs` (see the determinism contract above).
  std::vector<SweepPoint> sweep(const std::vector<double>& attacker_fractions,
                                std::size_t origin_sets, std::size_t attacker_sets,
                                util::Rng& rng, std::size_t jobs = 1) const;

  /// Serial planning pass: draws every run's origins, attackers and seed,
  /// consuming `rng` in exactly the order the serial sweep always did.
  /// Rejects empty run budgets (origin_sets or attacker_sets == 0) and
  /// out-of-range attacker fractions up front.
  SweepPlan plan_sweep(const std::vector<double>& attacker_fractions,
                       std::size_t origin_sets, std::size_t attacker_sets,
                       util::Rng& rng) const;

  /// Execute a plan's independent runs across `pool`, in any completion
  /// order; the result vector is indexed in plan order. Callers may share
  /// one pool across several experiments' plans (see bench_util).
  std::vector<RunResult> execute_plan(const SweepPlan& plan,
                                      util::ThreadPool& pool) const;

  /// Deterministic reduction: merge per-run results into one SweepPoint
  /// per attacker fraction, replaying plan order.
  std::vector<SweepPoint> reduce_plan(const SweepPlan& plan,
                                      const std::vector<RunResult>& results) const;

  /// Random distinct origin stubs per config().num_origins.
  bgp::AsnSet draw_origins(util::Rng& rng) const;

  /// Random attacker set avoiding `origins`, honoring placement.
  bgp::AsnSet draw_attackers(std::size_t count, const bgp::AsnSet& origins,
                             util::Rng& rng) const;

 private:
  /// The event-queue backend (the historical run_with body).
  RunResult run_event(const bgp::AsnSet& origins, const bgp::AsnSet& attackers,
                      std::uint64_t seed) const;
  /// The rank-ordered wave backend. Consumes the run seed in the same draw
  /// order as run_event up through the deployment/stripping samples, so a
  /// PlannedRun resolves to the same capable set under either engine.
  RunResult run_wave(const bgp::AsnSet& origins, const bgp::AsnSet& attackers,
                     std::uint64_t seed) const;
  /// Alarm bookkeeping shared by both engines: lifecycle counts, settle
  /// histogram, false-alarm classification. Returns the earliest
  /// attacker-implicating alarm time (-1 if none).
  double account_alarms(RunResult& result, const AlarmLog& alarms,
                        const bgp::AsnSet& attackers) const;

  const topo::AsGraph* graph_;
  ExperimentConfig config_;
};

}  // namespace moas::core
