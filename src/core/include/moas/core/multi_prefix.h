// Multi-prefix detection workload.
//
// The paper's sweeps study one victim prefix per run; real tables carry
// hundreds of thousands. This workload drives the rank-ordered wave engine
// with thousands of victim prefixes on one topology — block-iterated so the
// in-flight update set stays bounded — to exercise the interned-path /
// compact-RIB memory model at table scale and to extend the fig10 curves
// into the 10k+-AS, multi-prefix regime. Each attacked prefix gets its own
// attacker AS (a router has a single export filter, so one compromised AS
// suppresses exactly one victim block), every origin is a stub, and
// detectors run network-wide (or a sampled subset) against an oracle
// registry, exactly like a single-prefix wave run.
#pragma once

#include <cstdint>

#include "moas/core/attacker.h"
#include "moas/core/experiment.h"
#include "moas/topo/graph.h"

namespace moas::core {

struct MultiPrefixConfig {
  /// Victim prefixes (10.x.y.0/24, index-major). Max 65,536.
  std::size_t num_prefixes = 1024;
  /// Prefixes originated + attacked per propagate() block. Bounds the
  /// in-flight update set; the fixpoint is identical for any block size.
  std::size_t block_size = 256;
  /// Valid origins drawn (distinct stubs) per prefix; >1 attaches a MOAS
  /// list, width-split across classic and large communities.
  std::size_t origins_per_prefix = 1;
  /// Leading share of prefixes that also get a false origination.
  double attacked_fraction = 1.0;
  AttackerStrategy strategy = AttackerStrategy::OwnList;
  bgp::PolicyMode policy = bgp::PolicyMode::ShortestPath;
  Deployment deployment = Deployment::Full;
  double deployment_fraction = 0.5;  // capable share under Partial
  std::uint64_t seed = 0;
};

struct MultiPrefixResult {
  std::size_t prefixes = 0;
  std::size_t attacked = 0;
  std::size_t blocks = 0;  // propagate() calls issued

  /// Alarm totals across all prefixes (attacker-implicating vs not).
  std::size_t alarms = 0;
  std::size_t false_alarms = 0;

  /// Per-(attacked prefix, non-attacker AS) outcome tallies — the fig9/10
  /// scoring applied to every attacked prefix and summed.
  std::size_t adopted_false = 0;
  std::size_t adopted_valid = 0;
  std::size_t no_route = 0;

  /// Converged Loc-RIB entries summed over all routers.
  std::size_t routes_installed = 0;
  /// Adj-RIB-In + Loc-RIB entries summed over all routers — the
  /// denominator of the bytes/route footprint gate.
  std::size_t rib_entries = 0;
  /// Adj-RIB-In + Loc-RIB container bytes summed over all routers
  /// (structural storage only; shared interned path/set data is reported
  /// separately by bgp::intern::pool_stats).
  std::size_t rib_bytes = 0;
  /// The same tables under the pre-interning layout, modeled entry by
  /// entry in this run: every entry owns a private deep copy of its
  /// attribute heap (path segments, community values), the three attribute
  /// handles are inline vector headers again (+16 bytes each), and entries
  /// sit in std::map red-black nodes (+32 bytes per entry and per prefix
  /// row; conservative — malloc chunk overhead is ignored).
  /// micro_rib_footprint gates interned bytes/route strictly below this.
  std::size_t baseline_rib_bytes = 0;

  double propagation_seconds = 0.0;  // wall clock inside propagate()

  double adopted_false_fraction() const {
    const std::size_t population = adopted_false + adopted_valid + no_route;
    return population == 0
               ? 0.0
               : static_cast<double>(adopted_false) / static_cast<double>(population);
  }
};

/// The index-th victim prefix: 10.(i/256).(i%256).0/24.
net::Prefix multi_prefix_victim(std::size_t index);

/// Run the workload to its fixpoint. Requires a connected graph with at
/// least origins_per_prefix stubs and enough non-origin ASes to give every
/// attacked prefix a distinct attacker.
MultiPrefixResult run_multi_prefix(const topo::AsGraph& graph,
                                   const MultiPrefixConfig& config);

}  // namespace moas::core
