// Off-line MOAS monitoring (the paper's Section 4.2 deployment alternative).
//
// "one could deploy the MOAS List checking quickly in the operational
//  Internet via an off-line monitoring process, which periodically downloads
//  the BGP routing messages and checks the MOAS List consistency from
//  multiple peers."
//
// The monitor never touches the routers: it reads the Loc-RIBs of a set of
// vantage ASes (the 'multiple peers' it downloads tables from) and raises an
// alarm for every prefix whose effective MOAS lists disagree across
// vantages.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "moas/bgp/network.h"
#include "moas/chaos/engine.h"
#include "moas/core/alarm.h"
#include "moas/obs/metrics.h"

namespace moas::core {

/// Aggregated RFC 7606 error-handling counters for one network: how much
/// damage arrived and which degradation mode absorbed it. Router-side
/// `error_withdraws` counts routes revoked by treat-as-withdraw; the rest
/// come from the chaos engine's scheduled attribute corruptions (zero when
/// `engine` is null). Session-FSM runs surface the same trio as
/// bgp::Session::Stats counters.
///
/// The counters live in the metrics registry ("router.error_withdraws" +
/// "chaos.*"); this struct is a typed view over a registry snapshot, kept
/// for callers that want named fields instead of string lookups.
struct ErrorHandlingSummary {
  std::uint64_t error_withdraws = 0;
  std::uint64_t attr_corruptions = 0;
  std::uint64_t treat_as_withdraws = 0;
  std::uint64_t attr_discards = 0;
  std::uint64_t corrupt_session_resets = 0;
  std::uint64_t poisoned_blocked = 0;

  /// Corruptions a strict RFC 4271 receiver would have answered with a
  /// session reset but revised handling degraded instead.
  std::uint64_t resets_avoided() const { return treat_as_withdraws + attr_discards; }

  /// Read the summary out of a registry snapshot (the names written by
  /// Network::collect_metrics and ChaosEngine::collect_metrics).
  static ErrorHandlingSummary from_metrics(const obs::MetricsRegistry& registry);

  /// Write the summary's counters back under the same registry names.
  void to_metrics(obs::MetricsRegistry& registry) const;
};

/// Collect the summary from a network + (optionally) chaos-engine registry
/// snapshot. Thin shim over collect_metrics + from_metrics.
ErrorHandlingSummary collect_error_handling(const bgp::Network& network,
                                            const chaos::ChaosEngine* engine = nullptr);

/// Render labeled registry snapshots as one aligned error-handling table
/// (one row per label) — the bench harnesses print this so degradation mode
/// is visible at a glance.
std::string error_handling_table_from_metrics(
    const std::vector<std::pair<std::string, obs::MetricsRegistry>>& rows);

/// Struct-field flavor of the table; shim that round-trips each summary
/// through a registry snapshot and renders with the registry printer.
std::string error_handling_table(
    const std::vector<std::pair<std::string, ErrorHandlingSummary>>& rows);

class MoasMonitor {
 public:
  /// Monitor the given vantage ASes (each must exist in any network passed
  /// to scan()).
  explicit MoasMonitor(std::vector<bgp::Asn> vantages);

  /// One monitoring pass over the current routing tables. Returns the
  /// alarms raised by this pass (one per conflicting prefix, attributed to
  /// the first vantage that exposed the conflict).
  std::vector<MoasAlarm> scan(const bgp::Network& network) const;

  /// Network-wide activity summary rendered from Network::collect_metrics()
  /// — the aggregation the scattered per-router Stats never had. One line
  /// per headline metric (updates, withdrawals, best changes, error
  /// handling, transport counters).
  std::string summary(const bgp::Network& network) const;

  const std::vector<bgp::Asn>& vantages() const { return vantages_; }

 private:
  std::vector<bgp::Asn> vantages_;
};

}  // namespace moas::core
