// Off-line MOAS monitoring (the paper's Section 4.2 deployment alternative).
//
// "one could deploy the MOAS List checking quickly in the operational
//  Internet via an off-line monitoring process, which periodically downloads
//  the BGP routing messages and checks the MOAS List consistency from
//  multiple peers."
//
// The monitor never touches the routers: it reads the Loc-RIBs of a set of
// vantage ASes (the 'multiple peers' it downloads tables from) and raises an
// alarm for every prefix whose effective MOAS lists disagree across
// vantages.
#pragma once

#include <vector>

#include "moas/bgp/network.h"
#include "moas/core/alarm.h"

namespace moas::core {

class MoasMonitor {
 public:
  /// Monitor the given vantage ASes (each must exist in any network passed
  /// to scan()).
  explicit MoasMonitor(std::vector<bgp::Asn> vantages);

  /// One monitoring pass over the current routing tables. Returns the
  /// alarms raised by this pass (one per conflicting prefix, attributed to
  /// the first vantage that exposed the conflict).
  std::vector<MoasAlarm> scan(const bgp::Network& network) const;

  const std::vector<bgp::Asn>& vantages() const { return vantages_; }

 private:
  std::vector<bgp::Asn> vantages_;
};

}  // namespace moas::core
