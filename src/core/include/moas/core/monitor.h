// Off-line MOAS monitoring (the paper's Section 4.2 deployment alternative).
//
// "one could deploy the MOAS List checking quickly in the operational
//  Internet via an off-line monitoring process, which periodically downloads
//  the BGP routing messages and checks the MOAS List consistency from
//  multiple peers."
//
// The monitor never touches the routers: it reads the Loc-RIBs of a set of
// vantage ASes (the 'multiple peers' it downloads tables from) and raises an
// alarm for every prefix whose effective MOAS lists disagree across
// vantages.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "moas/bgp/network.h"
#include "moas/chaos/engine.h"
#include "moas/core/alarm.h"

namespace moas::core {

/// Aggregated RFC 7606 error-handling counters for one network: how much
/// damage arrived and which degradation mode absorbed it. Router-side
/// `error_withdraws` counts routes revoked by treat-as-withdraw; the rest
/// come from the chaos engine's scheduled attribute corruptions (zero when
/// `engine` is null). Session-FSM runs surface the same trio as
/// bgp::Session::Stats counters.
struct ErrorHandlingSummary {
  std::uint64_t error_withdraws = 0;
  std::uint64_t attr_corruptions = 0;
  std::uint64_t treat_as_withdraws = 0;
  std::uint64_t attr_discards = 0;
  std::uint64_t corrupt_session_resets = 0;
  std::uint64_t poisoned_blocked = 0;

  /// Corruptions a strict RFC 4271 receiver would have answered with a
  /// session reset but revised handling degraded instead.
  std::uint64_t resets_avoided() const { return treat_as_withdraws + attr_discards; }
};

/// Collect the summary from every router's stats plus (optionally) a chaos
/// engine's corruption counters.
ErrorHandlingSummary collect_error_handling(const bgp::Network& network,
                                            const chaos::ChaosEngine* engine = nullptr);

/// Render labeled summaries as one aligned table (one row per label) — the
/// bench harnesses print this so degradation mode is visible at a glance.
std::string error_handling_table(
    const std::vector<std::pair<std::string, ErrorHandlingSummary>>& rows);

class MoasMonitor {
 public:
  /// Monitor the given vantage ASes (each must exist in any network passed
  /// to scan()).
  explicit MoasMonitor(std::vector<bgp::Asn> vantages);

  /// One monitoring pass over the current routing tables. Returns the
  /// alarms raised by this pass (one per conflicting prefix, attributed to
  /// the first vantage that exposed the conflict).
  std::vector<MoasAlarm> scan(const bgp::Network& network) const;

  const std::vector<bgp::Asn>& vantages() const { return vantages_; }

 private:
  std::vector<bgp::Asn> vantages_;
};

}  // namespace moas::core
