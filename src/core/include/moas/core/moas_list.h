// The MOAS list (the paper's Section 4.1/4.2).
//
// A MOAS list is the set of ASes entitled to originate a prefix. It is
// carried in the standard BGP community attribute: the community X:MLVal
// asserts "AS X may originate this prefix". Consistency between two lists is
// plain set equality — order and duplication never matter.
#pragma once

#include <optional>
#include <string>

#include "moas/bgp/community.h"
#include "moas/bgp/route.h"

namespace moas::core {

using bgp::Asn;
using bgp::AsnSet;

/// MLVal: the reserved low-half community value that tags a MOAS-list
/// member. The draft reserves one of the 2^16 values; we pick 0xff9a
/// ("MOAS" on a phone pad, 6627 decimal — the paper's 4/6/2001 case count).
inline constexpr std::uint16_t kMoasListValue = 0xff9a;

/// True if `c` is a MOAS-list member community.
bool is_moas_community(bgp::Community c);

/// The community encoding of one list member. Requires asn <= 0xffff (the
/// classic attribute has a 2-octet AS field); wider members ride a large
/// community instead — see moas_large_community.
bgp::Community moas_community(Asn asn);

/// True if `c` is a MOAS-list member large community (<asn:MLVal:0>).
bool is_moas_large_community(const bgp::LargeCommunity& c);

/// The RFC 8092 encoding of one list member: <asn:MLVal:0>, valid for the
/// full 4-octet ASN range.
bgp::LargeCommunity moas_large_community(Asn asn);

/// Encode a full MOAS list into classic communities. Requires every member
/// <= 0xffff; mixed-width lists go through the PathAttributes overload of
/// attach_moas_list.
bgp::CommunitySet encode_moas_list(const AsnSet& origins);

/// Extract the MOAS list carried on a community set (empty if none).
AsnSet decode_moas_list(const bgp::CommunitySet& communities);

/// The full MOAS list of a route's attributes: classic members unioned with
/// large-community members.
AsnSet decode_moas_list(const bgp::PathAttributes& attrs);

/// Merge a MOAS list into an existing community set, replacing any MOAS
/// communities already present and leaving other communities untouched.
/// Requires every member <= 0xffff.
void attach_moas_list(bgp::CommunitySet& communities, const AsnSet& origins);

/// Width-splitting attach: members that fit 2 octets go to the classic
/// attribute, wider ones to large communities. Stale MOAS members are
/// replaced in BOTH attributes, other communities stay untouched.
void attach_moas_list(bgp::PathAttributes& attrs, const AsnSet& origins);

/// The list a checker must use for a route (the paper's footnote 3):
/// the explicit list if the route carries one, otherwise the implicit
/// {origin candidates} of the AS path.
AsnSet effective_moas_list(const bgp::Route& route);

/// True if the route carries an explicit MOAS list.
bool has_explicit_moas_list(const bgp::Route& route);

/// Set equality — "the order in the list may differ, but the set of ASes
/// included in each route announcement must be identical".
bool lists_consistent(const AsnSet& a, const AsnSet& b);

/// "{1, 2, 3}" for diagnostics.
std::string list_to_string(const AsnSet& list);

}  // namespace moas::core
