#include "moas/core/detector.h"

#include <algorithm>

#include "moas/obs/metrics.h"
#include "moas/util/assert.h"

namespace moas::core {

namespace {

bool intersects(const AsnSet& a, const AsnSet& b) {
  return std::any_of(a.begin(), a.end(), [&](Asn x) { return b.contains(x); });
}

AsnSet difference(const AsnSet& a, const AsnSet& b) {
  AsnSet out;
  for (Asn x : a) {
    if (!b.contains(x)) out.insert(x);
  }
  return out;
}

bool subset(const AsnSet& a, const AsnSet& b) {
  return std::all_of(a.begin(), a.end(), [&](Asn x) { return b.contains(x); });
}

}  // namespace

MoasDetector::MoasDetector(std::shared_ptr<AlarmLog> alarms,
                           std::shared_ptr<OriginResolver> resolver)
    : MoasDetector(std::move(alarms), std::move(resolver), Config()) {}

MoasDetector::MoasDetector(std::shared_ptr<AlarmLog> alarms,
                           std::shared_ptr<OriginResolver> resolver, Config config)
    : alarms_(std::move(alarms)), resolver_(std::move(resolver)), config_(config) {
  MOAS_REQUIRE(alarms_ != nullptr, "detector needs an alarm log");
}

bool MoasDetector::accept(const bgp::Route& route, bgp::Asn from_peer,
                          bgp::RouterContext& ctx) {
  ++stats_.routes_checked;
  const net::Prefix prefix = route.prefix;
  PrefixState& state = state_[prefix];

  const AsnSet origins = route.origin_candidates();
  const AsnSet incoming_list = effective_moas_list(route);

  // Fast path: the origin was already identified as false. The rejected
  // peer is one more witness asserting the banned origin — remember it so
  // the ban outlives the peer that originally triggered it.
  if (intersects(origins, state.banned)) {
    for (Asn asn : origins) {
      if (state.banned.contains(asn)) state.banned_support[asn].insert(from_peer);
    }
    if (config_.alarm_on_banned_repeat) {
      // Needs no investigation — the rejection below *is* the response.
      const std::size_t id = raise(ctx, prefix, state.reference, incoming_list, origins,
                                   MoasAlarm::Cause::BannedOriginSeen);
      alarms_->settle(id, MoasAlarm::State::Resolved, ctx.current_time());
    }
    ++stats_.rejections;
    return false;
  }

  // Self-consistency: a route carrying an explicit list must include its
  // own origin; otherwise it is bogus on its face.
  if (config_.check_origin_in_list && has_explicit_moas_list(route) &&
      !origins.empty() && !subset(origins, incoming_list)) {
    const std::size_t id = raise(ctx, prefix, state.reference, incoming_list, origins,
                                 MoasAlarm::Cause::OriginNotInList);
    alarms_->settle(id, MoasAlarm::State::Resolved, ctx.current_time());
    ++stats_.rejections;
    return false;
  }

  if (state.reference.empty()) {
    // Cold state for this prefix — a genuinely first announcement, or
    // memory purged by churn (supporting peer flapped away, router
    // restarted). Before adopting blindly, rebuild the reference from the
    // origins of routes already sitting in the Adj-RIB-In: if the RIB holds
    // a conflicting origin, this is a latent MOAS case to resolve, not a
    // fresh prefix.
    const AsnSet rib_origins = ctx.accepted_origins(prefix);
    if (rib_origins.empty()) {
      // First announcement for this prefix: adopt its list as the reference
      // ("is simply accepted if this is the first and only announcement").
      state.reference = incoming_list;
      state.supporters.insert(from_peer);
      return true;
    }
    state.reference = rib_origins;  // supporters stay empty: evidence-derived
  }

  if (lists_consistent(state.reference, incoming_list)) {
    state.supporters.insert(from_peer);
    return true;
  }

  return resolve_conflict(route, from_peer, ctx, state, incoming_list);
}

bool MoasDetector::resolve_conflict(const bgp::Route& route, bgp::Asn from_peer,
                                    bgp::RouterContext& ctx, PrefixState& state,
                                    const AsnSet& incoming_list) {
  const net::Prefix prefix = route.prefix;
  const AsnSet origins = route.origin_candidates();

  const std::size_t alarm_id = raise(ctx, prefix, state.reference, incoming_list, origins,
                                     MoasAlarm::Cause::ListMismatch);

  if (async_) {
    // Degraded mode: investigation takes wall-clock time now. The alarm goes
    // Pending, the route is accepted (availability never regresses while we
    // wait), and nothing is evicted or overwritten until an answer arrives —
    // the resolution completion does the banning/purging retroactively.
    alarms_->settle(alarm_id, MoasAlarm::State::Pending, ctx.current_time());
    auto [it, inserted] = pending_.try_emplace(prefix);
    PendingConflict& pc = it->second;
    pc.ctx = &ctx;
    pc.alarm_ids.push_back(alarm_id);
    for (Asn asn : origins) pc.asserted[asn].insert(from_peer);
    for (Asn asn : incoming_list) pc.asserted[asn].insert(from_peer);
    if (inserted) {
      // First conflict for this prefix: also implicate the current reference
      // and its supporters, then launch exactly one resolution. Later
      // conflicting routes for the same prefix fold into this request.
      for (Asn asn : state.reference) {
        AsnSet& support = pc.asserted[asn];
        for (Asn peer : state.supporters) support.insert(peer);
      }
      pc.generation = next_generation_++;
      const std::uint64_t generation = pc.generation;
      async_->request(prefix, [this, prefix, generation](const AsyncResolver::Outcome& o) {
        on_resolution(prefix, generation, o);
      });
    }
    ++stats_.degraded_accepts;
    return true;
  }

  std::optional<AsnSet> truth;
  if (resolver_) truth = resolver_->resolve(prefix);

  if (!truth) {
    // Investigation came up empty: behave like plain BGP (accept) so the
    // mechanism never makes availability worse, but keep the alarm on
    // record (explicitly Expired). Do not overwrite the reference — later
    // evidence may still resolve the conflict.
    ++stats_.resolutions_failed;
    alarms_->settle(alarm_id, MoasAlarm::State::Expired, ctx.current_time());
    if (obs::trace_wants(trace_, obs::TraceLevel::Summary)) {
      trace_->emit(obs::TraceEvent(obs::EventKind::AlarmDropped, ctx.self())
                       .with_prefix(prefix)
                       .with_note("resolution-failed"));
    }
    return true;
  }

  // Ban every origin we have seen asserted that is not actually valid, and
  // purge any such routes that made it into the RIB before the conflict
  // surfaced. The sender of this route asserts its origins and list; the
  // old reference is asserted by its supporters.
  std::map<Asn, AsnSet> asserted;
  for (Asn asn : origins) asserted[asn].insert(from_peer);
  for (Asn asn : incoming_list) asserted[asn].insert(from_peer);
  apply_truth(prefix, ctx, state, *truth, asserted, {alarm_id});

  if (!subset(origins, *truth)) {
    ++stats_.rejections;
    return false;
  }
  state.supporters.insert(from_peer);
  return true;
}

void MoasDetector::apply_truth(const net::Prefix& prefix, bgp::RouterContext& ctx,
                               PrefixState& state, const AsnSet& truth,
                               const std::map<Asn, AsnSet>& asserted,
                               const std::vector<std::size_t>& alarm_ids) {
  AsnSet implicated = state.reference;
  for (const auto& [asn, peers] : asserted) implicated.insert(asn);
  const AsnSet false_origins = difference(implicated, truth);
  for (Asn asn : false_origins) {
    // Tie the ban to the peers that asserted the false origin; when the
    // *old* reference was the lie, the peers that had backed it.
    AsnSet support;
    if (auto it = asserted.find(asn); it != asserted.end()) support = it->second;
    if (state.reference.contains(asn)) {
      for (Asn peer : state.supporters) support.insert(peer);
    }
    if (support.empty()) {
      // Last resort so the ban has a live witness: the first peer that
      // asserted anything in this conflict. Evidence-derived entries carry
      // empty peer-sets, so scan for a non-empty one rather than blindly
      // dereferencing the first.
      for (const auto& [other, peers] : asserted) {
        if (!peers.empty()) {
          support.insert(*peers.begin());
          break;
        }
      }
    }
    if (support.empty()) continue;  // no live witness anywhere: don't ban
    state.banned.insert(asn);
    AsnSet& dst = state.banned_support[asn];
    for (Asn peer : support) dst.insert(peer);
  }
  state.reference = truth;
  state.supporters.clear();

  if (obs::trace_wants(trace_, obs::TraceLevel::Summary)) {
    trace_->emit(obs::TraceEvent(obs::EventKind::AlarmResolved, ctx.self())
                     .with_prefix(prefix)
                     .with_values(static_cast<std::int64_t>(false_origins.size())));
  }

  if (!false_origins.empty()) {
    stats_.purges += ctx.invalidate_origins(prefix, false_origins);
  }
  for (std::size_t id : alarm_ids) {
    alarms_->settle(id, MoasAlarm::State::Resolved, ctx.current_time());
  }
}

void MoasDetector::on_resolution(const net::Prefix& prefix, std::uint64_t generation,
                                 const AsyncResolver::Outcome& outcome) {
  auto it = pending_.find(prefix);
  if (it == pending_.end() || it->second.generation != generation) return;
  PendingConflict pc = std::move(it->second);
  pending_.erase(it);
  bgp::RouterContext& ctx = *pc.ctx;

  if (outcome.fate != AsyncResolver::Fate::Resolved || !outcome.answer.has_value()) {
    // Every source failed or the budget ran out: the conflict stays open,
    // and every alarm folded into it expires explicitly — none is lost.
    ++stats_.resolutions_failed;
    for (std::size_t id : pc.alarm_ids) {
      alarms_->settle(id, MoasAlarm::State::Expired, ctx.current_time());
    }
    if (obs::trace_wants(trace_, obs::TraceLevel::Summary)) {
      trace_->emit(obs::TraceEvent(obs::EventKind::AlarmDropped, ctx.self())
                       .with_prefix(prefix)
                       .with_note(core::to_string(outcome.fate)));
    }
    return;
  }

  auto sit = state_.find(prefix);
  if (sit == state_.end()) {
    // The prefix state was pruned (peer churn, error-withdraw) while the
    // answer was in flight: the detector deliberately forgot this prefix, so
    // don't resurrect state from stale peer attribution. The alarms still
    // settle explicitly — the investigation did conclude.
    for (std::size_t id : pc.alarm_ids) {
      alarms_->settle(id, MoasAlarm::State::Resolved, ctx.current_time());
    }
    if (obs::trace_wants(trace_, obs::TraceLevel::Summary)) {
      trace_->emit(obs::TraceEvent(obs::EventKind::AlarmResolved, ctx.self())
                       .with_prefix(prefix)
                       .with_note("state-pruned"));
    }
    return;
  }
  apply_truth(prefix, ctx, sit->second, *outcome.answer, pc.asserted, pc.alarm_ids);
}

std::size_t MoasDetector::raise(bgp::RouterContext& ctx, const net::Prefix& prefix,
                                const AsnSet& reference, const AsnSet& observed,
                                const AsnSet& offending, MoasAlarm::Cause cause) {
  ++stats_.alarms_raised;
  MoasAlarm alarm;
  alarm.at = ctx.current_time();
  alarm.observer = ctx.self();
  alarm.prefix = prefix;
  alarm.reference_list = reference;
  alarm.observed_list = observed;
  alarm.offending_origins = offending;
  alarm.cause = cause;
  return alarms_->record(std::move(alarm));
}

void MoasDetector::on_peer_down(bgp::Asn peer, bgp::RouterContext& /*ctx*/) {
  for (auto it = state_.begin(); it != state_.end();) {
    PrefixState& state = it->second;
    state.supporters.erase(peer);
    // With the last supporter gone, the reference rests on nothing: the
    // peers will cold-announce and the list is re-adopted from scratch.
    if (state.supporters.empty()) state.reference.clear();
    for (auto bit = state.banned_support.begin(); bit != state.banned_support.end();) {
      bit->second.erase(peer);
      if (bit->second.empty()) {
        state.banned.erase(bit->first);
        bit = state.banned_support.erase(bit);
      } else {
        ++bit;
      }
    }
    if (state.reference.empty() && state.banned.empty()) {
      it = state_.erase(it);
    } else {
      ++it;
    }
  }
}

void MoasDetector::on_error_withdraw(const net::Prefix& prefix, bgp::Asn from_peer,
                                     bgp::RouterContext& ctx) {
  auto it = state_.find(prefix);
  if (it == state_.end()) return;
  PrefixState& state = it->second;
  state.supporters.erase(from_peer);
  if (state.supporters.empty()) {
    // The reference rests on nothing the detector can still point to.
    // Rebuild it from routes that survived in the Adj-RIB-In (the router
    // already dropped the error-withdrawn one), so the next announcement is
    // checked against real evidence rather than adopted blindly — and never
    // against anything salvaged from the damaged message.
    state.reference = ctx.accepted_origins(prefix);
  }
  if (state.reference.empty() && state.banned.empty() && state.supporters.empty()) {
    state_.erase(it);
  }
}

void MoasDetector::on_reset(bgp::RouterContext& ctx) {
  // The crash wipes detector memory, so in-flight investigations have
  // nothing to apply to: their alarms expire explicitly (never silently)
  // and stale completions no-op on the generation guard.
  for (auto& [prefix, pc] : pending_) {
    ++stats_.resolutions_failed;
    for (std::size_t id : pc.alarm_ids) {
      alarms_->settle(id, MoasAlarm::State::Expired, ctx.current_time());
    }
  }
  pending_.clear();
  state_.clear();
}

void MoasDetector::collect_metrics(obs::MetricsRegistry& registry) const {
  registry.count("detector.routes_checked", stats_.routes_checked);
  registry.count("detector.alarms_raised", stats_.alarms_raised);
  registry.count("detector.rejections", stats_.rejections);
  registry.count("detector.purges", stats_.purges);
  registry.count("detector.resolutions_failed", stats_.resolutions_failed);
  registry.count("detector.degraded_accepts", stats_.degraded_accepts);
}

AsnSet MoasDetector::reference_list(const net::Prefix& prefix) const {
  auto it = state_.find(prefix);
  return it == state_.end() ? AsnSet{} : it->second.reference;
}

AsnSet MoasDetector::banned_origins(const net::Prefix& prefix) const {
  auto it = state_.find(prefix);
  return it == state_.end() ? AsnSet{} : it->second.banned;
}

}  // namespace moas::core
