#include "moas/core/async_resolver.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "moas/chaos/registry_outage.h"
#include "moas/util/assert.h"

namespace moas::core {

namespace {

/// Exponential draw with the given mean, floored away from zero so a lookup
/// always takes observable time (same idiom as the chaos schedules).
double exponential(util::Rng& rng, double mean) {
  const double u = rng.uniform01();
  return std::max(1e-6, -mean * std::log1p(-u));
}

}  // namespace

const char* to_string(AsyncResolver::Fate fate) {
  switch (fate) {
    case AsyncResolver::Fate::Resolved: return "resolved";
    case AsyncResolver::Fate::Expired: return "expired";
    case AsyncResolver::Fate::SourcesExhausted: return "sources-exhausted";
    case AsyncResolver::Fate::QuorumConflict: return "quorum-conflict";
  }
  return "?";
}

const char* to_string(AsyncResolver::BreakerState state) {
  switch (state) {
    case AsyncResolver::BreakerState::Closed: return "closed";
    case AsyncResolver::BreakerState::Open: return "open";
    case AsyncResolver::BreakerState::HalfOpen: return "half-open";
  }
  return "?";
}

AsyncResolver::AsyncResolver(sim::EventQueue& clock, Config config)
    : clock_(clock), config_(config), rng_(config.seed) {
  MOAS_REQUIRE(config_.request_deadline > 0.0, "request deadline must be positive");
  MOAS_REQUIRE(config_.quorum >= 1, "quorum must be at least one source");
}

std::size_t AsyncResolver::add_source(std::shared_ptr<OriginResolver> backend) {
  return add_source(std::move(backend), config_.source);
}

std::size_t AsyncResolver::add_source(std::shared_ptr<OriginResolver> backend,
                                      SourceConfig config) {
  MOAS_REQUIRE(backend != nullptr, "fallback chain entries must be non-null");
  MOAS_REQUIRE(config.latency_mean > 0.0 && config.timeout > 0.0,
               "source latency/timeout must be positive");
  MOAS_REQUIRE(config.max_attempts >= 1, "a source gets at least one attempt");
  Source source;
  source.name = backend->name();
  source.backend = std::move(backend);
  source.config = config;
  sources_.push_back(std::move(source));
  return sources_.size() - 1;
}

AsyncResolver::BreakerState AsyncResolver::breaker_state(std::size_t source) const {
  MOAS_REQUIRE(source < sources_.size(), "breaker_state: no such source");
  return sources_[source].breaker;
}

void AsyncResolver::trace_event(obs::EventKind kind, const Request& request,
                                const std::string& note, std::int64_t value) {
  if (!obs::trace_wants(trace_, obs::TraceLevel::Summary)) return;
  trace_->emit(obs::TraceEvent(kind, /*actor=*/0)
                   .with_prefix(request.prefix)
                   .with_note(note)
                   .with_values(value));
}

std::uint64_t AsyncResolver::request(const net::Prefix& prefix, Callback callback) {
  MOAS_REQUIRE(!sources_.empty(), "async resolver needs at least one source");
  MOAS_REQUIRE(callback != nullptr, "async resolution needs a completion callback");
  const std::uint64_t id = next_id_++;
  Request request;
  request.prefix = prefix;
  request.callback = std::move(callback);
  request.started = clock_.now();
  request.deadline = request.started + config_.request_deadline;
  const double deadline = request.deadline;
  requests_.emplace(id, std::move(request));
  ++counters_.requests;
  // The absolute budget: whatever state the request is in when this fires,
  // it expires. A request that completed earlier erased its map entry, so
  // the timer no-ops.
  clock_.schedule_at(deadline, [this, id] {
    auto it = requests_.find(id);
    if (it == requests_.end()) return;
    complete(id, Outcome{std::nullopt, Fate::Expired, {}, 0.0, false});
  });
  // start_attempt never invokes the callback synchronously (complete()
  // defers it through the clock), so starting inline is re-entrancy-safe.
  start_attempt(id);
  return id;
}

void AsyncResolver::start_attempt(std::uint64_t id) {
  auto it = requests_.find(id);
  if (it == requests_.end()) return;
  Request& request = it->second;
  if (request.source >= sources_.size()) {
    exhausted(id, request);
    return;
  }
  Source& source = sources_[request.source];
  const double now = clock_.now();

  if (source.breaker == BreakerState::Open) {
    if (now < source.open_until) {
      // Fail fast: don't burn the request's deadline probing a source that
      // is known-down; move along the chain immediately.
      ++counters_.breaker_fast_fails;
      advance_source(id, request);
      return;
    }
    source.breaker = BreakerState::HalfOpen;
    source.probing_request = id;
    ++counters_.breaker_half_opens;
    trace_event(obs::EventKind::ResolverBreaker, request,
                source.name + ":half-open");
  } else if (source.breaker == BreakerState::HalfOpen) {
    if (source.probing_request != 0 && source.probing_request != id) {
      // One canary at a time: while another request's half-open probe is in
      // flight, everyone else fails fast down the chain instead of piling a
      // thundering herd onto a source that is barely recovering.
      ++counters_.breaker_fast_fails;
      advance_source(id, request);
      return;
    }
    // The previous canary's request expired mid-probe: claim the probe.
    source.probing_request = id;
  }

  ++counters_.attempts;
  trace_event(obs::EventKind::ResolverRequest, request, source.name,
              static_cast<std::int64_t>(request.attempt + 1));

  double latency = exponential(rng_, source.config.latency_mean);
  bool lost = false;
  if (outage_ != nullptr) {
    latency *= outage_->latency_factor(now);
    lost = outage_->down(request.source, now);
  }
  const std::uint64_t epoch = ++request.epoch;

  if (lost || latency > source.config.timeout) {
    if (lost) ++counters_.outage_drops;
    // The answer never arrives (outage) or arrives too late (slow lookup):
    // either way the caller sees a timeout after the full per-attempt wait.
    clock_.schedule_after(source.config.timeout, [this, id, epoch] {
      auto it = requests_.find(id);
      if (it == requests_.end() || it->second.epoch != epoch) return;
      ++counters_.timeouts;
      trace_event(obs::EventKind::ResolverTimeout, it->second,
                  sources_[it->second.source].name);
      attempt_failed(id, it->second);
    });
    return;
  }

  clock_.schedule_after(latency, [this, id, epoch] {
    auto it = requests_.find(id);
    if (it == requests_.end() || it->second.epoch != epoch) return;
    Request& request = it->second;
    auto answer = sources_[request.source].backend->resolve(request.prefix);
    if (answer) {
      attempt_succeeded(id, request, std::move(*answer));
    } else {
      attempt_failed(id, request);
    }
  });
}

void AsyncResolver::trip_breaker(Source& source) {
  source.breaker = BreakerState::Open;
  source.open_until = clock_.now() + source.config.breaker_cooldown;
  ++counters_.breaker_trips;
}

void AsyncResolver::note_success(Source& source) {
  source.consecutive_failures = 0;
  if (source.breaker != BreakerState::Closed) {
    source.breaker = BreakerState::Closed;
    ++counters_.breaker_closes;
  }
}

double AsyncResolver::backoff_delay(const SourceConfig& config, std::size_t attempt) {
  double delay = config.backoff_base;
  for (std::size_t i = 0; i < attempt && delay < config.backoff_cap; ++i) {
    delay *= config.backoff_factor;
  }
  delay = std::min(delay, config.backoff_cap);
  if (config.backoff_jitter > 0.0) delay += rng_.uniform01() * config.backoff_jitter;
  return delay;
}

void AsyncResolver::attempt_failed(std::uint64_t id, Request& request) {
  Source& source = sources_[request.source];
  if (source.probing_request == id) source.probing_request = 0;
  ++source.consecutive_failures;

  bool tripped = false;
  if (source.breaker == BreakerState::HalfOpen) {
    // The probe failed: straight back to Open for another cooldown.
    trip_breaker(source);
    trace_event(obs::EventKind::ResolverBreaker, request, source.name + ":open");
    tripped = true;
  } else if (source.config.breaker_threshold > 0 &&
             source.consecutive_failures >= source.config.breaker_threshold &&
             source.breaker == BreakerState::Closed) {
    trip_breaker(source);
    trace_event(obs::EventKind::ResolverBreaker, request, source.name + ":open");
    tripped = true;
  }

  const double backoff = backoff_delay(source.config, request.attempt);
  const bool attempts_left = request.attempt + 1 < source.config.max_attempts;
  const bool budget_left = clock_.now() + backoff < request.deadline;
  if (!tripped && attempts_left && budget_left) {
    ++request.attempt;
    ++counters_.retries;
    trace_event(obs::EventKind::ResolverRetry, request, source.name,
                static_cast<std::int64_t>(request.attempt + 1));
    const std::uint64_t epoch = ++request.epoch;
    clock_.schedule_after(backoff, [this, id, epoch] {
      auto it = requests_.find(id);
      if (it == requests_.end() || it->second.epoch != epoch) return;
      start_attempt(id);
    });
    return;
  }
  advance_source(id, request);
}

void AsyncResolver::attempt_succeeded(std::uint64_t id, Request& request,
                                      bgp::AsnSet answer) {
  Source& source = sources_[request.source];
  if (source.probing_request == id) source.probing_request = 0;
  const bool was_open = source.breaker != BreakerState::Closed;
  note_success(source);
  if (was_open) {
    trace_event(obs::EventKind::ResolverBreaker, request, source.name + ":closed");
  }
  request.answers.emplace_back(source.name, std::move(answer));

  // Quorum rule: complete as soon as any answer value has enough independent
  // votes. The winning source is the first that produced that value.
  const bgp::AsnSet& candidate = request.answers.back().second;
  std::size_t votes = 0;
  std::string first_source;
  for (const auto& [name, value] : request.answers) {
    if (value == candidate) {
      if (votes == 0) first_source = name;
      ++votes;
    }
  }
  if (votes >= config_.quorum) {
    complete(id, Outcome{candidate, Fate::Resolved, first_source, 0.0, false});
    return;
  }
  advance_source(id, request);
}

void AsyncResolver::advance_source(std::uint64_t id, Request& request) {
  ++request.source;
  request.attempt = 0;
  ++request.epoch;  // orphan any timer still pointed at the old source
  if (request.source >= sources_.size()) {
    exhausted(id, request);
    return;
  }
  ++counters_.fallbacks;
  trace_event(obs::EventKind::ResolverFallback, request,
              sources_[request.source].name);
  start_attempt(id);
}

void AsyncResolver::exhausted(std::uint64_t id, Request& request) {
  if (!request.answers.empty()) {
    // Sources answered but no value reached the quorum: conflicting data is
    // worse than no data, so the caller gets an explicit conflict, not a
    // coin-flip answer — and not a (possibly attacker-era) stale answer that
    // would silently mask what the live sources just disagreed about.
    ++counters_.quorum_conflicts;
    complete(id, Outcome{std::nullopt, Fate::QuorumConflict, {}, 0.0, false});
    return;
  }
  if (config_.stale_cache) {
    // Last resort only when no live source produced any answer at all.
    auto it = stale_cache_.find(request.prefix);
    if (it != stale_cache_.end()) {
      ++counters_.stale_served;
      complete(id, Outcome{it->second, Fate::Resolved, "stale-cache", 0.0, true});
      return;
    }
  }
  complete(id, Outcome{std::nullopt, Fate::SourcesExhausted, {}, 0.0, false});
}

void AsyncResolver::complete(std::uint64_t id, Outcome outcome) {
  auto it = requests_.find(id);
  MOAS_REQUIRE(it != requests_.end(), "completing a request that is not in flight");
  Request request = std::move(it->second);
  requests_.erase(it);
  // If this request held a half-open probe (e.g. its deadline expired while
  // the probe was still in flight), release it so the next request through
  // the chain can become the canary instead of the breaker wedging.
  for (Source& source : sources_) {
    if (source.probing_request == id) source.probing_request = 0;
  }

  outcome.latency = clock_.now() - request.started;
  latency_.add(outcome.latency);
  switch (outcome.fate) {
    case Fate::Resolved: ++counters_.resolved; break;
    case Fate::Expired: ++counters_.expired; break;
    case Fate::SourcesExhausted: ++counters_.exhausted; break;
    case Fate::QuorumConflict: break;  // counted at the decision site
  }

  if (outcome.fate == Fate::Resolved && !outcome.stale && config_.stale_cache &&
      outcome.answer.has_value()) {
    auto [entry, inserted] = stale_cache_.insert_or_assign(request.prefix, *outcome.answer);
    (void)entry;
    if (inserted) {
      stale_order_.push_back(request.prefix);
      if (config_.stale_cache_max > 0 && stale_cache_.size() > config_.stale_cache_max) {
        stale_cache_.erase(stale_order_.front());
        stale_order_.erase(stale_order_.begin());
      }
    }
  }

  // Deliver through the clock so completions are never re-entrant: the
  // callback runs after the current event finishes, at the same timestamp.
  clock_.schedule_after(0.0, [callback = std::move(request.callback),
                              outcome = std::move(outcome)] { callback(outcome); });
}

void AsyncResolver::collect_metrics(obs::MetricsRegistry& registry) const {
  for (const Source& source : sources_) {
    source.backend->collect_metrics(registry);
  }
  registry.count("resolver.requests", counters_.requests);
  registry.count("resolver.attempts", counters_.attempts);
  registry.count("resolver.timeouts", counters_.timeouts);
  registry.count("resolver.retries", counters_.retries);
  registry.count("resolver.fallbacks", counters_.fallbacks);
  registry.count("resolver.breaker_trips", counters_.breaker_trips);
  registry.count("resolver.breaker_fast_fails", counters_.breaker_fast_fails);
  registry.count("resolver.breaker_half_opens", counters_.breaker_half_opens);
  registry.count("resolver.breaker_closes", counters_.breaker_closes);
  registry.count("resolver.outage_drops", counters_.outage_drops);
  registry.count("resolver.resolved", counters_.resolved);
  registry.count("resolver.expired", counters_.expired);
  registry.count("resolver.exhausted", counters_.exhausted);
  registry.count("resolver.quorum_conflicts", counters_.quorum_conflicts);
  registry.count("resolver.stale_served", counters_.stale_served);
  registry.histogram("resolver.latency", kResolverLatencySpec).merge(latency_);
}

}  // namespace moas::core
