#include "moas/core/moasrr.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "moas/util/assert.h"
#include "moas/util/strings.h"

namespace moas::core {

const char* to_string(DnssecState state) {
  switch (state) {
    case DnssecState::Unsigned: return "unsigned";
    case DnssecState::Signed: return "signed";
    case DnssecState::BadSignature: return "bad-signature";
  }
  return "?";
}

std::string moasrr_owner_name(const net::Prefix& prefix) {
  const std::uint32_t addr = prefix.network().value();
  const unsigned whole_octets = prefix.length() / 8;
  std::string name;
  if (prefix.length() % 8 != 0) {
    // RFC 2317-flavored label for non-octet boundaries.
    const unsigned octet = (addr >> (24 - 8 * whole_octets)) & 0xffu;
    name += std::to_string(octet) + "-" + std::to_string(prefix.length()) + ".";
  }
  for (unsigned i = whole_octets; i-- > 0;) {
    name += std::to_string((addr >> (24 - 8 * i)) & 0xffu);
    name += '.';
  }
  name += "in-addr.arpa";
  return name;
}

std::string format_moasrr(const MoasRr& record) {
  MOAS_REQUIRE(!record.origins.empty(), "MOASRR needs at least one origin");
  std::ostringstream os;
  os << moasrr_owner_name(record.prefix) << ' ' << record.ttl << " IN MOASRR "
     << record.prefix.to_string();
  for (bgp::Asn asn : record.origins) os << ' ' << asn;
  if (record.dnssec != DnssecState::Unsigned) {
    os << " ;dnssec=" << to_string(record.dnssec);
  }
  return os.str();
}

std::optional<MoasRr> parse_moasrr(const std::string& line) {
  // Split off a possible ";dnssec=..." comment first.
  std::string body = line;
  DnssecState dnssec = DnssecState::Unsigned;
  if (const auto pos = line.find(';'); pos != std::string::npos) {
    body = line.substr(0, pos);
    const auto comment = util::trim(line.substr(pos + 1));
    if (comment.rfind("dnssec=", 0) == 0) {
      const auto value = comment.substr(7);
      if (value == "signed") {
        dnssec = DnssecState::Signed;
      } else if (value == "bad-signature") {
        dnssec = DnssecState::BadSignature;
      } else if (value != "unsigned") {
        return std::nullopt;
      }
    }
  }

  std::istringstream is{body};
  std::string owner;
  std::uint32_t ttl = 0;
  std::string klass;
  std::string type;
  std::string prefix_text;
  is >> owner >> ttl >> klass >> type >> prefix_text;
  if (is.fail() || klass != "IN" || type != "MOASRR") return std::nullopt;
  const auto prefix = net::Prefix::parse(prefix_text);
  if (!prefix) return std::nullopt;
  if (owner != moasrr_owner_name(*prefix)) return std::nullopt;  // zone consistency

  MoasRr record;
  record.prefix = *prefix;
  record.ttl = ttl;
  record.dnssec = dnssec;
  std::uint64_t asn = 0;
  while (is >> asn) {
    if (asn == 0 || asn > ~bgp::Asn{0}) return std::nullopt;
    record.origins.insert(static_cast<bgp::Asn>(asn));
  }
  if (!is.eof()) return std::nullopt;  // trailing garbage
  if (record.origins.empty()) return std::nullopt;
  return record;
}

void MoasrrZone::add(MoasRr record) {
  MOAS_REQUIRE(!record.origins.empty(), "MOASRR needs at least one origin");
  auto it = std::find_if(records_.begin(), records_.end(), [&](const MoasRr& r) {
    return r.prefix == record.prefix;
  });
  if (it != records_.end()) {
    *it = std::move(record);
  } else {
    records_.push_back(std::move(record));
  }
}

const MoasRr* MoasrrZone::lookup(const net::Prefix& prefix) const {
  auto it = std::find_if(records_.begin(), records_.end(),
                         [&](const MoasRr& r) { return r.prefix == prefix; });
  return it == records_.end() ? nullptr : &*it;
}

void MoasrrZone::save(std::ostream& os) const {
  os << "; moasguard MOASRR zone, " << records_.size() << " records\n";
  for (const MoasRr& record : records_) os << format_moasrr(record) << '\n';
}

MoasrrZone MoasrrZone::load(std::istream& is) {
  MoasrrZone zone;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == ';') continue;
    auto record = parse_moasrr(std::string(trimmed));
    MOAS_REQUIRE(record.has_value(),
                 "malformed MOASRR record at line " + std::to_string(lineno));
    zone.add(std::move(*record));
  }
  return zone;
}

}  // namespace moas::core
