#include "moas/core/moas_list.h"

#include <vector>

#include "moas/util/assert.h"

namespace moas::core {

bool is_moas_community(bgp::Community c) { return c.value() == kMoasListValue; }

bgp::Community moas_community(Asn asn) {
  MOAS_REQUIRE(asn <= 0xffffu, "MOAS community encoding needs a 2-octet ASN");
  MOAS_REQUIRE(asn != bgp::kNoAs, "MOAS list member must be a real ASN");
  return bgp::Community(static_cast<std::uint16_t>(asn), kMoasListValue);
}

bgp::CommunitySet encode_moas_list(const AsnSet& origins) {
  bgp::CommunitySet out;
  for (Asn asn : origins) out.add(moas_community(asn));
  return out;
}

bool is_moas_large_community(const bgp::LargeCommunity& c) {
  return c.data1() == kMoasListValue && c.data2() == 0;
}

bgp::LargeCommunity moas_large_community(Asn asn) {
  MOAS_REQUIRE(asn != bgp::kNoAs, "MOAS list member must be a real ASN");
  return bgp::LargeCommunity(asn, kMoasListValue, 0);
}

AsnSet decode_moas_list(const bgp::CommunitySet& communities) {
  AsnSet out;
  for (bgp::Community c : communities.values()) {
    if (is_moas_community(c)) out.insert(c.asn());
  }
  return out;
}

AsnSet decode_moas_list(const bgp::PathAttributes& attrs) {
  AsnSet out = decode_moas_list(attrs.communities);
  for (const bgp::LargeCommunity& c : attrs.large_communities.values()) {
    if (is_moas_large_community(c)) out.insert(c.global_admin());
  }
  return out;
}

void attach_moas_list(bgp::CommunitySet& communities, const AsnSet& origins) {
  std::vector<bgp::Community> stale;
  for (bgp::Community c : communities.values()) {
    if (is_moas_community(c)) stale.push_back(c);
  }
  for (bgp::Community c : stale) communities.remove(c);
  for (Asn asn : origins) communities.add(moas_community(asn));
}

void attach_moas_list(bgp::PathAttributes& attrs, const AsnSet& origins) {
  // Replace stale members in both attributes before splitting the new list
  // by width — otherwise a member that changed width would survive in the
  // attribute it no longer belongs to.
  std::vector<bgp::Community> stale;
  for (bgp::Community c : attrs.communities.values()) {
    if (is_moas_community(c)) stale.push_back(c);
  }
  for (bgp::Community c : stale) attrs.communities.remove(c);
  std::vector<bgp::LargeCommunity> stale_large;
  for (const bgp::LargeCommunity& c : attrs.large_communities.values()) {
    if (is_moas_large_community(c)) stale_large.push_back(c);
  }
  for (const bgp::LargeCommunity& c : stale_large) attrs.large_communities.remove(c);
  for (Asn asn : origins) {
    if (asn <= 0xffffu) {
      attrs.communities.add(moas_community(asn));
    } else {
      attrs.large_communities.add(moas_large_community(asn));
    }
  }
}

AsnSet effective_moas_list(const bgp::Route& route) {
  AsnSet explicit_list = decode_moas_list(route.attrs);
  if (!explicit_list.empty()) return explicit_list;
  return route.origin_candidates();
}

bool has_explicit_moas_list(const bgp::Route& route) {
  return !decode_moas_list(route.attrs).empty();
}

bool lists_consistent(const AsnSet& a, const AsnSet& b) { return a == b; }

std::string list_to_string(const AsnSet& list) {
  std::string out = "{";
  bool first = true;
  for (Asn asn : list) {
    if (!first) out += ", ";
    out += std::to_string(asn);
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace moas::core
