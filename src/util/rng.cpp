#include "moas/util/rng.h"

#include <cmath>

#include "moas/util/assert.h"

namespace moas::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Expand the seed through splitmix64 so that nearby seeds yield unrelated
  // streams (recommended xoshiro initialization).
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  MOAS_REQUIRE(lo <= hi, "uniform range must be non-empty");
  const std::uint64_t span = hi - lo;
  if (span == ~0ULL) return next();
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t n = span + 1;
  const std::uint64_t limit = (~0ULL) - (~0ULL) % n;
  std::uint64_t v;
  do {
    v = next();
  } while (v >= limit);
  return lo + v % n;
}

std::size_t Rng::index(std::size_t n) {
  MOAS_REQUIRE(n > 0, "index() requires a non-empty range");
  return static_cast<std::size_t>(uniform(0, n - 1));
}

double Rng::uniform01() {
  // 53 random bits → double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

unsigned Rng::poisson(double mean) {
  MOAS_REQUIRE(mean >= 0.0, "poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 60.0) {
    const double limit = std::exp(-mean);
    double prod = uniform01();
    unsigned n = 0;
    while (prod > limit) {
      ++n;
      prod *= uniform01();
    }
    return n;
  }
  // Normal approximation for large means.
  const double v = gaussian(mean, std::sqrt(mean));
  return v <= 0.0 ? 0u : static_cast<unsigned>(v + 0.5);
}

double Rng::gaussian(double mean, double stddev) {
  MOAS_REQUIRE(stddev >= 0.0, "stddev must be non-negative");
  if (has_gaussian_spare_) {
    has_gaussian_spare_ = false;
    return mean + stddev * gaussian_spare_;
  }
  double u1;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.14159265358979323846 * u2;
  gaussian_spare_ = mag * std::sin(angle);
  has_gaussian_spare_ = true;
  return mean + stddev * mag * std::cos(angle);
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  MOAS_REQUIRE(k <= n, "cannot sample more elements than the population");
  // Partial Fisher–Yates over an index vector; O(n) setup, fine at our scales.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::fork() { return Rng(next()); }

}  // namespace moas::util
