// Minimal leveled logger.
//
// The simulator is run in tight experiment loops, so logging defaults to
// Warn; examples raise it to Info/Debug to narrate what the protocol does.
#pragma once

#include <sstream>
#include <string>

namespace moas::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line to stderr as "[level] message" if enabled.
void log_line(LogLevel level, const std::string& msg);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace moas::util

#define MOAS_LOG(level) ::moas::util::detail::LogStream(::moas::util::LogLevel::level)
