// Sorted-vector associative containers for the RIB hot paths.
//
// std::map spends one heap node (~48 bytes + allocator slack) and a pointer
// chase per entry; at 100k-AS x multi-prefix scale the node overhead dwarfs
// the routes themselves. FlatMap/FlatSet store entries in one contiguous
// sorted vector: O(log n) lookup with perfect locality, O(n) insert/erase
// (fine for RIB rows, which are written far less often than they are read),
// and iteration order identical to std::map/std::set — which is what keeps
// every "walk the table in key order" output byte-identical after the swap.
//
// Deliberate std::map differences:
//   - insert/erase invalidate iterators AND references (vector semantics).
//     Assigning through insert_or_assign to an EXISTING key is in-place and
//     invalidates nothing — LocRib::set relies on that.
//   - value_type is pair<Key, Value> (not pair<const Key, Value>); mutating
//     a key through an iterator would break the invariant, so don't.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace moas::util {

template <typename Key, typename Value, typename Compare = std::less<Key>>
class FlatMap {
 public:
  using value_type = std::pair<Key, Value>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  iterator begin() { return data_.begin(); }
  iterator end() { return data_.end(); }
  const_iterator begin() const { return data_.begin(); }
  const_iterator end() const { return data_.end(); }

  bool empty() const { return data_.empty(); }
  std::size_t size() const { return data_.size(); }
  void clear() { data_.clear(); }
  void reserve(std::size_t n) { data_.reserve(n); }

  iterator lower_bound(const Key& key) {
    return std::lower_bound(data_.begin(), data_.end(), key, KeyLess{});
  }
  const_iterator lower_bound(const Key& key) const {
    return std::lower_bound(data_.begin(), data_.end(), key, KeyLess{});
  }

  iterator find(const Key& key) {
    auto it = lower_bound(key);
    return (it != data_.end() && equals(it->first, key)) ? it : data_.end();
  }
  const_iterator find(const Key& key) const {
    auto it = lower_bound(key);
    return (it != data_.end() && equals(it->first, key)) ? it : data_.end();
  }

  bool contains(const Key& key) const { return find(key) != data_.end(); }

  /// Default-constructs the value on first access, like std::map.
  Value& operator[](const Key& key) {
    auto it = lower_bound(key);
    if (it != data_.end() && equals(it->first, key)) return it->second;
    return data_.emplace(it, key, Value{})->second;
  }

  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const Key& key, Args&&... args) {
    auto it = lower_bound(key);
    if (it != data_.end() && equals(it->first, key)) return {it, false};
    it = data_.emplace(it, key, Value(std::forward<Args>(args)...));
    return {it, true};
  }

  /// Assigning to an existing key is in-place: no reallocation, references
  /// to OTHER entries (and to this one) stay valid.
  std::pair<iterator, bool> insert_or_assign(const Key& key, Value value) {
    auto it = lower_bound(key);
    if (it != data_.end() && equals(it->first, key)) {
      it->second = std::move(value);
      return {it, false};
    }
    it = data_.emplace(it, key, std::move(value));
    return {it, true};
  }

  std::size_t erase(const Key& key) {
    auto it = find(key);
    if (it == data_.end()) return 0;
    data_.erase(it);
    return 1;
  }

  iterator erase(iterator it) { return data_.erase(it); }
  iterator erase(const_iterator it) { return data_.erase(it); }

  /// Contiguous heap footprint of the container itself (capacity, not just
  /// size — slack is real memory). Excludes whatever the values own.
  std::size_t container_bytes() const { return data_.capacity() * sizeof(value_type); }

  friend bool operator==(const FlatMap&, const FlatMap&) = default;

 private:
  struct KeyLess {
    bool operator()(const value_type& entry, const Key& key) const {
      return Compare{}(entry.first, key);
    }
  };
  static bool equals(const Key& a, const Key& b) {
    return !Compare{}(a, b) && !Compare{}(b, a);
  }

  std::vector<value_type> data_;
};

template <typename Key, typename Compare = std::less<Key>>
class FlatSet {
 public:
  using iterator = typename std::vector<Key>::const_iterator;
  using const_iterator = iterator;

  FlatSet() = default;
  FlatSet(std::initializer_list<Key> keys) {
    for (const Key& key : keys) insert(key);
  }

  const_iterator begin() const { return data_.begin(); }
  const_iterator end() const { return data_.end(); }

  bool empty() const { return data_.empty(); }
  std::size_t size() const { return data_.size(); }
  void clear() { data_.clear(); }

  bool contains(const Key& key) const {
    auto it = std::lower_bound(data_.begin(), data_.end(), key, Compare{});
    return it != data_.end() && equals(*it, key);
  }

  bool insert(const Key& key) {
    auto it = std::lower_bound(data_.begin(), data_.end(), key, Compare{});
    if (it != data_.end() && equals(*it, key)) return false;
    data_.insert(it, key);
    return true;
  }

  std::size_t erase(const Key& key) {
    auto it = std::lower_bound(data_.begin(), data_.end(), key, Compare{});
    if (it == data_.end() || !equals(*it, key)) return 0;
    data_.erase(it);
    return 1;
  }

  std::size_t container_bytes() const { return data_.capacity() * sizeof(Key); }

  friend bool operator==(const FlatSet&, const FlatSet&) = default;

 private:
  static bool equals(const Key& a, const Key& b) {
    return !Compare{}(a, b) && !Compare{}(b, a);
  }

  std::vector<Key> data_;
};

}  // namespace moas::util
