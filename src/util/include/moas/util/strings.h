// String helpers shared by parsers and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace moas::util {

/// Split on a single delimiter character. Empty fields are preserved:
/// split("a,,b", ',') == {"a", "", "b"}; split("", ',') == {""}.
std::vector<std::string> split(std::string_view s, char delim);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Parse an unsigned decimal that must consume the whole string.
/// Returns false on empty input, non-digits, or overflow of uint64.
bool parse_u64(std::string_view s, std::uint64_t& out);

/// Fixed-point formatting with `digits` decimals (no locale surprises).
std::string fmt_double(double v, int digits);

}  // namespace moas::util
