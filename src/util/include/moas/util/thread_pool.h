// Fixed-size worker pool for embarrassingly parallel fan-out (the
// experiment harness's independent seeded runs).
//
// Determinism contract: the pool runs tasks in any order and on any number
// of workers, so callers that need reproducible output must (1) draw all
// randomness *before* submitting (a serial planning pass), (2) have each
// task write into its own pre-allocated result slot, and (3) reduce the
// slots in submission (plan) order, never in completion order. See
// core::Experiment::plan_sweep / execute_plan / reduce_plan for the
// canonical use.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace moas::util {

class ThreadPool {
 public:
  /// Spawns `jobs` workers; 0 resolves via default_jobs().
  explicit ThreadPool(std::size_t jobs = 0);

  /// Drains the queue (outstanding tasks still run), then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t jobs() const { return workers_.size(); }

  /// Enqueue a task. Tasks must not submit to their own pool and then
  /// wait on it — nested fan-out deadlocks a saturated pool.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. If any task threw,
  /// the first captured exception is rethrown here — after the remaining
  /// tasks have still run to completion, so result slots stay consistent.
  void wait();

  /// submit() fn(i) for i in [0, n), then wait().
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// The pool-size default: MOAS_JOBS (if set to a positive integer),
  /// else std::thread::hardware_concurrency(), else 1.
  static std::size_t default_jobs();

  /// `requested` if positive, else default_jobs(). Never 0.
  static std::size_t resolve_jobs(std::size_t requested);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;  // queued + currently running
  std::exception_ptr first_error_;
  bool stopping_ = false;
};

}  // namespace moas::util
