// Small statistics toolkit used by the measurement pipeline and the
// experiment harness: running accumulators, order statistics, histograms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace moas::util {

/// Running mean / variance / extrema accumulator (Welford's algorithm).
class Accumulator {
 public:
  void add(double x);

  /// Fold another accumulator's samples into this one (Chan et al.'s
  /// parallel Welford combination). Merging a single-sample accumulator
  /// takes the exact add() code path, so reducing per-run samples with
  /// merge() in plan order is bit-identical to the serial add() loop —
  /// the parallel sweep's determinism contract rests on this.
  void merge(const Accumulator& other);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Median of a sample (copies and sorts; averages the middle pair for even n).
/// Requires a non-empty sample.
double median(std::vector<double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Requires non-empty sample.
double percentile(std::vector<double> xs, double p);

/// Integer-keyed frequency histogram (exact bins, e.g. duration in days).
class Histogram {
 public:
  void add(std::int64_t key, std::uint64_t weight = 1);

  std::uint64_t count(std::int64_t key) const;
  std::uint64_t total() const { return total_; }
  /// Fraction of total mass at `key`; 0 if the histogram is empty.
  double fraction(std::int64_t key) const;
  /// All (key, count) pairs in ascending key order.
  std::vector<std::pair<std::int64_t, std::uint64_t>> bins() const;
  std::int64_t min_key() const;
  std::int64_t max_key() const;
  bool empty() const { return bins_.empty(); }

 private:
  std::map<std::int64_t, std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

}  // namespace moas::util
