// Plain-text table / CSV emitters for the benchmark harnesses.
//
// Every figure-reproduction bench prints its series through TablePrinter so
// the output is uniform: an aligned human-readable table on stdout, and
// optionally the same rows as CSV.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace moas::util {

/// Column-aligned text table with an optional CSV dump.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append one row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Render aligned text (headers, rule, rows).
  void print(std::ostream& os) const;

  /// Render as CSV (headers + rows, comma-separated, fields containing
  /// commas or quotes are quoted).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace moas::util
