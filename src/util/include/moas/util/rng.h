// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component of the library takes an explicit Rng&; nothing
// reads global entropy. The same seed therefore reproduces an entire
// experiment bit-for-bit, which the test suite relies on.
#pragma once

#include <cstdint>
#include <vector>

namespace moas::util {

/// splitmix64-seeded xoshiro256** generator with convenience samplers.
///
/// Not cryptographic; chosen for speed, tiny state, and well-understood
/// statistical quality.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next();

  // UniformRandomBitGenerator interface (usable with <algorithm>/<random>).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform size_t index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 60).
  unsigned poisson(double mean);

  /// Gaussian via Box–Muller. Each uniform pair yields *two* independent
  /// normals; the sine half is cached and returned by the next call, so a
  /// pair of calls costs one pair of uniform draws. The cached half is
  /// part of the generator state (copied with it, absent from a fresh
  /// fork()); note that odd/even call parity therefore affects how many
  /// raw next() draws a gaussian() consumes.
  double gaussian(double mean, double stddev);

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element. Requires non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[index(v.size())];
  }

  /// Derive an independent child generator (for parallel sub-experiments).
  Rng fork();

 private:
  std::uint64_t s_[4];
  double gaussian_spare_ = 0.0;        // the unscaled (mean 0, stddev 1) sine half
  bool has_gaussian_spare_ = false;
};

}  // namespace moas::util
