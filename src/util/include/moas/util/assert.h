// Checked-precondition and invariant macros.
//
// MOAS_REQUIRE — validate caller-supplied arguments; throws std::invalid_argument.
// MOAS_ENSURE  — validate internal invariants; throws moas::util::InvariantError.
//
// Both are always on (the library is a research simulator: a silently corrupt
// experiment is worse than a few branch instructions).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace moas::util {

/// Raised when an internal invariant is violated. Indicates a library bug,
/// not a caller error.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void require_failed(const char* expr, const char* file, int line,
                                        const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void ensure_failed(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}

}  // namespace detail
}  // namespace moas::util

#define MOAS_REQUIRE(expr, msg)                                                    \
  do {                                                                             \
    if (!(expr)) ::moas::util::detail::require_failed(#expr, __FILE__, __LINE__,   \
                                                      (msg));                      \
  } while (false)

#define MOAS_ENSURE(expr, msg)                                                     \
  do {                                                                             \
    if (!(expr)) ::moas::util::detail::ensure_failed(#expr, __FILE__, __LINE__,    \
                                                     (msg));                       \
  } while (false)
