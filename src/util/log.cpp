#include "moas/util/log.h"

#include <iostream>

namespace moas::util {

namespace {

LogLevel g_level = LogLevel::Warn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void log_line(LogLevel level, const std::string& msg) {
  if (level < g_level || g_level == LogLevel::Off) return;
  std::cerr << '[' << level_name(level) << "] " << msg << '\n';
}

}  // namespace moas::util
