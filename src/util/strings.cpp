#include "moas/util/strings.h"

#include <cctype>
#include <cstdint>
#include <sstream>

namespace moas::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  std::size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (~0ULL - digit) / 10) return false;  // would overflow
    v = v * 10 + digit;
  }
  out = v;
  return true;
}

std::string fmt_double(double v, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << v;
  return os.str();
}

}  // namespace moas::util
