#include "moas/util/stats.h"

#include <algorithm>
#include <cmath>

#include "moas/util/assert.h"

namespace moas::util {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (other.n_ == 1) {
    // A single-sample accumulator stores its sample exactly (mean_ == x),
    // so delegating to add() keeps merge-reduction bit-identical to the
    // sequential add() loop.
    add(other.mean_);
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double n = na + nb;
  mean_ += delta * (nb / n);
  m2_ += other.m2_ + delta * delta * (na * nb / n);
  n_ += other.n_;
  sum_ += other.sum_;
}

double Accumulator::mean() const {
  MOAS_REQUIRE(n_ > 0, "mean of empty accumulator");
  return mean_;
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const {
  MOAS_REQUIRE(n_ > 0, "min of empty accumulator");
  return min_;
}

double Accumulator::max() const {
  MOAS_REQUIRE(n_ > 0, "max of empty accumulator");
  return max_;
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

double percentile(std::vector<double> xs, double p) {
  MOAS_REQUIRE(!xs.empty(), "percentile of empty sample");
  MOAS_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] + frac * (xs[lo + 1] - xs[lo]);
}

void Histogram::add(std::int64_t key, std::uint64_t weight) {
  bins_[key] += weight;
  total_ += weight;
}

std::uint64_t Histogram::count(std::int64_t key) const {
  auto it = bins_.find(key);
  return it == bins_.end() ? 0 : it->second;
}

double Histogram::fraction(std::int64_t key) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(key)) / static_cast<double>(total_);
}

std::vector<std::pair<std::int64_t, std::uint64_t>> Histogram::bins() const {
  return {bins_.begin(), bins_.end()};
}

std::int64_t Histogram::min_key() const {
  MOAS_REQUIRE(!bins_.empty(), "min_key of empty histogram");
  return bins_.begin()->first;
}

std::int64_t Histogram::max_key() const {
  MOAS_REQUIRE(!bins_.empty(), "max_key of empty histogram");
  return bins_.rbegin()->first;
}

}  // namespace moas::util
