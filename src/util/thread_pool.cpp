#include "moas/util/thread_pool.h"

#include <cstdlib>
#include <string>
#include <utility>

#include "moas/util/assert.h"

namespace moas::util {

ThreadPool::ThreadPool(std::size_t jobs) {
  const std::size_t n = resolve_jobs(jobs);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  MOAS_REQUIRE(task != nullptr, "cannot submit an empty task");
  {
    const std::scoped_lock lock(mutex_);
    ++in_flight_;
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    submit([&fn, i] { fn(i); });
  }
  wait();
}

std::size_t ThreadPool::default_jobs() {
  if (const char* env = std::getenv("MOAS_JOBS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

std::size_t ThreadPool::resolve_jobs(std::size_t requested) {
  return requested > 0 ? requested : default_jobs();
}

void ThreadPool::worker_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ and nothing left to drain
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();

    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }

    lock.lock();
    if (error && !first_error_) first_error_ = error;
    if (--in_flight_ == 0) all_done_.notify_all();
  }
}

}  // namespace moas::util
