#include "moas/util/table.h"

#include <algorithm>
#include <iomanip>

#include "moas/util/assert.h"

namespace moas::util {

namespace {

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MOAS_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  MOAS_REQUIRE(cells.size() == headers_.size(), "row arity must match headers");
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(width[c])) << row[c];
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < width.size(); ++c) rule += width[c] + (c + 1 == width.size() ? 0 : 2);
  os << std::string(rule, '-') << "\n";
  for (const auto& row : rows_) emit(row);
}

void TablePrinter::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]);
      os << (c + 1 == row.size() ? "\n" : ",");
    }
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace moas::util
