#include "moas/stream/detector.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "moas/stream/checkpoint.h"
#include "moas/util/assert.h"
#include "moas/util/strings.h"

namespace moas::stream {

StreamDetector::StreamDetector(StreamConfig config) : config_(std::move(config)) {
  MOAS_REQUIRE(config_.shards > 0, "need at least one shard");
  MOAS_REQUIRE(config_.flush_margin > 0, "flush margin must be positive");
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) shards_.emplace_back(config_.shard);
}

util::ThreadPool& StreamDetector::pool() {
  if (!pool_) pool_ = std::make_unique<util::ThreadPool>(config_.jobs);
  return *pool_;
}

void StreamDetector::ingest(StreamUpdate u) {
  MOAS_REQUIRE(!finished_, "detector already finished");
  ++consumed_;
  ++front_.delivered;

  if (u.malformed) {
    ++front_.malformed_rejected;
    return;
  }
  if (config_.dup_window > 0) {
    if (dup_seen_.contains(u.seq)) {
      ++front_.duplicates_suppressed;
      return;
    }
    dup_seen_.insert(u.seq);
    dup_order_.push_back(u.seq);
    if (dup_order_.size() > config_.dup_window) {
      dup_seen_.erase(dup_order_.front());
      dup_order_.pop_front();
    }
  }

  // An update whose day already flushed can't rejoin its batch; it rides
  // in the next open day (per-prefix accounting keys on u.day, not on the
  // batch it happened to travel with).
  int key = u.day;
  if (key <= last_flushed_day_) {
    ++front_.late_updates;
    key = last_flushed_day_ + 1;
  }
  for (auto& [day, count] : later_counts_) {
    if (day < key) ++count;
  }
  later_counts_.try_emplace(key, 0);
  buffered_[key].push_back(std::move(u));
  flush_ready();
}

void StreamDetector::flush_ready() {
  while (!buffered_.empty()) {
    const int oldest = buffered_.begin()->first;
    if (later_counts_[oldest] <= static_cast<std::uint64_t>(config_.flush_margin)) break;
    std::vector<StreamUpdate> batch = std::move(buffered_.begin()->second);
    buffered_.erase(buffered_.begin());
    later_counts_.erase(oldest);
    flush_day(oldest, std::move(batch));
  }
}

void StreamDetector::flush_all() {
  MOAS_REQUIRE(!finished_, "detector already finished");
  while (!buffered_.empty()) {
    const int oldest = buffered_.begin()->first;
    std::vector<StreamUpdate> batch = std::move(buffered_.begin()->second);
    buffered_.erase(buffered_.begin());
    later_counts_.erase(oldest);
    flush_day(oldest, std::move(batch));
  }
}

void StreamDetector::flush_day(const int day, std::vector<StreamUpdate> batch) {
  // Feed gap: days the transport never delivered. The shards need the
  // window before processing this day so a conflict first seen across the
  // gap parks as Pending instead of raising a firm alarm.
  std::vector<chaos::GapWindow> new_gaps;
  if (day > last_flushed_day_ + 1) {
    chaos::GapWindow g;
    g.first_day = last_flushed_day_ + 1;
    g.last_day = day - 1;
    front_.gap_days += static_cast<std::uint64_t>(g.last_day - g.first_day + 1);
    new_gaps.push_back(g);
    if (obs::trace_wants(trace_, obs::TraceLevel::Summary)) {
      obs::TraceEvent event(obs::EventKind::FeedGap, kStreamObserver);
      event.at = static_cast<double>(day);
      event.with_values(g.first_day, g.last_day);
      trace_->emit(std::move(event));
    }
  }

  std::sort(batch.begin(), batch.end(), [](const StreamUpdate& a, const StreamUpdate& b) {
    return a.at != b.at ? a.at < b.at : a.seq < b.seq;
  });

  std::vector<std::vector<const StreamUpdate*>> slices(shards_.size());
  for (const StreamUpdate& u : batch) slices[shard_of(u.prefix)].push_back(&u);

  std::vector<std::uint64_t> shed_before(shards_.size());
  std::vector<std::uint64_t> evicted_before(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shed_before[i] = shards_[i].counters().shed_updates;
    evicted_before[i] = shards_[i].counters().evicted_prefixes;
  }

  pool().parallel_for(shards_.size(), [&](const std::size_t i) {
    shards_[i].process_day(day, new_gaps, slices[i]);
  });

  // Post-barrier: the serial front-end owns observability.
  if (obs::trace_wants(trace_, obs::TraceLevel::Summary)) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const std::uint64_t shed = shards_[i].counters().shed_updates - shed_before[i];
      if (shed > 0) {
        obs::TraceEvent event(obs::EventKind::UpdatesShed, kStreamObserver);
        event.at = static_cast<double>(day) + 1.0;
        event.with_values(static_cast<std::int64_t>(shed), static_cast<std::int64_t>(i));
        trace_->emit(std::move(event));
      }
      const std::uint64_t evicted = shards_[i].counters().evicted_prefixes - evicted_before[i];
      if (evicted > 0) {
        obs::TraceEvent event(obs::EventKind::StateEvicted, kStreamObserver);
        event.at = static_cast<double>(day) + 1.0;
        event.with_values(static_cast<std::int64_t>(evicted), static_cast<std::int64_t>(i));
        trace_->emit(std::move(event));
      }
    }
  }

  peak_total_bytes_ = std::max(peak_total_bytes_, bytes_held());
  ++front_.days_flushed;
  last_flushed_day_ = day;
}

void StreamDetector::maybe_checkpoint(const CheckpointSink& sink) {
  if (!sink || config_.checkpoint_every_days <= 0) return;
  if (last_flushed_day_ < 0) return;
  if (last_flushed_day_ - last_checkpoint_day_ < config_.checkpoint_every_days) return;
  // Stamp first: the checkpoint then records itself as the latest one, so
  // a restored run does not immediately re-checkpoint the same day.
  last_checkpoint_day_ = last_flushed_day_;
  sink(*this, last_flushed_day_);
}

void StreamDetector::run(UpdateFeed& feed, const CheckpointSink& sink) {
  while (auto u = feed.next()) {
    ingest(std::move(*u));
    maybe_checkpoint(sink);
  }
  flush_all();
  finish();
}

void StreamDetector::finish() {
  MOAS_REQUIRE(!finished_, "detector already finished");
  MOAS_REQUIRE(buffered_.empty(), "finish with buffered days (call flush_all)");
  const double at = static_cast<double>(last_flushed_day_ + 1);
  pool().parallel_for(shards_.size(), [&](const std::size_t i) { shards_[i].finish(at); });
  peak_total_bytes_ = std::max(peak_total_bytes_, bytes_held());
  finished_ = true;
}

std::uint64_t StreamDetector::bytes_held() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard.bytes_held();
  return total;
}

std::vector<core::MoasAlarm> StreamDetector::merged_alarms() const {
  std::vector<core::MoasAlarm> out;
  for (const auto& shard : shards_) {
    out.insert(out.end(), shard.alarms().alarms().begin(), shard.alarms().alarms().end());
  }
  std::sort(out.begin(), out.end(), [](const core::MoasAlarm& a, const core::MoasAlarm& b) {
    return a.at != b.at ? a.at < b.at : a.prefix < b.prefix;
  });
  return out;
}

std::string StreamDetector::alarm_log_text() const {
  std::string out = "# stream alarm log\n";
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const core::AlarmLog& log = shards_[i].alarms();
    out += "# shard " + std::to_string(i) + ": total " + std::to_string(log.size()) +
           " compacted " + std::to_string(log.compacted()) + "\n";
    std::size_t id = log.first_retained();
    for (const auto& alarm : log.alarms()) {
      out += std::to_string(id++);
      out += ' ';
      out += core::to_string(alarm.state);
      out += " at=" + util::fmt_double(alarm.at, 6);
      out += " settled=" + util::fmt_double(alarm.settled_at, 6);
      out += ' ' + alarm.to_string() + '\n';
    }
  }
  return out;
}

obs::MetricsRegistry StreamDetector::metrics() const {
  obs::MetricsRegistry reg;
  reg.count("stream.delivered", front_.delivered);
  reg.count("stream.malformed_rejected", front_.malformed_rejected);
  reg.count("stream.duplicates_suppressed", front_.duplicates_suppressed);
  reg.count("stream.late_updates", front_.late_updates);
  reg.count("stream.gap_days", front_.gap_days);
  reg.count("stream.days_flushed", front_.days_flushed);

  ShardCounters total;
  std::size_t live = 0;
  std::size_t open = 0;
  std::size_t alarms = 0;
  for (const auto& shard : shards_) {
    const ShardCounters& c = shard.counters();
    total.processed += c.processed;
    total.shed_updates += c.shed_updates;
    total.moas_days_shed += c.moas_days_shed;
    total.alarms_raised += c.alarms_raised;
    total.alarms_resolved += c.alarms_resolved;
    total.alarms_expired += c.alarms_expired;
    total.alarms_parked += c.alarms_parked;
    total.evicted_prefixes += c.evicted_prefixes;
    total.evicted_live += c.evicted_live;
    live += shard.live_prefixes();
    open += shard.open_alarms();
    alarms += shard.alarms().size();
  }
  reg.count("stream.updates_processed", total.processed);
  reg.count("stream.shed_updates", total.shed_updates);
  reg.count("stream.moas_days_shed", total.moas_days_shed);
  reg.count("stream.alarms_raised", total.alarms_raised);
  reg.count("stream.alarms_resolved", total.alarms_resolved);
  reg.count("stream.alarms_expired", total.alarms_expired);
  reg.count("stream.alarms_parked", total.alarms_parked);
  reg.count("stream.evicted_prefixes", total.evicted_prefixes);
  reg.count("stream.evicted_live", total.evicted_live);
  reg.count("stream.alarms_total", alarms);

  reg.set_gauge("stream.bytes_held", static_cast<double>(bytes_held()));
  reg.set_gauge("stream.peak_bytes_held", static_cast<double>(peak_total_bytes_));
  reg.set_gauge("stream.live_prefixes", static_cast<double>(live));
  reg.set_gauge("stream.open_alarms", static_cast<double>(open));

  auto& durations = reg.histogram("stream.case_duration_days", duration_spec());
  auto& latencies = reg.histogram("detector.first_alarm_latency", latency_spec());
  for (const auto& shard : shards_) {
    durations.merge(shard.duration_histogram());
    latencies.merge(shard.latency_histogram());
  }
  return reg;
}

void StreamDetector::save_checkpoint(std::ostream& os) const {
  MOAS_REQUIRE(!finished_, "a finished detector has nothing to resume");
  CheckpointWriter w(os);

  w.line("config " + std::to_string(config_.shards) + ' ' +
         std::to_string(config_.flush_margin) + ' ' + std::to_string(config_.dup_window) + ' ' +
         double_bits(config_.shard.conflict_ttl_days) + ' ' +
         std::to_string(config_.shard.day_capacity) + ' ' +
         std::to_string(config_.shard.memory_budget_bytes) + ' ' +
         std::to_string(config_.shard.evict_idle_days) + ' ' +
         std::to_string(config_.shard.alarm_retention));
  w.line("front " + std::to_string(consumed_) + ' ' + std::to_string(last_flushed_day_) + ' ' +
         std::to_string(last_checkpoint_day_));
  w.line("fcounters " + std::to_string(front_.delivered) + ' ' +
         std::to_string(front_.malformed_rejected) + ' ' +
         std::to_string(front_.duplicates_suppressed) + ' ' +
         std::to_string(front_.late_updates) + ' ' + std::to_string(front_.gap_days) + ' ' +
         std::to_string(front_.days_flushed));
  w.line("peak " + std::to_string(peak_total_bytes_));

  {
    std::string line = "dup " + std::to_string(dup_order_.size());
    for (const std::uint64_t seq : dup_order_) line += ' ' + std::to_string(seq);
    w.line(line);
  }

  w.line("buffered " + std::to_string(buffered_.size()));
  for (const auto& [day, batch] : buffered_) {
    const auto later = later_counts_.find(day);
    MOAS_ENSURE(later != later_counts_.end(), "buffered day without a later-count");
    w.line("bday " + std::to_string(day) + ' ' + std::to_string(later->second) + ' ' +
           std::to_string(batch.size()));
    for (const StreamUpdate& u : batch) {
      std::string line = "u " + std::to_string(u.seq) + ' ' + std::to_string(u.day) + ' ' +
                         double_bits(u.at) + ' ' + u.prefix.to_string() + ' ' +
                         std::to_string(u.origins.size());
      for (const bgp::Asn asn : u.origins) line += ' ' + std::to_string(asn);
      w.line(line);
    }
  }

  for (std::size_t i = 0; i < shards_.size(); ++i) {
    w.line("shard " + std::to_string(i));
    shards_[i].save(w);
  }
  w.line("end");
  w.finish();
}

StreamDetector StreamDetector::restore_checkpoint(std::istream& is, StreamConfig config) {
  CheckpointReader r(is);
  StreamDetector d(std::move(config));

  {
    LineParser p(r.next());
    p.expect("config");
    MOAS_REQUIRE(p.u64() == d.config_.shards, "checkpoint: shard count mismatch");
    MOAS_REQUIRE(p.i64() == d.config_.flush_margin, "checkpoint: flush margin mismatch");
    MOAS_REQUIRE(p.u64() == d.config_.dup_window, "checkpoint: dup window mismatch");
    MOAS_REQUIRE(p.f64() == d.config_.shard.conflict_ttl_days,
                 "checkpoint: conflict TTL mismatch");
    MOAS_REQUIRE(p.u64() == d.config_.shard.day_capacity, "checkpoint: day capacity mismatch");
    MOAS_REQUIRE(p.u64() == d.config_.shard.memory_budget_bytes,
                 "checkpoint: memory budget mismatch");
    MOAS_REQUIRE(p.i64() == d.config_.shard.evict_idle_days, "checkpoint: idle window mismatch");
    MOAS_REQUIRE(p.u64() == d.config_.shard.alarm_retention,
                 "checkpoint: alarm retention mismatch");
  }
  {
    LineParser p(r.next());
    p.expect("front");
    d.consumed_ = p.u64();
    d.last_flushed_day_ = p.day();
    d.last_checkpoint_day_ = p.day();
  }
  {
    LineParser p(r.next());
    p.expect("fcounters");
    d.front_.delivered = p.u64();
    d.front_.malformed_rejected = p.u64();
    d.front_.duplicates_suppressed = p.u64();
    d.front_.late_updates = p.u64();
    d.front_.gap_days = p.u64();
    d.front_.days_flushed = p.u64();
  }
  {
    LineParser p(r.next());
    p.expect("peak");
    d.peak_total_bytes_ = p.u64();
  }
  {
    LineParser p(r.next());
    p.expect("dup");
    const std::uint64_t n = p.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t seq = p.u64();
      d.dup_order_.push_back(seq);
      d.dup_seen_.insert(seq);
    }
  }
  {
    LineParser p(r.next());
    p.expect("buffered");
    const std::uint64_t days = p.u64();
    for (std::uint64_t i = 0; i < days; ++i) {
      LineParser h(r.next());
      h.expect("bday");
      const int day = h.day();
      const std::uint64_t later = h.u64();
      const std::uint64_t n = h.u64();
      d.later_counts_[day] = later;
      auto& batch = d.buffered_[day];
      batch.reserve(n);
      for (std::uint64_t j = 0; j < n; ++j) {
        LineParser up(r.next());
        up.expect("u");
        StreamUpdate u;
        u.seq = up.u64();
        u.day = up.day();
        u.at = up.f64();
        const auto prefix = net::Prefix::parse(up.token());
        MOAS_REQUIRE(prefix.has_value(), "checkpoint: bad prefix");
        u.prefix = *prefix;
        const std::uint64_t origins = up.u64();
        for (std::uint64_t k = 0; k < origins; ++k) {
          u.origins.insert(static_cast<bgp::Asn>(up.u64()));
        }
        batch.push_back(std::move(u));
      }
    }
  }
  for (std::size_t i = 0; i < d.shards_.size(); ++i) {
    LineParser p(r.next());
    p.expect("shard");
    MOAS_REQUIRE(p.u64() == i, "checkpoint: shard index out of order");
    d.shards_[i].load(r);
  }
  {
    LineParser p(r.next());
    p.expect("end");
  }
  return d;
}

bool StreamDetector::operator==(const StreamDetector& other) const {
  return config_.shards == other.config_.shards &&
         config_.flush_margin == other.config_.flush_margin &&
         config_.dup_window == other.config_.dup_window &&
         config_.shard == other.config_.shard && shards_ == other.shards_ &&
         consumed_ == other.consumed_ && last_flushed_day_ == other.last_flushed_day_ &&
         finished_ == other.finished_ && front_ == other.front_ &&
         peak_total_bytes_ == other.peak_total_bytes_ && buffered_ == other.buffered_ &&
         later_counts_ == other.later_counts_ && dup_order_ == other.dup_order_;
}

}  // namespace moas::stream
