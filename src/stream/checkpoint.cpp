#include "moas/stream/checkpoint.h"

#include <bit>
#include <istream>
#include <ostream>

#include "moas/util/assert.h"
#include "moas/util/strings.h"

namespace moas::stream {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(std::uint64_t hash, std::string_view bytes) {
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

std::string hex16(std::uint64_t value) {
  static const char digits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xf];
    value >>= 4;
  }
  return out;
}

std::uint64_t parse_hex16(std::string_view text) {
  MOAS_REQUIRE(text.size() == 16, "checkpoint: expected 16 hex digits");
  std::uint64_t value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      throw std::invalid_argument("checkpoint: bad hex digit in checksum");
    }
  }
  return value;
}

}  // namespace

CheckpointWriter::CheckpointWriter(std::ostream& os) : os_(&os), hash_(kFnvOffset) {
  line(std::string(kCheckpointHeader));
}

void CheckpointWriter::line(const std::string& text) {
  MOAS_REQUIRE(!finished_, "checkpoint writer already finished");
  hash_ = fnv1a(hash_, text);
  hash_ = fnv1a(hash_, "\n");
  *os_ << text << '\n';
}

void CheckpointWriter::finish() {
  MOAS_REQUIRE(!finished_, "checkpoint writer already finished");
  *os_ << "checksum " << hex16(hash_) << '\n';
  finished_ = true;
}

CheckpointReader::CheckpointReader(std::istream& is) {
  std::uint64_t hash = kFnvOffset;
  bool sealed = false;
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("checksum ", 0) == 0) {
      const std::uint64_t stored = parse_hex16(util::trim(line.substr(9)));
      MOAS_REQUIRE(stored == hash, "checkpoint: checksum mismatch (corrupt or truncated)");
      sealed = true;
      break;
    }
    hash = fnv1a(hash, line);
    hash = fnv1a(hash, "\n");
    lines_.push_back(line);
  }
  MOAS_REQUIRE(sealed, "checkpoint: missing checksum trailer");
  MOAS_REQUIRE(!lines_.empty() && lines_.front() == kCheckpointHeader,
               "checkpoint: missing or unsupported version header");
  cursor_ = 1;  // past the header
}

const std::string& CheckpointReader::next() {
  MOAS_REQUIRE(cursor_ < lines_.size(), "checkpoint: truncated payload");
  return lines_[cursor_++];
}

std::string double_bits(double value) {
  return hex16(std::bit_cast<std::uint64_t>(value));
}

double double_from_bits(const std::string& text) {
  return std::bit_cast<double>(parse_hex16(text));
}

std::string LineParser::token() {
  std::string t;
  in_ >> t;
  MOAS_REQUIRE(!t.empty(), "checkpoint: truncated line");
  return t;
}

std::uint64_t LineParser::u64() {
  std::uint64_t value = 0;
  MOAS_REQUIRE(util::parse_u64(token(), value), "checkpoint: expected an unsigned integer");
  return value;
}

std::int64_t LineParser::i64() {
  const std::string t = token();
  if (!t.empty() && t.front() == '-') {
    std::uint64_t mag = 0;
    MOAS_REQUIRE(util::parse_u64(t.substr(1), mag) && mag <= 1ULL << 62,
                 "checkpoint: expected an integer");
    return -static_cast<std::int64_t>(mag);
  }
  std::uint64_t value = 0;
  MOAS_REQUIRE(util::parse_u64(t, value) && value <= 1ULL << 62,
               "checkpoint: expected an integer");
  return static_cast<std::int64_t>(value);
}

double LineParser::f64() { return double_from_bits(token()); }

void LineParser::expect(std::string_view expected) {
  const std::string t = token();
  MOAS_REQUIRE(t == expected,
               "checkpoint: expected '" + std::string(expected) + "', got '" + t + "'");
}

}  // namespace moas::stream
