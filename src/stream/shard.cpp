#include "moas/stream/shard.h"

#include <algorithm>

#include "moas/util/assert.h"

namespace moas::stream {

namespace {

/// Deterministic footprint estimates (bytes). These are accounting units,
/// not allocator truth: the budget gate needs a number that is identical on
/// every platform and --jobs value, so we charge flat per-object costs plus
/// a per-ASN cost for the origin sets.
constexpr std::uint64_t kShardBaseBytes = 256;
constexpr std::uint64_t kMapNodeBytes = 64;
constexpr std::uint64_t kAsnBytes = 48;  // a std::set node is ~this big

std::uint64_t state_bytes(const PrefixState& st) {
  return 96 + kAsnBytes * static_cast<std::uint64_t>(st.reference.size() + st.observed.size());
}

std::uint64_t alarm_bytes(const core::MoasAlarm& a) {
  return 160 + kAsnBytes * static_cast<std::uint64_t>(a.reference_list.size() +
                                                      a.observed_list.size() +
                                                      a.offending_origins.size());
}

/// observed introduces no origin outside the reference list.
bool covered_by(const bgp::AsnSet& reference, const bgp::AsnSet& observed) {
  return std::includes(reference.begin(), reference.end(), observed.begin(), observed.end());
}

void write_asn_set(std::string& line, const bgp::AsnSet& set) {
  line += ' ' + std::to_string(set.size());
  for (const bgp::Asn asn : set) line += ' ' + std::to_string(asn);
}

bgp::AsnSet read_asn_set(LineParser& p) {
  bgp::AsnSet set;
  const std::uint64_t n = p.u64();
  for (std::uint64_t i = 0; i < n; ++i) set.insert(static_cast<bgp::Asn>(p.u64()));
  return set;
}

net::Prefix read_prefix(LineParser& p) {
  const auto prefix = net::Prefix::parse(p.token());
  MOAS_REQUIRE(prefix.has_value(), "checkpoint: bad prefix");
  return *prefix;
}

void write_histogram(CheckpointWriter& w, const char* tag, const obs::FixedHistogram& h) {
  std::string line = tag;
  line += ' ' + std::to_string(h.underflow()) + ' ' + std::to_string(h.overflow()) + ' ' +
          std::to_string(h.count()) + ' ' + double_bits(h.sum()) + ' ' + double_bits(h.min()) +
          ' ' + double_bits(h.max());
  for (const std::uint64_t c : h.bucket_counts()) line += ' ' + std::to_string(c);
  w.line(line);
}

obs::FixedHistogram read_histogram(CheckpointReader& r, const char* tag,
                                   const obs::HistogramSpec& spec) {
  LineParser p(r.next());
  p.expect(tag);
  const std::uint64_t underflow = p.u64();
  const std::uint64_t overflow = p.u64();
  const std::uint64_t count = p.u64();
  const double sum = p.f64();
  const double min = p.f64();
  const double max = p.f64();
  std::vector<std::uint64_t> counts(spec.buckets);
  for (auto& c : counts) c = p.u64();
  return obs::FixedHistogram::restore(spec, std::move(counts), underflow, overflow, count, sum,
                                      min, max);
}

}  // namespace

obs::HistogramSpec duration_spec() { return obs::HistogramSpec{0.0, 1.0, 64}; }
obs::HistogramSpec latency_spec() { return obs::HistogramSpec{0.0, 0.25, 120}; }

DetectorShard::DetectorShard(ShardConfig config)
    : config_(config),
      durations_(duration_spec()),
      latencies_(latency_spec()),
      bytes_held_(kShardBaseBytes),
      peak_bytes_(kShardBaseBytes) {
  MOAS_REQUIRE(config.conflict_ttl_days > 0.0, "conflict TTL must be positive");
  MOAS_REQUIRE(config.evict_idle_days >= 0, "idle window must be non-negative");
  log_.set_retention(config.alarm_retention);
}

void DetectorShard::process(const int flush_day, const StreamUpdate& u, const bool full) {
  auto [it, fresh] = states_.try_emplace(u.prefix);
  PrefixState& st = it->second;
  if (fresh) {
    st.reference = u.origins;  // first sight: adopt as the MOAS list
    st.first_day = u.day;
  }

  if (!covered_by(st.reference, u.origins)) {
    st.observed = u.origins;
    if (st.alarm_id < 0) {
      core::MoasAlarm alarm;
      alarm.at = u.at;
      alarm.observer = kStreamObserver;
      alarm.prefix = u.prefix;
      alarm.reference_list = st.reference;
      alarm.observed_list = u.origins;
      for (const bgp::Asn asn : u.origins) {
        if (!st.reference.contains(asn)) alarm.offending_origins.insert(asn);
      }
      alarm.cause = core::MoasAlarm::Cause::ListMismatch;
      const std::size_t id = log_.record(std::move(alarm));
      st.alarm_id = static_cast<std::int64_t>(id);
      st.conflict_since = u.at;
      st.conflict_day = u.day;
      ++counters_.alarms_raised;
      latencies_.add(static_cast<double>(flush_day) + 1.0 - u.at);

      // Did the feed skip days between our last sighting and this one? The
      // conflict may have started unseen inside the gap — park the alarm as
      // Pending instead of asserting a fresh hijack story.
      const int unseen_from = st.last_day + 1;
      const int unseen_to = u.day - 1;
      if (unseen_from <= unseen_to) {
        for (const auto& g : gaps_) {
          if (g.first_day <= unseen_to && g.last_day >= unseen_from) {
            log_.settle(id, core::MoasAlarm::State::Pending, u.at);
            ++counters_.alarms_parked;
            break;
          }
        }
      }
    }
  } else if (st.alarm_id >= 0) {
    // The announced set is covered by the reference again: conflict over.
    log_.settle(static_cast<std::size_t>(st.alarm_id), core::MoasAlarm::State::Resolved, u.at);
    ++counters_.alarms_resolved;
    st.alarm_id = -1;
    st.conflict_since = -1.0;
    st.conflict_day = -1;
    st.observed.clear();
  }

  const bool accrues = u.origins.size() >= 2 && u.day > st.last_moas_day;
  if (full) {
    ++counters_.processed;
    if (accrues) {
      ++st.duration_days;
      st.last_moas_day = u.day;
    }
    st.max_origins = std::max(st.max_origins, u.origins.size());
  } else {
    ++counters_.shed_updates;
    if (accrues) ++counters_.moas_days_shed;
  }
  st.last_day = std::max(st.last_day, u.day);
}

void DetectorShard::process_day(const int day, const std::vector<chaos::GapWindow>& new_gaps,
                                const std::vector<const StreamUpdate*>& batch) {
  for (const auto& g : new_gaps) gaps_.push_back(g);

  std::size_t full_used = 0;
  for (const StreamUpdate* u : batch) {
    MOAS_REQUIRE(!u->malformed, "malformed update reached a shard");
    const auto it = states_.find(u->prefix);
    const bool alarm_open = it != states_.end() && it->second.alarm_id >= 0;
    // Admission control: alarm-carrying prefixes always get the full path;
    // everyone else does until the day's capacity runs out.
    const bool full =
        alarm_open || config_.day_capacity == 0 || full_used < config_.day_capacity;
    if (full && !alarm_open) ++full_used;
    process(day, *u, full);
  }
  end_day(day);
}

void DetectorShard::end_day(const int day) {
  // Conflict TTL: an alarm open this long is churn, not attack. Expire it
  // and adopt the observed origins so the prefix stops alarming.
  for (auto& [prefix, st] : states_) {
    if (st.alarm_id < 0 || st.conflict_day < 0) continue;
    if (static_cast<double>(day - st.conflict_day) < config_.conflict_ttl_days) continue;
    log_.settle(static_cast<std::size_t>(st.alarm_id), core::MoasAlarm::State::Expired,
                static_cast<double>(day) + 1.0);
    ++counters_.alarms_expired;
    for (const bgp::Asn asn : st.observed) st.reference.insert(asn);
    st.alarm_id = -1;
    st.conflict_since = -1.0;
    st.conflict_day = -1;
    st.observed.clear();
  }

  bytes_held_ = recompute_bytes();
  if (config_.memory_budget_bytes > 0 && bytes_held_ > config_.memory_budget_bytes) {
    // Two eviction passes over alarm-free prefixes, coldest first: idle
    // ones, then (under sustained pressure) warm ones too.
    std::vector<std::pair<int, net::Prefix>> idle;
    std::vector<std::pair<int, net::Prefix>> warm;
    for (const auto& [prefix, st] : states_) {
      if (st.alarm_id >= 0) continue;
      auto& bucket = (day - st.last_day >= config_.evict_idle_days) ? idle : warm;
      bucket.emplace_back(st.last_day, prefix);
    }
    std::sort(idle.begin(), idle.end());
    std::sort(warm.begin(), warm.end());

    const auto evict_from = [&](const std::vector<std::pair<int, net::Prefix>>& order,
                                const bool live) {
      for (const auto& [last_day, prefix] : order) {
        if (bytes_held_ <= config_.memory_budget_bytes) return;
        const auto it = states_.find(prefix);
        const PrefixState& st = it->second;
        if (st.duration_days > 0) durations_.add(static_cast<double>(st.duration_days));
        bytes_held_ -= state_bytes(st) + kMapNodeBytes;
        ++counters_.evicted_prefixes;
        if (live) ++counters_.evicted_live;
        states_.erase(it);
      }
    };
    evict_from(idle, false);
    evict_from(warm, true);
  }
  peak_bytes_ = std::max(peak_bytes_, bytes_held_);
}

void DetectorShard::finish(const double at) {
  for (auto& [prefix, st] : states_) {
    if (st.alarm_id < 0) continue;
    log_.settle(static_cast<std::size_t>(st.alarm_id), core::MoasAlarm::State::Expired, at);
    ++counters_.alarms_expired;
    st.alarm_id = -1;
    st.conflict_since = -1.0;
    st.conflict_day = -1;
  }
  bytes_held_ = recompute_bytes();
  peak_bytes_ = std::max(peak_bytes_, bytes_held_);
}

std::size_t DetectorShard::open_alarms() const {
  std::size_t n = 0;
  for (const auto& [prefix, st] : states_) n += st.alarm_id >= 0 ? 1 : 0;
  return n;
}

std::uint64_t DetectorShard::recompute_bytes() const {
  std::uint64_t bytes = kShardBaseBytes + 16 * static_cast<std::uint64_t>(gaps_.size());
  for (const auto& [prefix, st] : states_) bytes += state_bytes(st) + kMapNodeBytes;
  for (const auto& alarm : log_.alarms()) bytes += alarm_bytes(alarm);
  return bytes;
}

obs::FixedHistogram DetectorShard::duration_histogram() const {
  obs::FixedHistogram out = durations_;
  for (const auto& [prefix, st] : states_) {
    if (st.duration_days > 0) out.add(static_cast<double>(st.duration_days));
  }
  return out;
}

void DetectorShard::save(CheckpointWriter& w) const {
  {
    std::string line = "counters";
    for (const std::uint64_t v :
         {counters_.processed, counters_.shed_updates, counters_.moas_days_shed,
          counters_.alarms_raised, counters_.alarms_resolved, counters_.alarms_expired,
          counters_.alarms_parked, counters_.evicted_prefixes, counters_.evicted_live}) {
      line += ' ' + std::to_string(v);
    }
    w.line(line);
  }
  w.line("bytes " + std::to_string(bytes_held_) + ' ' + std::to_string(peak_bytes_));

  w.line("gaps " + std::to_string(gaps_.size()));
  for (const auto& g : gaps_) {
    w.line("gap " + std::to_string(g.first_day) + ' ' + std::to_string(g.last_day));
  }

  write_histogram(w, "durations", durations_);
  write_histogram(w, "latencies", latencies_);

  {
    std::string line = "alarmlog " + std::to_string(log_.first_retained());
    for (const std::uint64_t v : log_.compacted_by_state()) line += ' ' + std::to_string(v);
    for (const std::uint64_t v : log_.compacted_by_cause()) line += ' ' + std::to_string(v);
    line += ' ' + std::to_string(log_.alarms().size());
    w.line(line);
  }
  for (const auto& a : log_.alarms()) {
    std::string line = "alarm " + double_bits(a.at) + ' ' + double_bits(a.settled_at) + ' ' +
                       std::to_string(a.observer) + ' ' +
                       std::to_string(static_cast<unsigned>(a.cause)) + ' ' +
                       std::to_string(static_cast<unsigned>(a.state)) + ' ' +
                       a.prefix.to_string();
    write_asn_set(line, a.reference_list);
    write_asn_set(line, a.observed_list);
    write_asn_set(line, a.offending_origins);
    w.line(line);
  }

  w.line("states " + std::to_string(states_.size()));
  for (const auto& [prefix, st] : states_) {
    std::string line = "state " + prefix.to_string() + ' ' + std::to_string(st.first_day) + ' ' +
                       std::to_string(st.last_day) + ' ' + std::to_string(st.last_moas_day) +
                       ' ' + std::to_string(st.duration_days) + ' ' +
                       std::to_string(st.max_origins) + ' ' + std::to_string(st.alarm_id) + ' ' +
                       double_bits(st.conflict_since) + ' ' + std::to_string(st.conflict_day);
    write_asn_set(line, st.reference);
    write_asn_set(line, st.observed);
    w.line(line);
  }
}

void DetectorShard::load(CheckpointReader& r) {
  MOAS_REQUIRE(states_.empty() && log_.empty(), "shard restore needs a fresh shard");

  {
    LineParser p(r.next());
    p.expect("counters");
    counters_.processed = p.u64();
    counters_.shed_updates = p.u64();
    counters_.moas_days_shed = p.u64();
    counters_.alarms_raised = p.u64();
    counters_.alarms_resolved = p.u64();
    counters_.alarms_expired = p.u64();
    counters_.alarms_parked = p.u64();
    counters_.evicted_prefixes = p.u64();
    counters_.evicted_live = p.u64();
  }
  {
    LineParser p(r.next());
    p.expect("bytes");
    bytes_held_ = p.u64();
    peak_bytes_ = p.u64();
  }

  {
    LineParser p(r.next());
    p.expect("gaps");
    const std::uint64_t n = p.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      LineParser g(r.next());
      g.expect("gap");
      chaos::GapWindow window;
      window.first_day = g.day();
      window.last_day = g.day();
      gaps_.push_back(window);
    }
  }

  durations_ = read_histogram(r, "durations", duration_spec());
  latencies_ = read_histogram(r, "latencies", latency_spec());

  {
    LineParser p(r.next());
    p.expect("alarmlog");
    const std::size_t base = p.u64();
    std::array<std::uint64_t, 4> by_state{};
    std::array<std::uint64_t, 3> by_cause{};
    for (auto& v : by_state) v = p.u64();
    for (auto& v : by_cause) v = p.u64();
    const std::uint64_t retained = p.u64();
    log_.restore_compacted(base, by_state, by_cause);
    for (std::uint64_t i = 0; i < retained; ++i) {
      LineParser a(r.next());
      a.expect("alarm");
      core::MoasAlarm alarm;
      alarm.at = a.f64();
      alarm.settled_at = a.f64();
      alarm.observer = static_cast<bgp::Asn>(a.u64());
      alarm.cause = static_cast<core::MoasAlarm::Cause>(a.u64());
      alarm.state = static_cast<core::MoasAlarm::State>(a.u64());
      alarm.prefix = read_prefix(a);
      alarm.reference_list = read_asn_set(a);
      alarm.observed_list = read_asn_set(a);
      alarm.offending_origins = read_asn_set(a);
      log_.record(std::move(alarm));
    }
  }

  {
    LineParser p(r.next());
    p.expect("states");
    const std::uint64_t n = p.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      LineParser s(r.next());
      s.expect("state");
      const net::Prefix prefix = read_prefix(s);
      PrefixState st;
      st.first_day = s.day();
      st.last_day = s.day();
      st.last_moas_day = s.day();
      st.duration_days = s.day();
      st.max_origins = s.u64();
      st.alarm_id = s.i64();
      st.conflict_since = s.f64();
      st.conflict_day = s.day();
      st.reference = read_asn_set(s);
      st.observed = read_asn_set(s);
      states_.emplace(prefix, std::move(st));
    }
  }
}

bool DetectorShard::operator==(const DetectorShard& other) const {
  return config_ == other.config_ && states_ == other.states_ && log_ == other.log_ &&
         gaps_ == other.gaps_ && durations_ == other.durations_ &&
         latencies_ == other.latencies_ && counters_ == other.counters_ &&
         bytes_held_ == other.bytes_held_ && peak_bytes_ == other.peak_bytes_;
}

}  // namespace moas::stream
