#include "moas/stream/feed.h"

namespace moas::stream {

FaultyFeed::FaultyFeed(UpdateFeed& inner, const chaos::FeedFaultSchedule& schedule)
    : inner_(&inner), schedule_(&schedule) {}

void FaultyFeed::fill() {
  // Pull until the earliest pending item is due at the current slot — a
  // delayed update is overtaken by exactly the traffic the skew says.
  while (!inner_done_ && (pending_.empty() || pending_.top().release > slot_)) {
    auto u = inner_->next();
    if (!u.has_value()) {
      inner_done_ = true;
      break;
    }
    const std::uint64_t slot = slot_++;
    if (schedule_->gapped(u->day)) {
      ++counters_.gap_dropped;
      continue;
    }
    const auto decision = schedule_->decide(u->seq);
    if (decision.garble) {
      ++counters_.garbled;
      u->malformed = true;
      u->origins.clear();
    }
    std::uint64_t release = slot;
    if (decision.reorder_skew > 0) {
      ++counters_.reordered;
      release += static_cast<std::uint64_t>(decision.reorder_skew);
    }
    if (decision.duplicate) {
      ++counters_.duplicated;
      pending_.push(Item{release + 1, order_ + 1, *u});
    }
    pending_.push(Item{release, order_, std::move(*u)});
    order_ += 2;  // keep (original, copy) adjacent in the tie-break order
  }
}

std::optional<StreamUpdate> FaultyFeed::next() {
  fill();
  if (pending_.empty()) return std::nullopt;
  StreamUpdate u = pending_.top().update;
  pending_.pop();
  return u;
}

}  // namespace moas::stream
