// Replaying the synthetic trace as a time-ordered update stream, with
// injected false originations and legitimate origin churn on top.
//
// The batch pipeline (measure::observer) sees whole-day snapshots; the
// streaming detector must survive the same workload one observation at a
// time. TraceReplaySource materializes each trace day as per-prefix
// StreamUpdates with deterministic intra-day timestamps, applies any
// OriginOverride windows, and hands them out in (at, prefix) order with
// dense sequence numbers — the same seed yields a byte-identical stream no
// matter how the consumer is threaded, checkpointed, or restored.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "moas/chaos/feed_fault.h"
#include "moas/core/alarm.h"
#include "moas/measure/trace_gen.h"
#include "moas/stream/update.h"

namespace moas::stream {

/// Add `add_origin` to `prefix`'s announced origin set on every day in
/// [first_day, last_day] (inclusive) on which the prefix is active. Both
/// injected attacks and legitimate churn are expressed this way; the
/// detector cannot tell them apart except by how long they persist.
struct OriginOverride {
  net::Prefix prefix;
  bgp::Asn add_origin = bgp::kNoAs;
  int first_day = 0;
  int last_day = 0;

  bool operator==(const OriginOverride&) const = default;
};

/// One planned false origination: the override plus the ground-truth time
/// the first hijacked announcement enters the feed (for latency SLOs).
struct AttackPlan {
  OriginOverride inject;
  double injected_at = 0.0;
};

struct AttackConfig {
  std::uint64_t seed = 7;
  std::size_t attacks = 20;
  /// Attack length: 1 + Poisson(duration_mean_days - 1) active days.
  double duration_mean_days = 3.0;
  /// Victim must have been stably announced this many days before the
  /// attack starts (the reference list is warm) ...
  int lead_days = 5;
  /// ... and keep announcing this many days after it ends (so the alarm can
  /// observe the conflict clear and resolve).
  int margin_days = 3;
  /// Restrict planning to cases fully active before this day (0 = whole
  /// trace). Lets short replays host attacks they can actually finish.
  int max_day = 0;
};

/// Plan `attacks` false originations against long-lived valid cases, at
/// most one per prefix, never against a prefix in `avoid`. Deterministic in
/// the seed. Throws std::invalid_argument if the trace cannot host the
/// requested count.
std::vector<AttackPlan> plan_attacks(const measure::SyntheticTrace& trace,
                                     const AttackConfig& config,
                                     const std::vector<OriginOverride>& avoid = {});

struct ChurnConfig {
  std::uint64_t seed = 11;
  /// Share of eligible (long-lived valid) cases that legitimately gain an
  /// origin partway through their life and keep it until the case ends.
  double share = 0.0;
  int min_active_days = 60;
};

/// Plan legitimate origin churn: the false-alarm stressor. A churned prefix
/// raises a real mismatch that never clears, which only the conflict-TTL
/// adoption path can retire.
std::vector<OriginOverride> plan_churn(const measure::SyntheticTrace& trace,
                                       const ChurnConfig& config);

/// Replays a SyntheticTrace day by day as a flat update stream.
class TraceReplaySource final : public UpdateFeed {
 public:
  /// `trace` must outlive the source. `limit_days` truncates the replay
  /// (0 = all days). Overrides may target any prefix; days on which the
  /// prefix is inactive are skipped (no announcement to modify).
  TraceReplaySource(const measure::SyntheticTrace& trace,
                    std::vector<OriginOverride> overrides = {}, int limit_days = 0);

  std::optional<StreamUpdate> next() override;

  int days() const { return days_; }
  std::uint64_t emitted() const { return next_seq_; }

 private:
  void load_day(int day);

  const measure::SyntheticTrace* trace_;
  std::map<net::Prefix, std::vector<OriginOverride>> overrides_;
  int days_ = 0;
  int next_day_ = 0;
  std::uint64_t next_seq_ = 0;
  std::deque<StreamUpdate> queue_;
};

/// Ground-truth evaluation of one attack after a run.
struct AttackOutcome {
  AttackPlan plan;
  /// False when every attack day fell inside a feed gap window: no detector
  /// could have seen it, so it is excluded from the zero-lost-alarms gate.
  bool observable = true;
  bool alarmed = false;
  double first_alarm_at = -1.0;
  double latency_days = -1.0;  // first_alarm_at - injected_at
  /// State of the first alarm raised at/after the injection (Raised when
  /// none was).
  core::MoasAlarm::State final_state = core::MoasAlarm::State::Raised;
  /// True when every alarm for the prefix reached a terminal state.
  bool all_settled = true;
};

/// Match each plan against the merged alarm log. `faults` (may be null)
/// supplies the gap windows for the observability check.
std::vector<AttackOutcome> evaluate_attacks(const std::vector<AttackPlan>& plans,
                                            const std::vector<core::MoasAlarm>& alarms,
                                            const chaos::FeedFaultSchedule* faults);

}  // namespace moas::stream
