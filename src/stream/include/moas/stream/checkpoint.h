// Checkpoint framing: versioned, checksummed, line-oriented text.
//
// A stream checkpoint is a sequence of space-separated token lines between
// a version header and a checksum trailer:
//
//   # moasguard stream checkpoint v1
//   <payload line>
//   ...
//   checksum <16 hex digits>
//
// The checksum is FNV-1a over every payload byte (header included, newlines
// included), so truncation, bit rot, and editing are all detected before a
// single field is parsed. Doubles are serialized as the hex of their bit
// pattern — restore is bit-exact, which the crash/restore differential
// tests depend on.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <sstream>
#include <string>
#include <vector>

namespace moas::stream {

inline constexpr std::string_view kCheckpointHeader = "# moasguard stream checkpoint v1";

/// Streams payload lines to `os`, accumulating the running checksum.
/// Writes the version header on construction; finish() writes the trailer.
class CheckpointWriter {
 public:
  explicit CheckpointWriter(std::ostream& os);

  /// Write one payload line (a trailing '\n' is appended and hashed).
  void line(const std::string& text);

  /// Write the checksum trailer. The writer must not be used afterwards.
  void finish();

 private:
  std::ostream* os_;
  std::uint64_t hash_;
  bool finished_ = false;
};

/// Reads a whole checkpoint up front, verifying the header and checksum.
/// Throws std::invalid_argument on a missing/wrong header, a corrupted or
/// absent trailer, or a checksum mismatch. Payload lines are then consumed
/// sequentially with next().
class CheckpointReader {
 public:
  explicit CheckpointReader(std::istream& is);

  /// The next payload line. Throws std::invalid_argument when exhausted
  /// (a truncated logical structure inside an intact frame).
  const std::string& next();
  bool done() const { return cursor_ >= lines_.size(); }

 private:
  std::vector<std::string> lines_;
  std::size_t cursor_ = 0;
};

/// Bit-exact double round-trip: 16 hex digits of the IEEE-754 pattern.
std::string double_bits(double value);
double double_from_bits(const std::string& text);

/// Tokenizer for payload lines: whitespace-split fields, typed extraction,
/// hard failure (std::invalid_argument) on any mismatch.
class LineParser {
 public:
  explicit LineParser(const std::string& line) : in_(line) {}

  std::string token();
  std::uint64_t u64();
  std::int64_t i64();
  int day() { return static_cast<int>(i64()); }
  double f64();  // reads a double_bits() token

  /// Consume a token and require it to equal `expected`.
  void expect(std::string_view expected);

 private:
  std::istringstream in_;
};

}  // namespace moas::stream
