// The long-lived streaming MOAS detector.
//
// Architecture: a strictly serial ingest front-end feeding prefix-hashed
// shards that run in parallel, one flushed day at a time.
//
//   feed -> ingest (dedup, reject malformed, buffer by day)
//        -> flush day d once `flush_margin` later-day updates arrived
//        -> sort batch by (at, seq), slice by shard_of(prefix)
//        -> ThreadPool::parallel_for over shards (disjoint state)
//        -> barrier; front-end emits trace events, updates gauges
//
// Every decision that depends on order is made either in the serial
// front-end or inside one shard from its own deterministic state, so the
// whole pipeline — alarms, metrics, checkpoints — is byte-identical for
// any --jobs value. That invariant is what makes crash/restore testable:
// restore a checkpoint, fast-forward the recreated feed chain past
// consumed() updates, run to the end, and the result must equal an
// uninterrupted run bit for bit.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "moas/obs/metrics.h"
#include "moas/obs/trace.h"
#include "moas/stream/shard.h"
#include "moas/stream/update.h"
#include "moas/util/thread_pool.h"

namespace moas::stream {

struct StreamConfig {
  /// Number of prefix-hash shards (parallelism grain, not thread count).
  std::size_t shards = 8;
  /// Worker threads (0 = ThreadPool::default_jobs()). Not part of the
  /// checkpoint fingerprint: results are identical for any value.
  std::size_t jobs = 0;
  /// Backpressure bound: day d is flushed to the shards once this many
  /// updates of later days have been delivered (the transport's reorder
  /// skew is slots, so a small margin guarantees day completeness), or at
  /// end of feed. Also bounds ingest buffering: at most ~margin updates of
  /// later days sit buffered beyond the open day.
  int flush_margin = 64;
  /// Sliding window of recent sequence numbers for duplicate suppression.
  std::size_t dup_window = 4096;
  /// Checkpoint cadence in flushed days (0 = only on demand).
  int checkpoint_every_days = 0;
  ShardConfig shard;

  bool operator==(const StreamConfig&) const = default;
};

/// Ingest-side counters (shard counters live in DetectorShard).
struct FrontCounters {
  std::uint64_t delivered = 0;
  std::uint64_t malformed_rejected = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t late_updates = 0;  // arrived after their day was flushed
  std::uint64_t gap_days = 0;      // feed-dark days detected
  std::uint64_t days_flushed = 0;

  bool operator==(const FrontCounters&) const = default;
};

class StreamDetector {
 public:
  explicit StreamDetector(StreamConfig config);

  StreamDetector(StreamDetector&&) = default;
  StreamDetector& operator=(StreamDetector&&) = default;

  /// Called at each checkpoint boundary with the detector quiesced (all
  /// flushed days fully processed) and the just-flushed day.
  using CheckpointSink = std::function<void(const StreamDetector&, int day)>;

  /// Consume the whole feed, then finish(). `sink` (optional) fires every
  /// checkpoint_every_days flushed days.
  void run(UpdateFeed& feed, const CheckpointSink& sink = {});

  /// Incremental front-end (what run() loops over): deliver one update.
  void ingest(StreamUpdate u);
  /// Flush every buffered day regardless of margin.
  void flush_all();
  /// Expire remaining open alarms; the detector is read-only afterwards.
  void finish();

  const StreamConfig& config() const { return config_; }
  std::uint64_t consumed() const { return consumed_; }
  int last_flushed_day() const { return last_flushed_day_; }
  bool finished() const { return finished_; }
  const FrontCounters& front_counters() const { return front_; }
  const std::vector<DetectorShard>& shards() const { return shards_; }

  /// All retained alarms across shards, sorted by (at, prefix).
  std::vector<core::MoasAlarm> merged_alarms() const;

  /// Canonical human-readable log; byte-identical for equal detectors.
  std::string alarm_log_text() const;

  /// stream.* counters and gauges plus the duration/latency histograms.
  obs::MetricsRegistry metrics() const;

  /// Aggregate footprint across shards (accounting bytes, post-compaction).
  std::uint64_t bytes_held() const;
  std::uint64_t peak_bytes() const { return peak_total_bytes_; }

  void save_checkpoint(std::ostream& os) const;
  /// Rebuild from a checkpoint. `config` must match the checkpointed
  /// structural fields (shards, margins, shard policy); jobs and
  /// checkpoint cadence are runtime choices and may differ. The caller
  /// fast-forwards the feed chain past consumed() updates and resumes with
  /// run(). Throws std::invalid_argument on damage or config mismatch.
  static StreamDetector restore_checkpoint(std::istream& is, StreamConfig config);

  /// Attach the trace bus (events are emitted from the serial front-end
  /// only, post-barrier, so the non-thread-safe bus is safe here).
  void set_trace(obs::TraceBus* bus) { trace_ = bus; }

  std::size_t shard_of(const net::Prefix& prefix) const {
    return static_cast<std::size_t>(mix64(prefix_key(prefix)) %
                                    static_cast<std::uint64_t>(shards_.size()));
  }

  bool operator==(const StreamDetector& other) const;

 private:
  void flush_ready();
  void flush_day(int day, std::vector<StreamUpdate> batch);
  void maybe_checkpoint(const CheckpointSink& sink);
  util::ThreadPool& pool();

  StreamConfig config_;
  std::vector<DetectorShard> shards_;
  std::unique_ptr<util::ThreadPool> pool_;  // lazy; never checkpointed

  std::uint64_t consumed_ = 0;
  int last_flushed_day_ = -1;
  int last_checkpoint_day_ = -1;
  bool finished_ = false;
  FrontCounters front_;
  std::uint64_t peak_total_bytes_ = 0;

  std::map<int, std::vector<StreamUpdate>> buffered_;  // open day batches
  std::map<int, std::uint64_t> later_counts_;  // per open day: later-day deliveries
  std::deque<std::uint64_t> dup_order_;        // dedup window, FIFO
  std::set<std::uint64_t> dup_seen_;

  obs::TraceBus* trace_ = nullptr;
};

}  // namespace moas::stream
