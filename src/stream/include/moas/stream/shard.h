// One shard of the streaming detector: the MOAS-list state, alarm log, and
// robustness policies for the slice of the prefix space hashed to it.
//
// Shards are the unit of parallelism. Each owns a disjoint set of prefixes,
// so the pool can run all shards of one day batch concurrently with no
// shared mutable state; every decision a shard makes (shedding, eviction,
// TTL expiry) depends only on its own deterministic state and the batch
// contents, which is what makes results byte-identical across --jobs.
//
// Robustness policies, in the order they act on a day:
//   admission   per-day full-processing capacity; overflow updates are
//               processed summary-only (detection still runs, measurement
//               accrual is shed) — prefixes with an open alarm are always
//               processed fully, so no alarm is ever lost to shedding
//   parking     a mismatch first observed across a feed gap settles the
//               alarm to Pending: the conflict may predate the gap and
//               blaming the first post-gap update would be a false story
//   TTL         a conflict open >= conflict_ttl_days is expired and the
//               observed set adopted as the new reference (long-lived MOAS
//               churn is legitimate multi-homing, not an attack)
//   eviction    when the byte estimate exceeds the budget, cold alarm-free
//               prefix state is folded into the duration histogram and
//               dropped; alarm-carrying state is never evicted
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "moas/bgp/asn.h"
#include "moas/chaos/feed_fault.h"
#include "moas/core/alarm.h"
#include "moas/net/prefix.h"
#include "moas/obs/metrics.h"
#include "moas/stream/checkpoint.h"
#include "moas/stream/update.h"

namespace moas::stream {

/// The AS number the streaming monitor signs its alarms with (a private-use
/// ASN; the monitor is an observer, not a routing participant).
inline constexpr bgp::Asn kStreamObserver = 64512;

struct ShardConfig {
  /// Expire-and-adopt horizon for open conflicts, in days.
  double conflict_ttl_days = 10.0;
  /// Per-day cap on fully processed prefixes without an open alarm
  /// (0 = unlimited). Beyond it the shard degrades to summary-only.
  std::size_t day_capacity = 0;
  /// Byte budget for the shard's estimated footprint (0 = unlimited).
  std::uint64_t memory_budget_bytes = 0;
  /// A prefix unseen this many days is cold and evicted first.
  int evict_idle_days = 30;
  /// AlarmLog retention cap (0 = unlimited).
  std::size_t alarm_retention = 0;

  bool operator==(const ShardConfig&) const = default;
};

/// Everything the shard remembers about one prefix.
struct PrefixState {
  bgp::AsnSet reference;  // the adopted MOAS list
  bgp::AsnSet observed;   // last conflicting origin set (empty when clear)
  int first_day = 0;
  int last_day = -1;       // last day an update for the prefix was seen
  int last_moas_day = -1;  // last day duration accrued
  int duration_days = 0;   // paper-definition MOAS duration
  std::size_t max_origins = 0;
  std::int64_t alarm_id = -1;   // open alarm in the shard log (-1 = none)
  double conflict_since = -1.0;
  int conflict_day = -1;

  bool operator==(const PrefixState&) const = default;
};

struct ShardCounters {
  std::uint64_t processed = 0;         // updates processed fully
  std::uint64_t shed_updates = 0;      // updates degraded to summary-only
  std::uint64_t moas_days_shed = 0;    // duration accruals skipped by shedding
  std::uint64_t alarms_raised = 0;
  std::uint64_t alarms_resolved = 0;
  std::uint64_t alarms_expired = 0;
  std::uint64_t alarms_parked = 0;     // settled to Pending across a feed gap
  std::uint64_t evicted_prefixes = 0;
  std::uint64_t evicted_live = 0;      // evicted while still inside the idle window

  bool operator==(const ShardCounters&) const = default;
};

class DetectorShard {
 public:
  explicit DetectorShard(ShardConfig config);

  /// Process one flushed day batch. `new_gaps` are the feed-gap windows the
  /// front-end detected immediately before this day (usually empty).
  /// Updates must belong to this shard and be sorted by (at, seq).
  void process_day(int day, const std::vector<chaos::GapWindow>& new_gaps,
                   const std::vector<const StreamUpdate*>& batch);

  /// End of stream: expire every still-open alarm at time `at`.
  void finish(double at);

  const core::AlarmLog& alarms() const { return log_; }
  const ShardCounters& counters() const { return counters_; }
  std::uint64_t bytes_held() const { return bytes_held_; }
  std::uint64_t peak_bytes() const { return peak_bytes_; }
  std::size_t live_prefixes() const { return states_.size(); }
  std::size_t open_alarms() const;
  const std::map<net::Prefix, PrefixState>& states() const { return states_; }

  /// Evicted case durations plus the live states' current durations.
  obs::FixedHistogram duration_histogram() const;

  /// First-alarm latencies (alarm time minus start of the conflict's first
  /// day) for every alarm raised so far, as a fixed histogram in days.
  const obs::FixedHistogram& latency_histogram() const { return latencies_; }

  void save(CheckpointWriter& w) const;
  /// Restores into a freshly constructed shard with an equal config.
  void load(CheckpointReader& r);

  bool operator==(const DetectorShard&) const;

 private:
  void process(int flush_day, const StreamUpdate& u, bool full);
  void end_day(int day);
  std::uint64_t recompute_bytes() const;

  ShardConfig config_;
  std::map<net::Prefix, PrefixState> states_;
  core::AlarmLog log_;
  std::vector<chaos::GapWindow> gaps_;  // every gap window seen so far
  obs::FixedHistogram durations_;       // evicted/retired case durations
  obs::FixedHistogram latencies_;       // first-alarm latency in days
  ShardCounters counters_;
  std::uint64_t bytes_held_ = 0;
  std::uint64_t peak_bytes_ = 0;
};

/// The histogram spec shared by duration and latency metrics (unit: days).
obs::HistogramSpec duration_spec();
obs::HistogramSpec latency_spec();

}  // namespace moas::stream
