// The unit of work of the streaming pipeline: one per-prefix observation.
//
// A StreamUpdate is what one archive table line becomes once the feed layer
// has attributed it to a day and a delivery slot: "at time `at` (in days),
// prefix P was announced with origin set O". The batch pipeline consumes
// whole DailyDump maps; the streaming detector consumes these one at a
// time, in whatever order the transport delivers them.
#pragma once

#include <cstdint>
#include <optional>

#include "moas/bgp/asn.h"
#include "moas/net/prefix.h"

namespace moas::stream {

struct StreamUpdate {
  /// Feed sequence number, assigned by the source in emission order.
  /// Fault decisions and duplicate suppression key on it.
  std::uint64_t seq = 0;
  /// Trace day the observation belongs to.
  int day = 0;
  /// Observation time in days (day + a per-prefix intra-day fraction).
  double at = 0.0;
  /// A garbled line: it consumed a sequence number and a delivery slot but
  /// carries no parseable observation. The ingest front-end rejects it.
  bool malformed = false;
  net::Prefix prefix;
  bgp::AsnSet origins;

  bool operator==(const StreamUpdate&) const = default;
};

/// A pull-based update source. next() returns updates until the feed is
/// exhausted, then nullopt forever.
class UpdateFeed {
 public:
  virtual ~UpdateFeed() = default;
  virtual std::optional<StreamUpdate> next() = 0;
};

/// Discard the next `n` updates (checkpoint restore fast-forwards a freshly
/// recreated feed chain past everything the saved detector had consumed).
/// Throws std::invalid_argument if the feed runs dry first.
void fast_forward(UpdateFeed& feed, std::uint64_t n);

/// splitmix64 finalizer: the stream layer's stateless hash, used for
/// prefix -> shard assignment and per-prefix intra-day jitter. Pure, so the
/// same prefix lands on the same shard in every run and after any restore.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// A prefix's stable 64-bit identity (network address and mask length).
inline std::uint64_t prefix_key(const net::Prefix& prefix) {
  return (static_cast<std::uint64_t>(prefix.network().value()) << 8) |
         static_cast<std::uint64_t>(prefix.length());
}

/// Deterministic intra-day observation time in (0, 1): each prefix is seen
/// at a fixed fraction of the day, so `at = day + intra_day_frac(prefix)`.
inline double intra_day_frac(const net::Prefix& prefix) {
  const std::uint64_t h = mix64(prefix_key(prefix) ^ 0x5eedf00dULL);
  // 53 high bits -> [0, 1), squeezed into [0.05, 0.95) so observations
  // never collide with exact day boundaries.
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return 0.05 + 0.9 * u;
}

}  // namespace moas::stream
