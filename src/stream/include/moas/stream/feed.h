// Applying a chaos::FeedFaultSchedule to a clean update feed.
//
// FaultyFeed sits between a source and the detector and delivers exactly
// the adversity the schedule prescribes: whole gap days vanish, some
// updates arrive twice, some are delayed by a bounded number of delivery
// slots, and some arrive garbled (a line that consumes a slot but carries
// no observation). All decisions are pure functions of (seed, seq), so the
// same schedule over the same source is byte-identical every run.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "moas/chaos/feed_fault.h"
#include "moas/stream/update.h"

namespace moas::stream {

class FaultyFeed final : public UpdateFeed {
 public:
  /// Both referents must outlive the feed.
  FaultyFeed(UpdateFeed& inner, const chaos::FeedFaultSchedule& schedule);

  std::optional<StreamUpdate> next() override;

  struct Counters {
    std::uint64_t gap_dropped = 0;  // updates on dark days, never delivered
    std::uint64_t duplicated = 0;   // extra copies injected
    std::uint64_t reordered = 0;    // updates delayed past later traffic
    std::uint64_t garbled = 0;      // payloads destroyed in flight
  };
  const Counters& counters() const { return counters_; }

 private:
  struct Item {
    std::uint64_t release = 0;  // delivery slot this item becomes due
    std::uint64_t order = 0;    // tie-break: injection order
    StreamUpdate update;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      return a.release != b.release ? a.release > b.release : a.order > b.order;
    }
  };

  /// Pull from the inner feed until something is due (or the feed is dry).
  void fill();

  UpdateFeed* inner_;
  const chaos::FeedFaultSchedule* schedule_;
  std::priority_queue<Item, std::vector<Item>, Later> pending_;
  std::uint64_t slot_ = 0;   // delivery slots consumed from the inner feed
  std::uint64_t order_ = 0;  // monotone injection counter
  bool inner_done_ = false;
  Counters counters_;
};

}  // namespace moas::stream
