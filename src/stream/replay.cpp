#include "moas/stream/replay.h"

#include <algorithm>
#include <set>

#include "moas/util/assert.h"
#include "moas/util/rng.h"

namespace moas::stream {

namespace {

/// Long-lived valid cases whose whole active window fits before `max_day`
/// (0 = no limit) and spans at least `min_span` days. Trace active days are
/// contiguous for valid cases, so indexing into active_days is safe.
std::vector<std::size_t> eligible_cases(const measure::SyntheticTrace& trace, int max_day,
                                        std::size_t min_span) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < trace.cases.size(); ++i) {
    const auto& c = trace.cases[i];
    if (!c.valid() || c.active_days.size() < min_span) continue;
    if (max_day > 0 && c.active_days.back() >= max_day) continue;
    out.push_back(i);
  }
  return out;
}

}  // namespace

std::vector<AttackPlan> plan_attacks(const measure::SyntheticTrace& trace,
                                     const AttackConfig& config,
                                     const std::vector<OriginOverride>& avoid) {
  MOAS_REQUIRE(config.lead_days >= 0 && config.margin_days >= 0,
               "attack lead/margin must be non-negative");
  MOAS_REQUIRE(config.duration_mean_days >= 1.0, "attacks last at least one day");

  const std::size_t min_span = static_cast<std::size_t>(config.lead_days) +
                               static_cast<std::size_t>(config.margin_days) + 1;
  std::vector<std::size_t> candidates = eligible_cases(trace, config.max_day, min_span);

  std::set<net::Prefix> taken;
  for (const auto& o : avoid) taken.insert(o.prefix);

  util::Rng rng(config.seed ^ 0xa77ac4ULL);
  std::vector<AttackPlan> plans;
  rng.shuffle(candidates);
  for (const std::size_t idx : candidates) {
    if (plans.size() == config.attacks) break;
    const auto& c = trace.cases[idx];
    if (!taken.insert(c.prefix).second) continue;

    const std::size_t span = c.active_days.size();
    std::size_t duration = 1 + rng.poisson(config.duration_mean_days - 1.0);
    const std::size_t room = span - static_cast<std::size_t>(config.lead_days) -
                             static_cast<std::size_t>(config.margin_days);
    duration = std::min(duration, room);
    const std::size_t last_start = span - static_cast<std::size_t>(config.margin_days) - duration;
    const std::size_t start = rng.uniform(static_cast<std::uint64_t>(config.lead_days),
                                          static_cast<std::uint64_t>(last_start));

    AttackPlan plan;
    plan.inject.prefix = c.prefix;
    // Trace origins live in [1, 30000]; planner ASNs sit above, so an
    // injected origin can never collide with a legitimate one.
    plan.inject.add_origin = static_cast<bgp::Asn>(rng.uniform(50001, 60000));
    plan.inject.first_day = c.active_days[start];
    plan.inject.last_day = c.active_days[start + duration - 1];
    plan.injected_at = static_cast<double>(plan.inject.first_day) + intra_day_frac(c.prefix);
    plans.push_back(std::move(plan));
  }
  MOAS_REQUIRE(plans.size() == config.attacks,
               "trace cannot host the requested number of attacks");
  return plans;
}

std::vector<OriginOverride> plan_churn(const measure::SyntheticTrace& trace,
                                       const ChurnConfig& config) {
  MOAS_REQUIRE(config.share >= 0.0 && config.share <= 1.0, "churn share outside [0, 1]");
  MOAS_REQUIRE(config.min_active_days >= 4, "churn needs room to pick a pivot");

  util::Rng rng(config.seed ^ 0xc4e21ULL);
  std::vector<OriginOverride> out;
  for (const auto& c : trace.cases) {
    if (!c.valid() || c.active_days.size() < static_cast<std::size_t>(config.min_active_days)) {
      continue;
    }
    if (!rng.chance(config.share)) continue;
    const std::size_t span = c.active_days.size();
    const std::size_t pivot = rng.uniform(span / 4, (3 * span) / 4);
    OriginOverride o;
    o.prefix = c.prefix;
    o.add_origin = static_cast<bgp::Asn>(rng.uniform(40001, 50000));
    o.first_day = c.active_days[pivot];
    o.last_day = c.active_days.back();
    out.push_back(std::move(o));
  }
  return out;
}

TraceReplaySource::TraceReplaySource(const measure::SyntheticTrace& trace,
                                     std::vector<OriginOverride> overrides, int limit_days)
    : trace_(&trace) {
  days_ = (limit_days > 0 && limit_days < trace.days) ? limit_days : trace.days;
  for (auto& o : overrides) {
    MOAS_REQUIRE(o.first_day <= o.last_day, "override window runs backwards");
    MOAS_REQUIRE(o.add_origin != bgp::kNoAs, "override adds the null ASN");
    overrides_[o.prefix].push_back(std::move(o));
  }
}

void TraceReplaySource::load_day(int day) {
  measure::DailyDump dump = trace_->day_dump(day);
  std::vector<StreamUpdate> batch;
  batch.reserve(dump.origins.size());
  for (auto& [prefix, origins] : dump.origins) {
    if (const auto it = overrides_.find(prefix); it != overrides_.end()) {
      for (const auto& o : it->second) {
        if (day >= o.first_day && day <= o.last_day) origins.insert(o.add_origin);
      }
    }
    StreamUpdate u;
    u.day = day;
    u.at = static_cast<double>(day) + intra_day_frac(prefix);
    u.prefix = prefix;
    u.origins = std::move(origins);
    batch.push_back(std::move(u));
  }
  std::sort(batch.begin(), batch.end(), [](const StreamUpdate& a, const StreamUpdate& b) {
    return a.at != b.at ? a.at < b.at : a.prefix < b.prefix;
  });
  for (auto& u : batch) {
    u.seq = next_seq_++;
    queue_.push_back(std::move(u));
  }
}

std::optional<StreamUpdate> TraceReplaySource::next() {
  while (queue_.empty() && next_day_ < days_) load_day(next_day_++);
  if (queue_.empty()) return std::nullopt;
  StreamUpdate u = std::move(queue_.front());
  queue_.pop_front();
  return u;
}

void fast_forward(UpdateFeed& feed, std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) {
    MOAS_REQUIRE(feed.next().has_value(), "fast_forward ran past the end of the feed");
  }
}

std::vector<AttackOutcome> evaluate_attacks(const std::vector<AttackPlan>& plans,
                                            const std::vector<core::MoasAlarm>& alarms,
                                            const chaos::FeedFaultSchedule* faults) {
  std::vector<AttackOutcome> out;
  out.reserve(plans.size());
  for (const auto& plan : plans) {
    AttackOutcome o;
    o.plan = plan;

    if (faults != nullptr) {
      o.observable = false;
      for (int day = plan.inject.first_day; day <= plan.inject.last_day; ++day) {
        if (!faults->gapped(day)) {
          o.observable = true;
          break;
        }
      }
    }

    for (const auto& alarm : alarms) {
      if (alarm.prefix != plan.inject.prefix) continue;
      if (alarm.state == core::MoasAlarm::State::Raised ||
          alarm.state == core::MoasAlarm::State::Pending) {
        o.all_settled = false;
      }
      if (alarm.at + 1e-9 < plan.injected_at) continue;
      if (!o.alarmed || alarm.at < o.first_alarm_at) {
        o.alarmed = true;
        o.first_alarm_at = alarm.at;
        o.final_state = alarm.state;
      }
    }
    if (o.alarmed) o.latency_days = o.first_alarm_at - plan.injected_at;
    out.push_back(std::move(o));
  }
  return out;
}

}  // namespace moas::stream
