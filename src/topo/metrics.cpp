#include "moas/topo/metrics.h"

#include <cmath>
#include <deque>

#include "moas/util/assert.h"
#include "moas/util/rng.h"

namespace moas::topo {

DegreeStats degree_stats(const AsGraph& graph) {
  DegreeStats stats;
  double sum = 0.0;
  double log_sum = 0.0;
  std::size_t tail_n = 0;
  constexpr double x_min = 2.0;
  for (Asn asn : graph.nodes()) {
    const std::size_t d = graph.degree(asn);
    ++stats.histogram[d];
    sum += static_cast<double>(d);
    stats.max = std::max(stats.max, d);
    if (static_cast<double>(d) >= x_min) {
      log_sum += std::log(static_cast<double>(d) / (x_min - 0.5));
      ++tail_n;
    }
  }
  if (graph.node_count() > 0) sum /= static_cast<double>(graph.node_count());
  stats.mean = sum;
  if (tail_n > 0 && log_sum > 0.0) {
    stats.power_law_alpha = 1.0 + static_cast<double>(tail_n) / log_sum;
  }
  return stats;
}

double fraction_cut_off(const AsGraph& graph, const AsnSet& sources, const AsnSet& removed) {
  MOAS_REQUIRE(!sources.empty(), "need at least one source");
  // Multi-source BFS avoiding removed nodes.
  AsnSet seen;
  std::deque<Asn> frontier;
  for (Asn s : sources) {
    MOAS_REQUIRE(graph.has_node(s), "source not in graph");
    if (removed.contains(s)) continue;  // a cut source reaches nobody
    seen.insert(s);
    frontier.push_back(s);
  }
  while (!frontier.empty()) {
    const Asn cur = frontier.front();
    frontier.pop_front();
    for (Asn nbr : graph.neighbors(cur)) {
      if (removed.contains(nbr) || !seen.insert(nbr).second) continue;
      frontier.push_back(nbr);
    }
  }
  std::size_t population = 0;
  std::size_t cut = 0;
  for (Asn asn : graph.nodes()) {
    if (sources.contains(asn) || removed.contains(asn)) continue;
    ++population;
    if (!seen.contains(asn)) ++cut;
  }
  if (population == 0) return 0.0;
  return static_cast<double>(cut) / static_cast<double>(population);
}

double mean_path_length(const AsGraph& graph, std::size_t samples, std::uint64_t seed) {
  const std::vector<Asn> nodes = graph.nodes();
  MOAS_REQUIRE(nodes.size() >= 2, "need at least two nodes");
  util::Rng rng(seed);
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const Asn a = rng.pick(nodes);
    const Asn b = rng.pick(nodes);
    if (a == b) continue;
    // BFS distance a -> b.
    std::map<Asn, unsigned> depth{{a, 0}};
    std::deque<Asn> frontier{a};
    bool found = false;
    while (!frontier.empty() && !found) {
      const Asn cur = frontier.front();
      frontier.pop_front();
      for (Asn nbr : graph.neighbors(cur)) {
        if (depth.contains(nbr)) continue;
        depth[nbr] = depth[cur] + 1;
        if (nbr == b) {
          found = true;
          break;
        }
        frontier.push_back(nbr);
      }
    }
    if (found) {
      total += depth[b];
      ++counted;
    }
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

}  // namespace moas::topo
