#include "moas/topo/infer.h"

namespace moas::topo {

AsGraph infer_from_table(const TableDump& dump) {
  AsGraph g;
  AsnSet transit;

  auto ensure_node = [&](Asn asn) {
    if (!g.has_node(asn)) g.add_node(asn, AsKind::Stub);
  };

  for (const auto& entry : dump.entries) {
    // Flatten consecutive sequence segments; AS_SETs break adjacency.
    const auto& segments = entry.path.segments();
    for (const auto& seg : segments) {
      if (seg.kind != bgp::PathSegment::Kind::Sequence) continue;
      for (std::size_t i = 0; i < seg.asns.size(); ++i) {
        ensure_node(seg.asns[i]);
        if (i + 1 < seg.asns.size() && seg.asns[i] != seg.asns[i + 1]) {
          ensure_node(seg.asns[i + 1]);
          if (!g.has_edge(seg.asns[i], seg.asns[i + 1])) {
            g.add_edge(seg.asns[i], seg.asns[i + 1], bgp::Relationship::Peer);
          }
        }
      }
    }
    // Transit: everything that is neither the first nor the last AS of the
    // whole path (prepending duplicates collapse to one hop for this test).
    std::vector<Asn> flat;
    for (const auto& seg : segments) {
      if (seg.kind != bgp::PathSegment::Kind::Sequence) continue;
      for (Asn asn : seg.asns) {
        if (flat.empty() || flat.back() != asn) flat.push_back(asn);
      }
    }
    for (std::size_t i = 1; i + 1 < flat.size(); ++i) transit.insert(flat[i]);
  }

  for (Asn asn : transit) {
    if (g.has_node(asn)) g.add_node(asn, AsKind::Transit);  // upgrade kind
  }
  return g;
}

void annotate_relationships_by_degree(AsGraph& graph, double ratio) {
  for (const auto& edge : graph.edges()) {
    const double da = static_cast<double>(graph.degree(edge.a));
    const double db = static_cast<double>(graph.degree(edge.b));
    if (da >= ratio * db) {
      graph.add_edge(edge.a, edge.b, bgp::Relationship::Customer);  // b buys from a
    } else if (db >= ratio * da) {
      graph.add_edge(edge.a, edge.b, bgp::Relationship::Provider);  // a buys from b
    } else {
      graph.add_edge(edge.a, edge.b, bgp::Relationship::Peer);
    }
  }
}

}  // namespace moas::topo
