#include "moas/topo/io.h"

#include <fstream>
#include <sstream>

#include "moas/util/assert.h"
#include "moas/util/strings.h"

namespace moas::topo {

namespace {

const char* rel_token(bgp::Relationship rel) {
  switch (rel) {
    case bgp::Relationship::Customer: return "p2c";  // a is provider, b customer
    case bgp::Relationship::Provider: return "c2p";
    case bgp::Relationship::Peer: return "peer";
  }
  return "peer";
}

bgp::Relationship parse_rel(std::string_view token) {
  if (token == "p2c") return bgp::Relationship::Customer;
  if (token == "c2p") return bgp::Relationship::Provider;
  MOAS_REQUIRE(token == "peer", "unknown relationship token");
  return bgp::Relationship::Peer;
}

}  // namespace

void save_graph(const AsGraph& graph, std::ostream& os) {
  os << "# moasguard AS graph: " << graph.node_count() << " nodes, " << graph.edge_count()
     << " edges\n";
  for (Asn asn : graph.nodes()) {
    os << "node " << asn << ' ' << to_string(graph.kind(asn)) << '\n';
  }
  for (const auto& edge : graph.edges()) {
    os << "edge " << edge.a << ' ' << edge.b << ' ' << rel_token(edge.rel_of_b) << '\n';
  }
}

void save_graph_file(const AsGraph& graph, const std::string& path) {
  std::ofstream os(path);
  MOAS_REQUIRE(os.good(), "cannot open " + path + " for writing");
  save_graph(graph, os);
}

AsGraph load_graph(std::istream& is) {
  AsGraph graph;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    std::istringstream ls{std::string(trimmed)};
    std::string kind;
    ls >> kind;
    const std::string where = " at line " + std::to_string(lineno);
    if (kind == "node") {
      std::uint64_t asn = 0;
      std::string k;
      ls >> asn >> k;
      MOAS_REQUIRE(!ls.fail(), "malformed node record" + where);
      MOAS_REQUIRE(k == "stub" || k == "transit", "unknown node kind" + where);
      graph.add_node(static_cast<Asn>(asn), k == "stub" ? AsKind::Stub : AsKind::Transit);
    } else if (kind == "edge") {
      std::uint64_t a = 0;
      std::uint64_t b = 0;
      std::string rel;
      ls >> a >> b >> rel;
      MOAS_REQUIRE(!ls.fail(), "malformed edge record" + where);
      graph.add_edge(static_cast<Asn>(a), static_cast<Asn>(b), parse_rel(rel));
    } else {
      MOAS_REQUIRE(false, "unknown record '" + kind + "'" + where);
    }
  }
  return graph;
}

AsGraph load_graph_file(const std::string& path) {
  std::ifstream is(path);
  MOAS_REQUIRE(is.good(), "cannot open " + path);
  return load_graph(is);
}

}  // namespace moas::topo
