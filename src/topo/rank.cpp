#include "moas/topo/rank.h"

#include <algorithm>

#include "moas/util/assert.h"

namespace moas::topo {

RankAssignment rank_by_customer_cone(const AsGraph& graph) {
  // Kahn's algorithm with longest-path level assignment: a node's rank is
  // final once every customer below it has been processed, so a node is
  // queued exactly when its pending-customer count hits zero. If the queue
  // drains before every node was processed, the leftover nodes all sit on a
  // customer-provider cycle.
  std::map<Asn, std::size_t> pending_customers;
  for (Asn asn : graph.nodes()) {
    std::size_t customers = 0;
    for (Asn neighbor : graph.neighbors(asn)) {
      if (graph.relationship(asn, neighbor) == bgp::Relationship::Customer) ++customers;
    }
    pending_customers.emplace(asn, customers);
  }

  RankAssignment out;
  std::vector<Asn> queue;
  queue.reserve(pending_customers.size());
  for (const auto& [asn, pending] : pending_customers) {
    if (pending == 0) {
      out.rank[asn] = 0;
      queue.push_back(asn);  // map order: ascending ASN
    }
  }

  std::map<Asn, std::size_t> tentative;  // running max of 1 + rank(customer)
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Asn asn = queue[head];
    const std::size_t rank = out.rank.at(asn);
    for (Asn provider : graph.neighbors(asn)) {
      if (graph.relationship(asn, provider) != bgp::Relationship::Provider) continue;
      std::size_t& best = tentative[provider];
      best = std::max(best, rank + 1);
      std::size_t& pending = pending_customers.at(provider);
      MOAS_REQUIRE(pending > 0, "asymmetric customer-provider edge annotations");
      if (--pending == 0) {
        out.rank[provider] = best;
        queue.push_back(provider);
      }
    }
  }

  MOAS_REQUIRE(queue.size() == graph.node_count(),
               "customer-provider relationships contain a cycle — topological ranks "
               "are undefined");

  std::size_t max_rank = 0;
  for (const auto& [asn, rank] : out.rank) max_rank = std::max(max_rank, rank);
  if (!out.rank.empty()) out.levels.resize(max_rank + 1);
  // Bucket in map order so every level lists its ASes in ascending ASN —
  // the deterministic visit order the wave sweeps rely on.
  for (const auto& [asn, rank] : out.rank) out.levels[rank].push_back(asn);
  for (const auto& level : out.levels) {
    MOAS_ENSURE(!level.empty(), "rank levels must be contiguous");
  }
  return out;
}

}  // namespace moas::topo
