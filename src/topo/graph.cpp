#include "moas/topo/graph.h"

#include <algorithm>
#include <deque>

#include "moas/util/assert.h"

namespace moas::topo {

const char* to_string(AsKind kind) { return kind == AsKind::Stub ? "stub" : "transit"; }

void AsGraph::add_node(Asn asn, AsKind kind) {
  MOAS_REQUIRE(asn != bgp::kNoAs, "node needs a real ASN");
  kind_[asn] = kind;
  adj_.try_emplace(asn);
}

void AsGraph::add_edge(Asn a, Asn b, bgp::Relationship rel_of_b) {
  MOAS_REQUIRE(a != b, "no self-loops");
  MOAS_REQUIRE(has_node(a) && has_node(b), "both endpoints must exist");
  adj_[a][b] = rel_of_b;
  adj_[b][a] = bgp::reverse(rel_of_b);
}

bool AsGraph::remove_node(Asn asn) {
  auto it = adj_.find(asn);
  if (it == adj_.end()) return false;
  for (const auto& [nbr, _] : it->second) adj_[nbr].erase(asn);
  adj_.erase(it);
  kind_.erase(asn);
  return true;
}

bool AsGraph::remove_edge(Asn a, Asn b) {
  auto it = adj_.find(a);
  if (it == adj_.end() || it->second.erase(b) == 0) return false;
  adj_[b].erase(a);
  return true;
}

bool AsGraph::has_edge(Asn a, Asn b) const {
  auto it = adj_.find(a);
  return it != adj_.end() && it->second.contains(b);
}

AsKind AsGraph::kind(Asn asn) const {
  auto it = kind_.find(asn);
  MOAS_REQUIRE(it != kind_.end(), "unknown node " + std::to_string(asn));
  return it->second;
}

std::optional<bgp::Relationship> AsGraph::relationship(Asn a, Asn b) const {
  auto it = adj_.find(a);
  if (it == adj_.end()) return std::nullopt;
  auto jt = it->second.find(b);
  if (jt == it->second.end()) return std::nullopt;
  return jt->second;
}

std::vector<Asn> AsGraph::neighbors(Asn asn) const {
  auto it = adj_.find(asn);
  MOAS_REQUIRE(it != adj_.end(), "unknown node " + std::to_string(asn));
  std::vector<Asn> out;
  out.reserve(it->second.size());
  for (const auto& [nbr, _] : it->second) out.push_back(nbr);
  return out;
}

std::size_t AsGraph::degree(Asn asn) const {
  auto it = adj_.find(asn);
  MOAS_REQUIRE(it != adj_.end(), "unknown node " + std::to_string(asn));
  return it->second.size();
}

std::vector<Asn> AsGraph::nodes() const {
  std::vector<Asn> out;
  out.reserve(adj_.size());
  for (const auto& [asn, _] : adj_) out.push_back(asn);
  return out;
}

std::vector<Asn> AsGraph::stubs() const {
  std::vector<Asn> out;
  for (const auto& [asn, kind] : kind_) {
    if (kind == AsKind::Stub) out.push_back(asn);
  }
  return out;
}

std::vector<Asn> AsGraph::transits() const {
  std::vector<Asn> out;
  for (const auto& [asn, kind] : kind_) {
    if (kind == AsKind::Transit) out.push_back(asn);
  }
  return out;
}

std::vector<AsGraph::Edge> AsGraph::edges() const {
  std::vector<Edge> out;
  for (const auto& [a, nbrs] : adj_) {
    for (const auto& [b, rel] : nbrs) {
      if (a < b) out.push_back(Edge{a, b, rel});
    }
  }
  return out;
}

std::size_t AsGraph::edge_count() const {
  std::size_t twice = 0;
  for (const auto& [_, nbrs] : adj_) twice += nbrs.size();
  return twice / 2;
}

bool AsGraph::is_connected() const {
  if (adj_.empty()) return true;
  const AsnSet seen = reachable_from(adj_.begin()->first);
  return seen.size() == adj_.size();
}

AsnSet AsGraph::reachable_from(Asn start, const AsnSet& blocked) const {
  MOAS_REQUIRE(has_node(start), "unknown start node");
  MOAS_REQUIRE(!blocked.contains(start), "start node must not be blocked");
  AsnSet seen{start};
  std::deque<Asn> frontier{start};
  while (!frontier.empty()) {
    const Asn cur = frontier.front();
    frontier.pop_front();
    for (const auto& [nbr, _] : adj_.at(cur)) {
      if (blocked.contains(nbr) || !seen.insert(nbr).second) continue;
      frontier.push_back(nbr);
    }
  }
  return seen;
}

AsGraph AsGraph::largest_component() const {
  AsnSet remaining;
  for (const auto& [asn, _] : adj_) remaining.insert(asn);
  AsnSet best;
  while (!remaining.empty()) {
    const AsnSet comp = reachable_from(*remaining.begin());
    if (comp.size() > best.size()) best = comp;
    for (Asn asn : comp) remaining.erase(asn);
  }
  return induced(best);
}

AsGraph AsGraph::induced(const AsnSet& keep) const {
  AsGraph out;
  for (Asn asn : keep) {
    if (has_node(asn)) out.add_node(asn, kind(asn));
  }
  for (Asn asn : keep) {
    auto it = adj_.find(asn);
    if (it == adj_.end()) continue;
    for (const auto& [nbr, rel] : it->second) {
      if (asn < nbr && keep.contains(nbr)) out.add_edge(asn, nbr, rel);
    }
  }
  return out;
}

}  // namespace moas::topo
