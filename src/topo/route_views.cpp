#include "moas/topo/route_views.h"

#include <deque>
#include <map>

#include "moas/util/assert.h"

namespace moas::topo {

net::Prefix prefix_for_asn(Asn asn) {
  // 10.0.0.0/8 sliced into /20s: 4096 host addresses per AS.
  const std::uint32_t base = 10u << 24;
  const std::uint32_t offset = (asn << 12) & 0x00ffffffu;
  return net::Prefix(net::Ipv4Addr(base | offset), 20);
}

Asn asn_for_prefix(const net::Prefix& prefix) {
  MOAS_REQUIRE(prefix.length() == 20, "not a prefix_for_asn prefix");
  return (prefix.network().value() & 0x00ffffffu) >> 12;
}

TableDump dump_route_views(const AsGraph& graph, const std::vector<Asn>& vantages) {
  TableDump dump;
  // One BFS per origin yields shortest paths from every node to that origin;
  // we read out the vantage rows. Parent pointers point toward the origin,
  // chosen deterministically (lowest-ASN parent at the shallower level).
  for (Asn origin : graph.nodes()) {
    std::map<Asn, Asn> parent;  // next hop toward origin
    std::map<Asn, unsigned> depth;
    std::deque<Asn> frontier{origin};
    depth[origin] = 0;
    while (!frontier.empty()) {
      const Asn cur = frontier.front();
      frontier.pop_front();
      // Only the origin itself and transit ASes forward traffic: a stub AS
      // never appears mid-path (it provides no transit), so BFS must not
      // route through it.
      if (cur != origin && !graph.is_transit(cur)) continue;
      for (Asn nbr : graph.neighbors(cur)) {
        if (depth.contains(nbr)) continue;
        depth[nbr] = depth[cur] + 1;
        parent[nbr] = cur;
        frontier.push_back(nbr);
      }
    }
    for (Asn vantage : vantages) {
      if (vantage == origin || !depth.contains(vantage)) continue;
      std::vector<Asn> asns{vantage};
      Asn cur = vantage;
      while (cur != origin) {
        cur = parent.at(cur);
        asns.push_back(cur);
      }
      dump.entries.push_back(TableEntry{prefix_for_asn(origin), bgp::AsPath(std::move(asns))});
    }
  }
  return dump;
}

}  // namespace moas::topo
