#include "moas/topo/gen_internet.h"

#include <vector>

#include "moas/util/assert.h"

namespace moas::topo {

namespace {

/// Degree-weighted provider choice (preferential attachment, +1 smoothing so
/// fresh nodes can be picked). `pool` must be non-empty.
Asn pick_provider(const AsGraph& g, const std::vector<Asn>& pool, util::Rng& rng,
                  const AsnSet& exclude) {
  return detail::pick_weighted_provider(g, pool, rng.uniform01(), exclude);
}

void attach_with_providers(AsGraph& g, Asn node, std::size_t n_providers,
                           const std::vector<Asn>& pool, util::Rng& rng) {
  AsnSet chosen;
  const std::size_t want = std::min(n_providers, pool.size());
  while (chosen.size() < want) {
    const Asn provider = pick_provider(g, pool, rng, chosen);
    chosen.insert(provider);
    // provider sees `node` as its customer.
    g.add_edge(provider, node, bgp::Relationship::Customer);
  }
}

}  // namespace

namespace detail {

Asn pick_weighted_provider(const AsGraph& g, const std::vector<Asn>& pool, double roll01,
                           const AsnSet& exclude) {
  double total = 0.0;
  for (Asn asn : pool) {
    if (exclude.contains(asn)) continue;
    total += static_cast<double>(g.degree(asn)) + 1.0;
  }
  MOAS_ENSURE(total > 0.0, "provider pool exhausted");
  double target = roll01 * total;
  // One pass over the cumulative weights. The scan itself remembers the
  // last eligible candidate it visited: when floating-point slack leaves
  // target marginally positive after the final subtraction (roll01 at or
  // rounding to 1), the leftover sliver belongs to that candidate — the one
  // whose weight interval ends at `total`. The old fallback re-scanned the
  // pool from the back instead of resolving within the weighted scan.
  Asn last_visited = bgp::kNoAs;
  for (Asn asn : pool) {
    if (exclude.contains(asn)) continue;
    target -= static_cast<double>(g.degree(asn)) + 1.0;
    if (target <= 0.0) return asn;
    last_visited = asn;
  }
  MOAS_ENSURE(last_visited != bgp::kNoAs, "unreachable");
  return last_visited;
}

}  // namespace detail

AsGraph generate_internet(const InternetConfig& config, util::Rng& rng) {
  MOAS_REQUIRE(config.tier1 >= 2, "need at least two tier-1 ASes");
  MOAS_REQUIRE(config.stub_two_provider_prob + config.stub_three_provider_prob <= 1.0,
               "multi-homing probabilities must sum to <= 1");

  AsGraph g;
  Asn next = config.first_asn;

  std::vector<Asn> tier1;
  for (std::size_t i = 0; i < config.tier1; ++i) {
    g.add_node(next, AsKind::Transit);
    tier1.push_back(next++);
  }
  // Dense core mesh; force a ring so the core (and thus everything) is
  // connected regardless of the peering probability.
  for (std::size_t i = 0; i < tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1.size(); ++j) {
      const bool ring = (j == i + 1) || (i == 0 && j == tier1.size() - 1);
      if (ring || rng.chance(config.tier1_peer_prob)) {
        g.add_edge(tier1[i], tier1[j], bgp::Relationship::Peer);
      }
    }
  }

  std::vector<Asn> tier2;
  for (std::size_t i = 0; i < config.tier2; ++i) {
    g.add_node(next, AsKind::Transit);
    const std::size_t n_providers = 1 + (rng.chance(0.5) ? 1 : 0);
    attach_with_providers(g, next, n_providers, tier1, rng);
    tier2.push_back(next++);
  }
  for (std::size_t i = 0; i < tier2.size(); ++i) {
    for (std::size_t j = i + 1; j < tier2.size(); ++j) {
      if (rng.chance(config.tier2_peer_prob)) {
        g.add_edge(tier2[i], tier2[j], bgp::Relationship::Peer);
      }
    }
  }

  std::vector<Asn> tier12 = tier1;
  tier12.insert(tier12.end(), tier2.begin(), tier2.end());

  std::vector<Asn> tier3;
  for (std::size_t i = 0; i < config.tier3; ++i) {
    g.add_node(next, AsKind::Transit);
    const std::size_t n_providers = 1 + (rng.chance(0.4) ? 1 : 0);
    attach_with_providers(g, next, n_providers, tier12, rng);
    tier3.push_back(next++);
  }
  for (std::size_t i = 0; i < tier3.size(); ++i) {
    for (std::size_t j = i + 1; j < tier3.size(); ++j) {
      if (rng.chance(config.tier3_peer_prob)) {
        g.add_edge(tier3[i], tier3[j], bgp::Relationship::Peer);
      }
    }
  }

  std::vector<Asn> tier23 = tier2;
  tier23.insert(tier23.end(), tier3.begin(), tier3.end());

  for (std::size_t i = 0; i < config.stubs; ++i) {
    g.add_node(next, AsKind::Stub);
    const double roll = rng.uniform01();
    std::size_t n_providers = 1;
    if (roll < config.stub_three_provider_prob) {
      n_providers = 3;
    } else if (roll < config.stub_three_provider_prob + config.stub_two_provider_prob) {
      n_providers = 2;
    }
    // Each provider slot independently goes to the backbone with a small
    // probability, otherwise to a regional/local ISP.
    AsnSet chosen;
    while (chosen.size() < n_providers) {
      const std::vector<Asn>& pool =
          (tier23.empty() || rng.chance(config.stub_tier1_bias)) ? tier1 : tier23;
      const Asn provider = pick_provider(g, pool, rng, chosen);
      chosen.insert(provider);
      g.add_edge(provider, next, bgp::Relationship::Customer);
    }
    ++next;
  }

  MOAS_ENSURE(g.is_connected(), "generated Internet must be connected");
  return g;
}

}  // namespace moas::topo
