#include "moas/topo/sampler.h"

#include <cmath>
#include <cstdlib>

#include "moas/util/assert.h"

namespace moas::topo {

namespace {

/// Iterative pruning: transit ASes need >= 2 peers to be meaningful transit;
/// stubs need >= 1 provider to be attached at all.
void prune(AsGraph& g) {
  bool again = true;
  while (again) {
    again = false;
    for (Asn asn : g.nodes()) {
      const std::size_t deg = g.degree(asn);
      const bool doomed = g.is_transit(asn) ? deg <= 1 : deg == 0;
      if (doomed) {
        g.remove_node(asn);
        again = true;
      }
    }
  }
}

}  // namespace

AsGraph sample_topology(const AsGraph& internet, double stub_fraction, util::Rng& rng) {
  MOAS_REQUIRE(stub_fraction > 0.0 && stub_fraction <= 1.0,
               "stub fraction must be in (0, 1]");

  const std::vector<Asn> stubs = internet.stubs();
  MOAS_REQUIRE(!stubs.empty(), "internet graph has no stub ASes");
  std::size_t want = static_cast<std::size_t>(std::lround(stub_fraction *
                                                          static_cast<double>(stubs.size())));
  if (want == 0) want = 1;

  AsnSet keep;
  for (std::size_t i : rng.sample_indices(stubs.size(), want)) {
    const Asn stub = stubs[i];
    keep.insert(stub);
    // "and their ISP peers": every transit neighbor comes along.
    for (Asn nbr : internet.neighbors(stub)) {
      if (internet.is_transit(nbr)) keep.insert(nbr);
    }
  }

  AsGraph sampled = internet.induced(keep);
  prune(sampled);
  if (sampled.node_count() == 0) return sampled;
  AsGraph out = sampled.largest_component();
  MOAS_ENSURE(out.is_connected(), "sampled topology must be connected");
  return out;
}

AsGraph sample_to_size(const AsGraph& internet, std::size_t target_nodes, util::Rng& rng,
                       double tolerance, int max_attempts) {
  MOAS_REQUIRE(target_nodes >= 3, "target size too small");
  double fraction = static_cast<double>(target_nodes) /
                    static_cast<double>(internet.node_count());
  if (fraction > 1.0) fraction = 1.0;

  AsGraph best;
  double best_err = -1.0;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    AsGraph candidate = sample_topology(internet, fraction, rng);
    const double got = static_cast<double>(candidate.node_count());
    const double err =
        std::abs(got - static_cast<double>(target_nodes)) / static_cast<double>(target_nodes);
    if (best_err < 0.0 || err < best_err) {
      best = candidate;
      best_err = err;
    }
    if (err <= tolerance) break;
    // Retune: the sampled size grows roughly linearly with the fraction.
    if (got > 0) {
      fraction *= static_cast<double>(target_nodes) / got;
      if (fraction > 1.0) fraction = 1.0;
      if (fraction < 1e-4) fraction = 1e-4;
    } else {
      fraction *= 2.0;
    }
  }
  MOAS_ENSURE(best.node_count() > 0, "sampling produced an empty topology");
  return best;
}

}  // namespace moas::topo
