// Topological ranks over the customer→provider DAG.
//
// The wave propagation engine (moas/sim/wave_engine.h) replaces the event
// queue with three deterministic sweeps in rank order, the BGPExtrapolator
// propagate_up / propagate_down scheme: an AS's rank is the length of the
// longest customer chain below it, so sweeping ranks in ascending order
// delivers every customer-learned announcement before the provider that
// re-exports it is visited, and one up sweep carries a stub's origination
// all the way into the core.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "moas/topo/graph.h"

namespace moas::topo {

/// Rank of every AS plus the rank-bucketed visit order the wave engine
/// sweeps. Peer edges do not participate: ranks are a property of the
/// customer→provider hierarchy alone.
struct RankAssignment {
  /// rank[a] = 0 when a has no customers, else 1 + max rank of a's
  /// customers (longest customer chain below a).
  std::map<Asn, std::size_t> rank;
  /// levels[r] = the ASes at rank r, ascending ASN. Never contains an
  /// empty level: every rank up to max_rank() is populated.
  std::vector<std::vector<Asn>> levels;

  std::size_t max_rank() const { return levels.empty() ? 0 : levels.size() - 1; }
};

/// Compute ranks via Kahn's algorithm over the customer→provider edges.
/// Rejects (MOAS_REQUIRE) a graph whose customer-provider relationships
/// contain a cycle — ranks are undefined there, and the wave sweeps would
/// not terminate meaningfully. Peer edges are ignored.
RankAssignment rank_by_customer_cone(const AsGraph& graph);

}  // namespace moas::topo
