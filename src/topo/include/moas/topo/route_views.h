// Synthetic RouteViews-style table dump.
//
// The paper builds its simulation topologies by inferring BGP peerings from
// the AS paths in the Oregon RouteViews table. We reproduce the full
// pipeline: assign a prefix to every AS, dump the (prefix, AS path) table
// seen from a set of vantage ASes, then run the same inference over it
// (infer.h).
#pragma once

#include <vector>

#include "moas/bgp/as_path.h"
#include "moas/net/prefix.h"
#include "moas/topo/graph.h"

namespace moas::topo {

struct TableEntry {
  net::Prefix prefix;
  bgp::AsPath path;  // from the vantage AS (inclusive) to the origin AS
};

struct TableDump {
  std::vector<TableEntry> entries;
};

/// Deterministic unique prefix for an AS: a /20 carved out of 10.0.0.0/8 by
/// ASN (supports ~1M ASes before wrapping).
net::Prefix prefix_for_asn(Asn asn);

/// Inverse of prefix_for_asn for prefixes it produced.
Asn asn_for_prefix(const net::Prefix& prefix);

/// Dump the table: every AS originates prefix_for_asn(asn); each vantage
/// contributes one shortest AS path per reachable origin (BFS over the
/// peering graph, deterministic tie-break by lower neighbor ASN — the same
/// flavor of path the paper reads out of RouteViews).
TableDump dump_route_views(const AsGraph& graph, const std::vector<Asn>& vantages);

}  // namespace moas::topo
