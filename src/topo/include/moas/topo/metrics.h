// Topology metrics used by the evaluation and the tests.
#pragma once

#include <cstddef>
#include <map>

#include "moas/topo/graph.h"

namespace moas::topo {

struct DegreeStats {
  double mean = 0.0;
  std::size_t max = 0;
  std::map<std::size_t, std::size_t> histogram;  // degree -> node count
  /// Continuous MLE for the power-law exponent over degrees >= 2
  /// (Clauset–Shalizi–Newman estimator with x_min = 2); 0 if not estimable.
  double power_law_alpha = 0.0;
};

DegreeStats degree_stats(const AsGraph& graph);

/// Fraction of nodes (excluding `sources` and `removed`) that cannot reach
/// any source once the `removed` nodes are cut out of the graph.
///
/// Under full MOAS detection this is exactly the population that can still
/// be fooled: ASes the attacker set separates from every valid origin.
double fraction_cut_off(const AsGraph& graph, const AsnSet& sources, const AsnSet& removed);

/// Mean shortest-path hop count over sampled node pairs (BFS; `samples`
/// random pairs with the given rng seed baked in deterministically).
double mean_path_length(const AsGraph& graph, std::size_t samples, std::uint64_t seed);

}  // namespace moas::topo
