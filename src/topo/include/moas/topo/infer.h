// Topology inference from a BGP table dump — the paper's Section 5.1 recipe.
//
// "if a route to a prefix p has the AS Path 1239 6453 4621, we consider
//  AS 6453 to have two BGP peers ... We also mark AS 6453 as a transit AS
//  ... If an AS does not appear to be a transit AS in any of the routes, we
//  consider it a stub AS."
#pragma once

#include "moas/topo/graph.h"
#include "moas/topo/route_views.h"

namespace moas::topo {

/// Build the peering graph + transit/stub classification from AS paths.
/// Adjacent ASes in a path sequence become peers; any AS observed in a
/// non-terminal path position is transit. AS_SET segments contribute no
/// edges (aggregates hide the true adjacency). Relationships are set to
/// Peer; use annotate_relationships_by_degree for a Gao-style annotation.
AsGraph infer_from_table(const TableDump& dump);

/// Heuristic provider/customer annotation (a simplified Gao inference):
/// for each edge, if one endpoint's degree is at least `ratio` times the
/// other's, the bigger AS becomes the provider; otherwise the edge stays a
/// peering. Used to enable the Gao–Rexford policy mode on inferred graphs.
void annotate_relationships_by_degree(AsGraph& graph, double ratio = 2.0);

}  // namespace moas::topo
