// Synthetic Internet-like AS topology generator.
//
// Public RouteViews/CAIDA archives are not available offline, so the
// experiments draw their "full Internet" from this generator instead (see
// DESIGN.md, substitution table). It produces the features the paper's
// sampling procedure and detection argument rely on:
//  - a small, densely meshed tier-1 core,
//  - regional and local transit tiers attached by preferential attachment
//    (yielding a heavy-tailed degree distribution, cf. Huston's analysis),
//  - a large population (~85%) of stub ASes, many of them multi-homed.
#pragma once

#include <cstddef>
#include <vector>

#include "moas/topo/graph.h"
#include "moas/util/rng.h"

namespace moas::topo {

// Defaults are calibrated (see DESIGN.md) so that topologies sampled at the
// paper's three sizes reproduce the paper's per-topology robustness: the
// scale approximates the 2001 Internet (~10k ASes), and BGP-visible stubs
// are predominantly multi-homed — which is what gives the larger samples
// their resilience (the 7.8%-at-630-ASes headline).
struct InternetConfig {
  std::size_t tier1 = 12;    // global transit core
  std::size_t tier2 = 240;   // regional transit
  std::size_t tier3 = 500;   // local transit
  std::size_t stubs = 9000;  // edge networks

  double tier1_peer_prob = 0.9;   // fraction of core pairs that peer
  double tier2_peer_prob = 0.08;  // same-tier peering probability
  double tier3_peer_prob = 0.02;

  /// Stub multi-homing mix: P(2 providers), P(3 providers); remainder is
  /// single-homed.
  double stub_two_provider_prob = 0.55;
  double stub_three_provider_prob = 0.30;

  /// Probability that a stub buys transit directly from a tier-1 backbone
  /// instead of a regional/local ISP. Real edge networks overwhelmingly
  /// attach to lower tiers; keeping this small is what makes *sampled*
  /// topologies thin out at small sizes (the paper's size-robustness
  /// effect depends on it).
  double stub_tier1_bias = 0.08;

  /// ASNs are assigned sequentially from here.
  Asn first_asn = 1;
};

/// Generate; the result is guaranteed connected (tier-1 backbone plus
/// provider chains reach every node).
AsGraph generate_internet(const InternetConfig& config, util::Rng& rng);

namespace detail {

/// The degree-weighted provider draw behind generate_internet's
/// preferential attachment, exposed with the roll made explicit so tests
/// can pin the boundary behavior. `roll01` in [0, 1] selects from the
/// cumulative (degree + 1) weights over the non-excluded pool entries;
/// floating-point slack at roll01 == 1 resolves to the last candidate the
/// weighted scan visited. The eligible pool must be non-empty.
Asn pick_weighted_provider(const AsGraph& g, const std::vector<Asn>& pool, double roll01,
                           const AsnSet& exclude);

}  // namespace detail

}  // namespace moas::topo
