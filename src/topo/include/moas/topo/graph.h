// AS-level topology graph.
//
// Nodes are ASes annotated as transit (an ISP that appears mid-path) or stub
// (an edge network); edges are BGP peering connections annotated with the
// business relationship, which the Gao–Rexford policy mode consumes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "moas/bgp/asn.h"
#include "moas/bgp/policy.h"

namespace moas::topo {

using bgp::Asn;
using bgp::AsnSet;

enum class AsKind : std::uint8_t { Stub, Transit };

const char* to_string(AsKind kind);

class AsGraph {
 public:
  /// Add a node; re-adding an existing node updates its kind.
  void add_node(Asn asn, AsKind kind);

  /// Add an undirected peering edge. `rel_of_b` is b's relationship as seen
  /// from a (Customer: b is a's customer). Requires both endpoints present;
  /// re-adding overwrites the relationship.
  void add_edge(Asn a, Asn b, bgp::Relationship rel_of_b = bgp::Relationship::Peer);

  /// Remove a node and all incident edges. Returns true if it existed.
  bool remove_node(Asn asn);
  bool remove_edge(Asn a, Asn b);

  bool has_node(Asn asn) const { return adj_.contains(asn); }
  bool has_edge(Asn a, Asn b) const;

  AsKind kind(Asn asn) const;
  bool is_stub(Asn asn) const { return kind(asn) == AsKind::Stub; }
  bool is_transit(Asn asn) const { return kind(asn) == AsKind::Transit; }

  /// Relationship of `b` as seen from `a`; nullopt if no such edge.
  std::optional<bgp::Relationship> relationship(Asn a, Asn b) const;

  std::vector<Asn> neighbors(Asn asn) const;
  std::size_t degree(Asn asn) const;

  std::vector<Asn> nodes() const;
  std::vector<Asn> stubs() const;
  std::vector<Asn> transits() const;

  /// All edges once each, as (a, b, rel_of_b) with a < b.
  struct Edge {
    Asn a;
    Asn b;
    bgp::Relationship rel_of_b;
  };
  std::vector<Edge> edges() const;

  std::size_t node_count() const { return adj_.size(); }
  std::size_t edge_count() const;

  /// True if every node can reach every other (empty graph counts as
  /// connected).
  bool is_connected() const;

  /// Nodes reachable from `start` (including it), optionally treating the
  /// nodes in `blocked` as removed. `start` itself must not be blocked.
  AsnSet reachable_from(Asn start, const AsnSet& blocked = {}) const;

  /// The largest connected component as a new graph (annotations kept).
  AsGraph largest_component() const;

  /// Subgraph induced by `keep` (edges between kept nodes survive).
  AsGraph induced(const AsnSet& keep) const;

 private:
  std::map<Asn, AsKind> kind_;
  // adj_[a][b] = relationship of b from a's viewpoint.
  std::map<Asn, std::map<Asn, bgp::Relationship>> adj_;
};

}  // namespace moas::topo
