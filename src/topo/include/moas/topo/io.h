// Plain-text persistence for AS graphs.
//
// Format, one record per line:
//   node <asn> stub|transit
//   edge <a> <b> p2c|c2p|peer     # relationship of b as seen from a
// Blank lines and lines starting with '#' are ignored.
#pragma once

#include <iosfwd>
#include <string>

#include "moas/topo/graph.h"

namespace moas::topo {

void save_graph(const AsGraph& graph, std::ostream& os);
void save_graph_file(const AsGraph& graph, const std::string& path);

/// Throws std::invalid_argument on malformed input.
AsGraph load_graph(std::istream& is);
AsGraph load_graph_file(const std::string& path);

}  // namespace moas::topo
