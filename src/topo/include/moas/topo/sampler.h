// The paper's topology sampling procedure (Section 5.1).
//
// "we randomly select x% of the stub ASes and construct a topology
//  containing these stub ASes and their ISP peers, with the peering
//  relations among all the selected ASes completely preserved. If a transit
//  AS has only one peer left after the initial selection, we prune it ...
//  the pruning needs to be done iteratively. Finally we inspect the topology
//  to make sure that it is a connected graph."
#pragma once

#include <cstddef>

#include "moas/topo/graph.h"
#include "moas/util/rng.h"

namespace moas::topo {

/// One sampling pass at a fixed stub fraction. Returns the largest connected
/// component of the pruned subgraph (the "inspection" step).
AsGraph sample_topology(const AsGraph& internet, double stub_fraction, util::Rng& rng);

/// Iteratively retunes the stub fraction until the sampled topology lands
/// within `tolerance` (relative) of `target_nodes`; returns the closest
/// result seen across at most `max_attempts` passes.
AsGraph sample_to_size(const AsGraph& internet, std::size_t target_nodes, util::Rng& rng,
                       double tolerance = 0.05, int max_attempts = 40);

}  // namespace moas::topo
