#include "moas/bgp/wire.h"

#include <algorithm>

#include "moas/util/assert.h"

namespace moas::bgp::wire {

namespace {

// Attribute flag bits (RFC 4271 §4.3).
constexpr std::uint8_t kFlagOptional = 0x80;
constexpr std::uint8_t kFlagTransitive = 0x40;
constexpr std::uint8_t kFlagPartial = 0x20;
constexpr std::uint8_t kFlagExtendedLength = 0x10;

// AS_PATH segment types.
constexpr std::uint8_t kSegmentSet = 1;
constexpr std::uint8_t kSegmentSequence = 2;

// OPEN optional parameters (RFC 5492) and the graceful-restart capability
// (RFC 4724 §3).
constexpr std::uint8_t kOptParamCapabilities = 2;
constexpr std::uint8_t kCapGracefulRestart = 64;
constexpr std::uint8_t kCapFourOctetAs = 65;  // RFC 6793 §3
constexpr std::uint16_t kGrRestartFlag = 0x8000;      // Restart-State "R" bit
constexpr std::uint16_t kGrRestartTimeMask = 0x0fff;  // 12-bit restart time
constexpr std::uint16_t kAfiIpv4 = 1;
constexpr std::uint8_t kSafiUnicast = 1;
constexpr std::uint8_t kGrForwardingFlag = 0x80;  // per-AFI "F" bit

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  /// Overwrite a previously written big-endian u16 at `pos`.
  void patch_u16(std::size_t pos, std::uint16_t v) {
    buf_[pos] = static_cast<std::uint8_t>(v >> 8);
    buf_[pos + 1] = static_cast<std::uint8_t>(v);
  }
  std::size_t size() const { return buf_.size(); }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  /// `truncation_code`/`truncation_subcode` classify an out-of-bounds read:
  /// truncation inside an OPEN body is an OPEN error, inside an UPDATE body
  /// an UPDATE error, and so on.
  explicit Reader(std::span<const std::uint8_t> data,
                  ErrorCode truncation_code = ErrorCode::MessageHeader,
                  std::uint8_t truncation_subcode = kHdrBadLength)
      : data_(data), code_(truncation_code), subcode_(truncation_subcode) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t u16() {
    need(2);
    const std::uint16_t v = static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    const std::uint32_t hi = u16();
    return (hi << 16) | u16();
  }
  std::span<const std::uint8_t> bytes(std::size_t n) {
    need(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }

  /// The unread tail — used to re-wrap a body with message-specific
  /// truncation codes once the type is known.
  std::span<const std::uint8_t> rest() const { return data_.subspan(pos_); }

 private:
  void need(std::size_t n) const {
    if (remaining() < n) throw WireError(code_, subcode_, "truncated message");
  }
  std::span<const std::uint8_t> data_;
  ErrorCode code_;
  std::uint8_t subcode_;
  std::size_t pos_ = 0;
};

void write_prefix(Writer& w, const net::Prefix& prefix) {
  w.u8(static_cast<std::uint8_t>(prefix.length()));
  const std::uint32_t addr = prefix.network().value();
  const unsigned octets = (prefix.length() + 7) / 8;
  for (unsigned i = 0; i < octets; ++i) {
    w.u8(static_cast<std::uint8_t>(addr >> (24 - 8 * i)));
  }
}

net::Prefix read_prefix(Reader& r) {
  const unsigned length = r.u8();
  if (length > 32) {
    throw WireError(ErrorCode::UpdateMessage, kUpdInvalidNetworkField, "prefix length > 32");
  }
  const unsigned octets = (length + 7) / 8;
  std::uint32_t addr = 0;
  for (unsigned i = 0; i < octets; ++i) {
    addr |= static_cast<std::uint32_t>(r.u8()) << (24 - 8 * i);
  }
  return net::Prefix(net::Ipv4Addr(addr), length);
}

void write_header(Writer& w, MessageType type) {
  for (int i = 0; i < 16; ++i) w.u8(0xff);
  w.u16(0);  // length, patched later
  w.u8(static_cast<std::uint8_t>(type));
}

std::vector<std::uint8_t> finish(Writer& w) {
  MOAS_REQUIRE(w.size() <= kMaxMessageSize, "message exceeds the 4096-octet BGP limit");
  w.patch_u16(16, static_cast<std::uint16_t>(w.size()));
  return w.take();
}

/// Validates the header and returns (type, body reader).
std::pair<MessageType, Reader> open_message(std::span<const std::uint8_t> data) {
  if (data.size() < kHeaderSize) {
    throw WireError(ErrorCode::MessageHeader, kHdrBadLength, "short header");
  }
  for (int i = 0; i < 16; ++i) {
    if (data[static_cast<std::size_t>(i)] != 0xff) {
      throw WireError(ErrorCode::MessageHeader, kHdrNotSynchronized, "bad marker");
    }
  }
  const std::size_t length = static_cast<std::size_t>((data[16] << 8) | data[17]);
  if (length < kHeaderSize || length > kMaxMessageSize) {
    throw WireError(ErrorCode::MessageHeader, kHdrBadLength, "bad length field");
  }
  if (length != data.size()) {
    throw WireError(ErrorCode::MessageHeader, kHdrBadLength, "length field does not match buffer");
  }
  const std::uint8_t type = data[18];
  if (type < 1 || type > 4) {
    throw WireError(ErrorCode::MessageHeader, kHdrBadType, "unknown message type");
  }
  return {static_cast<MessageType>(type), Reader(data.subspan(kHeaderSize))};
}

/// The 2-octet representation of an ASN: itself, or AS_TRANS (RFC 6793
/// §4.2.1) when it does not fit — the true value then travels in AS4_PATH.
std::uint16_t narrow_asn(Asn asn) {
  return asn <= 0xffffu ? static_cast<std::uint16_t>(asn)
                        : static_cast<std::uint16_t>(kAsTrans);
}

void write_attribute_header(Writer& w, std::uint8_t flags, AttrType type,
                            std::size_t length) {
  if (length > 0xff) flags |= kFlagExtendedLength;
  w.u8(flags);
  w.u8(static_cast<std::uint8_t>(type));
  if (flags & kFlagExtendedLength) {
    w.u16(static_cast<std::uint16_t>(length));
  } else {
    w.u8(static_cast<std::uint8_t>(length));
  }
}

void write_attributes(Writer& w, const PathAttributes& attrs, const EncodeOptions& options) {
  // ORIGIN — well-known mandatory.
  write_attribute_header(w, kFlagTransitive, AttrType::Origin, 1);
  w.u8(static_cast<std::uint8_t>(attrs.origin_code));

  // AS_PATH — well-known mandatory. In 4-octet mode (RFC 6793 negotiated)
  // ASNs are written natively; otherwise wide ones travel as AS_TRANS here,
  // with the true path in the AS4_PATH attribute appended further down.
  const std::size_t asn_width = options.four_octet_as ? 4 : 2;
  std::size_t path_len = 0;
  for (const auto& seg : attrs.path.segments()) path_len += 2 + asn_width * seg.asns.size();
  write_attribute_header(w, kFlagTransitive, AttrType::AsPath, path_len);
  bool wide_asn = false;
  for (const auto& seg : attrs.path.segments()) {
    w.u8(seg.kind == PathSegment::Kind::Set ? kSegmentSet : kSegmentSequence);
    MOAS_REQUIRE(seg.asns.size() <= 255, "path segment too long for wire format");
    w.u8(static_cast<std::uint8_t>(seg.asns.size()));
    for (Asn asn : seg.asns) {
      if (asn > 0xffffu) wide_asn = true;
      if (options.four_octet_as) {
        w.u32(asn);
      } else {
        w.u16(narrow_asn(asn));
      }
    }
  }

  // NEXT_HOP — well-known mandatory.
  write_attribute_header(w, kFlagTransitive, AttrType::NextHop, 4);
  w.u32(options.next_hop.value());

  // MED — optional non-transitive; omitted when zero.
  if (attrs.med != 0) {
    write_attribute_header(w, kFlagOptional, AttrType::Med, 4);
    w.u32(attrs.med);
  }

  // LOCAL_PREF — well-known on IBGP sessions only.
  if (options.include_local_pref) {
    write_attribute_header(w, kFlagTransitive, AttrType::LocalPref, 4);
    w.u32(attrs.local_pref);
  }

  // COMMUNITIES — optional transitive (RFC 1997); the MOAS list rides here.
  if (!attrs.communities.empty()) {
    write_attribute_header(w, kFlagOptional | kFlagTransitive, AttrType::Communities,
                           4 * attrs.communities.size());
    for (Community c : attrs.communities.values()) w.u32(c.raw());
  }

  // LARGE_COMMUNITIES — optional transitive (RFC 8092); MOAS-list members
  // with 4-octet ASNs ride here (the classic attribute cannot carry them).
  if (!attrs.large_communities.empty()) {
    write_attribute_header(w, kFlagOptional | kFlagTransitive, AttrType::LargeCommunities,
                           12 * attrs.large_communities.size());
    for (const LargeCommunity& c : attrs.large_communities.values()) {
      w.u32(c.global_admin());
      w.u32(c.data1());
      w.u32(c.data2());
    }
  }

  // AS4_PATH — optional transitive (RFC 6793 §4.2.2): the true 4-octet path
  // behind the AS_TRANS stand-ins above. Self-describing, so a receiver
  // reconstructs the full path whether or not it negotiated the capability;
  // absent for all-narrow paths, keeping their byte streams unchanged.
  if (wide_asn && !options.four_octet_as) {
    std::size_t as4_len = 0;
    for (const auto& seg : attrs.path.segments()) as4_len += 2 + 4 * seg.asns.size();
    write_attribute_header(w, kFlagOptional | kFlagTransitive, AttrType::As4Path, as4_len);
    for (const auto& seg : attrs.path.segments()) {
      w.u8(seg.kind == PathSegment::Kind::Set ? kSegmentSet : kSegmentSequence);
      w.u8(static_cast<std::uint8_t>(seg.asns.size()));
      for (Asn asn : seg.asns) w.u32(asn);
    }
  }
}

/// The RFC 7606 action for a malformed attribute of a known type. The
/// per-attribute guidance of §7: anything the decision process or the MOAS
/// detector depends on (ORIGIN, AS_PATH, NEXT_HOP, and COMMUNITIES — the
/// MOAS list rides there) demotes to treat-as-withdraw; non-essential
/// tie-breakers (MED, LOCAL_PREF on our EBGP-style sessions) are discarded.
ErrorAction action_for(AttrType type) {
  switch (type) {
    case AttrType::Med:
    case AttrType::LocalPref:
      return ErrorAction::AttributeDiscard;
    case AttrType::As4Path:
      // RFC 6793 §6: AS4_PATH is advisory reconstruction data — a broken
      // one is discarded and the AS_TRANS path stands, never the routes.
      return ErrorAction::AttributeDiscard;
    default:
      // Includes LARGE_COMMUNITIES: the wide MOAS list rides there, so like
      // classic COMMUNITIES a damaged one demotes to treat-as-withdraw.
      return ErrorAction::TreatAsWithdraw;
  }
}

/// Parse one AS_PATH/AS4_PATH attribute value: a run of segments with
/// `four_octet`-wide members. Shared RFC 7607 (AS 0) and empty-AS_SET
/// rejection. Throws WireError.
AsPath read_as_path(Reader& value, bool four_octet) {
  AsPath path;
  const auto read_asn = [&]() -> Asn {
    const Asn asn = four_octet ? value.u32() : static_cast<Asn>(value.u16());
    if (asn == kNoAs) {
      // RFC 7607: AS 0 anywhere in AS_PATH makes the UPDATE malformed.
      throw WireError(ErrorCode::UpdateMessage, kUpdMalformedAsPath, "AS 0 in AS_PATH");
    }
    return asn;
  };
  while (!value.done()) {
    const std::uint8_t seg_type = value.u8();
    const std::uint8_t count = value.u8();
    if (seg_type == kSegmentSequence) {
      std::vector<Asn> asns;
      for (unsigned i = 0; i < count; ++i) asns.push_back(read_asn());
      path.append_sequence(asns);
    } else if (seg_type == kSegmentSet) {
      if (count == 0) {
        throw WireError(ErrorCode::UpdateMessage, kUpdMalformedAsPath, "empty AS_SET segment");
      }
      AsnSet set;
      for (unsigned i = 0; i < count; ++i) set.insert(read_asn());
      path.append_set(std::move(set));
    } else {
      throw WireError(ErrorCode::UpdateMessage, kUpdMalformedAsPath,
                      "unknown AS_PATH segment type");
    }
  }
  return path;
}

/// RFC 6793 §4.2.3: reconstruct the true path from a 2-octet AS_PATH
/// (AS_TRANS stand-ins) and its AS4_PATH. The AS4_PATH covers the trailing
/// hops; any extra leading AS_PATH hops (prepended by old speakers that
/// cannot update AS4_PATH) are kept verbatim. An AS4_PATH claiming more
/// hops than AS_PATH is inconsistent and ignored, as the RFC instructs.
AsPath merge_as4_path(const AsPath& path, const AsPath& as4) {
  const std::size_t path_hops = path.selection_length();
  const std::size_t as4_hops = as4.selection_length();
  if (as4_hops > path_hops) return path;
  std::size_t take = path_hops - as4_hops;  // leading hops kept from AS_PATH
  AsPath merged;
  for (const auto& seg : path.segments()) {
    if (take == 0) break;
    if (seg.kind == PathSegment::Kind::Set) {
      merged.append_set(AsnSet(seg.asns.begin(), seg.asns.end()));
      --take;  // a set counts as one hop
    } else if (seg.asns.size() <= take) {
      merged.append_sequence(seg.asns);
      take -= seg.asns.size();
    } else {
      merged.append_sequence(std::vector<Asn>(
          seg.asns.begin(), seg.asns.begin() + static_cast<std::ptrdiff_t>(take)));
      take = 0;
    }
  }
  for (const auto& seg : as4.segments()) {
    if (seg.kind == PathSegment::Kind::Set) {
      merged.append_set(AsnSet(seg.asns.begin(), seg.asns.end()));
    } else {
      merged.append_sequence(seg.asns);
    }
  }
  return merged;
}

struct ParsedUpdate {
  UpdateMessage message;
  std::vector<AttributeIssue> issues;
};

void add_issue(ParsedUpdate& out, ErrorAction action, std::uint8_t attr_type,
               std::uint8_t subcode, std::string detail) {
  out.issues.push_back(AttributeIssue{action, attr_type, ErrorCode::UpdateMessage, subcode,
                                      std::move(detail)});
}

/// Parse exactly the path-attribute section (a Reader bounded to Total Path
/// Attribute Length octets), classifying every problem instead of throwing.
/// Issues are recorded in encounter order, so strict RFC 4271 handling can
/// throw the first one and match the old first-bad-byte behavior.
void read_attributes_classified(Reader& section, ParsedUpdate& out, bool four_octet_as) {
  PathAttributes attrs;
  bool saw_origin = false;
  bool saw_as_path = false;
  bool saw_next_hop = false;
  std::optional<AsPath> as4_path;
  while (!section.done()) {
    std::uint8_t flags = 0;
    std::uint8_t type = 0;
    std::size_t length = 0;
    try {
      flags = section.u8();
      type = section.u8();
      length = (flags & kFlagExtendedLength) ? section.u16() : static_cast<std::size_t>(section.u8());
    } catch (const WireError&) {
      // Without a complete header the rest of the section cannot be framed.
      add_issue(out, ErrorAction::TreatAsWithdraw, 0, kUpdMalformedAttrList,
                "attribute header truncated");
      break;
    }
    std::span<const std::uint8_t> raw;
    try {
      raw = section.bytes(length);
    } catch (const WireError&) {
      // The claimed length overruns the attribute section; the NLRI
      // boundary is still known from Total Path Attribute Length, so the
      // routes are salvageable even though the remaining attributes are not.
      add_issue(out, ErrorAction::TreatAsWithdraw, type, kUpdAttrLengthError,
                "attribute value overruns the attribute section");
      break;
    }
    // Mandatory-presence is about which attributes the sender included, not
    // which ones parsed; a present-but-broken ORIGIN is an ORIGIN issue, not
    // additionally a missing-attribute one.
    switch (static_cast<AttrType>(type)) {
      case AttrType::Origin: saw_origin = true; break;
      case AttrType::AsPath: saw_as_path = true; break;
      case AttrType::NextHop: saw_next_hop = true; break;
      default: break;
    }
    try {
      Reader value(raw, ErrorCode::UpdateMessage, kUpdAttrLengthError);
      switch (static_cast<AttrType>(type)) {
        case AttrType::Origin: {
          if (length != 1) {
            throw WireError(ErrorCode::UpdateMessage, kUpdAttrLengthError, "ORIGIN must be 1 octet");
          }
          const std::uint8_t code = value.u8();
          if (code > 2) {
            throw WireError(ErrorCode::UpdateMessage, kUpdInvalidOrigin, "unknown ORIGIN code");
          }
          attrs.origin_code = static_cast<OriginCode>(code);
          break;
        }
        case AttrType::AsPath:
          attrs.path = read_as_path(value, four_octet_as);
          break;
        case AttrType::As4Path:
          // RFC 6793 §4.2.3: a speaker that negotiated 4-octet ASNs already
          // has the true path in AS_PATH and discards AS4_PATH.
          if (!four_octet_as) as4_path = read_as_path(value, /*four_octet=*/true);
          break;
        case AttrType::NextHop:
          if (length != 4) {
            throw WireError(ErrorCode::UpdateMessage, kUpdAttrLengthError, "NEXT_HOP must be 4 octets");
          }
          value.u32();  // the AS-level model does not keep it
          break;
        case AttrType::Med:
          if (length != 4) {
            throw WireError(ErrorCode::UpdateMessage, kUpdAttrLengthError, "MED must be 4 octets");
          }
          attrs.med = value.u32();
          break;
        case AttrType::LocalPref:
          if (length != 4) {
            throw WireError(ErrorCode::UpdateMessage, kUpdAttrLengthError, "LOCAL_PREF must be 4 octets");
          }
          attrs.local_pref = value.u32();
          break;
        case AttrType::Communities: {
          if (length % 4 != 0) {
            throw WireError(ErrorCode::UpdateMessage, kUpdAttrLengthError,
                            "COMMUNITIES length not a multiple of 4");
          }
          CommunitySet communities;
          while (!value.done()) communities.add(Community(value.u32()));
          attrs.communities = std::move(communities);
          break;
        }
        case AttrType::LargeCommunities: {
          if (length % 12 != 0) {
            throw WireError(ErrorCode::UpdateMessage, kUpdAttrLengthError,
                            "LARGE_COMMUNITY length not a multiple of 12");
          }
          LargeCommunitySet large;
          while (!value.done()) {
            const std::uint32_t admin = value.u32();
            const std::uint32_t data1 = value.u32();
            const std::uint32_t data2 = value.u32();
            large.add(LargeCommunity(admin, data1, data2));
          }
          attrs.large_communities = std::move(large);
          break;
        }
        default:
          if (!(flags & kFlagOptional)) {
            throw WireError(ErrorCode::UpdateMessage, kUpdUnrecognizedWellKnown,
                            "unrecognized well-known attribute " + std::to_string(type));
          }
          if (flags & kFlagTransitive) {
            // RFC 4271 §9: unknown optional transitive attributes are
            // retained and re-advertised with the Partial bit set.
            out.message.unknown_attrs.push_back(
                UnknownAttribute{type, std::vector<std::uint8_t>(raw.begin(), raw.end())});
          }
          // Unknown optional non-transitive: quietly discarded.
          break;
      }
    } catch (const WireError& e) {
      add_issue(out, action_for(static_cast<AttrType>(type)), type, e.subcode(), e.what());
    }
  }
  if (!saw_origin || !saw_as_path || !saw_next_hop) {
    add_issue(out, ErrorAction::TreatAsWithdraw, 0, kUpdMissingWellKnown,
              "missing well-known mandatory attribute");
  }
  if (as4_path && saw_as_path) {
    attrs.path = merge_as4_path(attrs.path, *as4_path);
  }
  out.message.attrs = std::move(attrs);
}

/// Shared body parse behind both decode_update flavors. Throws WireError
/// for SessionReset-class damage (header, withdrawn-routes section,
/// attribute-section framing, NLRI); everything inside the attribute
/// section is classified into `issues` instead.
ParsedUpdate parse_update(std::span<const std::uint8_t> data, bool four_octet_as) {
  auto [type, body] = open_message(data);
  if (type != MessageType::Update) {
    throw WireError(ErrorCode::MessageHeader, kHdrBadType, "not an UPDATE message");
  }
  // Truncation inside the UPDATE body is an UPDATE error, not a header one.
  Reader r(body.rest(), ErrorCode::UpdateMessage, kUpdMalformedAttrList);

  ParsedUpdate out;
  const std::size_t withdrawn_len = r.u16();
  {
    Reader withdrawn(r.bytes(withdrawn_len));
    while (!withdrawn.done()) out.message.withdrawn.push_back(read_prefix(withdrawn));
  }
  const std::size_t attrs_len = r.u16();
  if (attrs_len > 0) {
    if (attrs_len > r.remaining()) {
      throw WireError(ErrorCode::UpdateMessage, kUpdMalformedAttrList, "attribute section truncated");
    }
    Reader section(r.bytes(attrs_len), ErrorCode::UpdateMessage, kUpdMalformedAttrList);
    read_attributes_classified(section, out, four_octet_as);
  }
  while (!r.done()) out.message.nlri.push_back(read_prefix(r));
  if (!out.message.nlri.empty() && !out.message.attrs) {
    add_issue(out, ErrorAction::TreatAsWithdraw, 0, kUpdMissingWellKnown,
              "NLRI without path attributes");
  }
  return out;
}

}  // namespace

const char* to_string(ErrorAction action) {
  switch (action) {
    case ErrorAction::Ignore: return "ignore";
    case ErrorAction::AttributeDiscard: return "attribute-discard";
    case ErrorAction::TreatAsWithdraw: return "treat-as-withdraw";
    case ErrorAction::SessionReset: return "session-reset";
  }
  return "?";
}

std::vector<std::uint8_t> encode_update(const UpdateMessage& update,
                                        const EncodeOptions& options) {
  MOAS_REQUIRE(update.nlri.empty() || update.attrs.has_value(),
               "announcements need path attributes");
  Writer w;
  write_header(w, MessageType::Update);

  const std::size_t withdrawn_len_pos = w.size();
  w.u16(0);
  for (const auto& prefix : update.withdrawn) write_prefix(w, prefix);
  w.patch_u16(withdrawn_len_pos,
              static_cast<std::uint16_t>(w.size() - withdrawn_len_pos - 2));

  const std::size_t attrs_len_pos = w.size();
  w.u16(0);
  if (update.attrs) write_attributes(w, *update.attrs, options);
  for (const auto& attr : update.unknown_attrs) {
    // Pass-through of attributes we do not implement: optional transitive
    // with the Partial bit, since this speaker did not originate them.
    write_attribute_header(w, kFlagOptional | kFlagTransitive | kFlagPartial,
                           static_cast<AttrType>(attr.type), attr.value.size());
    w.bytes(attr.value);
  }
  w.patch_u16(attrs_len_pos, static_cast<std::uint16_t>(w.size() - attrs_len_pos - 2));

  for (const auto& prefix : update.nlri) write_prefix(w, prefix);
  return finish(w);
}

UpdateMessage decode_update(std::span<const std::uint8_t> data, bool four_octet_as) {
  ParsedUpdate parsed = parse_update(data, four_octet_as);
  if (!parsed.issues.empty()) {
    // Strict RFC 4271 discipline: the first problem aborts the message with
    // the NOTIFICATION code it documents.
    const AttributeIssue& first = parsed.issues.front();
    throw WireError(first.code, first.subcode, first.detail);
  }
  return std::move(parsed.message);
}

ErrorAction DecodeResult::severity() const {
  ErrorAction worst = ErrorAction::Ignore;
  for (const AttributeIssue& issue : issues) worst = std::max(worst, issue.action);
  return worst;
}

UpdateMessage DecodeResult::to_deliverable() const {
  if (severity() < ErrorAction::TreatAsWithdraw) return message;
  // Treat-as-withdraw: the sender's explicit withdrawals stand, every
  // announced prefix is revoked as an error-withdrawal, and nothing from
  // the damaged attribute set survives.
  UpdateMessage out;
  out.withdrawn = message.withdrawn;
  out.error_withdrawn = message.nlri;
  return out;
}

DecodeResult decode_update_revised(std::span<const std::uint8_t> data, bool four_octet_as) {
  ParsedUpdate parsed = parse_update(data, four_octet_as);
  return DecodeResult{std::move(parsed.message), std::move(parsed.issues)};
}

bool is_end_of_rib(const UpdateMessage& message) {
  return message.withdrawn.empty() && message.nlri.empty() && message.error_withdrawn.empty();
}

std::vector<std::uint8_t> encode_end_of_rib() {
  // RFC 4724 §2: for IPv4 unicast the marker is simply an UPDATE with no
  // withdrawn routes and no NLRI — the minimal 23-octet message.
  return encode_update(UpdateMessage{});
}

std::vector<std::uint8_t> encode_open(const OpenMessage& open) {
  Writer w;
  write_header(w, MessageType::Open);
  w.u8(open.version);
  w.u16(open.my_as);
  w.u16(open.hold_time);
  w.u32(open.bgp_identifier);

  // Capability list (RFC 5492: one Capabilities optional parameter). Built
  // separately so the two length prefixes can be written without patching.
  // Graceful restart comes first — a GR-only OPEN is byte-identical to the
  // pre-AS4 encoding.
  Writer caps;
  if (open.graceful_restart) {
    const GracefulRestartCapability& gr = *open.graceful_restart;
    MOAS_REQUIRE(gr.restart_time <= kGrRestartTimeMask,
                 "graceful-restart time exceeds the 12-bit field");
    const std::uint8_t cap_len = gr.ipv4_unicast ? 6 : 2;  // flags/time [+ tuple]
    caps.u8(kCapGracefulRestart);
    caps.u8(cap_len);
    std::uint16_t flags_time = gr.restart_time;
    if (gr.restart_state) flags_time |= kGrRestartFlag;
    caps.u16(flags_time);
    if (gr.ipv4_unicast) {
      caps.u16(kAfiIpv4);
      caps.u8(kSafiUnicast);
      caps.u8(gr.forwarding_preserved ? kGrForwardingFlag : 0);
    }
  }
  if (open.four_octet_as) {
    caps.u8(kCapFourOctetAs);
    caps.u8(4);
    caps.u32(*open.four_octet_as);
  }

  const std::vector<std::uint8_t> cap_bytes = caps.take();
  if (cap_bytes.empty()) {
    w.u8(0);  // no optional parameters
    return finish(w);
  }
  w.u8(static_cast<std::uint8_t>(cap_bytes.size() + 2));  // total optional-params length
  w.u8(kOptParamCapabilities);
  w.u8(static_cast<std::uint8_t>(cap_bytes.size()));  // parameter value length
  w.bytes(cap_bytes);
  return finish(w);
}

OpenMessage decode_open(std::span<const std::uint8_t> data) {
  auto [type, body] = open_message(data);
  if (type != MessageType::Open) {
    throw WireError(ErrorCode::MessageHeader, kHdrBadType, "not an OPEN message");
  }
  // A short OPEN body is an OPEN error (unspecific subcode 0).
  Reader r(body.rest(), ErrorCode::OpenMessage, 0);
  OpenMessage out;
  out.version = r.u8();
  if (out.version != 4) {
    throw WireError(ErrorCode::OpenMessage, kOpenUnsupportedVersion, "unsupported BGP version");
  }
  out.my_as = r.u16();
  out.hold_time = r.u16();
  if (out.hold_time == 1 || out.hold_time == 2) {
    throw WireError(ErrorCode::OpenMessage, kOpenUnacceptableHoldTime, "illegal hold time");
  }
  out.bgp_identifier = r.u32();
  const std::uint8_t opt_len = r.u8();
  Reader params(r.bytes(opt_len), ErrorCode::OpenMessage, 0);
  if (!r.done()) throw WireError(ErrorCode::OpenMessage, 0, "trailing bytes in OPEN");
  while (!params.done()) {
    const std::uint8_t param_type = params.u8();
    const std::uint8_t param_len = params.u8();
    Reader value(params.bytes(param_len), ErrorCode::OpenMessage, 0);
    if (param_type != kOptParamCapabilities) continue;  // unknown parameter: skip
    while (!value.done()) {
      const std::uint8_t cap_code = value.u8();
      const std::uint8_t cap_len = value.u8();
      Reader cap(value.bytes(cap_len), ErrorCode::OpenMessage, 0);
      if (cap_code == kCapFourOctetAs) {
        if (cap_len != 4) {
          throw WireError(ErrorCode::OpenMessage, 0, "four-octet-AS capability must be 4 octets");
        }
        out.four_octet_as = cap.u32();
        continue;
      }
      if (cap_code != kCapGracefulRestart) continue;  // unknown capability: skip
      if (cap_len < 2) {
        throw WireError(ErrorCode::OpenMessage, 0, "graceful-restart capability too short");
      }
      GracefulRestartCapability gr;
      const std::uint16_t flags_time = cap.u16();
      gr.restart_state = (flags_time & kGrRestartFlag) != 0;
      gr.restart_time = flags_time & kGrRestartTimeMask;
      gr.ipv4_unicast = false;
      while (cap.remaining() >= 4) {
        const std::uint16_t afi = cap.u16();
        const std::uint8_t safi = cap.u8();
        const std::uint8_t afi_flags = cap.u8();
        if (afi == kAfiIpv4 && safi == kSafiUnicast) {
          gr.ipv4_unicast = true;
          gr.forwarding_preserved = (afi_flags & kGrForwardingFlag) != 0;
        }  // other address families: announced but not modeled, skip
      }
      if (!cap.done()) {
        throw WireError(ErrorCode::OpenMessage, 0, "graceful-restart tuple truncated");
      }
      out.graceful_restart = gr;
    }
  }
  return out;
}

std::vector<std::uint8_t> encode_keepalive() {
  Writer w;
  write_header(w, MessageType::Keepalive);
  return finish(w);
}

void decode_keepalive(std::span<const std::uint8_t> data) {
  auto [type, r] = open_message(data);
  if (type != MessageType::Keepalive) {
    throw WireError(ErrorCode::MessageHeader, kHdrBadType, "not a KEEPALIVE message");
  }
  if (!r.done()) {
    throw WireError(ErrorCode::MessageHeader, kHdrBadLength, "KEEPALIVE must be header-only");
  }
}

std::vector<std::uint8_t> encode_notification(const NotificationMessage& notification) {
  Writer w;
  write_header(w, MessageType::Notification);
  w.u8(notification.code);
  w.u8(notification.subcode);
  w.bytes(notification.data);
  return finish(w);
}

NotificationMessage decode_notification(std::span<const std::uint8_t> data) {
  auto [type, r] = open_message(data);
  if (type != MessageType::Notification) {
    throw WireError(ErrorCode::MessageHeader, kHdrBadType, "not a NOTIFICATION message");
  }
  NotificationMessage out;
  out.code = r.u8();
  out.subcode = r.u8();
  auto rest = r.bytes(r.remaining());
  out.data.assign(rest.begin(), rest.end());
  return out;
}

MessageType message_type(std::span<const std::uint8_t> data) {
  auto [type, r] = open_message(data);
  (void)r;
  return type;
}

std::vector<std::uint8_t> encode_sim_update(const Update& update,
                                            const EncodeOptions& options) {
  UpdateMessage message;
  if (update.kind == Update::Kind::Withdraw) {
    message.withdrawn.push_back(update.prefix);
  } else if (update.kind == Update::Kind::Announce) {
    MOAS_REQUIRE(update.route.has_value(), "announce update without route");
    message.attrs = update.route->attrs;
    message.nlri.push_back(update.prefix);
  }  // EndOfRib: the empty message IS the marker
  return encode_update(message, options);
}

std::vector<Update> to_sim_updates(const UpdateMessage& message) {
  std::vector<Update> out;
  if (is_end_of_rib(message)) {
    out.push_back(Update::end_of_rib());
    return out;
  }
  for (const auto& prefix : message.withdrawn) out.push_back(Update::withdraw(prefix));
  for (const auto& prefix : message.error_withdrawn) {
    out.push_back(Update::make_error_withdraw(prefix));
  }
  for (const auto& prefix : message.nlri) {
    MOAS_ENSURE(message.attrs.has_value(), "NLRI without attributes");
    Route route;
    route.prefix = prefix;
    route.attrs = *message.attrs;
    out.push_back(Update::announce(std::move(route)));
  }
  return out;
}

std::size_t moas_list_overhead_bytes(std::size_t n_origins, bool had_communities) {
  const std::size_t values = 4 * n_origins;
  if (had_communities) return values;
  // Attribute header: flags + type + 1-byte length (lists of <= 63 origins).
  return values + 3;
}

}  // namespace moas::bgp::wire
