#include "moas/bgp/damping.h"

#include <cmath>

#include "moas/util/assert.h"

namespace moas::bgp {

FlapDamper::FlapDamper(Config config) : config_(config) {
  MOAS_REQUIRE(config_.half_life > 0.0, "half-life must be positive");
  MOAS_REQUIRE(config_.reuse_threshold > 0.0, "reuse threshold must be positive");
  MOAS_REQUIRE(config_.suppress_threshold > config_.reuse_threshold,
               "suppress threshold must exceed reuse threshold");
  MOAS_REQUIRE(config_.max_penalty >= config_.suppress_threshold,
               "penalty ceiling below suppress threshold");
}

FlapDamper::RouteState& FlapDamper::refresh(Asn peer, const net::Prefix& prefix,
                                            sim::Time now) {
  RouteState& state = state_[{peer, prefix}];
  if (now > state.stamped_at && state.penalty > 0.0) {
    const double elapsed = now - state.stamped_at;
    state.penalty *= std::exp2(-elapsed / config_.half_life);
    if (state.penalty < 1.0) state.penalty = 0.0;  // denormal housekeeping
  }
  state.stamped_at = now;
  if (state.suppressed && state.penalty < config_.reuse_threshold) {
    state.suppressed = false;
  }
  return state;
}

double FlapDamper::add_penalty(Asn peer, const net::Prefix& prefix, sim::Time now,
                               double amount) {
  RouteState& state = refresh(peer, prefix, now);
  state.penalty = std::min(state.penalty + amount, config_.max_penalty);
  if (state.penalty >= config_.suppress_threshold) state.suppressed = true;
  return state.penalty;
}

double FlapDamper::on_withdrawal(Asn peer, const net::Prefix& prefix, sim::Time now) {
  return add_penalty(peer, prefix, now, config_.withdrawal_penalty);
}

double FlapDamper::on_attribute_change(Asn peer, const net::Prefix& prefix, sim::Time now) {
  return add_penalty(peer, prefix, now, config_.attribute_change_penalty);
}

bool FlapDamper::suppressed(Asn peer, const net::Prefix& prefix, sim::Time now) {
  auto it = state_.find({peer, prefix});
  if (it == state_.end()) return false;
  return refresh(peer, prefix, now).suppressed;
}

double FlapDamper::penalty(Asn peer, const net::Prefix& prefix, sim::Time now) {
  auto it = state_.find({peer, prefix});
  if (it == state_.end()) return 0.0;
  return refresh(peer, prefix, now).penalty;
}

sim::Time FlapDamper::reuse_time(Asn peer, const net::Prefix& prefix, sim::Time now) {
  auto it = state_.find({peer, prefix});
  if (it == state_.end()) return now;
  RouteState& state = refresh(peer, prefix, now);
  if (!state.suppressed) return now;
  // penalty * 2^(-t / half_life) = reuse  =>  t = half_life * log2(p / reuse)
  const double t = config_.half_life * std::log2(state.penalty / config_.reuse_threshold);
  return now + t;
}

void FlapDamper::clear_peer(Asn peer) {
  for (auto it = state_.begin(); it != state_.end();) {
    if (it->first.first == peer) {
      it = state_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace moas::bgp
