// Route flap damping (RFC 2439, simplified to the classic figure-of-merit
// model).
//
// Each (peer, prefix) pair accumulates a penalty on every flap (withdrawal
// or attribute change); the penalty decays exponentially with a configured
// half-life. Crossing the suppress threshold mutes the route; decaying
// below the reuse threshold unmutes it. The MOAS measurement section's
// fault events are exactly the kind of churn damping was designed to
// absorb, which makes it a natural substrate ablation: damping delays both
// the false announcement *and* the valid route's recovery.
#pragma once

#include <map>

#include "moas/bgp/asn.h"
#include "moas/net/prefix.h"
#include "moas/sim/event_queue.h"

namespace moas::bgp {

class FlapDamper {
 public:
  struct Config {
    double withdrawal_penalty = 1000.0;
    double attribute_change_penalty = 500.0;
    double suppress_threshold = 2000.0;
    double reuse_threshold = 750.0;
    double max_penalty = 12000.0;  // RFC: ceiling at ~4x suppress
    sim::Time half_life = 900.0;   // 15 minutes
  };

  FlapDamper() : FlapDamper(Config()) {}
  explicit FlapDamper(Config config);

  /// Record a withdrawal flap at virtual time `now`; returns the new
  /// penalty.
  double on_withdrawal(Asn peer, const net::Prefix& prefix, sim::Time now);

  /// Record a re-announcement / attribute change flap.
  double on_attribute_change(Asn peer, const net::Prefix& prefix, sim::Time now);

  /// Whether the route from `peer` is currently suppressed.
  bool suppressed(Asn peer, const net::Prefix& prefix, sim::Time now);

  /// Current (decayed) penalty; 0 if the pair has no history.
  double penalty(Asn peer, const net::Prefix& prefix, sim::Time now);

  /// When a currently-suppressed route becomes reusable (absolute time);
  /// `now` if it is not suppressed.
  sim::Time reuse_time(Asn peer, const net::Prefix& prefix, sim::Time now);

  /// Drop all state for a peer (session reset clears damping history).
  void clear_peer(Asn peer);

  std::size_t tracked_routes() const { return state_.size(); }

 private:
  struct RouteState {
    double penalty = 0.0;
    sim::Time stamped_at = 0.0;
    bool suppressed = false;
  };

  /// Decay the stored penalty to `now` and update bookkeeping.
  RouteState& refresh(Asn peer, const net::Prefix& prefix, sim::Time now);
  double add_penalty(Asn peer, const net::Prefix& prefix, sim::Time now, double amount);

  Config config_;
  std::map<std::pair<Asn, net::Prefix>, RouteState> state_;
};

}  // namespace moas::bgp
