// An AS-level BGP speaker.
//
// One Router models the externally visible routing behavior of one AS (the
// abstraction the paper's SSFnet simulation uses): it keeps per-peer
// Adj-RIB-In tables, runs the decision process, and re-advertises its best
// routes subject to export policy, optional MRAI pacing, an optional import
// validator (the MOAS detector), and an optional export filter (used to
// model compromised routers that suppress valid routes).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "moas/bgp/damping.h"
#include "moas/bgp/policy.h"
#include "moas/bgp/rib.h"
#include "moas/bgp/route.h"
#include "moas/bgp/validator.h"
#include "moas/sim/event_queue.h"
#include "moas/util/flat_map.h"

namespace moas::obs {
class MetricsRegistry;
class TraceBus;
}  // namespace moas::obs

namespace moas::bgp {

class Router final : public RouterContext {
 public:
  /// Transport callback: deliver `update` from this router to peer `to`.
  /// Provided by the Network (adds link delay); may be a direct call in
  /// unit tests.
  /// By-value Update so the send path can move instead of copy: transmit()
  /// hands its update over, and an engine's sink may move it onward into a
  /// queue slot. Callables taking `const Update&` still convert.
  using SendFn = std::function<void(Asn from, Asn to, Update update)>;

  /// Filter applied to every outgoing update; return false to suppress.
  /// Used by the experiment harness to model compromised routers.
  using ExportFilter = std::function<bool(const Update& update, Asn to)>;

  /// `clock` may be null: then MRAI pacing is unavailable and
  /// current_time() reports 0.
  Router(Asn asn, PolicyMode mode, SendFn send, sim::EventQueue* clock);

  Asn asn() const { return asn_; }
  PolicyMode policy_mode() const { return mode_; }

  // --- configuration -------------------------------------------------------

  /// Register a peer with its relationship as seen from this AS.
  void add_peer(Asn peer, Relationship rel);
  bool has_peer(Asn peer) const { return peers_.contains(peer); }
  std::vector<Asn> peers() const;

  /// Install the import validator (defaults to accept-all).
  void set_validator(std::shared_ptr<ImportValidator> validator);
  ImportValidator& validator() { return *validator_; }

  void set_export_filter(ExportFilter filter) { export_filter_ = std::move(filter); }

  /// Drop the (optional, transitive) community attribute from everything
  /// this router re-advertises — the RFC-permitted behavior the paper's
  /// Section 4.3 discusses. Locally originated routes keep their
  /// communities.
  void set_strip_communities(bool strip) { strip_communities_ = strip; }
  bool strips_communities() const { return strip_communities_; }

  /// Minimum route advertisement interval per (peer, prefix); 0 disables.
  /// Requires a clock.
  void set_mrai(sim::Time seconds);
  sim::Time mrai() const { return mrai_; }

  /// Keep the currently selected route when a challenger only ties its
  /// attribute key (the "prefer oldest route" stability step many BGP
  /// implementations apply before the router-id tie-break). On by default;
  /// turning it off makes equal-key contests deterministic by neighbor ASN.
  void set_prefer_established(bool prefer) { prefer_established_ = prefer; }
  bool prefers_established() const { return prefer_established_; }

  /// Enable RFC 2439 route flap damping on import. Flapping (peer, prefix)
  /// pairs accumulate penalty; suppressed routes are excluded from the
  /// decision process until their penalty decays below the reuse
  /// threshold (a re-decide is scheduled automatically). Requires a clock.
  void enable_flap_damping(FlapDamper::Config config);
  bool flap_damping_enabled() const { return damper_.has_value(); }
  const FlapDamper* flap_damper() const { return damper_ ? &*damper_ : nullptr; }

  /// Enable RFC 4724 graceful restart with the given restart time (seconds;
  /// 0 disables). When enabled, peer_restarting() retains the restarting
  /// peer's routes as stale instead of flushing, every session
  /// establishment ends its initial route exchange with an End-of-RIB
  /// marker, and a restart timer flushes stale routes whose peer never came
  /// back. Requires a clock when non-zero.
  void set_graceful_restart(sim::Time restart_time);
  bool graceful_restart_enabled() const { return gr_restart_time_ > 0.0; }
  sim::Time graceful_restart_time() const { return gr_restart_time_; }

  // --- protocol operations --------------------------------------------------

  /// Originate a prefix locally (installs into Loc-RIB and advertises).
  void originate(const net::Prefix& prefix, CommunitySet communities = {},
                 OriginCode origin_code = OriginCode::Igp);

  /// Origination with both community widths — MOAS lists holding 4-octet
  /// members ride RFC 8092 large communities (core::attach_moas_list splits
  /// a mixed list across the two attributes).
  void originate(const net::Prefix& prefix, CommunitySet communities,
                 LargeCommunitySet large_communities,
                 OriginCode origin_code = OriginCode::Igp);

  /// Withdraw a local origination.
  void withdraw_origination(const net::Prefix& prefix);

  /// Entry point for updates arriving from a peer.
  void handle_update(Asn from, const Update& update);

  /// Import half of handle_update: runs loop detection, import policy,
  /// validation and the Adj-RIB-In write, but NOT the decision process.
  /// Returns true when the RIB changed and the caller owes a
  /// decide_prefix(update.prefix). The wave engine uses this to ingest a
  /// whole sweep batch before deciding once per touched prefix — the
  /// fixpoint is identical (the decision is a pure function of RIB state),
  /// it just skips the intra-batch transient exports.
  bool import_update(Asn from, const Update& update);
  /// Move-through variant for callers that own the update (the wave
  /// engine's drained slot entries): the announced route is moved into the
  /// Adj-RIB-In instead of copied.
  bool import_update(Asn from, Update&& update);

  /// Run the decision process for `prefix` now (exports on best change).
  /// Pairs with import_update.
  void decide_prefix(const net::Prefix& prefix) { decide(prefix); }

  /// Session with `peer` went down: flush everything learned from it,
  /// reselect, and forget what was advertised to it (nothing can be
  /// withdrawn over a dead session). While the session is down nothing is
  /// transmitted to the peer and no advertised-state is booked — a dead
  /// session cannot carry updates. Idempotent.
  void peer_down(Asn peer);

  /// Session with `peer` came (back) up: advertise the current Loc-RIB to
  /// it, as the initial route exchange after session establishment does.
  /// With graceful restart enabled the exchange ends with an End-of-RIB
  /// marker, which lets the peer sweep any stale routes we did not replay.
  void peer_up(Asn peer);

  /// The peer crashed but negotiated graceful restart: keep its routes in
  /// use, marked stale, and start the restart timer. If the peer
  /// re-establishes in time its replayed routes refresh the stale entries
  /// and its End-of-RIB sweeps the rest; if the timer fires first the
  /// leftovers are flushed like a cold peer_down. Falls back to peer_down()
  /// when graceful restart is not enabled on this router.
  void peer_restarting(Asn peer);

  /// True while the session with `peer` is considered up (add_peer starts
  /// it up; peer_down/peer_up toggle it).
  bool peer_session_up(Asn peer) const;

  /// True if `peer`'s route for `prefix` was revoked by RFC 7606
  /// treat-as-withdraw (error_withdraw updates) and the peer has not
  /// re-announced or explicitly withdrawn since. Such a route must not be
  /// cited as detector evidence.
  bool route_error_withdrawn(Asn peer, const net::Prefix& prefix) const;

  /// RFC 2918-style route refresh: re-send whatever this router last
  /// advertised for `prefix` to `peer`, bypassing duplicate suppression.
  /// RFC 7606 §6 recommends exactly this after treat-as-withdraw — the
  /// sender's bookkeeping still says the route is advertised, so without a
  /// refresh the error-withdrawn hole would persist until the next organic
  /// change. No-op when the session is down or nothing is advertised (the
  /// session replay / normal export path covers those cases).
  void refresh_route(Asn peer, const net::Prefix& prefix);

  /// Crash: lose every piece of protocol state — Adj-RIB-In, Loc-RIB,
  /// per-peer advertisement bookkeeping, damping history, validator memory
  /// (ImportValidator::on_reset). Local originations are configuration and
  /// survive; restart() re-announces them cold. All sessions drop.
  void crash();

  /// Cold restart after crash(): reinstall local originations into the
  /// Loc-RIB. Sessions stay down until peer_up is driven (by the Network)
  /// for each live link.
  void restart();

  // --- queries ---------------------------------------------------------------

  /// Best route currently selected for `prefix` (nullptr if none).
  const RibEntry* best(const net::Prefix& prefix) const { return loc_rib_.best(prefix); }

  /// Origin AS of the selected best route, if any.
  std::optional<Asn> best_origin(const net::Prefix& prefix) const;

  const AdjRibIn& adj_rib_in() const { return adj_in_; }
  const LocRib& loc_rib() const { return loc_rib_; }
  bool originates(const net::Prefix& prefix) const { return local_.contains(prefix); }
  bool has_export_filter() const { return static_cast<bool>(export_filter_); }

  // --- audit queries (chaos::NetworkInvariantChecker) -----------------------

  /// The route this router last put on the wire toward `peer` for `prefix`
  /// (nullptr if nothing outstanding). Mirrors what the peer's Adj-RIB-In
  /// must hold at quiescence.
  const Route* advertised_to(Asn peer, const net::Prefix& prefix) const;

  /// Prefixes with an outstanding advertisement toward `peer`.
  std::vector<net::Prefix> advertised_prefixes(Asn peer) const;

  /// Recompute, from current Loc-RIB + export policy + split horizon, what
  /// this router would advertise to `peer` for `prefix` right now (nullopt:
  /// nothing / withdraw). At quiescence this must agree with advertised_to
  /// for filter-free routers.
  std::optional<Route> rebuild_export(Asn peer, const net::Prefix& prefix) const;

  struct Stats {
    std::uint64_t updates_received = 0;
    std::uint64_t updates_sent = 0;
    std::uint64_t announcements_sent = 0;  // updates_sent broken down by kind
    std::uint64_t withdrawals_sent = 0;
    std::uint64_t announcements_rejected = 0;  // validator vetoes
    std::uint64_t error_withdraws = 0;  // RFC 7606 treat-as-withdraw processed
    std::uint64_t route_refreshes = 0;  // RFC 2918 refreshes served to peers
    /// Adj-RIB-In entries removed by any form of withdrawal: explicit or
    /// error withdraw messages, session-loss flushes (the implicit
    /// withdraw-everything a reset inflicts), and graceful-restart stale
    /// sweeps. Wire withdrawals_sent undercounts reset damage — a dead
    /// session sends nothing while its peer's whole table evaporates.
    std::uint64_t routes_withdrawn = 0;
    std::uint64_t loops_detected = 0;
    std::uint64_t decisions = 0;
    std::uint64_t best_changes = 0;
    std::uint64_t candidates_damped = 0;  // suppressed by flap damping
    // Graceful restart (RFC 4724).
    std::uint64_t eor_sent = 0;
    std::uint64_t eor_received = 0;
    std::uint64_t stale_retained = 0;  // entries marked stale at peer restarts
    std::uint64_t stale_swept = 0;     // flushed by End-of-RIB or the timer
  };
  const Stats& stats() const { return stats_; }

  /// Attach (or detach, with nullptr) the observability trace bus. The bus
  /// must outlive the router; emission is gated by obs::trace_wants so a
  /// null/Off bus costs one branch per site.
  void set_trace(obs::TraceBus* bus) { trace_ = bus; }

  /// Snapshot every Stats counter into `registry` under "router.*" names.
  /// Counters sum on registry merge, so calling this for each router of a
  /// network yields the network-wide aggregate.
  void collect_metrics(obs::MetricsRegistry& registry) const;

  // --- RouterContext (for validators) ---------------------------------------
  Asn self() const override { return asn_; }
  sim::Time current_time() const override { return clock_ ? clock_->now() : 0.0; }
  std::size_t invalidate_origins(const net::Prefix& prefix,
                                 const AsnSet& false_origins) override;
  AsnSet accepted_origins(const net::Prefix& prefix) const override;

 private:
  struct PeerState {
    Relationship rel = Relationship::Peer;
    /// Session liveness: while false, nothing is sent and nothing is booked
    /// as advertised (updates cannot cross a dead session).
    bool session_up = true;
    /// What we last advertised for each prefix (for withdraw bookkeeping
    /// and duplicate suppression). Flat storage: at multi-prefix scale this
    /// is the largest per-peer structure, and the routes inside it share
    /// their attribute payloads through the interner anyway.
    util::FlatMap<net::Prefix, Route> advertised;
    /// MRAI state per prefix.
    std::map<net::Prefix, sim::Time> next_allowed;
    std::map<net::Prefix, std::optional<Update>> pending;
    /// Prefixes whose last announcement from this peer was revoked by RFC
    /// 7606 treat-as-withdraw (cleared by any fresh update for the prefix).
    std::set<net::Prefix> error_withdrawn;
    /// Bumped on every restart window (and on cold session loss) so a
    /// pending stale-route timer from a superseded window no-ops.
    std::uint64_t gr_generation = 0;
  };

  /// Re-run the decision process for `prefix`; export on change.
  void decide(const net::Prefix& prefix);

  /// Advertise the current best (or withdrawal) for `prefix` to all peers.
  void export_prefix(const net::Prefix& prefix);

  /// Apply export policy/transforms and pass to the MRAI stage.
  void send_to_peer(Asn peer, PeerState& state, const net::Prefix& prefix);

  /// MRAI-paced transmission of a concrete update.
  void transmit(Asn peer, PeerState& state, Update update);
  void flush_pending(Asn peer, const net::Prefix& prefix);

  /// Build the update we owe `peer` for `prefix` right now (announce, or
  /// withdraw if nothing is exportable), without MRAI or dedup applied.
  std::optional<Update> build_export(const PeerState& state, const net::Prefix& prefix) const;

  /// The peer's End-of-RIB arrived: its initial route exchange is complete,
  /// so every still-stale route from it is an implicit withdrawal.
  void handle_end_of_rib(Asn from);

  /// Restart timer for `peer`'s window `gen` fired: flush leftover stale
  /// routes (the peer never finished coming back).
  void stale_timer_expired(Asn peer, std::uint64_t gen);

  /// End the restarting-speaker deferral: send the owed End-of-RIB markers
  /// to every still-up peer recorded during the restart exchange.
  void complete_restart_deferral();

  /// `peer` left (cold loss or new restart window) while we were deferring:
  /// stop waiting for its End-of-RIB and drop the one we owed it.
  void abandon_deferred_peer(Asn peer);

  Asn asn_;
  PolicyMode mode_;
  SendFn send_;
  sim::EventQueue* clock_;

  std::map<Asn, PeerState> peers_;
  AdjRibIn adj_in_;
  LocRib loc_rib_;
  std::map<net::Prefix, Route> local_;  // locally originated

  std::shared_ptr<ImportValidator> validator_;
  ExportFilter export_filter_;
  bool strip_communities_ = false;
  bool prefer_established_ = true;
  sim::Time mrai_ = 0.0;
  sim::Time gr_restart_time_ = 0.0;  // RFC 4724; 0 = graceful restart off
  /// RFC 4724 §4.1: while this router is itself restarting it defers its
  /// own End-of-RIB until every re-established peer finished its initial
  /// exchange (or the restart time passes) — a marker sent from the
  /// still-empty table would sweep the helpers' stale routes before the
  /// replay chain can refresh them, which is exactly the churn graceful
  /// restart exists to avoid.
  bool gr_deferring_ = false;
  std::set<Asn> gr_eor_deferred_to_;    // peers owed our End-of-RIB
  std::set<Asn> gr_awaiting_eor_from_;  // peers whose End-of-RIB we await
  std::uint64_t gr_defer_generation_ = 0;
  std::optional<FlapDamper> damper_;
  obs::TraceBus* trace_ = nullptr;

  Stats stats_;
};

}  // namespace moas::bgp
