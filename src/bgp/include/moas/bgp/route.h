// A BGP route: a prefix plus the path attributes it was announced with.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>

#include "moas/bgp/as_path.h"
#include "moas/bgp/community.h"
#include "moas/net/prefix.h"

namespace moas::bgp {

/// ORIGIN attribute codes (RFC 4271 §5.1.1); lower is preferred.
enum class OriginCode : std::uint8_t { Igp = 0, Egp = 1, Incomplete = 2 };

/// The path attributes the simulator models. NEXT_HOP is implicit: at the
/// AS level the next hop is the advertising neighbor.
struct PathAttributes {
  AsPath path;
  OriginCode origin_code = OriginCode::Igp;
  std::uint32_t local_pref = 100;  // assigned by import policy, not transitive
  std::uint32_t med = 0;
  CommunitySet communities;
  /// RFC 8092 large communities — the wide-ASN MOAS-list encoding rides
  /// here (core/moas_list.h). Empty on every paper-topology route, so the
  /// defaulted ordering below is unchanged for pre-4-octet workloads.
  LargeCommunitySet large_communities;

  friend auto operator<=>(const PathAttributes&, const PathAttributes&) = default;
};

struct Route {
  net::Prefix prefix;
  PathAttributes attrs;

  /// The unique origin AS, if the path ends in a plain sequence.
  std::optional<Asn> origin_as() const { return attrs.path.origin(); }

  /// All candidate origins (handles trailing AS_SETs from aggregation).
  AsnSet origin_candidates() const { return attrs.path.origin_candidates(); }

  /// "prefix via <path> [communities]".
  std::string to_string() const;

  friend auto operator<=>(const Route&, const Route&) = default;
};

/// One BGP UPDATE at the abstraction level of the simulator: an announcement
/// of a route, a withdrawal of a prefix, or the RFC 4724 End-of-RIB marker
/// (an UPDATE with no withdrawn routes and no NLRI) that ends the initial
/// route exchange and sweeps stale graceful-restart state.
struct Update {
  enum class Kind { Announce, Withdraw, EndOfRib };

  Kind kind = Kind::Announce;
  net::Prefix prefix;                  // unused for EndOfRib
  std::optional<Route> route;  // set iff kind == Announce
  /// RFC 7606 treat-as-withdraw: this withdrawal was synthesized because
  /// the sender's announcement arrived damaged, not because the sender
  /// revoked the route. Routers route it to ImportValidator::
  /// on_error_withdraw so detector evidence tied to the announcement dies
  /// with it.
  bool error_withdraw = false;

  static Update announce(Route r);
  static Update withdraw(net::Prefix p);
  /// A withdrawal synthesized by RFC 7606 error handling (see
  /// error_withdraw above).
  static Update make_error_withdraw(net::Prefix p);
  static Update end_of_rib();

  std::string to_string() const;
};

}  // namespace moas::bgp
