// BGP session finite-state machine (RFC 4271 §8, simplified).
//
// Models the lifecycle of one side of a peering: Idle -> Connect ->
// OpenSent -> OpenConfirm -> Established, with ConnectRetry, Hold and
// Keepalive timers driven by the discrete-event engine. The routing
// experiments run with permanently-established sessions; this module
// exists for the failure-injection tests (session resets flush routes and
// trigger withdraw storms) and to keep the substrate honest about what
// "a BGP peering" is.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "moas/bgp/asn.h"
#include "moas/bgp/wire.h"
#include "moas/sim/event_queue.h"
#include "moas/util/rng.h"

namespace moas::obs {
class MetricsRegistry;
class TraceBus;
}  // namespace moas::obs

namespace moas::bgp {

enum class SessionState : std::uint8_t {
  Idle,
  Connect,
  OpenSent,
  OpenConfirm,
  Established,
};

const char* to_string(SessionState state);

/// One side of a BGP session.
class Session {
 public:
  struct Config {
    Asn local_as = kNoAs;
    std::uint32_t bgp_identifier = 0;  // tie-break for simultaneous opens
    sim::Time hold_time = 90.0;
    sim::Time keepalive_interval = 30.0;  // canonical: hold/3
    sim::Time connect_retry = 120.0;
    /// Exponential backoff applied to the connect-retry timer while the
    /// transport keeps failing: each retry multiplies the interval by
    /// `connect_retry_backoff` up to `connect_retry_cap`; establishment
    /// resets it to `connect_retry`. Factor 1 restores RFC 4271's fixed
    /// timer.
    double connect_retry_backoff = 2.0;
    sim::Time connect_retry_cap = 960.0;
    /// Uniform jitter in [0, fraction * interval) added to every retry so a
    /// fleet of resetting sessions does not thunder in lock-step. Seeded —
    /// the same (seed, local_as) reproduces the same retry train.
    double connect_retry_jitter = 0.25;
    std::uint64_t seed = 0;
    /// Advertise the RFC 4724 graceful-restart capability in our OPEN.
    /// Negotiation succeeds when both sides advertise it (gr_negotiated()).
    bool graceful_restart = false;
    /// Restart Time advertised in the capability (seconds, 12-bit field):
    /// how long the peer should retain our routes as stale after a restart.
    sim::Time gr_restart_time = 120.0;
    /// Set the Restart-State flag in our capability — we are coming back
    /// from a restart and will replay our table, ending with End-of-RIB.
    bool gr_restarting = false;
    /// RFC 7606 revised UPDATE error handling: demote attribute damage to
    /// treat-as-withdraw / attribute-discard instead of resetting the
    /// session. Off restores strict RFC 4271 behavior.
    bool revised_error_handling = false;
    /// Advertise the RFC 6793 four-octet-AS capability (code 65) in our
    /// OPEN. Forced on when local_as does not fit 2 octets — such a speaker
    /// cannot introduce itself otherwise (my_as carries AS_TRANS).
    bool four_octet_as = false;
  };

  /// Callbacks: `send` transmits raw wire bytes toward the peer; `on_up` /
  /// `on_down` report session establishment and loss (the router flushes
  /// the peer's routes on down).
  Session(Config config, sim::EventQueue& clock,
          std::function<void(std::vector<std::uint8_t>)> send,
          std::function<void()> on_up, std::function<void()> on_down);

  SessionState state() const { return state_; }
  bool established() const { return state_ == SessionState::Established; }

  /// Operator actions.
  void start();  // ManualStart: leave Idle, attempt the session
  void stop();   // ManualStop: drop to Idle, notify the peer

  /// Transport events.
  void tcp_connected();  // the underlying transport came up
  void tcp_failed();     // connection attempt failed / transport lost

  /// A message arrived from the peer (raw wire bytes). Malformed input maps
  /// to the proper RFC 4271 NOTIFICATION (code + subcode from the decoder)
  /// and a session reset — never an assert and never a silently-installed
  /// garbage route.
  void receive(std::span<const std::uint8_t> data);

  /// Routing payload hook: decoded UPDATE messages received while
  /// Established are handed here (the Router wires itself in).
  void set_update_handler(std::function<void(const wire::UpdateMessage&)> handler) {
    on_update_ = std::move(handler);
  }

  /// The interval the next connect retry will be scheduled with (before
  /// jitter); exposed for backoff tests.
  sim::Time current_connect_retry() const { return next_connect_retry_; }

  /// Graceful restart as negotiated on the *current or most recent* session:
  /// true iff both our config and the peer's OPEN carried the capability.
  bool gr_negotiated() const { return config_.graceful_restart && peer_gr_.has_value(); }
  /// The peer's graceful-restart capability from its OPEN, if it sent one.
  const std::optional<wire::GracefulRestartCapability>& peer_graceful_restart() const {
    return peer_gr_;
  }
  /// The restart time the peer asked us to honor (0 when not negotiated).
  sim::Time peer_restart_time() const {
    return peer_gr_ ? static_cast<sim::Time>(peer_gr_->restart_time) : 0.0;
  }

  /// RFC 6793 negotiated on the current or most recent session: both sides
  /// advertised the four-octet-AS capability, so UPDATEs carry 4-octet
  /// AS_PATHs natively (and AS4_PATH is discarded on receive).
  bool as4_negotiated() const { return advertises_as4() && peer_as4_.has_value(); }
  /// The peer's 4-octet ASN from its capability, if it sent one.
  const std::optional<std::uint32_t>& peer_four_octet_as() const { return peer_as4_; }

  struct Stats {
    std::uint64_t opens_sent = 0;
    std::uint64_t keepalives_sent = 0;
    std::uint64_t notifications_sent = 0;
    std::uint64_t hold_expirations = 0;
    std::uint64_t times_established = 0;
    std::uint64_t connect_retries = 0;
    std::uint64_t updates_received = 0;
    std::uint64_t malformed_messages = 0;  // wire errors that reset the session
    std::uint64_t remote_resets = 0;       // NOTIFICATIONs received from the peer
    // RFC 7606 revised error handling (only move with revised_error_handling).
    std::uint64_t treat_as_withdraws = 0;   // UPDATEs degraded to withdrawals
    std::uint64_t attribute_discards = 0;   // UPDATEs that lost a broken attr
    std::uint64_t resets_avoided = 0;       // strict handling would have reset
    std::uint8_t last_notification_code = 0;
    std::uint8_t last_notification_subcode = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Attach (or detach, with nullptr) the observability trace bus: FSM
  /// transitions and RFC 7606 degradation actions are emitted at Summary
  /// level. The bus must outlive the session.
  void set_trace(obs::TraceBus* bus) { trace_ = bus; }

  /// Snapshot every Stats counter into `registry` under "session.*" names.
  void collect_metrics(obs::MetricsRegistry& registry) const;

 private:
  void enter(SessionState next);
  /// True when our OPEN carries the four-octet-AS capability (configured,
  /// or forced by a wide local ASN).
  bool advertises_as4() const {
    return config_.four_octet_as || config_.local_as > 0xffffu;
  }
  void send_open();
  void send_keepalive();
  void send_notification(std::uint8_t code, std::uint8_t subcode);
  void reset_to_idle(bool notify_peer, std::uint8_t code, std::uint8_t subcode);

  void arm_hold_timer();
  void arm_keepalive_timer();
  void arm_connect_retry();
  void cancel_timers();

  Config config_;
  sim::EventQueue& clock_;
  std::function<void(std::vector<std::uint8_t>)> send_;
  std::function<void()> on_up_;
  std::function<void()> on_down_;
  std::function<void(const wire::UpdateMessage&)> on_update_;

  SessionState state_ = SessionState::Idle;
  sim::EventId hold_timer_ = 0;
  sim::EventId keepalive_timer_ = 0;
  sim::EventId connect_retry_timer_ = 0;
  sim::Time negotiated_hold_ = 0.0;
  sim::Time next_connect_retry_ = 0.0;  // backoff state; 0 = start from base
  std::optional<wire::GracefulRestartCapability> peer_gr_;
  std::optional<std::uint32_t> peer_as4_;
  util::Rng jitter_rng_;
  obs::TraceBus* trace_ = nullptr;
  Stats stats_;
};

}  // namespace moas::bgp
