// BGP COMMUNITIES attribute (RFC 1997).
//
// A community is a 4-octet value, conventionally written AS:value with the
// AS number in the high two octets. The MOAS-list mechanism (the paper's
// Section 4.2) reserves one value of the low two octets, MLVal, so that the
// community X:MLVal means "AS X may originate this prefix".
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "moas/bgp/asn.h"

namespace moas::bgp {

/// One community value.
class Community {
 public:
  constexpr Community() = default;
  constexpr explicit Community(std::uint32_t raw) : raw_(raw) {}
  constexpr Community(std::uint16_t asn, std::uint16_t value)
      : raw_((std::uint32_t{asn} << 16) | value) {}

  constexpr std::uint32_t raw() const { return raw_; }
  constexpr std::uint16_t asn() const { return static_cast<std::uint16_t>(raw_ >> 16); }
  constexpr std::uint16_t value() const { return static_cast<std::uint16_t>(raw_ & 0xffffu); }

  /// "AS:value".
  std::string to_string() const;

  /// Parse "AS:value" (both decimal, both <= 65535).
  static std::optional<Community> parse(std::string_view s);

  friend constexpr auto operator<=>(Community, Community) = default;

 private:
  std::uint32_t raw_ = 0;
};

/// RFC 1997 well-known communities.
inline constexpr Community kNoExport{0xffffff01u};
inline constexpr Community kNoAdvertise{0xffffff02u};
inline constexpr Community kNoExportSubconfed{0xffffff03u};

/// An (order-irrelevant, duplicate-free) set of communities, as carried on a
/// route announcement.
class CommunitySet {
 public:
  CommunitySet() = default;
  CommunitySet(std::initializer_list<Community> cs) : values_(cs) {}

  void add(Community c) { values_.insert(c); }
  void remove(Community c) { values_.erase(c); }
  bool contains(Community c) const { return values_.contains(c); }
  bool empty() const { return values_.empty(); }
  std::size_t size() const { return values_.size(); }
  void clear() { values_.clear(); }

  const std::set<Community>& values() const { return values_; }

  /// "AS:val AS:val ..." in ascending raw order.
  std::string to_string() const;

  friend auto operator<=>(const CommunitySet&, const CommunitySet&) = default;

 private:
  std::set<Community> values_;
};

}  // namespace moas::bgp
