// BGP COMMUNITIES attribute (RFC 1997) and LARGE COMMUNITIES (RFC 8092).
//
// A community is a 4-octet value, conventionally written AS:value with the
// AS number in the high two octets. The MOAS-list mechanism (the paper's
// Section 4.2) reserves one value of the low two octets, MLVal, so that the
// community X:MLVal means "AS X may originate this prefix". The classic
// attribute only has a 2-octet AS field; members with 4-octet ASNs (RFC
// 6793) ride a large community <asn:MLVal:0> instead — see core/moas_list.h.
//
// CommunitySet / LargeCommunitySet are handles onto process-wide interned
// sorted vectors (see intern.h / as_path.h for the representation
// rationale): a MOAS list is carried by every copy of the route in every
// Adj-RIB-In, so structural sharing is what keeps multi-prefix RIBs small.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "moas/bgp/asn.h"

namespace moas::bgp {

/// One community value.
class Community {
 public:
  constexpr Community() = default;
  constexpr explicit Community(std::uint32_t raw) : raw_(raw) {}
  constexpr Community(std::uint16_t asn, std::uint16_t value)
      : raw_((std::uint32_t{asn} << 16) | value) {}

  constexpr std::uint32_t raw() const { return raw_; }
  constexpr std::uint16_t asn() const { return static_cast<std::uint16_t>(raw_ >> 16); }
  constexpr std::uint16_t value() const { return static_cast<std::uint16_t>(raw_ & 0xffffu); }

  /// "AS:value".
  std::string to_string() const;

  /// Parse "AS:value" (both decimal, both <= 65535).
  static std::optional<Community> parse(std::string_view s);

  friend constexpr auto operator<=>(Community, Community) = default;

 private:
  std::uint32_t raw_ = 0;
};

/// RFC 1997 well-known communities.
inline constexpr Community kNoExport{0xffffff01u};
inline constexpr Community kNoAdvertise{0xffffff02u};
inline constexpr Community kNoExportSubconfed{0xffffff03u};

/// One RFC 8092 large community: 12 octets, <global_admin:data1:data2>,
/// where global_admin is a full 4-octet ASN.
class LargeCommunity {
 public:
  constexpr LargeCommunity() = default;
  constexpr LargeCommunity(std::uint32_t global_admin, std::uint32_t data1, std::uint32_t data2)
      : global_admin_(global_admin), data1_(data1), data2_(data2) {}

  constexpr std::uint32_t global_admin() const { return global_admin_; }
  constexpr std::uint32_t data1() const { return data1_; }
  constexpr std::uint32_t data2() const { return data2_; }

  /// "admin:data1:data2".
  std::string to_string() const;

  /// Parse "admin:data1:data2" (all decimal, all <= 2^32-1).
  static std::optional<LargeCommunity> parse(std::string_view s);

  friend constexpr auto operator<=>(const LargeCommunity&, const LargeCommunity&) = default;

 private:
  std::uint32_t global_admin_ = 0;
  std::uint32_t data1_ = 0;
  std::uint32_t data2_ = 0;
};

namespace intern {

/// One interned community set: the canonical sorted duplicate-free value
/// vector. See as_path.h / PathData for the arena contract.
struct CommunitySetData {
  std::vector<Community> values;
  std::uint32_t id = 0;
};

struct LargeCommunitySetData {
  std::vector<LargeCommunity> values;
  std::uint32_t id = 0;
};

/// Canonical handle for `values` (sorted + deduplicated internally);
/// nullptr for the empty set. Thread-safe; pointers live for the process.
const CommunitySetData* make_community_set(std::vector<Community> values);
const LargeCommunitySetData* make_large_community_set(std::vector<LargeCommunity> values);

const std::vector<Community>& empty_communities();
const std::vector<LargeCommunity>& empty_large_communities();

}  // namespace intern

/// An (order-irrelevant, duplicate-free) set of communities, as carried on a
/// route announcement.
class CommunitySet {
 public:
  CommunitySet() = default;
  CommunitySet(std::initializer_list<Community> cs);

  void add(Community c);
  void remove(Community c);
  bool contains(Community c) const;
  bool empty() const { return data_ == nullptr; }
  std::size_t size() const { return data_ ? data_->values.size() : 0; }
  void clear() { data_ = nullptr; }

  /// Members in ascending raw order.
  const std::vector<Community>& values() const {
    return data_ ? data_->values : intern::empty_communities();
  }

  /// Diagnostics/tests only (see AsPath::intern_id).
  std::uint32_t intern_id() const { return data_ ? data_->id : 0; }

  /// "AS:val AS:val ..." in ascending raw order.
  std::string to_string() const;

  friend bool operator==(const CommunitySet& a, const CommunitySet& b) {
    return a.data_ == b.data_;
  }
  friend std::strong_ordering operator<=>(const CommunitySet& a, const CommunitySet& b) {
    if (a.data_ == b.data_) return std::strong_ordering::equal;
    return a.values() <=> b.values();
  }

 private:
  const intern::CommunitySetData* data_ = nullptr;
};

/// An (order-irrelevant, duplicate-free) set of large communities.
class LargeCommunitySet {
 public:
  LargeCommunitySet() = default;
  LargeCommunitySet(std::initializer_list<LargeCommunity> cs);

  void add(LargeCommunity c);
  void remove(LargeCommunity c);
  bool contains(LargeCommunity c) const;
  bool empty() const { return data_ == nullptr; }
  std::size_t size() const { return data_ ? data_->values.size() : 0; }
  void clear() { data_ = nullptr; }

  /// Members in ascending (admin, data1, data2) order.
  const std::vector<LargeCommunity>& values() const {
    return data_ ? data_->values : intern::empty_large_communities();
  }

  std::uint32_t intern_id() const { return data_ ? data_->id : 0; }

  /// "a:b:c a:b:c ..." in ascending order.
  std::string to_string() const;

  friend bool operator==(const LargeCommunitySet& a, const LargeCommunitySet& b) {
    return a.data_ == b.data_;
  }
  friend std::strong_ordering operator<=>(const LargeCommunitySet& a,
                                          const LargeCommunitySet& b) {
    if (a.data_ == b.data_) return std::strong_ordering::equal;
    return a.values() <=> b.values();
  }

 private:
  const intern::LargeCommunitySetData* data_ = nullptr;
};

}  // namespace moas::bgp
