// BGP AS_PATH attribute.
//
// An AS path is a list of segments; a segment is either an ordered AS_SEQUENCE
// or an unordered AS_SET (produced by route aggregation — the paper's
// footnote 1). The "origin AS" is the last element; when the last segment is
// a set, any member is a candidate origin.
//
// Representation: AsPath is a handle onto a process-wide interned PathData
// (see intern.h / DESIGN.md §13). A converged RIB holds the same few paths
// hundreds of thousands of times; structural sharing makes each copy one
// pointer, equality one pointer compare, and selection_length() a cached
// field instead of an O(segments) walk per decision-process comparison.
// Value semantics are unchanged: ordering still compares segment contents,
// mutators rebuild and re-intern, and nothing observable depends on where
// the shared data lives.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "moas/bgp/asn.h"

namespace moas::bgp {

/// One path segment.
struct PathSegment {
  enum class Kind { Sequence, Set };

  Kind kind = Kind::Sequence;
  /// Members; kept in announcement order for Sequence, sorted for Set.
  std::vector<Asn> asns;

  friend auto operator<=>(const PathSegment&, const PathSegment&) = default;
};

namespace intern {

/// One interned AS path: the canonical copy of a segment vector, plus the
/// derived values every holder would otherwise recompute. Lives in the
/// process-wide arena (stable address for the life of the process); all
/// AsPath handles with equal contents point at the same PathData.
struct PathData {
  std::vector<PathSegment> segments;
  /// Stable 32-bit id, unique per distinct path value within a process.
  /// Assignment order depends on thread interleaving — ids are for
  /// diagnostics and tests, never for output or ordering.
  std::uint32_t id = 0;
  /// Cached AsPath::selection_length().
  std::uint32_t selection_length = 0;
};

/// Canonical handle for `segments`; nullptr for the empty path. Thread-safe;
/// the returned pointer is valid for the rest of the process.
const PathData* make_path(std::vector<PathSegment> segments);

/// The shared empty segment vector (what AsPath::segments() returns for the
/// empty path).
const std::vector<PathSegment>& empty_path_segments();

}  // namespace intern

class AsPath {
 public:
  /// Empty path (a locally originated route before export).
  AsPath() = default;

  /// Convenience: a single AS_SEQUENCE.
  explicit AsPath(std::vector<Asn> sequence);

  /// Prepend an AS at the front (export-time). Extends the front sequence
  /// segment, creating one if the path starts with a set.
  void prepend(Asn asn);

  /// Append an AS_SET segment at the back (aggregation).
  void append_set(AsnSet asns);

  /// Append ASes at the back, extending a trailing sequence segment or
  /// starting a new one (wire decoding, path construction).
  void append_sequence(const std::vector<Asn>& asns);

  /// True if `asn` appears anywhere in the path (loop detection).
  bool contains(Asn asn) const;

  /// Route-selection length: each sequence member counts 1, each set segment
  /// counts 1 total (RFC 4271 §9.1.2.2 rule). Cached on the interned data —
  /// O(1), which is what the decision process compares on every candidate.
  std::size_t selection_length() const { return data_ ? data_->selection_length : 0; }

  /// First AS on the path (the advertising neighbor), if any.
  std::optional<Asn> first() const;

  /// The unique origin AS: the last element when the path ends in a
  /// sequence; nullopt for an empty path or one ending in an AS_SET.
  std::optional<Asn> origin() const;

  /// All candidate origins: {last sequence element} or the members of the
  /// trailing set. Empty for an empty path.
  AsnSet origin_candidates() const;

  bool empty() const { return data_ == nullptr; }
  const std::vector<PathSegment>& segments() const {
    return data_ ? data_->segments : intern::empty_path_segments();
  }

  /// The interned id (0 for the empty path). Diagnostics/tests only — ids
  /// are process-local and interleaving-dependent; never emit them.
  std::uint32_t intern_id() const { return data_ ? data_->id : 0; }

  /// "3 2 1" with set segments braced: "3 {4,5}".
  std::string to_string() const;

  /// Parse the to_string format. Returns nullopt on malformed input.
  static std::optional<AsPath> parse(std::string_view s);

  /// Interning canonicalizes: equal contents == same pointer.
  friend bool operator==(const AsPath& a, const AsPath& b) { return a.data_ == b.data_; }
  /// Value ordering, identical to the pre-intern defaulted comparison over
  /// the segment vector (with a pointer fast path for the equal case).
  friend std::strong_ordering operator<=>(const AsPath& a, const AsPath& b) {
    if (a.data_ == b.data_) return std::strong_ordering::equal;
    return a.segments() <=> b.segments();
  }

 private:
  explicit AsPath(const intern::PathData* data) : data_(data) {}

  const intern::PathData* data_ = nullptr;
};

}  // namespace moas::bgp
