// BGP AS_PATH attribute.
//
// An AS path is a list of segments; a segment is either an ordered AS_SEQUENCE
// or an unordered AS_SET (produced by route aggregation — the paper's
// footnote 1). The "origin AS" is the last element; when the last segment is
// a set, any member is a candidate origin.
#pragma once

#include <compare>
#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "moas/bgp/asn.h"

namespace moas::bgp {

/// One path segment.
struct PathSegment {
  enum class Kind { Sequence, Set };

  Kind kind = Kind::Sequence;
  /// Members; kept in announcement order for Sequence, sorted for Set.
  std::vector<Asn> asns;

  friend auto operator<=>(const PathSegment&, const PathSegment&) = default;
};

class AsPath {
 public:
  /// Empty path (a locally originated route before export).
  AsPath() = default;

  /// Convenience: a single AS_SEQUENCE.
  explicit AsPath(std::vector<Asn> sequence);

  /// Prepend an AS at the front (export-time). Extends the front sequence
  /// segment, creating one if the path starts with a set.
  void prepend(Asn asn);

  /// Append an AS_SET segment at the back (aggregation).
  void append_set(AsnSet asns);

  /// Append ASes at the back, extending a trailing sequence segment or
  /// starting a new one (wire decoding, path construction).
  void append_sequence(const std::vector<Asn>& asns);

  /// True if `asn` appears anywhere in the path (loop detection).
  bool contains(Asn asn) const;

  /// Route-selection length: each sequence member counts 1, each set segment
  /// counts 1 total (RFC 4271 §9.1.2.2 rule).
  std::size_t selection_length() const;

  /// First AS on the path (the advertising neighbor), if any.
  std::optional<Asn> first() const;

  /// The unique origin AS: the last element when the path ends in a
  /// sequence; nullopt for an empty path or one ending in an AS_SET.
  std::optional<Asn> origin() const;

  /// All candidate origins: {last sequence element} or the members of the
  /// trailing set. Empty for an empty path.
  AsnSet origin_candidates() const;

  bool empty() const { return segments_.empty(); }
  const std::vector<PathSegment>& segments() const { return segments_; }

  /// "3 2 1" with set segments braced: "3 {4,5}".
  std::string to_string() const;

  /// Parse the to_string format. Returns nullopt on malformed input.
  static std::optional<AsPath> parse(std::string_view s);

  friend auto operator<=>(const AsPath&, const AsPath&) = default;

 private:
  std::vector<PathSegment> segments_;
};

}  // namespace moas::bgp
