// Route aggregation (RFC 4271 §9.2.2.2, simplified).
//
// Aggregating routes to adjacent prefixes produces a single announcement
// whose AS path keeps the longest common leading AS_SEQUENCE and collapses
// the rest into one AS_SET — the mechanism behind the paper's footnote 1
// ("in the case of route aggregation, an element in the AS path may include
// a set of ASes"). Communities (and therefore MOAS lists) are merged by
// union, which is why an aggregate of differently-originated blocks itself
// looks like a MOAS announcement.
#pragma once

#include <optional>
#include <vector>

#include "moas/bgp/route.h"
#include "moas/net/prefix_set.h"

namespace moas::bgp {

struct AggregationResult {
  Route route;       // the aggregate announcement
  bool exact = false;  // true if the components tile `target` exactly
};

/// Aggregate `components` into one announcement for `target`.
///
/// Requirements: at least one component; every component's prefix inside
/// `target`. The result's path = longest common leading sequence across
/// all flattened component paths + an AS_SET of every remaining AS (if
/// any); its communities = union of component communities; origin code =
/// the worst (highest) component code; `exact` reports whether the
/// components cover every address of `target`.
AggregationResult aggregate_routes(const net::Prefix& target,
                                   const std::vector<Route>& components);

/// The origin ASes an aggregate claims: union of component origin sets
/// (used by the MOAS detector's footnote-3 handling of AS_SETs).
AsnSet aggregate_origins(const std::vector<Route>& components);

}  // namespace moas::bgp
