// Routing information bases and the BGP decision process.
//
// Storage is compact (DESIGN.md §13): per prefix, the candidates live in one
// sorted small vector instead of a node-based map-of-maps, and a per-peer
// prefix index makes session-scoped operations (mark_peer_stale, erase_peer)
// proportional to the peer's routes instead of the whole table. Iteration
// orders are identical to the std::map layout this replaces — prefix
// ascending, peer ascending — so every output stays byte-identical.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "moas/bgp/route.h"
#include "moas/net/prefix.h"
#include "moas/util/flat_map.h"

namespace moas::bgp {

/// A route candidate along with the peer it was learned from
/// (learned_from == self for locally originated routes).
struct RibEntry {
  Route route;
  Asn learned_from = kNoAs;

  friend auto operator<=>(const RibEntry&, const RibEntry&) = default;
};

/// Compares only the attribute key of the decision process: higher
/// LOCAL_PREF, then shorter AS path, then lower ORIGIN code, then lower MED.
/// Returns <0 if a is preferred, >0 if b is preferred, 0 if equally good.
int compare_candidate_keys(const RibEntry& a, const RibEntry& b);

/// Full decision-process comparison: compare_candidate_keys, then lowest
/// neighbor ASN as the deterministic tie-break. Returns 0 only for
/// equally-keyed candidates from the same neighbor.
int compare_candidates(const RibEntry& a, const RibEntry& b);

/// Picks the best candidate, or nullptr if `candidates` is empty.
const RibEntry* select_best(const std::vector<const RibEntry*>& candidates);

/// Adj-RIB-In: per prefix, the latest route from each peer.
///
/// Pointers returned by candidates()/from_peer() are valid until the next
/// mutation of the table (vector-backed rows; the old map layout only
/// promised stability per row, and no caller held entries across writes).
class AdjRibIn {
 public:
  /// Install/replace the route from `peer`. Returns true if this changed
  /// the stored entry.
  bool set(Asn peer, Route route);

  /// Drop the route for `prefix` from `peer`; true if one existed.
  bool erase(Asn peer, const net::Prefix& prefix);

  /// All candidates for a prefix (may be empty), peer-ascending.
  std::vector<const RibEntry*> candidates(const net::Prefix& prefix) const;

  /// The entry from a specific peer, or nullptr.
  const RibEntry* from_peer(const net::Prefix& prefix, Asn peer) const;

  /// Erase every candidate for `prefix` whose origin candidates intersect
  /// `origins`; returns the number erased.
  std::size_t erase_by_origin(const net::Prefix& prefix, const AsnSet& origins);

  /// Drop everything learned from `peer` (session reset); returns the
  /// affected prefixes in ascending order. O(routes held from peer), via
  /// the per-peer index.
  std::vector<net::Prefix> erase_peer(Asn peer);

  /// Prefixes with at least one candidate.
  std::vector<net::Prefix> prefixes() const;

  std::size_t size() const;

  /// Heap bytes of the table containers themselves (rows, index, stale
  /// bookkeeping) — excludes the interned attribute data the entries
  /// share (intern::pool_stats() accounts for that once, process-wide).
  std::size_t container_bytes() const;

  // --- graceful restart (RFC 4724) stale-route tracking ---------------------
  //
  // Staleness is bookkeeping *about* entries, kept outside RibEntry: the
  // decision process and the duplicate-suppression equality of set() must
  // treat a retained stale route exactly like a fresh one ("the Staleness
  // state ... MUST NOT be used in the route selection").

  /// Mark everything currently held from `peer` stale (the peer announced a
  /// restart). Returns how many entries were marked. O(routes held from
  /// peer) — served from the per-peer index, not a table scan.
  std::size_t mark_peer_stale(Asn peer);

  /// True if the entry for (prefix, peer) exists and is marked stale.
  bool is_stale(const net::Prefix& prefix, Asn peer) const;

  /// Erase every still-stale entry from `peer` (restart timer expired, or
  /// End-of-RIB arrived and the peer did not re-announce them). Returns the
  /// affected prefixes. Entries refreshed by set() since the marking are
  /// not touched.
  std::vector<net::Prefix> sweep_stale(Asn peer);

  /// Every stale (prefix, peer) pair across all peers — the invariant
  /// checker's stale-route-hygiene audit walks this.
  std::vector<std::pair<net::Prefix, Asn>> stale_entries() const;

  /// Total stale entries.
  std::size_t stale_count() const;

 private:
  /// Candidates for one prefix, sorted by learned_from (what the nested
  /// std::map<Asn, RibEntry> used to give us, in one allocation).
  using Row = std::vector<RibEntry>;

  void clear_stale(Asn peer, const net::Prefix& prefix);
  void index_erase(Asn peer, const net::Prefix& prefix);
  static Row::iterator row_find(Row& row, Asn peer);
  static Row::const_iterator row_find(const Row& row, Asn peer);

  util::FlatMap<net::Prefix, Row> table_;
  /// Per-peer view: which prefixes hold an entry from this peer. Maintained
  /// by every row mutation; keeps erase_peer / mark_peer_stale linear in
  /// the peer's own routes.
  util::FlatMap<Asn, util::FlatSet<net::Prefix>> by_peer_;
  util::FlatMap<Asn, util::FlatSet<net::Prefix>> stale_;
};

/// Loc-RIB: the selected best route per prefix.
///
/// best() pointers are valid until a mutation for a *different* prefix
/// (set() on an existing prefix assigns in place).
class LocRib {
 public:
  void set(const net::Prefix& prefix, RibEntry entry);
  bool erase(const net::Prefix& prefix);
  const RibEntry* best(const net::Prefix& prefix) const;
  std::vector<net::Prefix> prefixes() const;
  std::size_t size() const { return table_.size(); }

  /// Heap bytes of the table container (see AdjRibIn::container_bytes).
  std::size_t container_bytes() const { return table_.container_bytes(); }

 private:
  util::FlatMap<net::Prefix, RibEntry> table_;
};

}  // namespace moas::bgp
