// Routing information bases and the BGP decision process.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "moas/bgp/route.h"
#include "moas/net/prefix.h"

namespace moas::bgp {

/// A route candidate along with the peer it was learned from
/// (learned_from == self for locally originated routes).
struct RibEntry {
  Route route;
  Asn learned_from = kNoAs;

  friend auto operator<=>(const RibEntry&, const RibEntry&) = default;
};

/// Compares only the attribute key of the decision process: higher
/// LOCAL_PREF, then shorter AS path, then lower ORIGIN code, then lower MED.
/// Returns <0 if a is preferred, >0 if b is preferred, 0 if equally good.
int compare_candidate_keys(const RibEntry& a, const RibEntry& b);

/// Full decision-process comparison: compare_candidate_keys, then lowest
/// neighbor ASN as the deterministic tie-break. Returns 0 only for
/// equally-keyed candidates from the same neighbor.
int compare_candidates(const RibEntry& a, const RibEntry& b);

/// Picks the best candidate, or nullptr if `candidates` is empty.
const RibEntry* select_best(const std::vector<const RibEntry*>& candidates);

/// Adj-RIB-In: per prefix, the latest route from each peer.
class AdjRibIn {
 public:
  /// Install/replace the route from `peer`. Returns true if this changed
  /// the stored entry.
  bool set(Asn peer, Route route);

  /// Drop the route for `prefix` from `peer`; true if one existed.
  bool erase(Asn peer, const net::Prefix& prefix);

  /// All candidates for a prefix (may be empty).
  std::vector<const RibEntry*> candidates(const net::Prefix& prefix) const;

  /// The entry from a specific peer, or nullptr.
  const RibEntry* from_peer(const net::Prefix& prefix, Asn peer) const;

  /// Erase every candidate for `prefix` whose origin candidates intersect
  /// `origins`; returns the number erased.
  std::size_t erase_by_origin(const net::Prefix& prefix, const AsnSet& origins);

  /// Drop everything learned from `peer` (session reset); returns the
  /// affected prefixes.
  std::vector<net::Prefix> erase_peer(Asn peer);

  /// Prefixes with at least one candidate.
  std::vector<net::Prefix> prefixes() const;

  std::size_t size() const;

  // --- graceful restart (RFC 4724) stale-route tracking ---------------------
  //
  // Staleness is bookkeeping *about* entries, kept outside RibEntry: the
  // decision process and the duplicate-suppression equality of set() must
  // treat a retained stale route exactly like a fresh one ("the Staleness
  // state ... MUST NOT be used in the route selection").

  /// Mark everything currently held from `peer` stale (the peer announced a
  /// restart). Returns how many entries were marked.
  std::size_t mark_peer_stale(Asn peer);

  /// True if the entry for (prefix, peer) exists and is marked stale.
  bool is_stale(const net::Prefix& prefix, Asn peer) const;

  /// Erase every still-stale entry from `peer` (restart timer expired, or
  /// End-of-RIB arrived and the peer did not re-announce them). Returns the
  /// affected prefixes. Entries refreshed by set() since the marking are
  /// not touched.
  std::vector<net::Prefix> sweep_stale(Asn peer);

  /// Every stale (prefix, peer) pair across all peers — the invariant
  /// checker's stale-route-hygiene audit walks this.
  std::vector<std::pair<net::Prefix, Asn>> stale_entries() const;

  /// Total stale entries.
  std::size_t stale_count() const;

 private:
  void clear_stale(Asn peer, const net::Prefix& prefix);

  std::map<net::Prefix, std::map<Asn, RibEntry>> table_;
  std::map<Asn, std::set<net::Prefix>> stale_;
};

/// Loc-RIB: the selected best route per prefix.
class LocRib {
 public:
  void set(const net::Prefix& prefix, RibEntry entry);
  bool erase(const net::Prefix& prefix);
  const RibEntry* best(const net::Prefix& prefix) const;
  std::vector<net::Prefix> prefixes() const;
  std::size_t size() const { return table_.size(); }

 private:
  std::map<net::Prefix, RibEntry> table_;
};

}  // namespace moas::bgp
