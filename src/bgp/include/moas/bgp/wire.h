// BGP-4 wire format (RFC 4271 §4) for the message types the simulator
// models, plus the RFC 1997 COMMUNITIES attribute encoding the MOAS list
// travels in.
//
// The simulator itself exchanges in-memory Update objects; this module
// exists so that (a) the byte-level cost of a MOAS list can be measured
// honestly (Section 4.3 discusses the size overhead), (b) dumps can be
// written/read in a real interchange format, and (c) the encoding logic is
// tested against the RFC's corner cases (extended-length attributes,
// AS_SET segments, prefix padding).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "moas/bgp/route.h"

namespace moas::bgp::wire {

/// NOTIFICATION error codes (RFC 4271 §6.1).
enum class ErrorCode : std::uint8_t {
  MessageHeader = 1,
  OpenMessage = 2,
  UpdateMessage = 3,
  HoldTimerExpired = 4,
  FsmError = 5,
  Cease = 6,
};

// Message Header Error subcodes (§6.2).
inline constexpr std::uint8_t kHdrNotSynchronized = 1;
inline constexpr std::uint8_t kHdrBadLength = 2;
inline constexpr std::uint8_t kHdrBadType = 3;

// OPEN Message Error subcodes (§6.3).
inline constexpr std::uint8_t kOpenUnsupportedVersion = 1;
inline constexpr std::uint8_t kOpenUnacceptableHoldTime = 6;

// UPDATE Message Error subcodes (§6.4).
inline constexpr std::uint8_t kUpdMalformedAttrList = 1;
inline constexpr std::uint8_t kUpdUnrecognizedWellKnown = 2;
inline constexpr std::uint8_t kUpdMissingWellKnown = 3;
inline constexpr std::uint8_t kUpdAttrLengthError = 5;
inline constexpr std::uint8_t kUpdInvalidOrigin = 6;
inline constexpr std::uint8_t kUpdInvalidNetworkField = 10;
inline constexpr std::uint8_t kUpdMalformedAsPath = 11;

/// RFC 7606 revised error-handling actions, ordered by severity so the
/// overall fate of a message is the maximum over its individual problems.
enum class ErrorAction : std::uint8_t {
  /// No action needed (unknown optional attributes and the like).
  Ignore = 0,
  /// Drop the broken attribute, keep the routes (non-essential attrs).
  AttributeDiscard = 1,
  /// The NLRI is intact but an essential attribute is not: treat every
  /// announced prefix as withdrawn instead of installing garbage.
  TreatAsWithdraw = 2,
  /// Framing or NLRI damage — the RFC 4271 NOTIFICATION + reset stands.
  SessionReset = 3,
};

const char* to_string(ErrorAction action);

/// Malformed input while decoding. Carries the RFC 4271 NOTIFICATION error
/// code + subcode a session must send before resetting, so the FSM never
/// has to guess what went wrong.
class WireError : public std::runtime_error {
 public:
  WireError(ErrorCode code, std::uint8_t subcode, const std::string& what)
      : std::runtime_error(what), code_(code), subcode_(subcode) {}

  ErrorCode code() const { return code_; }
  std::uint8_t code_octet() const { return static_cast<std::uint8_t>(code_); }
  std::uint8_t subcode() const { return subcode_; }

 private:
  ErrorCode code_;
  std::uint8_t subcode_;
};

/// Message types (RFC 4271 §4.1).
enum class MessageType : std::uint8_t {
  Open = 1,
  Update = 2,
  Notification = 3,
  Keepalive = 4,
};

/// Fixed header size: 16-byte marker + 2-byte length + 1-byte type.
inline constexpr std::size_t kHeaderSize = 19;
inline constexpr std::size_t kMaxMessageSize = 4096;

/// Path-attribute type codes used here.
enum class AttrType : std::uint8_t {
  Origin = 1,
  AsPath = 2,
  NextHop = 3,
  Med = 4,
  LocalPref = 5,
  Communities = 8,
  /// RFC 6793: the true 4-octet path backing AS_TRANS stand-ins in a
  /// 2-octet AS_PATH. Optional transitive; emitted only when needed.
  As4Path = 17,
  /// RFC 8092 large communities; wide-ASN MOAS-list members ride here.
  LargeCommunities = 32,
};

/// An attribute we do not implement but must not destroy: RFC 4271 §9 says
/// unknown optional transitive attributes are retained and re-advertised
/// with the Partial flag bit set.
struct UnknownAttribute {
  std::uint8_t type = 0;
  std::vector<std::uint8_t> value;

  friend auto operator<=>(const UnknownAttribute&, const UnknownAttribute&) = default;
};

/// The content of one UPDATE message. A single message may withdraw several
/// prefixes and announce several prefixes sharing one attribute set.
struct UpdateMessage {
  std::vector<net::Prefix> withdrawn;
  std::optional<PathAttributes> attrs;  // required when nlri is non-empty
  std::vector<net::Prefix> nlri;
  /// Unknown optional transitive attributes carried through verbatim
  /// (re-encoded with the Partial bit; RFC 4271 §9).
  std::vector<UnknownAttribute> unknown_attrs;
  /// Prefixes revoked by RFC 7606 treat-as-withdraw rather than by the
  /// sender. Filled by DecodeResult::to_deliverable(), never by decoding;
  /// to_sim_updates() turns them into error-withdraw updates so the
  /// receiving router can drop detector evidence tied to them.
  std::vector<net::Prefix> error_withdrawn;
};

struct EncodeOptions {
  /// Include LOCAL_PREF (IBGP sessions only; EBGP must not send it).
  bool include_local_pref = false;
  /// NEXT_HOP value; the AS-level simulator has no concrete next hop, so a
  /// placeholder is used unless the caller knows better.
  net::Ipv4Addr next_hop = net::Ipv4Addr(0u);
  /// Encode AS_PATH with 4-octet ASNs (both peers negotiated the RFC 6793
  /// capability). When false, ASNs above 0xffff are written as AS_TRANS in
  /// AS_PATH and the true path is appended as a self-describing AS4_PATH —
  /// so any decoder recovers the full path, negotiated or not, and byte
  /// streams for all-narrow paths are identical to the pre-AS4 encoding.
  bool four_octet_as = false;
};

/// Encode an UPDATE. Throws std::invalid_argument for unencodable input
/// (an over-long message or path segment). ASNs of any width encode: wide
/// ones travel natively or via AS_TRANS + AS4_PATH (see
/// EncodeOptions::four_octet_as).
std::vector<std::uint8_t> encode_update(const UpdateMessage& update,
                                        const EncodeOptions& options = EncodeOptions());

/// Decode an UPDATE (must include the header). Throws WireError at the
/// first problem — the strict RFC 4271 discipline. `four_octet_as` selects
/// the negotiated AS_PATH width; when false, an AS4_PATH attribute is
/// merged per RFC 6793 §4.2.3 to recover wide ASNs.
UpdateMessage decode_update(std::span<const std::uint8_t> data, bool four_octet_as = false);

/// One classified problem found while decoding an UPDATE under RFC 7606.
struct AttributeIssue {
  ErrorAction action = ErrorAction::Ignore;
  /// Attribute type code the problem is pinned to (0: not attributable to
  /// a single attribute, e.g. a missing mandatory attribute).
  std::uint8_t attr_type = 0;
  /// The NOTIFICATION code/subcode strict handling would have sent.
  ErrorCode code = ErrorCode::UpdateMessage;
  std::uint8_t subcode = 0;
  std::string detail;
};

/// Result of decode_update_revised: the salvage plus every classified
/// problem. With no issues the message is exactly what decode_update
/// returns.
struct DecodeResult {
  UpdateMessage message;
  std::vector<AttributeIssue> issues;

  /// Maximum action over all issues (Ignore when the message was clean).
  ErrorAction severity() const;

  /// Apply the severity to produce the message a session should hand to
  /// the routing layer: at TreatAsWithdraw the NLRI moves to
  /// error_withdrawn and the attributes are dropped; at AttributeDiscard
  /// or below the salvaged message passes through unchanged (broken
  /// non-essential attributes were already left out during parsing).
  UpdateMessage to_deliverable() const;
};

/// Decode an UPDATE with RFC 7606 revised error handling: problems inside
/// the path-attribute section are classified and survived instead of
/// aborting the parse. Still throws WireError for SessionReset-class
/// damage — a broken header, withdrawn-routes section, attribute-section
/// framing (Total Path Attribute Length overrunning the body), or NLRI —
/// because then no prefix list can be trusted. `four_octet_as` as in
/// decode_update.
DecodeResult decode_update_revised(std::span<const std::uint8_t> data,
                                   bool four_octet_as = false);

/// An UPDATE with no withdrawn routes and no NLRI is the RFC 4724 §2
/// End-of-RIB marker for IPv4 unicast.
bool is_end_of_rib(const UpdateMessage& message);

/// Encode the End-of-RIB marker (an empty UPDATE).
std::vector<std::uint8_t> encode_end_of_rib();

/// RFC 4724 §3 Graceful Restart capability (code 64), carried in the OPEN
/// optional parameters. Only the IPv4/unicast AFI-SAFI tuple is modeled.
struct GracefulRestartCapability {
  /// Restart-State flag: the speaker has just restarted and is replaying.
  bool restart_state = false;
  /// Restart Time in seconds (12-bit field): how long the peer should
  /// retain this speaker's routes as stale before flushing them.
  std::uint16_t restart_time = 120;
  /// Announce the IPv4/unicast AFI-SAFI tuple (with its Forwarding-State
  /// flag). Off encodes a bare capability: restart timing only.
  bool ipv4_unicast = true;
  bool forwarding_preserved = false;

  friend auto operator<=>(const GracefulRestartCapability&,
                          const GracefulRestartCapability&) = default;
};

/// OPEN message content (§4.2). The only optional parameter modeled is the
/// Capabilities parameter carrying graceful restart and the RFC 6793
/// four-octet-AS capability; unknown parameters and capabilities are
/// skipped on decode.
struct OpenMessage {
  std::uint8_t version = 4;
  /// 2-octet "My Autonomous System" field; a speaker with a wide ASN puts
  /// kAsTrans here and its true ASN in the four_octet_as capability.
  std::uint16_t my_as = 0;
  std::uint16_t hold_time = 180;
  std::uint32_t bgp_identifier = 0;
  std::optional<GracefulRestartCapability> graceful_restart;
  /// RFC 6793 capability 65: the sender's full 4-octet ASN. Present iff the
  /// speaker supports 4-octet AS_PATH encoding.
  std::optional<std::uint32_t> four_octet_as;
};

std::vector<std::uint8_t> encode_open(const OpenMessage& open);
OpenMessage decode_open(std::span<const std::uint8_t> data);

/// KEEPALIVE: header only.
std::vector<std::uint8_t> encode_keepalive();

/// Validate a KEEPALIVE (header-only message). Throws WireError — like the
/// other decode_* entry points, a wrong message type is a MessageHeader /
/// bad-type error.
void decode_keepalive(std::span<const std::uint8_t> data);

/// NOTIFICATION (§4.5): error code, subcode, diagnostic data.
struct NotificationMessage {
  std::uint8_t code = 0;
  std::uint8_t subcode = 0;
  std::vector<std::uint8_t> data;
};

std::vector<std::uint8_t> encode_notification(const NotificationMessage& notification);
NotificationMessage decode_notification(std::span<const std::uint8_t> data);

/// Peek at a message's type (validates the header). Throws WireError.
MessageType message_type(std::span<const std::uint8_t> data);

/// Convert between the simulator's Update and wire messages.
std::vector<std::uint8_t> encode_sim_update(const Update& update,
                                            const EncodeOptions& options = EncodeOptions());
/// A decoded message may carry several announcements/withdrawals; expand to
/// simulator updates (announcements share the attribute set).
std::vector<Update> to_sim_updates(const UpdateMessage& message);

/// The extra bytes a MOAS list of `n_origins` adds to an announcement
/// (Section 4.3's overhead discussion): n x 4 community octets plus the
/// attribute header when no communities were present at all.
std::size_t moas_list_overhead_bytes(std::size_t n_origins, bool had_communities);

}  // namespace moas::bgp::wire
