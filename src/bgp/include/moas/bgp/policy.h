// Routing policy: business relationships and import/export rules.
//
// Two modes are supported:
//  - ShortestPath: every route is exported to every peer and selection is by
//    path length. This matches the SSFnet configuration the paper simulated.
//  - GaoRexford: classic valley-free policy. Import assigns LOCAL_PREF by
//    relationship (customer > peer > provider); export sends customer and
//    locally originated routes to everyone but peer/provider routes only to
//    customers. Used for the policy-sensitivity ablation.
#pragma once

#include <cstdint>
#include <string>

namespace moas::bgp {

/// The neighbor's relationship to this AS (how we see them).
enum class Relationship : std::uint8_t {
  Customer,  // the neighbor buys transit from us
  Peer,      // settlement-free peer
  Provider,  // we buy transit from the neighbor
};

/// Inverse viewpoint: if B is A's customer, A is B's provider.
Relationship reverse(Relationship rel);

const char* to_string(Relationship rel);

enum class PolicyMode : std::uint8_t { ShortestPath, GaoRexford };

const char* to_string(PolicyMode mode);

/// LOCAL_PREF assigned when importing a route from a neighbor with the given
/// relationship.
std::uint32_t import_local_pref(PolicyMode mode, Relationship neighbor);

/// LOCAL_PREF for locally originated routes (always wins the local decision).
inline constexpr std::uint32_t kLocalRouteLocalPref = 1000;

/// Whether a route learned from `learned_from` may be exported to `to`.
/// Locally originated routes pass `std::nullopt`-like semantics via
/// `export_local_allowed` (always true).
bool export_allowed(PolicyMode mode, Relationship learned_from, Relationship to);

}  // namespace moas::bgp
