// Autonomous System numbers.
#pragma once

#include <cstdint>
#include <set>

namespace moas::bgp {

/// AS number. The paper predates 4-octet ASNs (RFC 4893), but nothing in the
/// mechanism depends on width, so we use 32 bits and let the community
/// encoding reject ASNs that do not fit its 2-octet field.
using Asn = std::uint32_t;

/// An unordered set of ASNs (origin sets, MOAS lists, attacker sets, ...).
using AsnSet = std::set<Asn>;

/// Reserved value meaning "no AS" (0 is unallocated in the real registry).
inline constexpr Asn kNoAs = 0;

/// Private-use ASN range (RFC 1930 era): used by the ASE multi-homing model.
inline constexpr Asn kPrivateAsnFirst = 64512;
inline constexpr Asn kPrivateAsnLast = 65535;

inline bool is_private_asn(Asn asn) {
  return asn >= kPrivateAsnFirst && asn <= kPrivateAsnLast;
}

}  // namespace moas::bgp
