// Autonomous System numbers.
#pragma once

#include <cstdint>
#include <set>

namespace moas::bgp {

/// AS number. The paper predates 4-octet ASNs, but nothing in the mechanism
/// depends on width: the wire layer speaks RFC 6793 (AS4 capability,
/// AS_TRANS + AS4_PATH fallback) and wide MOAS-list members ride RFC 8092
/// large communities, so the full 32-bit range is usable end to end.
using Asn = std::uint32_t;

/// An unordered set of ASNs (origin sets, MOAS lists, attacker sets, ...).
using AsnSet = std::set<Asn>;

/// Reserved value meaning "no AS" (0 is unallocated in the real registry).
inline constexpr Asn kNoAs = 0;

/// AS_TRANS (RFC 6793 §9): the 2-octet stand-in a 4-octet ASN travels as in
/// 2-octet wire fields (OPEN my-AS, non-AS4 AS_PATH hops).
inline constexpr Asn kAsTrans = 23456;

/// Private-use ASN range (RFC 1930 era): used by the ASE multi-homing model.
inline constexpr Asn kPrivateAsnFirst = 64512;
inline constexpr Asn kPrivateAsnLast = 65535;

inline bool is_private_asn(Asn asn) {
  return asn >= kPrivateAsnFirst && asn <= kPrivateAsnLast;
}

}  // namespace moas::bgp
