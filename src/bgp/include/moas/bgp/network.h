// A network of BGP routers coupled through the discrete-event engine.
//
// The Network owns one Router per AS, delivers updates over links with
// configurable delay (plus seeded jitter so message races are explored), and
// runs the whole system to quiescence. Fault injection happens here: links
// fail and recover, sessions reset, routers crash and cold-restart, and a
// message tap (chaos::ChaosEngine) may drop, duplicate, delay or corrupt
// every update handed to the transport.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "moas/bgp/router.h"
#include "moas/sim/event_queue.h"
#include "moas/util/rng.h"

namespace moas::obs {
class MetricsRegistry;
class TraceBus;
}  // namespace moas::obs

namespace moas::bgp {

class Network {
 public:
  struct Config {
    PolicyMode mode = PolicyMode::ShortestPath;
    /// Base one-way propagation + processing delay per link (seconds).
    double link_delay = 0.05;
    /// Uniform extra delay in [0, jitter) added per message.
    double jitter = 0.02;
    /// How long a torn-down session takes to re-establish (reset_session
    /// and tap-triggered resets).
    double session_reestablish_delay = 1.0;
    /// RFC 4724 graceful restart, negotiated network-wide: router crashes
    /// leave peers' learned routes in use (marked stale) for up to
    /// `gr_restart_time` seconds, and session establishment ends with an
    /// End-of-RIB marker that sweeps stale leftovers. Off models the cold
    /// restart (crash flushes every peer immediately).
    bool graceful_restart = false;
    double gr_restart_time = 60.0;
    /// RFC 7606 revised UPDATE error handling, network-wide: a damaged
    /// announcement is treated as a withdrawal of its prefixes (or loses a
    /// non-essential attribute) instead of resetting the session. The
    /// chaos engine's corruption faults consult this to decide a damaged
    /// message's fate. Off models strict RFC 4271 resets.
    bool revised_error_handling = false;
    std::uint64_t seed = 1;
  };

  /// Verdict a message tap returns for one in-flight update.
  struct TapVerdict {
    enum class Action {
      Deliver,       // pass through (possibly rewritten / duplicated)
      Drop,          // lose the message silently
      ResetSession,  // receiver detects garbage: NOTIFICATION + session reset
    };
    Action action = Action::Deliver;
    /// When Action::Deliver: what actually goes on the wire. Empty means
    /// "the original update, unchanged"; several entries model duplication
    /// or a corrupted message that decoded into different routes.
    std::vector<Update> deliveries;
    /// Extra latency for this message only.
    double extra_delay = 0.0;
    /// Allow the delayed message to overtake / be overtaken (bypasses the
    /// per-link FIFO clamp — the reorder fault).
    bool allow_reorder = false;
  };
  using MessageTap = std::function<TapVerdict(Asn from, Asn to, const Update& update)>;

  Network();  // default Config
  explicit Network(Config config);

  /// Create a router for `asn`. Must not already exist.
  Router& add_router(Asn asn);

  /// Connect two existing routers. `rel_of_b` is b's relationship as seen
  /// from a (e.g. Customer means b is a's customer); the reverse edge gets
  /// the mirrored relationship.
  void connect(Asn a, Asn b, Relationship rel_of_b = Relationship::Peer);

  bool has_router(Asn asn) const { return routers_.contains(asn); }
  Router& router(Asn asn);
  const Router& router(Asn asn) const;
  std::vector<Asn> asns() const;
  std::size_t size() const { return routers_.size(); }

  /// Every peering as an unordered pair (a < b), sorted — the link list
  /// fault schedules draw from.
  std::vector<std::pair<Asn, Asn>> links() const;

  sim::EventQueue& clock() { return clock_; }
  const sim::EventQueue& clock() const { return clock_; }

  const Config& config() const { return config_; }

  /// Whether RFC 7606 revised error handling is on network-wide.
  bool revised_error_handling() const { return config_.revised_error_handling; }

  /// Drain the event queue. Returns true if the network quiesced within
  /// `max_events`; false means the cap was hit (a modeling bug — callers
  /// should treat it as fatal).
  bool run_to_quiescence(std::size_t max_events = 50'000'000);

  /// Updates handed to the transport so far.
  std::uint64_t messages_sent() const { return messages_sent_; }

  /// Fail or restore the peering between a and b (failure injection).
  /// Failing drops all in-flight messages on the link and makes both
  /// routers flush each other's routes (session reset); restoring triggers
  /// the initial route exchange again. Requires an existing connection.
  void set_link_up(Asn a, Asn b, bool up);
  bool link_up(Asn a, Asn b) const;

  /// Tear the session between a and b down now and re-establish it after
  /// `reestablish_delay` (<= 0 uses the configured default). Both routers
  /// flush and later replay their tables — the BGP session-reset fault.
  /// No-op if the link is already down; the re-establishment yields to any
  /// longer-lived link failure injected in the meantime.
  void reset_session(Asn a, Asn b, double reestablish_delay = 0.0);

  /// Crash `asn`: every session to it drops and the router loses all
  /// protocol state (local originations survive as configuration).
  /// In-flight messages to and from it are lost. Without graceful restart
  /// peers flush its routes immediately; with it they retain them as stale
  /// until the restart timer or the post-restart End-of-RIB sweeps them.
  void crash_router(Asn asn);

  /// Cold restart after crash_router: local prefixes are re-announced and
  /// every live link re-establishes its session (initial route exchange).
  void restart_router(Asn asn);

  bool router_crashed(Asn asn) const { return crashed_.contains(asn); }

  /// Install (or clear, with nullptr) the message tap consulted for every
  /// update handed to the transport.
  void set_message_tap(MessageTap tap) { tap_ = std::move(tap); }

  /// TEST ONLY: mark the link failed *without* the session-down
  /// bookkeeping (no flush, no withdraw). This deliberately corrupts the
  /// network — it exists so the invariant checker's negative tests can
  /// manufacture an inconsistency through a public entry point.
  void sever_link_silently(Asn a, Asn b);

  /// Messages dropped because their link was down when they would arrive.
  std::uint64_t messages_dropped() const { return messages_dropped_; }

  /// Attach (or detach, with nullptr) the observability trace bus; the bus
  /// is propagated to every existing and future router. It must outlive the
  /// network. Components around the network (chaos engine, detector) read
  /// it back through trace().
  void set_trace(obs::TraceBus* bus);
  obs::TraceBus* trace() const { return trace_; }

  /// Snapshot the whole network into a metrics registry: every router's
  /// Stats summed under "router.*", transport counters under "network.*",
  /// and the event engine's lifetime count under "sim.events_executed".
  obs::MetricsRegistry collect_metrics() const;

 private:
  void deliver(Asn from, Asn to, Update update);
  void schedule_delivery(Asn from, Asn to, Update update, double extra_delay,
                         bool allow_reorder);

  Config config_;
  sim::EventQueue clock_;
  util::Rng rng_;
  std::map<Asn, std::unique_ptr<Router>> routers_;
  /// Last scheduled delivery per directed link: BGP speaks over TCP, so
  /// updates between two peers must stay FIFO even with jittered delays.
  std::map<std::pair<Asn, Asn>, sim::Time> link_clock_;
  /// Links currently failed (unordered endpoint pair stored as a < b).
  std::set<std::pair<Asn, Asn>> failed_links_;
  /// Bumped every time a link goes down; a scheduled session
  /// re-establishment only restores the link if no newer failure was
  /// injected in the meantime.
  std::map<std::pair<Asn, Asn>, std::uint64_t> link_down_epoch_;
  std::set<Asn> crashed_;
  MessageTap tap_;
  obs::TraceBus* trace_ = nullptr;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_dropped_ = 0;
};

}  // namespace moas::bgp
