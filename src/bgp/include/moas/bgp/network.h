// A network of BGP routers coupled through the discrete-event engine.
//
// The Network owns one Router per AS, delivers updates over links with
// configurable delay (plus seeded jitter so message races are explored), and
// runs the whole system to quiescence.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "moas/bgp/router.h"
#include "moas/sim/event_queue.h"
#include "moas/util/rng.h"

namespace moas::bgp {

class Network {
 public:
  struct Config {
    PolicyMode mode = PolicyMode::ShortestPath;
    /// Base one-way propagation + processing delay per link (seconds).
    double link_delay = 0.05;
    /// Uniform extra delay in [0, jitter) added per message.
    double jitter = 0.02;
    std::uint64_t seed = 1;
  };

  Network();  // default Config
  explicit Network(Config config);

  /// Create a router for `asn`. Must not already exist.
  Router& add_router(Asn asn);

  /// Connect two existing routers. `rel_of_b` is b's relationship as seen
  /// from a (e.g. Customer means b is a's customer); the reverse edge gets
  /// the mirrored relationship.
  void connect(Asn a, Asn b, Relationship rel_of_b = Relationship::Peer);

  bool has_router(Asn asn) const { return routers_.contains(asn); }
  Router& router(Asn asn);
  const Router& router(Asn asn) const;
  std::vector<Asn> asns() const;
  std::size_t size() const { return routers_.size(); }

  sim::EventQueue& clock() { return clock_; }
  const sim::EventQueue& clock() const { return clock_; }

  /// Drain the event queue. Returns true if the network quiesced within
  /// `max_events`; false means the cap was hit (a modeling bug — callers
  /// should treat it as fatal).
  bool run_to_quiescence(std::size_t max_events = 50'000'000);

  /// Updates handed to the transport so far.
  std::uint64_t messages_sent() const { return messages_sent_; }

  /// Fail or restore the peering between a and b (failure injection).
  /// Failing drops all in-flight messages on the link and makes both
  /// routers flush each other's routes (session reset); restoring triggers
  /// the initial route exchange again. Requires an existing connection.
  void set_link_up(Asn a, Asn b, bool up);
  bool link_up(Asn a, Asn b) const;

  /// Messages dropped because their link was down when they would arrive.
  std::uint64_t messages_dropped() const { return messages_dropped_; }

 private:
  void deliver(Asn from, Asn to, const Update& update);

  Config config_;
  sim::EventQueue clock_;
  util::Rng rng_;
  std::map<Asn, std::unique_ptr<Router>> routers_;
  /// Last scheduled delivery per directed link: BGP speaks over TCP, so
  /// updates between two peers must stay FIFO even with jittered delays.
  std::map<std::pair<Asn, Asn>, sim::Time> link_clock_;
  /// Links currently failed (unordered endpoint pair stored as a < b).
  std::set<std::pair<Asn, Asn>> failed_links_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_dropped_ = 0;
};

}  // namespace moas::bgp
