// Process-wide interning pools for AS paths and community sets.
//
// The memory wall at 10k–100k-AS x multi-prefix scale is attribute
// duplication: a converged topology holds only O(edges) distinct AS paths
// and a handful of distinct MOAS lists, yet every Adj-RIB-In entry of every
// router used to own a private heap copy. The pools here keep one canonical
// copy of each distinct value in an arena with stable addresses; AsPath /
// CommunitySet / LargeCommunitySet (declared next to their value types in
// as_path.h / community.h) are single-pointer handles onto it.
//
// Contracts:
//   - Stable addresses: interned data is never moved or freed; a handle
//     taken at any point stays valid for the life of the process (arena =
//     per-shard std::deque).
//   - Canonical: equal contents always yield the same pointer, so handle
//     equality is pointer equality. Ordering comparisons fall back to value
//     comparison and are bit-identical to the pre-intern defaulted
//     orderings — nothing observable depends on addresses or insert order.
//   - Thread-safe: pools are sharded by content hash, one mutex per shard.
//     Interning is the only synchronization point; reads through handles
//     are lock-free (the data is immutable).
//   - Ids: each distinct value gets a stable 32-bit id. Assignment order
//     depends on thread interleaving, so ids are for tests/diagnostics
//     only and must never reach an output that is compared across runs.
//
// DESIGN.md §13 documents the layout and the bytes/route accounting that
// bench/micro_rib_footprint gates.
#pragma once

#include <cstddef>

#include "moas/bgp/as_path.h"
#include "moas/bgp/community.h"

namespace moas::bgp::intern {

/// Footprint snapshot of one pool, for the micro_rib_footprint accounting.
struct PoolUsage {
  /// Distinct interned values.
  std::size_t entries = 0;
  /// Bytes owned by the canonical values: sizeof(Data) per entry plus the
  /// heap behind its vectors (capacities are shrunk to size on intern).
  std::size_t payload_bytes = 0;
  /// Estimated bytes of the dedup index (hash-set nodes + bucket array).
  std::size_t index_bytes = 0;

  std::size_t total_bytes() const { return payload_bytes + index_bytes; }
};

struct PoolStats {
  PoolUsage paths;
  PoolUsage community_sets;
  PoolUsage large_community_sets;

  std::size_t total_bytes() const {
    return paths.total_bytes() + community_sets.total_bytes() +
           large_community_sets.total_bytes();
  }
};

/// Snapshot of every pool. Pools are process-global and only ever grow, so
/// successive snapshots are monotone.
PoolStats pool_stats();

}  // namespace moas::bgp::intern
