// Import-validation hook.
//
// The MOAS detector (src/core) plugs into the router through this interface.
// Keeping the interface here lets the BGP engine stay ignorant of the
// detection mechanism while the detector can veto announcements and purge
// routes it has identified as false.
#pragma once

#include <memory>

#include "moas/bgp/route.h"
#include "moas/net/prefix.h"
#include "moas/sim/event_queue.h"

namespace moas::bgp {

/// The narrow view of a router a validator is allowed to touch.
class RouterContext {
 public:
  virtual ~RouterContext() = default;

  /// This router's ASN.
  virtual Asn self() const = 0;

  /// Current virtual time (0 if the router runs without a clock).
  virtual sim::Time current_time() const = 0;

  /// Purge previously accepted routes for `prefix` whose origin falls in
  /// `false_origins`, and reselect. Used when a conflict is resolved and
  /// already-installed routes turn out to be bogus.
  virtual std::size_t invalidate_origins(const net::Prefix& prefix,
                                         const AsnSet& false_origins) = 0;

  /// The union of origin candidates across the routes already accepted for
  /// `prefix` (the Adj-RIB-In). A validator whose own memory was purged —
  /// churn flushed the supporting peer, or the router cold-restarted — can
  /// rebuild its reference from this live evidence instead of blindly
  /// re-adopting the next announcement it happens to hear.
  virtual AsnSet accepted_origins(const net::Prefix& /*prefix*/) const { return {}; }
};

/// Decides whether an arriving announcement may enter the Adj-RIB-In.
class ImportValidator {
 public:
  virtual ~ImportValidator() = default;

  /// Return false to reject the route. May call ctx.invalidate_origins().
  virtual bool accept(const Route& route, Asn from_peer, RouterContext& ctx) = 0;

  /// Observe withdrawals (default: ignore).
  virtual void on_withdraw(const net::Prefix& /*prefix*/, Asn /*from_peer*/,
                           RouterContext& /*ctx*/) {}

  /// A route from `from_peer` was revoked by RFC 7606 treat-as-withdraw:
  /// its announcement arrived damaged, so nothing about it — including any
  /// MOAS list it carried — is trustworthy evidence. A stateful validator
  /// must drop whatever support for `prefix` rested on that peer (default:
  /// same handling as a plain withdrawal).
  virtual void on_error_withdraw(const net::Prefix& prefix, Asn from_peer, RouterContext& ctx) {
    on_withdraw(prefix, from_peer, ctx);
  }

  /// The session with `peer` went down and its routes were flushed. A
  /// stateful validator must drop whatever evidence hinged solely on that
  /// peer — the peer will cold-announce from scratch when it returns
  /// (default: ignore).
  virtual void on_peer_down(Asn /*peer*/, RouterContext& /*ctx*/) {}

  /// The hosting router crashed and lost all protocol state. Validator
  /// memory does not survive a cold restart (default: ignore).
  virtual void on_reset(RouterContext& /*ctx*/) {}
};

/// The default validator: plain BGP, accept everything.
class AcceptAllValidator final : public ImportValidator {
 public:
  bool accept(const Route&, Asn, RouterContext&) override { return true; }
};

}  // namespace moas::bgp
