#include "moas/bgp/as_path.h"

#include <algorithm>
#include <utility>

#include "moas/util/assert.h"
#include "moas/util/strings.h"

namespace moas::bgp {

namespace {

/// Append `asns` to a raw segment vector, extending a trailing sequence
/// segment or starting one — the shared mutation core of append_sequence,
/// the sequence constructor, and parse.
void raw_append_sequence(std::vector<PathSegment>& segments, const std::vector<Asn>& asns) {
  for (Asn asn : asns) {
    MOAS_REQUIRE(asn != kNoAs, "cannot append the null ASN");
    if (segments.empty() || segments.back().kind != PathSegment::Kind::Sequence) {
      segments.push_back(PathSegment{PathSegment::Kind::Sequence, {asn}});
    } else {
      segments.back().asns.push_back(asn);
    }
  }
}

}  // namespace

AsPath::AsPath(std::vector<Asn> sequence) {
  if (!sequence.empty()) {
    std::vector<PathSegment> segments;
    segments.push_back(PathSegment{PathSegment::Kind::Sequence, std::move(sequence)});
    data_ = intern::make_path(std::move(segments));
  }
}

void AsPath::prepend(Asn asn) {
  MOAS_REQUIRE(asn != kNoAs, "cannot prepend the null ASN");
  std::vector<PathSegment> segments = this->segments();  // copy-on-write
  if (segments.empty() || segments.front().kind != PathSegment::Kind::Sequence) {
    segments.insert(segments.begin(), PathSegment{PathSegment::Kind::Sequence, {asn}});
  } else {
    auto& seq = segments.front().asns;
    seq.insert(seq.begin(), asn);
  }
  data_ = intern::make_path(std::move(segments));
}

void AsPath::append_set(AsnSet asns) {
  MOAS_REQUIRE(!asns.empty(), "AS_SET segment must be non-empty");
  std::vector<PathSegment> segments = this->segments();
  segments.push_back(PathSegment{PathSegment::Kind::Set, {asns.begin(), asns.end()}});
  data_ = intern::make_path(std::move(segments));
}

void AsPath::append_sequence(const std::vector<Asn>& asns) {
  if (asns.empty()) return;
  std::vector<PathSegment> segments = this->segments();
  raw_append_sequence(segments, asns);
  data_ = intern::make_path(std::move(segments));
}

bool AsPath::contains(Asn asn) const {
  for (const auto& seg : segments()) {
    if (std::find(seg.asns.begin(), seg.asns.end(), asn) != seg.asns.end()) return true;
  }
  return false;
}

std::optional<Asn> AsPath::first() const {
  if (empty()) return std::nullopt;
  const auto& seg = segments().front();
  if (seg.kind == PathSegment::Kind::Sequence) return seg.asns.front();
  return std::nullopt;  // ambiguous: path starts with an aggregate set
}

std::optional<Asn> AsPath::origin() const {
  if (empty()) return std::nullopt;
  const auto& seg = segments().back();
  if (seg.kind == PathSegment::Kind::Sequence) return seg.asns.back();
  return std::nullopt;
}

AsnSet AsPath::origin_candidates() const {
  if (empty()) return {};
  const auto& seg = segments().back();
  if (seg.kind == PathSegment::Kind::Sequence) return {seg.asns.back()};
  return {seg.asns.begin(), seg.asns.end()};
}

std::string AsPath::to_string() const {
  std::string out;
  for (const auto& seg : segments()) {
    if (seg.kind == PathSegment::Kind::Sequence) {
      for (Asn asn : seg.asns) {
        if (!out.empty()) out += ' ';
        out += std::to_string(asn);
      }
    } else {
      if (!out.empty()) out += ' ';
      out += '{';
      for (std::size_t i = 0; i < seg.asns.size(); ++i) {
        if (i > 0) out += ',';
        out += std::to_string(seg.asns[i]);
      }
      out += '}';
    }
  }
  return out;
}

std::optional<AsPath> AsPath::parse(std::string_view s) {
  std::vector<PathSegment> segments;
  for (const auto& raw : util::split(s, ' ')) {
    const auto token = util::trim(raw);
    if (token.empty()) continue;
    if (token.front() == '{') {
      if (token.back() != '}') return std::nullopt;
      AsnSet set;
      for (const auto& member : util::split(token.substr(1, token.size() - 2), ',')) {
        std::uint64_t asn = 0;
        if (!util::parse_u64(util::trim(member), asn) || asn > ~0u) return std::nullopt;
        set.insert(static_cast<Asn>(asn));
      }
      if (set.empty()) return std::nullopt;
      segments.push_back(PathSegment{PathSegment::Kind::Set, {set.begin(), set.end()}});
    } else {
      std::uint64_t asn = 0;
      if (!util::parse_u64(token, asn) || asn > ~0u) return std::nullopt;
      // Extend a trailing sequence segment, or start one. (No null-ASN
      // REQUIRE here: parse reports malformed input via nullopt, and the
      // pre-intern parser accepted "0" — behavior is pinned by tests.)
      if (segments.empty() || segments.back().kind != PathSegment::Kind::Sequence) {
        segments.push_back(
            PathSegment{PathSegment::Kind::Sequence, {static_cast<Asn>(asn)}});
      } else {
        segments.back().asns.push_back(static_cast<Asn>(asn));
      }
    }
  }
  return AsPath(intern::make_path(std::move(segments)));
}

}  // namespace moas::bgp
