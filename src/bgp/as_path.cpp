#include "moas/bgp/as_path.h"

#include <algorithm>

#include "moas/util/assert.h"
#include "moas/util/strings.h"

namespace moas::bgp {

AsPath::AsPath(std::vector<Asn> sequence) {
  if (!sequence.empty()) {
    segments_.push_back(PathSegment{PathSegment::Kind::Sequence, std::move(sequence)});
  }
}

void AsPath::prepend(Asn asn) {
  MOAS_REQUIRE(asn != kNoAs, "cannot prepend the null ASN");
  if (segments_.empty() || segments_.front().kind != PathSegment::Kind::Sequence) {
    segments_.insert(segments_.begin(), PathSegment{PathSegment::Kind::Sequence, {asn}});
  } else {
    auto& seq = segments_.front().asns;
    seq.insert(seq.begin(), asn);
  }
}

void AsPath::append_set(AsnSet asns) {
  MOAS_REQUIRE(!asns.empty(), "AS_SET segment must be non-empty");
  PathSegment seg{PathSegment::Kind::Set, {asns.begin(), asns.end()}};
  segments_.push_back(std::move(seg));
}

void AsPath::append_sequence(const std::vector<Asn>& asns) {
  for (Asn asn : asns) {
    MOAS_REQUIRE(asn != kNoAs, "cannot append the null ASN");
    if (segments_.empty() || segments_.back().kind != PathSegment::Kind::Sequence) {
      segments_.push_back(PathSegment{PathSegment::Kind::Sequence, {asn}});
    } else {
      segments_.back().asns.push_back(asn);
    }
  }
}

bool AsPath::contains(Asn asn) const {
  for (const auto& seg : segments_) {
    if (std::find(seg.asns.begin(), seg.asns.end(), asn) != seg.asns.end()) return true;
  }
  return false;
}

std::size_t AsPath::selection_length() const {
  std::size_t n = 0;
  for (const auto& seg : segments_) {
    n += seg.kind == PathSegment::Kind::Sequence ? seg.asns.size() : 1;
  }
  return n;
}

std::optional<Asn> AsPath::first() const {
  if (segments_.empty()) return std::nullopt;
  const auto& seg = segments_.front();
  if (seg.kind == PathSegment::Kind::Sequence) return seg.asns.front();
  return std::nullopt;  // ambiguous: path starts with an aggregate set
}

std::optional<Asn> AsPath::origin() const {
  if (segments_.empty()) return std::nullopt;
  const auto& seg = segments_.back();
  if (seg.kind == PathSegment::Kind::Sequence) return seg.asns.back();
  return std::nullopt;
}

AsnSet AsPath::origin_candidates() const {
  if (segments_.empty()) return {};
  const auto& seg = segments_.back();
  if (seg.kind == PathSegment::Kind::Sequence) return {seg.asns.back()};
  return {seg.asns.begin(), seg.asns.end()};
}

std::string AsPath::to_string() const {
  std::string out;
  for (const auto& seg : segments_) {
    if (seg.kind == PathSegment::Kind::Sequence) {
      for (Asn asn : seg.asns) {
        if (!out.empty()) out += ' ';
        out += std::to_string(asn);
      }
    } else {
      if (!out.empty()) out += ' ';
      out += '{';
      for (std::size_t i = 0; i < seg.asns.size(); ++i) {
        if (i > 0) out += ',';
        out += std::to_string(seg.asns[i]);
      }
      out += '}';
    }
  }
  return out;
}

std::optional<AsPath> AsPath::parse(std::string_view s) {
  AsPath path;
  for (const auto& raw : util::split(s, ' ')) {
    const auto token = util::trim(raw);
    if (token.empty()) continue;
    if (token.front() == '{') {
      if (token.back() != '}') return std::nullopt;
      AsnSet set;
      for (const auto& member : util::split(token.substr(1, token.size() - 2), ',')) {
        std::uint64_t asn = 0;
        if (!util::parse_u64(util::trim(member), asn) || asn > ~0u) return std::nullopt;
        set.insert(static_cast<Asn>(asn));
      }
      if (set.empty()) return std::nullopt;
      path.append_set(std::move(set));
    } else {
      std::uint64_t asn = 0;
      if (!util::parse_u64(token, asn) || asn > ~0u) return std::nullopt;
      // Extend a trailing sequence segment, or start one.
      if (path.segments_.empty() ||
          path.segments_.back().kind != PathSegment::Kind::Sequence) {
        path.segments_.push_back(
            PathSegment{PathSegment::Kind::Sequence, {static_cast<Asn>(asn)}});
      } else {
        path.segments_.back().asns.push_back(static_cast<Asn>(asn));
      }
    }
  }
  return path;
}

}  // namespace moas::bgp
