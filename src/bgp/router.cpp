#include "moas/bgp/router.h"

#include <utility>

#include "moas/obs/metrics.h"
#include "moas/obs/trace.h"
#include "moas/util/assert.h"
#include "moas/util/log.h"

namespace moas::bgp {

Router::Router(Asn asn, PolicyMode mode, SendFn send, sim::EventQueue* clock)
    : asn_(asn),
      mode_(mode),
      send_(std::move(send)),
      clock_(clock),
      validator_(std::make_shared<AcceptAllValidator>()) {
  MOAS_REQUIRE(asn_ != kNoAs, "router needs a real ASN");
  MOAS_REQUIRE(static_cast<bool>(send_), "router needs a transport callback");
}

void Router::add_peer(Asn peer, Relationship rel) {
  MOAS_REQUIRE(peer != asn_, "cannot peer with self");
  MOAS_REQUIRE(peer != kNoAs, "peer needs a real ASN");
  MOAS_REQUIRE(!peers_.contains(peer), "peer already registered");
  peers_[peer].rel = rel;
}

std::vector<Asn> Router::peers() const {
  std::vector<Asn> out;
  out.reserve(peers_.size());
  for (const auto& [asn, _] : peers_) out.push_back(asn);
  return out;
}

void Router::set_validator(std::shared_ptr<ImportValidator> validator) {
  MOAS_REQUIRE(validator != nullptr, "validator must not be null");
  validator_ = std::move(validator);
}

void Router::set_mrai(sim::Time seconds) {
  MOAS_REQUIRE(seconds >= 0.0, "MRAI must be non-negative");
  MOAS_REQUIRE(seconds == 0.0 || clock_ != nullptr, "MRAI pacing requires a clock");
  mrai_ = seconds;
}

void Router::enable_flap_damping(FlapDamper::Config config) {
  MOAS_REQUIRE(clock_ != nullptr, "flap damping requires a clock");
  damper_.emplace(config);
}

void Router::set_graceful_restart(sim::Time restart_time) {
  MOAS_REQUIRE(restart_time >= 0.0, "restart time must be non-negative");
  MOAS_REQUIRE(restart_time == 0.0 || clock_ != nullptr,
               "graceful restart requires a clock for the restart timer");
  gr_restart_time_ = restart_time;
}

void Router::originate(const net::Prefix& prefix, CommunitySet communities,
                       OriginCode origin_code) {
  originate(prefix, std::move(communities), LargeCommunitySet{}, origin_code);
}

void Router::originate(const net::Prefix& prefix, CommunitySet communities,
                       LargeCommunitySet large_communities, OriginCode origin_code) {
  Route route;
  route.prefix = prefix;
  route.attrs.path = AsPath({asn_});
  route.attrs.origin_code = origin_code;
  route.attrs.local_pref = kLocalRouteLocalPref;
  route.attrs.communities = std::move(communities);
  route.attrs.large_communities = std::move(large_communities);
  local_[prefix] = std::move(route);
  decide(prefix);
}

void Router::withdraw_origination(const net::Prefix& prefix) {
  if (local_.erase(prefix) == 0) return;
  decide(prefix);
}

void Router::handle_update(Asn from, const Update& update) {
  if (import_update(from, update)) decide(update.prefix);
}

bool Router::import_update(Asn from, const Update& update) {
  return import_update(from, Update(update));
}

bool Router::import_update(Asn from, Update&& update) {
  auto peer_it = peers_.find(from);
  MOAS_REQUIRE(peer_it != peers_.end(), "update from unknown peer");
  PeerState& peer = peer_it->second;
  ++stats_.updates_received;

  if (update.kind == Update::Kind::EndOfRib) {
    if (obs::trace_wants(trace_, obs::TraceLevel::Full)) {
      trace_->emit(obs::TraceEvent(obs::EventKind::UpdateReceived, asn_, from)
                       .with_note("end-of-rib"));
    }
    handle_end_of_rib(from);
    return false;  // End-of-RIB runs its own decides during the stale sweep
  }

  if (update.kind == Update::Kind::Withdraw) {
    if (obs::trace_wants(trace_, obs::TraceLevel::Full)) {
      obs::TraceEvent event(obs::EventKind::WithdrawReceived, asn_, from);
      event.with_prefix(update.prefix);
      if (update.error_withdraw) event.with_note("error-withdraw");
      trace_->emit(std::move(event));
    }
    const bool had = adj_in_.erase(from, update.prefix);
    if (had) ++stats_.routes_withdrawn;
    if (had && damper_) damper_->on_withdrawal(from, update.prefix, current_time());
    if (update.error_withdraw) {
      // RFC 7606 treat-as-withdraw: the peer's announcement arrived damaged
      // and was revoked by error handling, not by the peer. Record it so
      // audits (and the detector's cold-reference rebuild) know this peer's
      // route is not usable evidence until it re-announces.
      ++stats_.error_withdraws;
      if (obs::trace_wants(trace_, obs::TraceLevel::Summary)) {
        trace_->emit(obs::TraceEvent(obs::EventKind::ErrorWithdraw, asn_, from)
                         .with_prefix(update.prefix));
      }
      peer.error_withdrawn.insert(update.prefix);
      validator_->on_error_withdraw(update.prefix, from, *this);
    } else {
      // An explicit withdrawal supersedes any error-withdrawn record.
      peer.error_withdrawn.erase(update.prefix);
      validator_->on_withdraw(update.prefix, from, *this);
    }
    return had;
  }

  MOAS_ENSURE(update.route.has_value(), "announce without a route");
  Route route = std::move(*update.route);
  MOAS_ENSURE(route.prefix == update.prefix, "update prefix mismatch");
  if (obs::trace_wants(trace_, obs::TraceLevel::Full)) {
    trace_->emit(obs::TraceEvent(obs::EventKind::UpdateReceived, asn_, from)
                     .with_prefix(update.prefix));
  }
  // A fresh announcement — accepted or not — replaces whatever damaged one
  // the error-withdrawn record was tracking.
  peer.error_withdrawn.erase(update.prefix);

  // Loop detection: a path containing our own ASN is discarded. The
  // announcement still implicitly withdraws whatever this peer sent before.
  if (route.attrs.path.contains(asn_)) {
    ++stats_.loops_detected;
    return adj_in_.erase(from, route.prefix);
  }

  // Import policy: LOCAL_PREF is assigned locally by relationship.
  route.attrs.local_pref = import_local_pref(mode_, peer.rel);

  // Flap accounting: a replacement announcement with different attributes
  // is a flap (RFC 2439's attribute-change event).
  if (damper_) {
    const RibEntry* prior = adj_in_.from_peer(route.prefix, from);
    if (prior && !(prior->route == route)) {
      damper_->on_attribute_change(from, route.prefix, current_time());
    }
  }

  // Validation (e.g. MOAS-list checking). The validator may purge
  // previously installed routes through RouterContext::invalidate_origins.
  if (!validator_->accept(route, from, *this)) {
    ++stats_.announcements_rejected;
    return adj_in_.erase(from, route.prefix);
  }

  return adj_in_.set(from, std::move(route));
}

void Router::peer_down(Asn peer) {
  auto it = peers_.find(peer);
  MOAS_REQUIRE(it != peers_.end(), "unknown peer");
  if (!it->second.session_up) return;  // already down
  it->second.session_up = false;
  ++it->second.gr_generation;  // a cold loss supersedes any restart window
  if (damper_) damper_->clear_peer(peer);
  it->second.advertised.clear();
  it->second.pending.clear();
  it->second.next_allowed.clear();
  it->second.error_withdrawn.clear();  // the flush removes what it tracked
  validator_->on_peer_down(peer, *this);
  abandon_deferred_peer(peer);
  for (const net::Prefix& prefix : adj_in_.erase_peer(peer)) {
    // The flush is an implicit withdrawal of everything the peer sent —
    // this is the bulk route loss a session reset inflicts.
    ++stats_.routes_withdrawn;
    decide(prefix);
  }
}

void Router::peer_restarting(Asn peer) {
  auto it = peers_.find(peer);
  MOAS_REQUIRE(it != peers_.end(), "unknown peer");
  if (gr_restart_time_ <= 0.0) {
    peer_down(peer);  // graceful restart not negotiated: cold flush
    return;
  }
  if (!it->second.session_up) return;  // already down
  it->second.session_up = false;
  // Nothing can cross the dead session, so the advertisement bookkeeping
  // resets exactly like peer_down — but the routes *learned from* the peer
  // stay installed and selectable, marked stale. The validator is not told
  // the peer went down: from the detector's perspective the peer's evidence
  // (reference-list support) persists through the restart, which is the
  // point of modeling RFC 4724.
  it->second.advertised.clear();
  it->second.pending.clear();
  it->second.next_allowed.clear();
  stats_.stale_retained += adj_in_.mark_peer_stale(peer);
  abandon_deferred_peer(peer);
  const std::uint64_t gen = ++it->second.gr_generation;
  clock_->schedule_after(gr_restart_time_,
                         [this, peer, gen] { stale_timer_expired(peer, gen); });
}

void Router::peer_up(Asn peer) {
  auto it = peers_.find(peer);
  MOAS_REQUIRE(it != peers_.end(), "unknown peer");
  it->second.session_up = true;
  for (const net::Prefix& prefix : loc_rib_.prefixes()) {
    send_to_peer(peer, it->second, prefix);
  }
  if (gr_restart_time_ > 0.0) {
    if (gr_deferring_) {
      // RFC 4724 §4.1: a restarting speaker holds its own End-of-RIB back
      // until its peers complete their initial exchanges — sent now, from a
      // table that hasn't re-learned anything yet, the marker would sweep
      // the helpers' stale routes before the replay chain refreshes them.
      gr_eor_deferred_to_.insert(peer);
      gr_awaiting_eor_from_.insert(peer);
      return;
    }
    // RFC 4724 §2: the initial route exchange ends with the End-of-RIB
    // marker (sent even when there was nothing to replay). It bypasses the
    // per-prefix MRAI/bookkeeping path — it carries no route. The replay
    // above goes out un-paced (session loss cleared next_allowed), so FIFO
    // delivery guarantees the peer sees every replayed route before the
    // marker sweeps its stale leftovers.
    ++stats_.updates_sent;
    ++stats_.eor_sent;
    if (obs::trace_wants(trace_, obs::TraceLevel::Full)) {
      trace_->emit(obs::TraceEvent(obs::EventKind::UpdateSent, asn_, peer)
                       .with_note("end-of-rib"));
    }
    send_(asn_, peer, Update::end_of_rib());
  }
}

void Router::handle_end_of_rib(Asn from) {
  ++stats_.eor_received;
  // Everything still stale was not re-announced in the peer's initial
  // exchange: the restarted peer no longer has those routes, so they are
  // implicit withdrawals.
  const std::vector<net::Prefix> swept = adj_in_.sweep_stale(from);
  stats_.stale_swept += swept.size();
  stats_.routes_withdrawn += swept.size();  // implicit withdrawals
  for (const net::Prefix& prefix : swept) {
    validator_->on_withdraw(prefix, from, *this);
    decide(prefix);
  }
  if (gr_deferring_ && gr_awaiting_eor_from_.erase(from) > 0 &&
      gr_awaiting_eor_from_.empty()) {
    complete_restart_deferral();
  }
}

void Router::complete_restart_deferral() {
  gr_deferring_ = false;
  ++gr_defer_generation_;  // disarm the deferral fallback timer
  for (Asn peer : gr_eor_deferred_to_) {
    auto it = peers_.find(peer);
    if (it == peers_.end() || !it->second.session_up) continue;
    ++stats_.updates_sent;
    ++stats_.eor_sent;
    if (obs::trace_wants(trace_, obs::TraceLevel::Full)) {
      trace_->emit(obs::TraceEvent(obs::EventKind::UpdateSent, asn_, peer)
                       .with_note("end-of-rib"));
    }
    send_(asn_, peer, Update::end_of_rib());
  }
  gr_eor_deferred_to_.clear();
  gr_awaiting_eor_from_.clear();
}

void Router::abandon_deferred_peer(Asn peer) {
  if (!gr_deferring_) return;
  gr_eor_deferred_to_.erase(peer);
  if (gr_awaiting_eor_from_.erase(peer) > 0 && gr_awaiting_eor_from_.empty()) {
    complete_restart_deferral();
  }
}

void Router::stale_timer_expired(Asn peer, std::uint64_t gen) {
  auto it = peers_.find(peer);
  if (it == peers_.end() || it->second.gr_generation != gen) return;  // superseded
  const std::vector<net::Prefix> swept = adj_in_.sweep_stale(peer);
  if (swept.empty()) return;  // refreshed + swept by End-of-RIB already
  stats_.stale_swept += swept.size();
  stats_.routes_withdrawn += swept.size();  // implicit withdrawals
  // The restart window expired without the peer finishing its comeback:
  // from here on this is a cold loss, validator memory included.
  validator_->on_peer_down(peer, *this);
  for (const net::Prefix& prefix : swept) decide(prefix);
}

bool Router::peer_session_up(Asn peer) const {
  auto it = peers_.find(peer);
  MOAS_REQUIRE(it != peers_.end(), "unknown peer");
  return it->second.session_up;
}

bool Router::route_error_withdrawn(Asn peer, const net::Prefix& prefix) const {
  auto it = peers_.find(peer);
  MOAS_REQUIRE(it != peers_.end(), "unknown peer");
  return it->second.error_withdrawn.contains(prefix);
}

void Router::refresh_route(Asn peer, const net::Prefix& prefix) {
  auto it = peers_.find(peer);
  MOAS_REQUIRE(it != peers_.end(), "refresh for unknown peer");
  PeerState& state = it->second;
  if (!state.session_up) return;
  auto adv = state.advertised.find(prefix);
  if (adv == state.advertised.end()) return;
  ++stats_.route_refreshes;
  // Straight onto the wire, bypassing both send_to_peer and transmit: the
  // booked advertisement is exactly what the peer lost, so duplicate
  // suppression would swallow it, and MRAI pacing would hold the recovery
  // hostage to the pacing clock started by the damaged original — letting
  // the peer's withdraw cascade escape in the meantime. A refresh re-sends
  // current state; it neither waits for nor restarts the MRAI timer.
  ++stats_.updates_sent;
  ++stats_.announcements_sent;
  if (obs::trace_wants(trace_, obs::TraceLevel::Full)) {
    trace_->emit(obs::TraceEvent(obs::EventKind::UpdateSent, asn_, peer)
                     .with_prefix(prefix)
                     .with_note("route-refresh"));
  }
  send_(asn_, peer, Update::announce(adv->second));
}

void Router::crash() {
  for (auto& [peer, state] : peers_) {
    state.session_up = false;
    state.advertised.clear();
    state.pending.clear();
    state.next_allowed.clear();
    state.error_withdrawn.clear();
    ++state.gr_generation;  // crashing forgets any helper-side restart window
    if (damper_) damper_->clear_peer(peer);
  }
  adj_in_ = AdjRibIn();
  loc_rib_ = LocRib();
  gr_deferring_ = false;
  ++gr_defer_generation_;
  gr_eor_deferred_to_.clear();
  gr_awaiting_eor_from_.clear();
  validator_->on_reset(*this);
}

void Router::restart() {
  // Cold re-announcement: local originations are configuration, so they
  // come back; everything learned is gone until peers resend it. Sessions
  // are still down here, so decide() installs without exporting — the
  // Network drives peer_up per live link, which transmits.
  if (gr_restart_time_ > 0.0 && clock_) {
    // Enter the restarting-speaker deferral (see peer_up); if a peer never
    // finishes its exchange — or two adjacent restarts defer at each other —
    // the restart time bounds the wait, mirroring the helpers' stale timer.
    gr_deferring_ = true;
    const std::uint64_t gen = ++gr_defer_generation_;
    clock_->schedule_after(gr_restart_time_, [this, gen] {
      if (gr_deferring_ && gr_defer_generation_ == gen) complete_restart_deferral();
    });
  }
  for (const auto& [prefix, _] : local_) decide(prefix);
}

const Route* Router::advertised_to(Asn peer, const net::Prefix& prefix) const {
  auto it = peers_.find(peer);
  MOAS_REQUIRE(it != peers_.end(), "unknown peer");
  auto entry = it->second.advertised.find(prefix);
  return entry == it->second.advertised.end() ? nullptr : &entry->second;
}

std::vector<net::Prefix> Router::advertised_prefixes(Asn peer) const {
  auto it = peers_.find(peer);
  MOAS_REQUIRE(it != peers_.end(), "unknown peer");
  std::vector<net::Prefix> out;
  out.reserve(it->second.advertised.size());
  for (const auto& [prefix, _] : it->second.advertised) out.push_back(prefix);
  return out;
}

std::optional<Route> Router::rebuild_export(Asn peer, const net::Prefix& prefix) const {
  auto it = peers_.find(peer);
  MOAS_REQUIRE(it != peers_.end(), "unknown peer");
  std::optional<Update> desired = build_export(it->second, prefix);
  if (!desired) return std::nullopt;
  const RibEntry* entry = loc_rib_.best(prefix);
  if (entry && entry->learned_from == peer) return std::nullopt;  // split horizon
  return std::move(desired->route);
}

std::optional<Asn> Router::best_origin(const net::Prefix& prefix) const {
  const RibEntry* entry = loc_rib_.best(prefix);
  if (!entry) return std::nullopt;
  return entry->route.origin_as();
}

std::size_t Router::invalidate_origins(const net::Prefix& prefix,
                                       const AsnSet& false_origins) {
  const std::size_t n = adj_in_.erase_by_origin(prefix, false_origins);
  if (n > 0) decide(prefix);
  return n;
}

AsnSet Router::accepted_origins(const net::Prefix& prefix) const {
  AsnSet origins;
  for (const RibEntry* entry : adj_in_.candidates(prefix)) {
    for (Asn asn : entry->route.origin_candidates()) origins.insert(asn);
  }
  return origins;
}

void Router::decide(const net::Prefix& prefix) {
  ++stats_.decisions;

  std::vector<const RibEntry*> candidates = adj_in_.candidates(prefix);

  // Flap damping: suppressed candidates sit out the decision; a re-decide
  // is scheduled for when the earliest of them becomes reusable.
  if (damper_) {
    const sim::Time now = current_time();
    sim::Time earliest_reuse = 0.0;
    std::erase_if(candidates, [&](const RibEntry* entry) {
      if (!damper_->suppressed(entry->learned_from, prefix, now)) return false;
      ++stats_.candidates_damped;
      const sim::Time reuse = damper_->reuse_time(entry->learned_from, prefix, now);
      if (earliest_reuse == 0.0 || reuse < earliest_reuse) earliest_reuse = reuse;
      return true;
    });
    if (earliest_reuse > now && clock_) {
      clock_->schedule_at(earliest_reuse + 1e-6, [this, prefix] { decide(prefix); });
    }
  }

  RibEntry local_entry;
  if (auto it = local_.find(prefix); it != local_.end()) {
    local_entry = RibEntry{it->second, asn_};
    candidates.push_back(&local_entry);
  }

  const RibEntry* best = select_best(candidates);
  const RibEntry* old = loc_rib_.best(prefix);

  // Route-age preference: if the established best is still a live candidate
  // and the challenger merely ties its attribute key, keep the established
  // route (stability; also what makes a converged network resist equally
  // long bogus paths).
  if (prefer_established_ && best && old) {
    for (const RibEntry* candidate : candidates) {
      if (*candidate == *old) {
        if (compare_candidate_keys(*best, *candidate) == 0) best = candidate;
        break;
      }
    }
  }

  // Capture the outgoing origin before mutating the Loc-RIB: `old` points
  // into it, and set/erase below invalidates that pointer.
  const bool tracing = obs::trace_wants(trace_, obs::TraceLevel::Summary);
  std::int64_t traced_old = -1;
  if (tracing && old) {
    traced_old = static_cast<std::int64_t>(old->route.origin_as().value_or(kNoAs));
  }

  bool changed = false;
  if (!best) {
    changed = loc_rib_.erase(prefix);
  } else if (!old || !(*old == *best)) {
    loc_rib_.set(prefix, *best);
    changed = true;
  }

  if (changed) {
    ++stats_.best_changes;
    if (tracing) {
      // Route-change events precede the exports they trigger — the trace
      // reads cause-then-effect.
      const RibEntry* now_best = loc_rib_.best(prefix);
      if (now_best) {
        const auto new_origin =
            static_cast<std::int64_t>(now_best->route.origin_as().value_or(kNoAs));
        trace_->emit(obs::TraceEvent(obs::EventKind::RoutePreferred, asn_)
                         .with_prefix(prefix)
                         .with_values(traced_old, new_origin));
      } else {
        trace_->emit(obs::TraceEvent(obs::EventKind::RouteDepreferred, asn_)
                         .with_prefix(prefix)
                         .with_values(traced_old));
      }
    }
    export_prefix(prefix);
  }
}

void Router::export_prefix(const net::Prefix& prefix) {
  for (auto& [peer, state] : peers_) send_to_peer(peer, state, prefix);
}

std::optional<Update> Router::build_export(const PeerState& state,
                                           const net::Prefix& prefix) const {
  const RibEntry* entry = loc_rib_.best(prefix);
  if (!entry) return std::nullopt;

  const bool locally_originated = entry->learned_from == asn_;
  if (!locally_originated) {
    const Relationship learned_rel = peers_.at(entry->learned_from).rel;
    if (!export_allowed(mode_, learned_rel, state.rel)) return std::nullopt;
  }

  Route out = entry->route;
  // Prepend our ASN unless the path already starts with it (locally
  // originated routes are stored with path == {self}).
  if (out.attrs.path.first() != std::optional<Asn>(asn_)) out.attrs.path.prepend(asn_);
  // LOCAL_PREF is not transitive across EBGP; receivers assign their own.
  out.attrs.local_pref = 100;
  if (strip_communities_ && !locally_originated) {
    out.attrs.communities.clear();
    out.attrs.large_communities.clear();  // same RFC-permitted strip, wide width
  }
  return Update::announce(std::move(out));
}

void Router::send_to_peer(Asn peer, PeerState& state, const net::Prefix& prefix) {
  // Nothing crosses a dead session, and nothing may be booked as
  // advertised either — peer_up will replay the Loc-RIB when the session
  // returns (booking here would let duplicate suppression swallow the
  // replay and leave the peer permanently stale).
  if (!state.session_up) return;

  std::optional<Update> desired = build_export(state, prefix);

  // Sender-side split horizon: never advertise a route back to the peer it
  // was learned from (the receiver's loop check would reject it anyway).
  if (desired) {
    const RibEntry* entry = loc_rib_.best(prefix);
    if (entry && entry->learned_from == peer) desired.reset();
  }

  auto advertised = state.advertised.find(prefix);
  if (desired) {
    if (advertised != state.advertised.end() && advertised->second == *desired->route) {
      return;  // duplicate suppression
    }
    // A suppressed update is never booked: the peer keeps whatever it last
    // heard, and the bookkeeping must say so or a later resend would be
    // wrongly deduplicated.
    if (export_filter_ && !export_filter_(*desired, peer)) return;
    state.advertised[prefix] = *desired->route;
    transmit(peer, state, std::move(*desired));
  } else {
    if (advertised == state.advertised.end()) return;
    Update withdraw = Update::withdraw(prefix);
    if (export_filter_ && !export_filter_(withdraw, peer)) return;
    state.advertised.erase(advertised);
    transmit(peer, state, std::move(withdraw));
  }
}

void Router::transmit(Asn peer, PeerState& state, Update update) {
  const net::Prefix prefix = update.prefix;
  if (mrai_ > 0.0 && clock_) {
    auto it = state.next_allowed.find(prefix);
    const sim::Time now = clock_->now();
    if (it != state.next_allowed.end() && now < it->second) {
      auto& slot = state.pending[prefix];
      const bool flush_already_scheduled = slot.has_value();
      slot = std::move(update);  // newest update supersedes queued one
      if (!flush_already_scheduled) {
        const sim::Time at = it->second;
        clock_->schedule_at(at, [this, peer, prefix] { flush_pending(peer, prefix); });
      }
      return;
    }
    state.next_allowed[prefix] = now + mrai_;
  }

  ++stats_.updates_sent;
  if (update.kind == Update::Kind::Withdraw) {
    ++stats_.withdrawals_sent;
  } else {
    ++stats_.announcements_sent;
  }
  if (obs::trace_wants(trace_, obs::TraceLevel::Full)) {
    obs::TraceEvent event(obs::EventKind::UpdateSent, asn_, peer);
    event.with_prefix(prefix);
    if (update.kind == Update::Kind::Withdraw) event.with_note("withdraw");
    trace_->emit(std::move(event));
  }
  send_(asn_, peer, std::move(update));
}

void Router::collect_metrics(obs::MetricsRegistry& registry) const {
  registry.count("router.updates_received", stats_.updates_received);
  registry.count("router.updates_sent", stats_.updates_sent);
  registry.count("router.announcements_sent", stats_.announcements_sent);
  registry.count("router.withdrawals_sent", stats_.withdrawals_sent);
  registry.count("router.announcements_rejected", stats_.announcements_rejected);
  registry.count("router.error_withdraws", stats_.error_withdraws);
  registry.count("router.route_refreshes", stats_.route_refreshes);
  registry.count("router.routes_withdrawn", stats_.routes_withdrawn);
  registry.count("router.loops_detected", stats_.loops_detected);
  registry.count("router.decisions", stats_.decisions);
  registry.count("router.best_changes", stats_.best_changes);
  registry.count("router.candidates_damped", stats_.candidates_damped);
  registry.count("router.eor_sent", stats_.eor_sent);
  registry.count("router.eor_received", stats_.eor_received);
  registry.count("router.stale_retained", stats_.stale_retained);
  registry.count("router.stale_swept", stats_.stale_swept);
}

void Router::flush_pending(Asn peer, const net::Prefix& prefix) {
  auto pit = peers_.find(peer);
  if (pit == peers_.end()) return;
  auto& slot = pit->second.pending[prefix];
  if (!slot) return;
  Update update = std::move(*slot);
  slot.reset();
  transmit(peer, pit->second, std::move(update));
}

}  // namespace moas::bgp
