#include "moas/bgp/community.h"

#include <algorithm>

#include "moas/util/strings.h"

namespace moas::bgp {

namespace {

/// Sorted-vector membership (the interned payloads are sorted + unique).
template <typename T>
bool sorted_contains(const std::vector<T>& values, const T& v) {
  return std::binary_search(values.begin(), values.end(), v);
}

}  // namespace

std::string Community::to_string() const {
  return std::to_string(asn()) + ":" + std::to_string(value());
}

std::optional<Community> Community::parse(std::string_view s) {
  const auto colon = s.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  std::uint64_t asn = 0;
  std::uint64_t value = 0;
  if (!util::parse_u64(s.substr(0, colon), asn) || asn > 0xffffu) return std::nullopt;
  if (!util::parse_u64(s.substr(colon + 1), value) || value > 0xffffu) return std::nullopt;
  return Community(static_cast<std::uint16_t>(asn), static_cast<std::uint16_t>(value));
}

std::string LargeCommunity::to_string() const {
  return std::to_string(global_admin_) + ":" + std::to_string(data1_) + ":" +
         std::to_string(data2_);
}

std::optional<LargeCommunity> LargeCommunity::parse(std::string_view s) {
  const auto first = s.find(':');
  if (first == std::string_view::npos) return std::nullopt;
  const auto second = s.find(':', first + 1);
  if (second == std::string_view::npos) return std::nullopt;
  std::uint64_t admin = 0, data1 = 0, data2 = 0;
  if (!util::parse_u64(s.substr(0, first), admin) || admin > ~0u) return std::nullopt;
  if (!util::parse_u64(s.substr(first + 1, second - first - 1), data1) || data1 > ~0u) {
    return std::nullopt;
  }
  if (!util::parse_u64(s.substr(second + 1), data2) || data2 > ~0u) return std::nullopt;
  return LargeCommunity(static_cast<std::uint32_t>(admin), static_cast<std::uint32_t>(data1),
                        static_cast<std::uint32_t>(data2));
}

CommunitySet::CommunitySet(std::initializer_list<Community> cs) {
  data_ = intern::make_community_set(std::vector<Community>(cs));
}

void CommunitySet::add(Community c) {
  if (contains(c)) return;
  std::vector<Community> values = this->values();
  values.push_back(c);
  data_ = intern::make_community_set(std::move(values));
}

void CommunitySet::remove(Community c) {
  if (!contains(c)) return;
  std::vector<Community> values = this->values();
  values.erase(std::remove(values.begin(), values.end(), c), values.end());
  data_ = intern::make_community_set(std::move(values));
}

bool CommunitySet::contains(Community c) const {
  return data_ && sorted_contains(data_->values, c);
}

std::string CommunitySet::to_string() const {
  std::string out;
  for (const auto& c : values()) {
    if (!out.empty()) out += ' ';
    out += c.to_string();
  }
  return out;
}

LargeCommunitySet::LargeCommunitySet(std::initializer_list<LargeCommunity> cs) {
  data_ = intern::make_large_community_set(std::vector<LargeCommunity>(cs));
}

void LargeCommunitySet::add(LargeCommunity c) {
  if (contains(c)) return;
  std::vector<LargeCommunity> values = this->values();
  values.push_back(c);
  data_ = intern::make_large_community_set(std::move(values));
}

void LargeCommunitySet::remove(LargeCommunity c) {
  if (!contains(c)) return;
  std::vector<LargeCommunity> values = this->values();
  values.erase(std::remove(values.begin(), values.end(), c), values.end());
  data_ = intern::make_large_community_set(std::move(values));
}

bool LargeCommunitySet::contains(LargeCommunity c) const {
  return data_ && sorted_contains(data_->values, c);
}

std::string LargeCommunitySet::to_string() const {
  std::string out;
  for (const auto& c : values()) {
    if (!out.empty()) out += ' ';
    out += c.to_string();
  }
  return out;
}

}  // namespace moas::bgp
