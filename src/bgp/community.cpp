#include "moas/bgp/community.h"

#include "moas/util/strings.h"

namespace moas::bgp {

std::string Community::to_string() const {
  return std::to_string(asn()) + ":" + std::to_string(value());
}

std::optional<Community> Community::parse(std::string_view s) {
  const auto colon = s.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  std::uint64_t asn = 0;
  std::uint64_t value = 0;
  if (!util::parse_u64(s.substr(0, colon), asn) || asn > 0xffffu) return std::nullopt;
  if (!util::parse_u64(s.substr(colon + 1), value) || value > 0xffffu) return std::nullopt;
  return Community(static_cast<std::uint16_t>(asn), static_cast<std::uint16_t>(value));
}

std::string CommunitySet::to_string() const {
  std::string out;
  for (const auto& c : values_) {
    if (!out.empty()) out += ' ';
    out += c.to_string();
  }
  return out;
}

}  // namespace moas::bgp
