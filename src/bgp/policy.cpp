#include "moas/bgp/policy.h"

namespace moas::bgp {

Relationship reverse(Relationship rel) {
  switch (rel) {
    case Relationship::Customer: return Relationship::Provider;
    case Relationship::Provider: return Relationship::Customer;
    case Relationship::Peer: return Relationship::Peer;
  }
  return Relationship::Peer;
}

const char* to_string(Relationship rel) {
  switch (rel) {
    case Relationship::Customer: return "customer";
    case Relationship::Peer: return "peer";
    case Relationship::Provider: return "provider";
  }
  return "?";
}

const char* to_string(PolicyMode mode) {
  return mode == PolicyMode::ShortestPath ? "shortest-path" : "gao-rexford";
}

std::uint32_t import_local_pref(PolicyMode mode, Relationship neighbor) {
  if (mode == PolicyMode::ShortestPath) return 100;
  switch (neighbor) {
    case Relationship::Customer: return 300;
    case Relationship::Peer: return 200;
    case Relationship::Provider: return 100;
  }
  return 100;
}

bool export_allowed(PolicyMode mode, Relationship learned_from, Relationship to) {
  if (mode == PolicyMode::ShortestPath) return true;
  // Valley-free: routes from customers go everywhere; routes from peers or
  // providers go only to customers.
  if (learned_from == Relationship::Customer) return true;
  return to == Relationship::Customer;
}

}  // namespace moas::bgp
