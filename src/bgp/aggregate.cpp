#include "moas/bgp/aggregate.h"

#include <algorithm>

#include "moas/util/assert.h"

namespace moas::bgp {

namespace {

/// Flatten a path into the plain list of ASes a sequence walk visits;
/// AS_SET members are appended in sorted order (their internal order is
/// meaningless).
std::vector<Asn> flatten(const AsPath& path) {
  std::vector<Asn> out;
  for (const auto& seg : path.segments()) {
    out.insert(out.end(), seg.asns.begin(), seg.asns.end());
  }
  return out;
}

}  // namespace

AsnSet aggregate_origins(const std::vector<Route>& components) {
  AsnSet out;
  for (const Route& r : components) {
    for (Asn asn : r.origin_candidates()) out.insert(asn);
  }
  return out;
}

AggregationResult aggregate_routes(const net::Prefix& target,
                                   const std::vector<Route>& components) {
  MOAS_REQUIRE(!components.empty(), "nothing to aggregate");
  for (const Route& r : components) {
    MOAS_REQUIRE(target.contains(r.prefix), "component outside the aggregate block");
  }

  // Longest common leading sequence across the flattened paths — but only
  // as far as every path's leading AS_SEQUENCE extends (a leading AS_SET
  // contributes nothing deterministic to keep).
  std::size_t common_len = 0;
  {
    // Length of the leading sequence segment of each path.
    std::size_t min_leading = ~std::size_t{0};
    for (const Route& r : components) {
      const auto& segs = r.attrs.path.segments();
      const std::size_t lead =
          (!segs.empty() && segs.front().kind == PathSegment::Kind::Sequence)
              ? segs.front().asns.size()
              : 0;
      min_leading = std::min(min_leading, lead);
    }
    const std::vector<Asn> reference = flatten(components.front().attrs.path);
    for (std::size_t i = 0; i < min_leading; ++i) {
      const Asn asn = reference[i];
      const bool all_match = std::all_of(
          components.begin(), components.end(), [&](const Route& r) {
            const auto flat = flatten(r.attrs.path);
            return i < flat.size() && flat[i] == asn;
          });
      if (!all_match) break;
      common_len = i + 1;
    }
  }

  Route aggregate;
  aggregate.prefix = target;

  const std::vector<Asn> reference = flatten(components.front().attrs.path);
  std::vector<Asn> common(reference.begin(),
                          reference.begin() + static_cast<std::ptrdiff_t>(common_len));
  AsnSet rest;
  for (const Route& r : components) {
    const auto flat = flatten(r.attrs.path);
    for (std::size_t i = common_len; i < flat.size(); ++i) rest.insert(flat[i]);
  }
  // ASes in the common head never repeat inside the set segment.
  for (Asn asn : common) rest.erase(asn);

  AsPath path;
  if (!common.empty()) path.append_sequence(common);
  if (!rest.empty()) path.append_set(std::move(rest));
  aggregate.attrs.path = std::move(path);

  // Worst origin code wins; communities (both widths) merge by union.
  aggregate.attrs.origin_code = OriginCode::Igp;
  for (const Route& r : components) {
    aggregate.attrs.origin_code =
        std::max(aggregate.attrs.origin_code, r.attrs.origin_code);
    for (Community c : r.attrs.communities.values()) aggregate.attrs.communities.add(c);
    for (const LargeCommunity& c : r.attrs.large_communities.values()) {
      aggregate.attrs.large_communities.add(c);
    }
  }

  // Exactness: do the component prefixes minimize to exactly {target}?
  net::PrefixSet covered;
  for (const Route& r : components) covered.insert(r.prefix);
  covered.minimize();
  AggregationResult result{std::move(aggregate), false};
  result.exact = covered.size() == 1 && covered.contains(target);
  return result;
}

}  // namespace moas::bgp
