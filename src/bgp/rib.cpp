#include "moas/bgp/rib.h"

#include <algorithm>

#include "moas/util/assert.h"

namespace moas::bgp {

int compare_candidate_keys(const RibEntry& a, const RibEntry& b) {
  if (a.route.attrs.local_pref != b.route.attrs.local_pref) {
    return a.route.attrs.local_pref > b.route.attrs.local_pref ? -1 : 1;
  }
  // selection_length() is O(1): the interner caches it on the shared path
  // data, so the decision process no longer re-walks segments per comparison.
  const auto alen = a.route.attrs.path.selection_length();
  const auto blen = b.route.attrs.path.selection_length();
  if (alen != blen) return alen < blen ? -1 : 1;
  if (a.route.attrs.origin_code != b.route.attrs.origin_code) {
    return a.route.attrs.origin_code < b.route.attrs.origin_code ? -1 : 1;
  }
  if (a.route.attrs.med != b.route.attrs.med) {
    return a.route.attrs.med < b.route.attrs.med ? -1 : 1;
  }
  return 0;
}

int compare_candidates(const RibEntry& a, const RibEntry& b) {
  const int keys = compare_candidate_keys(a, b);
  if (keys != 0) return keys;
  if (a.learned_from != b.learned_from) return a.learned_from < b.learned_from ? -1 : 1;
  return 0;
}

const RibEntry* select_best(const std::vector<const RibEntry*>& candidates) {
  const RibEntry* best = nullptr;
  for (const RibEntry* c : candidates) {
    if (!best || compare_candidates(*c, *best) < 0) best = c;
  }
  return best;
}

namespace {

struct PeerLess {
  bool operator()(const RibEntry& entry, Asn peer) const { return entry.learned_from < peer; }
};

}  // namespace

AdjRibIn::Row::iterator AdjRibIn::row_find(Row& row, Asn peer) {
  auto it = std::lower_bound(row.begin(), row.end(), peer, PeerLess{});
  return (it != row.end() && it->learned_from == peer) ? it : row.end();
}

AdjRibIn::Row::const_iterator AdjRibIn::row_find(const Row& row, Asn peer) {
  auto it = std::lower_bound(row.begin(), row.end(), peer, PeerLess{});
  return (it != row.end() && it->learned_from == peer) ? it : row.end();
}

bool AdjRibIn::set(Asn peer, Route route) {
  const net::Prefix prefix = route.prefix;
  Row& row = table_[prefix];
  // Any announcement refreshes the entry: even a byte-identical replay
  // clears the graceful-restart stale mark (RFC 4724: the replayed route
  // replaces the stale one).
  clear_stale(peer, prefix);
  auto it = std::lower_bound(row.begin(), row.end(), peer, PeerLess{});
  if (it == row.end() || it->learned_from != peer) {
    row.insert(it, RibEntry{std::move(route), peer});
    by_peer_[peer].insert(prefix);
    return true;
  }
  if (it->route == route) return false;  // learned_from is already `peer`
  it->route = std::move(route);
  return true;
}

bool AdjRibIn::erase(Asn peer, const net::Prefix& prefix) {
  auto it = table_.find(prefix);
  if (it == table_.end()) return false;
  auto jt = row_find(it->second, peer);
  if (jt == it->second.end()) return false;
  it->second.erase(jt);
  clear_stale(peer, prefix);
  index_erase(peer, prefix);
  if (it->second.empty()) table_.erase(it);
  return true;
}

std::vector<const RibEntry*> AdjRibIn::candidates(const net::Prefix& prefix) const {
  std::vector<const RibEntry*> out;
  auto it = table_.find(prefix);
  if (it == table_.end()) return out;
  out.reserve(it->second.size());
  for (const RibEntry& entry : it->second) out.push_back(&entry);
  return out;
}

const RibEntry* AdjRibIn::from_peer(const net::Prefix& prefix, Asn peer) const {
  auto it = table_.find(prefix);
  if (it == table_.end()) return nullptr;
  auto jt = row_find(it->second, peer);
  return jt == it->second.end() ? nullptr : &*jt;
}

std::size_t AdjRibIn::erase_by_origin(const net::Prefix& prefix, const AsnSet& origins) {
  auto it = table_.find(prefix);
  if (it == table_.end()) return 0;
  std::size_t erased = 0;
  Row& row = it->second;
  for (auto jt = row.begin(); jt != row.end();) {
    const AsnSet cand = jt->route.origin_candidates();
    const bool hit = std::any_of(cand.begin(), cand.end(),
                                 [&](Asn a) { return origins.contains(a); });
    if (hit) {
      clear_stale(jt->learned_from, prefix);
      index_erase(jt->learned_from, prefix);
      jt = row.erase(jt);
      ++erased;
    } else {
      ++jt;
    }
  }
  if (row.empty()) table_.erase(it);
  return erased;
}

std::vector<net::Prefix> AdjRibIn::erase_peer(Asn peer) {
  std::vector<net::Prefix> affected;
  auto idx = by_peer_.find(peer);
  if (idx == by_peer_.end()) {
    stale_.erase(peer);
    return affected;
  }
  affected.reserve(idx->second.size());
  // The index is sorted, so `affected` comes out prefix-ascending — same
  // order the old full-table scan produced.
  for (const net::Prefix& prefix : idx->second) {
    auto it = table_.find(prefix);
    if (it == table_.end()) continue;
    auto jt = row_find(it->second, peer);
    if (jt == it->second.end()) continue;
    it->second.erase(jt);
    if (it->second.empty()) table_.erase(it);
    affected.push_back(prefix);
  }
  by_peer_.erase(peer);
  stale_.erase(peer);
  return affected;
}

std::size_t AdjRibIn::mark_peer_stale(Asn peer) {
  auto idx = by_peer_.find(peer);
  if (idx == by_peer_.end()) {
    stale_.erase(peer);
    return 0;
  }
  // stale_[peer] ⊆ by_peer_[peer] holds (every row erase clears the mark),
  // so assigning the whole held set equals the old merge-into-marks scan.
  stale_.insert_or_assign(peer, idx->second);
  return idx->second.size();
}

bool AdjRibIn::is_stale(const net::Prefix& prefix, Asn peer) const {
  auto it = stale_.find(peer);
  return it != stale_.end() && it->second.contains(prefix);
}

std::vector<net::Prefix> AdjRibIn::sweep_stale(Asn peer) {
  std::vector<net::Prefix> affected;
  auto it = stale_.find(peer);
  if (it == stale_.end()) return affected;
  for (const net::Prefix& prefix : it->second) {
    auto row = table_.find(prefix);
    if (row == table_.end()) continue;
    auto jt = row_find(row->second, peer);
    if (jt == row->second.end()) continue;
    row->second.erase(jt);
    if (row->second.empty()) table_.erase(row);
    index_erase(peer, prefix);
    affected.push_back(prefix);
  }
  stale_.erase(it);
  return affected;
}

std::vector<std::pair<net::Prefix, Asn>> AdjRibIn::stale_entries() const {
  std::vector<std::pair<net::Prefix, Asn>> out;
  for (const auto& [peer, prefixes] : stale_) {
    for (const net::Prefix& prefix : prefixes) out.emplace_back(prefix, peer);
  }
  return out;
}

std::size_t AdjRibIn::stale_count() const {
  std::size_t n = 0;
  for (const auto& [_, prefixes] : stale_) n += prefixes.size();
  return n;
}

void AdjRibIn::clear_stale(Asn peer, const net::Prefix& prefix) {
  auto it = stale_.find(peer);
  if (it == stale_.end()) return;
  it->second.erase(prefix);
  if (it->second.empty()) stale_.erase(it);
}

void AdjRibIn::index_erase(Asn peer, const net::Prefix& prefix) {
  auto it = by_peer_.find(peer);
  if (it == by_peer_.end()) return;
  it->second.erase(prefix);
  if (it->second.empty()) by_peer_.erase(it);
}

std::vector<net::Prefix> AdjRibIn::prefixes() const {
  std::vector<net::Prefix> out;
  out.reserve(table_.size());
  for (const auto& [prefix, _] : table_) out.push_back(prefix);
  return out;
}

std::size_t AdjRibIn::size() const {
  std::size_t n = 0;
  for (const auto& [_, row] : table_) n += row.size();
  return n;
}

std::size_t AdjRibIn::container_bytes() const {
  std::size_t n = table_.container_bytes();
  for (const auto& [_, row] : table_) n += row.capacity() * sizeof(RibEntry);
  n += by_peer_.container_bytes();
  for (const auto& [_, s] : by_peer_) n += s.container_bytes();
  n += stale_.container_bytes();
  for (const auto& [_, s] : stale_) n += s.container_bytes();
  return n;
}

void LocRib::set(const net::Prefix& prefix, RibEntry entry) {
  MOAS_REQUIRE(entry.route.prefix == prefix, "loc-rib entry prefix mismatch");
  table_.insert_or_assign(prefix, std::move(entry));
}

bool LocRib::erase(const net::Prefix& prefix) { return table_.erase(prefix) > 0; }

const RibEntry* LocRib::best(const net::Prefix& prefix) const {
  auto it = table_.find(prefix);
  return it == table_.end() ? nullptr : &it->second;
}

std::vector<net::Prefix> LocRib::prefixes() const {
  std::vector<net::Prefix> out;
  out.reserve(table_.size());
  for (const auto& [prefix, _] : table_) out.push_back(prefix);
  return out;
}

}  // namespace moas::bgp
