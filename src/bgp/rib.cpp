#include "moas/bgp/rib.h"

#include <algorithm>

#include "moas/util/assert.h"

namespace moas::bgp {

int compare_candidate_keys(const RibEntry& a, const RibEntry& b) {
  if (a.route.attrs.local_pref != b.route.attrs.local_pref) {
    return a.route.attrs.local_pref > b.route.attrs.local_pref ? -1 : 1;
  }
  const auto alen = a.route.attrs.path.selection_length();
  const auto blen = b.route.attrs.path.selection_length();
  if (alen != blen) return alen < blen ? -1 : 1;
  if (a.route.attrs.origin_code != b.route.attrs.origin_code) {
    return a.route.attrs.origin_code < b.route.attrs.origin_code ? -1 : 1;
  }
  if (a.route.attrs.med != b.route.attrs.med) {
    return a.route.attrs.med < b.route.attrs.med ? -1 : 1;
  }
  return 0;
}

int compare_candidates(const RibEntry& a, const RibEntry& b) {
  const int keys = compare_candidate_keys(a, b);
  if (keys != 0) return keys;
  if (a.learned_from != b.learned_from) return a.learned_from < b.learned_from ? -1 : 1;
  return 0;
}

const RibEntry* select_best(const std::vector<const RibEntry*>& candidates) {
  const RibEntry* best = nullptr;
  for (const RibEntry* c : candidates) {
    if (!best || compare_candidates(*c, *best) < 0) best = c;
  }
  return best;
}

bool AdjRibIn::set(Asn peer, Route route) {
  auto& per_peer = table_[route.prefix];
  // Any announcement refreshes the entry: even a byte-identical replay
  // clears the graceful-restart stale mark (RFC 4724: the replayed route
  // replaces the stale one).
  clear_stale(peer, route.prefix);
  auto it = per_peer.find(peer);
  if (it == per_peer.end()) {
    per_peer.emplace(peer, RibEntry{std::move(route), peer});
    return true;
  }
  if (it->second.route == route) return false;  // learned_from is already `peer`
  it->second.route = std::move(route);
  return true;
}

bool AdjRibIn::erase(Asn peer, const net::Prefix& prefix) {
  auto it = table_.find(prefix);
  if (it == table_.end()) return false;
  const bool erased = it->second.erase(peer) > 0;
  if (erased) clear_stale(peer, prefix);
  if (it->second.empty()) table_.erase(it);
  return erased;
}

std::vector<const RibEntry*> AdjRibIn::candidates(const net::Prefix& prefix) const {
  std::vector<const RibEntry*> out;
  auto it = table_.find(prefix);
  if (it == table_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [peer, entry] : it->second) out.push_back(&entry);
  return out;
}

const RibEntry* AdjRibIn::from_peer(const net::Prefix& prefix, Asn peer) const {
  auto it = table_.find(prefix);
  if (it == table_.end()) return nullptr;
  auto jt = it->second.find(peer);
  return jt == it->second.end() ? nullptr : &jt->second;
}

std::size_t AdjRibIn::erase_by_origin(const net::Prefix& prefix, const AsnSet& origins) {
  auto it = table_.find(prefix);
  if (it == table_.end()) return 0;
  std::size_t erased = 0;
  for (auto jt = it->second.begin(); jt != it->second.end();) {
    const AsnSet cand = jt->second.route.origin_candidates();
    const bool hit = std::any_of(cand.begin(), cand.end(),
                                 [&](Asn a) { return origins.contains(a); });
    if (hit) {
      clear_stale(jt->first, prefix);
      jt = it->second.erase(jt);
      ++erased;
    } else {
      ++jt;
    }
  }
  if (it->second.empty()) table_.erase(it);
  return erased;
}

std::vector<net::Prefix> AdjRibIn::erase_peer(Asn peer) {
  std::vector<net::Prefix> affected;
  for (auto it = table_.begin(); it != table_.end();) {
    if (it->second.erase(peer) > 0) affected.push_back(it->first);
    if (it->second.empty()) {
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
  stale_.erase(peer);
  return affected;
}

std::size_t AdjRibIn::mark_peer_stale(Asn peer) {
  std::set<net::Prefix>& marks = stale_[peer];
  for (const auto& [prefix, per_peer] : table_) {
    if (per_peer.contains(peer)) marks.insert(prefix);
  }
  const std::size_t n = marks.size();
  if (n == 0) stale_.erase(peer);
  return n;
}

bool AdjRibIn::is_stale(const net::Prefix& prefix, Asn peer) const {
  auto it = stale_.find(peer);
  return it != stale_.end() && it->second.contains(prefix);
}

std::vector<net::Prefix> AdjRibIn::sweep_stale(Asn peer) {
  std::vector<net::Prefix> affected;
  auto it = stale_.find(peer);
  if (it == stale_.end()) return affected;
  for (const net::Prefix& prefix : it->second) {
    auto row = table_.find(prefix);
    if (row == table_.end()) continue;
    if (row->second.erase(peer) == 0) continue;
    if (row->second.empty()) table_.erase(row);
    affected.push_back(prefix);
  }
  stale_.erase(it);
  return affected;
}

std::vector<std::pair<net::Prefix, Asn>> AdjRibIn::stale_entries() const {
  std::vector<std::pair<net::Prefix, Asn>> out;
  for (const auto& [peer, prefixes] : stale_) {
    for (const net::Prefix& prefix : prefixes) out.emplace_back(prefix, peer);
  }
  return out;
}

std::size_t AdjRibIn::stale_count() const {
  std::size_t n = 0;
  for (const auto& [_, prefixes] : stale_) n += prefixes.size();
  return n;
}

void AdjRibIn::clear_stale(Asn peer, const net::Prefix& prefix) {
  auto it = stale_.find(peer);
  if (it == stale_.end()) return;
  it->second.erase(prefix);
  if (it->second.empty()) stale_.erase(it);
}

std::vector<net::Prefix> AdjRibIn::prefixes() const {
  std::vector<net::Prefix> out;
  out.reserve(table_.size());
  for (const auto& [prefix, _] : table_) out.push_back(prefix);
  return out;
}

std::size_t AdjRibIn::size() const {
  std::size_t n = 0;
  for (const auto& [_, per_peer] : table_) n += per_peer.size();
  return n;
}

void LocRib::set(const net::Prefix& prefix, RibEntry entry) {
  MOAS_REQUIRE(entry.route.prefix == prefix, "loc-rib entry prefix mismatch");
  table_[prefix] = std::move(entry);
}

bool LocRib::erase(const net::Prefix& prefix) { return table_.erase(prefix) > 0; }

const RibEntry* LocRib::best(const net::Prefix& prefix) const {
  auto it = table_.find(prefix);
  return it == table_.end() ? nullptr : &it->second;
}

std::vector<net::Prefix> LocRib::prefixes() const {
  std::vector<net::Prefix> out;
  out.reserve(table_.size());
  for (const auto& [prefix, _] : table_) out.push_back(prefix);
  return out;
}

}  // namespace moas::bgp
