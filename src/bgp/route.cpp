#include "moas/bgp/route.h"

#include "moas/util/assert.h"

namespace moas::bgp {

std::string Route::to_string() const {
  std::string out = prefix.to_string() + " via <" + attrs.path.to_string() + ">";
  if (!attrs.communities.empty()) out += " [" + attrs.communities.to_string() + "]";
  return out;
}

Update Update::announce(Route r) {
  Update u;
  u.kind = Kind::Announce;
  u.prefix = r.prefix;
  u.route = std::move(r);
  return u;
}

Update Update::withdraw(net::Prefix p) {
  Update u;
  u.kind = Kind::Withdraw;
  u.prefix = p;
  return u;
}

Update Update::make_error_withdraw(net::Prefix p) {
  Update u = withdraw(p);
  u.error_withdraw = true;
  return u;
}

Update Update::end_of_rib() {
  Update u;
  u.kind = Kind::EndOfRib;
  return u;
}

std::string Update::to_string() const {
  if (kind == Kind::Announce) {
    MOAS_ENSURE(route.has_value(), "announce update must carry a route");
    return "ANNOUNCE " + route->to_string();
  }
  if (kind == Kind::EndOfRib) return "END-OF-RIB";
  if (error_withdraw) return "ERROR-WITHDRAW " + prefix.to_string();
  return "WITHDRAW " + prefix.to_string();
}

}  // namespace moas::bgp
