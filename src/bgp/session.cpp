#include "moas/bgp/session.h"

#include <algorithm>

#include "moas/util/assert.h"

namespace moas::bgp {

namespace {

// NOTIFICATION error codes (RFC 4271 §6).
constexpr std::uint8_t kErrHoldTimerExpired = 4;
constexpr std::uint8_t kErrCease = 6;

}  // namespace

const char* to_string(SessionState state) {
  switch (state) {
    case SessionState::Idle: return "Idle";
    case SessionState::Connect: return "Connect";
    case SessionState::OpenSent: return "OpenSent";
    case SessionState::OpenConfirm: return "OpenConfirm";
    case SessionState::Established: return "Established";
  }
  return "?";
}

Session::Session(Config config, sim::EventQueue& clock,
                 std::function<void(std::vector<std::uint8_t>)> send,
                 std::function<void()> on_up, std::function<void()> on_down)
    : config_(config),
      clock_(clock),
      send_(std::move(send)),
      on_up_(std::move(on_up)),
      on_down_(std::move(on_down)) {
  MOAS_REQUIRE(config_.local_as != kNoAs, "session needs a local ASN");
  MOAS_REQUIRE(config_.local_as <= 0xffffu, "wire format carries 2-octet ASNs");
  MOAS_REQUIRE(static_cast<bool>(send_), "session needs a transmit callback");
  MOAS_REQUIRE(config_.hold_time == 0.0 || config_.hold_time >= 3.0,
               "hold time must be zero or >= 3 seconds");
}

void Session::start() {
  if (state_ != SessionState::Idle) return;
  enter(SessionState::Connect);
  arm_connect_retry();
}

void Session::stop() {
  if (state_ == SessionState::Idle) return;
  reset_to_idle(/*notify_peer=*/state_ >= SessionState::OpenSent, kErrCease, 0);
}

void Session::tcp_connected() {
  if (state_ != SessionState::Connect) return;
  clock_.cancel(connect_retry_timer_);
  send_open();
  enter(SessionState::OpenSent);
  arm_hold_timer();
}

void Session::tcp_failed() {
  if (state_ == SessionState::Idle) return;
  const bool was_established = state_ == SessionState::Established;
  cancel_timers();
  enter(SessionState::Connect);
  arm_connect_retry();
  if (was_established && on_down_) on_down_();
}

void Session::receive(std::span<const std::uint8_t> data) {
  if (state_ == SessionState::Idle || state_ == SessionState::Connect) {
    return;  // no transport yet; ignore stray messages
  }
  wire::MessageType type;
  try {
    type = wire::message_type(data);
  } catch (const wire::WireError&) {
    reset_to_idle(/*notify_peer=*/true, 1 /*message header error*/, 0);
    return;
  }

  switch (type) {
    case wire::MessageType::Open: {
      if (state_ != SessionState::OpenSent) {
        // An OPEN in OpenConfirm/Established is a protocol error.
        reset_to_idle(true, 5 /*FSM error*/, 0);
        return;
      }
      wire::OpenMessage open;
      try {
        open = wire::decode_open(data);
      } catch (const wire::WireError&) {
        reset_to_idle(true, 2 /*OPEN message error*/, 0);
        return;
      }
      negotiated_hold_ = std::min<sim::Time>(config_.hold_time, open.hold_time);
      send_keepalive();
      enter(SessionState::OpenConfirm);
      arm_hold_timer();
      break;
    }
    case wire::MessageType::Keepalive: {
      if (state_ == SessionState::OpenConfirm) {
        enter(SessionState::Established);
        ++stats_.times_established;
        arm_hold_timer();
        arm_keepalive_timer();
        if (on_up_) on_up_();
      } else if (state_ == SessionState::Established) {
        arm_hold_timer();
      } else {
        reset_to_idle(true, 5, 0);
      }
      break;
    }
    case wire::MessageType::Update: {
      if (state_ != SessionState::Established) {
        reset_to_idle(true, 5, 0);
        return;
      }
      arm_hold_timer();  // any message refreshes the hold timer
      // Routing payload handling lives in the Router; the FSM only tracks
      // liveness.
      break;
    }
    case wire::MessageType::Notification: {
      const bool was_established = state_ == SessionState::Established;
      cancel_timers();
      enter(SessionState::Idle);
      if (was_established && on_down_) on_down_();
      break;
    }
  }
}

void Session::enter(SessionState next) { state_ = next; }

void Session::send_open() {
  wire::OpenMessage open;
  open.my_as = static_cast<std::uint16_t>(config_.local_as);
  open.hold_time = static_cast<std::uint16_t>(config_.hold_time);
  open.bgp_identifier = config_.bgp_identifier;
  ++stats_.opens_sent;
  send_(wire::encode_open(open));
}

void Session::send_keepalive() {
  ++stats_.keepalives_sent;
  send_(wire::encode_keepalive());
}

void Session::send_notification(std::uint8_t code, std::uint8_t subcode) {
  ++stats_.notifications_sent;
  send_(wire::encode_notification({code, subcode, {}}));
}

void Session::reset_to_idle(bool notify_peer, std::uint8_t code, std::uint8_t subcode) {
  const bool was_established = state_ == SessionState::Established;
  if (notify_peer) send_notification(code, subcode);
  cancel_timers();
  enter(SessionState::Idle);
  if (was_established && on_down_) on_down_();
}

void Session::arm_hold_timer() {
  clock_.cancel(hold_timer_);
  const sim::Time hold = negotiated_hold_ > 0.0 ? negotiated_hold_ : config_.hold_time;
  if (hold <= 0.0) return;  // hold time zero: liveness checking disabled
  hold_timer_ = clock_.schedule_after(hold, [this] {
    ++stats_.hold_expirations;
    reset_to_idle(/*notify_peer=*/true, kErrHoldTimerExpired, 0);
  });
}

void Session::arm_keepalive_timer() {
  clock_.cancel(keepalive_timer_);
  if (config_.keepalive_interval <= 0.0) return;
  keepalive_timer_ = clock_.schedule_after(config_.keepalive_interval, [this] {
    if (state_ == SessionState::Established || state_ == SessionState::OpenConfirm) {
      send_keepalive();
      arm_keepalive_timer();
    }
  });
}

void Session::arm_connect_retry() {
  clock_.cancel(connect_retry_timer_);
  connect_retry_timer_ = clock_.schedule_after(config_.connect_retry, [this] {
    if (state_ == SessionState::Connect) {
      // Still waiting for the transport: try again (the harness decides
      // when tcp_connected() fires; we just keep the timer honest).
      arm_connect_retry();
    }
  });
}

void Session::cancel_timers() {
  clock_.cancel(hold_timer_);
  clock_.cancel(keepalive_timer_);
  clock_.cancel(connect_retry_timer_);
  hold_timer_ = keepalive_timer_ = connect_retry_timer_ = 0;
}

}  // namespace moas::bgp
