#include "moas/bgp/session.h"

#include <algorithm>
#include <string>

#include "moas/obs/metrics.h"
#include "moas/obs/trace.h"
#include "moas/util/assert.h"

namespace moas::bgp {

namespace {

// NOTIFICATION error codes (RFC 4271 §6).
constexpr std::uint8_t kErrOpenMessage = 2;
constexpr std::uint8_t kErrHoldTimerExpired = 4;
constexpr std::uint8_t kErrFsm = 5;
constexpr std::uint8_t kErrCease = 6;

}  // namespace

const char* to_string(SessionState state) {
  switch (state) {
    case SessionState::Idle: return "Idle";
    case SessionState::Connect: return "Connect";
    case SessionState::OpenSent: return "OpenSent";
    case SessionState::OpenConfirm: return "OpenConfirm";
    case SessionState::Established: return "Established";
  }
  return "?";
}

Session::Session(Config config, sim::EventQueue& clock,
                 std::function<void(std::vector<std::uint8_t>)> send,
                 std::function<void()> on_up, std::function<void()> on_down)
    : config_(config),
      clock_(clock),
      send_(std::move(send)),
      on_up_(std::move(on_up)),
      on_down_(std::move(on_down)),
      jitter_rng_(config.seed ^ (0x5e5510ULL << 16) ^ config.local_as) {
  MOAS_REQUIRE(config_.local_as != kNoAs, "session needs a local ASN");
  MOAS_REQUIRE(static_cast<bool>(send_), "session needs a transmit callback");
  MOAS_REQUIRE(config_.hold_time == 0.0 || config_.hold_time >= 3.0,
               "hold time must be zero or >= 3 seconds");
  MOAS_REQUIRE(config_.connect_retry > 0.0, "connect-retry interval must be positive");
  MOAS_REQUIRE(config_.connect_retry_backoff >= 1.0,
               "connect-retry backoff factor must be >= 1");
  MOAS_REQUIRE(config_.connect_retry_cap >= config_.connect_retry,
               "connect-retry cap must be >= the base interval");
  MOAS_REQUIRE(config_.connect_retry_jitter >= 0.0 && config_.connect_retry_jitter < 1.0,
               "connect-retry jitter must be a fraction in [0, 1)");
  MOAS_REQUIRE(config_.gr_restart_time >= 0.0 && config_.gr_restart_time <= 4095.0,
               "graceful-restart time must fit the 12-bit wire field");
}

void Session::start() {
  if (state_ != SessionState::Idle) return;
  next_connect_retry_ = 0.0;  // fresh ManualStart: backoff state clears
  enter(SessionState::Connect);
  arm_connect_retry();
}

void Session::stop() {
  if (state_ == SessionState::Idle) return;
  reset_to_idle(/*notify_peer=*/state_ >= SessionState::OpenSent, kErrCease, 0);
}

void Session::tcp_connected() {
  if (state_ != SessionState::Connect) return;
  clock_.cancel(connect_retry_timer_);
  connect_retry_timer_ = 0;
  send_open();
  enter(SessionState::OpenSent);
  arm_hold_timer();
}

void Session::tcp_failed() {
  if (state_ == SessionState::Idle) return;
  const bool was_established = state_ == SessionState::Established;
  cancel_timers();
  negotiated_hold_ = 0.0;  // renegotiated by the next OPEN exchange
  enter(SessionState::Connect);
  arm_connect_retry();
  if (was_established && on_down_) on_down_();
}

void Session::receive(std::span<const std::uint8_t> data) {
  if (state_ == SessionState::Idle || state_ == SessionState::Connect) {
    return;  // no transport yet; ignore stray messages
  }
  wire::MessageType type;
  try {
    type = wire::message_type(data);
  } catch (const wire::WireError& e) {
    ++stats_.malformed_messages;
    reset_to_idle(/*notify_peer=*/true, e.code_octet(), e.subcode());
    return;
  }

  switch (type) {
    case wire::MessageType::Open: {
      if (state_ != SessionState::OpenSent) {
        // An OPEN in OpenConfirm/Established is a protocol error.
        reset_to_idle(true, kErrFsm, 0);
        return;
      }
      wire::OpenMessage open;
      try {
        open = wire::decode_open(data);
      } catch (const wire::WireError& e) {
        ++stats_.malformed_messages;
        const bool open_error = e.code() == wire::ErrorCode::OpenMessage ||
                                e.code() == wire::ErrorCode::MessageHeader;
        reset_to_idle(true, open_error ? e.code_octet() : kErrOpenMessage,
                      open_error ? e.subcode() : 0);
        return;
      }
      negotiated_hold_ = std::min<sim::Time>(config_.hold_time, open.hold_time);
      // Whatever the peer's latest OPEN says wins — a peer that stopped
      // advertising graceful restart (or four-octet ASNs) loses that
      // negotiation.
      peer_gr_ = open.graceful_restart;
      peer_as4_ = open.four_octet_as;
      send_keepalive();
      enter(SessionState::OpenConfirm);
      arm_hold_timer();
      break;
    }
    case wire::MessageType::Keepalive: {
      if (state_ == SessionState::OpenConfirm) {
        enter(SessionState::Established);
        ++stats_.times_established;
        next_connect_retry_ = 0.0;  // healthy again: backoff resets
        arm_hold_timer();
        arm_keepalive_timer();
        if (on_up_) on_up_();
      } else if (state_ == SessionState::Established) {
        arm_hold_timer();
      } else {
        reset_to_idle(true, kErrFsm, 0);
      }
      break;
    }
    case wire::MessageType::Update: {
      if (state_ != SessionState::Established) {
        reset_to_idle(true, kErrFsm, 0);
        return;
      }
      // The payload travels the RFC 4271 wire path: a decode failure is a
      // NOTIFICATION with the decoder's error code and a session reset, so
      // a truncated or bit-flipped UPDATE can never install garbage. With
      // revised_error_handling on, RFC 7606 demotes attribute damage to
      // treat-as-withdraw or attribute-discard and only framing/NLRI damage
      // still resets.
      if (config_.revised_error_handling) {
        wire::DecodeResult result;
        try {
          result = wire::decode_update_revised(data, as4_negotiated());
        } catch (const wire::WireError& e) {
          // SessionReset class: the prefix lists themselves are untrustworthy.
          ++stats_.malformed_messages;
          reset_to_idle(true, e.code_octet(), e.subcode());
          return;
        }
        ++stats_.updates_received;
        arm_hold_timer();
        const wire::ErrorAction severity = result.severity();
        if (severity == wire::ErrorAction::TreatAsWithdraw) {
          ++stats_.treat_as_withdraws;
          ++stats_.resets_avoided;
          if (obs::trace_wants(trace_, obs::TraceLevel::Summary)) {
            trace_->emit(
                obs::TraceEvent(obs::EventKind::ErrorDegraded, config_.local_as)
                    .with_note("treat-as-withdraw"));
          }
        } else if (severity == wire::ErrorAction::AttributeDiscard) {
          ++stats_.attribute_discards;
          ++stats_.resets_avoided;
          if (obs::trace_wants(trace_, obs::TraceLevel::Summary)) {
            trace_->emit(
                obs::TraceEvent(obs::EventKind::ErrorDegraded, config_.local_as)
                    .with_note("attribute-discard"));
          }
        }
        if (on_update_) on_update_(result.to_deliverable());
        return;
      }
      wire::UpdateMessage message;
      try {
        message = wire::decode_update(data, as4_negotiated());
      } catch (const wire::WireError& e) {
        ++stats_.malformed_messages;
        reset_to_idle(true, e.code_octet(), e.subcode());
        return;
      }
      ++stats_.updates_received;
      arm_hold_timer();  // any message refreshes the hold timer
      if (on_update_) on_update_(message);
      break;
    }
    case wire::MessageType::Notification: {
      // Remote-initiated reset. Unlike a local ManualStop this is not an
      // operator decision, so the session re-enters Connect and retries
      // automatically. The backoff interval is deliberately NOT reset here —
      // a peer that keeps NOTIFYing keeps paying increasing delays — but
      // reaching Established again restores the base interval, so a healed
      // peer does not keep paying the capped retry delay.
      ++stats_.remote_resets;
      const bool was_established = state_ == SessionState::Established;
      cancel_timers();
      negotiated_hold_ = 0.0;
      enter(SessionState::Connect);
      arm_connect_retry();
      if (was_established && on_down_) on_down_();
      break;
    }
  }
}

void Session::enter(SessionState next) {
  if (next != state_ && obs::trace_wants(trace_, obs::TraceLevel::Summary)) {
    trace_->emit(
        obs::TraceEvent(obs::EventKind::SessionTransition, config_.local_as)
            .with_note(std::string(to_string(state_)) + "->" + to_string(next)));
  }
  state_ = next;
}

void Session::collect_metrics(obs::MetricsRegistry& registry) const {
  registry.count("session.opens_sent", stats_.opens_sent);
  registry.count("session.keepalives_sent", stats_.keepalives_sent);
  registry.count("session.notifications_sent", stats_.notifications_sent);
  registry.count("session.hold_expirations", stats_.hold_expirations);
  registry.count("session.times_established", stats_.times_established);
  registry.count("session.connect_retries", stats_.connect_retries);
  registry.count("session.updates_received", stats_.updates_received);
  registry.count("session.malformed_messages", stats_.malformed_messages);
  registry.count("session.remote_resets", stats_.remote_resets);
  registry.count("session.treat_as_withdraws", stats_.treat_as_withdraws);
  registry.count("session.attribute_discards", stats_.attribute_discards);
  registry.count("session.resets_avoided", stats_.resets_avoided);
}

void Session::send_open() {
  wire::OpenMessage open;
  // RFC 6793 §4.1: a wide ASN cannot fit the 2-octet My-AS field; AS_TRANS
  // goes there and the true ASN rides the capability.
  open.my_as = config_.local_as <= 0xffffu ? static_cast<std::uint16_t>(config_.local_as)
                                           : static_cast<std::uint16_t>(kAsTrans);
  open.hold_time = static_cast<std::uint16_t>(config_.hold_time);
  open.bgp_identifier = config_.bgp_identifier;
  if (advertises_as4()) open.four_octet_as = config_.local_as;
  if (config_.graceful_restart) {
    wire::GracefulRestartCapability gr;
    gr.restart_state = config_.gr_restarting;
    gr.restart_time = static_cast<std::uint16_t>(config_.gr_restart_time);
    open.graceful_restart = gr;
  }
  ++stats_.opens_sent;
  send_(wire::encode_open(open));
}

void Session::send_keepalive() {
  ++stats_.keepalives_sent;
  send_(wire::encode_keepalive());
}

void Session::send_notification(std::uint8_t code, std::uint8_t subcode) {
  ++stats_.notifications_sent;
  stats_.last_notification_code = code;
  stats_.last_notification_subcode = subcode;
  send_(wire::encode_notification({code, subcode, {}}));
}

void Session::reset_to_idle(bool notify_peer, std::uint8_t code, std::uint8_t subcode) {
  const bool was_established = state_ == SessionState::Established;
  if (notify_peer) send_notification(code, subcode);
  cancel_timers();
  negotiated_hold_ = 0.0;  // renegotiated by the next OPEN exchange
  enter(SessionState::Idle);
  if (was_established && on_down_) on_down_();
}

void Session::arm_hold_timer() {
  clock_.cancel(hold_timer_);
  const sim::Time hold = negotiated_hold_ > 0.0 ? negotiated_hold_ : config_.hold_time;
  if (hold <= 0.0) return;  // hold time zero: liveness checking disabled
  hold_timer_ = clock_.schedule_after(hold, [this] {
    ++stats_.hold_expirations;
    reset_to_idle(/*notify_peer=*/true, kErrHoldTimerExpired, 0);
  });
}

void Session::arm_keepalive_timer() {
  clock_.cancel(keepalive_timer_);
  if (config_.keepalive_interval <= 0.0) return;
  keepalive_timer_ = clock_.schedule_after(config_.keepalive_interval, [this] {
    if (state_ == SessionState::Established || state_ == SessionState::OpenConfirm) {
      send_keepalive();
      arm_keepalive_timer();
    }
  });
}

void Session::arm_connect_retry() {
  clock_.cancel(connect_retry_timer_);
  // Exponential backoff: the interval doubles (by config) on every
  // consecutive retry up to the cap, with seeded jitter so that a fleet of
  // sessions resetting together fans back out instead of thundering.
  if (next_connect_retry_ <= 0.0) next_connect_retry_ = config_.connect_retry;
  const sim::Time base = next_connect_retry_;
  const sim::Time jitter = config_.connect_retry_jitter > 0.0
                               ? jitter_rng_.uniform01() * config_.connect_retry_jitter * base
                               : 0.0;
  next_connect_retry_ =
      std::min<sim::Time>(base * config_.connect_retry_backoff, config_.connect_retry_cap);
  connect_retry_timer_ = clock_.schedule_after(base + jitter, [this] {
    if (state_ == SessionState::Connect) {
      // Still waiting for the transport: try again (the harness decides
      // when tcp_connected() fires; we just keep the timer honest).
      ++stats_.connect_retries;
      arm_connect_retry();
    }
  });
}

void Session::cancel_timers() {
  clock_.cancel(hold_timer_);
  clock_.cancel(keepalive_timer_);
  clock_.cancel(connect_retry_timer_);
  hold_timer_ = keepalive_timer_ = connect_retry_timer_ = 0;
}

}  // namespace moas::bgp
