#include "moas/bgp/intern.h"

#include <algorithm>
#include <deque>
#include <mutex>
#include <unordered_set>
#include <utility>

namespace moas::bgp::intern {

namespace {

constexpr std::size_t kShardBits = 4;
constexpr std::size_t kShardCount = 1u << kShardBits;

std::size_t mix(std::size_t h, std::size_t v) {
  // Boost-style combine with a splitmix-ish odd constant.
  return h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
}

std::size_t hash_payload(const std::vector<PathSegment>& segments) {
  std::size_t h = 0x50415448;  // "PATH"
  for (const PathSegment& seg : segments) {
    h = mix(h, static_cast<std::size_t>(seg.kind));
    h = mix(h, seg.asns.size());
    for (Asn asn : seg.asns) h = mix(h, asn);
  }
  return h;
}

std::size_t hash_payload(const std::vector<Community>& values) {
  std::size_t h = 0x434f4d4d;  // "COMM"
  for (Community c : values) h = mix(h, c.raw());
  return h;
}

std::size_t hash_payload(const std::vector<LargeCommunity>& values) {
  std::size_t h = 0x4c434f4d;  // "LCOM"
  for (const LargeCommunity& c : values) {
    h = mix(h, c.global_admin());
    h = mix(h, c.data1());
    h = mix(h, c.data2());
  }
  return h;
}

std::size_t deep_bytes(const std::vector<PathSegment>& segments) {
  std::size_t bytes = segments.capacity() * sizeof(PathSegment);
  for (const PathSegment& seg : segments) bytes += seg.asns.capacity() * sizeof(Asn);
  return bytes;
}

template <typename T>
std::size_t deep_bytes(const std::vector<T>& values) {
  return values.capacity() * sizeof(T);
}

void shrink(std::vector<PathSegment>& segments) {
  for (PathSegment& seg : segments) seg.asns.shrink_to_fit();
  segments.shrink_to_fit();
}

template <typename T>
void shrink(std::vector<T>& values) {
  values.shrink_to_fit();
}

/// One sharded hash-consing pool. `Data` must expose a `.values`-style
/// payload vector named by the accessor below via `payload_of`.
template <typename Data, typename Payload>
class Pool {
 public:
  /// Returns the canonical entry for `payload`; `finish` fills the derived
  /// fields of a freshly arena'd entry (id is assigned here).
  template <typename Finish>
  const Data* intern(Payload payload, Finish&& finish) {
    shrink(payload);
    const std::size_t hash = hash_payload(payload);
    Shard& shard = shards_[hash & (kShardCount - 1)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    Data probe;
    payload_of(probe) = std::move(payload);
    auto it = shard.index.find(&probe);
    if (it != shard.index.end()) return *it;
    shard.arena.push_back(std::move(probe));
    Data& entry = shard.arena.back();
    entry.id = static_cast<std::uint32_t>((shard.arena.size() << kShardBits) |
                                          (hash & (kShardCount - 1)));
    finish(entry);
    shard.payload_bytes += sizeof(Data) + deep_bytes(payload_of(entry));
    shard.index.insert(&entry);
    return &entry;
  }

  PoolUsage usage() const {
    PoolUsage out;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      out.entries += shard.arena.size();
      out.payload_bytes += shard.payload_bytes;
      // libstdc++ unordered_set: one node (pointer payload + next + cached
      // hash) per entry plus the bucket array. An estimate, flagged as such
      // in the PoolUsage contract.
      out.index_bytes += shard.index.size() * (sizeof(void*) * 3) +
                         shard.index.bucket_count() * sizeof(void*);
    }
    return out;
  }

 private:
  static Payload& payload_of(Data& d) { return d.*payload_member(); }
  static const Payload& payload_of(const Data& d) { return d.*payload_member(); }
  static constexpr auto payload_member() {
    if constexpr (requires(Data d) { d.segments; }) {
      return &Data::segments;
    } else {
      return &Data::values;
    }
  }

  struct Hash {
    std::size_t operator()(const Data* d) const { return hash_payload(payload_of(*d)); }
  };
  struct Eq {
    bool operator()(const Data* a, const Data* b) const {
      return payload_of(*a) == payload_of(*b);
    }
  };

  struct Shard {
    mutable std::mutex mutex;
    std::deque<Data> arena;  // stable addresses for the life of the process
    std::unordered_set<const Data*, Hash, Eq> index;
    std::size_t payload_bytes = 0;
  };

  Shard shards_[kShardCount];
};

// Meyers singletons: constructed on first intern, destroyed at static
// teardown in reverse construction order (so they outlive anything built
// after program start; handles held by other statics of earlier
// construction would be the only hazard, and none exist).
Pool<PathData, std::vector<PathSegment>>& path_pool() {
  static Pool<PathData, std::vector<PathSegment>> pool;
  return pool;
}

Pool<CommunitySetData, std::vector<Community>>& community_pool() {
  static Pool<CommunitySetData, std::vector<Community>> pool;
  return pool;
}

Pool<LargeCommunitySetData, std::vector<LargeCommunity>>& large_community_pool() {
  static Pool<LargeCommunitySetData, std::vector<LargeCommunity>> pool;
  return pool;
}

std::uint32_t path_selection_length(const std::vector<PathSegment>& segments) {
  std::size_t n = 0;
  for (const PathSegment& seg : segments) {
    n += seg.kind == PathSegment::Kind::Sequence ? seg.asns.size() : 1;
  }
  return static_cast<std::uint32_t>(n);
}

}  // namespace

const PathData* make_path(std::vector<PathSegment> segments) {
  if (segments.empty()) return nullptr;
  return path_pool().intern(std::move(segments), [](PathData& entry) {
    entry.selection_length = path_selection_length(entry.segments);
  });
}

const std::vector<PathSegment>& empty_path_segments() {
  static const std::vector<PathSegment> empty;
  return empty;
}

const CommunitySetData* make_community_set(std::vector<Community> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  if (values.empty()) return nullptr;
  return community_pool().intern(std::move(values), [](CommunitySetData&) {});
}

const LargeCommunitySetData* make_large_community_set(std::vector<LargeCommunity> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  if (values.empty()) return nullptr;
  return large_community_pool().intern(std::move(values), [](LargeCommunitySetData&) {});
}

const std::vector<Community>& empty_communities() {
  static const std::vector<Community> empty;
  return empty;
}

const std::vector<LargeCommunity>& empty_large_communities() {
  static const std::vector<LargeCommunity> empty;
  return empty;
}

PoolStats pool_stats() {
  PoolStats out;
  out.paths = path_pool().usage();
  out.community_sets = community_pool().usage();
  out.large_community_sets = large_community_pool().usage();
  return out;
}

}  // namespace moas::bgp::intern
