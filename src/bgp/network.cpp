#include "moas/bgp/network.h"

#include "moas/util/assert.h"

namespace moas::bgp {

Network::Network() : Network(Config()) {}

Network::Network(Config config) : config_(config), rng_(config.seed) {
  MOAS_REQUIRE(config_.link_delay >= 0.0, "link delay must be non-negative");
  MOAS_REQUIRE(config_.jitter >= 0.0, "jitter must be non-negative");
}

Router& Network::add_router(Asn asn) {
  MOAS_REQUIRE(!routers_.contains(asn), "router already exists");
  auto router = std::make_unique<Router>(
      asn, config_.mode,
      [this](Asn from, Asn to, const Update& update) { deliver(from, to, update); },
      &clock_);
  Router& ref = *router;
  routers_.emplace(asn, std::move(router));
  return ref;
}

void Network::connect(Asn a, Asn b, Relationship rel_of_b) {
  router(a).add_peer(b, rel_of_b);
  router(b).add_peer(a, reverse(rel_of_b));
}

Router& Network::router(Asn asn) {
  auto it = routers_.find(asn);
  MOAS_REQUIRE(it != routers_.end(), "unknown router " + std::to_string(asn));
  return *it->second;
}

const Router& Network::router(Asn asn) const {
  auto it = routers_.find(asn);
  MOAS_REQUIRE(it != routers_.end(), "unknown router " + std::to_string(asn));
  return *it->second;
}

std::vector<Asn> Network::asns() const {
  std::vector<Asn> out;
  out.reserve(routers_.size());
  for (const auto& [asn, _] : routers_) out.push_back(asn);
  return out;
}

bool Network::run_to_quiescence(std::size_t max_events) {
  return clock_.run(max_events) < max_events || clock_.empty();
}

void Network::set_link_up(Asn a, Asn b, bool up) {
  MOAS_REQUIRE(router(a).has_peer(b), "no such peering");
  const auto key = std::minmax(a, b);
  if (!up) {
    if (!failed_links_.insert(key).second) return;  // already down
    router(a).peer_down(b);
    router(b).peer_down(a);
  } else {
    if (failed_links_.erase(key) == 0) return;  // already up
    router(a).peer_up(b);
    router(b).peer_up(a);
  }
}

bool Network::link_up(Asn a, Asn b) const {
  return !failed_links_.contains(std::minmax(a, b));
}

void Network::deliver(Asn from, Asn to, const Update& update) {
  if (!link_up(from, to)) {
    ++messages_dropped_;
    return;
  }
  ++messages_sent_;
  const double delay =
      config_.link_delay + (config_.jitter > 0.0 ? rng_.uniform01() * config_.jitter : 0.0);
  // FIFO per directed link: a BGP session is a TCP stream, so a later
  // update must never overtake an earlier one (an overtaken stale
  // announcement would act as a bogus implicit withdraw at the receiver).
  sim::Time at = clock_.now() + delay;
  auto& last = link_clock_[{from, to}];
  if (at <= last) at = last + 1e-9;
  last = at;
  // Copy the update into the event: the sender may mutate its state freely
  // while the message is "on the wire".
  clock_.schedule_at(at, [this, from, to, update] {
    if (!link_up(from, to)) {  // the link failed while the message was in flight
      ++messages_dropped_;
      return;
    }
    auto it = routers_.find(to);
    MOAS_ENSURE(it != routers_.end(), "message addressed to unknown router");
    it->second->handle_update(from, update);
  });
}

}  // namespace moas::bgp
