#include "moas/bgp/network.h"

#include <algorithm>

#include "moas/obs/metrics.h"
#include "moas/obs/trace.h"
#include "moas/util/assert.h"

namespace moas::bgp {

Network::Network() : Network(Config()) {}

Network::Network(Config config) : config_(config), rng_(config.seed) {
  MOAS_REQUIRE(config_.link_delay >= 0.0, "link delay must be non-negative");
  MOAS_REQUIRE(config_.jitter >= 0.0, "jitter must be non-negative");
  MOAS_REQUIRE(config_.session_reestablish_delay > 0.0,
               "session re-establishment delay must be positive");
  MOAS_REQUIRE(!config_.graceful_restart || config_.gr_restart_time > 0.0,
               "graceful restart needs a positive restart time");
}

Router& Network::add_router(Asn asn) {
  MOAS_REQUIRE(!routers_.contains(asn), "router already exists");
  auto router = std::make_unique<Router>(
      asn, config_.mode,
      [this](Asn from, Asn to, Update update) { deliver(from, to, std::move(update)); },
      &clock_);
  Router& ref = *router;
  if (config_.graceful_restart) ref.set_graceful_restart(config_.gr_restart_time);
  ref.set_trace(trace_);
  routers_.emplace(asn, std::move(router));
  return ref;
}

void Network::set_trace(obs::TraceBus* bus) {
  trace_ = bus;
  for (auto& [_, router] : routers_) router->set_trace(bus);
}

obs::MetricsRegistry Network::collect_metrics() const {
  obs::MetricsRegistry registry;
  for (const auto& [_, router] : routers_) router->collect_metrics(registry);
  registry.count("network.messages_sent", messages_sent_);
  registry.count("network.messages_dropped", messages_dropped_);
  registry.set_gauge("network.routers", static_cast<double>(routers_.size()));
  registry.set_gauge("network.links", static_cast<double>(links().size()));
  registry.count("sim.events_executed", clock_.executed());
  return registry;
}

void Network::connect(Asn a, Asn b, Relationship rel_of_b) {
  router(a).add_peer(b, rel_of_b);
  router(b).add_peer(a, reverse(rel_of_b));
}

Router& Network::router(Asn asn) {
  auto it = routers_.find(asn);
  MOAS_REQUIRE(it != routers_.end(), "unknown router " + std::to_string(asn));
  return *it->second;
}

const Router& Network::router(Asn asn) const {
  auto it = routers_.find(asn);
  MOAS_REQUIRE(it != routers_.end(), "unknown router " + std::to_string(asn));
  return *it->second;
}

std::vector<Asn> Network::asns() const {
  std::vector<Asn> out;
  out.reserve(routers_.size());
  for (const auto& [asn, _] : routers_) out.push_back(asn);
  return out;
}

std::vector<std::pair<Asn, Asn>> Network::links() const {
  std::vector<std::pair<Asn, Asn>> out;
  for (const auto& [asn, router] : routers_) {
    for (Asn peer : router->peers()) {
      if (asn < peer) out.emplace_back(asn, peer);
    }
  }
  // routers_ iterates in ASN order and peers() is sorted, so this is already
  // sorted — keep the guarantee explicit for schedule determinism.
  std::sort(out.begin(), out.end());
  return out;
}

bool Network::run_to_quiescence(std::size_t max_events) {
  return clock_.run(max_events) < max_events || clock_.empty();
}

void Network::set_link_up(Asn a, Asn b, bool up) {
  MOAS_REQUIRE(router(a).has_peer(b), "no such peering");
  const std::pair<Asn, Asn> key = std::minmax(a, b);
  if (!up) {
    if (!failed_links_.insert(key).second) return;  // already down
    ++link_down_epoch_[key];
    router(a).peer_down(b);
    router(b).peer_down(a);
  } else {
    if (failed_links_.erase(key) == 0) return;  // already up
    // A crashed endpoint keeps the session down even though the physical
    // link recovered; restart_router brings it up then.
    if (crashed_.contains(a) || crashed_.contains(b)) return;
    router(a).peer_up(b);
    // The replay above passes through the chaos tap synchronously, so a
    // corrupted replayed UPDATE can reset this very session mid-bring-up.
    // If it did, the link is failed again: bringing the second side up now
    // would book advertisements nothing can deliver, and the eventual real
    // re-establishment would duplicate-suppress its replay against those
    // phantom bookings — a permanent hole.
    if (failed_links_.contains(key)) return;
    router(b).peer_up(a);
  }
}

bool Network::link_up(Asn a, Asn b) const {
  return !failed_links_.contains(std::minmax(a, b));
}

void Network::reset_session(Asn a, Asn b, double reestablish_delay) {
  MOAS_REQUIRE(router(a).has_peer(b), "no such peering");
  // std::minmax returns a pair of references into the parameters; the
  // re-establish lambda below outlives this frame, so the key must be a
  // value pair or the capture dangles (and the restore silently yields on
  // a garbage epoch lookup, leaving the session down forever).
  const std::pair<Asn, Asn> key = std::minmax(a, b);
  if (failed_links_.contains(key)) return;  // already down; nothing to reset
  if (reestablish_delay <= 0.0) reestablish_delay = config_.session_reestablish_delay;
  set_link_up(a, b, false);
  // Only restore if no *newer* failure hit the link while we were waiting:
  // a longer-lived link flap injected after this reset owns the recovery.
  const std::uint64_t epoch = link_down_epoch_[key];
  clock_.schedule_after(reestablish_delay, [this, key, epoch] {
    if (link_down_epoch_[key] != epoch) return;
    set_link_up(key.first, key.second, true);
  });
}

void Network::crash_router(Asn asn) {
  Router& r = router(asn);
  if (!crashed_.insert(asn).second) return;  // already down
  // Sessions drop on both sides; marking the link epochs makes any pending
  // session-reset restore yield, and `crashed_` makes deliver() drop
  // whatever is still in flight to or from the dead router.
  for (Asn peer : r.peers()) {
    const std::pair<Asn, Asn> key = std::minmax(asn, peer);
    ++link_down_epoch_[key];
    // peer_restarting honors the graceful-restart negotiation: with GR the
    // peer retains the crashed router's routes as stale; without it this is
    // the cold flush peer_down does.
    if (!failed_links_.contains(key)) router(peer).peer_restarting(asn);
  }
  r.crash();
}

void Network::restart_router(Asn asn) {
  Router& r = router(asn);
  if (crashed_.erase(asn) == 0) return;  // not crashed
  r.restart();
  // Initial route exchange on every operational link (the cold-start
  // re-announcement). Links that are failed, or whose far end is itself
  // crashed, stay down until their own recovery drives peer_up.
  for (Asn peer : r.peers()) {
    if (failed_links_.contains(std::minmax(asn, peer))) continue;
    if (crashed_.contains(peer)) continue;
    r.peer_up(peer);
    // Same tap-reentrancy hazard as set_link_up: the replay can reset the
    // session it is riding on; only bring the far side up if it survived.
    if (failed_links_.contains(std::minmax(asn, peer))) continue;
    router(peer).peer_up(asn);
  }
}

void Network::sever_link_silently(Asn a, Asn b) {
  MOAS_REQUIRE(router(a).has_peer(b), "no such peering");
  const std::pair<Asn, Asn> key = std::minmax(a, b);
  failed_links_.insert(key);
  ++link_down_epoch_[key];
}

void Network::deliver(Asn from, Asn to, Update update) {
  if (!link_up(from, to) || crashed_.contains(from) || crashed_.contains(to)) {
    ++messages_dropped_;
    return;
  }
  ++messages_sent_;
  if (tap_) {
    TapVerdict verdict = tap_(from, to, update);
    switch (verdict.action) {
      case TapVerdict::Action::Drop:
        ++messages_dropped_;
        return;
      case TapVerdict::Action::ResetSession:
        // The receiver decoded garbage: NOTIFICATION + session teardown.
        ++messages_dropped_;
        reset_session(from, to);
        return;
      case TapVerdict::Action::Deliver:
        if (!verdict.deliveries.empty()) {
          for (const Update& replacement : verdict.deliveries) {
            schedule_delivery(from, to, replacement, verdict.extra_delay,
                              verdict.allow_reorder);
          }
          return;
        }
        schedule_delivery(from, to, std::move(update), verdict.extra_delay,
                          verdict.allow_reorder);
        return;
    }
  }
  schedule_delivery(from, to, std::move(update), 0.0, false);
}

void Network::schedule_delivery(Asn from, Asn to, Update update, double extra_delay,
                                bool allow_reorder) {
  const double delay = config_.link_delay + extra_delay +
                       (config_.jitter > 0.0 ? rng_.uniform01() * config_.jitter : 0.0);
  // FIFO per directed link: a BGP session is a TCP stream, so a later
  // update must never overtake an earlier one (an overtaken stale
  // announcement would act as a bogus implicit withdraw at the receiver).
  // The reorder fault deliberately breaks this by bypassing the clamp.
  sim::Time at = clock_.now() + delay;
  auto& last = link_clock_[{from, to}];
  if (!allow_reorder) {
    if (at <= last) at = last + 1e-9;
    last = at;
  } else if (at > last) {
    last = at;
  }
  // Move the update into the event: the sender may mutate its state freely
  // while the message is "on the wire" (we own this copy since deliver()).
  clock_.schedule_at(at, [this, from, to, update = std::move(update)] {
    if (!link_up(from, to)) {  // the link failed while the message was in flight
      ++messages_dropped_;
      return;
    }
    if (crashed_.contains(from) || crashed_.contains(to)) {
      ++messages_dropped_;
      return;
    }
    auto it = routers_.find(to);
    MOAS_ENSURE(it != routers_.end(), "message addressed to unknown router");
    it->second->handle_update(from, update);
  });
}

}  // namespace moas::bgp
