#include "moas/net/prefix_set.h"

#include <algorithm>

namespace moas::net {

PrefixSet::PrefixSet(std::initializer_list<Prefix> prefixes) {
  for (const Prefix& p : prefixes) blocks_.insert(p);
}

bool PrefixSet::insert(const Prefix& prefix) { return blocks_.insert(prefix).second; }

bool PrefixSet::erase(const Prefix& prefix) { return blocks_.erase(prefix) > 0; }

bool PrefixSet::covers(Ipv4Addr addr) const {
  return std::any_of(blocks_.begin(), blocks_.end(),
                     [&](const Prefix& p) { return p.contains(addr); });
}

bool PrefixSet::covers(const Prefix& prefix) const {
  return std::any_of(blocks_.begin(), blocks_.end(),
                     [&](const Prefix& p) { return p.contains(prefix); });
}

void PrefixSet::minimize() {
  bool changed = true;
  while (changed) {
    changed = false;
    // Drop members covered by another member.
    for (auto it = blocks_.begin(); it != blocks_.end();) {
      const bool covered = std::any_of(blocks_.begin(), blocks_.end(), [&](const Prefix& p) {
        return p != *it && p.contains(*it);
      });
      if (covered) {
        it = blocks_.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }
    // Merge sibling pairs into their parent.
    for (auto it = blocks_.begin(); it != blocks_.end();) {
      const Prefix& p = *it;
      if (p.length() == 0) break;
      const Prefix parent = p.parent();
      const auto [left, right] = parent.children();
      const Prefix& sibling = (p == left) ? right : left;
      if (blocks_.contains(sibling)) {
        blocks_.erase(sibling);
        it = blocks_.erase(blocks_.find(p));
        blocks_.insert(parent);
        changed = true;
        it = blocks_.begin();  // iterators invalidated; restart the pass
      } else {
        ++it;
      }
    }
  }
}

std::uint64_t PrefixSet::address_count() const {
  std::uint64_t total = 0;
  for (const Prefix& p : blocks_) total += 1ULL << (32 - p.length());
  return total;
}

}  // namespace moas::net
