#include "moas/net/prefix.h"

#include "moas/util/assert.h"
#include "moas/util/strings.h"

namespace moas::net {

namespace {

constexpr std::uint32_t mask_for(unsigned length) {
  return length == 0 ? 0u : (~0u << (32 - length));
}

}  // namespace

Prefix::Prefix(Ipv4Addr addr, unsigned length) : length_(length) {
  MOAS_REQUIRE(length <= 32, "prefix length must be <= 32");
  network_ = Ipv4Addr(addr.value() & mask_for(length));
}

Ipv4Addr Prefix::netmask() const { return Ipv4Addr(mask_for(length_)); }

bool Prefix::contains(Ipv4Addr addr) const {
  return (addr.value() & mask_for(length_)) == network_.value();
}

bool Prefix::contains(const Prefix& other) const {
  return other.length_ >= length_ && contains(other.network_);
}

bool Prefix::overlaps(const Prefix& other) const {
  return contains(other) || other.contains(*this);
}

Prefix Prefix::parent() const {
  MOAS_REQUIRE(length_ > 0, "/0 has no parent");
  return Prefix(network_, length_ - 1);
}

std::pair<Prefix, Prefix> Prefix::children() const {
  MOAS_REQUIRE(length_ < 32, "/32 has no children");
  const Prefix left(network_, length_ + 1);
  const Prefix right(Ipv4Addr(network_.value() | (1u << (31 - length_))), length_ + 1);
  return {left, right};
}

std::string Prefix::to_string() const {
  return network_.to_string() + "/" + std::to_string(length_);
}

std::optional<Prefix> Prefix::parse(std::string_view s) {
  const auto slash = s.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Addr::parse(s.substr(0, slash));
  if (!addr) return std::nullopt;
  std::uint64_t len = 0;
  if (!util::parse_u64(s.substr(slash + 1), len) || len > 32) return std::nullopt;
  return Prefix(*addr, static_cast<unsigned>(len));
}

}  // namespace moas::net
