#include "moas/net/ipv4.h"

#include "moas/util/strings.h"

namespace moas::net {

std::string Ipv4Addr::to_string() const {
  std::string out;
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (!out.empty()) out += '.';
    out += std::to_string((value_ >> shift) & 0xffu);
  }
  return out;
}

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view s) {
  const auto parts = util::split(s, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t v = 0;
  for (const auto& part : parts) {
    std::uint64_t octet = 0;
    if (!util::parse_u64(part, octet) || octet > 255) return std::nullopt;
    v = (v << 8) | static_cast<std::uint32_t>(octet);
  }
  return Ipv4Addr(v);
}

}  // namespace moas::net
