// IPv4 address prefix (CIDR block) value type.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "moas/net/ipv4.h"

namespace moas::net {

/// A canonical CIDR prefix: network address with all host bits zero, plus a
/// mask length in [0, 32]. Construction normalizes the host bits, so two
/// prefixes covering the same block always compare equal.
class Prefix {
 public:
  /// Default: 0.0.0.0/0.
  constexpr Prefix() = default;

  /// Build from any address inside the block; host bits are cleared.
  Prefix(Ipv4Addr addr, unsigned length);

  Ipv4Addr network() const { return network_; }
  unsigned length() const { return length_; }

  /// Network mask as an address (e.g. /24 -> 255.255.255.0).
  Ipv4Addr netmask() const;

  /// True if the address falls inside this block.
  bool contains(Ipv4Addr addr) const;

  /// True if `other` is equal to or more specific than this block.
  bool contains(const Prefix& other) const;

  /// True if the blocks share any address (one contains the other).
  bool overlaps(const Prefix& other) const;

  /// The immediate parent block (length-1). Requires length > 0.
  Prefix parent() const;

  /// The two halves of this block. Requires length < 32.
  std::pair<Prefix, Prefix> children() const;

  /// "a.b.c.d/len".
  std::string to_string() const;

  /// Parse "a.b.c.d/len"; host bits may be set and are normalized away.
  static std::optional<Prefix> parse(std::string_view s);

  friend auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  Ipv4Addr network_;
  unsigned length_ = 0;
};

}  // namespace moas::net
