// Binary trie keyed by IPv4 prefixes.
//
// Supports the three queries a routing table needs:
//   - exact-match lookup of a prefix,
//   - longest-prefix match of an address (packet forwarding),
//   - enumeration of all entries covered by a block (aggregation, hijack
//     analysis of more-specific announcements).
//
// The trie is a plain (uncompressed) binary trie: depth is bounded by 32,
// so the constant factor is small and the code stays obviously correct.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "moas/net/prefix.h"
#include "moas/util/assert.h"

namespace moas::net {

template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() : root_(std::make_unique<Node>()) {}

  /// Insert or overwrite the value at `prefix`. Returns true if the prefix
  /// was newly inserted, false if an existing value was replaced.
  bool insert(const Prefix& prefix, T value) {
    Node* node = descend_create(prefix);
    const bool fresh = !node->value.has_value();
    node->value = std::move(value);
    if (fresh) ++size_;
    return fresh;
  }

  /// Exact-match lookup.
  const T* find(const Prefix& prefix) const {
    const Node* node = descend(prefix);
    return node && node->value ? &*node->value : nullptr;
  }

  T* find(const Prefix& prefix) {
    Node* node = const_cast<Node*>(descend(prefix));
    return node && node->value ? &*node->value : nullptr;
  }

  /// Longest-prefix match for an address: the most specific stored prefix
  /// containing `addr`, or nullopt.
  std::optional<std::pair<Prefix, const T*>> longest_match(Ipv4Addr addr) const {
    const Node* node = root_.get();
    std::optional<std::pair<Prefix, const T*>> best;
    unsigned depth = 0;
    while (node) {
      if (node->value) best = {Prefix(addr, depth), &*node->value};
      if (depth == 32) break;
      node = node->child[addr.bit(depth)].get();
      ++depth;
    }
    return best;
  }

  /// Remove the entry at `prefix`; returns true if something was removed.
  /// Empty branches are pruned so memory does not grow monotonically.
  bool erase(const Prefix& prefix) {
    return erase_rec(root_.get(), prefix, 0);
  }

  /// Visit every (prefix, value) whose prefix is covered by `block`
  /// (i.e. equal or more specific), in lexicographic order.
  void for_each_covered(const Prefix& block,
                        const std::function<void(const Prefix&, const T&)>& fn) const {
    const Node* node = descend(block);
    if (node) visit(node, block, fn);
  }

  /// Visit every entry in the trie.
  void for_each(const std::function<void(const Prefix&, const T&)>& fn) const {
    visit(root_.get(), Prefix(Ipv4Addr(0), 0), fn);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    root_ = std::make_unique<Node>();
    size_ = 0;
  }

 private:
  struct Node {
    std::optional<T> value;
    std::unique_ptr<Node> child[2];
    bool leaf() const { return !child[0] && !child[1]; }
  };

  const Node* descend(const Prefix& prefix) const {
    const Node* node = root_.get();
    for (unsigned depth = 0; node && depth < prefix.length(); ++depth) {
      node = node->child[prefix.network().bit(depth)].get();
    }
    return node;
  }

  Node* descend_create(const Prefix& prefix) {
    Node* node = root_.get();
    for (unsigned depth = 0; depth < prefix.length(); ++depth) {
      auto& next = node->child[prefix.network().bit(depth)];
      if (!next) next = std::make_unique<Node>();
      node = next.get();
    }
    return node;
  }

  // Returns true if `node` became removable (no value, no children) so the
  // parent can drop the edge.
  bool erase_rec(Node* node, const Prefix& prefix, unsigned depth) {
    if (depth == prefix.length()) {
      if (!node->value) return false;
      node->value.reset();
      --size_;
      return true;
    }
    auto& next = node->child[prefix.network().bit(depth)];
    if (!next) return false;
    if (!erase_rec(next.get(), prefix, depth + 1)) return false;
    if (!next->value && next->leaf()) next.reset();
    return true;
  }

  void visit(const Node* node, const Prefix& at,
             const std::function<void(const Prefix&, const T&)>& fn) const {
    if (node->value) fn(at, *node->value);
    if (at.length() == 32) return;
    const auto [left, right] = at.children();
    if (node->child[0]) visit(node->child[0].get(), left, fn);
    if (node->child[1]) visit(node->child[1].get(), right, fn);
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace moas::net
