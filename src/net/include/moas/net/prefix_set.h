// A set of CIDR blocks with canonical minimization.
//
// Used by the aggregation engine (merging adjacent announcements) and handy
// for filter-list style policy. Minimization removes blocks covered by
// other members and merges sibling pairs into their parent until a fixpoint.
#pragma once

#include <set>
#include <vector>

#include "moas/net/prefix.h"

namespace moas::net {

class PrefixSet {
 public:
  PrefixSet() = default;
  PrefixSet(std::initializer_list<Prefix> prefixes);

  /// Insert a block. Returns false if it was already present (exact match).
  bool insert(const Prefix& prefix);
  bool erase(const Prefix& prefix);

  /// Exact membership.
  bool contains(const Prefix& prefix) const { return blocks_.contains(prefix); }

  /// True if some member covers the address / block.
  bool covers(Ipv4Addr addr) const;
  bool covers(const Prefix& prefix) const;

  /// Canonicalize: drop blocks covered by other members, then merge sibling
  /// pairs into parents, to a fixpoint. After minimization no member covers
  /// another and no two members are mergeable.
  void minimize();

  /// Members in ascending order.
  std::vector<Prefix> prefixes() const { return {blocks_.begin(), blocks_.end()}; }

  std::size_t size() const { return blocks_.size(); }
  bool empty() const { return blocks_.empty(); }
  void clear() { blocks_.clear(); }

  /// Total address space covered (counts overlaps once only if minimized).
  std::uint64_t address_count() const;

  friend auto operator<=>(const PrefixSet&, const PrefixSet&) = default;

 private:
  std::set<Prefix> blocks_;
};

}  // namespace moas::net
