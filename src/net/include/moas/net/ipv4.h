// IPv4 address value type.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace moas::net {

/// An IPv4 address stored as a host-order 32-bit integer.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) |
               std::uint32_t{d}) {}

  constexpr std::uint32_t value() const { return value_; }

  /// Bit i counted from the most significant bit (i == 0 is the top bit).
  constexpr bool bit(unsigned i) const { return (value_ >> (31 - i)) & 1u; }

  /// Dotted-quad "a.b.c.d".
  std::string to_string() const;

  /// Parse dotted-quad; rejects anything else (no shorthand forms).
  static std::optional<Ipv4Addr> parse(std::string_view s);

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace moas::net
