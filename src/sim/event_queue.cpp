#include "moas/sim/event_queue.h"

#include "moas/util/assert.h"

namespace moas::sim {

EventId EventQueue::schedule_at(Time t, std::function<void()> fn) {
  MOAS_REQUIRE(t >= now_, "cannot schedule into the past");
  MOAS_REQUIRE(static_cast<bool>(fn), "event callback must be callable");
  const EventId id = next_id_++;
  heap_.push(Entry{t, id, std::move(fn)});
  pending_ids_.insert(id);
  return id;
}

EventId EventQueue::schedule_after(Time delay, std::function<void()> fn) {
  MOAS_REQUIRE(delay >= 0.0, "delay must be non-negative");
  return schedule_at(now_ + delay, std::move(fn));
}

bool EventQueue::cancel(EventId id) {
  if (pending_ids_.erase(id) == 0) return false;
  cancelled_.insert(id);  // lazily dropped when it reaches the heap top
  return true;
}

bool EventQueue::pop_live(Entry& out) {
  while (!heap_.empty()) {
    // priority_queue::top() is const&; the entry is logically owned by us,
    // so move the callback out before popping.
    Entry& top = const_cast<Entry&>(heap_.top());
    if (cancelled_.erase(top.id) > 0) {
      heap_.pop();
      continue;
    }
    out.at = top.at;
    out.id = top.id;
    out.fn = std::move(top.fn);
    heap_.pop();
    pending_ids_.erase(out.id);
    return true;
  }
  return false;
}

bool EventQueue::step() {
  Entry e;
  if (!pop_live(e)) return false;
  now_ = e.at;
  ++executed_;
  e.fn();
  return true;
}

std::size_t EventQueue::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::size_t EventQueue::run_until(Time until) {
  MOAS_REQUIRE(until >= now_, "cannot run backwards");
  std::size_t n = 0;
  Entry e;
  while (pop_live(e)) {
    if (e.at > until) {
      // Too early to run: requeue unchanged (same id keeps FIFO order).
      pending_ids_.insert(e.id);
      heap_.push(std::move(e));
      break;
    }
    now_ = e.at;
    ++executed_;
    ++n;
    e.fn();
  }
  if (now_ < until) now_ = until;
  return n;
}

}  // namespace moas::sim
