#include "moas/sim/wave_engine.h"

#include <algorithm>
#include <utility>

#include "moas/obs/metrics.h"
#include "moas/util/assert.h"

namespace moas::sim {

WaveEngine::WaveEngine(const topo::AsGraph& graph, Config config)
    : graph_(&graph), config_(config), ranks_(topo::rank_by_customer_cone(graph)) {
  if (config_.max_cycles == 0) config_.max_cycles = graph.node_count() + 16;
  nodes_.reserve(graph.node_count());
  index_.reserve(graph.node_count());
  for (const auto& level : ranks_.levels) {
    auto& indices = level_indices_.emplace_back();
    indices.reserve(level.size());
    for (bgp::Asn asn : level) {
      indices.push_back(static_cast<std::uint32_t>(nodes_.size()));
      index_.emplace(asn, static_cast<std::uint32_t>(nodes_.size()));
      Node& node = nodes_.emplace_back();
      node.rank = ranks_.rank.at(asn);
      node.router = std::make_unique<bgp::Router>(
          asn, config_.mode,
          [this](bgp::Asn from, bgp::Asn to, bgp::Update update) {
            enqueue(from, to, std::move(update));
          },
          /*clock=*/nullptr);
      // Route-age preference is meaningless without arrival times; the
      // deterministic lowest-neighbor-ASN tie-break decides equal-key
      // contests instead (see the header).
      node.router->set_prefer_established(false);
    }
  }
  slots_.reserve(graph.edge_count() * 2);
  slot_of_.reserve(graph.edge_count() * 2);
  for (const auto& edge : graph.edges()) {
    Node& a = nodes_[index_.at(edge.a)];
    Node& b = nodes_[index_.at(edge.b)];
    a.router->add_peer(edge.b, edge.rel_of_b);
    b.router->add_peer(edge.a, bgp::reverse(edge.rel_of_b));
    // One persistent slot per direction, filed under the *receiver's*
    // relationship view of the sender.
    Slot* to_a = slots_.emplace_back(std::make_unique<Slot>()).get();
    to_a->from = edge.b;
    to_a->owner = index_.at(edge.a);
    to_a->bucket_index = static_cast<std::uint8_t>(edge.rel_of_b);
    slot_of_.emplace(edge_key(edge.b, edge.a), to_a);
    a.bucket[to_a->bucket_index].push_back(to_a);
    Slot* to_b = slots_.emplace_back(std::make_unique<Slot>()).get();
    to_b->from = edge.a;
    to_b->owner = index_.at(edge.b);
    to_b->bucket_index = static_cast<std::uint8_t>(bgp::reverse(edge.rel_of_b));
    slot_of_.emplace(edge_key(edge.a, edge.b), to_b);
    b.bucket[to_b->bucket_index].push_back(to_b);
  }
  // Sender-ascending drain order within a bucket (the bit-identical
  // across---jobs contract); edges() order is not that order.
  for (Node& node : nodes_) {
    for (auto& bucket : node.bucket) {
      std::sort(bucket.begin(), bucket.end(),
                [](const Slot* x, const Slot* y) { return x->from < y->from; });
    }
  }
}

bgp::Router& WaveEngine::router(bgp::Asn asn) {
  auto it = index_.find(asn);
  MOAS_REQUIRE(it != index_.end(), "unknown router " + std::to_string(asn));
  return *nodes_[it->second].router;
}

const bgp::Router& WaveEngine::router(bgp::Asn asn) const {
  auto it = index_.find(asn);
  MOAS_REQUIRE(it != index_.end(), "unknown router " + std::to_string(asn));
  return *nodes_[it->second].router;
}

void WaveEngine::enqueue(bgp::Asn from, bgp::Asn to, bgp::Update update) {
  // End-of-RIB only exists on the graceful-restart path, which needs a
  // clock and therefore cannot run here.
  MOAS_ENSURE(update.kind != bgp::Update::Kind::EndOfRib,
              "the wave engine carries no End-of-RIB markers");
  Slot& slot = *slot_of_.at(edge_key(from, to));
  // Tiny linear scan: a slot rarely holds more than a handful of prefixes
  // between sweeps, and this path runs once per message sent.
  for (auto& [prefix, queued] : slot.entries) {
    if (prefix == update.prefix) {
      // A newer update for the same (sender, receiver, prefix) supersedes
      // the queued one — only the final state matters to the fixpoint.
      queued = std::move(update);
      ++collapsed_;
      return;
    }
  }
  if (slot.entries.empty()) ++nodes_[slot.owner].dirty[slot.bucket_index];
  slot.entries.emplace_back(update.prefix, std::move(update));
  ++pending_;
}

void WaveEngine::deliver(Node& node, std::size_t bucket_index) {
  // Two-stage delivery: ingest every sender batch into the Adj-RIB-In
  // first (sender order, then prefix order — deterministic), then run the
  // decision process once per touched prefix. The fixpoint is the same as
  // per-update handle_update() — the decision is a pure function of RIB
  // state — but a router with several senders of the same prefix exports
  // once instead of cascading a transient per sender, which is most of the
  // in-flight traffic a sweep would otherwise collapse downstream.
  dirty_prefixes_.clear();
  // A slot draining here can only refill through our own router's exports,
  // which target *other* nodes — so the dirty count is ours alone for the
  // scan and we can stop as soon as we have drained them all (a core node
  // has hundreds of slots per bucket; late sweeps touch one or two).
  std::uint32_t remaining = node.dirty[bucket_index];
  for (Slot* slot : node.bucket[bucket_index]) {
    if (slot->entries.empty()) continue;
    // Swap the batch out before delivering: import re-exports nothing, but
    // validator purges (invalidate_origins) may re-decide and re-export —
    // into *other* nodes' slots; keeping the iteration independent is cheap
    // and obviously safe. The swap circulates capacity instead of freeing.
    std::swap(slot->entries, scratch_);
    std::sort(scratch_.begin(), scratch_.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    pending_ -= scratch_.size();
    deliveries_ += scratch_.size();
    --node.dirty[bucket_index];
    for (auto& [prefix, update] : scratch_) {
      if (node.router->import_update(slot->from, std::move(update))) {
        dirty_prefixes_.push_back(prefix);
      }
    }
    scratch_.clear();
    if (--remaining == 0) break;
  }
  std::sort(dirty_prefixes_.begin(), dirty_prefixes_.end());
  dirty_prefixes_.erase(std::unique(dirty_prefixes_.begin(), dirty_prefixes_.end()),
                        dirty_prefixes_.end());
  for (const net::Prefix& prefix : dirty_prefixes_) node.router->decide_prefix(prefix);
}

void WaveEngine::sweep(bgp::Relationship from_rel, bool descending) {
  const auto bucket = static_cast<std::size_t>(from_rel);
  if (descending) {
    for (auto level = level_indices_.rbegin(); level != level_indices_.rend(); ++level) {
      for (std::uint32_t i : *level) {
        if (nodes_[i].dirty[bucket] > 0) deliver(nodes_[i], bucket);
      }
    }
  } else {
    for (const auto& level : level_indices_) {
      for (std::uint32_t i : level) {
        if (nodes_[i].dirty[bucket] > 0) deliver(nodes_[i], bucket);
      }
    }
  }
}

void WaveEngine::propagate() {
  while (pending_ > 0) {
    MOAS_ENSURE(cycles_ < config_.max_cycles,
                "wave propagation failed to converge within the cycle cap — "
                "the policy mode admits a persistent oscillation?");
    ++cycles_;
    sweep(bgp::Relationship::Customer, /*descending=*/false);  // up
    sweep(bgp::Relationship::Peer, /*descending=*/false);      // across
    sweep(bgp::Relationship::Provider, /*descending=*/true);   // down
  }
}

void WaveEngine::collect_metrics(obs::MetricsRegistry& registry) const {
  for (const Node& node : nodes_) node.router->collect_metrics(registry);
  registry.count("network.messages_sent", deliveries_);
  registry.count("network.messages_dropped", 0);
  registry.set_gauge("network.routers", static_cast<double>(nodes_.size()));
  registry.set_gauge("network.links", static_cast<double>(graph_->edge_count()));
  registry.count("sim.events_executed", 0);
  registry.count("wave.cycles", cycles_);
  registry.count("wave.updates_collapsed", collapsed_);
}

}  // namespace moas::sim
