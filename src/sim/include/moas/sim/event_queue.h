// Discrete-event simulation engine.
//
// A single-threaded event queue with a virtual clock. Events scheduled for
// the same instant run in scheduling order (stable), which makes simulations
// deterministic for a fixed seed. Events may schedule and cancel further
// events while running.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_set>
#include <vector>

namespace moas::sim {

/// Virtual time in seconds.
using Time = double;

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Current virtual time; advances as events are executed.
  Time now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now()).
  EventId schedule_at(Time t, std::function<void()> fn);

  /// Schedule `fn` at now() + delay (delay must be >= 0).
  EventId schedule_after(Time delay, std::function<void()> fn);

  /// Cancel a pending event. Returns false if it already ran, was already
  /// cancelled, or never existed.
  bool cancel(EventId id);

  /// Run the earliest pending event. Returns false if the queue is empty.
  bool step();

  /// Run events until the queue drains or `max_events` have executed.
  /// Returns the number of events executed. A simulation that fails to
  /// quiesce within the cap is a bug in the model; callers check the count.
  std::size_t run(std::size_t max_events = std::numeric_limits<std::size_t>::max());

  /// Run events with timestamps <= `until` (inclusive); later events stay
  /// queued and now() advances to `until`.
  std::size_t run_until(Time until);

  bool empty() const { return pending_ids_.empty(); }
  std::size_t pending() const { return pending_ids_.size(); }

  /// Total number of events executed over the queue's lifetime.
  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    Time at;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  /// Pops the earliest non-cancelled entry; false if none.
  bool pop_live(Entry& out);

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> pending_ids_;  // scheduled, not cancelled, not run
  std::unordered_set<EventId> cancelled_;    // cancelled but still in heap_
  Time now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace moas::sim
