// Rank-ordered wave propagation: converged Loc-RIBs without the event queue.
//
// The event engine pays for thousands of timed per-message events per run;
// this engine computes the same fixpoint by delivering announcements in
// three deterministic sweeps over the customer→provider rank order
// (topo::rank_by_customer_cone), the BGPExtrapolator propagate_up /
// propagate_down scheme:
//
//   1. up     — ascending rank, each AS ingests what its *customers* sent:
//               one sweep carries a stub origination into the core;
//   2. across — each AS ingests what its *peers* sent;
//   3. down   — descending rank, each AS ingests what its *providers* sent:
//               one sweep carries core routes back out to every stub.
//
// Under Gao–Rexford export policy one up/across/down cycle propagates
// almost everything (valley-free paths climb, cross at most one peer edge,
// then descend); under ShortestPath export (announce to everyone) routes
// also travel customer-ward and the cycle repeats until no announcement is
// in flight. Either way the engine iterates to a fixpoint, so detector
// purges (RouterContext::invalidate_origins) and attacker suppression
// filters settle exactly like they do under the event engine.
//
// Each AS is a real bgp::Router (null clock) — import validation, export
// policy, split horizon, duplicate suppression, export filters, community
// stripping and the decision process are byte-for-byte the event engine's
// code. The one deliberate difference: routers run with
// prefer_established=false, because "which route arrived first" is an
// event-time concept a timeless engine cannot reproduce (DESIGN.md §10).
// In-flight updates are collapsed per (sender, receiver, prefix) — only the
// newest matters, which is what makes one sweep O(edges).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "moas/bgp/router.h"
#include "moas/topo/graph.h"
#include "moas/topo/rank.h"

namespace moas::obs {
class MetricsRegistry;
}

namespace moas::sim {

class WaveEngine {
 public:
  struct Config {
    bgp::PolicyMode mode = bgp::PolicyMode::ShortestPath;
    /// Fixpoint guard: maximum up/across/down cycles before the engine
    /// declares non-convergence (MOAS_ENSURE). 0 = node_count + 16, far
    /// beyond any propagation diameter.
    std::size_t max_cycles = 0;
  };

  /// Builds one router per AS and registers every peering. `graph` must
  /// outlive the engine; its customer-provider relationships must be
  /// acyclic (rank_by_customer_cone rejects the rest).
  WaveEngine(const topo::AsGraph& graph, Config config);

  /// The per-AS router — configure validators, export filters, community
  /// stripping, and originations through it exactly like on a Network
  /// router. Event-time features (MRAI, damping, graceful restart) need a
  /// clock and are rejected by the Router itself.
  bgp::Router& router(bgp::Asn asn);
  const bgp::Router& router(bgp::Asn asn) const;
  bool has_router(bgp::Asn asn) const { return index_.contains(asn); }

  /// Deliver every in-flight announcement in rank-ordered sweeps until
  /// nothing is in flight. Incremental: originate more routes (or purge
  /// some) afterwards and propagate() again to reach the new fixpoint.
  void propagate();

  std::optional<bgp::Asn> best_origin(bgp::Asn asn, const net::Prefix& prefix) const {
    return router(asn).best_origin(prefix);
  }

  const topo::RankAssignment& ranks() const { return ranks_; }
  /// Up/across/down cycles run so far (across all propagate() calls).
  std::size_t cycles() const { return cycles_; }
  /// Updates actually delivered to a router (post-collapse).
  std::uint64_t deliveries() const { return deliveries_; }
  /// Updates superseded in flight by a newer one for the same
  /// (sender, receiver, prefix) before delivery.
  std::uint64_t collapsed() const { return collapsed_; }

  /// Per-router "router.*" counters plus the engine's own: the event
  /// engine's network.messages_sent maps to delivered updates,
  /// sim.events_executed is 0 (there is no event queue), and
  /// wave.cycles / wave.updates_collapsed describe the sweeps.
  void collect_metrics(obs::MetricsRegistry& registry) const;

 private:
  /// One persistent mailbox per directed peering: enqueue resolves a single
  /// hash on the (from, to) pair and appends/overwrites in a small flat
  /// vector whose capacity survives across sweeps — the per-message cost
  /// is an order of magnitude below the map-of-maps this replaces, and in
  /// steady state the engine allocates nothing on the send path.
  struct Slot {
    bgp::Asn from = bgp::kNoAs;
    /// Receiver's node index and bucket, so enqueue can maintain the
    /// receiver's dirty count without a second lookup.
    std::uint32_t owner = 0;
    std::uint8_t bucket_index = 0;
    /// In-flight updates, newest per prefix (unsorted; the drain sorts).
    std::vector<std::pair<net::Prefix, bgp::Update>> entries;
  };

  struct Node {
    std::size_t rank = 0;
    std::unique_ptr<bgp::Router> router;
    /// This node's inbound slots bucketed by the receiver's relationship
    /// view of the sender (index = bgp::Relationship), sender-ascending —
    /// a sweep drains its bucket directly, in deterministic order.
    std::vector<Slot*> bucket[3];
    /// Non-empty slots per bucket: a sweep skips clean nodes outright and
    /// a drain stops scanning once it has seen them all — in late cycles
    /// almost every node is clean, so this is what keeps an
    /// almost-converged sweep cheap.
    std::uint32_t dirty[3] = {0, 0, 0};
  };

  void enqueue(bgp::Asn from, bgp::Asn to, bgp::Update update);
  void deliver(Node& node, std::size_t bucket_index);
  void sweep(bgp::Relationship from_rel, bool descending);

  static std::uint64_t edge_key(bgp::Asn from, bgp::Asn to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  const topo::AsGraph* graph_;
  Config config_;
  topo::RankAssignment ranks_;
  /// Routers in a flat array with an O(1) ASN index: enqueue runs once per
  /// message, and a rank-9752 std::map walk per message was the single
  /// hottest line of the engine.
  std::vector<Node> nodes_;
  std::unordered_map<bgp::Asn, std::uint32_t> index_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::unordered_map<std::uint64_t, Slot*> slot_of_;  // keyed by edge_key
  /// ranks_.levels translated to node indices for sweep iteration.
  std::vector<std::vector<std::uint32_t>> level_indices_;
  /// Drain scratch, swapped with a slot's entries during delivery so a
  /// (theoretical) reentrant enqueue could never invalidate the iteration;
  /// capacities circulate instead of being reallocated.
  std::vector<std::pair<net::Prefix, bgp::Update>> scratch_;
  /// Per-drain list of prefixes whose Adj-RIB-In changed (reused buffer).
  std::vector<net::Prefix> dirty_prefixes_;
  std::size_t pending_ = 0;  // in-flight updates across all slots
  std::size_t cycles_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t collapsed_ = 0;
};

}  // namespace moas::sim
