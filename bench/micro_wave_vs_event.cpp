// Microbenchmark — wave vs event engine: run the same single-attacker
// valid-MOAS scenarios (the paper's fig10(b) panel — two legitimate
// origins announcing one prefix, plus one hijacker) through the
// event-queue simulation and the rank-ordered wave engine, assert the
// adoption outcomes are identical run for run, and emit BENCH_wave.json
// with the per-prefix speedup. Single attacker on purpose: that is the
// regime where the two engines' converged outcomes are provably identical
// (DESIGN.md §10), so the bench doubles as a differential gate at
// full-Internet scale. The valid-MOAS pair is what makes the comparison
// sharp: three competing origins force the event engine through extended
// path hunting (every transient best-path flip re-exports), while the
// wave engine's staged sweeps deliver each peering's *final* update once
// — its delivery count stays pinned near the flood floor no matter how
// contested the prefix is.
//
// Usage:
//   micro_wave_vs_event [--smoke] [--out PATH]
//
// Full mode propagates over the ~10k-AS shared internet and FAILS unless
// the wave engine is >= 10x faster per prefix; --smoke uses the 630-AS
// paper topology and skips the speed gate (sanitizer builds distort
// timings) while keeping the outcome-identity gate. Each placement is
// timed twice per arm and the minimum propagation time kept — machine
// noise on the multi-second event arm otherwise dwarfs the gate margin.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "moas/util/strings.h"

using namespace moas;
using namespace moas::bench;

namespace {

struct Outcome {
  std::size_t population = 0;
  std::size_t adopted_false = 0;
  std::size_t adopted_valid = 0;
  std::size_t no_route = 0;

  friend bool operator==(const Outcome&, const Outcome&) = default;
};

Outcome outcome_of(const core::RunResult& result) {
  return {result.population, result.adopted_false, result.adopted_valid, result.no_route};
}

std::string json_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_wave.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    if (arg == "--out" && i + 1 < argc) out_path = argv[i + 1];
  }

  const topo::AsGraph& graph = smoke ? paper_topology(630) : shared_internet();
  const std::size_t runs = 3;

  core::ExperimentConfig event_config;
  // Two valid origins = the paper's legitimate-MOAS panel (fig9(b)/fig10(b));
  // with the hijacker that is three origins racing for the same prefix.
  event_config.num_origins = 2;
  event_config.deployment = core::Deployment::Full;
  event_config.resolver = core::ResolverKind::Oracle;
  // Route-age tie preference is the one knob the timeless wave engine
  // cannot express; turn it off on the event arm too so the outcomes are
  // comparable with operator== (DESIGN.md §10).
  event_config.prefer_established = false;

  core::ExperimentConfig wave_config = event_config;
  wave_config.engine = core::Engine::Wave;
  wave_config.mrai = 0.0;

  std::cout << "=== Micro: wave vs event engine (" << graph.node_count() << "-AS, "
            << runs << " single-attacker runs" << (smoke ? ", smoke" : "") << ") ===\n\n";

  const core::Experiment event(graph, event_config);
  const core::Experiment wave(graph, wave_config);

  // Placements drawn once, shared by both arms — same victim, same
  // attacker, same run seed.
  struct Placement {
    bgp::AsnSet origins;
    bgp::AsnSet attackers;
    std::uint64_t seed = 0;
  };
  util::Rng rng(19980309);
  std::vector<Placement> placements;
  for (std::size_t i = 0; i < runs; ++i) {
    Placement p;
    p.origins = event.draw_origins(rng);
    p.attackers = event.draw_attackers(1, p.origins, rng);
    p.seed = rng.next();
    placements.push_back(std::move(p));
  }

  // Both arms pay identical scenario setup (routers, detectors, scoring);
  // the engines differ only in how they drive updates to the fixpoint. The
  // per-prefix gate therefore compares RunResult::propagation_seconds — the
  // engine's queue-drain / sweep time alone — while total wall time is
  // reported alongside for context.
  struct ArmTiming {
    double wall_seconds = 0.0;
    double propagation_seconds = 0.0;
  };
  // Runs are deterministic (same placement + seed => same RunResult), so
  // repeating one is purely a timing measurement: keep the minimum
  // propagation time of `reps` runs per placement to strip scheduler noise.
  const std::size_t reps = smoke ? 1 : 2;
  auto run_arm = [&](const core::Experiment& experiment,
                     std::vector<Outcome>& outcomes) {
    ArmTiming timing;
    const auto start = std::chrono::steady_clock::now();
    for (const Placement& p : placements) {
      double best = 0.0;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        const core::RunResult result =
            experiment.run_with(p.origins, p.attackers, p.seed);
        if (rep == 0) {
          best = result.propagation_seconds;
          outcomes.push_back(outcome_of(result));
        } else {
          best = std::min(best, result.propagation_seconds);
        }
      }
      timing.propagation_seconds += best;
    }
    timing.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    return timing;
  };

  std::vector<Outcome> event_outcomes, wave_outcomes;
  const ArmTiming event_timing = run_arm(event, event_outcomes);
  const ArmTiming wave_timing = run_arm(wave, wave_outcomes);
  const bool identical = event_outcomes == wave_outcomes;
  const double speedup = wave_timing.propagation_seconds > 0.0
                             ? event_timing.propagation_seconds / wave_timing.propagation_seconds
                             : 0.0;

  util::TablePrinter table({"engine", "wall_sec", "propagation_sec", "prop_sec_per_prefix"});
  const auto add_arm = [&](const char* name, const ArmTiming& t) {
    table.add_row({name, util::fmt_double(t.wall_seconds, 3),
                   util::fmt_double(t.propagation_seconds, 3),
                   util::fmt_double(t.propagation_seconds / static_cast<double>(runs), 4)});
  };
  add_arm("event", event_timing);
  add_arm("wave", wave_timing);
  table.print(std::cout);
  std::cout << "\npropagation speedup (event/wave): " << util::fmt_double(speedup, 2)
            << "x; outcomes identical: " << (identical ? "yes" : "NO") << "\n";

  std::ofstream out(out_path);
  out << "{\n";
  out << "  \"bench\": \"micro_wave_vs_event\",\n";
  out << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
  out << "  \"topology_ases\": " << graph.node_count() << ",\n";
  out << "  \"runs\": " << runs << ",\n";
  out << "  \"event_wall_seconds\": " << json_double(event_timing.wall_seconds) << ",\n";
  out << "  \"event_propagation_seconds\": " << json_double(event_timing.propagation_seconds)
      << ",\n";
  out << "  \"wave_wall_seconds\": " << json_double(wave_timing.wall_seconds) << ",\n";
  out << "  \"wave_propagation_seconds\": " << json_double(wave_timing.propagation_seconds)
      << ",\n";
  out << "  \"propagation_speedup\": " << json_double(speedup) << ",\n";
  out << "  \"outcomes_identical\": " << (identical ? "true" : "false") << "\n";
  out << "}\n";
  out.close();
  std::cout << "wrote " << out_path << "\n";

  if (!identical) {
    std::cerr << "FAIL: event and wave adoption outcomes diverged on a "
                 "single-attacker run — the engines no longer agree\n";
    return 1;
  }
  if (!smoke && speedup < 10.0) {
    std::cerr << "FAIL: wave propagation is only " << util::fmt_double(speedup, 2)
              << "x faster than the event engine on the full internet "
                 "(gate: >= 10x per prefix)\n";
    return 1;
  }
  return 0;
}
