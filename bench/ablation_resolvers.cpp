// Ablation — alarm resolution back-ends (Section 4.4 and related work):
// the oracle (the simulation-section assumption), a DNS MOASRR service with
// availability/forgery problems, the IRR registry with stale records, and
// no resolver at all (alarm-only monitoring).
#include <iostream>

#include "bench_util.h"
#include "moas/util/strings.h"

using namespace moas;
using namespace moas::bench;

namespace {

core::SweepPoint run(const topo::AsGraph& graph, core::ExperimentConfig config,
                     std::size_t jobs) {
  config.deployment = core::Deployment::Full;
  core::Experiment experiment(graph, config);
  util::Rng rng(5);
  return experiment.run_point(0.15, kOriginSets, kAttackerSets, rng, jobs);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t jobs = bench_jobs(argc, argv);
  const topo::AsGraph& graph = paper_topology(460);

  std::cout << "=== Ablation: origin-resolution back-ends (Sec 4.4) ===\n";
  std::cout << "paper: DNS-based checking is proposed but 'DNS operations rely on the "
               "routing to function correctly' and IRR records are 'outdated or "
               "inaccurate'\n\n";

  util::TablePrinter table({"resolver", "adopting_false_pct", "no_route_pct",
                            "alarms_per_run"});

  {
    core::ExperimentConfig config;
    config.resolver = core::ResolverKind::Oracle;
    const auto p = run(graph, config, jobs);
    table.add_row({"oracle (paper's assumption)",
                   util::fmt_double(p.mean_adopted_false * 100.0, 2),
                   util::fmt_double(p.mean_no_route * 100.0, 2),
                   util::fmt_double(p.mean_alarms, 1)});
  }
  for (double unavail : {0.25, 0.5, 0.9}) {
    core::ExperimentConfig config;
    config.resolver = core::ResolverKind::Dns;
    config.dns_unavailability = unavail;
    const auto p = run(graph, config, jobs);
    table.add_row({"dns, " + util::fmt_double(unavail * 100.0, 0) + "% unavailable",
                   util::fmt_double(p.mean_adopted_false * 100.0, 2),
                   util::fmt_double(p.mean_no_route * 100.0, 2),
                   util::fmt_double(p.mean_alarms, 1)});
  }
  for (double stale : {0.25, 0.75}) {
    core::ExperimentConfig config;
    config.resolver = core::ResolverKind::Irr;
    config.irr_staleness = stale;
    const auto p = run(graph, config, jobs);
    table.add_row({"irr, " + util::fmt_double(stale * 100.0, 0) + "% stale records",
                   util::fmt_double(p.mean_adopted_false * 100.0, 2),
                   util::fmt_double(p.mean_no_route * 100.0, 2),
                   util::fmt_double(p.mean_alarms, 1)});
  }
  {
    core::ExperimentConfig config;
    config.resolver = core::ResolverKind::None;
    const auto p = run(graph, config, jobs);
    table.add_row({"none (alarm-only monitoring)",
                   util::fmt_double(p.mean_adopted_false * 100.0, 2),
                   util::fmt_double(p.mean_no_route * 100.0, 2),
                   util::fmt_double(p.mean_alarms, 1)});
  }
  table.print(std::cout);
  std::cout << "\ndetection is only as good as conflict resolution: a degraded DNS or "
               "stale IRR pushes the residual toward the alarm-only (plain-BGP-like) "
               "level, while alarms keep firing either way.\n";
  return 0;
}
