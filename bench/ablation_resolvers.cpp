// Ablation — alarm resolution back-ends (Section 4.4 and related work):
// the oracle (the simulation-section assumption), a DNS MOASRR service with
// availability/forgery problems, the IRR registry with stale records, and
// no resolver at all (alarm-only monitoring). The second section replays a
// seeded registry-outage schedule against the asynchronous resolution path
// and gates the fault-tolerance contract: no alarm lost, bounded settle
// latency, hardened strictly better than naive fail-fast.
#include <iostream>
#include <numeric>

#include "bench_util.h"
#include "moas/util/strings.h"

using namespace moas;
using namespace moas::bench;

namespace {

core::SweepPoint run(const topo::AsGraph& graph, core::ExperimentConfig config,
                     std::size_t jobs) {
  config.deployment = core::Deployment::Full;
  core::Experiment experiment(graph, config);
  util::Rng rng(5);
  return experiment.run_point(0.15, kOriginSets, kAttackerSets, rng, jobs);
}

struct ArmResult {
  core::SweepPoint point;
  std::vector<core::RunResult> runs;

  std::size_t total(std::size_t core::RunResult::* field) const {
    return std::accumulate(runs.begin(), runs.end(), std::size_t{0},
                           [&](std::size_t sum, const core::RunResult& r) {
                             return sum + r.*field;
                           });
  }
  double mean_settle_latency() const {
    const obs::FixedHistogram* settle =
        point.metrics.find_histogram("detector.alarm_settle_latency");
    return settle == nullptr ? 0.0 : settle->mean();
  }
  std::string outage_schedule() const {
    std::string all;
    for (const core::RunResult& r : runs) all += r.outage_log;
    return all;
  }
};

/// Like run(), but keeps the per-run results so the gates can look at alarm
/// lifecycles and outage replay logs, not just point means.
ArmResult run_arm(const topo::AsGraph& graph, core::ExperimentConfig config,
                  std::size_t jobs) {
  config.deployment = core::Deployment::Full;
  core::Experiment experiment(graph, config);
  util::Rng rng(5);
  const core::SweepPlan plan =
      experiment.plan_sweep({0.15}, kOriginSets, kAttackerSets, rng);
  util::ThreadPool pool(jobs);
  ArmResult arm;
  arm.runs = experiment.execute_plan(plan, pool);
  arm.point = experiment.reduce_plan(plan, arm.runs).front();
  return arm;
}

/// The DNS-under-outage scenario every outage-regime arm shares: a flaky
/// DNS MOASRR backend, and (when `with_outage`) seeded registry outage
/// windows plus latency spikes replayed against the resolution chain.
core::ExperimentConfig outage_scenario(bool with_outage) {
  core::ExperimentConfig config;
  config.resolver = core::ResolverKind::Dns;
  config.dns_unavailability = 0.3;
  config.trace_level = obs::TraceLevel::Summary;
  if (with_outage) {
    chaos::RegistryOutageConfig outage;
    outage.outages = 8.0;
    outage.outage_mean = 12.0;
    outage.spikes = 3.0;
    outage.spike_factor = 5.0;
    config.registry_outage = outage;
  }
  return config;
}

core::AsyncResolver::Config hardened_async() {
  return core::AsyncResolver::Config{};  // retries + breaker + stale cache on
}

core::AsyncResolver::Config naive_async() {
  core::AsyncResolver::Config config;
  config.source.max_attempts = 1;     // no retries
  config.source.breaker_threshold = 0;  // no breaker
  config.stale_cache = false;         // no last-resort answers
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t jobs = bench_jobs(argc, argv);
  const topo::AsGraph& graph = paper_topology(460);

  std::cout << "=== Ablation: origin-resolution back-ends (Sec 4.4) ===\n";
  std::cout << "paper: DNS-based checking is proposed but 'DNS operations rely on the "
               "routing to function correctly' and IRR records are 'outdated or "
               "inaccurate'\n\n";

  util::TablePrinter table({"resolver", "adopting_false_pct", "no_route_pct",
                            "alarms_per_run"});

  {
    core::ExperimentConfig config;
    config.resolver = core::ResolverKind::Oracle;
    const auto p = run(graph, config, jobs);
    table.add_row({"oracle (paper's assumption)",
                   util::fmt_double(p.mean_adopted_false * 100.0, 2),
                   util::fmt_double(p.mean_no_route * 100.0, 2),
                   util::fmt_double(p.mean_alarms, 1)});
  }
  for (double unavail : {0.25, 0.5, 0.9}) {
    core::ExperimentConfig config;
    config.resolver = core::ResolverKind::Dns;
    config.dns_unavailability = unavail;
    const auto p = run(graph, config, jobs);
    table.add_row({"dns, " + util::fmt_double(unavail * 100.0, 0) + "% unavailable",
                   util::fmt_double(p.mean_adopted_false * 100.0, 2),
                   util::fmt_double(p.mean_no_route * 100.0, 2),
                   util::fmt_double(p.mean_alarms, 1)});
  }
  for (double stale : {0.25, 0.75}) {
    core::ExperimentConfig config;
    config.resolver = core::ResolverKind::Irr;
    config.irr_staleness = stale;
    const auto p = run(graph, config, jobs);
    table.add_row({"irr, " + util::fmt_double(stale * 100.0, 0) + "% stale records",
                   util::fmt_double(p.mean_adopted_false * 100.0, 2),
                   util::fmt_double(p.mean_no_route * 100.0, 2),
                   util::fmt_double(p.mean_alarms, 1)});
  }
  {
    core::ExperimentConfig config;
    config.resolver = core::ResolverKind::None;
    const auto p = run(graph, config, jobs);
    table.add_row({"none (alarm-only monitoring)",
                   util::fmt_double(p.mean_adopted_false * 100.0, 2),
                   util::fmt_double(p.mean_no_route * 100.0, 2),
                   util::fmt_double(p.mean_alarms, 1)});
  }
  table.print(std::cout);
  std::cout << "\ndetection is only as good as conflict resolution: a degraded DNS or "
               "stale IRR pushes the residual toward the alarm-only (plain-BGP-like) "
               "level, while alarms keep firing either way.\n";

  std::cout << "\n=== Outage regime: asynchronous resolution under registry outages ===\n";
  std::cout << "seeded outage windows take the registry sources down while conflicts "
               "are in flight; 'hardened' rides them out with retries, a circuit "
               "breaker, an IRR fallback and a stale cache, 'fail-fast' gives each "
               "conflict a single attempt.\n\n";

  core::ExperimentConfig baseline_config = outage_scenario(/*with_outage=*/false);
  baseline_config.async_resolution = hardened_async();
  baseline_config.async_fallback_irr = true;
  const ArmResult baseline = run_arm(graph, baseline_config, jobs);

  core::ExperimentConfig naive_config = outage_scenario(/*with_outage=*/true);
  naive_config.async_resolution = naive_async();
  const ArmResult naive = run_arm(graph, naive_config, jobs);

  core::ExperimentConfig hardened_config = outage_scenario(/*with_outage=*/true);
  hardened_config.async_resolution = hardened_async();
  hardened_config.async_fallback_irr = true;
  const ArmResult hardened = run_arm(graph, hardened_config, jobs);

  util::TablePrinter outage_table({"arm", "adopted_false", "expired_alarms",
                                   "pending_alarms", "settle_mean_s"});
  const auto add_arm = [&](const std::string& label, const ArmResult& arm) {
    outage_table.add_row({label,
                          std::to_string(arm.total(&core::RunResult::adopted_false)),
                          std::to_string(arm.total(&core::RunResult::alarms_expired)),
                          std::to_string(arm.total(&core::RunResult::alarms_pending)),
                          util::fmt_double(arm.mean_settle_latency(), 3)});
  };
  add_arm("hardened, no outage", baseline);
  add_arm("fail-fast + outage", naive);
  add_arm("hardened + outage", hardened);
  outage_table.print(std::cout);

  // Gate 1 — zero lost alarms: every alarm settles (Resolved or Expired) by
  // quiescence in every arm; a Pending alarm at the end is a silent drop.
  bool ok = true;
  for (const auto* arm : {&baseline, &naive, &hardened}) {
    if (arm->total(&core::RunResult::alarms_pending) != 0) {
      std::cerr << "FAIL: pending alarms survived to quiescence — an alarm was "
                   "silently dropped\n";
      ok = false;
    }
  }

  // Gate 2 — the comparison is fair: both outage arms replayed byte-identical
  // outage schedules (same seeds, same windows).
  if (naive.outage_schedule() != hardened.outage_schedule() ||
      naive.outage_schedule().empty()) {
    std::cerr << "FAIL: outage arms saw different (or empty) fault schedules — the "
                 "hardening comparison is meaningless\n";
    ok = false;
  }

  // Gate 3 — hardening pays: under the identical outage schedule, the
  // hardened chain must strictly beat naive fail-fast on residual damage.
  const std::size_t naive_false = naive.total(&core::RunResult::adopted_false);
  const std::size_t hardened_false = hardened.total(&core::RunResult::adopted_false);
  if (hardened_false >= naive_false) {
    std::cerr << "FAIL: hardened resolution (" << hardened_false
              << " adopted-false) is not strictly better than fail-fast ("
              << naive_false << ") under the same outage schedule\n";
    ok = false;
  }

  // Gate 4 — bounded inflation: riding out outages may delay settlement, but
  // never by more than the per-request deadline on average.
  const double budget = hardened_config.async_resolution->request_deadline;
  if (hardened.mean_settle_latency() > baseline.mean_settle_latency() + budget) {
    std::cerr << "FAIL: outage inflated mean settle latency from "
              << baseline.mean_settle_latency() << "s to "
              << hardened.mean_settle_latency() << "s — beyond the " << budget
              << "s request deadline\n";
    ok = false;
  }

  if (!ok) return 1;
  std::cout << "\ngates passed: no alarm lost in any arm, identical outage schedules "
               "across arms, hardened < fail-fast on adopted-false ("
            << hardened_false << " vs " << naive_false
            << "), settle-latency inflation within the request deadline.\n";
  return 0;
}
