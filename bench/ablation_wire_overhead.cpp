// Ablation — byte cost of the MOAS list (Section 4.3): "The attachment of
// a MOAS list also adds to the overall size of the routing table and route
// announcements ... about 99% of all MOAS cases involve 3 or fewer origin
// ASes. Thus the MOAS list itself should be relatively short."
//
// Measured with the real RFC 4271 wire encoding, plus the table-wide cost
// for a 2001-scale table (~100k routes, <3000 of them multi-origin).
#include <iostream>

#include "moas/bgp/wire.h"
#include "moas/core/moas_list.h"
#include "moas/util/strings.h"
#include "moas/util/table.h"

using namespace moas;

namespace {

std::size_t update_size(std::size_t n_origins) {
  bgp::Route route;
  route.prefix = *net::Prefix::parse("135.38.0.0/16");
  route.attrs.path = bgp::AsPath({701, 1239, 4006});
  if (n_origins > 0) {
    bgp::AsnSet origins;
    for (std::size_t i = 0; i < n_origins; ++i) {
      origins.insert(static_cast<bgp::Asn>(4006 + i));
    }
    route.attrs.communities = core::encode_moas_list(origins);
  }
  return bgp::wire::encode_sim_update(bgp::Update::announce(route)).size();
}

}  // namespace

int main() {
  std::cout << "=== Ablation: wire-format overhead of the MOAS list (Sec 4.3) ===\n\n";

  util::TablePrinter table({"moas_list_size", "update_bytes", "overhead_bytes",
                            "overhead_pct"});
  const std::size_t bare = update_size(0);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3},
                        std::size_t{5}, std::size_t{10}}) {
    const std::size_t size = update_size(n);
    table.add_row({n == 0 ? "(none)" : std::to_string(n) + " origins",
                   std::to_string(size), std::to_string(size - bare),
                   util::fmt_double(100.0 * static_cast<double>(size - bare) /
                                        static_cast<double>(bare),
                                    1)});
  }
  table.print(std::cout);

  // Routing-table level: the paper's measurements — <3000 multi-origin
  // routes in a ~100k-route table, 96.14% with 2 origins, 2.7% with 3.
  const double moas_routes = 3000.0;
  const double extra = moas_routes * (0.9614 * static_cast<double>(update_size(2) - bare) +
                                      0.027 * static_cast<double>(update_size(3) - bare) +
                                      0.0116 * static_cast<double>(update_size(4) - bare));
  std::cout << "\ntable-wide cost for a 2001-scale table (~100k routes, <3000 "
               "multi-origin):\n  "
            << util::fmt_double(extra / 1024.0, 1)
            << " KiB extra — negligible against a multi-megabyte full table.\n";
  return 0;
}
