// Section 3 headline statistics — the numbers the paper quotes in prose,
// regenerated from the synthetic trace and printed paper-vs-measured.
#include <iostream>

#include "moas/measure/observer.h"
#include "moas/measure/report.h"
#include "moas/measure/trace_gen.h"
#include "moas/util/rng.h"

using namespace moas;

int main() {
  util::Rng rng(1997);
  const measure::SyntheticTrace trace = measure::generate_trace(measure::TraceConfig{}, rng);
  measure::MoasObserver observer;
  observer.ingest_all(trace);

  std::cout << "=== Section 3: MOAS measurement statistics (paper vs this trace) ===\n\n";
  measure::sec3_table(observer.summarize()).print(std::cout);

  // Ground-truth composition (what the observer cannot see): how many of
  // the synthetic cases were valid operational MOAS vs faults.
  std::size_t valid = 0;
  for (const auto& c : trace.cases) {
    if (c.valid()) ++valid;
  }
  std::cout << "\nground truth: " << valid << " of " << trace.cases.size()
            << " cases are valid operational MOAS (multi-homing / ASE / exchange "
               "points); the rest are faults\n";
  return 0;
}
