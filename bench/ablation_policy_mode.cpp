// Ablation — routing policy sensitivity: the paper's SSFnet runs use plain
// shortest-path BGP. Do the conclusions survive Gao-Rexford (valley-free,
// customer-preferred) policies? Valley-free export constrains where both
// the valid and the false announcements can travel.
#include <iostream>

#include "bench_util.h"
#include "moas/util/strings.h"

using namespace moas;
using namespace moas::bench;

int main(int argc, char** argv) {
  const std::size_t jobs = bench_jobs(argc, argv);
  const topo::AsGraph& graph = paper_topology(460);

  std::cout << "=== Ablation: shortest-path vs Gao-Rexford policy ===\n\n";

  util::TablePrinter table(
      {"policy", "deployment", "adopting_false_pct", "no_route_pct", "msgs_factor"});
  double baseline_msgs = 0.0;
  for (auto mode : {bgp::PolicyMode::ShortestPath, bgp::PolicyMode::GaoRexford}) {
    for (auto deployment : {core::Deployment::None, core::Deployment::Full}) {
      core::ExperimentConfig config;
      config.policy = mode;
      config.deployment = deployment;
      core::Experiment experiment(graph, config);
      util::Rng rng(17);
      // Single representative point; also average message counts by hand.
      // Plan (draw placements + seeds serially), execute across the pool,
      // reduce in plan order — same structure as Experiment::sweep.
      const std::size_t runs = 9;
      std::vector<core::PlannedRun> plan(runs);
      for (core::PlannedRun& planned : plan) {
        planned.origins = experiment.draw_origins(rng);
        planned.attackers = experiment.draw_attackers(
            static_cast<std::size_t>(0.15 * static_cast<double>(graph.node_count())),
            planned.origins, rng);
        planned.seed = rng.next();
      }
      std::vector<core::RunResult> results(runs);
      util::ThreadPool pool(jobs);
      pool.parallel_for(runs, [&](std::size_t i) {
        results[i] =
            experiment.run_with(plan[i].origins, plan[i].attackers, plan[i].seed);
      });
      double adopted = 0.0;
      double noroute = 0.0;
      double msgs = 0.0;
      for (const core::RunResult& result : results) {
        adopted += result.adopted_false_fraction();
        noroute += result.no_route_fraction();
        msgs += static_cast<double>(result.messages);
      }
      adopted /= static_cast<double>(runs);
      noroute /= static_cast<double>(runs);
      msgs /= static_cast<double>(runs);
      if (baseline_msgs == 0.0) baseline_msgs = msgs;
      table.add_row({to_string(mode), core::to_string(deployment),
                     util::fmt_double(adopted * 100.0, 2),
                     util::fmt_double(noroute * 100.0, 2),
                     util::fmt_double(msgs / baseline_msgs, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nthe detection benefit is policy-robust; valley-free export narrows "
               "propagation (fewer messages) and changes who can even hear the false "
               "route, but full detection still collapses adoption.\n";
  return 0;
}
