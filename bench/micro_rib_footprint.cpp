// Microbenchmark — RIB memory footprint at multi-prefix scale: run the
// multi-prefix workload (core::run_multi_prefix) on a large topology,
// account the converged routing state two ways, and emit BENCH_rib.json:
//
//   interned   — what the process actually holds: the compact FlatMap RIB
//                containers (MultiPrefixResult::rib_bytes) plus the
//                interning pools (bgp::intern::pool_stats), counted once —
//                shared path/MOAS-list data is stored exactly once no
//                matter how many RIB entries point at it.
//   baseline   — the pre-interning layout, modeled per entry in the SAME
//                run (MultiPrefixResult::baseline_rib_bytes): private deep
//                attribute copies, inline vector-header attributes, and
//                std::map red-black nodes. The model is conservative
//                (malloc chunk overhead ignored), so a pass here
//                understates the real win.
//
// --gate fails the bench unless interned bytes/route is strictly below
// baseline bytes/route, and (full mode only) routes/sec stays above a
// conservative floor. Full mode's ASNs straddle the 2-octet boundary by
// construction, so the gate also proves the post-AS4 pipeline carries
// >65,535-AS workloads end to end.
//
// Usage:
//   micro_rib_footprint [--smoke] [--gate] [--out PATH]
//
// --smoke shrinks the workload (the 630-AS paper topology, 64 prefixes) so
// the ASan CI subset finishes in seconds; full mode runs >=20k ASes x
// >=1024 prefixes.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "bench_util.h"
#include "moas/bgp/intern.h"
#include "moas/core/multi_prefix.h"
#include "moas/topo/gen_internet.h"
#include "moas/util/strings.h"
#include "moas/util/table.h"

using namespace moas;
using namespace moas::bench;

namespace {

/// Full-mode throughput floor (converged Loc-RIB routes per second of wave
/// propagation). Deliberately far below any observed single-core figure —
/// it exists to catch order-of-magnitude regressions, not scheduler noise.
constexpr double kRoutesPerSecFloor = 200.0;

std::string json_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool gate = false;
  std::string out_path = "BENCH_rib.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    if (arg == "--gate") gate = true;
    if (arg == "--out" && i + 1 < argc) out_path = argv[i + 1];
  }

  // Full mode generates its own >=20k-AS topology with ASNs starting below
  // and ending far above the 2-octet boundary — every path through the core
  // mixes narrow and wide ASNs, so a surviving 16-bit assumption aborts
  // here, not in production.
  const topo::AsGraph* graph = nullptr;
  topo::AsGraph generated;
  core::MultiPrefixConfig workload;
  if (smoke) {
    graph = &paper_topology(630);
    workload.num_prefixes = 64;
    workload.block_size = 16;
    workload.attacked_fraction = 0.5;
  } else {
    topo::InternetConfig internet;
    internet.tier1 = 12;
    internet.tier2 = 288;
    internet.tier3 = 700;
    internet.stubs = 19'200;      // 20,200 ASes total
    internet.first_asn = 60'000;  // ASNs 60,000..80,199 straddle 65,535
    util::Rng topo_rng(0xf00d);
    generated = topo::generate_internet(internet, topo_rng);
    graph = &generated;
    workload.num_prefixes = 1'024;
    workload.block_size = 128;
    workload.attacked_fraction = 0.25;
  }
  workload.origins_per_prefix = 2;  // every prefix carries a MOAS list
  workload.seed = 0x51b5;

  std::cout << "=== Micro: RIB footprint (" << graph->node_count() << "-AS, "
            << workload.num_prefixes << " prefixes" << (smoke ? ", smoke" : "")
            << ") ===\n\n";

  const core::MultiPrefixResult result = core::run_multi_prefix(*graph, workload);
  const bgp::intern::PoolStats pools = bgp::intern::pool_stats();

  const std::size_t interned_bytes = result.rib_bytes + pools.total_bytes();
  const double routes = static_cast<double>(result.rib_entries);
  const double interned_per_route = interned_bytes / routes;
  const double baseline_per_route = result.baseline_rib_bytes / routes;
  const double routes_per_sec =
      result.propagation_seconds > 0.0
          ? static_cast<double>(result.routes_installed) / result.propagation_seconds
          : 0.0;

  util::TablePrinter table({"metric", "value"});
  table.add_row({"ASes", std::to_string(graph->node_count())});
  table.add_row({"prefixes", std::to_string(result.prefixes)});
  table.add_row({"attacked", std::to_string(result.attacked)});
  table.add_row({"blocks", std::to_string(result.blocks)});
  table.add_row({"rib entries", std::to_string(result.rib_entries)});
  table.add_row({"loc-rib routes", std::to_string(result.routes_installed)});
  table.add_row({"alarms", std::to_string(result.alarms)});
  table.add_row({"interned MB", util::fmt_double(interned_bytes / 1048576.0, 1)});
  table.add_row({"baseline MB",
                 util::fmt_double(result.baseline_rib_bytes / 1048576.0, 1)});
  table.add_row({"interned B/route", util::fmt_double(interned_per_route, 1)});
  table.add_row({"baseline B/route", util::fmt_double(baseline_per_route, 1)});
  table.add_row({"routes/sec", util::fmt_double(routes_per_sec, 1)});
  table.add_row({"propagation sec", util::fmt_double(result.propagation_seconds, 2)});
  table.print(std::cout);

  const unsigned hardware = std::thread::hardware_concurrency();
  std::ofstream out(out_path);
  out << "{\n";
  out << "  \"bench\": \"micro_rib_footprint\",\n";
  out << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
  out << "  \"topology_ases\": " << graph->node_count() << ",\n";
  out << "  \"first_asn\": " << (smoke ? 1 : 60'000) << ",\n";
  out << "  \"prefixes\": " << result.prefixes << ",\n";
  out << "  \"attacked_prefixes\": " << result.attacked << ",\n";
  out << "  \"blocks\": " << result.blocks << ",\n";
  out << "  \"rib_entries\": " << result.rib_entries << ",\n";
  out << "  \"loc_rib_routes\": " << result.routes_installed << ",\n";
  out << "  \"alarms\": " << result.alarms << ",\n";
  out << "  \"false_alarms\": " << result.false_alarms << ",\n";
  out << "  \"adopted_false_fraction\": " << json_double(result.adopted_false_fraction())
      << ",\n";
  out << "  \"interned_bytes\": " << interned_bytes << ",\n";
  out << "  \"rib_container_bytes\": " << result.rib_bytes << ",\n";
  out << "  \"pool_bytes\": " << pools.total_bytes() << ",\n";
  out << "  \"pool_paths\": " << pools.paths.entries << ",\n";
  out << "  \"pool_community_sets\": " << pools.community_sets.entries << ",\n";
  out << "  \"pool_large_community_sets\": " << pools.large_community_sets.entries
      << ",\n";
  out << "  \"baseline_bytes\": " << result.baseline_rib_bytes << ",\n";
  out << "  \"interned_bytes_per_route\": " << json_double(interned_per_route) << ",\n";
  out << "  \"baseline_bytes_per_route\": " << json_double(baseline_per_route) << ",\n";
  out << "  \"routes_per_sec\": " << json_double(routes_per_sec) << ",\n";
  out << "  \"propagation_seconds\": " << json_double(result.propagation_seconds) << ",\n";
  out << "  \"hardware_concurrency\": " << hardware << ",\n";
  if (hardware <= 1) {
    // Annotate single-core baselines in the artifact itself, per the
    // BENCH_* convention: absolute throughput on one core is not
    // comparable to the multicore CI artifact.
    out << "  \"note\": \"1-core baseline: routes/sec reflects a single core; "
           "compare against the multicore CI artifact for real throughput\",\n";
  }
  out << "  \"routes_per_sec_floor\": " << json_double(kRoutesPerSecFloor) << "\n";
  out << "}\n";
  out.close();
  std::cout << "\nwrote " << out_path << " (hardware_concurrency=" << hardware << ")\n";

  if (gate) {
    bool ok = true;
    if (!(interned_per_route < baseline_per_route)) {
      std::cerr << "FAIL: interned bytes/route (" << interned_per_route
                << ") is not below the un-interned baseline (" << baseline_per_route
                << ") — the memory model regressed\n";
      ok = false;
    }
    if (!smoke && routes_per_sec < kRoutesPerSecFloor) {
      std::cerr << "FAIL: " << routes_per_sec << " routes/sec is below the "
                << kRoutesPerSecFloor << " floor\n";
      ok = false;
    }
    if (result.alarms == 0 && result.attacked > 0) {
      std::cerr << "FAIL: an attacked multi-prefix run raised no alarms\n";
      ok = false;
    }
    if (!ok) return 1;
    std::cout << "gate: interned " << util::fmt_double(interned_per_route, 1)
              << " B/route < baseline " << util::fmt_double(baseline_per_route, 1)
              << " B/route; " << result.alarms << " alarms raised\n";
  }
  return 0;
}
