// Ablation — attacker placement: the paper notes that "attackers may have a
// higher probability to block more valid routes if they are located in
// transit ASes [while] compromise of a stub AS is less valuable". Compare
// random placement against stub-only and transit-only attacker pools.
#include <iostream>

#include "bench_util.h"
#include "moas/util/strings.h"

using namespace moas;
using namespace moas::bench;

int main(int argc, char** argv) {
  const std::size_t jobs = bench_jobs(argc, argv);
  const topo::AsGraph& graph = paper_topology(460);

  std::cout << "=== Ablation: attacker placement (stub vs transit) ===\n\n";

  util::TablePrinter table({"placement", "deployment", "affected_pct",
                            "structural_cutoff_pct"});
  for (auto [placement, label] :
       {std::pair{core::AttackerPlacement::StubsOnly, "stubs-only"},
        std::pair{core::AttackerPlacement::Anywhere, "anywhere"},
        std::pair{core::AttackerPlacement::TransitOnly, "transit-only"}}) {
    for (auto deployment : {core::Deployment::None, core::Deployment::Full}) {
      core::ExperimentConfig config;
      config.placement = placement;
      config.deployment = deployment;
      core::Experiment experiment(graph, config);
      util::Rng rng(11);
      const auto point = experiment.run_point(0.10, kOriginSets, kAttackerSets, rng, jobs);
      table.add_row({label, core::to_string(deployment),
                     util::fmt_double(point.mean_affected * 100.0, 2),
                     util::fmt_double(point.mean_structural_cutoff * 100.0, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\ntransit attackers cut off far more of the network (higher structural "
               "cutoff), so even full detection retains a larger residual; stub "
               "attackers are nearly harmless once detection is deployed.\n";
  return 0;
}
