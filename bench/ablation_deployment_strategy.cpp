// Extension — WHO should deploy first? The paper's Experiment 3 deploys
// checking at a random half of the ASes. An operator can do better:
// deploying at the biggest transit ASes first blocks false-route
// propagation for everyone behind them. Compare deployment planners at
// several deployment levels.
#include <iostream>

#include "bench_util.h"
#include "moas/core/planner.h"
#include "moas/topo/route_views.h"
#include "moas/util/stats.h"
#include "moas/util/strings.h"

using namespace moas;
using namespace moas::bench;

namespace {

/// Run the partial-deployment experiment with an explicit capable set.
double adoption_with_deployment(const topo::AsGraph& graph, const bgp::AsnSet& capable,
                                double attacker_fraction, std::uint64_t seed,
                                std::size_t jobs) {
  // run_with() derives deployment internally for Random; for planned sets
  // we emulate Partial deployment by running Experiment with Full
  // deployment on a copy where non-capable nodes use plain BGP. The
  // Experiment API samples deployment itself, so here we drive the network
  // manually through Experiment's building blocks — same plan → execute →
  // reduce shape: all draws happen serially up front, the self-contained
  // runs fan out across the pool, and the reduction replays plan order.
  core::ExperimentConfig config;
  config.deployment = core::Deployment::None;  // validators installed below
  core::Experiment experiment(graph, config);
  util::Rng rng(seed);

  struct PlannedCell {
    bgp::AsnSet origins;
    bgp::AsnSet attackers;
    std::vector<double> origin_delays;    // in origins iteration order
    std::vector<double> attacker_delays;  // in attackers iteration order
  };
  constexpr std::size_t kRuns = 9;
  std::vector<PlannedCell> plan(kRuns);
  for (PlannedCell& cell : plan) {
    cell.origins = experiment.draw_origins(rng);
    const std::size_t n_attackers = static_cast<std::size_t>(
        attacker_fraction * static_cast<double>(graph.node_count()));
    cell.attackers = experiment.draw_attackers(n_attackers, cell.origins, rng);
    for (std::size_t i = 0; i < cell.origins.size(); ++i) {
      cell.origin_delays.push_back(rng.uniform01() * 0.5);
    }
    for (std::size_t i = 0; i < cell.attackers.size(); ++i) {
      cell.attacker_delays.push_back(rng.uniform01() * 0.5);
    }
  }

  std::vector<double> fractions(kRuns, 0.0);
  util::ThreadPool pool(jobs);
  pool.parallel_for(kRuns, [&](std::size_t run) {
    const PlannedCell& cell = plan[run];
    const bgp::AsnSet& origins = cell.origins;
    const bgp::AsnSet& attackers = cell.attackers;

    // Build the network exactly as Experiment does, then overlay detectors
    // on the planned capable set.
    bgp::Network network;
    for (bgp::Asn asn : graph.nodes()) network.add_router(asn);
    for (const auto& edge : graph.edges()) network.connect(edge.a, edge.b, edge.rel_of_b);

    const net::Prefix victim = topo::prefix_for_asn(*origins.begin());
    auto truth = std::make_shared<core::PrefixOriginDb>();
    truth->set(victim, origins);
    auto resolver = std::make_shared<core::OracleResolver>(truth);
    auto alarms = std::make_shared<core::AlarmLog>();
    for (bgp::Asn asn : capable) {
      if (attackers.contains(asn)) continue;
      network.router(asn).set_validator(
          std::make_shared<core::MoasDetector>(alarms, resolver));
    }

    std::size_t delay = 0;
    for (bgp::Asn origin : origins) {
      network.clock().schedule_after(cell.origin_delays[delay++],
                                     [&network, origin, victim] {
                                       network.router(origin).originate(victim);
                                     });
    }
    delay = 0;
    for (bgp::Asn attacker : attackers) {
      core::AttackPlan plan_for_attacker;
      plan_for_attacker.attacker = attacker;
      plan_for_attacker.target = victim;
      plan_for_attacker.valid_origins = origins;
      network.clock().schedule_after(cell.attacker_delays[delay++],
                                     [&network, plan_for_attacker] {
                                       core::launch_attack(network, plan_for_attacker);
                                     });
    }
    network.run_to_quiescence();

    std::size_t fooled = 0;
    std::size_t population = 0;
    for (bgp::Asn asn : graph.nodes()) {
      if (attackers.contains(asn)) continue;
      ++population;
      const auto origin = network.router(asn).best_origin(victim);
      if (origin && attackers.contains(*origin)) ++fooled;
    }
    fractions[run] = static_cast<double>(fooled) / static_cast<double>(population);
  });

  util::Accumulator adopted;
  for (double fraction : fractions) adopted.add(fraction);
  return adopted.mean();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t jobs = bench_jobs(argc, argv);
  const topo::AsGraph& graph = paper_topology(460);

  std::cout << "=== Extension: deployment placement strategies (Experiment 3 redux) ===\n";
  std::cout << "random = the paper's partial deployment; informed placement protects "
               "far more per deployed AS\n\n";

  util::TablePrinter table({"deployed_pct", "random_pct", "degree_ranked_pct",
                            "greedy_coverage_pct", "greedy_edge_coverage"});
  for (double fraction : {0.1, 0.25, 0.5, 0.75}) {
    const auto count =
        static_cast<std::size_t>(fraction * static_cast<double>(graph.node_count()));
    std::vector<std::string> row{util::fmt_double(fraction * 100.0, 0)};
    bgp::AsnSet greedy_set;
    for (auto strategy :
         {core::DeploymentStrategy::Random, core::DeploymentStrategy::DegreeRanked,
          core::DeploymentStrategy::GreedyCoverage}) {
      util::Rng rng(31);
      const auto capable = core::plan_deployment(graph, count, strategy, rng);
      if (strategy == core::DeploymentStrategy::GreedyCoverage) greedy_set = capable;
      const double adoption = adoption_with_deployment(graph, capable, 0.20, 77, jobs);
      row.push_back(util::fmt_double(adoption * 100.0, 2));
    }
    row.push_back(util::fmt_double(core::edge_coverage(graph, greedy_set), 3));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nplacing checkers at the transit core approaches full-deployment "
               "protection with a fraction of the ASes upgraded.\n";
  return 0;
}
