// Streaming-pipeline SLO bench: replay the synthetic trace through the
// sharded StreamDetector under three feed regimes and report throughput and
// first-alarm latency percentiles.
//
//   clean    steady feed, injected attacks + legitimate churn
//   bursty   heavy short-lived fault churn + a per-shard day capacity, so
//            the load shedder is actually in the path
//   faulted  the clean workload behind a chaos::FeedFaultSchedule (gap
//            windows, duplicates, bounded reorder, garbled lines)
//
// Gates (exit 1 on violation, all modes):
//   - zero lost alarms: every attack whose window was observable (not fully
//     inside a feed gap) raises an alarm that reaches a terminal state
//   - bounded memory: peak accounted bytes <= shards * per-shard budget
//   - zero open alarms after finish()
//   - byte-identical alarm log + metrics across --jobs on the faulted feed
//
// Usage:
//   stream_replay [--smoke] [--jobs N] [--out PATH]
//
// --smoke shrinks the trace (sanitizer-friendly) but keeps every gate.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "moas/stream/detector.h"
#include "moas/stream/feed.h"
#include "moas/stream/replay.h"
#include "moas/util/strings.h"

using namespace moas;
using namespace moas::bench;

namespace {

std::string json_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

struct ScenarioSpec {
  std::string name;
  measure::TraceConfig trace;
  std::size_t attacks = 0;
  double churn_share = 0.1;
  int churn_min_active_days = 60;
  int day_capacity = 0;  // 0 = never shed
  bool faulted = false;
};

struct ScenarioResult {
  std::string name;
  int days = 0;
  std::uint64_t updates = 0;
  double wall_seconds = 0.0;
  double updates_per_sec = 0.0;
  double p50 = 0.0, p90 = 0.0, p99 = 0.0;  // detector.first_alarm_latency
  std::uint64_t alarms_raised = 0;
  std::uint64_t alarms_parked = 0;
  std::uint64_t shed_updates = 0;
  std::uint64_t evicted_prefixes = 0;
  std::uint64_t gap_days = 0;
  std::size_t attacks = 0;
  std::size_t attacks_observable = 0;
  std::size_t attacks_alarmed = 0;
  std::size_t lost_alarms = 0;
  std::uint64_t peak_bytes = 0;
  std::uint64_t budget_bytes = 0;  // shards * per-shard budget
  bool memory_bounded = false;
  double open_alarms_at_end = 0.0;
  std::string fingerprint;  // alarm log + metrics manifest
};

ScenarioResult run_scenario(const ScenarioSpec& spec, std::size_t jobs,
                            std::uint64_t memory_budget_bytes) {
  util::Rng rng(spec.trace.days);  // trace seed varies with the spec
  const auto trace = measure::generate_trace(spec.trace, rng);

  stream::ChurnConfig churn_config;
  churn_config.seed = 11;
  churn_config.share = spec.churn_share;
  churn_config.min_active_days = spec.churn_min_active_days;
  const auto churn = stream::plan_churn(trace, churn_config);
  stream::AttackConfig attack_config;
  attack_config.seed = 13;
  attack_config.attacks = spec.attacks;
  const auto plans = stream::plan_attacks(trace, attack_config, churn);

  std::vector<stream::OriginOverride> overrides = churn;
  for (const auto& p : plans) overrides.push_back(p.inject);

  chaos::FeedFaultSchedule faults;
  if (spec.faulted) {
    chaos::FeedFaultConfig fault_config;
    fault_config.seed = 97;
    fault_config.horizon_days = trace.days;
    fault_config.gaps = 2.0;
    fault_config.gap_mean_days = 2.0;
    fault_config.duplicate_prob = 0.01;
    fault_config.reorder_prob = 0.02;
    fault_config.reorder_max_skew = 8;
    fault_config.garble_prob = 0.005;
    faults = chaos::compile_feed_faults(fault_config);
  }

  stream::StreamConfig config;
  config.shards = 8;
  config.jobs = jobs;
  config.flush_margin = 16;  // must cover the transport's reorder skew
  config.shard.alarm_retention = 512;
  config.shard.memory_budget_bytes = memory_budget_bytes;
  config.shard.evict_idle_days = 30;
  config.shard.day_capacity = spec.day_capacity;

  stream::TraceReplaySource source(trace, overrides);
  stream::FaultyFeed feed(source, faults);
  stream::StreamDetector detector(config);
  const auto start = std::chrono::steady_clock::now();
  detector.run(feed);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  const auto metrics = detector.metrics();
  ScenarioResult r;
  r.name = spec.name;
  r.days = trace.days;
  r.updates = metrics.counter("stream.delivered");
  r.wall_seconds = wall;
  r.updates_per_sec = wall > 0.0 ? static_cast<double>(r.updates) / wall : 0.0;
  const auto* latency = metrics.find_histogram("detector.first_alarm_latency");
  if (latency != nullptr && !latency->empty()) {
    r.p50 = latency->quantile(0.50);
    r.p90 = latency->quantile(0.90);
    r.p99 = latency->quantile(0.99);
  }
  r.alarms_raised = metrics.counter("stream.alarms_raised");
  r.alarms_parked = metrics.counter("stream.alarms_parked");
  r.shed_updates = metrics.counter("stream.shed_updates");
  r.evicted_prefixes = metrics.counter("stream.evicted_prefixes");
  r.gap_days = metrics.counter("stream.gap_days");
  r.open_alarms_at_end = metrics.gauge("stream.open_alarms");
  r.peak_bytes = detector.peak_bytes();
  r.budget_bytes = static_cast<std::uint64_t>(config.shards) * memory_budget_bytes;
  r.memory_bounded = r.peak_bytes <= r.budget_bytes;

  const auto outcomes = stream::evaluate_attacks(plans, detector.merged_alarms(),
                                                 spec.faulted ? &faults : nullptr);
  r.attacks = outcomes.size();
  for (const auto& o : outcomes) {
    if (!o.observable) continue;
    ++r.attacks_observable;
    if (o.alarmed) ++r.attacks_alarmed;
    if (!o.alarmed || !o.all_settled) ++r.lost_alarms;
  }
  r.fingerprint = detector.alarm_log_text() + metrics.to_json();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_stream.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    if (arg == "--out" && i + 1 < argc) out_path = argv[i + 1];
  }
  const std::size_t jobs = bench_jobs(argc, argv);
  const std::uint64_t budget = smoke ? 128ull * 1024 : 512ull * 1024;

  measure::TraceConfig base;
  base.days = smoke ? 60 : 365;
  base.active_start = smoke ? 40 : 150;
  base.active_end = smoke ? 50 : 180;
  base.faults_per_day = 5.0;
  base.include_spike_1998 = false;
  base.include_spike_2001 = false;

  std::vector<ScenarioSpec> specs(3);
  specs[0].name = "clean";
  specs[0].trace = base;
  specs[1].name = "bursty";
  specs[1].trace = base;
  specs[1].trace.faults_per_day = smoke ? 25.0 : 80.0;
  specs[1].day_capacity = smoke ? 4 : 16;
  specs[2].name = "faulted";
  specs[2].trace = base;
  specs[2].faulted = true;
  for (auto& s : specs) {
    s.attacks = smoke ? 4 : 12;
    s.churn_min_active_days = smoke ? 30 : 60;
  }

  std::cout << "=== Streaming replay SLOs (" << (smoke ? "smoke" : "full") << ", jobs="
            << jobs << ") ===\n\n";

  std::vector<ScenarioResult> results;
  for (const auto& spec : specs) results.push_back(run_scenario(spec, jobs, budget));

  // Determinism gate: the faulted feed, replayed at a different job count,
  // must fingerprint byte-identically.
  const std::size_t other_jobs = jobs == 1 ? 2 : 1;
  const ScenarioResult rerun = run_scenario(specs[2], other_jobs, budget);
  const bool deterministic = rerun.fingerprint == results[2].fingerprint;

  util::TablePrinter table({"scenario", "days", "updates", "upd/s", "p50_lat", "p90_lat",
                            "p99_lat", "alarms", "lost", "peak_kb"});
  for (const auto& r : results) {
    table.add_row({r.name, std::to_string(r.days), std::to_string(r.updates),
                   util::fmt_double(r.updates_per_sec, 0), util::fmt_double(r.p50, 3),
                   util::fmt_double(r.p90, 3), util::fmt_double(r.p99, 3),
                   std::to_string(r.alarms_raised), std::to_string(r.lost_alarms),
                   std::to_string(r.peak_bytes / 1024)});
  }
  table.print(std::cout);
  std::cout << "\nfaulted feed deterministic across jobs " << jobs << "/" << other_jobs
            << ": " << (deterministic ? "yes" : "NO") << "\n";

  bool gates_passed = deterministic;
  for (const auto& r : results) {
    if (r.lost_alarms > 0 || !r.memory_bounded || r.open_alarms_at_end != 0.0) {
      gates_passed = false;
    }
  }

  std::ofstream out(out_path);
  out << "{\n";
  out << "  \"bench\": \"stream_replay\",\n";
  out << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
  out << "  \"jobs\": " << jobs << ",\n";
  out << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency() << ",\n";
  out << "  \"note\": \"1-core baseline: updates/s reflects a single core; "
         "the determinism and zero-lost-alarm gates are hardware-independent\",\n";
  out << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << "    {\"name\": \"" << r.name << "\", \"days\": " << r.days
        << ", \"updates\": " << r.updates
        << ", \"wall_seconds\": " << json_double(r.wall_seconds)
        << ", \"updates_per_sec\": " << json_double(r.updates_per_sec)
        << ",\n     \"latency_p50_days\": " << json_double(r.p50)
        << ", \"latency_p90_days\": " << json_double(r.p90)
        << ", \"latency_p99_days\": " << json_double(r.p99)
        << ",\n     \"alarms_raised\": " << r.alarms_raised
        << ", \"alarms_parked\": " << r.alarms_parked
        << ", \"shed_updates\": " << r.shed_updates
        << ", \"evicted_prefixes\": " << r.evicted_prefixes
        << ", \"gap_days\": " << r.gap_days
        << ",\n     \"attacks\": " << r.attacks
        << ", \"attacks_observable\": " << r.attacks_observable
        << ", \"attacks_alarmed\": " << r.attacks_alarmed
        << ", \"lost_alarms\": " << r.lost_alarms
        << ",\n     \"peak_bytes\": " << r.peak_bytes
        << ", \"budget_bytes\": " << r.budget_bytes
        << ", \"memory_bounded\": " << (r.memory_bounded ? "true" : "false")
        << ", \"open_alarms_at_end\": " << json_double(r.open_alarms_at_end) << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"deterministic_across_jobs\": " << (deterministic ? "true" : "false") << ",\n";
  out << "  \"gates_passed\": " << (gates_passed ? "true" : "false") << "\n";
  out << "}\n";
  out.close();
  std::cout << "wrote " << out_path << "\n";

  if (!gates_passed) {
    for (const auto& r : results) {
      if (r.lost_alarms > 0) {
        std::cerr << "FAIL [" << r.name << "]: " << r.lost_alarms
                  << " observable attack(s) lost (no alarm or never settled)\n";
      }
      if (!r.memory_bounded) {
        std::cerr << "FAIL [" << r.name << "]: peak " << r.peak_bytes
                  << " bytes exceeds the " << r.budget_bytes << "-byte budget\n";
      }
      if (r.open_alarms_at_end != 0.0) {
        std::cerr << "FAIL [" << r.name << "]: " << r.open_alarms_at_end
                  << " alarms still open after finish()\n";
      }
    }
    if (!deterministic) {
      std::cerr << "FAIL: faulted replay diverged between jobs=" << jobs << " and jobs="
                << other_jobs << "\n";
    }
    return 1;
  }
  return 0;
}
