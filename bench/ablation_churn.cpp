// Ablation — detection under churn: replay seeded fault schedules (link
// flaps, session resets, router crashes, lossy links) underneath the
// paper's attack workload and measure what background instability costs
// the MOAS-list scheme. The run doubles as a robustness gate: every run is
// audited by the network invariant checker, and moderate churn must not
// blow adoption of false routes past 2x the fault-free baseline.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <optional>

#include "bench_util.h"
#include "moas/chaos/schedule.h"
#include "moas/util/stats.h"
#include "moas/util/strings.h"

using namespace moas;
using namespace moas::bench;

namespace {

struct Regime {
  const char* label;
  std::optional<chaos::ScheduleConfig> churn;
  /// Gate this regime against 2x the fault-free adoption baseline. The
  /// heavy regime is reported but not gated: sustained downtime genuinely
  /// partitions ASes away from the valid origin, and what it must still
  /// deliver is a clean invariant audit.
  bool gated = true;
};

chaos::ScheduleConfig churn_regime(double flaps_per_link, double msg_fault_rate) {
  chaos::ScheduleConfig config;
  config.seed = 0xc0ffee;
  config.horizon = 120.0;
  config.flaps_per_link = flaps_per_link;
  config.downtime_mean = 4.0;
  config.session_resets_per_link = flaps_per_link / 2.0;
  config.crashes_per_router = flaps_per_link / 10.0;
  config.restart_delay_mean = 8.0;
  config.msg_drop = msg_fault_rate;
  config.msg_reorder = msg_fault_rate;
  return config;
}

struct Cell {
  double adopted_false = 0.0;  // mean fraction of non-attacker ASes
  double no_route = 0.0;
  double alarms = 0.0;
  std::size_t fault_events = 0;
  std::uint64_t message_faults = 0;
  std::size_t violations = 0;
  std::uint64_t withdrawals = 0;  // summed over runs: wire churn
  std::uint64_t announcements = 0;
  std::uint64_t stale_retained = 0;
  std::uint64_t resolver_queries = 0;  // backend (registry) load
  std::uint64_t cache_hits = 0;
  std::string first_fault_log;  // replay log of the cell's first run
};

/// Mirrors Experiment::run_point (3 origin sets x 5 attacker sets), but
/// keeps the churn bookkeeping run_point's SweepPoint drops.
Cell run_cell(const core::Experiment& experiment, const topo::AsGraph& graph,
              double attacker_fraction, util::Rng& rng) {
  std::size_t num_attackers = static_cast<std::size_t>(
      std::lround(attacker_fraction * static_cast<double>(graph.node_count())));
  if (attacker_fraction > 0.0 && num_attackers == 0) num_attackers = 1;

  Cell cell;
  util::Accumulator adopted, no_route, alarms;
  for (std::size_t i = 0; i < kOriginSets; ++i) {
    const bgp::AsnSet origins = experiment.draw_origins(rng);
    for (std::size_t j = 0; j < kAttackerSets; ++j) {
      const bgp::AsnSet attackers = experiment.draw_attackers(num_attackers, origins, rng);
      const core::RunResult run = experiment.run_with(origins, attackers, rng.next());
      adopted.add(run.adopted_false_fraction());
      no_route.add(run.no_route_fraction());
      alarms.add(static_cast<double>(run.alarms));
      cell.fault_events += run.fault_events;
      cell.message_faults += run.message_faults;
      cell.violations += run.invariant_report.size();
      cell.withdrawals += run.withdrawals;
      cell.announcements += run.announcements;
      cell.stale_retained += run.stale_retained;
      cell.resolver_queries += run.resolver_queries;
      cell.cache_hits += run.resolver_cache_hits;
      if (i == 0 && j == 0) cell.first_fault_log = run.fault_log;
      for (const std::string& violation : run.invariant_report) {
        std::cerr << "invariant violation: " << violation << "\n";
      }
    }
  }
  cell.adopted_false = adopted.mean();
  cell.no_route = no_route.mean();
  cell.alarms = alarms.mean();
  return cell;
}

}  // namespace

int main() {
  const topo::AsGraph& graph = paper_topology(460);

  std::cout << "=== Ablation: detection under churn (fault schedules) ===\n";
  std::cout << "seeded link flaps / session resets / router crashes / lossy links "
               "replayed under the Section 5 attack workload; every run audited by "
               "the network invariant checker\n\n";

  const std::vector<Regime> regimes = {
      {"none", std::nullopt},
      {"mild", churn_regime(0.1, 0.0)},
      {"moderate", churn_regime(0.2, 0.005)},
      {"heavy", churn_regime(0.4, 0.02), /*gated=*/false},
  };
  const std::vector<double> fractions = {0.05, 0.20};

  util::TablePrinter table({"churn", "attacker_pct", "adopting_false_pct", "no_route_pct",
                            "alarms_per_run", "fault_events", "msg_faults", "violations"});
  bool ok = true;
  std::vector<double> baseline(fractions.size(), 0.0);
  for (const Regime& regime : regimes) {
    core::ExperimentConfig config;
    config.deployment = core::Deployment::Full;
    config.strategy = core::AttackerStrategy::OwnList;
    config.churn = regime.churn;
    config.check_invariants = true;
    core::Experiment experiment(graph, config);
    util::Rng rng(42);  // same workload draws per regime
    for (std::size_t f = 0; f < fractions.size(); ++f) {
      const Cell cell = run_cell(experiment, graph, fractions[f], rng);
      table.add_row({regime.label, util::fmt_double(fractions[f] * 100.0, 0),
                     util::fmt_double(cell.adopted_false * 100.0, 2),
                     util::fmt_double(cell.no_route * 100.0, 2),
                     util::fmt_double(cell.alarms, 1), std::to_string(cell.fault_events),
                     std::to_string(cell.message_faults), std::to_string(cell.violations)});
      if (cell.violations > 0) {
        ok = false;
        std::cerr << "FAIL: " << cell.violations << " invariant violations under '"
                  << regime.label << "' churn\n";
      }
      if (regime.churn == std::nullopt) {
        baseline[f] = cell.adopted_false;
      } else if (regime.gated) {
        // Churn may cost some adoption (flapped-away valid paths let a false
        // route in), but full deployment must stay within 2x the fault-free
        // baseline (absolute floor 1% guards a near-zero baseline).
        const double allowed = std::max(2.0 * baseline[f], 0.01);
        if (cell.adopted_false > allowed) {
          ok = false;
          std::cerr << "FAIL: adoption " << cell.adopted_false << " under '" << regime.label
                    << "' churn exceeds 2x baseline " << baseline[f] << "\n";
        }
      }
    }
  }
  table.print(std::cout);

  // --- Cold restart vs graceful restart (RFC 4724) under crash churn ------
  // Crash/restart faults only, no message faults: the compiled schedule —
  // and therefore the engine's replay log — is byte-identical with GR on or
  // off, so the comparison isolates the restart semantics. Cold restart
  // pays a flush-withdraw cascade at every crash plus a full re-learn at
  // restart; GR parks the routes as stale and only the End-of-RIB sweep (or
  // the restart timer) withdraws what genuinely changed.
  std::cout << "\n=== Cold restart vs graceful restart under crash churn ===\n";
  chaos::ScheduleConfig crash_churn;
  crash_churn.seed = 0xc0ffee;
  crash_churn.horizon = 120.0;
  crash_churn.crashes_per_router = 0.5;
  crash_churn.restart_delay_mean = 8.0;
  const auto run_restart_cell = [&](bool graceful) {
    core::ExperimentConfig config;
    config.deployment = core::Deployment::Full;
    config.strategy = core::AttackerStrategy::OwnList;
    config.churn = crash_churn;
    config.check_invariants = true;  // includes the stale-route-hygiene family
    config.graceful_restart = graceful;
    config.gr_restart_time = 30.0;
    core::Experiment experiment(graph, config);
    util::Rng rng(42);  // same workload draws for both restart modes
    return run_cell(experiment, graph, 0.05, rng);
  };
  const Cell cold = run_restart_cell(false);
  const Cell graceful = run_restart_cell(true);
  const Cell graceful_rerun = run_restart_cell(true);

  util::TablePrinter restart_table({"restart_mode", "withdrawals", "announcements",
                                    "stale_retained", "adopting_false_pct", "violations"});
  restart_table.add_row({"cold", std::to_string(cold.withdrawals),
                         std::to_string(cold.announcements),
                         std::to_string(cold.stale_retained),
                         util::fmt_double(cold.adopted_false * 100.0, 2),
                         std::to_string(cold.violations)});
  restart_table.add_row({"graceful", std::to_string(graceful.withdrawals),
                         std::to_string(graceful.announcements),
                         std::to_string(graceful.stale_retained),
                         util::fmt_double(graceful.adopted_false * 100.0, 2),
                         std::to_string(graceful.violations)});
  restart_table.print(std::cout);

  if (cold.violations + graceful.violations > 0) {
    ok = false;
    std::cerr << "FAIL: invariant violations in the restart-mode comparison\n";
  }
  if (graceful.withdrawals >= cold.withdrawals) {
    ok = false;
    std::cerr << "FAIL: graceful restart sent " << graceful.withdrawals
              << " withdrawals, cold restart " << cold.withdrawals
              << " — GR must strictly reduce withdraw churn\n";
  }
  if (graceful.announcements >= cold.announcements) {
    ok = false;
    std::cerr << "FAIL: graceful restart sent " << graceful.announcements
              << " announcements, cold restart " << cold.announcements
              << " — GR must strictly reduce re-announce churn\n";
  }
  if (graceful.adopted_false > cold.adopted_false + 1e-9) {
    ok = false;
    std::cerr << "FAIL: graceful restart worsened false adoption ("
              << graceful.adopted_false << " vs cold " << cold.adopted_false << ")\n";
  }
  if (graceful.first_fault_log != cold.first_fault_log) {
    ok = false;
    std::cerr << "FAIL: fault log differs between restart modes — the schedule replay "
                 "must not depend on GR\n";
  }
  if (graceful.first_fault_log != graceful_rerun.first_fault_log ||
      graceful.withdrawals != graceful_rerun.withdrawals) {
    ok = false;
    std::cerr << "FAIL: GR run is not deterministic for a fixed seed\n";
  }

  // --- Churn-aware resolver cache ----------------------------------------
  // Moderate churn re-fires MOAS alarms for the same victim prefix; a short
  // TTL must absorb repeat registry lookups without changing any detection
  // outcome (the oracle backend is deterministic, so outcomes are
  // comparable run for run).
  std::cout << "\n=== Resolver cache under moderate churn ===\n";
  const auto run_cache_cell = [&](double ttl) {
    core::ExperimentConfig config;
    config.deployment = core::Deployment::Full;
    config.strategy = core::AttackerStrategy::OwnList;
    config.churn = churn_regime(0.2, 0.005);
    config.resolver_cache_ttl = ttl;
    core::Experiment experiment(graph, config);
    util::Rng rng(42);  // same workload draws with and without the cache
    return run_cell(experiment, graph, 0.20, rng);
  };
  const Cell uncached = run_cache_cell(0.0);
  const Cell cached = run_cache_cell(30.0);

  util::TablePrinter cache_table(
      {"resolver", "registry_queries", "cache_hits", "alarms_per_run", "adopting_false_pct"});
  cache_table.add_row({"oracle", std::to_string(uncached.resolver_queries), "0",
                       util::fmt_double(uncached.alarms, 1),
                       util::fmt_double(uncached.adopted_false * 100.0, 2)});
  cache_table.add_row({"oracle+cache", std::to_string(cached.resolver_queries),
                       std::to_string(cached.cache_hits), util::fmt_double(cached.alarms, 1),
                       util::fmt_double(cached.adopted_false * 100.0, 2)});
  cache_table.print(std::cout);

  if (cached.resolver_queries >= uncached.resolver_queries) {
    ok = false;
    std::cerr << "FAIL: cache did not reduce registry load (" << cached.resolver_queries
              << " vs " << uncached.resolver_queries << ")\n";
  }
  if (cached.adopted_false != uncached.adopted_false || cached.alarms != uncached.alarms ||
      cached.no_route != uncached.no_route) {
    ok = false;
    std::cerr << "FAIL: resolver cache changed detection outcomes\n";
  }

  std::cout << "\nfull-deployment detection holds under churn: flaps delay convergence "
               "and raise alarm counts, but resolution still pins the true origins and "
               "the post-quiescence network state audits clean. graceful restart keeps "
               "crash/restart cycles from masquerading as withdraw/re-announce churn, "
               "and the resolver cache absorbs repeat registry lookups without moving "
               "any outcome.\n";
  if (!ok) {
    std::cerr << "\nCHURN ABLATION FAILED\n";
    return EXIT_FAILURE;
  }
  return 0;
}
