// Ablation — detection under churn: replay seeded fault schedules (link
// flaps, session resets, router crashes, lossy links) underneath the
// paper's attack workload and measure what background instability costs
// the MOAS-list scheme. The run doubles as a robustness gate: every run is
// audited by the network invariant checker, and moderate churn must not
// blow adoption of false routes past 2x the fault-free baseline.
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>

#include "bench_util.h"
#include "moas/chaos/schedule.h"
#include "moas/core/monitor.h"
#include "moas/util/stats.h"
#include "moas/util/strings.h"

using namespace moas;
using namespace moas::bench;

namespace {

// --trace-out / MOAS_TRACE dump state: every cell's runs append their event
// streams in plan order, so the file is a deterministic replay of the whole
// bench. Set once in main before any cell runs.
TraceOptions g_trace;
std::ofstream g_trace_out;

struct Regime {
  const char* label;
  std::optional<chaos::ScheduleConfig> churn;
  /// Gate this regime against 2x the fault-free adoption baseline. The
  /// heavy regime is reported but not gated: sustained downtime genuinely
  /// partitions ASes away from the valid origin, and what it must still
  /// deliver is a clean invariant audit.
  bool gated = true;
};

chaos::ScheduleConfig churn_regime(double flaps_per_link, double msg_fault_rate) {
  chaos::ScheduleConfig config;
  config.seed = 0xc0ffee;
  config.horizon = 120.0;
  config.flaps_per_link = flaps_per_link;
  config.downtime_mean = 4.0;
  config.session_resets_per_link = flaps_per_link / 2.0;
  config.crashes_per_router = flaps_per_link / 10.0;
  config.restart_delay_mean = 8.0;
  config.msg_drop = msg_fault_rate;
  config.msg_reorder = msg_fault_rate;
  return config;
}

struct Cell {
  double adopted_false = 0.0;  // mean fraction of non-attacker ASes
  double no_route = 0.0;
  double alarms = 0.0;
  std::size_t fault_events = 0;
  std::uint64_t message_faults = 0;
  std::size_t violations = 0;
  std::uint64_t withdrawals = 0;  // summed over runs: wire churn
  std::uint64_t routes_withdrawn = 0;  // receiver-side route loss (incl. flushes)
  std::uint64_t announcements = 0;
  std::uint64_t stale_retained = 0;
  std::uint64_t resolver_queries = 0;  // backend (registry) load
  std::uint64_t cache_hits = 0;
  std::string first_fault_log;  // replay log of the cell's first run
  core::ErrorHandlingSummary error_handling;  // typed view over `metrics`
  /// Per-run registries merged in plan order, plus the cell's alarm-latency
  /// histograms under the same names the sweep reducer uses.
  obs::MetricsRegistry metrics;
  std::size_t stuck_runs = 0;  // false route still installed at quiescence
};

/// Mirrors Experiment::run_point (3 origin sets x 5 attacker sets), but
/// keeps the churn bookkeeping run_point's SweepPoint drops. Uses the same
/// plan → execute → reduce shape as Experiment::sweep, so the Rng stream
/// and every run result match the historical serial loop for any `jobs`.
Cell run_cell(const core::Experiment& experiment, double attacker_fraction,
              util::Rng& rng, std::size_t jobs) {
  const core::SweepPlan plan =
      experiment.plan_sweep({attacker_fraction}, kOriginSets, kAttackerSets, rng);
  util::ThreadPool pool(jobs);
  const std::vector<core::RunResult> results = experiment.execute_plan(plan, pool);

  Cell cell;
  util::Accumulator adopted, no_route, alarms;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const core::RunResult& run = results[i];
    adopted.add(run.adopted_false_fraction());
    no_route.add(run.no_route_fraction());
    alarms.add(static_cast<double>(run.alarms));
    cell.fault_events += run.fault_events;
    cell.message_faults += run.message_faults;
    cell.violations += run.invariant_report.size();
    cell.withdrawals += run.withdrawals;
    cell.routes_withdrawn += run.routes_withdrawn;
    cell.announcements += run.announcements;
    cell.stale_retained += run.stale_retained;
    cell.resolver_queries += run.resolver_queries;
    cell.cache_hits += run.resolver_cache_hits;
    cell.metrics.merge(run.metrics);
    if (run.first_alarm_latency >= 0.0) {
      cell.metrics.histogram("detector.first_alarm_latency", core::kAlarmLatencySpec)
          .add(run.first_alarm_latency);
    }
    if (run.eviction_latency >= 0.0) {
      cell.metrics.histogram("detector.eviction_latency", core::kAlarmLatencySpec)
          .add(run.eviction_latency);
    }
    if (run.false_route_stuck) ++cell.stuck_runs;
    if (i == 0) cell.first_fault_log = run.fault_log;
    for (const std::string& violation : run.invariant_report) {
      std::cerr << "invariant violation: " << violation << "\n";
    }
  }
  if (g_trace_out.is_open()) write_run_traces(g_trace_out, results);
  cell.metrics.histogram("detector.first_alarm_latency", core::kAlarmLatencySpec);
  cell.metrics.histogram("detector.eviction_latency", core::kAlarmLatencySpec);
  // The summary table is a typed read of the merged registry — the chaos
  // and router counters feeding it have no separate bookkeeping path.
  cell.error_handling = core::ErrorHandlingSummary::from_metrics(cell.metrics);
  cell.adopted_false = adopted.mean();
  cell.no_route = no_route.mean();
  cell.alarms = alarms.mean();
  return cell;
}

/// The churn configs share the observability setup: Summary-level tracing
/// feeds the eviction-latency histogram, and --trace-out keeps the streams.
void enable_observability(core::ExperimentConfig& config) {
  config.trace_level = obs::TraceLevel::Summary;
  if (g_trace.enabled()) {
    if (config.trace_level < g_trace.level) config.trace_level = g_trace.level;
    config.keep_trace = true;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t jobs = bench_jobs(argc, argv);
  g_trace = bench_trace(argc, argv);
  if (g_trace.enabled()) g_trace_out.open(g_trace.path);
  const topo::AsGraph& graph = paper_topology(460);

  std::cout << "=== Ablation: detection under churn (fault schedules) ===\n";
  std::cout << "seeded link flaps / session resets / router crashes / lossy links "
               "replayed under the Section 5 attack workload; every run audited by "
               "the network invariant checker\n\n";

  const std::vector<Regime> regimes = {
      {"none", std::nullopt},
      {"mild", churn_regime(0.1, 0.0)},
      {"moderate", churn_regime(0.2, 0.005)},
      {"heavy", churn_regime(0.4, 0.02), /*gated=*/false},
  };
  const std::vector<double> fractions = {0.05, 0.20};

  util::TablePrinter table({"churn", "attacker_pct", "adopting_false_pct", "no_route_pct",
                            "alarms_per_run", "alarm_p50_s", "evict_p90_s", "stuck",
                            "fault_events", "msg_faults", "violations"});
  bool ok = true;
  std::vector<double> baseline(fractions.size(), 0.0);
  for (const Regime& regime : regimes) {
    core::ExperimentConfig config;
    config.deployment = core::Deployment::Full;
    config.strategy = core::AttackerStrategy::OwnList;
    config.churn = regime.churn;
    config.check_invariants = true;
    enable_observability(config);
    core::Experiment experiment(graph, config);
    util::Rng rng(42);  // same workload draws per regime
    for (std::size_t f = 0; f < fractions.size(); ++f) {
      const Cell cell = run_cell(experiment, fractions[f], rng, jobs);
      const obs::FixedHistogram* alarm_lat =
          cell.metrics.find_histogram("detector.first_alarm_latency");
      const obs::FixedHistogram* evict_lat =
          cell.metrics.find_histogram("detector.eviction_latency");
      table.add_row({regime.label, util::fmt_double(fractions[f] * 100.0, 0),
                     util::fmt_double(cell.adopted_false * 100.0, 2),
                     util::fmt_double(cell.no_route * 100.0, 2),
                     util::fmt_double(cell.alarms, 1),
                     util::fmt_double(alarm_lat->quantile(0.5), 2),
                     util::fmt_double(evict_lat->quantile(0.9), 2),
                     std::to_string(cell.stuck_runs), std::to_string(cell.fault_events),
                     std::to_string(cell.message_faults), std::to_string(cell.violations)});
      if (cell.violations > 0) {
        ok = false;
        std::cerr << "FAIL: " << cell.violations << " invariant violations under '"
                  << regime.label << "' churn\n";
      }
      if (regime.churn == std::nullopt) {
        baseline[f] = cell.adopted_false;
      } else if (regime.gated) {
        // Churn may cost some adoption (flapped-away valid paths let a false
        // route in), but full deployment must stay within ~2x the fault-free
        // baseline (the absolute floor guards a near-zero baseline). The
        // 2.25x/1.1% headroom is calibrated to *healing* session resets:
        // every reset re-establishes and replays, so more routes — honest
        // and false alike — survive churn than when a reset could leave a
        // session down for the rest of the run.
        const double allowed = std::max(2.25 * baseline[f], 0.011);
        if (cell.adopted_false > allowed) {
          ok = false;
          std::cerr << "FAIL: adoption " << cell.adopted_false << " under '" << regime.label
                    << "' churn exceeds 2x baseline " << baseline[f] << "\n";
        }
      }
    }
  }
  table.print(std::cout);

  // --- Cold restart vs graceful restart (RFC 4724) under crash churn ------
  // Crash/restart faults only, no message faults: the compiled schedule —
  // and therefore the engine's replay log — is byte-identical with GR on or
  // off, so the comparison isolates the restart semantics. Cold restart
  // pays a flush-withdraw cascade at every crash plus a full re-learn at
  // restart; GR parks the routes as stale and only the End-of-RIB sweep (or
  // the restart timer) withdraws what genuinely changed.
  std::cout << "\n=== Cold restart vs graceful restart under crash churn ===\n";
  chaos::ScheduleConfig crash_churn;
  crash_churn.seed = 0xc0ffee;
  crash_churn.horizon = 120.0;
  crash_churn.crashes_per_router = 0.5;
  crash_churn.restart_delay_mean = 8.0;
  const auto run_restart_cell = [&](bool graceful) {
    core::ExperimentConfig config;
    config.deployment = core::Deployment::Full;
    config.strategy = core::AttackerStrategy::OwnList;
    config.churn = crash_churn;
    config.check_invariants = true;  // includes the stale-route-hygiene family
    config.graceful_restart = graceful;
    config.gr_restart_time = 30.0;
    enable_observability(config);
    core::Experiment experiment(graph, config);
    util::Rng rng(42);  // same workload draws for both restart modes
    return run_cell(experiment, 0.05, rng, jobs);
  };
  const Cell cold = run_restart_cell(false);
  const Cell graceful = run_restart_cell(true);
  const Cell graceful_rerun = run_restart_cell(true);

  util::TablePrinter restart_table({"restart_mode", "withdrawals", "announcements",
                                    "stale_retained", "adopting_false_pct", "violations"});
  restart_table.add_row({"cold", std::to_string(cold.withdrawals),
                         std::to_string(cold.announcements),
                         std::to_string(cold.stale_retained),
                         util::fmt_double(cold.adopted_false * 100.0, 2),
                         std::to_string(cold.violations)});
  restart_table.add_row({"graceful", std::to_string(graceful.withdrawals),
                         std::to_string(graceful.announcements),
                         std::to_string(graceful.stale_retained),
                         util::fmt_double(graceful.adopted_false * 100.0, 2),
                         std::to_string(graceful.violations)});
  restart_table.print(std::cout);

  if (cold.violations + graceful.violations > 0) {
    ok = false;
    std::cerr << "FAIL: invariant violations in the restart-mode comparison\n";
  }
  if (graceful.withdrawals >= cold.withdrawals) {
    ok = false;
    std::cerr << "FAIL: graceful restart sent " << graceful.withdrawals
              << " withdrawals, cold restart " << cold.withdrawals
              << " — GR must strictly reduce withdraw churn\n";
  }
  if (graceful.announcements >= cold.announcements) {
    ok = false;
    std::cerr << "FAIL: graceful restart sent " << graceful.announcements
              << " announcements, cold restart " << cold.announcements
              << " — GR must strictly reduce re-announce churn\n";
  }
  if (graceful.adopted_false > cold.adopted_false + 1e-9) {
    ok = false;
    std::cerr << "FAIL: graceful restart worsened false adoption ("
              << graceful.adopted_false << " vs cold " << cold.adopted_false << ")\n";
  }
  if (graceful.first_fault_log != cold.first_fault_log) {
    ok = false;
    std::cerr << "FAIL: fault log differs between restart modes — the schedule replay "
                 "must not depend on GR\n";
  }
  if (graceful.first_fault_log != graceful_rerun.first_fault_log ||
      graceful.withdrawals != graceful_rerun.withdrawals) {
    ok = false;
    std::cerr << "FAIL: GR run is not deterministic for a fixed seed\n";
  }

  // --- Churn-aware resolver cache ----------------------------------------
  // Moderate churn re-fires MOAS alarms for the same victim prefix; a short
  // TTL must absorb repeat registry lookups without changing any detection
  // outcome (the oracle backend is deterministic, so outcomes are
  // comparable run for run).
  std::cout << "\n=== Resolver cache under moderate churn ===\n";
  const auto run_cache_cell = [&](double ttl) {
    core::ExperimentConfig config;
    config.deployment = core::Deployment::Full;
    config.strategy = core::AttackerStrategy::OwnList;
    config.churn = churn_regime(0.2, 0.005);
    config.resolver_cache_ttl = ttl;
    enable_observability(config);
    core::Experiment experiment(graph, config);
    util::Rng rng(42);  // same workload draws with and without the cache
    return run_cell(experiment, 0.20, rng, jobs);
  };
  const Cell uncached = run_cache_cell(0.0);
  const Cell cached = run_cache_cell(30.0);

  util::TablePrinter cache_table(
      {"resolver", "registry_queries", "cache_hits", "alarms_per_run", "adopting_false_pct"});
  cache_table.add_row({"oracle", std::to_string(uncached.resolver_queries), "0",
                       util::fmt_double(uncached.alarms, 1),
                       util::fmt_double(uncached.adopted_false * 100.0, 2)});
  cache_table.add_row({"oracle+cache", std::to_string(cached.resolver_queries),
                       std::to_string(cached.cache_hits), util::fmt_double(cached.alarms, 1),
                       util::fmt_double(cached.adopted_false * 100.0, 2)});
  cache_table.print(std::cout);

  if (cached.resolver_queries >= uncached.resolver_queries) {
    ok = false;
    std::cerr << "FAIL: cache did not reduce registry load (" << cached.resolver_queries
              << " vs " << uncached.resolver_queries << ")\n";
  }
  if (cached.adopted_false != uncached.adopted_false || cached.alarms != uncached.alarms ||
      cached.no_route != uncached.no_route) {
    ok = false;
    std::cerr << "FAIL: resolver cache changed detection outcomes\n";
  }

  // --- RFC 4271 vs RFC 7606 error handling under attribute corruption -----
  // Corruption-only schedule: discrete AttrCorrupt events, each damaging the
  // attribute section of the next announcement crossing its direction. The
  // compiled schedule — and therefore the replay log — is byte-identical in
  // both arms, so the comparison isolates the error-handling semantics.
  // Strict 4271 answers every damaged UPDATE with NOTIFICATION + session
  // reset (flush + full re-learn); 7606 degrades to treat-as-withdraw or
  // attribute-discard, so one corrupt UPDATE costs at most the routes it
  // carried. Corrupted MOAS lists must never reach a RIB in either arm.
  std::cout << "\n=== RFC 4271 vs RFC 7606 error handling under corruption ===\n";
  chaos::ScheduleConfig corrupt_churn;
  corrupt_churn.seed = 0xc0ffee;
  corrupt_churn.horizon = 120.0;
  corrupt_churn.attr_corruptions_per_link = 0.1;
  const auto run_error_cell = [&](bool revised) {
    core::ExperimentConfig config;
    config.deployment = core::Deployment::Full;
    config.strategy = core::AttackerStrategy::OwnList;
    config.churn = corrupt_churn;
    config.check_invariants = true;  // includes the corruption invariant family
    config.revised_error_handling = revised;
    enable_observability(config);
    core::Experiment experiment(graph, config);
    util::Rng rng(42);  // same workload draws for both error-handling modes
    return run_cell(experiment, 0.05, rng, jobs);
  };
  const Cell legacy = run_error_cell(false);
  const Cell revised = run_error_cell(true);
  const Cell revised_rerun = run_error_cell(true);

  std::cout << core::error_handling_table_from_metrics(
      {{"rfc4271", legacy.metrics}, {"rfc7606", revised.metrics}});

  util::TablePrinter error_table({"error_handling", "session_resets", "routes_withdrawn",
                                  "wire_withdrawals", "adopting_false_pct", "violations"});
  error_table.add_row({"rfc4271",
                       std::to_string(legacy.error_handling.corrupt_session_resets),
                       std::to_string(legacy.routes_withdrawn),
                       std::to_string(legacy.withdrawals),
                       util::fmt_double(legacy.adopted_false * 100.0, 2),
                       std::to_string(legacy.violations)});
  error_table.add_row({"rfc7606",
                       std::to_string(revised.error_handling.corrupt_session_resets),
                       std::to_string(revised.routes_withdrawn),
                       std::to_string(revised.withdrawals),
                       util::fmt_double(revised.adopted_false * 100.0, 2),
                       std::to_string(revised.violations)});
  error_table.print(std::cout);

  if (legacy.violations + revised.violations > 0) {
    ok = false;
    std::cerr << "FAIL: invariant violations in the error-handling comparison\n";
  }
  if (legacy.error_handling.attr_corruptions == 0) {
    ok = false;
    std::cerr << "FAIL: corruption schedule landed no attribute corruptions — "
                 "the comparison is vacuous\n";
  }
  if (revised.error_handling.corrupt_session_resets != 0) {
    ok = false;
    std::cerr << "FAIL: RFC 7606 arm reset " << revised.error_handling.corrupt_session_resets
              << " sessions — attribute damage must never reset a session\n";
  }
  if (revised.error_handling.corrupt_session_resets >=
      legacy.error_handling.corrupt_session_resets) {
    ok = false;
    std::cerr << "FAIL: revised handling did not strictly reduce session resets ("
              << revised.error_handling.corrupt_session_resets << " vs "
              << legacy.error_handling.corrupt_session_resets << ")\n";
  }
  // The withdrawal gate counts receiver-side route loss, not wire messages:
  // a reset session sends *fewer* updates precisely because it is dead —
  // its damage is the implicit withdrawal of every Adj-RIB-In entry the
  // flush evicts, which routes_withdrawn captures and withdrawals_sent
  // cannot see.
  if (revised.routes_withdrawn >= legacy.routes_withdrawn) {
    ok = false;
    std::cerr << "FAIL: revised handling withdrew " << revised.routes_withdrawn
              << " routes, strict 4271 " << legacy.routes_withdrawn
              << " — 7606 must strictly reduce withdrawn routes\n";
  }
  if (revised.adopted_false > legacy.adopted_false + 1e-9) {
    ok = false;
    std::cerr << "FAIL: revised handling worsened false adoption ("
              << revised.adopted_false << " vs 4271 " << legacy.adopted_false << ")\n";
  }
  if (revised.first_fault_log != legacy.first_fault_log) {
    ok = false;
    std::cerr << "FAIL: fault log differs between error-handling modes — the schedule "
                 "replay must not depend on the receiver's handling\n";
  }
  if (revised.first_fault_log != revised_rerun.first_fault_log ||
      revised.withdrawals != revised_rerun.withdrawals ||
      revised.routes_withdrawn != revised_rerun.routes_withdrawn ||
      revised.error_handling.treat_as_withdraws !=
          revised_rerun.error_handling.treat_as_withdraws) {
    ok = false;
    std::cerr << "FAIL: RFC 7606 run is not deterministic for a fixed seed\n";
  }

  std::cout << "\nfull-deployment detection holds under churn: flaps delay convergence "
               "and raise alarm counts, but resolution still pins the true origins and "
               "the post-quiescence network state audits clean. graceful restart keeps "
               "crash/restart cycles from masquerading as withdraw/re-announce churn, "
               "the resolver cache absorbs repeat registry lookups without moving "
               "any outcome, and RFC 7606 turns each corrupt UPDATE from a session-"
               "reset DoS into at most the loss of the routes it carried.\n";
  if (!ok) {
    std::cerr << "\nCHURN ABLATION FAILED\n";
    return EXIT_FAILURE;
  }
  return 0;
}
