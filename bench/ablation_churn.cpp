// Ablation — detection under churn: replay seeded fault schedules (link
// flaps, session resets, router crashes, lossy links) underneath the
// paper's attack workload and measure what background instability costs
// the MOAS-list scheme. The run doubles as a robustness gate: every run is
// audited by the network invariant checker, and moderate churn must not
// blow adoption of false routes past 2x the fault-free baseline.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <optional>

#include "bench_util.h"
#include "moas/chaos/schedule.h"
#include "moas/util/stats.h"
#include "moas/util/strings.h"

using namespace moas;
using namespace moas::bench;

namespace {

struct Regime {
  const char* label;
  std::optional<chaos::ScheduleConfig> churn;
  /// Gate this regime against 2x the fault-free adoption baseline. The
  /// heavy regime is reported but not gated: sustained downtime genuinely
  /// partitions ASes away from the valid origin, and what it must still
  /// deliver is a clean invariant audit.
  bool gated = true;
};

chaos::ScheduleConfig churn_regime(double flaps_per_link, double msg_fault_rate) {
  chaos::ScheduleConfig config;
  config.seed = 0xc0ffee;
  config.horizon = 120.0;
  config.flaps_per_link = flaps_per_link;
  config.downtime_mean = 4.0;
  config.session_resets_per_link = flaps_per_link / 2.0;
  config.crashes_per_router = flaps_per_link / 10.0;
  config.restart_delay_mean = 8.0;
  config.msg_drop = msg_fault_rate;
  config.msg_reorder = msg_fault_rate;
  return config;
}

struct Cell {
  double adopted_false = 0.0;  // mean fraction of non-attacker ASes
  double no_route = 0.0;
  double alarms = 0.0;
  std::size_t fault_events = 0;
  std::uint64_t message_faults = 0;
  std::size_t violations = 0;
};

/// Mirrors Experiment::run_point (3 origin sets x 5 attacker sets), but
/// keeps the churn bookkeeping run_point's SweepPoint drops.
Cell run_cell(const core::Experiment& experiment, const topo::AsGraph& graph,
              double attacker_fraction, util::Rng& rng) {
  std::size_t num_attackers = static_cast<std::size_t>(
      std::lround(attacker_fraction * static_cast<double>(graph.node_count())));
  if (attacker_fraction > 0.0 && num_attackers == 0) num_attackers = 1;

  Cell cell;
  util::Accumulator adopted, no_route, alarms;
  for (std::size_t i = 0; i < kOriginSets; ++i) {
    const bgp::AsnSet origins = experiment.draw_origins(rng);
    for (std::size_t j = 0; j < kAttackerSets; ++j) {
      const bgp::AsnSet attackers = experiment.draw_attackers(num_attackers, origins, rng);
      const core::RunResult run = experiment.run_with(origins, attackers, rng.next());
      adopted.add(run.adopted_false_fraction());
      no_route.add(run.no_route_fraction());
      alarms.add(static_cast<double>(run.alarms));
      cell.fault_events += run.fault_events;
      cell.message_faults += run.message_faults;
      cell.violations += run.invariant_report.size();
      for (const std::string& violation : run.invariant_report) {
        std::cerr << "invariant violation: " << violation << "\n";
      }
    }
  }
  cell.adopted_false = adopted.mean();
  cell.no_route = no_route.mean();
  cell.alarms = alarms.mean();
  return cell;
}

}  // namespace

int main() {
  const topo::AsGraph& graph = paper_topology(460);

  std::cout << "=== Ablation: detection under churn (fault schedules) ===\n";
  std::cout << "seeded link flaps / session resets / router crashes / lossy links "
               "replayed under the Section 5 attack workload; every run audited by "
               "the network invariant checker\n\n";

  const std::vector<Regime> regimes = {
      {"none", std::nullopt},
      {"mild", churn_regime(0.1, 0.0)},
      {"moderate", churn_regime(0.2, 0.005)},
      {"heavy", churn_regime(0.4, 0.02), /*gated=*/false},
  };
  const std::vector<double> fractions = {0.05, 0.20};

  util::TablePrinter table({"churn", "attacker_pct", "adopting_false_pct", "no_route_pct",
                            "alarms_per_run", "fault_events", "msg_faults", "violations"});
  bool ok = true;
  std::vector<double> baseline(fractions.size(), 0.0);
  for (const Regime& regime : regimes) {
    core::ExperimentConfig config;
    config.deployment = core::Deployment::Full;
    config.strategy = core::AttackerStrategy::OwnList;
    config.churn = regime.churn;
    config.check_invariants = true;
    core::Experiment experiment(graph, config);
    util::Rng rng(42);  // same workload draws per regime
    for (std::size_t f = 0; f < fractions.size(); ++f) {
      const Cell cell = run_cell(experiment, graph, fractions[f], rng);
      table.add_row({regime.label, util::fmt_double(fractions[f] * 100.0, 0),
                     util::fmt_double(cell.adopted_false * 100.0, 2),
                     util::fmt_double(cell.no_route * 100.0, 2),
                     util::fmt_double(cell.alarms, 1), std::to_string(cell.fault_events),
                     std::to_string(cell.message_faults), std::to_string(cell.violations)});
      if (cell.violations > 0) {
        ok = false;
        std::cerr << "FAIL: " << cell.violations << " invariant violations under '"
                  << regime.label << "' churn\n";
      }
      if (regime.churn == std::nullopt) {
        baseline[f] = cell.adopted_false;
      } else if (regime.gated) {
        // Churn may cost some adoption (flapped-away valid paths let a false
        // route in), but full deployment must stay within 2x the fault-free
        // baseline (absolute floor 1% guards a near-zero baseline).
        const double allowed = std::max(2.0 * baseline[f], 0.01);
        if (cell.adopted_false > allowed) {
          ok = false;
          std::cerr << "FAIL: adoption " << cell.adopted_false << " under '" << regime.label
                    << "' churn exceeds 2x baseline " << baseline[f] << "\n";
        }
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nfull-deployment detection holds under churn: flaps delay convergence "
               "and raise alarm counts, but resolution still pins the true origins and "
               "the post-quiescence network state audits clean.\n";
  if (!ok) {
    std::cerr << "\nCHURN ABLATION FAILED\n";
    return EXIT_FAILURE;
  }
  return 0;
}
