// Figure 4 — "The number of MOAS cases from 11/1997 to 7/2001": the daily
// count of prefixes announced by more than one origin AS, here bucketed by
// month (mean and max per month) with the two spike events visible.
#include <iostream>

#include "moas/measure/dates.h"
#include "moas/measure/observer.h"
#include "moas/measure/report.h"
#include "moas/measure/trace_gen.h"
#include "moas/util/rng.h"
#include "moas/util/strings.h"

using namespace moas;

int main() {
  util::Rng rng(1997);
  const measure::SyntheticTrace trace = measure::generate_trace(measure::TraceConfig{}, rng);
  measure::MoasObserver observer;
  observer.ingest_all(trace);

  std::cout << "=== Figure 4: daily number of MOAS cases, 11/1997 - 7/2001 ===\n";
  std::cout << "paper: median rises 683 (1998) -> 1294 (2001); spikes on 4/7/1998 "
               "(AS8584 fault) and 4/6/2001 (AS15412 fault)\n\n";
  const auto rows = measure::build_fig4_series(observer);
  measure::fig4_table(rows).print(std::cout);

  const auto summary = observer.summarize();
  std::cout << "\nmedian daily count 1998: " << util::fmt_double(summary.median_daily_1998, 0)
            << " (paper: 683)\n";
  std::cout << "median daily count 2001: " << util::fmt_double(summary.median_daily_2001, 0)
            << " (paper: 1294)\n";
  std::cout << "largest spike: day " << summary.max_daily_count_day << " ("
            << measure::mm_yy(measure::trace_date(summary.max_daily_count_day)) << ") with "
            << summary.max_daily_count << " cases (paper: 4/7/1998)\n";

  const int day2001 = measure::trace_day(measure::CivilDate{2001, 4, 6});
  std::cout << "4/6/2001 count: " << observer.daily_counts()[static_cast<std::size_t>(day2001)]
            << " (paper: 6627 cases that day, 5532 involving AS3561/AS15412)\n";
  return 0;
}
