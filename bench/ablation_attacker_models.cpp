// Ablation — attacker strategies: what the forged announcement carries does
// not matter (no list, own list, augmented list, valid-list-with-wrong-
// origin are all caught); only escaping the prefix match (sub-prefix
// hijack) defeats the mechanism. See ablation_subprefix for that case.
#include <iostream>

#include "bench_util.h"
#include "moas/util/strings.h"

using namespace moas;
using namespace moas::bench;

int main(int argc, char** argv) {
  const std::size_t jobs = bench_jobs(argc, argv);
  const topo::AsGraph& graph = paper_topology(460);

  std::cout << "=== Ablation: attacker list-forging strategies ===\n";
  std::cout << "paper (Sec 4.1): 'Although AS 3 could attach its own MOAS list that "
               "includes AS 1, AS 2, and AS 3, this list would not be in agreement "
               "with the MOAS list advertised by AS 1 and AS 2.'\n\n";

  util::TablePrinter table({"strategy", "normal_bgp_affected_pct", "full_moas_affected_pct", "alarms_per_run"});
  for (core::AttackerStrategy strategy :
       {core::AttackerStrategy::NoList, core::AttackerStrategy::OwnList,
        core::AttackerStrategy::AugmentedList,
        core::AttackerStrategy::ValidListForgedOrigin}) {
    core::ExperimentConfig config;
    config.num_origins = 2;
    config.strategy = strategy;

    config.deployment = core::Deployment::None;
    core::Experiment normal(graph, config);
    util::Rng rng_a(7);
    const auto without = normal.run_point(0.15, kOriginSets, kAttackerSets, rng_a, jobs);

    config.deployment = core::Deployment::Full;
    core::Experiment full(graph, config);
    util::Rng rng_b(7);
    const auto with = full.run_point(0.15, kOriginSets, kAttackerSets, rng_b, jobs);

    table.add_row({core::to_string(strategy),
                   util::fmt_double(without.mean_affected * 100.0, 2),
                   util::fmt_double(with.mean_affected * 100.0, 2),
                   util::fmt_double(with.mean_alarms, 1)});
  }
  table.print(std::cout);
  std::cout << "\nevery list-forging strategy collapses to the same structural "
               "residual under full detection.\n";
  return 0;
}
