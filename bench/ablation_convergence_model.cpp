// Ablation — when does the attack start? The paper's per-run SSFnet
// scenario races valid and false announcements from a cold start (how a
// fresh prefix announcement meets an ongoing fault). The alternative is a
// converged steady-state network that the fault then hits. With detection
// deployed, the difference is dramatic: pre-seeded reference lists plus
// already-installed valid routes make the converged network essentially
// immune.
#include <iostream>

#include "bench_util.h"
#include "moas/util/strings.h"

using namespace moas;
using namespace moas::bench;

int main(int argc, char** argv) {
  const std::size_t jobs = bench_jobs(argc, argv);
  const topo::AsGraph& graph = paper_topology(460);

  std::cout << "=== Ablation: cold-start race vs attack on a converged network ===\n\n";

  util::TablePrinter table({"scenario", "deployment", "adopting_false_pct", "no_route_pct"});
  for (bool converged : {false, true}) {
    for (auto deployment : {core::Deployment::None, core::Deployment::Full}) {
      core::ExperimentConfig config;
      config.converge_before_attack = converged;
      config.deployment = deployment;
      core::Experiment experiment(graph, config);
      util::Rng rng(23);
      const auto point = experiment.run_point(0.20, kOriginSets, kAttackerSets, rng, jobs);
      table.add_row({converged ? "converged-then-attack" : "cold-start race",
                     core::to_string(deployment),
                     util::fmt_double(point.mean_adopted_false * 100.0, 2),
                     util::fmt_double(point.mean_no_route * 100.0, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nthe paper's numbers correspond to the cold-start race (cut-off ASes "
               "never hear the valid route); once routes have converged, route-age "
               "preference plus remembered reference lists block the attack almost "
               "entirely even without detection everywhere.\n";
  return 0;
}
