// Engine microbenchmarks (google-benchmark): the hot paths under every
// figure bench — trie operations, the decision process, MOAS-list checks,
// and whole-network convergence.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "moas/core/detector.h"
#include "moas/core/moas_list.h"
#include "moas/net/prefix_trie.h"
#include "moas/topo/route_views.h"
#include "moas/util/rng.h"

using namespace moas;

namespace {

void BM_TrieInsert(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<net::Prefix> prefixes;
  for (int i = 0; i < 10000; ++i) {
    prefixes.emplace_back(net::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                          static_cast<unsigned>(8 + rng.index(17)));
  }
  for (auto _ : state) {
    net::PrefixTrie<int> trie;
    for (const auto& p : prefixes) trie.insert(p, 1);
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(prefixes.size()));
}
BENCHMARK(BM_TrieInsert);

void BM_TrieLongestMatch(benchmark::State& state) {
  util::Rng rng(2);
  net::PrefixTrie<int> trie;
  for (int i = 0; i < 100000; ++i) {
    trie.insert(net::Prefix(net::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                            static_cast<unsigned>(8 + rng.index(17))),
                i);
  }
  std::uint64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trie.longest_match(net::Ipv4Addr(static_cast<std::uint32_t>(probe += 2654435761u))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrieLongestMatch);

void BM_DecisionProcess(benchmark::State& state) {
  // Pick the best among N candidates.
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  std::vector<bgp::RibEntry> entries;
  for (std::size_t i = 0; i < n; ++i) {
    bgp::RibEntry entry;
    entry.route.prefix = *net::Prefix::parse("10.0.0.0/8");
    std::vector<bgp::Asn> path;
    const auto hops = 1 + rng.index(6);
    for (std::size_t h = 0; h < hops; ++h) {
      path.push_back(static_cast<bgp::Asn>(1 + rng.index(60000)));
    }
    entry.route.attrs.path = bgp::AsPath(std::move(path));
    entry.learned_from = static_cast<bgp::Asn>(i + 1);
    entries.push_back(std::move(entry));
  }
  std::vector<const bgp::RibEntry*> candidates;
  for (const auto& e : entries) candidates.push_back(&e);
  for (auto _ : state) benchmark::DoNotOptimize(bgp::select_best(candidates));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DecisionProcess)->Arg(2)->Arg(8)->Arg(32);

void BM_MoasListCheck(benchmark::State& state) {
  // The per-update cost of the paper's mechanism: decode + set compare.
  bgp::Route route;
  route.prefix = *net::Prefix::parse("135.38.0.0/16");
  route.attrs.path = bgp::AsPath({7, 4006});
  route.attrs.communities = core::encode_moas_list({4006, 2026});
  const bgp::AsnSet reference{4006, 2026};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::lists_consistent(core::effective_moas_list(route), reference));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MoasListCheck);

void BM_DetectorAccept(benchmark::State& state) {
  class NullContext final : public bgp::RouterContext {
   public:
    bgp::Asn self() const override { return 1; }
    sim::Time current_time() const override { return 0.0; }
    std::size_t invalidate_origins(const net::Prefix&, const bgp::AsnSet&) override {
      return 0;
    }
  };
  auto alarms = std::make_shared<core::AlarmLog>();
  core::MoasDetector detector(alarms, nullptr);
  NullContext ctx;
  bgp::Route route;
  route.prefix = *net::Prefix::parse("135.38.0.0/16");
  route.attrs.path = bgp::AsPath({7, 4006});
  route.attrs.communities = core::encode_moas_list({4006, 2026});
  for (auto _ : state) benchmark::DoNotOptimize(detector.accept(route, 7, ctx));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetectorAccept);

void BM_NetworkConvergence(benchmark::State& state) {
  // Full propagation of one prefix through a sampled paper topology.
  const auto size = static_cast<std::size_t>(state.range(0));
  const topo::AsGraph& graph = bench::paper_topology(size);
  for (auto _ : state) {
    bgp::Network network;
    for (bgp::Asn asn : graph.nodes()) network.add_router(asn);
    for (const auto& edge : graph.edges()) network.connect(edge.a, edge.b, edge.rel_of_b);
    network.router(graph.stubs().front()).originate(*net::Prefix::parse("10.0.0.0/8"));
    network.run_to_quiescence();
    benchmark::DoNotOptimize(network.messages_sent());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkConvergence)->Arg(250)->Arg(460)->Arg(630)->Unit(benchmark::kMillisecond);

void BM_FullExperimentRun(benchmark::State& state) {
  const topo::AsGraph& graph = bench::paper_topology(460);
  core::ExperimentConfig config;
  config.deployment = core::Deployment::Full;
  core::Experiment experiment(graph, config);
  util::Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(experiment.run_once(46, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullExperimentRun)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
