// Shared plumbing for the figure-reproduction benches: the fixed synthetic
// Internet, the paper's three sampled topologies (250/460/630 ASes), the
// attacker-fraction x-axis of Figures 9-11, and a uniform way to print a
// sweep as the rows the paper plots.
#pragma once

#include <string>
#include <vector>

#include "moas/core/experiment.h"
#include "moas/topo/graph.h"
#include "moas/util/table.h"

namespace moas::bench {

/// The deterministic "full Internet" all benches sample from (~2500 ASes).
const topo::AsGraph& shared_internet();

/// The paper's sampled topology of roughly `target` ASes (cached).
const topo::AsGraph& paper_topology(std::size_t target);

/// Figures 9-11 x-axis: attacker percentage of all ASes.
std::vector<double> paper_attacker_fractions();

/// The paper's per-point run budget: 3 origin sets x 5 attacker sets.
inline constexpr std::size_t kOriginSets = 3;
inline constexpr std::size_t kAttackerSets = 5;

/// Run one curve: a sweep over paper_attacker_fractions(). The paper uses
/// 3 origin sets x 5 attacker sets = 15 runs per point; figure benches pass
/// `attacker_sets` = 10 (30 runs) for tighter error bars.
std::vector<core::SweepPoint> run_curve(const topo::AsGraph& graph,
                                        const core::ExperimentConfig& config,
                                        std::uint64_t seed,
                                        std::size_t attacker_sets = kAttackerSets);

/// Label -> curve, printed as one table with a column per curve (mirrors
/// the multi-series figures).
struct Curve {
  std::string label;
  std::vector<core::SweepPoint> points;
};

util::TablePrinter curves_table(const std::vector<Curve>& curves);

/// Print the standard bench banner + the table (+ CSV).
void print_report(const std::string& title, const std::string& paper_note,
                  const std::vector<Curve>& curves);

}  // namespace moas::bench
