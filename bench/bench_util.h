// Shared plumbing for the figure-reproduction benches: the fixed synthetic
// Internet, the paper's three sampled topologies (250/460/630 ASes), the
// attacker-fraction x-axis of Figures 9-11, and a uniform way to print a
// sweep as the rows the paper plots.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "moas/core/experiment.h"
#include "moas/obs/metrics.h"
#include "moas/obs/trace.h"
#include "moas/topo/graph.h"
#include "moas/util/table.h"
#include "moas/util/thread_pool.h"

namespace moas::bench {

/// The deterministic "full Internet" all benches sample from — the default
/// topo::InternetConfig (~10k ASes: 12 tier-1 + 240 tier-2 + 500 tier-3 +
/// 9000 stubs). The first call logs the actual generated node/edge counts
/// to stderr so this claim cannot silently rot.
const topo::AsGraph& shared_internet();

/// The paper's sampled topology of roughly `target` ASes (cached). The
/// paper's three sizes (250/460/630) are pre-warmed in one shot, so
/// concurrent curves read an immutable map lock-free; other sizes go
/// through a mutex-guarded side cache. Safe to call from pool workers.
const topo::AsGraph& paper_topology(std::size_t target);

/// Worker count for parallel sweeps: `--jobs N` / `--jobs=N` on the
/// command line beats the MOAS_JOBS env var beats the hardware
/// concurrency (util::ThreadPool::default_jobs()).
std::size_t bench_jobs(int argc, char** argv);

/// Figures 9-11 x-axis: attacker percentage of all ASes.
std::vector<double> paper_attacker_fractions();

/// Event-trace dump options: `--trace-out PATH` / `--trace-out=PATH` on the
/// command line beats the MOAS_TRACE env var (either enables the dump; off
/// by default). `--trace-full` or MOAS_TRACE_LEVEL=full upgrades the level
/// from Summary to Full (per-UPDATE send/receive). The dump is JSONL, one
/// event per line, runs concatenated in plan order — bit-identical for any
/// --jobs. Schema: docs/EXPERIMENTS.md.
struct TraceOptions {
  std::string path;  // empty = no dump
  obs::TraceLevel level = obs::TraceLevel::Off;
  bool enabled() const { return !path.empty(); }
};
TraceOptions bench_trace(int argc, char** argv);

/// Append every run's kept event stream to `out` as JSONL, in the order the
/// results are given (plan order for execute_plan output).
void write_run_traces(std::ostream& out, const std::vector<core::RunResult>& results);

/// Write labeled registry snapshots as one JSON metrics manifest:
/// {"bench": <name>, "rows": {<label>: <registry>, ...}}. Keys are sorted
/// inside each registry, so equal inputs give byte-equal manifests.
void write_metrics_manifest(const std::string& path, const std::string& bench,
                            const std::vector<std::pair<std::string, const obs::MetricsRegistry*>>& rows);

/// The paper's per-point run budget: 3 origin sets x 5 attacker sets.
inline constexpr std::size_t kOriginSets = 3;
inline constexpr std::size_t kAttackerSets = 5;

/// Run one curve: a sweep over paper_attacker_fractions(). The paper uses
/// 3 origin sets x 5 attacker sets = 15 runs per point; figure benches pass
/// `attacker_sets` = 10 (30 runs) for tighter error bars. `jobs` workers
/// execute the runs; the curve is bit-identical for any job count.
std::vector<core::SweepPoint> run_curve(const topo::AsGraph& graph,
                                        const core::ExperimentConfig& config,
                                        std::uint64_t seed,
                                        std::size_t attacker_sets = kAttackerSets,
                                        std::size_t jobs = 1);

/// Label -> curve, printed as one table with a column per curve (mirrors
/// the multi-series figures).
struct Curve {
  std::string label;
  std::vector<core::SweepPoint> points;
};

/// A curve request for run_curves(): topology + label + config + sweep
/// seed. `graph` must outlive the call (the cached paper topologies do).
struct CurveSpec {
  std::string label;
  const topo::AsGraph* graph = nullptr;
  core::ExperimentConfig config;
  std::uint64_t seed = 0;
  std::size_t attacker_sets = kAttackerSets;
};

/// Run several curves' planned runs through ONE worker pool, so the tail
/// of one curve overlaps the head of the next instead of each curve
/// draining its own pool. Each curve's points are identical to running
/// run_curve() with the same seed, for any job count. When `trace` is
/// enabled, every run records events at (at least) trace.level and the
/// streams are dumped to trace.path curve-major in plan order.
std::vector<Curve> run_curves(const std::vector<CurveSpec>& specs, std::size_t jobs,
                              const TraceOptions& trace = {});

util::TablePrinter curves_table(const std::vector<Curve>& curves);

/// Print the standard bench banner + the table (+ CSV).
void print_report(const std::string& title, const std::string& paper_note,
                  const std::vector<Curve>& curves);

/// Print each curve's per-point alarm-latency summary, rendered from the
/// SweepPoint metrics registries ("detector.first_alarm_latency" /
/// "detector.eviction_latency" histograms): how many runs detected the
/// attack, how fast, and how fast the network evicted the false route.
/// Requires the runs to have traced at Summary level (else eviction shows
/// all runs stuck at 0 samples).
void print_latency_report(const std::vector<Curve>& curves);

}  // namespace moas::bench
