// Ablation — the Section 4.3 escape: "it could falsely announce a route to
// a prefix longer than p". MOAS-list checking is per-prefix, so a
// more-specific hijack never produces a list conflict and wins on
// longest-prefix match everywhere.
#include <iostream>

#include "bench_util.h"
#include "moas/util/strings.h"

using namespace moas;
using namespace moas::bench;

int main(int argc, char** argv) {
  const std::size_t jobs = bench_jobs(argc, argv);
  const topo::AsGraph& graph = paper_topology(460);

  std::cout << "=== Ablation: sub-prefix hijack escapes MOAS-list checking (Sec 4.3) ===\n\n";

  util::TablePrinter table({"attack", "deployment", "affected_pct", "alarms_per_run"});
  for (auto strategy :
       {core::AttackerStrategy::OwnList, core::AttackerStrategy::SubPrefixHijack}) {
    for (auto deployment : {core::Deployment::None, core::Deployment::Full}) {
      core::ExperimentConfig config;
      config.strategy = strategy;
      config.deployment = deployment;
      core::Experiment experiment(graph, config);
      util::Rng rng(13);
      const auto point = experiment.run_point(0.04, kOriginSets, kAttackerSets, rng, jobs);
      table.add_row({core::to_string(strategy), core::to_string(deployment),
                     util::fmt_double(point.mean_affected * 100.0, 2),
                     util::fmt_double(point.mean_alarms, 1)});
    }
  }
  table.print(std::cout);
  std::cout << "\nthe same-prefix attack is crushed by detection; the more-specific "
               "attack sails through with zero alarms — the limitation that later "
               "motivated prefix-coverage checks (sub-prefix hijack detection in "
               "RPKI/ROA max-length and systems like ARTEMIS).\n";
  return 0;
}
