// Microbenchmark — observability overhead: run the identical sweep plan
// with the trace bus Off, at Summary, and at Full, and report the
// wall-clock delta. The budget: Summary-level tracing (what fig9 and the
// churn ablation enable for the latency histograms) must cost under 2% of
// the Off baseline; Off itself is a null-pointer check per potential event
// (and compiles to nothing with MOAS_OBS_TRACE=OFF).
//
// Also a correctness gate, always enforced: the swept outcomes (adoption /
// alarm / no-route scalars) must be bit-identical across levels — the
// observer must not perturb the experiment.
//
// Usage:
//   micro_obs_overhead [--smoke] [--gate] [--reps N] [--jobs N] [--out PATH]
//
// --smoke shrinks the sweep so CI finishes in seconds; --gate enforces the
// 2% Summary budget (off by default: shared CI runners time too noisily to
// gate unconditionally); --reps sets the repetitions per level (the best
// rep is scored, which filters scheduler noise); --out overrides the
// BENCH_obs.json path. Runs execute serially (jobs fixed at 1) so the
// timing measures per-run cost, not pool scheduling.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "moas/util/strings.h"

using namespace moas;
using namespace moas::bench;

namespace {

struct LevelResult {
  obs::TraceLevel level = obs::TraceLevel::Off;
  double best_seconds = 0.0;
  double overhead_pct = 0.0;  // vs the Off baseline
  std::vector<core::SweepPoint> points;
};

/// Outcome identity across trace levels compares the swept scalars only:
/// the registries legitimately differ (Summary adds eviction-latency
/// samples Off cannot compute), but nothing the experiment *measures* may
/// move when an observer is attached.
bool outcomes_identical(const std::vector<core::SweepPoint>& a,
                        const std::vector<core::SweepPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const core::SweepPoint& x = a[i];
    const core::SweepPoint& y = b[i];
    if (x.attacker_fraction != y.attacker_fraction || x.runs != y.runs ||
        x.mean_adopted_false != y.mean_adopted_false ||
        x.stddev_adopted_false != y.stddev_adopted_false ||
        x.mean_affected != y.mean_affected || x.mean_no_route != y.mean_no_route ||
        x.mean_alarms != y.mean_alarms || x.mean_false_alarms != y.mean_false_alarms ||
        x.mean_structural_cutoff != y.mean_structural_cutoff) {
      return false;
    }
  }
  return true;
}

std::string json_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool gate = false;
  std::size_t reps = 3;
  std::string out_path = "BENCH_obs.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    if (arg == "--gate") gate = true;
    if (arg == "--reps" && i + 1 < argc) reps = std::strtoul(argv[i + 1], nullptr, 10);
    if (arg == "--out" && i + 1 < argc) out_path = argv[i + 1];
  }
  if (reps == 0) reps = 1;
  if (smoke) reps = std::min<std::size_t>(reps, 2);

  const topo::AsGraph& graph = paper_topology(250);
  const std::vector<double> fractions =
      smoke ? std::vector<double>{0.05, 0.20} : std::vector<double>{0.05, 0.20, 0.30};
  const std::size_t origin_sets = smoke ? 2 : kOriginSets;
  const std::size_t attacker_sets = smoke ? 2 : kAttackerSets;
  const std::size_t total_runs = fractions.size() * origin_sets * attacker_sets;
  constexpr std::uint64_t kSeed = 2501;

  std::cout << "=== Micro: observability overhead (" << graph.node_count() << "-AS, "
            << total_runs << " runs/level, best of " << reps << (smoke ? ", smoke" : "")
            << ") ===\n";
  std::cout << "trace compiled " << (obs::kTraceCompiledIn ? "in" : "OUT (MOAS_OBS_TRACE=OFF)")
            << "; Summary budget: < 2% over the Off baseline\n\n";

  const std::vector<obs::TraceLevel> levels = {
      obs::TraceLevel::Off, obs::TraceLevel::Summary, obs::TraceLevel::Full};
  std::vector<LevelResult> results;
  for (const obs::TraceLevel level : levels) {
    core::ExperimentConfig config;
    config.num_origins = 1;
    config.deployment = core::Deployment::Full;
    config.trace_level = level;
    core::Experiment experiment(graph, config);

    LevelResult result;
    result.level = level;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      util::Rng rng(kSeed);  // identical plan every rep and every level
      const auto start = std::chrono::steady_clock::now();
      std::vector<core::SweepPoint> points =
          experiment.sweep(fractions, origin_sets, attacker_sets, rng, /*jobs=*/1);
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (rep == 0 || elapsed.count() < result.best_seconds) {
        result.best_seconds = elapsed.count();
      }
      if (rep == 0) result.points = std::move(points);
    }
    if (!results.empty()) {
      const double baseline = results.front().best_seconds;
      result.overhead_pct = (result.best_seconds - baseline) / baseline * 100.0;
    }
    results.push_back(std::move(result));
  }

  bool outcomes_ok = true;
  util::TablePrinter table({"trace_level", "best_seconds", "runs_per_sec", "overhead_pct"});
  for (const LevelResult& result : results) {
    table.add_row({obs::to_string(result.level), util::fmt_double(result.best_seconds, 3),
                   util::fmt_double(static_cast<double>(total_runs) / result.best_seconds, 2),
                   util::fmt_double(result.overhead_pct, 2)});
    if (!outcomes_identical(results.front().points, result.points)) {
      outcomes_ok = false;
      std::cerr << "FAIL: sweep outcomes at trace level " << obs::to_string(result.level)
                << " differ from the untraced baseline — the observer perturbed "
                   "the experiment\n";
    }
  }
  table.print(std::cout);
  bool ok = outcomes_ok;

  const double summary_overhead = results[1].overhead_pct;
  if (gate && obs::kTraceCompiledIn && summary_overhead > 2.0) {
    ok = false;
    std::cerr << "FAIL: Summary-level tracing costs " << util::fmt_double(summary_overhead, 2)
              << "% — over the 2% budget\n";
  }

  // Manifest: the timings plus one merged registry snapshot (the Summary
  // run's first sweep point), so CI archives both the overhead numbers and
  // a full example of the exported metrics schema.
  std::ofstream out(out_path);
  out << "{\n";
  out << "  \"bench\": \"micro_obs_overhead\",\n";
  out << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
  out << "  \"trace_compiled_in\": " << (obs::kTraceCompiledIn ? "true" : "false") << ",\n";
  out << "  \"topology_ases\": " << graph.node_count() << ",\n";
  out << "  \"total_runs\": " << total_runs << ",\n";
  out << "  \"reps\": " << reps << ",\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    out << "    {\"trace_level\": \"" << obs::to_string(results[i].level)
        << "\", \"best_seconds\": " << json_double(results[i].best_seconds)
        << ", \"overhead_pct\": " << json_double(results[i].overhead_pct) << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"outcomes_identical\": " << (outcomes_ok ? "true" : "false") << ",\n";
  out << "  \"summary_metrics\": " << results[1].points.front().metrics.to_json() << "\n";
  out << "}\n";
  out.close();
  std::cout << "\nwrote " << out_path << "\n";

  if (!ok) {
    std::cerr << "\nOBS OVERHEAD BENCH FAILED\n";
    return EXIT_FAILURE;
  }
  std::cout << "tracing leaves every swept outcome bit-identical; Summary overhead "
            << util::fmt_double(summary_overhead, 2) << "% vs the untraced baseline.\n";
  return 0;
}
