// Ablation — detection latency: in-line checking (modified BGP) versus the
// Section 4.2 off-line monitoring process that "periodically downloads the
// BGP routing messages and checks the MOAS List consistency from multiple
// peers". The off-line path needs no router changes but pays the scan
// period in time-to-alarm.
#include <iostream>

#include "bench_util.h"
#include "moas/core/monitor.h"
#include "moas/topo/route_views.h"
#include "moas/util/stats.h"
#include "moas/util/strings.h"

using namespace moas;
using namespace moas::bench;

namespace {

struct LatencySample {
  bool detected = false;
  double latency = 0.0;
};

/// One attack; returns the time from attack launch to the first alarm.
LatencySample run_once(const topo::AsGraph& graph, bool inline_detection,
                       double scan_period, std::uint64_t seed) {
  util::Rng rng(seed);
  bgp::Network network;
  for (bgp::Asn asn : graph.nodes()) network.add_router(asn);
  for (const auto& edge : graph.edges()) network.connect(edge.a, edge.b, edge.rel_of_b);

  const std::vector<bgp::Asn> stubs = graph.stubs();
  const bgp::Asn origin = stubs[rng.index(stubs.size())];
  const net::Prefix victim = topo::prefix_for_asn(origin);

  auto truth = std::make_shared<core::PrefixOriginDb>();
  truth->set(victim, {origin});
  auto resolver = std::make_shared<core::OracleResolver>(truth);
  auto alarms = std::make_shared<core::AlarmLog>();
  if (inline_detection) {
    for (bgp::Asn asn : graph.nodes()) {
      network.router(asn).set_validator(
          std::make_shared<core::MoasDetector>(alarms, resolver));
    }
  }

  network.router(origin).originate(victim);
  network.run_to_quiescence();

  // The fault strikes a converged network at a known instant.
  bgp::Asn attacker;
  do {
    const auto nodes = graph.nodes();
    attacker = nodes[rng.index(nodes.size())];
  } while (attacker == origin);
  const double attack_time = network.clock().now();
  core::AttackPlan plan;
  plan.attacker = attacker;
  plan.target = victim;
  plan.valid_origins = {origin};
  core::launch_attack(network, plan);

  LatencySample sample;
  if (inline_detection) {
    network.run_to_quiescence();
    if (!alarms->empty()) {
      sample.detected = true;
      double first = alarms->alarms().front().at;
      for (const auto& alarm : alarms->alarms()) first = std::min(first, alarm.at);
      sample.latency = first - attack_time;
    }
    return sample;
  }

  // Off-line monitor: vantages are the five best-connected ASes (a
  // RouteViews-like peer set); scan every `scan_period` seconds.
  std::vector<bgp::Asn> vantages = graph.nodes();
  std::sort(vantages.begin(), vantages.end(), [&](bgp::Asn a, bgp::Asn b) {
    return graph.degree(a) > graph.degree(b);
  });
  vantages.resize(5);
  core::MoasMonitor monitor(vantages);

  // The first scan happens at a uniformly random phase of the period.
  double scan_at = attack_time + rng.uniform01() * scan_period;
  for (int scan = 0; scan < 400; ++scan) {
    network.clock().run_until(scan_at);
    if (!monitor.scan(network).empty()) {
      sample.detected = true;
      sample.latency = scan_at - attack_time;
      return sample;
    }
    scan_at += scan_period;
  }
  return sample;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t jobs = bench_jobs(argc, argv);
  const topo::AsGraph& graph = paper_topology(460);

  std::cout << "=== Ablation: time-to-alarm, in-line checking vs off-line monitor ===\n";
  std::cout << "(single random attacker against a converged 460-AS network; 25 trials "
               "per row; monitor watches the 5 best-connected ASes)\n\n";

  util::TablePrinter table(
      {"mechanism", "detection_rate", "mean_latency_s", "p95_latency_s"});
  auto add_row = [&](const std::string& label, bool inline_detection, double period) {
    // Trials carry explicit per-trial seeds, so they run across the pool;
    // the reduction walks trial order to keep the row deterministic.
    constexpr std::size_t kTrials = 25;
    std::vector<LatencySample> samples(kTrials);
    util::ThreadPool pool(jobs);
    pool.parallel_for(kTrials, [&](std::size_t trial) {
      samples[trial] =
          run_once(graph, inline_detection, period, 1000 + static_cast<std::uint64_t>(trial));
    });
    std::vector<double> latencies;
    int detected = 0;
    for (const LatencySample& sample : samples) {
      if (sample.detected) {
        ++detected;
        latencies.push_back(sample.latency);
      }
    }
    table.add_row(
        {label, util::fmt_double(detected * 100.0 / 25.0, 0) + "%",
         latencies.empty() ? "-" : util::fmt_double(util::median(latencies), 2),
         latencies.empty() ? "-" : util::fmt_double(util::percentile(latencies, 95), 2)});
  };

  add_row("in-line MOAS checking", true, 0.0);
  add_row("off-line monitor, 30s scans", false, 30.0);
  add_row("off-line monitor, 5min scans", false, 300.0);
  add_row("off-line monitor, daily scans", false, 86400.0);
  table.print(std::cout);
  std::cout << "\nin-line checking alarms within one propagation delay; the off-line "
               "monitor trades router changes for its scan period (the paper's daily "
               "RouteViews dumps put it in the last row).\n";
  return 0;
}
