// Figure 10 — Experiment 2: effect of topology size (250 vs 460 vs 630
// ASes). Two panels: (a) one origin AS, (b) two origin ASes; six curves
// each (Normal BGP and Full MOAS Detection per topology).
//
// Paper observations: (1) without detection the three topologies behave
// similarly; (2) with detection, the larger topology is markedly more
// robust (e.g. ~7.8% vs ~31.2% adoption at ~35% attackers for 630 vs 250).
//
// --extended continues the curves past the paper's sizes (2000 / 5000 /
// 9000 ASes, sampled from the ~9.8k-AS shared internet) under the
// rank-ordered wave engine — the event engine's
// timed message load at those sizes is the very wall DESIGN.md §10/§13
// describe. Wave runs are timeless (mrai 0, no route-age preference), so
// every size in extended mode uses the wave engine for comparability.
// Not part of CI; run it to regenerate the extended-figure rows in
// docs/EXPERIMENTS.md.
#include <string>

#include "bench_util.h"

using namespace moas;
using namespace moas::bench;

int main(int argc, char** argv) {
  const std::size_t jobs = bench_jobs(argc, argv);
  bool extended = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--extended") extended = true;
  }
  std::vector<std::size_t> sizes{250, 460, 630};
  if (extended) sizes.insert(sizes.end(), {2000, 5000, 9000});

  for (std::size_t origins : {std::size_t{1}, std::size_t{2}}) {
    std::vector<CurveSpec> specs;
    for (std::size_t size : sizes) {
      core::ExperimentConfig config;
      config.num_origins = origins;
      config.deployment = core::Deployment::None;
      if (extended) {
        config.engine = core::Engine::Wave;
        config.mrai = 0.0;
        config.prefer_established = false;
      }
      specs.push_back(CurveSpec{std::to_string(size) + "as_normal", &paper_topology(size),
                                config, size * 10 + origins, 10});
    }
    for (std::size_t size : sizes) {
      core::ExperimentConfig config;
      config.num_origins = origins;
      config.deployment = core::Deployment::Full;
      if (extended) {
        config.engine = core::Engine::Wave;
        config.mrai = 0.0;
        config.prefer_established = false;
      }
      specs.push_back(CurveSpec{std::to_string(size) + "as_full", &paper_topology(size),
                                config, size * 10 + origins, 10});
    }
    print_report("Figure 10(" + std::string(origins == 1 ? "a" : "b") + "): topology size "
                     "comparison, " + std::to_string(origins) + " origin AS" +
                     (origins > 1 ? "es" : "") +
                     (extended ? " [extended sizes, wave engine]" : ""),
                 "paper: the three normal-BGP curves bunch together at the top; with "
                 "detection, larger topologies are more robust",
                 run_curves(specs, jobs));
  }
  return 0;
}
