// Figure 10 — Experiment 2: effect of topology size (250 vs 460 vs 630
// ASes). Two panels: (a) one origin AS, (b) two origin ASes; six curves
// each (Normal BGP and Full MOAS Detection per topology).
//
// Paper observations: (1) without detection the three topologies behave
// similarly; (2) with detection, the larger topology is markedly more
// robust (e.g. ~7.8% vs ~31.2% adoption at ~35% attackers for 630 vs 250).
#include "bench_util.h"

using namespace moas;
using namespace moas::bench;

int main(int argc, char** argv) {
  const std::size_t jobs = bench_jobs(argc, argv);
  const std::vector<std::size_t> sizes{250, 460, 630};

  for (std::size_t origins : {std::size_t{1}, std::size_t{2}}) {
    std::vector<CurveSpec> specs;
    for (std::size_t size : sizes) {
      core::ExperimentConfig config;
      config.num_origins = origins;
      config.deployment = core::Deployment::None;
      specs.push_back(CurveSpec{std::to_string(size) + "as_normal", &paper_topology(size),
                                config, size * 10 + origins, 10});
    }
    for (std::size_t size : sizes) {
      core::ExperimentConfig config;
      config.num_origins = origins;
      config.deployment = core::Deployment::Full;
      specs.push_back(CurveSpec{std::to_string(size) + "as_full", &paper_topology(size),
                                config, size * 10 + origins, 10});
    }
    print_report("Figure 10(" + std::string(origins == 1 ? "a" : "b") + "): topology size "
                     "comparison, " + std::to_string(origins) + " origin AS" +
                     (origins > 1 ? "es" : ""),
                 "paper: the three normal-BGP curves bunch together at the top; with "
                 "detection, larger topologies are more robust",
                 run_curves(specs, jobs));
  }
  return 0;
}
