#include "bench_util.h"

#include <iostream>
#include <map>

#include "moas/topo/gen_internet.h"
#include "moas/topo/sampler.h"
#include "moas/util/strings.h"

namespace moas::bench {

const topo::AsGraph& shared_internet() {
  static const topo::AsGraph graph = [] {
    util::Rng rng(19971108);  // the first day of the paper's measurement
    topo::InternetConfig config;  // defaults: ~2500 ASes, power-law, tiered
    return topo::generate_internet(config, rng);
  }();
  return graph;
}

const topo::AsGraph& paper_topology(std::size_t target) {
  static std::map<std::size_t, topo::AsGraph> cache;
  auto it = cache.find(target);
  if (it == cache.end()) {
    // Per-size sample seeds, selected so that each fixed topology matches
    // the per-topology robustness the paper reports for its (equally
    // specific) 250/460/630-AS samples: structural cut-off at 30% random
    // attackers of ~27%, ~10%, ~9% respectively. Other seeds vary by a few
    // points either way (sampling noise); the selection is documented in
    // EXPERIMENTS.md.
    static const std::map<std::size_t, std::uint64_t> kSampleSeeds{
        {250, 250 * 7919 + 2}, {460, 460 * 7919 + 0}, {630, 630 * 7919 + 1}};
    auto seed_it = kSampleSeeds.find(target);
    util::Rng rng(seed_it != kSampleSeeds.end() ? seed_it->second : target * 7919);
    it = cache.emplace(target, topo::sample_to_size(shared_internet(), target, rng)).first;
    std::cerr << "[bench] sampled " << it->second.node_count() << "-AS topology ("
              << it->second.stubs().size() << " stubs, " << it->second.edge_count()
              << " peerings) for target " << target << "\n";
  }
  return it->second;
}

std::vector<double> paper_attacker_fractions() {
  return {0.02, 0.04, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40};
}

std::vector<core::SweepPoint> run_curve(const topo::AsGraph& graph,
                                        const core::ExperimentConfig& config,
                                        std::uint64_t seed, std::size_t attacker_sets) {
  core::Experiment experiment(graph, config);
  util::Rng rng(seed);
  return experiment.sweep(paper_attacker_fractions(), kOriginSets, attacker_sets, rng);
}

util::TablePrinter curves_table(const std::vector<Curve>& curves) {
  std::vector<std::string> headers{"attackers_pct"};
  for (const auto& curve : curves) headers.push_back(curve.label + "_pct");
  util::TablePrinter table(std::move(headers));
  if (curves.empty()) return table;
  const std::size_t rows = curves.front().points.size();
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<std::string> row;
    row.push_back(util::fmt_double(curves.front().points[i].attacker_fraction * 100.0, 0));
    for (const auto& curve : curves) {
      row.push_back(util::fmt_double(curve.points[i].mean_affected * 100.0, 2));
    }
    table.add_row(std::move(row));
  }
  return table;
}

void print_report(const std::string& title, const std::string& paper_note,
                  const std::vector<Curve>& curves) {
  std::cout << "=== " << title << " ===\n";
  if (!paper_note.empty()) std::cout << paper_note << "\n";
  const std::size_t runs =
      curves.empty() || curves.front().points.empty() ? 0 : curves.front().points.front().runs;
  std::cout << "(each point: mean % of non-attacker ASes affected — hijacked to an "
               "attacker or left without a route — over "
            << runs << " runs)\n\n";
  const util::TablePrinter table = curves_table(curves);
  table.print(std::cout);
  std::cout << "\ncsv:\n";
  table.print_csv(std::cout);
  std::cout << "\n";
}

}  // namespace moas::bench
