#include "bench_util.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <string_view>

#include "moas/obs/event.h"
#include "moas/topo/gen_internet.h"
#include "moas/topo/sampler.h"
#include "moas/util/assert.h"
#include "moas/util/strings.h"

namespace moas::bench {

const topo::AsGraph& shared_internet() {
  static const topo::AsGraph graph = [] {
    util::Rng rng(19971108);  // the first day of the paper's measurement
    topo::InternetConfig config;  // defaults: ~10k ASes, power-law, tiered
    topo::AsGraph g = topo::generate_internet(config, rng);
    std::cerr << "[bench] generated shared internet: " << g.node_count() << " ASes ("
              << g.stubs().size() << " stubs), " << g.edge_count() << " edges\n";
    return g;
  }();
  return graph;
}

namespace {

topo::AsGraph sample_paper_topology(std::size_t target) {
  // Per-size sample seeds, selected so that each fixed topology matches
  // the per-topology robustness the paper reports for its (equally
  // specific) 250/460/630-AS samples: structural cut-off at 30% random
  // attackers of ~27%, ~10%, ~9% respectively. Other seeds vary by a few
  // points either way (sampling noise); the selection is documented in
  // EXPERIMENTS.md.
  static const std::map<std::size_t, std::uint64_t> kSampleSeeds{
      {250, 250 * 7919 + 2}, {460, 460 * 7919 + 0}, {630, 630 * 7919 + 1}};
  const auto seed_it = kSampleSeeds.find(target);
  util::Rng rng(seed_it != kSampleSeeds.end() ? seed_it->second : target * 7919);
  topo::AsGraph graph = topo::sample_to_size(shared_internet(), target, rng);
  std::cerr << "[bench] sampled " << graph.node_count() << "-AS topology ("
            << graph.stubs().size() << " stubs, " << graph.edge_count()
            << " peerings) for target " << target << "\n";
  return graph;
}

}  // namespace

const topo::AsGraph& paper_topology(std::size_t target) {
  // Pre-warm the paper's three sizes in one magic-static init: afterwards
  // the map is immutable, so concurrent curves (pool workers included)
  // look their topology up lock-free. Anything else — tests, exploratory
  // sizes — goes through a mutex-guarded side cache; the lock also covers
  // the lookup because that map *can* grow under a reader's feet.
  static const std::map<std::size_t, topo::AsGraph> warm = [] {
    std::map<std::size_t, topo::AsGraph> sizes;
    for (const std::size_t size : {std::size_t{250}, std::size_t{460}, std::size_t{630}}) {
      sizes.emplace(size, sample_paper_topology(size));
    }
    return sizes;
  }();
  if (const auto it = warm.find(target); it != warm.end()) return it->second;

  static std::mutex mutex;
  static std::map<std::size_t, topo::AsGraph> extra;
  const std::scoped_lock lock(mutex);
  auto it = extra.find(target);
  if (it == extra.end()) it = extra.emplace(target, sample_paper_topology(target)).first;
  return it->second;  // node-based map: the reference outlives later inserts
}

std::size_t bench_jobs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string_view value;
    if (arg == "--jobs" && i + 1 < argc) {
      value = argv[i + 1];
    } else if (arg.rfind("--jobs=", 0) == 0) {
      value = arg.substr(7);
    } else {
      continue;
    }
    const std::string text(value);
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(text.c_str(), &end, 10);
    if (text.empty() || end != text.c_str() + text.size() || parsed == 0) {
      std::cerr << "[bench] ignoring invalid --jobs value '" << text
                << "' (want a positive integer)\n";
      break;
    }
    return static_cast<std::size_t>(parsed);
  }
  return util::ThreadPool::default_jobs();
}

std::vector<double> paper_attacker_fractions() {
  return {0.02, 0.04, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40};
}

TraceOptions bench_trace(int argc, char** argv) {
  TraceOptions options;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--trace-out" && i + 1 < argc) {
      options.path = argv[i + 1];
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      options.path = std::string(arg.substr(12));
    } else if (arg == "--trace-full") {
      full = true;
    }
  }
  if (options.path.empty()) {
    if (const char* env = std::getenv("MOAS_TRACE")) options.path = env;
  }
  if (const char* env = std::getenv("MOAS_TRACE_LEVEL")) {
    if (std::string_view(env) == "full") full = true;
  }
  if (options.enabled()) {
    options.level = full ? obs::TraceLevel::Full : obs::TraceLevel::Summary;
    if (!obs::kTraceCompiledIn) {
      std::cerr << "[bench] trace requested but the bus is compiled out "
                   "(MOAS_OBS_TRACE=OFF) — the dump will be empty\n";
    }
  }
  return options;
}

void write_run_traces(std::ostream& out, const std::vector<core::RunResult>& results) {
  for (const core::RunResult& run : results) {
    obs::write_trace_jsonl(out, run.trace);
  }
}

void write_metrics_manifest(
    const std::string& path, const std::string& bench,
    const std::vector<std::pair<std::string, const obs::MetricsRegistry*>>& rows) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"" << bench << "\",\n  \"rows\": {\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    MOAS_REQUIRE(rows[i].second != nullptr, "manifest row needs a registry");
    out << "    \"" << rows[i].first << "\": " << rows[i].second->to_json()
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  }\n}\n";
  out.close();
  std::cout << "wrote metrics manifest " << path << "\n";
}

std::vector<core::SweepPoint> run_curve(const topo::AsGraph& graph,
                                        const core::ExperimentConfig& config,
                                        std::uint64_t seed, std::size_t attacker_sets,
                                        std::size_t jobs) {
  core::Experiment experiment(graph, config);
  util::Rng rng(seed);
  return experiment.sweep(paper_attacker_fractions(), kOriginSets, attacker_sets, rng, jobs);
}

std::vector<Curve> run_curves(const std::vector<CurveSpec>& specs, std::size_t jobs,
                              const TraceOptions& trace) {
  // Plan every curve serially (each from its own seed), then interleave
  // ALL runs through one pool: the slow tail of one curve overlaps the
  // next curve's head. Reduction stays per-curve in plan order, so each
  // curve is exactly what run_curve() would have produced.
  std::vector<core::Experiment> experiments;
  experiments.reserve(specs.size());
  std::vector<core::SweepPlan> plans;
  plans.reserve(specs.size());
  std::vector<std::vector<core::RunResult>> results(specs.size());
  for (std::size_t c = 0; c < specs.size(); ++c) {
    MOAS_REQUIRE(specs[c].graph != nullptr, "CurveSpec needs a topology");
    core::ExperimentConfig config = specs[c].config;
    if (trace.enabled()) {
      // Recording at a coarser level than the config asked for would drop
      // events the bench relies on — only ever raise the level.
      if (config.trace_level < trace.level) config.trace_level = trace.level;
      config.keep_trace = true;
    }
    experiments.emplace_back(*specs[c].graph, config);
    util::Rng rng(specs[c].seed);
    plans.push_back(experiments.back().plan_sweep(paper_attacker_fractions(), kOriginSets,
                                                  specs[c].attacker_sets, rng));
    results[c].resize(plans[c].runs.size());
  }
  util::ThreadPool pool(jobs);
  for (std::size_t c = 0; c < specs.size(); ++c) {
    for (std::size_t i = 0; i < plans[c].runs.size(); ++i) {
      pool.submit([&experiments, &plans, &results, c, i] {
        const core::PlannedRun& run = plans[c].runs[i];
        results[c][i] = experiments[c].run_with(run.origins, run.attackers, run.seed);
      });
    }
  }
  pool.wait();
  if (trace.enabled()) {
    // Curve-major, plan-order dump: the per-run streams were recorded by
    // single-threaded runs, so this serialization is bit-identical for any
    // job count.
    std::ofstream out(trace.path);
    for (const std::vector<core::RunResult>& curve_results : results) {
      write_run_traces(out, curve_results);
    }
    std::cerr << "[bench] wrote event trace " << trace.path << "\n";
  }
  std::vector<Curve> curves;
  curves.reserve(specs.size());
  for (std::size_t c = 0; c < specs.size(); ++c) {
    curves.push_back({specs[c].label, experiments[c].reduce_plan(plans[c], results[c])});
  }
  return curves;
}

util::TablePrinter curves_table(const std::vector<Curve>& curves) {
  std::vector<std::string> headers{"attackers_pct"};
  for (const auto& curve : curves) headers.push_back(curve.label + "_pct");
  util::TablePrinter table(std::move(headers));
  if (curves.empty()) return table;
  const std::size_t rows = curves.front().points.size();
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<std::string> row;
    row.push_back(util::fmt_double(curves.front().points[i].attacker_fraction * 100.0, 0));
    for (const auto& curve : curves) {
      row.push_back(util::fmt_double(curve.points[i].mean_affected * 100.0, 2));
    }
    table.add_row(std::move(row));
  }
  return table;
}

void print_report(const std::string& title, const std::string& paper_note,
                  const std::vector<Curve>& curves) {
  std::cout << "=== " << title << " ===\n";
  if (!paper_note.empty()) std::cout << paper_note << "\n";
  const std::size_t runs =
      curves.empty() || curves.front().points.empty() ? 0 : curves.front().points.front().runs;
  std::cout << "(each point: mean % of non-attacker ASes affected — hijacked to an "
               "attacker or left without a route — over "
            << runs << " runs)\n\n";
  const util::TablePrinter table = curves_table(curves);
  table.print(std::cout);
  std::cout << "\ncsv:\n";
  table.print_csv(std::cout);
  std::cout << "\n";
}

void print_latency_report(const std::vector<Curve>& curves) {
  for (const Curve& curve : curves) {
    std::cout << "alarm latency [" << curve.label
              << "] (simulated seconds from false-origin injection; alarm = first "
                 "attacker-implicating alarm, evict = network-wide false-route "
                 "eviction; stuck runs keep the false route at quiescence):\n";
    util::TablePrinter table({"attackers_pct", "runs", "alarmed", "alarm_mean", "alarm_p50",
                              "alarm_p90", "evicted", "evict_mean", "evict_p90", "stuck"});
    for (const core::SweepPoint& point : curve.points) {
      const obs::FixedHistogram* alarm =
          point.metrics.find_histogram("detector.first_alarm_latency");
      const obs::FixedHistogram* evict =
          point.metrics.find_histogram("detector.eviction_latency");
      MOAS_REQUIRE(alarm != nullptr && evict != nullptr,
                   "SweepPoint registry is missing the latency histograms");
      table.add_row({util::fmt_double(point.attacker_fraction * 100.0, 0),
                     std::to_string(point.runs), std::to_string(alarm->count()),
                     util::fmt_double(alarm->mean(), 3),
                     util::fmt_double(alarm->quantile(0.5), 3),
                     util::fmt_double(alarm->quantile(0.9), 3),
                     std::to_string(evict->count()), util::fmt_double(evict->mean(), 3),
                     util::fmt_double(evict->quantile(0.9), 3),
                     std::to_string(point.runs_false_route_stuck)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
}

}  // namespace moas::bench
