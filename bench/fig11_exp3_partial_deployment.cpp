// Figure 11 — Experiment 3: partial deployment. Panels for the 460-AS and
// 630-AS topologies; each compares Normal BGP, Half (50%) MOAS Detection,
// and Full MOAS Detection.
//
// Paper reference: in the 630-AS topology, half deployment cuts the
// percentage of ASes adopting the attackers' routes by more than 63% at 30%
// attackers, and the larger topology does better under partial deployment.
#include "bench_util.h"

using namespace moas;
using namespace moas::bench;

int main(int argc, char** argv) {
  const std::size_t jobs = bench_jobs(argc, argv);
  for (std::size_t size : {std::size_t{460}, std::size_t{630}}) {
    const topo::AsGraph& graph = paper_topology(size);
    core::ExperimentConfig config;
    config.num_origins = 1;

    config.deployment = core::Deployment::None;
    CurveSpec normal{"normal_bgp", &graph, config, size + 1, 10};
    config.deployment = core::Deployment::Partial;
    config.deployment_fraction = 0.5;
    CurveSpec half{"half_moas", &graph, config, size + 2, 10};
    config.deployment = core::Deployment::Full;
    CurveSpec full{"full_moas", &graph, config, size + 3, 10};

    print_report("Figure 11: partial vs complete deployment, " +
                     std::to_string(graph.node_count()) + "-AS topology",
                 "paper: half of the nodes checking MOAS lists already blocks most "
                 "false-route adoption for everyone",
                 run_curves({normal, half, full}, jobs));
  }
  return 0;
}
