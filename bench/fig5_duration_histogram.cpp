// Figure 5 — "Duration of MOAS": histogram of the number of days each MOAS
// case was observed (total active days, not necessarily contiguous).
#include <iostream>

#include "moas/measure/observer.h"
#include "moas/measure/report.h"
#include "moas/measure/trace_gen.h"
#include "moas/util/rng.h"
#include "moas/util/strings.h"

using namespace moas;

int main() {
  util::Rng rng(1997);
  const measure::SyntheticTrace trace = measure::generate_trace(measure::TraceConfig{}, rng);
  measure::MoasObserver observer;
  observer.ingest_all(trace);

  std::cout << "=== Figure 5: duration of MOAS cases ===\n";
  std::cout << "paper: most cases are short-lived — 35.9% last a single day — with a "
               "long tail of persistent (valid multi-homing) cases\n\n";
  const auto rows = measure::build_fig5_histogram(observer);
  measure::fig5_table(rows).print(std::cout);

  const auto summary = observer.summarize();
  std::cout << "\none-day cases: " << summary.one_day_cases << " of " << summary.total_cases
            << " (" << util::fmt_double(summary.one_day_fraction * 100.0, 1)
            << "%; paper: 35.9%)\n";
  std::cout << "of the one-day cases, attributable to the 4/7/1998 event: "
            << util::fmt_double(summary.one_day_spike_share * 100.0, 1)
            << "% (paper: 82.7%)\n";
  return 0;
}
