// Microbenchmark — parallel sweep scaling: time the Figure 9 full-MOAS
// sweep (460-AS topology) at jobs = 1, 2, and N and emit BENCH_sweep.json
// with runs/sec per job count. Doubles as a determinism gate: the
// SweepPoints from every job count are compared field-for-field with
// exact floating-point equality, and the bench fails if they diverge.
//
// Usage:
//   micro_sweep_scaling [--smoke] [--jobs N] [--out PATH]
//
// --smoke shrinks the sweep (2 fractions, 2x2 runs per point) so CI can
// run the gate in seconds; --jobs sets the largest worker count measured
// (default: MOAS_JOBS or the hardware concurrency); --out overrides the
// BENCH_sweep.json path.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "moas/util/strings.h"

using namespace moas;
using namespace moas::bench;

namespace {

struct Timing {
  std::size_t jobs = 0;
  double seconds = 0.0;
  double runs_per_sec = 0.0;
  double speedup = 1.0;
};

bool points_identical(const std::vector<core::SweepPoint>& a,
                      const std::vector<core::SweepPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const core::SweepPoint& x = a[i];
    const core::SweepPoint& y = b[i];
    if (x.attacker_fraction != y.attacker_fraction || x.runs != y.runs ||
        x.mean_adopted_false != y.mean_adopted_false ||
        x.stddev_adopted_false != y.stddev_adopted_false ||
        x.mean_affected != y.mean_affected || x.mean_no_route != y.mean_no_route ||
        x.mean_alarms != y.mean_alarms || x.mean_false_alarms != y.mean_false_alarms ||
        x.mean_structural_cutoff != y.mean_structural_cutoff ||
        x.runs_false_route_stuck != y.runs_false_route_stuck ||
        // Whole-registry equality: every counter, gauge, and histogram
        // bucket (latency histograms included) must merge identically.
        !(x.metrics == y.metrics)) {
      return false;
    }
  }
  return true;
}

std::string json_double(double value) {
  // Full round-trip precision, no locale surprises.
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_sweep.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    if (arg == "--out" && i + 1 < argc) out_path = argv[i + 1];
  }
  const std::size_t max_jobs = bench_jobs(argc, argv);

  const topo::AsGraph& graph = paper_topology(460);
  core::ExperimentConfig config;
  config.num_origins = 1;
  config.deployment = core::Deployment::Full;
  if (smoke) {
    // The smoke gate doubles as the sanitizer check for the asynchronous
    // resolution path: flaky DNS behind the fault-tolerant chain plus the
    // registry-outage fault family, all racing across the worker pool. The
    // full-mode bench stays the plain fig9 sweep so its timings remain
    // comparable across revisions.
    config.resolver = core::ResolverKind::Dns;
    config.dns_unavailability = 0.2;
    config.async_resolution = core::AsyncResolver::Config{};
    config.async_fallback_irr = true;
    chaos::RegistryOutageConfig outage;
    outage.outages = 3.0;
    outage.spikes = 2.0;
    config.registry_outage = outage;
    config.trace_level = obs::TraceLevel::Summary;
  }

  const std::vector<double> fractions =
      smoke ? std::vector<double>{0.05, 0.20} : paper_attacker_fractions();
  const std::size_t origin_sets = smoke ? 2 : kOriginSets;
  const std::size_t attacker_sets = smoke ? 2 : 10;
  const std::size_t total_runs = fractions.size() * origin_sets * attacker_sets;
  constexpr std::uint64_t kSeed = 461;  // fig9 one-origin sweep seed

  std::vector<std::size_t> job_counts{1, 2, max_jobs};
  std::sort(job_counts.begin(), job_counts.end());
  job_counts.erase(std::unique(job_counts.begin(), job_counts.end()), job_counts.end());

  std::cout << "=== Micro: parallel sweep scaling (fig9 full-MOAS, "
            << graph.node_count() << "-AS, " << total_runs << " runs"
            << (smoke ? ", smoke" : "") << ") ===\n\n";

  core::Experiment experiment(graph, config);
  std::vector<core::SweepPoint> reference;
  std::vector<Timing> timings;
  bool deterministic = true;
  util::TablePrinter table({"jobs", "seconds", "runs_per_sec", "speedup", "identical"});
  for (std::size_t jobs : job_counts) {
    util::Rng rng(kSeed);
    const auto start = std::chrono::steady_clock::now();
    const std::vector<core::SweepPoint> points =
        experiment.sweep(fractions, origin_sets, attacker_sets, rng, jobs);
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;

    Timing timing;
    timing.jobs = jobs;
    timing.seconds = elapsed.count();
    timing.runs_per_sec = static_cast<double>(total_runs) / elapsed.count();
    timing.speedup = timings.empty() ? 1.0 : timings.front().seconds / timing.seconds;
    timings.push_back(timing);

    bool identical = true;
    if (reference.empty()) {
      reference = points;
    } else {
      identical = points_identical(reference, points);
      if (!identical) deterministic = false;
    }
    table.add_row({std::to_string(jobs), util::fmt_double(timing.seconds, 3),
                   util::fmt_double(timing.runs_per_sec, 2),
                   util::fmt_double(timing.speedup, 2), identical ? "yes" : "NO"});
  }
  table.print(std::cout);

  const unsigned hardware = std::thread::hardware_concurrency();
  std::ofstream out(out_path);
  out << "{\n";
  out << "  \"bench\": \"micro_sweep_scaling\",\n";
  out << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
  out << "  \"topology_ases\": " << graph.node_count() << ",\n";
  out << "  \"fractions\": [";
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    out << (i ? ", " : "") << json_double(fractions[i]);
  }
  out << "],\n";
  out << "  \"origin_sets\": " << origin_sets << ",\n";
  out << "  \"attacker_sets\": " << attacker_sets << ",\n";
  out << "  \"total_runs\": " << total_runs << ",\n";
  out << "  \"hardware_concurrency\": " << hardware << ",\n";
  if (hardware <= 1) {
    // Annotate single-core baselines in the artifact itself: with one core,
    // extra workers only add contention, so speedup < 1 at jobs > 1 is the
    // expected shape — not a scaling regression.
    out << "  \"note\": \"1-core baseline: speedup < 1 at jobs > 1 reflects "
           "contention on a single core, not a regression; see the multicore "
           "CI artifact for the real scaling curve\",\n";
  }
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const Timing& t = timings[i];
    out << "    {\"jobs\": " << t.jobs << ", \"seconds\": " << json_double(t.seconds)
        << ", \"runs_per_sec\": " << json_double(t.runs_per_sec)
        << ", \"speedup\": " << json_double(t.speedup) << "}"
        << (i + 1 < timings.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"deterministic\": " << (deterministic ? "true" : "false") << "\n";
  out << "}\n";
  out.close();
  std::cout << "\nwrote " << out_path << " (hardware_concurrency=" << hardware << ")\n";

  if (!deterministic) {
    std::cerr << "FAIL: sweep results differ across job counts — the plan → execute → "
                 "reduce contract is broken\n";
    return 1;
  }
  std::cout << "sweep results are bit-identical across jobs = {";
  for (std::size_t i = 0; i < job_counts.size(); ++i) {
    std::cout << (i ? ", " : "") << job_counts[i];
  }
  std::cout << "}; speedup tracks the cores actually available (see "
               "hardware_concurrency above).\n";
  return 0;
}
