// Figure 9 — Experiment 1: spoof-resilience of the MOAS-list scheme in the
// 460-AS topology. Two panels: (a) one valid origin AS, (b) two valid
// origin ASes; each compares Normal BGP against Full MOAS Detection over a
// sweep of the attacker percentage.
//
// Paper reference points (460-AS): at 4% attackers, Normal BGP >= ~36% vs
// ~0.15% with detection; at 30% attackers, ~51%+ vs ~9.8%.
#include "bench_util.h"

using namespace moas;
using namespace moas::bench;

int main(int argc, char** argv) {
  const std::size_t jobs = bench_jobs(argc, argv);
  const TraceOptions trace = bench_trace(argc, argv);
  const topo::AsGraph& graph = paper_topology(460);

  for (std::size_t origins : {std::size_t{1}, std::size_t{2}}) {
    core::ExperimentConfig config;
    config.num_origins = origins;
    // Summary-level tracing feeds the eviction-latency histogram; its cost
    // is bounded by micro_obs_overhead's <2% budget.
    config.trace_level = obs::TraceLevel::Summary;

    config.deployment = core::Deployment::None;
    CurveSpec normal{"normal_bgp", &graph, config, 460 + origins, 10};
    config.deployment = core::Deployment::Full;
    CurveSpec full{"full_moas", &graph, config, 460 + origins, 10};
    // A --trace-out dump would interleave both panels into one file; only
    // panel (a) dumps so the stream stays one self-describing sweep.
    const std::vector<Curve> curves =
        run_curves({normal, full}, jobs, origins == 1 ? trace : TraceOptions{});

    print_report("Figure 9(" + std::string(origins == 1 ? "a" : "b") + "): " +
                     std::to_string(origins) + " origin AS" + (origins > 1 ? "es" : "") +
                     ", " + std::to_string(graph.node_count()) + "-AS topology",
                 "paper: normal BGP rises steeply and stays high; full MOAS detection "
                 "stays near zero for small attacker sets and grows only with the "
                 "structural cut-off",
                 curves);
    print_latency_report(curves);
  }
  return 0;
}
