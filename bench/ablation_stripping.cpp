// Ablation — community-attribute stripping (Section 4.3): the community
// attribute is optional transitive, so conforming routers may drop it.
// Sweep the fraction of stripping routers and measure false alarms (alarms
// that implicate no attacker) and residual protection.
#include <iostream>

#include "bench_util.h"
#include "moas/util/strings.h"

using namespace moas;
using namespace moas::bench;

int main(int argc, char** argv) {
  const std::size_t jobs = bench_jobs(argc, argv);
  const topo::AsGraph& graph = paper_topology(460);

  std::cout << "=== Ablation: community-attribute stripping (Sec 4.3) ===\n";
  std::cout << "paper: dropped MOAS lists cause false alarms but 'should not cause an "
               "invalid case to be considered valid'\n\n";

  util::TablePrinter table({"strip_pct", "false_alarms_per_run", "true_alarms_per_run",
                            "adopting_false_pct", "no_route_pct"});
  for (double strip : {0.0, 0.1, 0.25, 0.5, 0.75}) {
    core::ExperimentConfig config;
    config.deployment = core::Deployment::Full;
    config.num_origins = 2;  // a real MOAS list is in play
    config.strip_fraction = strip;
    core::Experiment experiment(graph, config);
    util::Rng rng(42);
    const core::SweepPoint point =
        experiment.run_point(0.10, kOriginSets, kAttackerSets, rng, jobs);
    table.add_row({util::fmt_double(strip * 100.0, 0),
                   util::fmt_double(point.mean_false_alarms, 1),
                   util::fmt_double(point.mean_alarms - point.mean_false_alarms, 1),
                   util::fmt_double(point.mean_adopted_false * 100.0, 2),
                   util::fmt_double(point.mean_no_route * 100.0, 2)});
  }
  table.print(std::cout);
  std::cout << "\nfalse alarms grow with stripping, but adoption of false routes does "
               "not: resolution still identifies the true origin set.\n";
  return 0;
}
