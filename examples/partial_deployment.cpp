// Deployment planning on a generated topology: how much protection do you
// get if only some fraction of ASes check MOAS lists? (The question behind
// the paper's Experiment 3, swept over the deployment fraction.)
#include <iostream>

#include "moas/core/experiment.h"
#include "moas/topo/gen_internet.h"
#include "moas/topo/sampler.h"
#include "moas/util/strings.h"
#include "moas/util/table.h"

using namespace moas;

int main() {
  util::Rng rng(2002);

  std::cout << "generating Internet-like AS graph and sampling a 460-AS topology...\n";
  topo::InternetConfig internet_config;
  const topo::AsGraph internet = topo::generate_internet(internet_config, rng);
  const topo::AsGraph sampled = topo::sample_to_size(internet, 460, rng);
  std::cout << "sampled topology: " << sampled.node_count() << " ASes, "
            << sampled.edge_count() << " peerings, " << sampled.stubs().size()
            << " stubs\n\n";

  core::ExperimentConfig config;
  config.num_origins = 1;
  config.strategy = core::AttackerStrategy::OwnList;

  util::TablePrinter table(
      {"deployment", "affected ASes", "alarms/run", "runs"});

  const double attacker_fraction = 0.20;
  for (double deployed : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    if (deployed == 0.0) {
      config.deployment = core::Deployment::None;
    } else if (deployed == 1.0) {
      config.deployment = core::Deployment::Full;
    } else {
      config.deployment = core::Deployment::Partial;
      config.deployment_fraction = deployed;
    }
    core::Experiment experiment(sampled, config);
    const core::SweepPoint point = experiment.run_point(attacker_fraction, 3, 5, rng);
    table.add_row({util::fmt_double(deployed * 100.0, 0) + "% of ASes",
                   util::fmt_double(point.mean_affected * 100.0, 2) + "%",
                   util::fmt_double(point.mean_alarms, 1), std::to_string(point.runs)});
  }

  std::cout << "protection against " << attacker_fraction * 100
            << "% random attackers, by deployment level:\n";
  table.print(std::cout);
  std::cout << "\nEven a half deployment blocks most false-route adoption: capable\n"
               "ASes refuse the bogus announcement and stop re-advertising it,\n"
               "shielding the plain-BGP ASes behind them.\n";
  return 0;
}
