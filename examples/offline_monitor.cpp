// The Section 4.2 off-line deployment path, end to end: no router is
// modified; a monitoring process periodically reads the routing tables of a
// few well-connected vantage ASes and raises MOAS alarms on inconsistency.
// We stage a hijack against a converged 120-AS network and watch the
// monitor catch it on its next scan.
#include <iostream>

#include "moas/core/attacker.h"
#include "moas/core/monitor.h"
#include "moas/topo/gen_internet.h"
#include "moas/topo/route_views.h"
#include "moas/topo/sampler.h"

using namespace moas;

int main() {
  util::Rng rng(42);
  topo::InternetConfig internet_config;
  internet_config.tier1 = 6;
  internet_config.tier2 = 30;
  internet_config.tier3 = 60;
  internet_config.stubs = 900;
  const topo::AsGraph internet = topo::generate_internet(internet_config, rng);
  const topo::AsGraph graph = topo::sample_to_size(internet, 120, rng);
  std::cout << "sampled " << graph.node_count() << "-AS topology\n";

  bgp::Network network;
  for (bgp::Asn asn : graph.nodes()) network.add_router(asn);
  for (const auto& edge : graph.edges()) network.connect(edge.a, edge.b, edge.rel_of_b);

  // The victim: a random stub announcing its prefix; the network converges.
  const auto stubs = graph.stubs();
  const bgp::Asn origin = stubs[rng.index(stubs.size())];
  const net::Prefix victim = topo::prefix_for_asn(origin);
  network.router(origin).originate(victim);
  network.run_to_quiescence();
  std::cout << "AS" << origin << " announced " << victim.to_string()
            << "; network converged at t=" << network.clock().now() << "s\n";

  // The monitor watches the five best-connected ASes (a RouteViews-like
  // peer set), scanning every 30 simulated seconds.
  std::vector<bgp::Asn> vantages = graph.nodes();
  std::sort(vantages.begin(), vantages.end(),
            [&](bgp::Asn a, bgp::Asn b) { return graph.degree(a) > graph.degree(b); });
  vantages.resize(5);
  core::MoasMonitor monitor(vantages);
  std::cout << "monitor vantages:";
  for (bgp::Asn v : vantages) std::cout << " AS" << v;
  std::cout << "\n\n";

  std::cout << "scan at t=" << network.clock().now() << "s: "
            << monitor.scan(network).size() << " alarms (healthy network)\n";

  // The hijack.
  bgp::Asn attacker = origin;
  while (attacker == origin) attacker = rng.pick(graph.nodes());
  core::AttackPlan plan;
  plan.attacker = attacker;
  plan.target = victim;
  plan.valid_origins = {origin};
  plan.strategy = core::AttackerStrategy::NoList;
  const double attack_time = network.clock().now();
  core::launch_attack(network, plan);
  std::cout << "AS" << attacker << " hijacks " << victim.to_string() << " at t="
            << attack_time << "s\n";

  // Periodic scans until the monitor fires.
  for (int scan = 1; scan <= 20; ++scan) {
    network.clock().run_until(attack_time + 30.0 * scan);
    const auto alarms = monitor.scan(network);
    std::cout << "scan at t=" << network.clock().now() << "s: " << alarms.size()
              << " alarms\n";
    if (!alarms.empty()) {
      for (const auto& alarm : alarms) std::cout << "  " << alarm.to_string() << "\n";
      std::cout << "\ndetected " << network.clock().now() - attack_time
                << "s after the hijack, with zero router modifications —\n"
                   "the price is the scan period (the paper's daily table dumps "
                   "imply up to a day).\n";
      return 0;
    }
  }
  std::cout << "monitor never fired — the vantages all converged to the same "
               "(hijacked or valid) origin, the single-vantage blind spot.\n";
  return 1;
}
