// The operational scenarios that create *valid* MOAS (the paper's
// Section 3.2), shown end to end:
//
//  1. static-configuration multi-homing: ORG peers with ISP-1 via BGP and is
//     statically routed by ISP-2, so ISP-2 re-originates ORG's prefix;
//  2. private-AS substitution on egress (ASE): ORG uses a private ASN with
//     two ISPs, both of which strip it, so both ISPs appear as origins.
//
// In both cases the ISPs agree on a MOAS list, downstream checkers see
// consistent lists, and no alarm fires — the mechanism does not punish
// legitimate multi-homing.
#include <iostream>

#include "moas/bgp/network.h"
#include "moas/core/detector.h"
#include "moas/core/moas_list.h"
#include "moas/core/monitor.h"
#include "moas/core/resolver.h"

using namespace moas;

namespace {

constexpr bgp::Asn kOrg = 64512;  // a private ASN (RFC 1930 range)
constexpr bgp::Asn kIsp1 = 4006;
constexpr bgp::Asn kIsp2 = 2026;  // note: paper's Figure 2 uses 4006/226-style ids
constexpr bgp::Asn kCore = 701;
constexpr bgp::Asn kObserver = 1239;

}  // namespace

int main() {
  const auto prefix = *net::Prefix::parse("198.32.0.0/19");

  std::cout << "--- scenario 1: BGP + static-config multi-homing ---\n";
  {
    bgp::Network network;
    for (bgp::Asn asn : {kOrg, kIsp1, kIsp2, kCore, kObserver}) network.add_router(asn);
    network.connect(kOrg, kIsp1, bgp::Relationship::Provider);  // BGP peering
    // ORG <-> ISP2 is a static route: no BGP session, so no edge; ISP2
    // simply originates ORG's prefix itself.
    network.connect(kIsp1, kCore);
    network.connect(kIsp2, kCore);
    network.connect(kCore, kObserver);

    auto registry = std::make_shared<core::PrefixOriginDb>();
    registry->set(prefix, {kOrg, kIsp2});
    auto alarms = std::make_shared<core::AlarmLog>();
    auto resolver = std::make_shared<core::OracleResolver>(registry);
    for (bgp::Asn asn : {kIsp1, kIsp2, kCore, kObserver}) {
      network.router(asn).set_validator(
          std::make_shared<core::MoasDetector>(alarms, resolver));
    }

    // Both entitled originators attach the same MOAS list {ORG, ISP2}.
    const auto list = core::encode_moas_list({kOrg, kIsp2});
    network.router(kOrg).originate(prefix, list);
    network.router(kIsp2).originate(prefix, list);
    network.run_to_quiescence();

    const auto origin_seen = network.router(kObserver).best_origin(prefix);
    std::cout << "  observer AS" << kObserver << " selected origin AS"
              << (origin_seen ? std::to_string(*origin_seen) : "?") << "\n";
    std::cout << "  alarms: " << alarms->size() << " (expected 0 — valid MOAS)\n";
  }

  std::cout << "\n--- scenario 2: ASE — both ISPs originate after stripping "
               "the private ASN ---\n";
  {
    bgp::Network network;
    for (bgp::Asn asn : {kIsp1, kIsp2, kCore, kObserver}) network.add_router(asn);
    network.connect(kIsp1, kCore);
    network.connect(kIsp2, kCore);
    network.connect(kCore, kObserver);

    auto registry = std::make_shared<core::PrefixOriginDb>();
    registry->set(prefix, {kIsp1, kIsp2});
    auto alarms = std::make_shared<core::AlarmLog>();
    auto resolver = std::make_shared<core::OracleResolver>(registry);
    for (bgp::Asn asn : {kCore, kObserver}) {
      network.router(asn).set_validator(
          std::make_shared<core::MoasDetector>(alarms, resolver));
    }

    // The ORG's announcements arrive at each ISP tagged with a private ASN;
    // the ISP strips it on egress and originates the prefix itself, with
    // the agreed MOAS list {ISP1, ISP2}.
    std::cout << "  (ORG's private ASN " << kOrg << " is invisible to BGP: "
              << std::boolalpha << bgp::is_private_asn(kOrg) << ")\n";
    const auto list = core::encode_moas_list({kIsp1, kIsp2});
    network.router(kIsp1).originate(prefix, list);
    network.router(kIsp2).originate(prefix, list);
    network.run_to_quiescence();

    // An off-line monitor (Section 4.2) watching two vantages also stays
    // quiet.
    core::MoasMonitor monitor({kCore, kObserver});
    const auto monitor_alarms = monitor.scan(network);
    std::cout << "  in-line alarms: " << alarms->size() << ", monitor alarms: "
              << monitor_alarms.size() << " (expected 0 and 0)\n";
  }
  return 0;
}
