// Walk-through of the paper's Figures 1-3: how a route is originated, what a
// valid MOAS looks like, and how an incorrect origin hijacks traffic when
// nothing checks it — then the same attack with MOAS-list checking on.
//
// Topology (paper's Figures 1-3):
//
//        AS Y ---- AS X ---- AS Z
//         |                   |
//        AS 40 -------------- AS 52 (attacker in scenario 3)
//
// AS 40 owns 135.38.0.0/16. In Figure 2, 226 is a second valid origin; we
// reuse AS Z's slot for it.
#include <iostream>

#include "moas/bgp/network.h"
#include "moas/core/attacker.h"
#include "moas/core/detector.h"
#include "moas/core/moas_list.h"
#include "moas/core/resolver.h"

using namespace moas;

namespace {

constexpr bgp::Asn kAs40 = 40;   // the true origin
constexpr bgp::Asn kAs226 = 226; // second valid origin (Figure 2)
constexpr bgp::Asn kAsX = 900;
constexpr bgp::Asn kAsY = 901;
constexpr bgp::Asn kAsZ = 902;
constexpr bgp::Asn kAs52 = 52;   // the false origin (Figure 3)

bgp::Network build(bool with_226) {
  bgp::Network network;
  for (bgp::Asn asn : {kAs40, kAsX, kAsY, kAsZ, kAs52}) network.add_router(asn);
  if (with_226) network.add_router(kAs226);
  network.connect(kAs40, kAsY);
  network.connect(kAsY, kAsX);
  network.connect(kAsX, kAsZ);
  network.connect(kAs40, kAs52);
  network.connect(kAsZ, kAs52);
  if (with_226) network.connect(kAs226, kAsZ);
  return network;
}

void show(const bgp::Network& network, const net::Prefix& prefix) {
  for (bgp::Asn asn : network.asns()) {
    const bgp::RibEntry* best = network.router(asn).best(prefix);
    std::cout << "  AS" << asn << " -> "
              << (best ? "<" + best->route.attrs.path.to_string() + ">"
                       : std::string("(no route)"))
              << "\n";
  }
}

}  // namespace

int main() {
  const auto prefix = *net::Prefix::parse("135.38.0.0/16");

  std::cout << "--- Figure 1: AS 40 originates " << prefix.to_string() << " ---\n";
  {
    auto network = build(false);
    network.router(kAs40).originate(prefix);
    network.run_to_quiescence();
    show(network, prefix);
  }

  std::cout << "\n--- Figure 2: valid MOAS, AS 40 and AS 226 both originate ---\n";
  {
    auto network = build(true);
    const auto list = core::encode_moas_list({kAs40, kAs226});
    network.router(kAs40).originate(prefix, list);
    network.router(kAs226).originate(prefix, list);
    network.run_to_quiescence();
    show(network, prefix);
    std::cout << "  (both origins carry the MOAS list " << list.to_string()
              << "; no checker complains)\n";
  }

  std::cout << "\n--- Figure 3: AS 52 falsely originates, plain BGP ---\n";
  {
    auto network = build(false);
    network.router(kAs40).originate(prefix);
    core::AttackPlan attack;
    attack.attacker = kAs52;
    attack.target = prefix;
    attack.valid_origins = {kAs40};
    attack.strategy = core::AttackerStrategy::NoList;
    core::launch_attack(network, attack);
    network.run_to_quiescence();
    show(network, prefix);
    const auto hijacked = network.router(kAsZ).best_origin(prefix);
    std::cout << "  AS Z's traffic for " << prefix.to_string() << " now lands at AS"
              << (hijacked ? std::to_string(*hijacked) : "?")
              << " — the shortest path wins and the packets are dropped there.\n";
  }

  std::cout << "\n--- Figure 3 again, with MOAS-list checking deployed ---\n";
  {
    auto network = build(false);
    auto registry = std::make_shared<core::PrefixOriginDb>();
    registry->set(prefix, {kAs40});
    auto resolver = std::make_shared<core::OracleResolver>(registry);
    auto alarms = std::make_shared<core::AlarmLog>();
    for (bgp::Asn asn : {kAs40, kAsX, kAsY, kAsZ}) {
      network.router(asn).set_validator(
          std::make_shared<core::MoasDetector>(alarms, resolver));
    }
    network.router(kAs40).originate(prefix);
    core::AttackPlan attack;
    attack.attacker = kAs52;
    attack.target = prefix;
    attack.valid_origins = {kAs40};
    attack.strategy = core::AttackerStrategy::NoList;
    core::launch_attack(network, attack);
    network.run_to_quiescence();
    show(network, prefix);
    std::cout << "  alarms raised: " << alarms->size() << "\n";
    for (const auto& alarm : alarms->alarms()) std::cout << "  " << alarm.to_string() << "\n";
  }
  return 0;
}
