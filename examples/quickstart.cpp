// Quickstart: detect a prefix hijack with the MOAS list.
//
// Builds the paper's running example (Figures 6-7): AS 1 and AS 2 both
// legitimately originate prefix p and attach the MOAS list {1, 2}; AS 99
// falsely originates p as well. Every other AS runs the MOAS-list checker.
// The hijack is detected, the false route is dropped, and traffic keeps
// flowing to the true origins.
#include <iostream>

#include "moas/bgp/network.h"
#include "moas/core/attacker.h"
#include "moas/core/detector.h"
#include "moas/core/moas_list.h"
#include "moas/core/resolver.h"

using namespace moas;

int main() {
  // A small mesh: 1 and 2 are the multi-homed origin ASes, 10/11/12 are
  // transit providers, 20 is an innocent bystander, 99 is compromised.
  bgp::Network network;
  for (bgp::Asn asn : {1u, 2u, 10u, 11u, 12u, 20u, 99u}) network.add_router(asn);
  network.connect(1, 10);
  network.connect(2, 11);
  network.connect(10, 11);
  network.connect(10, 12);
  network.connect(11, 12);
  network.connect(12, 20);
  network.connect(12, 99);
  network.connect(20, 99);

  const auto prefix = *net::Prefix::parse("135.38.0.0/16");

  // Who really owns the prefix (the detector's resolution authority —
  // stands in for the DNS MOASRR database of Section 4.4).
  auto registry = std::make_shared<core::PrefixOriginDb>();
  registry->set(prefix, {1, 2});
  auto resolver = std::make_shared<core::OracleResolver>(registry);
  auto alarms = std::make_shared<core::AlarmLog>();

  // Deploy MOAS-list checking on every honest AS.
  for (bgp::Asn asn : {1u, 2u, 10u, 11u, 12u, 20u}) {
    network.router(asn).set_validator(std::make_shared<core::MoasDetector>(alarms, resolver));
  }

  // The legitimate multi-origin announcements, each carrying the list {1,2}.
  const bgp::CommunitySet moas_list = core::encode_moas_list({1, 2});
  network.router(1).originate(prefix, moas_list);
  network.router(2).originate(prefix, moas_list);

  // The hijack: AS 99 originates the same prefix with a forged list.
  core::AttackPlan attack;
  attack.attacker = 99;
  attack.target = prefix;
  attack.valid_origins = {1, 2};
  attack.strategy = core::AttackerStrategy::AugmentedList;
  core::launch_attack(network, attack);

  if (!network.run_to_quiescence()) {
    std::cerr << "network failed to converge\n";
    return 1;
  }

  std::cout << "=== alarms ===\n";
  for (const auto& alarm : alarms->alarms()) std::cout << alarm.to_string() << "\n";

  std::cout << "\n=== final best routes for " << prefix.to_string() << " ===\n";
  int hijacked = 0;
  for (bgp::Asn asn : network.asns()) {
    const bgp::RibEntry* best = network.router(asn).best(prefix);
    std::cout << "AS" << asn << ": "
              << (best ? best->route.to_string() : std::string("(no route)")) << "\n";
    if (asn != 99u && best && best->route.origin_as() == std::optional<bgp::Asn>(99u)) {
      ++hijacked;
    }
  }

  std::cout << "\nASes fooled by the hijack (excluding the attacker itself): " << hijacked
            << " (expected: 0)\n";
  return hijacked == 0 ? 0 : 1;
}
