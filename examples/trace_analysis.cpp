// The Section 3 measurement pipeline end to end: synthesize a RouteViews
// style daily trace (calibrated to the paper's published statistics), run
// the MOAS observer over it, and print the Figure 4 / Figure 5 series plus
// the headline numbers.
#include <iostream>

#include "moas/measure/dates.h"
#include "moas/measure/observer.h"
#include "moas/measure/report.h"
#include "moas/measure/trace_gen.h"
#include "moas/util/rng.h"

using namespace moas;

int main() {
  util::Rng rng(1997);
  measure::TraceConfig config;
  std::cout << "synthesizing " << measure::trace_length_days()
            << " days of table dumps (11/8/1997 - 7/18/2001)...\n";
  const measure::SyntheticTrace trace = measure::generate_trace(config, rng);
  std::cout << "ground truth: " << trace.cases.size() << " MOAS cases\n\n";

  measure::MoasObserver observer;
  observer.ingest_all(trace);

  std::cout << "=== Figure 4: daily MOAS cases (monthly means) ===\n";
  measure::fig4_table(measure::build_fig4_series(observer)).print(std::cout);

  std::cout << "\n=== Figure 5: duration of MOAS cases ===\n";
  measure::fig5_table(measure::build_fig5_histogram(observer)).print(std::cout);

  std::cout << "\n=== Section 3 headline statistics (paper vs this trace) ===\n";
  measure::sec3_table(observer.summarize()).print(std::cout);
  return 0;
}
