// Experiment-level observability tests: the alarm-latency instrumentation
// (injection -> first alarm, injection -> network-wide eviction), the
// per-run metrics registry as the source of truth for RunResult's scalar
// counters, keep_trace, and the invariant that attaching an observer never
// changes what the experiment measures.
#include <gtest/gtest.h>

#include "moas/core/experiment.h"
#include "moas/obs/event.h"
#include "moas/topo/gen_internet.h"
#include "moas/topo/sampler.h"

namespace moas::core {
namespace {

const topo::AsGraph& shared_topology() {
  static const topo::AsGraph graph = [] {
    util::Rng rng(71);
    topo::InternetConfig config;
    config.tier1 = 5;
    config.tier2 = 18;
    config.tier3 = 30;
    config.stubs = 450;
    const topo::AsGraph internet = topo::generate_internet(config, rng);
    return topo::sample_to_size(internet, 90, rng, 0.10);
  }();
  return graph;
}

ExperimentConfig traced_config() {
  ExperimentConfig config;
  config.deployment = Deployment::Full;
  config.trace_level = obs::TraceLevel::Summary;
  return config;
}

RunResult traced_run(const ExperimentConfig& config, std::size_t attackers,
                     std::uint64_t seed) {
  const Experiment experiment(shared_topology(), config);
  util::Rng rng(seed);
  return experiment.run_once(attackers, rng);
}

TEST(ObsLatency, AttackRunMeasuresInjectionAndFirstAlarm) {
  const RunResult run = traced_run(traced_config(), /*attackers=*/2, /*seed=*/7);
  // The attack phase schedules within [now, now+0.5) — injection is a real
  // simulated instant, not a sentinel.
  ASSERT_GE(run.attack_injected_at, 0.0);
  // Full deployment with the oracle resolver detects the attack: the first
  // attacker-implicating alarm comes after injection, within the run.
  ASSERT_GE(run.first_alarm_latency, 0.0);
  EXPECT_LT(run.first_alarm_latency, 120.0);
  // Summary tracing resolves eviction: either the network got clean (>= 0)
  // or the run is explicitly marked stuck — never silently unmeasured.
  EXPECT_TRUE(run.eviction_latency >= 0.0 || run.false_route_stuck);
}

TEST(ObsLatency, NoAttackersMeansNoLatencies) {
  const RunResult run = traced_run(traced_config(), /*attackers=*/0, /*seed=*/3);
  EXPECT_EQ(run.attack_injected_at, -1.0);
  EXPECT_EQ(run.first_alarm_latency, -1.0);
  EXPECT_FALSE(run.false_route_stuck);
}

TEST(ObsLatency, EvictionNeedsSummaryTracing) {
  ExperimentConfig config = traced_config();
  config.trace_level = obs::TraceLevel::Off;
  const RunResult run = traced_run(config, /*attackers=*/2, /*seed=*/7);
  // First-alarm latency comes from the alarm log and survives Off...
  EXPECT_GE(run.first_alarm_latency, 0.0);
  // ...but eviction is computed from the route-change stream, which an Off
  // bus never records.
  EXPECT_EQ(run.eviction_latency, -1.0);
  EXPECT_FALSE(run.false_route_stuck);
}

TEST(ObsLatency, RunResultCountersComeFromTheRegistry) {
  const RunResult run = traced_run(traced_config(), /*attackers=*/2, /*seed=*/11);
  const obs::MetricsRegistry& m = run.metrics;
  EXPECT_EQ(run.messages, m.counter("network.messages_sent"));
  EXPECT_EQ(run.withdrawals, m.counter("router.withdrawals_sent"));
  EXPECT_EQ(run.announcements, m.counter("router.announcements_sent"));
  EXPECT_EQ(run.error_withdraws, m.counter("router.error_withdraws"));
  EXPECT_EQ(run.rejections, m.counter("detector.rejections"));
  EXPECT_EQ(run.resolver_queries, m.counter("resolver.queries"));
  EXPECT_GT(m.counter("router.decisions"), 0u);
  EXPECT_GT(m.counter("sim.events_executed"), 0u);
  EXPECT_EQ(m.gauge("network.routers"),
            static_cast<double>(shared_topology().node_count()));
}

TEST(ObsLatency, KeepTraceReturnsTheEventStream) {
  ExperimentConfig config = traced_config();
  config.keep_trace = true;
  const RunResult run = traced_run(config, /*attackers=*/2, /*seed=*/7);
  if (!obs::kTraceCompiledIn) {
    EXPECT_TRUE(run.trace.empty());
    return;
  }
  ASSERT_FALSE(run.trace.empty());
  // Timestamps are non-decreasing (the bus records in execution order) and
  // the stream contains the attack injection marker.
  bool saw_attack = false;
  for (std::size_t i = 0; i < run.trace.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(run.trace[i].at, run.trace[i - 1].at);
    }
    if (run.trace[i].kind == obs::EventKind::AttackInjected) saw_attack = true;
  }
  EXPECT_TRUE(saw_attack);
  // Without keep_trace the stream is discarded after the run's own use.
  config.keep_trace = false;
  EXPECT_TRUE(traced_run(config, 2, 7).trace.empty());
}

TEST(ObsLatency, TracingDoesNotPerturbTheExperiment) {
  ExperimentConfig off = traced_config();
  off.trace_level = obs::TraceLevel::Off;
  const RunResult untraced = traced_run(off, /*attackers=*/2, /*seed=*/13);
  const RunResult traced = traced_run(traced_config(), /*attackers=*/2, /*seed=*/13);
  EXPECT_EQ(untraced.adopted_false, traced.adopted_false);
  EXPECT_EQ(untraced.alarms, traced.alarms);
  EXPECT_EQ(untraced.messages, traced.messages);
  EXPECT_EQ(untraced.first_alarm_latency, traced.first_alarm_latency);
  EXPECT_EQ(untraced.metrics.counter("sim.events_executed"),
            traced.metrics.counter("sim.events_executed"));
}

TEST(ObsLatency, SweepPointsCarryLatencyHistograms) {
  const Experiment experiment(shared_topology(), traced_config());
  util::Rng rng(19);
  const std::vector<SweepPoint> points = experiment.sweep({0.10}, 2, 2, rng, 2);
  ASSERT_EQ(points.size(), 1u);
  const SweepPoint& point = points.front();
  const obs::FixedHistogram* alarm =
      point.metrics.find_histogram("detector.first_alarm_latency");
  const obs::FixedHistogram* evict =
      point.metrics.find_histogram("detector.eviction_latency");
  ASSERT_NE(alarm, nullptr);
  ASSERT_NE(evict, nullptr);
  EXPECT_TRUE(alarm->spec() == kAlarmLatencySpec);
  // Every run has attackers at this fraction, full deployment detects them.
  EXPECT_EQ(alarm->count(), point.runs);
  EXPECT_LE(evict->count() + point.runs_false_route_stuck, point.runs);
  // The merged registry aggregates all runs' counters.
  EXPECT_GT(point.metrics.counter("router.updates_received"), 0u);
}

}  // namespace
}  // namespace moas::core
