#include "moas/chaos/registry_outage.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace moas::chaos {
namespace {

RegistryOutageConfig busy_config() {
  RegistryOutageConfig config;
  config.seed = 7;
  config.horizon = 600.0;
  config.outages = 4.0;
  config.outage_mean = 15.0;
  config.spikes = 3.0;
  config.spike_mean = 20.0;
  config.spike_factor = 8.0;
  return config;
}

TEST(RegistryOutage, CompileIsDeterministic) {
  const auto a = compile_registry_outages(busy_config(), 2);
  const auto b = compile_registry_outages(busy_config(), 2);
  EXPECT_EQ(a.outages, b.outages);
  EXPECT_EQ(a.spikes, b.spikes);
  EXPECT_EQ(a.to_string(), b.to_string());
}

TEST(RegistryOutage, DifferentSeedsDiffer) {
  auto config = busy_config();
  const auto a = compile_registry_outages(config, 2);
  config.seed = 8;
  const auto b = compile_registry_outages(config, 2);
  EXPECT_NE(a.to_string(), b.to_string());
}

TEST(RegistryOutage, EmptyConfigCompilesToNothing) {
  const auto schedule = compile_registry_outages(RegistryOutageConfig{}, 2);
  EXPECT_TRUE(schedule.empty());
  EXPECT_FALSE(schedule.down(0, 100.0));
  EXPECT_DOUBLE_EQ(schedule.latency_factor(100.0), 1.0);
  EXPECT_TRUE(schedule.to_string().empty());
}

TEST(RegistryOutage, WindowsStayInsideHorizonAndSorted) {
  const auto schedule = compile_registry_outages(busy_config(), 3);
  const auto check = [&](const std::vector<RegistryOutageSchedule::Window>& windows) {
    for (std::size_t i = 0; i < windows.size(); ++i) {
      EXPECT_GE(windows[i].start, 0.0);
      EXPECT_LT(windows[i].start, busy_config().horizon);
      EXPECT_LE(windows[i].end, busy_config().horizon + busy_config().start);
      EXPECT_LT(windows[i].start, windows[i].end);
      if (i > 0) EXPECT_LE(windows[i - 1].start, windows[i].start);
    }
  };
  check(schedule.outages);
  check(schedule.spikes);
}

TEST(RegistryOutage, PrimaryOnlyScopePinsToSourceZero) {
  auto config = busy_config();
  config.scope = RegistryOutageConfig::Scope::PrimaryOnly;
  const auto schedule = compile_registry_outages(config, 3);
  ASSERT_FALSE(schedule.outages.empty());
  for (const auto& window : schedule.outages) {
    EXPECT_EQ(window.source, 0);
    const sim::Time mid = (window.start + window.end) / 2.0;
    EXPECT_TRUE(schedule.down(0, mid));
    EXPECT_FALSE(schedule.down(1, mid)) << "mirrors stay reachable";
    EXPECT_FALSE(schedule.down(2, mid));
  }
}

TEST(RegistryOutage, DownRespectsHalfOpenWindows) {
  RegistryOutageSchedule schedule;
  schedule.outages.push_back({10.0, 20.0, -1, 1.0});
  EXPECT_FALSE(schedule.down(0, 9.999));
  EXPECT_TRUE(schedule.down(0, 10.0));
  EXPECT_TRUE(schedule.down(1, 19.999));
  EXPECT_FALSE(schedule.down(0, 20.0)) << "end is exclusive";
}

TEST(RegistryOutage, LatencyFactorMultipliesOverlappingSpikes) {
  RegistryOutageSchedule schedule;
  schedule.spikes.push_back({0.0, 10.0, -1, 4.0});
  schedule.spikes.push_back({5.0, 15.0, -1, 3.0});
  EXPECT_DOUBLE_EQ(schedule.latency_factor(2.0), 4.0);
  EXPECT_DOUBLE_EQ(schedule.latency_factor(7.0), 12.0) << "overlap compounds";
  EXPECT_DOUBLE_EQ(schedule.latency_factor(12.0), 3.0);
  EXPECT_DOUBLE_EQ(schedule.latency_factor(20.0), 1.0);
}

TEST(RegistryOutage, ReplayLogMentionsEveryWindow) {
  const auto schedule = compile_registry_outages(busy_config(), 2);
  const std::string log = schedule.to_string();
  std::size_t lines = 0;
  for (char c : log) lines += (c == '\n') ? 1 : 0;
  EXPECT_EQ(lines, schedule.outages.size() + schedule.spikes.size());
  EXPECT_NE(log.find("registry-outage"), std::string::npos);
  EXPECT_NE(log.find("registry-latency-spike"), std::string::npos);
}

TEST(RegistryOutage, Validation) {
  auto config = busy_config();
  config.horizon = 0.0;
  EXPECT_THROW(compile_registry_outages(config, 2), std::invalid_argument);
  config = busy_config();
  config.outage_mean = 0.0;
  EXPECT_THROW(compile_registry_outages(config, 2), std::invalid_argument);
  config = busy_config();
  config.spike_factor = 0.5;
  EXPECT_THROW(compile_registry_outages(config, 2), std::invalid_argument);
  config = busy_config();
  config.scope = RegistryOutageConfig::Scope::PrimaryOnly;
  EXPECT_THROW(compile_registry_outages(config, 0), std::invalid_argument);
}

}  // namespace
}  // namespace moas::chaos
