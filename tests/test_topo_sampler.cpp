#include "moas/topo/sampler.h"

#include <gtest/gtest.h>

#include "moas/topo/gen_internet.h"

namespace moas::topo {
namespace {

const AsGraph& shared_internet() {
  static const AsGraph graph = [] {
    util::Rng rng(2002);
    InternetConfig config;
    config.tier1 = 8;
    config.tier2 = 40;
    config.tier3 = 80;
    config.stubs = 1200;
    return generate_internet(config, rng);
  }();
  return graph;
}

TEST(Sampler, ResultIsConnected) {
  util::Rng rng(1);
  const AsGraph sampled = sample_topology(shared_internet(), 0.2, rng);
  EXPECT_GT(sampled.node_count(), 0u);
  EXPECT_TRUE(sampled.is_connected());
}

TEST(Sampler, NoUnderconnectedTransitSurvives) {
  // The paper's pruning invariant: every remaining transit AS has >= 2
  // peers, every remaining stub has >= 1.
  util::Rng rng(2);
  const AsGraph sampled = sample_topology(shared_internet(), 0.25, rng);
  for (bgp::Asn asn : sampled.nodes()) {
    if (sampled.is_transit(asn)) {
      EXPECT_GE(sampled.degree(asn), 2u) << "transit " << asn;
    } else {
      EXPECT_GE(sampled.degree(asn), 1u) << "stub " << asn;
    }
  }
}

TEST(Sampler, SampledNodesExistInOriginal) {
  util::Rng rng(3);
  const AsGraph& internet = shared_internet();
  const AsGraph sampled = sample_topology(internet, 0.15, rng);
  for (bgp::Asn asn : sampled.nodes()) {
    EXPECT_TRUE(internet.has_node(asn));
    EXPECT_EQ(sampled.kind(asn), internet.kind(asn));
  }
  for (const auto& edge : sampled.edges()) {
    EXPECT_TRUE(internet.has_edge(edge.a, edge.b));
  }
}

TEST(Sampler, PeeringsAmongSelectedArePreserved) {
  // "with the peering relations among all the selected ASes completely
  //  preserved": any original edge between two surviving nodes must appear.
  util::Rng rng(4);
  const AsGraph& internet = shared_internet();
  const AsGraph sampled = sample_topology(internet, 0.3, rng);
  for (bgp::Asn a : sampled.nodes()) {
    for (bgp::Asn b : sampled.nodes()) {
      if (a < b && internet.has_edge(a, b)) {
        EXPECT_TRUE(sampled.has_edge(a, b)) << a << "-" << b;
      }
    }
  }
}

TEST(Sampler, LargerFractionLargerTopology) {
  util::Rng rng_small(5);
  util::Rng rng_large(5);
  const auto small = sample_topology(shared_internet(), 0.05, rng_small);
  const auto large = sample_topology(shared_internet(), 0.5, rng_large);
  EXPECT_LT(small.node_count(), large.node_count());
}

TEST(Sampler, RejectsBadFraction) {
  util::Rng rng(6);
  EXPECT_THROW(sample_topology(shared_internet(), 0.0, rng), std::invalid_argument);
  EXPECT_THROW(sample_topology(shared_internet(), 1.5, rng), std::invalid_argument);
}

class SampleToSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SampleToSize, HitsTargetWithinTolerance) {
  util::Rng rng(7);
  const std::size_t target = GetParam();
  const AsGraph sampled = sample_to_size(shared_internet(), target, rng, 0.08);
  const double err = std::abs(static_cast<double>(sampled.node_count()) -
                              static_cast<double>(target)) /
                     static_cast<double>(target);
  EXPECT_LE(err, 0.15) << "got " << sampled.node_count() << " for target " << target;
  EXPECT_TRUE(sampled.is_connected());
}

// The paper's three topology sizes.
INSTANTIATE_TEST_SUITE_P(PaperSizes, SampleToSize, ::testing::Values(250, 460, 630));

TEST(Sampler, SampledTopologyKeepsStubMajority) {
  util::Rng rng(8);
  const AsGraph sampled = sample_to_size(shared_internet(), 460, rng);
  EXPECT_GT(sampled.stubs().size(), sampled.node_count() / 3);
}

}  // namespace
}  // namespace moas::topo
