#include "moas/core/multi_prefix.h"

#include <gtest/gtest.h>

#include "moas/topo/gen_internet.h"
#include "moas/topo/sampler.h"

namespace moas::core {
namespace {

/// A ~150-AS sampled topology shared across the small-workload tests.
const topo::AsGraph& small_topology() {
  static const topo::AsGraph graph = [] {
    util::Rng rng(77);
    topo::InternetConfig config;
    config.tier1 = 6;
    config.tier2 = 24;
    config.tier3 = 40;
    config.stubs = 600;
    const topo::AsGraph internet = topo::generate_internet(config, rng);
    return topo::sample_to_size(internet, 150, rng, 0.10);
  }();
  return graph;
}

MultiPrefixConfig small_config() {
  MultiPrefixConfig config;
  config.num_prefixes = 32;
  config.block_size = 8;
  config.origins_per_prefix = 2;  // every prefix carries an explicit MOAS list
  config.attacked_fraction = 0.5;
  config.strategy = AttackerStrategy::OwnList;
  config.deployment = Deployment::Full;
  config.seed = 0x5eed;
  return config;
}

TEST(MultiPrefix, VictimPrefixesAreDistinctSlash24s) {
  EXPECT_EQ(multi_prefix_victim(0).to_string(), "10.0.0.0/24");
  EXPECT_EQ(multi_prefix_victim(1).to_string(), "10.0.1.0/24");
  EXPECT_EQ(multi_prefix_victim(256).to_string(), "10.1.0.0/24");
  EXPECT_EQ(multi_prefix_victim(65535).to_string(), "10.255.255.0/24");
  EXPECT_THROW(multi_prefix_victim(65536), std::invalid_argument);
}

TEST(MultiPrefix, ValidatesConfig) {
  MultiPrefixConfig config = small_config();
  config.num_prefixes = 0;
  EXPECT_THROW(run_multi_prefix(small_topology(), config), std::invalid_argument);
  config = small_config();
  config.attacked_fraction = 1.5;
  EXPECT_THROW(run_multi_prefix(small_topology(), config), std::invalid_argument);
  config = small_config();
  config.num_prefixes = 4096;  // attackers would exceed half the population
  EXPECT_THROW(run_multi_prefix(small_topology(), config), std::invalid_argument);
}

TEST(MultiPrefix, FullDeploymentRaisesAlarmsWithoutFalsePositives) {
  const MultiPrefixResult result = run_multi_prefix(small_topology(), small_config());
  EXPECT_EQ(result.prefixes, 32u);
  EXPECT_EQ(result.attacked, 16u);
  EXPECT_GT(result.alarms, 0u);
  EXPECT_EQ(result.false_alarms, 0u) << "oracle-resolved lists must never false-alarm";
  EXPECT_GT(result.routes_installed, 0u);
  EXPECT_GT(result.rib_entries, 0u);
  EXPECT_GT(result.adopted_valid, 0u);
  // The interned layout must beat the modeled pre-interning layout.
  EXPECT_LT(result.rib_bytes, result.baseline_rib_bytes);
}

TEST(MultiPrefix, SameSeedSameResult) {
  const MultiPrefixResult a = run_multi_prefix(small_topology(), small_config());
  const MultiPrefixResult b = run_multi_prefix(small_topology(), small_config());
  EXPECT_EQ(a.alarms, b.alarms);
  EXPECT_EQ(a.false_alarms, b.false_alarms);
  EXPECT_EQ(a.adopted_false, b.adopted_false);
  EXPECT_EQ(a.adopted_valid, b.adopted_valid);
  EXPECT_EQ(a.no_route, b.no_route);
  EXPECT_EQ(a.routes_installed, b.routes_installed);
  EXPECT_EQ(a.rib_entries, b.rib_entries);
  EXPECT_EQ(a.rib_bytes, b.rib_bytes);
  EXPECT_EQ(a.baseline_rib_bytes, b.baseline_rib_bytes);
}

TEST(MultiPrefix, ConvergedTalliesAreBlockSizeIndependent) {
  // Block size bounds the in-flight update set (the memory knob); the
  // converged tables — and everything scored from them — must not move.
  MultiPrefixConfig coarse = small_config();
  coarse.block_size = 32;
  MultiPrefixConfig fine = small_config();
  fine.block_size = 4;
  const MultiPrefixResult a = run_multi_prefix(small_topology(), coarse);
  const MultiPrefixResult b = run_multi_prefix(small_topology(), fine);
  EXPECT_EQ(a.blocks, 1u);
  EXPECT_EQ(b.blocks, 8u);
  EXPECT_EQ(a.adopted_false, b.adopted_false);
  EXPECT_EQ(a.adopted_valid, b.adopted_valid);
  EXPECT_EQ(a.no_route, b.no_route);
  EXPECT_EQ(a.routes_installed, b.routes_installed);
  EXPECT_EQ(a.rib_entries, b.rib_entries);
  // rib_bytes is intentionally absent: container_bytes() reports capacity,
  // and vector growth history differs with insertion batching even when the
  // converged contents are identical.
  EXPECT_EQ(a.baseline_rib_bytes, b.baseline_rib_bytes);
}

TEST(MultiPrefix, PartialDeploymentStillDetects) {
  MultiPrefixConfig config = small_config();
  config.deployment = Deployment::Partial;
  config.deployment_fraction = 0.5;
  const MultiPrefixResult result = run_multi_prefix(small_topology(), config);
  EXPECT_GT(result.alarms, 0u);
  EXPECT_EQ(result.false_alarms, 0u);
}

TEST(MultiPrefix, WaveRunBeyondTwoOctetAsnSpace) {
  // The ISSUE's scale regression: a topology whose ASN space crosses the
  // 65,535 boundary, multi-prefix attack plan included, must run end to end
  // — alarms fire, nothing aborts on a "wide ASN" check. Kept to a handful
  // of prefixes so the 65k-router wave stays inside the test budget.
  util::Rng rng(0xbeef);
  topo::InternetConfig config;
  config.tier1 = 8;
  config.tier2 = 160;
  config.tier3 = 400;
  config.stubs = 65'000;  // total 65,568 ASes: origins land above 65,535
  const topo::AsGraph graph = topo::generate_internet(config, rng);
  ASSERT_GT(graph.nodes().size(), 65'536u);

  MultiPrefixConfig workload;
  workload.num_prefixes = 4;
  workload.block_size = 2;
  workload.origins_per_prefix = 2;  // wide-ASN members ride large communities
  workload.attacked_fraction = 1.0;
  workload.strategy = AttackerStrategy::OwnList;
  workload.deployment = Deployment::Full;
  workload.seed = 0x600d;
  const MultiPrefixResult result = run_multi_prefix(graph, workload);
  EXPECT_EQ(result.attacked, 4u);
  EXPECT_GT(result.alarms, 0u);
  EXPECT_EQ(result.false_alarms, 0u);
  EXPECT_GT(result.adopted_valid, 0u);
  EXPECT_LT(result.rib_bytes, result.baseline_rib_bytes);
}

}  // namespace
}  // namespace moas::core
