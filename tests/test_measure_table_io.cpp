#include "moas/measure/table_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "moas/measure/observer.h"

namespace moas::measure {
namespace {

net::Prefix pfx(const char* text) { return *net::Prefix::parse(text); }

TEST(TableIo, DumpRoundTrip) {
  DailyDump dump;
  dump.day = 42;
  dump.origins[pfx("10.1.2.0/24")] = {701, 7018};
  dump.origins[pfx("10.9.0.0/16")] = {3561, 15412, 1239};
  std::stringstream buffer;
  save_dump(dump, buffer);
  const DailyDump loaded = load_dump(buffer);
  EXPECT_EQ(loaded.day, 42);
  EXPECT_EQ(loaded.origins, dump.origins);
}

TEST(TableIo, EmptyDumpRoundTrip) {
  DailyDump dump;
  dump.day = 7;
  std::stringstream buffer;
  save_dump(dump, buffer);
  const DailyDump loaded = load_dump(buffer);
  EXPECT_EQ(loaded.day, 7);
  EXPECT_TRUE(loaded.origins.empty());
}

TEST(TableIo, LoadRejectsGarbage) {
  {
    std::stringstream buffer("not a dump\n");
    EXPECT_THROW(load_dump(buffer), std::invalid_argument);
  }
  {
    std::stringstream buffer("day 1\nbadprefix 1 2\n");
    EXPECT_THROW(load_dump(buffer), std::invalid_argument);
  }
  {
    std::stringstream buffer("day 1\n10.0.0.0/8\n");  // no origins
    EXPECT_THROW(load_dump(buffer), std::invalid_argument);
  }
  {
    std::stringstream buffer("day 1\n10.0.0.0/8 1 x\n");  // trailing junk
    EXPECT_THROW(load_dump(buffer), std::invalid_argument);
  }
  {
    std::stringstream buffer("");
    EXPECT_THROW(load_dump(buffer), std::invalid_argument);
  }
}

TEST(TableIo, TraceArchiveRoundTrip) {
  util::Rng rng(1);
  TraceConfig config;
  config.days = 30;
  config.active_start = 5;
  config.active_end = 8;
  config.faults_per_day = 2.0;
  config.include_spike_1998 = false;
  config.include_spike_2001 = false;
  const SyntheticTrace trace = generate_trace(config, rng);

  std::stringstream buffer;
  save_trace(trace, buffer);
  const auto dumps = load_trace(buffer);
  ASSERT_EQ(dumps.size(), 30u);
  for (int day = 0; day < 30; ++day) {
    EXPECT_EQ(dumps[static_cast<std::size_t>(day)].day, day);
    EXPECT_EQ(dumps[static_cast<std::size_t>(day)].origins, trace.day_dump(day).origins);
  }
}

TEST(TableIo, ObserverSeesIdenticalStatsThroughTheArchive) {
  // The full pipeline: generate -> archive -> parse -> observe must agree
  // with direct observation.
  util::Rng rng(2);
  TraceConfig config;
  config.days = 60;
  config.active_start = 10;
  config.active_end = 12;
  config.include_spike_1998 = false;
  config.include_spike_2001 = false;
  const SyntheticTrace trace = generate_trace(config, rng);

  MoasObserver direct;
  direct.ingest_all(trace);

  std::stringstream buffer;
  save_trace(trace, buffer);
  MoasObserver via_archive;
  for (const DailyDump& dump : load_trace(buffer)) via_archive.ingest(dump);

  EXPECT_EQ(direct.case_count(), via_archive.case_count());
  EXPECT_EQ(direct.daily_counts(), via_archive.daily_counts());
  const auto a = direct.summarize(0);
  const auto b = via_archive.summarize(0);
  EXPECT_EQ(a.one_day_cases, b.one_day_cases);
  EXPECT_EQ(a.two_origin_fraction, b.two_origin_fraction);
}

}  // namespace
}  // namespace moas::measure
