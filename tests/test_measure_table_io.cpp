#include "moas/measure/table_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "moas/measure/observer.h"
#include "moas/util/strings.h"

namespace moas::measure {
namespace {

net::Prefix pfx(const char* text) { return *net::Prefix::parse(text); }

TEST(TableIo, DumpRoundTrip) {
  DailyDump dump;
  dump.day = 42;
  dump.origins[pfx("10.1.2.0/24")] = {701, 7018};
  dump.origins[pfx("10.9.0.0/16")] = {3561, 15412, 1239};
  std::stringstream buffer;
  save_dump(dump, buffer);
  const DailyDump loaded = load_dump(buffer);
  EXPECT_EQ(loaded.day, 42);
  EXPECT_EQ(loaded.origins, dump.origins);
}

TEST(TableIo, EmptyDumpRoundTrip) {
  DailyDump dump;
  dump.day = 7;
  std::stringstream buffer;
  save_dump(dump, buffer);
  const DailyDump loaded = load_dump(buffer);
  EXPECT_EQ(loaded.day, 7);
  EXPECT_TRUE(loaded.origins.empty());
}

TEST(TableIo, LoadRejectsGarbage) {
  {
    std::stringstream buffer("not a dump\n");
    EXPECT_THROW(load_dump(buffer), std::invalid_argument);
  }
  {
    std::stringstream buffer("day 1\nbadprefix 1 2\n");
    EXPECT_THROW(load_dump(buffer), std::invalid_argument);
  }
  {
    std::stringstream buffer("day 1\n10.0.0.0/8\n");  // no origins
    EXPECT_THROW(load_dump(buffer), std::invalid_argument);
  }
  {
    std::stringstream buffer("day 1\n10.0.0.0/8 1 x\n");  // trailing junk
    EXPECT_THROW(load_dump(buffer), std::invalid_argument);
  }
  {
    std::stringstream buffer("");
    EXPECT_THROW(load_dump(buffer), std::invalid_argument);
  }
}

TEST(TableIo, TraceArchiveRoundTrip) {
  util::Rng rng(1);
  TraceConfig config;
  config.days = 30;
  config.active_start = 5;
  config.active_end = 8;
  config.faults_per_day = 2.0;
  config.include_spike_1998 = false;
  config.include_spike_2001 = false;
  const SyntheticTrace trace = generate_trace(config, rng);

  std::stringstream buffer;
  save_trace(trace, buffer);
  const auto dumps = load_trace(buffer);
  ASSERT_EQ(dumps.size(), 30u);
  for (int day = 0; day < 30; ++day) {
    EXPECT_EQ(dumps[static_cast<std::size_t>(day)].day, day);
    EXPECT_EQ(dumps[static_cast<std::size_t>(day)].origins, trace.day_dump(day).origins);
  }
}

TEST(TableIo, ObserverSeesIdenticalStatsThroughTheArchive) {
  // The full pipeline: generate -> archive -> parse -> observe must agree
  // with direct observation.
  util::Rng rng(2);
  TraceConfig config;
  config.days = 60;
  config.active_start = 10;
  config.active_end = 12;
  config.include_spike_1998 = false;
  config.include_spike_2001 = false;
  const SyntheticTrace trace = generate_trace(config, rng);

  MoasObserver direct;
  direct.ingest_all(trace);

  std::stringstream buffer;
  save_trace(trace, buffer);
  MoasObserver via_archive;
  for (const DailyDump& dump : load_trace(buffer)) via_archive.ingest(dump);

  EXPECT_EQ(direct.case_count(), via_archive.case_count());
  EXPECT_EQ(direct.daily_counts(), via_archive.daily_counts());
  const auto a = direct.summarize(0);
  const auto b = via_archive.summarize(0);
  EXPECT_EQ(a.one_day_cases, b.one_day_cases);
  EXPECT_EQ(a.two_origin_fraction, b.two_origin_fraction);
}

TEST(TableIoTolerant, CleanArchiveLosesNothing) {
  util::Rng rng(3);
  TraceConfig config;
  config.days = 20;
  config.active_start = 5;
  config.active_end = 6;
  config.include_spike_1998 = false;
  config.include_spike_2001 = false;
  const SyntheticTrace trace = generate_trace(config, rng);

  std::stringstream buffer;
  save_trace(trace, buffer);
  LoadStats stats;
  const auto dumps = load_trace_tolerant(buffer, stats);
  ASSERT_EQ(dumps.size(), 20u);
  EXPECT_EQ(stats.rejected_lines, 0u);
  EXPECT_EQ(stats.rejected_dumps, 0u);
  EXPECT_EQ(stats.dumps, 20u);
  for (int day = 0; day < 20; ++day) {
    EXPECT_EQ(dumps[static_cast<std::size_t>(day)].origins, trace.day_dump(day).origins);
  }
}

TEST(TableIoTolerant, SkipsAndCountsDamagedLines) {
  std::stringstream buffer(
      "day 0\n"
      "10.1.0.0/16 1 2\n"
      "garbled!!line\n"            // rejected
      "10.2.0.0/16 3\n"            // fine (single origin is valid in a dump)
      "day x\n"                    // bad header: next dump dropped whole
      "10.3.0.0/16 4 5\n"          // unattributable -> rejected
      "day 2\n"
      "10.4.0.0/16 6 0\n"          // ASN 0 -> rejected
      "10.5.0.0/16 7 8\n"
      "day 1\n"                    // runs backwards -> dropped whole
      "10.6.0.0/16 9 10\n"
      "day 3\n"
      "10.7.0.0/16 11 12\n");
  LoadStats stats;
  const auto dumps = load_trace_tolerant(buffer, stats);
  ASSERT_EQ(dumps.size(), 3u);
  EXPECT_EQ(dumps[0].day, 0);
  EXPECT_EQ(dumps[0].origins.size(), 2u);
  EXPECT_EQ(dumps[1].day, 2);
  EXPECT_EQ(dumps[1].origins.size(), 1u);
  EXPECT_EQ(dumps[2].day, 3);
  EXPECT_EQ(stats.rejected_dumps, 2u);
  // garbled line, "day x", its body line, the ASN-0 line, "day 1", its body.
  EXPECT_EQ(stats.rejected_lines, 6u);
}

TEST(TableIoTolerant, SeededGarblingNeverThrowsAndKeepsTheRest) {
  // Satellite regression: mutate a clean archive with a seeded garbler and
  // require (a) no exception ever, (b) every undamaged dump survives
  // intact, (c) the loss is fully accounted.
  util::Rng rng(4);
  TraceConfig config;
  config.days = 40;
  config.active_start = 8;
  config.active_end = 10;
  config.include_spike_1998 = false;
  config.include_spike_2001 = false;
  const SyntheticTrace trace = generate_trace(config, rng);

  std::stringstream clean;
  save_trace(trace, clean);
  const std::string archive = clean.str();

  util::Rng garbler(99);
  for (int round = 0; round < 8; ++round) {
    // Damage a handful of random lines in always-invalid ways.
    std::vector<std::string> lines = util::split(archive, '\n');
    std::size_t damaged_lines = 0;
    for (auto& line : lines) {
      if (line.empty() || line.front() == '#') continue;
      if (!garbler.chance(0.05)) continue;
      ++damaged_lines;
      if (line.rfind("day ", 0) == 0) {
        // A header destroyed beyond its "day" token is indistinguishable
        // from a body line and the rows after it would merge into the
        // neighbor dump (see load_trace_tolerant); damage the payload but
        // keep the token so the dump is dropped whole instead.
        line += " not-a-number";
        continue;
      }
      switch (garbler.index(3)) {
        case 0: line = line.substr(0, line.size() / 2) + "\x01\x02"; break;
        case 1: line += " not-a-number"; break;
        default: line.insert(0, "!!"); break;
      }
    }
    std::stringstream damaged(util::join(lines, "\n"));
    LoadStats stats;
    std::vector<DailyDump> dumps;
    ASSERT_NO_THROW(dumps = load_trace_tolerant(damaged, stats));
    EXPECT_GE(stats.rejected_lines, damaged_lines > 0 ? 1u : 0u);
    // Undamaged dumps must match the original bytes-for-bytes.
    for (const auto& dump : dumps) {
      const auto original = trace.day_dump(dump.day);
      for (const auto& [prefix, origins] : dump.origins) {
        const auto it = original.origins.find(prefix);
        ASSERT_NE(it, original.origins.end());
        EXPECT_EQ(origins, it->second);
      }
    }
  }
}

}  // namespace
}  // namespace moas::measure
