#include "moas/bgp/rib.h"

#include <gtest/gtest.h>

namespace moas::bgp {
namespace {

net::Prefix pfx(const char* text) { return *net::Prefix::parse(text); }

Route make_route(const char* prefix, std::vector<Asn> path, std::uint32_t local_pref = 100) {
  Route r;
  r.prefix = pfx(prefix);
  r.attrs.path = AsPath(std::move(path));
  r.attrs.local_pref = local_pref;
  return r;
}

RibEntry entry(const char* prefix, std::vector<Asn> path, Asn from,
               std::uint32_t local_pref = 100) {
  return RibEntry{make_route(prefix, std::move(path), local_pref), from};
}

TEST(Decision, HigherLocalPrefWins) {
  const auto a = entry("10.0.0.0/8", {1, 2, 3}, 1, 200);
  const auto b = entry("10.0.0.0/8", {4}, 4, 100);
  EXPECT_LT(compare_candidates(a, b), 0);  // longer path but higher pref
}

TEST(Decision, ShorterPathWinsAtEqualPref) {
  const auto a = entry("10.0.0.0/8", {1, 2}, 1);
  const auto b = entry("10.0.0.0/8", {4, 5, 6}, 4);
  EXPECT_LT(compare_candidates(a, b), 0);
  EXPECT_GT(compare_candidates(b, a), 0);
}

TEST(Decision, OriginCodeBreaksPathTie) {
  auto a = entry("10.0.0.0/8", {1, 2}, 1);
  auto b = entry("10.0.0.0/8", {4, 5}, 4);
  a.route.attrs.origin_code = OriginCode::Igp;
  b.route.attrs.origin_code = OriginCode::Incomplete;
  EXPECT_LT(compare_candidates(a, b), 0);
}

TEST(Decision, MedBreaksRemainingTie) {
  auto a = entry("10.0.0.0/8", {1, 2}, 1);
  auto b = entry("10.0.0.0/8", {4, 5}, 4);
  a.route.attrs.med = 10;
  b.route.attrs.med = 5;
  EXPECT_GT(compare_candidates(a, b), 0);  // lower MED preferred
}

TEST(Decision, NeighborAsnIsFinalTieBreak) {
  const auto a = entry("10.0.0.0/8", {1, 9}, 1);
  const auto b = entry("10.0.0.0/8", {4, 9}, 4);
  EXPECT_LT(compare_candidates(a, b), 0);
  EXPECT_EQ(compare_candidate_keys(a, b), 0);  // keys alone tie
}

TEST(Decision, AsSetCountsAsOneHop) {
  auto a = entry("10.0.0.0/8", {1}, 1);
  a.route.attrs.path.append_set({7, 8, 9});  // length 2
  const auto b = entry("10.0.0.0/8", {4, 5, 6}, 4);  // length 3
  EXPECT_LT(compare_candidates(a, b), 0);
}

TEST(Decision, SelectBestOverList) {
  const auto a = entry("10.0.0.0/8", {1, 2, 3}, 1);
  const auto b = entry("10.0.0.0/8", {4, 5}, 4);
  const auto c = entry("10.0.0.0/8", {6, 7, 8, 9}, 6);
  const RibEntry* best = select_best({&a, &b, &c});
  EXPECT_EQ(best, &b);
}

TEST(Decision, SelectBestEmptyIsNull) { EXPECT_EQ(select_best({}), nullptr); }

TEST(Decision, CachedSelectionLengthStaysConsistentUnderMutation) {
  // Regression: compare_candidate_keys used to recompute the AS_SET-aware
  // path length per comparison; it now serves the interner's cached value.
  // The cache must track mutation (every mutator re-interns) and agree with
  // a fresh walk over the segments.
  auto a = entry("10.0.0.0/8", {1, 2}, 1);
  auto b = entry("10.0.0.0/8", {4, 5}, 4);
  EXPECT_EQ(compare_candidate_keys(a, b), 0);

  a.route.attrs.path.prepend(9);  // length 3 vs 2: b must now win
  EXPECT_EQ(a.route.attrs.path.selection_length(), 3u);
  EXPECT_GT(compare_candidate_keys(a, b), 0);

  b.route.attrs.path.append_set({7, 8});  // a set is one hop: tie again
  EXPECT_EQ(b.route.attrs.path.selection_length(), 3u);
  EXPECT_EQ(compare_candidate_keys(a, b), 0);

  std::size_t walked = 0;
  for (const PathSegment& segment : b.route.attrs.path.segments()) {
    walked += segment.kind == PathSegment::Kind::Set ? 1 : segment.asns.size();
  }
  EXPECT_EQ(walked, b.route.attrs.path.selection_length());
}

TEST(AdjRibIn, SetAndCandidates) {
  AdjRibIn rib;
  EXPECT_TRUE(rib.set(1, make_route("10.0.0.0/8", {1, 9})));
  EXPECT_TRUE(rib.set(2, make_route("10.0.0.0/8", {2, 9})));
  EXPECT_EQ(rib.candidates(pfx("10.0.0.0/8")).size(), 2u);
  EXPECT_EQ(rib.size(), 2u);
}

TEST(AdjRibIn, SetReplacesPerPeer) {
  AdjRibIn rib;
  rib.set(1, make_route("10.0.0.0/8", {1, 9}));
  EXPECT_TRUE(rib.set(1, make_route("10.0.0.0/8", {1, 8})));  // changed
  EXPECT_FALSE(rib.set(1, make_route("10.0.0.0/8", {1, 8})));  // identical
  EXPECT_EQ(rib.candidates(pfx("10.0.0.0/8")).size(), 1u);
}

TEST(AdjRibIn, EraseByPeer) {
  AdjRibIn rib;
  rib.set(1, make_route("10.0.0.0/8", {1, 9}));
  EXPECT_TRUE(rib.erase(1, pfx("10.0.0.0/8")));
  EXPECT_FALSE(rib.erase(1, pfx("10.0.0.0/8")));
  EXPECT_TRUE(rib.candidates(pfx("10.0.0.0/8")).empty());
}

TEST(AdjRibIn, FromPeerLookup) {
  AdjRibIn rib;
  rib.set(1, make_route("10.0.0.0/8", {1, 9}));
  EXPECT_NE(rib.from_peer(pfx("10.0.0.0/8"), 1), nullptr);
  EXPECT_EQ(rib.from_peer(pfx("10.0.0.0/8"), 2), nullptr);
  EXPECT_EQ(rib.from_peer(pfx("11.0.0.0/8"), 1), nullptr);
}

TEST(AdjRibIn, EraseByOrigin) {
  AdjRibIn rib;
  rib.set(1, make_route("10.0.0.0/8", {1, 9}));   // origin 9
  rib.set(2, make_route("10.0.0.0/8", {2, 8}));   // origin 8
  rib.set(3, make_route("10.0.0.0/8", {3, 9}));   // origin 9
  EXPECT_EQ(rib.erase_by_origin(pfx("10.0.0.0/8"), {9}), 2u);
  EXPECT_EQ(rib.candidates(pfx("10.0.0.0/8")).size(), 1u);
}

TEST(AdjRibIn, EraseByOriginHandlesAsSets) {
  AdjRibIn rib;
  Route r = make_route("10.0.0.0/8", {1});
  r.attrs.path.append_set({7, 8});
  rib.set(1, r);
  // Candidate origins {7, 8} intersect {8} -> purged.
  EXPECT_EQ(rib.erase_by_origin(pfx("10.0.0.0/8"), {8}), 1u);
}

TEST(AdjRibIn, PeerIndexTracksEveryMutation) {
  // The by-peer prefix index makes mark_peer_stale / erase_peer linear in
  // the peer's routes; it must stay consistent through set, erase,
  // erase_by_origin, and sweep_stale.
  AdjRibIn rib;
  rib.set(1, make_route("10.0.0.0/8", {1, 9}));
  rib.set(1, make_route("11.0.0.0/8", {1, 9}));
  rib.set(2, make_route("10.0.0.0/8", {2, 8}));

  EXPECT_EQ(rib.mark_peer_stale(1), 2u);
  EXPECT_TRUE(rib.is_stale(pfx("10.0.0.0/8"), 1));
  EXPECT_FALSE(rib.is_stale(pfx("10.0.0.0/8"), 2));

  // A re-announcement clears the stale bit; the other entry stays stale.
  rib.set(1, make_route("10.0.0.0/8", {1, 7}));
  EXPECT_FALSE(rib.is_stale(pfx("10.0.0.0/8"), 1));
  const auto swept = rib.sweep_stale(1);
  ASSERT_EQ(swept.size(), 1u);
  EXPECT_EQ(swept[0], pfx("11.0.0.0/8"));
  EXPECT_EQ(rib.size(), 2u);

  // erase_by_origin must keep the index honest: a later erase_peer finds
  // exactly the surviving prefixes.
  EXPECT_EQ(rib.erase_by_origin(pfx("10.0.0.0/8"), {7}), 1u);
  const auto erased = rib.erase_peer(1);
  EXPECT_TRUE(erased.empty());
  EXPECT_EQ(rib.erase_peer(2), std::vector<net::Prefix>{pfx("10.0.0.0/8")});
  EXPECT_EQ(rib.size(), 0u);
}

TEST(AdjRibIn, PrefixesEnumeration) {
  AdjRibIn rib;
  rib.set(1, make_route("10.0.0.0/8", {1, 9}));
  rib.set(1, make_route("11.0.0.0/8", {1, 9}));
  EXPECT_EQ(rib.prefixes().size(), 2u);
}

TEST(LocRib, SetBestErase) {
  LocRib rib;
  rib.set(pfx("10.0.0.0/8"), entry("10.0.0.0/8", {1, 9}, 1));
  ASSERT_NE(rib.best(pfx("10.0.0.0/8")), nullptr);
  EXPECT_EQ(rib.best(pfx("10.0.0.0/8"))->learned_from, 1u);
  EXPECT_TRUE(rib.erase(pfx("10.0.0.0/8")));
  EXPECT_EQ(rib.best(pfx("10.0.0.0/8")), nullptr);
}

TEST(LocRib, RejectsMismatchedPrefix) {
  LocRib rib;
  EXPECT_THROW(rib.set(pfx("11.0.0.0/8"), entry("10.0.0.0/8", {1, 9}, 1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace moas::bgp
