// RFC 4724 graceful restart: capability negotiation at OPEN, stale-route
// retention across a peer's crash/restart cycle, End-of-RIB sweeping, the
// restart-timer fallback, and the end-to-end claim — a restarting router
// stops masquerading as withdraw/re-announce churn.
#include <gtest/gtest.h>

#include <algorithm>

#include "moas/bgp/network.h"
#include "moas/bgp/session.h"
#include "moas/bgp/wire.h"
#include "moas/chaos/invariants.h"

namespace moas::bgp {
namespace {

net::Prefix pfx(const char* text) { return *net::Prefix::parse(text); }

void expect_invariants(const Network& network) {
  chaos::NetworkInvariantChecker checker;
  for (const auto& violation : checker.check(network)) {
    ADD_FAILURE() << violation.to_string();
  }
}

Network::Config gr_config(double restart_time = 60.0) {
  Network::Config config;
  config.graceful_restart = true;
  config.gr_restart_time = restart_time;
  return config;
}

// --- wire format -----------------------------------------------------------

TEST(GracefulRestartWire, CapabilityRoundTrips) {
  wire::OpenMessage open;
  open.my_as = 64500;
  open.hold_time = 90;
  open.bgp_identifier = 0xc0a80001;
  wire::GracefulRestartCapability gr;
  gr.restart_state = true;
  gr.restart_time = 4095;  // the 12-bit maximum
  gr.ipv4_unicast = true;
  gr.forwarding_preserved = true;
  open.graceful_restart = gr;

  const wire::OpenMessage decoded = wire::decode_open(wire::encode_open(open));
  ASSERT_TRUE(decoded.graceful_restart.has_value());
  EXPECT_EQ(*decoded.graceful_restart, gr);
  EXPECT_EQ(decoded.my_as, open.my_as);
  EXPECT_EQ(decoded.hold_time, open.hold_time);
}

TEST(GracefulRestartWire, BareCapabilityRoundTrips) {
  // No AFI/SAFI tuple: restart timing only (legal per RFC 4724 §3).
  wire::OpenMessage open;
  open.my_as = 1;
  wire::GracefulRestartCapability gr;
  gr.restart_time = 120;
  gr.ipv4_unicast = false;
  open.graceful_restart = gr;
  const wire::OpenMessage decoded = wire::decode_open(wire::encode_open(open));
  ASSERT_TRUE(decoded.graceful_restart.has_value());
  EXPECT_EQ(*decoded.graceful_restart, gr);
}

TEST(GracefulRestartWire, OpenWithoutCapabilityDecodesNone) {
  wire::OpenMessage open;
  open.my_as = 1;
  const wire::OpenMessage decoded = wire::decode_open(wire::encode_open(open));
  EXPECT_FALSE(decoded.graceful_restart.has_value());
}

TEST(GracefulRestartWire, RestartTimeMustFitTwelveBits) {
  wire::OpenMessage open;
  open.my_as = 1;
  wire::GracefulRestartCapability gr;
  gr.restart_time = 4096;  // one past the field
  open.graceful_restart = gr;
  EXPECT_THROW(wire::encode_open(open), std::invalid_argument);
}

TEST(GracefulRestartWire, EndOfRibIsTheEmptyUpdate) {
  const std::vector<std::uint8_t> bytes = wire::encode_end_of_rib();
  EXPECT_EQ(bytes.size(), 23u);  // header + two zero length fields (RFC 4724 §2)
  const wire::UpdateMessage decoded = wire::decode_update(bytes);
  EXPECT_TRUE(decoded.withdrawn.empty());
  EXPECT_TRUE(decoded.nlri.empty());
  EXPECT_TRUE(wire::is_end_of_rib(decoded));

  const std::vector<Update> updates = wire::to_sim_updates(decoded);
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_EQ(updates.front().kind, Update::Kind::EndOfRib);
}

TEST(GracefulRestartWire, EndOfRibSimUpdateRoundTrips) {
  const Update eor = Update::end_of_rib();
  const auto bytes = wire::encode_sim_update(eor);
  EXPECT_TRUE(wire::is_end_of_rib(wire::decode_update(bytes)));
  EXPECT_EQ(eor.to_string(), "END-OF-RIB");
}

// --- session negotiation ---------------------------------------------------

/// Two sessions joined back to back (mirrors test_bgp_session.cpp).
struct SessionPair {
  sim::EventQueue clock;
  std::unique_ptr<Session> a;
  std::unique_ptr<Session> b;
  int a_downs = 0, b_downs = 0;
  bool link_up = true;

  explicit SessionPair(Session::Config ca, Session::Config cb) {
    a = std::make_unique<Session>(
        ca, clock, [this](std::vector<std::uint8_t> bytes) { to(b, bytes); }, nullptr,
        [this] { ++a_downs; });
    b = std::make_unique<Session>(
        cb, clock, [this](std::vector<std::uint8_t> bytes) { to(a, bytes); }, nullptr,
        [this] { ++b_downs; });
  }

  static Session::Config config_for(Asn asn, bool graceful) {
    Session::Config config;
    config.local_as = asn;
    config.bgp_identifier = asn;
    config.graceful_restart = graceful;
    config.gr_restart_time = 90.0;
    return config;
  }

  void to(std::unique_ptr<Session>& dst, std::vector<std::uint8_t> bytes) {
    if (!link_up) return;
    Session* target = dst.get();
    clock.schedule_after(0.01, [target, bytes = std::move(bytes)] { target->receive(bytes); });
  }

  void bring_up() {
    a->start();
    b->start();
    a->tcp_connected();
    b->tcp_connected();
    clock.run_until(clock.now() + 1.0);
  }
};

TEST(GracefulRestartSession, NegotiatedWhenBothAdvertise) {
  SessionPair pair(SessionPair::config_for(1, true), SessionPair::config_for(2, true));
  pair.bring_up();
  ASSERT_TRUE(pair.a->established());
  EXPECT_TRUE(pair.a->gr_negotiated());
  EXPECT_TRUE(pair.b->gr_negotiated());
  EXPECT_EQ(pair.a->peer_restart_time(), 90.0);
  ASSERT_TRUE(pair.a->peer_graceful_restart().has_value());
  EXPECT_FALSE(pair.a->peer_graceful_restart()->restart_state);
}

TEST(GracefulRestartSession, NotNegotiatedOneSided) {
  SessionPair pair(SessionPair::config_for(1, true), SessionPair::config_for(2, false));
  pair.bring_up();
  ASSERT_TRUE(pair.a->established());
  EXPECT_FALSE(pair.a->gr_negotiated()) << "peer sent no capability";
  EXPECT_FALSE(pair.b->gr_negotiated()) << "locally not configured";
  EXPECT_TRUE(pair.b->peer_graceful_restart().has_value())
      << "the peer's capability is still recorded";
  EXPECT_EQ(pair.a->peer_restart_time(), 0.0);
}

TEST(GracefulRestartSession, RestartStateFlagTravels) {
  auto cb = SessionPair::config_for(2, true);
  cb.gr_restarting = true;  // b is coming back from a restart
  SessionPair pair(SessionPair::config_for(1, true), cb);
  pair.bring_up();
  ASSERT_TRUE(pair.a->gr_negotiated());
  EXPECT_TRUE(pair.a->peer_graceful_restart()->restart_state);
  EXPECT_FALSE(pair.b->peer_graceful_restart()->restart_state);
}

TEST(GracefulRestartSession, RestartTimeConfigValidated) {
  sim::EventQueue clock;
  auto config = SessionPair::config_for(1, true);
  config.gr_restart_time = 5000.0;  // does not fit the 12-bit wire field
  EXPECT_THROW(Session(config, clock, [](std::vector<std::uint8_t>) {}, {}, {}),
               std::invalid_argument);
}

TEST(Session, RemoteResetRetriesAutomatically) {
  // A NOTIFICATION from the peer is not an operator stop: the session must
  // re-enter Connect and keep retrying, not park in Idle forever.
  SessionPair pair(SessionPair::config_for(1, false), SessionPair::config_for(2, false));
  pair.bring_up();
  ASSERT_TRUE(pair.a->established());

  pair.b->stop();  // sends a Cease NOTIFICATION to a
  pair.clock.run_until(pair.clock.now() + 1.0);
  EXPECT_EQ(pair.a->state(), SessionState::Connect);
  EXPECT_EQ(pair.a_downs, 1);
  EXPECT_EQ(pair.a->stats().remote_resets, 1u);
}

TEST(Session, BackoffReturnsToBaseAfterRemoteResetHeals) {
  // Satellite audit: backoff built up after a remote-initiated reset must
  // clear once the session is ESTABLISHED again — not keep a healed peer
  // paying capped retry delays.
  auto ca = SessionPair::config_for(1, false);
  ca.connect_retry = 2.0;
  ca.connect_retry_backoff = 2.0;
  ca.connect_retry_cap = 16.0;
  ca.connect_retry_jitter = 0.0;
  SessionPair pair(ca, SessionPair::config_for(2, false));
  pair.bring_up();
  ASSERT_TRUE(pair.a->established());
  ASSERT_EQ(pair.a->current_connect_retry(), 0.0);

  pair.b->stop();  // remote reset; a's transport stays "down" for a while
  pair.clock.run_until(pair.clock.now() + 40.0);
  ASSERT_EQ(pair.a->state(), SessionState::Connect);
  EXPECT_GT(pair.a->current_connect_retry(), ca.connect_retry)
      << "retries while the peer is away must back off";

  // The peer heals: both sides re-establish.
  pair.b->start();
  pair.b->tcp_connected();
  pair.a->tcp_connected();
  pair.clock.run_until(pair.clock.now() + 5.0);
  ASSERT_TRUE(pair.a->established());
  ASSERT_TRUE(pair.b->established());
  EXPECT_EQ(pair.a->current_connect_retry(), 0.0)
      << "re-establishment restores the base connect-retry interval";
}

// --- Adj-RIB-In stale tracking --------------------------------------------

RibEntry entry_for(const net::Prefix& prefix, Asn origin) {
  Route route;
  route.prefix = prefix;
  route.attrs.path = AsPath({origin});
  return RibEntry{route, origin};
}

TEST(GracefulRestartRib, MarkSweepAndRefresh) {
  AdjRibIn rib;
  const auto p1 = pfx("10.0.0.0/8");
  const auto p2 = pfx("20.0.0.0/8");
  rib.set(5, entry_for(p1, 5).route);
  rib.set(5, entry_for(p2, 5).route);
  rib.set(6, entry_for(p1, 6).route);

  EXPECT_EQ(rib.mark_peer_stale(5), 2u);
  EXPECT_TRUE(rib.is_stale(p1, 5));
  EXPECT_TRUE(rib.is_stale(p2, 5));
  EXPECT_FALSE(rib.is_stale(p1, 6));
  EXPECT_EQ(rib.stale_count(), 2u);

  // A replayed announcement — even byte-identical — refreshes the entry.
  rib.set(5, entry_for(p1, 5).route);
  EXPECT_FALSE(rib.is_stale(p1, 5));
  EXPECT_EQ(rib.stale_count(), 1u);

  // The sweep flushes what was not refreshed, and only that.
  const auto swept = rib.sweep_stale(5);
  ASSERT_EQ(swept.size(), 1u);
  EXPECT_EQ(swept.front(), p2);
  EXPECT_EQ(rib.from_peer(p2, 5), nullptr);
  EXPECT_NE(rib.from_peer(p1, 5), nullptr);
  EXPECT_NE(rib.from_peer(p1, 6), nullptr);
  EXPECT_EQ(rib.stale_count(), 0u);
}

TEST(GracefulRestartRib, EraseClearsStaleMarks) {
  AdjRibIn rib;
  const auto p1 = pfx("10.0.0.0/8");
  rib.set(5, entry_for(p1, 5).route);
  rib.mark_peer_stale(5);
  EXPECT_TRUE(rib.erase(5, p1));  // explicit withdraw during the window
  EXPECT_EQ(rib.stale_count(), 0u);
  EXPECT_TRUE(rib.sweep_stale(5).empty());

  rib.set(5, entry_for(p1, 5).route);
  rib.mark_peer_stale(5);
  rib.erase_peer(5);  // cold session loss supersedes the window
  EXPECT_EQ(rib.stale_count(), 0u);

  rib.set(5, entry_for(p1, 5).route);
  rib.mark_peer_stale(5);
  EXPECT_EQ(rib.erase_by_origin(p1, {5}), 1u);  // detector purge
  EXPECT_EQ(rib.stale_count(), 0u);

  EXPECT_EQ(rib.mark_peer_stale(99), 0u) << "peer with no routes marks nothing";
}

TEST(GracefulRestartRib, StaleEntriesEnumerates) {
  AdjRibIn rib;
  const auto p1 = pfx("10.0.0.0/8");
  rib.set(5, entry_for(p1, 5).route);
  rib.set(6, entry_for(p1, 6).route);
  rib.mark_peer_stale(5);
  rib.mark_peer_stale(6);
  const auto entries = rib.stale_entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0], (std::pair<net::Prefix, Asn>{p1, 5}));
  EXPECT_EQ(entries[1], (std::pair<net::Prefix, Asn>{p1, 6}));
}

// --- network behavior ------------------------------------------------------

TEST(GracefulRestart, RoutesSurviveCrashAndRestart) {
  // Chain 1 - 2 - 3: with GR, 2 keeps using 1's route while 1 is down, so 3
  // never hears a withdrawal at all.
  Network network(gr_config());
  for (Asn asn : {1u, 2u, 3u}) network.add_router(asn);
  network.connect(1, 2);
  network.connect(2, 3);
  const auto prefix = pfx("10.0.0.0/8");
  network.router(1).originate(prefix);
  network.run_to_quiescence();
  ASSERT_NE(network.router(3).best(prefix), nullptr);

  network.crash_router(1);
  // No quiescence yet: mid-window, the route is retained, stale, in use.
  EXPECT_TRUE(network.router(2).adj_rib_in().is_stale(prefix, 1));
  EXPECT_NE(network.router(2).best(prefix), nullptr);
  EXPECT_NE(network.router(3).best(prefix), nullptr);
  EXPECT_EQ(network.router(2).stats().stale_retained, 1u);

  network.restart_router(1);
  ASSERT_TRUE(network.run_to_quiescence());
  EXPECT_FALSE(network.router(2).adj_rib_in().is_stale(prefix, 1))
      << "the replayed announcement refreshes the stale entry";
  EXPECT_EQ(network.router(3).best_origin(prefix), std::optional<Asn>(1u));
  EXPECT_GE(network.router(1).stats().eor_sent, 1u);
  EXPECT_GE(network.router(2).stats().eor_received, 1u);
  EXPECT_EQ(network.router(2).stats().stale_swept, 0u)
      << "everything was refreshed; End-of-RIB had nothing to sweep";
  EXPECT_EQ(network.router(2).stats().withdrawals_sent, 0u)
      << "3 must never hear the crash as a withdrawal";
  expect_invariants(network);
}

TEST(GracefulRestart, RestartTimerFlushesAbandonedRoutes) {
  Network network(gr_config(30.0));
  for (Asn asn : {1u, 2u, 3u}) network.add_router(asn);
  network.connect(1, 2);
  network.connect(2, 3);
  const auto prefix = pfx("10.0.0.0/8");
  network.router(1).originate(prefix);
  network.run_to_quiescence();

  network.crash_router(1);  // never restarts: the timer must clean up
  ASSERT_TRUE(network.run_to_quiescence());
  EXPECT_EQ(network.router(2).best(prefix), nullptr);
  EXPECT_EQ(network.router(3).best(prefix), nullptr);
  EXPECT_EQ(network.router(2).stats().stale_swept, 1u);
  EXPECT_EQ(network.router(2).adj_rib_in().stale_count(), 0u);
  expect_invariants(network);
}

TEST(GracefulRestart, EndOfRibSweepsRoutesTheRestartDropped) {
  // 1 originates two prefixes, loses one across its downtime (operator
  // deconfigured it). The replay announces only the survivor; End-of-RIB
  // must implicitly withdraw the other — before the restart timer.
  Network network(gr_config(300.0));  // timer far away: the sweep must do it
  for (Asn asn : {1u, 2u}) network.add_router(asn);
  network.connect(1, 2);
  const auto kept = pfx("10.0.0.0/8");
  const auto dropped = pfx("20.0.0.0/8");
  network.router(1).originate(kept);
  network.router(1).originate(dropped);
  network.run_to_quiescence();
  ASSERT_NE(network.router(2).best(dropped), nullptr);

  network.crash_router(1);
  network.router(1).withdraw_origination(dropped);  // config change while down
  const double restarted_at = network.clock().now();
  network.restart_router(1);
  // Run well inside the 300 s window: quiescence would also drain the
  // (no-op) restart timer, so timing has to be checked before it fires.
  network.clock().run_until(restarted_at + 50.0);
  EXPECT_NE(network.router(2).best(kept), nullptr);
  EXPECT_EQ(network.router(2).best(dropped), nullptr)
      << "End-of-RIB must sweep the no-longer-announced prefix";
  EXPECT_EQ(network.router(2).stats().stale_swept, 1u)
      << "the sweep happened via End-of-RIB, not the restart timer";
  EXPECT_EQ(network.router(2).adj_rib_in().stale_count(), 0u);
  ASSERT_TRUE(network.run_to_quiescence());
  expect_invariants(network);
}

TEST(GracefulRestart, ColdRestartStillFlushesWhenDisabled) {
  // Control: without the knob, peer_restarting degrades to the cold flush.
  Network network;  // graceful_restart defaults off
  for (Asn asn : {1u, 2u, 3u}) network.add_router(asn);
  network.connect(1, 2);
  network.connect(2, 3);
  const auto prefix = pfx("10.0.0.0/8");
  network.router(1).originate(prefix);
  network.run_to_quiescence();

  network.crash_router(1);
  EXPECT_EQ(network.router(2).best(prefix), nullptr) << "cold crash flushes immediately";
  EXPECT_EQ(network.router(2).stats().stale_retained, 0u);
  ASSERT_TRUE(network.run_to_quiescence());
  EXPECT_GE(network.router(2).stats().withdrawals_sent, 1u);
  expect_invariants(network);
}

TEST(GracefulRestart, StrictlyLessChurnThanColdRestart) {
  // The tentpole claim, head to head on the diamond: one crash/restart
  // cycle of a transit router costs strictly fewer withdrawals and
  // re-announcements with GR than without.
  const auto run_cycle = [](bool graceful) {
    Network::Config config;
    config.graceful_restart = graceful;
    config.gr_restart_time = 60.0;
    Network network(config);
    for (Asn asn : {1u, 2u, 3u, 4u}) network.add_router(asn);
    network.connect(1, 2);
    network.connect(1, 3);
    network.connect(2, 4);
    network.connect(3, 4);
    network.router(1).originate(pfx("10.0.0.0/8"));
    network.run_to_quiescence();

    std::uint64_t withdrawals = 0, announcements = 0;
    const auto snapshot = [&] {
      withdrawals = announcements = 0;
      for (Asn asn : {1u, 2u, 3u, 4u}) {
        withdrawals += network.router(asn).stats().withdrawals_sent;
        announcements += network.router(asn).stats().announcements_sent;
      }
    };
    snapshot();
    const std::uint64_t w0 = withdrawals, a0 = announcements;
    network.crash_router(2);
    network.clock().run_until(network.clock().now() + 5.0);
    network.restart_router(2);
    EXPECT_TRUE(network.run_to_quiescence());
    expect_invariants(network);
    snapshot();
    return std::pair<std::uint64_t, std::uint64_t>{withdrawals - w0, announcements - a0};
  };

  const auto [cold_withdraws, cold_announces] = run_cycle(false);
  const auto [gr_withdraws, gr_announces] = run_cycle(true);
  EXPECT_LT(gr_withdraws, cold_withdraws);
  EXPECT_LT(gr_announces, cold_announces);
  EXPECT_EQ(gr_withdraws, 0u) << "nobody ever lost the route: no withdrawal needed";
}

TEST(GracefulRestart, StaleHygieneInvariantCatchesLeftovers) {
  // Negative test for the new invariant family: freeze a router mid
  // restart-window (no quiescence) and the checker must flag the stale
  // leftovers.
  Network network(gr_config());
  for (Asn asn : {1u, 2u}) network.add_router(asn);
  network.connect(1, 2);
  network.router(1).originate(pfx("10.0.0.0/8"));
  network.run_to_quiescence();

  network.router(2).peer_restarting(1);  // stale mark set, timer pending
  chaos::NetworkInvariantChecker checker;
  const auto violations = checker.check(network);
  const bool flagged = std::any_of(violations.begin(), violations.end(), [](const auto& v) {
    return v.invariant == "stale-route-past-timer";
  });
  EXPECT_TRUE(flagged) << "mid-window stale entry must be reported";

  chaos::NetworkInvariantChecker::Options options;
  options.check_stale_hygiene = false;
  options.check_loc_rib_liveness = false;  // the frozen session trips it too
  options.check_adj_rib_mirror = false;
  chaos::NetworkInvariantChecker relaxed(options);
  for (const auto& violation : relaxed.check(network)) {
    EXPECT_NE(violation.invariant, "stale-route-past-timer") << "family is switchable";
  }
}

TEST(GracefulRestart, NetworkConfigValidated) {
  Network::Config config;
  config.graceful_restart = true;
  config.gr_restart_time = 0.0;
  EXPECT_THROW(Network{config}, std::invalid_argument);
}

}  // namespace
}  // namespace moas::bgp
